package tradenet_test

// One benchmark per table and figure in the paper, plus the in-text
// quantitative claims of §3–§4. Each bench runs the corresponding
// experiment from internal/core and reports the headline quantity as a
// custom metric, so `go test -bench=. -benchmem` regenerates the whole
// evaluation. EXPERIMENTS.md records paper-vs-measured values.

import (
	"testing"

	"tradenet/internal/core"
	"tradenet/internal/device"
	"tradenet/internal/sim"
	"tradenet/internal/trace"
)

// BenchmarkTable1FrameLengths (E1) regenerates Table 1: frame-length
// min/avg/median/max for the three exchange feeds.
func BenchmarkTable1FrameLengths(b *testing.B) {
	var r core.Table1Result
	for i := 0; i < b.N; i++ {
		r = core.RunTable1(100_000, 1)
	}
	b.ReportMetric(float64(r.Rows[1].Avg), "exchB-avg-bytes")
	b.ReportMetric(float64(r.Rows[1].Median), "exchB-median-bytes")
}

// BenchmarkFig2aDailyGrowth (E2) regenerates Figure 2(a): five years of
// daily event counts with ~500% growth.
func BenchmarkFig2aDailyGrowth(b *testing.B) {
	var r core.Fig2aResult
	for i := 0; i < b.N; i++ {
		r = core.RunFig2a(int64(i + 1))
	}
	b.ReportMetric((r.Growth-1)*100, "growth-pct")
	b.ReportMetric(r.AvgRatePerSec/1000, "kevents/s")
}

// BenchmarkFig2bIntraday (E3) regenerates Figure 2(b): the single-stock
// trading day in 1-second windows.
func BenchmarkFig2bIntraday(b *testing.B) {
	var r core.Fig2bResult
	for i := 0; i < b.N; i++ {
		r = core.RunFig2b(int64(i + 1))
	}
	b.ReportMetric(float64(r.SessionMedian), "median-events/s")
	b.ReportMetric(float64(r.Busiest), "busiest-second")
}

// BenchmarkFig2cBusySecond (E4) regenerates Figure 2(c): the busiest second
// in 100 µs windows.
func BenchmarkFig2cBusySecond(b *testing.B) {
	var r core.Fig2cResult
	for i := 0; i < b.N; i++ {
		r = core.RunFig2c(int64(i + 1))
	}
	b.ReportMetric(float64(r.Median), "median-window")
	b.ReportMetric(float64(r.Busiest), "busiest-window")
}

// BenchmarkDesign1RoundTrip (E5) measures the §4.1 leaf-spine round trip:
// 12 switch hops, network ≈ half the total.
func BenchmarkDesign1RoundTrip(b *testing.B) {
	var rt core.RoundTrip
	var fired uint64
	for i := 0; i < b.N; i++ {
		d := core.NewDesign1(core.SmallScenario(), device.DefaultCommodityConfig())
		rt = d.MeasureRoundTrip(4)
		fired += d.Sched.Fired()
	}
	b.ReportMetric(rt.Mean().Microseconds(), "tick-to-trade-µs")
	b.ReportMetric(rt.NetworkShare()*100, "network-share-pct")
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkDesign3RoundTrip (E6) measures the §4.3 L1S round trip: network
// latency roughly two orders of magnitude below commodity switching.
func BenchmarkDesign3RoundTrip(b *testing.B) {
	var rt core.RoundTrip
	var fired uint64
	for i := 0; i < b.N; i++ {
		d := core.NewDesign3(core.SmallScenario(), 0)
		rt = d.MeasureRoundTrip(4)
		fired += d.Sched.Fired()
	}
	b.ReportMetric(rt.Mean().Microseconds(), "tick-to-trade-µs")
	b.ReportMetric(rt.NetworkTime().Nanoseconds(), "network-ns")
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkDesign2CloudRoundTrip (E12) measures the equalized cloud: fair
// (zero skew) but slow.
func BenchmarkDesign2CloudRoundTrip(b *testing.B) {
	var rt core.RoundTrip
	var skew sim.Duration
	var fired uint64
	for i := 0; i < b.N; i++ {
		lats := []sim.Duration{5 * sim.Microsecond, 20 * sim.Microsecond, 12 * sim.Microsecond}
		d := core.NewDesign2(core.SmallScenario(), lats, true)
		rt = d.MeasureRoundTrip(4)
		skew, _ = d.SkewStats()
		fired += d.Sched.Fired()
	}
	b.ReportMetric(rt.Mean().Microseconds(), "tick-to-trade-µs")
	b.ReportMetric(skew.Nanoseconds(), "delivery-skew-ns")
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkCloudEqualization (E12b) contrasts equalized and raw cloud
// delivery skew.
func BenchmarkCloudEqualization(b *testing.B) {
	var eqSkew, rawSkew sim.Duration
	for i := 0; i < b.N; i++ {
		lats := []sim.Duration{5 * sim.Microsecond, 20 * sim.Microsecond}
		dEq := core.NewDesign2(core.SmallScenario(), lats, true)
		dEq.MeasureRoundTrip(3)
		eqSkew, _ = dEq.SkewStats()
		dRaw := core.NewDesign2(core.SmallScenario(), lats, false)
		dRaw.MeasureRoundTrip(3)
		rawSkew, _ = dRaw.SkewStats()
	}
	b.ReportMetric(eqSkew.Nanoseconds(), "equalized-skew-ns")
	b.ReportMetric(rawSkew.Microseconds(), "raw-skew-µs")
}

// BenchmarkMrouteOverflow (E7) measures the §3 multicast-table cliff:
// software-forwarded groups see orders-of-magnitude latency and heavy loss.
func BenchmarkMrouteOverflow(b *testing.B) {
	var r core.MrouteOverflowResult
	for i := 0; i < b.N; i++ {
		r = core.RunMrouteOverflow(40, 20, 60, 5)
	}
	b.ReportMetric(r.HWMean.Nanoseconds(), "hw-mean-ns")
	b.ReportMetric(r.SWMean.Microseconds(), "sw-mean-µs")
	b.ReportMetric((1-float64(r.SWDelivered)/float64(r.SWSent))*100, "sw-loss-pct")
}

// BenchmarkSwitchGenerations (E8) regenerates the §3 hardware-trend table.
func BenchmarkSwitchGenerations(b *testing.B) {
	var r core.GenerationsResult
	for i := 0; i < b.N; i++ {
		r = core.RunGenerations()
	}
	b.ReportMetric(r.Measured[0].Nanoseconds(), "oldest-hop-ns")
	b.ReportMetric(r.Measured[len(r.Measured)-1].Nanoseconds(), "newest-hop-ns")
}

// BenchmarkL1SMergeBottleneck (E9) sweeps merge fan-in: queueing then loss
// as merged bursty feeds cross the line rate.
func BenchmarkL1SMergeBottleneck(b *testing.B) {
	var r core.MergeResult
	for i := 0; i < b.N; i++ {
		r = core.RunMergeBottleneck([]int{1, 2, 4, 8}, 20, 6)
	}
	last := r.Rows[len(r.Rows)-1]
	b.ReportMetric(last.MeanQueue.Microseconds(), "fan8-queue-µs")
	b.ReportMetric(float64(last.Dropped)/float64(last.Dropped+last.Delivered)*100, "fan8-loss-pct")
}

// BenchmarkHeaderOverhead (E10) measures header share of feed bytes and the
// §5 compact-transport ablation.
func BenchmarkHeaderOverhead(b *testing.B) {
	var r core.OverheadResult
	for i := 0; i < b.N; i++ {
		r = core.RunHeaderOverhead(50_000, 7)
	}
	b.ReportMetric(r.Rows[0].HeaderShare*100, "exchA-header-pct")
	b.ReportMetric(r.HeaderCostNs, "hdr-cost-ns-at-10G")
}

// BenchmarkPartitionScaling (E11) tracks partition growth (600→1300)
// against switch-generation mroute capacity.
func BenchmarkPartitionScaling(b *testing.B) {
	var r core.PartitionScalingResult
	for i := 0; i < b.N; i++ {
		r = core.RunPartitionScaling(4)
	}
	last := r.Rows[len(r.Rows)-1]
	b.ReportMetric(float64(last.TotalGroups), "total-groups")
	b.ReportMetric(float64(last.Plans[0].Software), "oldest-gen-overflow")
}

// BenchmarkPerEventBudget (E13) times the real decode/normalize path
// against the 650 ns and ~100 ns budgets of §3.
func BenchmarkPerEventBudget(b *testing.B) {
	var r core.BudgetResult
	for i := 0; i < b.N; i++ {
		r = core.RunPerEventBudget(1_000_000)
	}
	b.ReportMetric(r.DecodeNsPerMsg, "decode-ns/msg")
	b.ReportMetric(r.NormalizeNsPerMsg, "normalize-ns/msg")
}

// BenchmarkWANMicrowaveVsFiber (E14) measures the §2 WAN trade: microwave's
// latency advantage and its rain loss.
func BenchmarkWANMicrowaveVsFiber(b *testing.B) {
	var r core.WANResult
	for i := 0; i < b.N; i++ {
		r = core.RunWAN(400, 8)
	}
	b.ReportMetric(r.Rows[2].Advantage.Microseconds(), "mahwah-carteret-advantage-µs")
	b.ReportMetric(r.Rows[2].RainLossPct, "rain-loss-pct")
}

// BenchmarkFilteredMergeAblation (§5 Hardware) shows FPGA filtering making
// L1S merges safe under loads that break plain merging.
func BenchmarkFilteredMergeAblation(b *testing.B) {
	var r core.FilteredMergeResult
	for i := 0; i < b.N; i++ {
		r = core.RunFilteredMerge([]int{4}, 20, 5)
	}
	row := r.Rows[0]
	b.ReportMetric(float64(row.RawDropped)/float64(row.RawDropped+row.RawDelivered)*100, "raw-loss-pct")
	b.ReportMetric(float64(row.FilteredDropped), "filtered-drops")
}

// BenchmarkPlacementAblation (§4.1/§5 Cluster Management) compares
// function-grouped racks with optimized placement.
func BenchmarkPlacementAblation(b *testing.B) {
	var r core.PlacementResult
	for i := 0; i < b.N; i++ {
		r = core.RunPlacement(4, 64, 4, 11, 10, 1)
	}
	b.ReportMetric(r.BaselineMeanHops, "baseline-hops")
	b.ReportMetric(r.OptimizedMeanHops, "optimized-hops")
}

// BenchmarkGroupMappingAblation (§5 Routing) compares naive and
// subscription-clustered partition→group mappings.
func BenchmarkGroupMappingAblation(b *testing.B) {
	var r core.GroupMappingResult
	for i := 0; i < b.N; i++ {
		r = core.RunGroupMapping(1024, 64, 50, 2)
	}
	b.ReportMetric(r.NaiveUnwanted*100, "naive-unwanted-pct")
	b.ReportMetric(r.OptUnwanted*100, "clustered-unwanted-pct")
}

// BenchmarkTimestampPrecision (§2) sweeps clock-sync precision against
// event-ordering fidelity.
func BenchmarkTimestampPrecision(b *testing.B) {
	var r core.TimestampPrecisionResult
	for i := 0; i < b.N; i++ {
		r = core.RunTimestampPrecision(5000, 4)
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	b.ReportMetric(float64(first.Inversions)/float64(first.Pairs)*100, "1µs-misorder-pct")
	b.ReportMetric(float64(last.Inversions), "100ps-misorders")
}

// BenchmarkFilterPlacement (§3) sweeps the in-process vs middlebox
// filtering crossover.
func BenchmarkFilterPlacement(b *testing.B) {
	var r core.FilterPlacementResult
	for i := 0; i < b.N; i++ {
		r = core.RunFilterPlacement()
	}
	last := r.Rows[len(r.Rows)-1]
	b.ReportMetric(last.InProcessCores, "inproc-cores-32c")
	b.ReportMetric(last.MiddleboxCores, "middlebox-cores-32c")
}

// BenchmarkDualPathWAN (§2) measures A/B-arbitrated delivery over microwave
// + fiber with rain fade: lossless, with fiber backstopping the rain.
func BenchmarkDualPathWAN(b *testing.B) {
	var r core.DualPathResult
	for i := 0; i < b.N; i++ {
		r = core.RunDualPathWAN(3000, 9)
	}
	b.ReportMetric(float64(r.GapsAfterArbit), "gaps")
	b.ReportMetric(float64(r.FiberWins), "fiber-wins")
	b.ReportMetric(r.ClearP50.Microseconds(), "clear-p50-µs")
}

// BenchmarkCorrelatedBurstMerge (§2) shows correlated cross-feed bursts
// defeating statistical multiplexing at a merge point.
func BenchmarkCorrelatedBurstMerge(b *testing.B) {
	var r core.CorrelatedMergeResult
	for i := 0; i < b.N; i++ {
		r = core.RunCorrelatedMerge(4, 30, 12)
	}
	b.ReportMetric(float64(r.IndependentDrops), "independent-drops")
	b.ReportMetric(float64(r.CorrelatedDrops), "correlated-drops")
}

// BenchmarkColocationAdvantage (§2) races a co-located firm against a
// remote microwave-connected firm reacting to the same event.
func BenchmarkColocationAdvantage(b *testing.B) {
	var r core.ColocationResult
	for i := 0; i < b.N; i++ {
		r = core.RunColocation(2*sim.Microsecond, 3)
	}
	b.ReportMetric(r.Advantage.Microseconds(), "advantage-µs")
	b.ReportMetric(r.LocalTickToTrade.Microseconds(), "local-t2t-µs")
}

// BenchmarkMetroNBBOSkew (§4.2) measures how cross-colo propagation skew
// manufactures phantom locked/crossed NBBO states at a remote surveillance
// host.
func BenchmarkMetroNBBOSkew(b *testing.B) {
	var r core.MetroNBBOResult
	for i := 0; i < b.N; i++ {
		r = core.RunMetroNBBO(100*sim.Millisecond, 7)
	}
	b.ReportMetric(r.MicrowaveShare*100, "microwave-bad-pct")
	b.ReportMetric(r.FiberShare*100, "fiber-bad-pct")
}

// BenchmarkGenerationRoundTrip (§3 trend, end to end) runs the Design 1
// loop on decade-old vs current switch generations.
func BenchmarkGenerationRoundTrip(b *testing.B) {
	var r core.GenerationRTResult
	for i := 0; i < b.N; i++ {
		r = core.RunGenerationRoundTrip(core.SmallScenario(), 3)
	}
	b.ReportMetric(r.OldMean.Microseconds(), "old-gen-rt-µs")
	b.ReportMetric(r.NewMean.Microseconds(), "new-gen-rt-µs")
}

// BenchmarkCorePinning (Fig. 1d) measures event tail latency with the OS
// sharing vs isolated from the event core.
func BenchmarkCorePinning(b *testing.B) {
	var r core.CorePinningResult
	for i := 0; i < b.N; i++ {
		r = core.RunCorePinning(50, 8)
	}
	b.ReportMetric(r.SharedMax.Microseconds(), "shared-max-µs")
	b.ReportMetric(r.PinnedMax.Microseconds(), "isolated-max-µs")
}

// BenchmarkStaleQuotes (§1/§2) sweeps quoter decision latency against a
// fixed aggressor: the pick-off crossover is the cost of being slow.
func BenchmarkStaleQuotes(b *testing.B) {
	var r core.StaleQuoteResult
	for i := 0; i < b.N; i++ {
		lats := []sim.Duration{2 * sim.Microsecond, 50 * sim.Microsecond}
		r = core.RunStaleQuotes(lats, 10, 15*sim.Microsecond, 3)
	}
	b.ReportMetric(float64(r.Rows[0].StaleFills), "fast-pickoffs")
	b.ReportMetric(float64(r.Rows[1].StaleFills), "slow-pickoffs")
}

// BenchmarkFailover (E19) kills a spine under the Design 1 plant and a WAN
// microwave path under a feed, both mid-burst, and reports the blackhole
// and recovery headline numbers.
func BenchmarkFailover(b *testing.B) {
	var r core.FailoverReport
	for i := 0; i < b.N; i++ {
		r = core.RunFailover(core.SmallScenario(), core.Seeds(1, 1))
	}
	run := r.Runs[0]
	b.ReportMetric(float64(run.Spine.Blackholed), "spine-blackholed-frames")
	b.ReportMetric(run.Spine.TimeToRecovery.Microseconds(), "spine-ttr-µs")
	b.ReportMetric(float64(run.WAN.Recovered), "wan-replayed-msgs")
	b.ReportMetric(run.WAN.TimeToRecovery.Microseconds(), "wan-ttr-µs")
}

// BenchmarkAttribution (E20) runs the flight recorder through all three
// designs and reports the attributed per-message means that back the
// paper's §4 comparisons.
func BenchmarkAttribution(b *testing.B) {
	var r core.AttributionResult
	for i := 0; i < b.N; i++ {
		r = core.RunAttribution(core.SmallScenario(), 2)
	}
	d1, d3 := r.Designs[0], r.Designs[1]
	b.ReportMetric(d1.Total.Microseconds()/float64(d1.Accepted), "d1-mean-total-µs")
	b.ReportMetric(float64(d1.ByCause[trace.CauseSwitching])/float64(d1.Accepted)/1000, "d1-switching-ns")
	b.ReportMetric(float64(d3.ByCause[trace.CauseSwitching])/float64(d3.Accepted)/1000, "d3-switching-ns")
	b.ReportMetric(float64(d1.Reconciled+d3.Reconciled), "reconciled-traces")
}

// BenchmarkOEFailover (E21) kills the order-entry path mid-burst in all
// three designs and reports the session-resilience headline numbers.
func BenchmarkOEFailover(b *testing.B) {
	var r core.OEFailoverReport
	for i := 0; i < b.N; i++ {
		r = core.RunOEFailover(core.SmallScenario(), core.Seeds(1, 1))
	}
	d1 := r.Runs[0].Designs[0]
	b.ReportMetric(d1.DetectIn.Microseconds(), "d1-detect-µs")
	b.ReportMetric(float64(d1.CODCancels), "d1-cod-cancels")
	b.ReportMetric(float64(d1.Replayed), "d1-replayed-msgs")
	ok := 0.0
	if r.AllInvariantsOK() {
		ok = 1.0
	}
	b.ReportMetric(ok, "invariants-ok")
}

// BenchmarkWANRedundancy (E22) rains on the mirrored microwave WAN path
// and reports the recovery-policy headline numbers: reactive replay's
// stale-picture exposure vs the adaptive controller's, and the goodput
// the closed loop holds while switching policies mid-squall.
func BenchmarkWANRedundancy(b *testing.B) {
	var r core.WANRedundancyReport
	for i := 0; i < b.N; i++ {
		r = core.RunWANRedundancy(core.SmallScenario(), core.Seeds(1, 1))
	}
	m := r.Runs[0].Matrix
	b.ReportMetric(m[0].Exposure.Microseconds(), "replayonly-exposure-µs")
	b.ReportMetric(m[3].Exposure.Microseconds(), "adaptive-exposure-µs")
	b.ReportMetric(m[3].GoodputPct(), "adaptive-goodput-pct")
	b.ReportMetric(float64(m[3].Switches), "policy-switches")
}

// BenchmarkExchangeFailover (E23) kills the primary matching engine
// mid-burst and reports the high-availability headline numbers: the feed
// blackout window, the pick-off exposure of orders resting dark through
// it, time to first trade on the promoted standby, and whether the
// zero-loss invariants (books and execution counts equal to a
// never-failed control) held.
func BenchmarkExchangeFailover(b *testing.B) {
	var r core.ExchangeFailoverReport
	for i := 0; i < b.N; i++ {
		r = core.RunExchangeFailover(core.SmallScenario(), core.Seeds(1, 1))
	}
	d1 := r.Runs[0].Designs[0]
	b.ReportMetric(d1.Blackout.Microseconds(), "d1-blackout-µs")
	b.ReportMetric(d1.PickOffOrdMs, "d1-pickoff-ord-ms")
	b.ReportMetric(d1.FirstTradeIn.Microseconds(), "d1-first-trade-µs")
	ok := 0.0
	if r.AllInvariantsOK() {
		ok = 1.0
	}
	b.ReportMetric(ok, "invariants-ok")
}
