// Command feedgen generates synthetic market-data feed traffic in a chosen
// exchange's binary format and reports the frame-length distribution, or
// hex-dumps sample frames for inspection.
//
// Usage:
//
//	feedgen -variant B -frames 100000          # distribution stats
//	feedgen -variant A -dump 3                 # hex-dump 3 frames
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"tradenet/internal/feed"
	"tradenet/internal/metrics"
	"tradenet/internal/pkt"
)

func main() {
	var (
		variant = flag.String("variant", "B", "exchange variant: A | B | C | internal")
		frames  = flag.Int("frames", 100_000, "frames to generate")
		dump    = flag.Int("dump", 0, "hex-dump this many frames instead of stats")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var v *feed.Variant
	switch *variant {
	case "A":
		v = feed.ExchangeA
	case "B":
		v = feed.ExchangeB
	case "C":
		v = feed.ExchangeC
	case "internal":
		v = feed.Internal
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	src := pkt.UDPAddr{MAC: pkt.HostMAC(1), IP: pkt.HostIP(1), Port: 30000}
	grp := pkt.IP4{239, 1, 0, 1}
	dst := pkt.UDPAddr{MAC: pkt.MulticastMAC(grp), IP: grp, Port: 30001}
	g := feed.NewFrameGen(v, src, dst)

	if *dump > 0 {
		for i := 0; i < *dump; i++ {
			frame, msgs := g.Next(rng)
			fmt.Printf("--- frame %d: %d bytes, %d messages ---\n", i+1, len(frame), msgs)
			fmt.Print(hex.Dump(frame))
		}
		return
	}

	h := metrics.NewHistogram()
	var msgs int64
	for i := 0; i < *frames; i++ {
		frame, n := g.Next(rng)
		h.Observe(int64(len(frame)))
		msgs += int64(n)
	}
	s := h.Summarize()
	fmt.Printf("%s: %d frames, %d messages (%.2f msgs/frame)\n", v.Name, *frames, msgs, float64(msgs)/float64(*frames))
	fmt.Println(metrics.Table(
		[]string{"min", "avg", "median", "p99", "max"},
		[][]string{{
			fmt.Sprint(s.Min),
			fmt.Sprintf("%.1f", s.Mean),
			fmt.Sprint(s.Median),
			fmt.Sprint(s.P99),
			fmt.Sprint(s.Max),
		}},
	))
}
