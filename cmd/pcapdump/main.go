// Command pcapdump decodes a capture produced by the simulator's taps
// (cmd/replay -pcap, or any capture.PcapWriter) back into market-data
// messages: per-frame timestamps, the unit-header sequencing, and the
// decoded feed messages — the post-trade research workflow §2 describes
// ("for research, precise timestamps are necessary for understanding the
// ordering of market data events").
//
// Usage:
//
//	pcapdump -file capture.pcap            # summary statistics
//	pcapdump -file capture.pcap -v | head  # per-message dump
//	pcapdump -file capture.pcap -v -trace trace.json
//	                                       # annotate with flight-recorder spans
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"tradenet/internal/capture"
	"tradenet/internal/feed"
	"tradenet/internal/metrics"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
)

// traceSpan is one Chrome trace event re-read from a flight-recorder export
// (internal/trace.WriteChrome): a [start, start+dur) interval in
// microseconds of virtual time.
type traceSpan struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Args struct {
		Trace uint64 `json:"trace"`
	} `json:"args"`
}

// loadTrace parses a flight-recorder Chrome trace export, sorted by start.
func loadTrace(path string) ([]traceSpan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var spans []traceSpan
	if err := json.Unmarshal(data, &spans); err != nil {
		return nil, err
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Ts < spans[j].Ts })
	return spans, nil
}

// annotate returns the flight-recorder spans covering instant at, as
// "trace=<id> <where>:<cause>" fragments (capped at three).
func annotate(spans []traceSpan, at sim.Time) string {
	us := float64(at) / float64(sim.Microsecond)
	var parts []string
	for i := range spans {
		s := &spans[i]
		if s.Ts > us {
			break
		}
		if us < s.Ts+s.Dur {
			parts = append(parts, fmt.Sprintf("trace=%d %s:%s", s.Args.Trace, s.Name, s.Cat))
			if len(parts) == 3 {
				break
			}
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return " [" + strings.Join(parts, ", ") + "]"
}

func main() {
	var (
		path      = flag.String("file", "", "pcap file to decode")
		verbose   = flag.Bool("v", false, "dump every message")
		tracePath = flag.String("trace", "", "flight-recorder Chrome trace JSON to annotate frames with")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "usage: pcapdump -file capture.pcap [-v]")
		os.Exit(2)
	}
	data, err := os.ReadFile(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "read: %v\n", err)
		os.Exit(1)
	}
	pkts, err := capture.ReadPcap(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parse: %v\n", err)
		os.Exit(1)
	}
	var spans []traceSpan
	if *tracePath != "" {
		spans, err = loadTrace(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
	}

	frameLens := metrics.NewHistogram()
	gaps := metrics.NewHistogram() // inter-frame gaps in ns
	typeCounts := map[feed.MsgType]int{}
	var msgs, badFrames int
	var lastAt sim.Time
	reasm := map[uint8]*feed.Reassembler{}

	for i, p := range pkts {
		frameLens.Observe(int64(p.Orig))
		if i > 0 {
			gaps.Observe(int64(p.At.Sub(lastAt)) / int64(sim.Nanosecond))
		}
		lastAt = p.At

		var uf pkt.UDPFrame
		if err := pkt.ParseUDPFrame(p.Data, &uf); err != nil {
			badFrames++
			continue
		}
		var h feed.UnitHeader
		if _, err := feed.DecodeUnitHeader(uf.Payload, &h); err != nil {
			badFrames++
			continue
		}
		r, ok := reasm[h.Unit]
		if !ok {
			r = feed.NewReassembler(h.Unit)
			// Captures can start mid-stream: accept whatever sequence the
			// first datagram carries.
			r.Resync(h.Seq)
			reasm[h.Unit] = r
		}
		at := p.At
		r.Consume(uf.Payload, func(m *feed.Msg) {
			msgs++
			typeCounts[m.Type]++
			if *verbose {
				fmt.Printf("%-14v unit=%d %-9s oid=%d", at, h.Unit, m.Type, m.OrderID)
				if m.Type == feed.MsgAddOrder || m.Type == feed.MsgTrade {
					fmt.Printf(" %s %s %d @%d", m.SymbolString(), m.Side, m.Qty, m.Price)
				}
				fmt.Print(annotate(spans, at))
				fmt.Println()
			}
		})
	}

	fmt.Printf("%s: %d frames, %d messages, %d undecodable frames\n",
		*path, len(pkts), msgs, badFrames)
	if spans != nil {
		ids := map[uint64]bool{}
		for i := range spans {
			ids[spans[i].Args.Trace] = true
		}
		fmt.Printf("%s: %d spans across %d traces\n", *tracePath, len(spans), len(ids))
	}
	fl := frameLens.Summarize()
	fmt.Println(metrics.Table(
		[]string{"metric", "frame bytes", "inter-frame gap"},
		[][]string{
			{"min", fmt.Sprint(fl.Min), sim.Duration(gaps.Min() * int64(sim.Nanosecond)).String()},
			{"median", fmt.Sprint(fl.Median), sim.Duration(gaps.Median() * int64(sim.Nanosecond)).String()},
			{"p99", fmt.Sprint(fl.P99), sim.Duration(gaps.P99() * int64(sim.Nanosecond)).String()},
			{"max", fmt.Sprint(fl.Max), sim.Duration(gaps.Max() * int64(sim.Nanosecond)).String()},
		}))
	var rows [][]string
	for _, t := range []feed.MsgType{feed.MsgAddOrder, feed.MsgOrderExecuted,
		feed.MsgReduceSize, feed.MsgModifyOrder, feed.MsgDeleteOrder, feed.MsgTrade, feed.MsgTime} {
		if typeCounts[t] > 0 {
			rows = append(rows, []string{t.String(), fmt.Sprint(typeCounts[t])})
		}
	}
	if len(rows) > 0 {
		fmt.Println(metrics.Table([]string{"message type", "count"}, rows))
	}
	// Per-unit loss accounting from the sequencing.
	for unit, r := range reasm {
		if m, g, lost := r.Stats(); g > 0 {
			fmt.Printf("unit %d: %d messages, %d gaps, %d lost\n", unit, m, g, lost)
		}
	}
}
