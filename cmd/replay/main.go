// Command replay drives the Figure 2(c) microburst second through a chosen
// network design's market-data path and reports the latency distribution a
// strategy would see — how each design holds up under the paper's peak
// workload.
//
// Usage:
//
//	replay -design commodity     # one 500ns switch hop
//	replay -design l1s           # one 5ns L1S hop
//	replay -design l1s-merge4    # four bursty feeds merged onto one NIC
package main

import (
	"flag"
	"fmt"
	"os"

	"math/rand"

	"tradenet/internal/capture"
	"tradenet/internal/device"
	"tradenet/internal/feed"
	"tradenet/internal/metrics"
	"tradenet/internal/netsim"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/units"
	"tradenet/internal/workload"
)

type latSink struct {
	port  *netsim.Port
	sched *sim.Scheduler
	h     *metrics.Histogram
}

func (s *latSink) HandleFrame(_ *netsim.Port, f *netsim.Frame) {
	s.h.Observe(int64(s.sched.Now().Sub(f.Origin)))
}

func main() {
	var (
		design   = flag.String("design", "commodity", "commodity | l1s | l1s-merge4")
		millis   = flag.Int("millis", 100, "how much of the busy second to replay")
		seed     = flag.Int64("seed", 1, "random seed")
		pcapPath = flag.String("pcap", "", "write the strategy-side traffic to this pcap file")
	)
	flag.Parse()

	sched := sim.NewScheduler(*seed)
	h := metrics.NewHistogram()
	sink := &latSink{sched: sched, h: h}
	sink.port = netsim.NewPort(sched, sink, "strategy")

	var pw *capture.PcapWriter
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcap: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		pw = capture.NewPcapWriter(f, 0)
	}
	tap := func(fr *netsim.Frame, at sim.Time) {
		if pw != nil {
			pw.WriteFrame(at, fr.Data)
		}
	}

	src := pkt.UDPAddr{MAC: pkt.HostMAC(1), IP: pkt.HostIP(1), Port: 1}
	grp := pkt.MulticastGroup(1, 1)
	dst := pkt.UDPAddr{MAC: pkt.MulticastMAC(grp), IP: grp, Port: 2}
	end := sim.Time(sim.Duration(*millis) * sim.Millisecond)
	rng := rand.New(rand.NewSource(*seed))

	// Scale the Fig 2(c) process down to the replayed window.
	mk := func() *workload.MMPP { return workload.DefaultFig2c().Process() }

	var drops func() uint64
	switch *design {
	case "commodity":
		sw := device.NewCommoditySwitch(sched, "sw", 2, device.DefaultCommodityConfig())
		sw.JoinGroup(grp, 1)
		tx := netsim.NewPort(sched, nil, "exchange")
		tx.SetQueueCapacity(1 << 26)
		netsim.Connect(tx, sw.Port(0), units.Rate10G, 0)
		sw.Port(1).Tap = tap
		netsim.Connect(sw.Port(1), sink.port, units.Rate10G, 0)
		gen := feed.NewFrameGen(feed.ExchangeB, src, dst)
		workload.Generate(sched, mk(), 0, end, func() {
			frame, _ := gen.Next(rng)
			tx.Send(&netsim.Frame{Data: append([]byte(nil), frame...), Origin: sched.Now()})
		})
		drops = func() uint64 { return sw.Port(1).Drops + tx.Drops }
	case "l1s":
		sw := device.NewL1Switch(sched, "l1s", 2, device.DefaultL1SConfig())
		sw.Circuit(0, 1)
		tx := netsim.NewPort(sched, nil, "exchange")
		tx.SetQueueCapacity(1 << 26)
		netsim.Connect(tx, sw.Port(0), units.Rate10G, 0)
		sw.Port(1).Tap = tap
		netsim.Connect(sw.Port(1), sink.port, units.Rate10G, 0)
		gen := feed.NewFrameGen(feed.ExchangeB, src, dst)
		workload.Generate(sched, mk(), 0, end, func() {
			frame, _ := gen.Next(rng)
			tx.Send(&netsim.Frame{Data: append([]byte(nil), frame...), Origin: sched.Now()})
		})
		drops = func() uint64 { return sw.Port(1).Drops + tx.Drops }
	case "l1s-merge4":
		const k = 4
		sw := device.NewL1Switch(sched, "l1s", k+1, device.DefaultL1SConfig())
		for i := 0; i < k; i++ {
			tx := netsim.NewPort(sched, nil, fmt.Sprintf("feed%d", i))
			tx.SetQueueCapacity(1 << 26)
			netsim.Connect(tx, sw.Port(i), units.Rate10G, 0)
			sw.Circuit(i, k)
			txp := tx
			gen := feed.NewFrameGen(feed.ExchangeB, src, dst)
			workload.Generate(sched, mk(), 0, end, func() {
				frame, _ := gen.Next(rng)
				txp.Send(&netsim.Frame{Data: append([]byte(nil), frame...), Origin: sched.Now()})
			})
		}
		sw.Port(k).Tap = tap
		netsim.Connect(sw.Port(k), sink.port, units.Rate10G, 0)
		drops = func() uint64 { return sw.Port(k).Drops }
	default:
		fmt.Fprintf(os.Stderr, "unknown design %q\n", *design)
		os.Exit(2)
	}

	sched.Run()
	s := h.Summarize()
	fmt.Printf("replayed %v of the Fig 2(c) burst through %s\n", sim.Duration(*millis)*sim.Millisecond, *design)
	if pw != nil {
		fmt.Printf("wrote %d frames to %s\n", pw.Frames, *pcapPath)
	}
	fmt.Printf("delivered %d frames, dropped %d\n", s.Count, drops())
	fmt.Println(metrics.Table(
		[]string{"metric", "latency"},
		[][]string{
			{"min", sim.Duration(s.Min).String()},
			{"median", sim.Duration(s.Median).String()},
			{"p99", sim.Duration(s.P99).String()},
			{"max", sim.Duration(s.Max).String()},
		}))
}
