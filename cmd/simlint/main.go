// Command simlint is the multichecker for the simulator's determinism and
// hot-path contracts. It runs five analyzers over the given package
// patterns and exits nonzero if any contract is violated:
//
//	wallclock   no time.Now/Since/Sleep in internal/ sim code
//	globalrand  no package-level math/rand draws
//	maporder    no map-ordered iteration reaching the event schedule
//	hotalloc    no closure-allocating At/After on the per-frame path
//	unitmix     no bare numeric literals in unit-typed positions
//
// Usage:
//
//	go run ./cmd/simlint ./...
//
// Findings can be suppressed line-by-line (or function-by-function via the
// doc comment) with a justified directive:
//
//	//simlint:allow wallclock: self-timing block measures real codec cost
//
// Unjustified and stale directives are themselves reported. See DESIGN.md
// "Determinism contract & simlint".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tradenet/internal/analysis"
	"tradenet/internal/analysis/globalrand"
	"tradenet/internal/analysis/hotalloc"
	"tradenet/internal/analysis/maporder"
	"tradenet/internal/analysis/unitmix"
	"tradenet/internal/analysis/wallclock"
)

// analyzers is the full simlint suite.
var analyzers = []*analysis.Analyzer{
	wallclock.Analyzer,
	globalrand.Analyzer,
	maporder.Analyzer,
	hotalloc.Analyzer,
	unitmix.Analyzer,
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		return
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		// All packages share one FileSet per Load call; any package's Fset
		// resolves the position.
		pos := pkgs[0].Fset.Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
