// Command simlint is the multichecker for the simulator's determinism,
// hot-path, and parallel-safety contracts. It runs nine analyzers over the
// given package patterns and exits nonzero if any contract is violated:
//
//	wallclock    no time.Now/Since/Sleep in internal/ sim code
//	globalrand   no package-level math/rand draws
//	maporder     no map-ordered iteration reaching the event schedule
//	hotalloc     no closure-allocating At/After on the per-frame path
//	unitmix      no bare numeric literals in unit-typed positions
//	sharedstate  no writes to package-level vars from run-reachable code
//	goroutine    no go/chan/select in simulation packages outside RunParallel
//	floatorder   no float accumulation in map-ordered or cross-worker merges
//	ptrorder     no pointer-keyed maps, %p, or pointer-comparison sorts
//
// The last four are interprocedural: they share a call graph over the
// whole load (static + interface dispatch + callback references) and a
// reachable-from-Run* taint, so run simlint over ./... — single-package
// invocations see fewer callers and therefore fewer findings.
//
// Usage:
//
//	go run ./cmd/simlint [-json] [packages]
//
// -json emits one JSON object per finding per line (file, line, col,
// analyzer, message), deterministically ordered by file, line, analyzer —
// the shape CI's problem matcher consumes to annotate PRs.
//
// Findings can be suppressed line-by-line (or function-by-function via the
// doc comment) with a justified directive:
//
//	//simlint:allow wallclock: self-timing block measures real codec cost
//
// Unjustified and stale directives are themselves reported. See DESIGN.md
// "Determinism contract & simlint" and "Parallel-safety contract".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tradenet/internal/analysis"
	"tradenet/internal/analysis/floatorder"
	"tradenet/internal/analysis/globalrand"
	"tradenet/internal/analysis/goroutine"
	"tradenet/internal/analysis/hotalloc"
	"tradenet/internal/analysis/maporder"
	"tradenet/internal/analysis/ptrorder"
	"tradenet/internal/analysis/sharedstate"
	"tradenet/internal/analysis/unitmix"
	"tradenet/internal/analysis/wallclock"
)

// analyzers is the full simlint suite.
var analyzers = []*analysis.Analyzer{
	wallclock.Analyzer,
	globalrand.Analyzer,
	maporder.Analyzer,
	hotalloc.Analyzer,
	unitmix.Analyzer,
	sharedstate.Analyzer,
	goroutine.Analyzer,
	floatorder.Analyzer,
	ptrorder.Analyzer,
}

// jsonFinding is the -json wire shape: one object per line, stable field
// order, so CI problem matchers can regexp it line by line.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON object per finding per line")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		name := d.Position.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
			name = rel
		}
		if *jsonOut {
			if err := enc.Encode(jsonFinding{
				File:     name,
				Line:     d.Position.Line,
				Col:      d.Position.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "simlint:", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, d.Position.Line, d.Position.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
