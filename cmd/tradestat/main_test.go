package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tradenet/internal/manifest"
)

// writeTel writes one telemetry dir of manifests with the given events/sec
// (events fixed, wall time derived) and alloc/event figures.
func writeTel(t *testing.T, dir string, evPerSec, allocPerEvent map[string]float64) {
	t.Helper()
	const events = 1_000_000
	var arts []*manifest.Artifact
	for name, ev := range evPerSec {
		a := &manifest.Artifact{
			Meta: manifest.Meta{Schema: manifest.Schema, Experiment: name, Seed: 1, Events: events},
			Host: &manifest.HostStats{
				WallNs:     int64(float64(events) / ev * 1e9),
				AllocBytes: uint64(allocPerEvent[name] * events),
			},
		}
		arts = append(arts, a)
	}
	if _, err := manifest.WriteDir(dir, arts); err != nil {
		t.Fatal(err)
	}
}

// TestCompareFlagsInjectedRegression is the acceptance check: a 5% drop in
// events/sec between two manifest sets must fail the default 2% gate, and
// the same sets must pass once the threshold is loosened past the drop.
func TestCompareFlagsInjectedRegression(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base")
	head := filepath.Join(t.TempDir(), "head")
	writeTel(t, base, map[string]float64{"designs": 10_000_000, "wan": 5_000_000}, map[string]float64{"designs": 100, "wan": 50})
	writeTel(t, head, map[string]float64{"designs": 9_500_000, "wan": 5_000_000}, map[string]float64{"designs": 100, "wan": 50})

	var out strings.Builder
	err := runCompare(&out, base, head, 0.02, 0.10, "")
	if err == nil {
		t.Fatalf("5%% events/sec drop passed the 2%% gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION designs-seed1: events/sec") {
		t.Errorf("regression not attributed to the right run:\n%s", out.String())
	}
	if strings.Contains(out.String(), "REGRESSION wan-seed1") {
		t.Errorf("unregressed run flagged:\n%s", out.String())
	}

	out.Reset()
	if err := runCompare(&out, base, head, 0.10, 0.10, ""); err != nil {
		t.Errorf("5%% drop failed the 10%% gate: %v\n%s", err, out.String())
	}
}

// TestCompareGCGate: alloc/event growth past the GC threshold fails even
// when events/sec holds.
func TestCompareGCGate(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base")
	head := filepath.Join(t.TempDir(), "head")
	writeTel(t, base, map[string]float64{"designs": 10_000_000}, map[string]float64{"designs": 100})
	writeTel(t, head, map[string]float64{"designs": 10_000_000}, map[string]float64{"designs": 120})

	var out strings.Builder
	if err := runCompare(&out, base, head, 0.02, 0.10, ""); err == nil {
		t.Fatalf("20%% alloc/event growth passed the 10%% GC gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "GC-pressure gate") {
		t.Errorf("failure not attributed to the GC gate:\n%s", out.String())
	}
}

// TestCompareCSV: the -csv export carries one line per matched run.
func TestCompareCSV(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base")
	head := filepath.Join(t.TempDir(), "head")
	writeTel(t, base, map[string]float64{"a": 1e6, "b": 2e6}, nil)
	writeTel(t, head, map[string]float64{"a": 1e6, "b": 2e6}, nil)
	csv := filepath.Join(t.TempDir(), "out.csv")
	var out strings.Builder
	if err := runCompare(&out, base, head, 0.02, 0.10, csv); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "run,base_events_per_sec") {
		t.Errorf("csv shape wrong:\n%s", data)
	}
}

// TestBenchGate: the -bench mode must parse `go test -bench` output,
// take best-of per benchmark, and gate on events/s.
func TestBenchGate(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "seed.out")
	headPath := filepath.Join(dir, "head.out")
	baseOut := `goos: linux
BenchmarkDesign1RoundTrip-8   3   12000000 ns/op   9900000 events/s   15.87 tick-to-trade-us
BenchmarkDesign1RoundTrip-8   3   12100000 ns/op  10000000 events/s   15.87 tick-to-trade-us
BenchmarkDesign3RoundTrip-8   3    9000000 ns/op   8000000 events/s
PASS
`
	headSlow := strings.ReplaceAll(baseOut, "9900000 events/s", "9300000 events/s")
	headSlow = strings.ReplaceAll(headSlow, "10000000 events/s", "9400000 events/s")
	if err := os.WriteFile(basePath, []byte(baseOut), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(headPath, []byte(headSlow), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	err := runBench(&out, basePath, headPath, 0.02)
	if err == nil {
		t.Fatalf("6%% bench drop passed the 2%% gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION BenchmarkDesign1RoundTrip") ||
		strings.Contains(out.String(), "REGRESSION BenchmarkDesign3RoundTrip") {
		t.Errorf("wrong benchmark flagged:\n%s", out.String())
	}

	// Identical outputs pass, and best-of picks the max sample.
	out.Reset()
	if err := runBench(&out, basePath, basePath, 0.02); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
	if !strings.Contains(out.String(), "10000000") {
		t.Errorf("best-of did not pick the 10000000 sample:\n%s", out.String())
	}
}

// TestCheckManifestsAndBenchJSON: -check accepts a valid telemetry dir and
// the repo's recorded BENCH_PR*.json files, and rejects corruption.
func TestCheckManifestsAndBenchJSON(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tel")
	writeTel(t, dir, map[string]float64{"designs": 1e6}, nil)

	benchRefs, err := filepath.Glob("../../BENCH_PR*.json")
	if err != nil || len(benchRefs) == 0 {
		t.Fatalf("no BENCH_PR*.json found at repo root: %v", err)
	}
	var out strings.Builder
	if err := runCheck(&out, append([]string{dir}, benchRefs...)); err != nil {
		t.Fatalf("valid inputs failed -check: %v\n%s", err, out.String())
	}

	// Corrupt manifest: schema mismatch must fail.
	bad := filepath.Join(t.TempDir(), "bad.ndjson")
	if err := os.WriteFile(bad, []byte(`{"record":"meta","schema":"tradenet.run.v9","experiment":"x","seed":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runCheck(&out, []string{bad}); err == nil {
		t.Fatalf("wrong-schema manifest passed -check:\n%s", out.String())
	}

	// Corrupt bench reference: no description.
	badJSON := filepath.Join(t.TempDir(), "BENCH_PRX.json")
	if err := os.WriteFile(badJSON, []byte(`{"knob_off":{"BenchmarkX":{"before":{"v":1}}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runCheck(&out, []string{badJSON}); err == nil {
		t.Fatalf("description-less bench json passed -check:\n%s", out.String())
	}
}

// TestTrend: runs appear across revision columns with their rates.
func TestTrend(t *testing.T) {
	r1 := filepath.Join(t.TempDir(), "r1")
	r2 := filepath.Join(t.TempDir(), "r2")
	writeTel(t, r1, map[string]float64{"designs": 1e6}, nil)
	writeTel(t, r2, map[string]float64{"designs": 2e6, "wan": 3e6}, nil)

	csv := filepath.Join(t.TempDir(), "trend.csv")
	var out strings.Builder
	if err := runTrend(&out, []string{r1, r2}, csv); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "designs-seed1") || !strings.Contains(s, "wan-seed1") {
		t.Errorf("trend missing runs:\n%s", s)
	}
	data, _ := os.ReadFile(csv)
	if lines := strings.Split(strings.TrimSpace(string(data)), "\n"); len(lines) != 3 {
		t.Errorf("trend csv shape wrong:\n%s", data)
	}
}
