package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchBest parses `go test -bench` output and returns the best (highest)
// events/s per benchmark name, GOMAXPROCS suffix stripped. With -count N
// each benchmark appears N times; best-of is the honest aggregate on a
// noisy box (the slow samples measure the machine, not the code).
func benchBest(r io.Reader) (map[string]float64, error) {
	best := map[string]float64{}
	procSuffix := regexp.MustCompile(`-\d+$`)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		for i := 1; i+1 < len(fields); i++ {
			if fields[i+1] != "events/s" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad events/s value %q", name, fields[i])
			}
			if v > best[name] {
				best[name] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return best, nil
}

// runBench compares two bench outputs on events/s, best-of per benchmark,
// and fails when head drops more than evThresh below base on any
// benchmark both sides report.
func runBench(w io.Writer, basePath, headPath string, evThresh float64) error {
	parse := func(path string) (map[string]float64, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		m, err := benchBest(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if len(m) == 0 {
			return nil, fmt.Errorf("%s: no benchmarks reporting events/s", path)
		}
		return m, nil
	}
	base, err := parse(basePath)
	if err != nil {
		return err
	}
	head, err := parse(headPath)
	if err != nil {
		return err
	}

	all := make([]string, 0, len(base))
	for n := range base {
		all = append(all, n)
	}
	sort.Strings(all)
	names := all[:0]
	for _, n := range all {
		if _, ok := head[n]; ok {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", basePath, headPath)
	}

	rows := make([][]string, 0, len(names))
	var regressions []string
	for _, n := range names {
		b, h := base[n], head[n]
		bad := h < (1-evThresh)*b
		delta := fmt.Sprintf("%+.1f%%", 100*(h/b-1))
		if bad {
			delta += " !"
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f -> %.0f events/s (%.1f%%), beyond the %.0f%% gate",
				n, b, h, 100*h/b, 100*evThresh))
		}
		rows = append(rows, []string{n, fmt.Sprintf("%.0f", b), fmt.Sprintf("%.0f", h), delta})
	}
	fmt.Fprintf(w, "Bench gate: %s (base) vs %s (head), best-of events/s\n", basePath, headPath)
	fmt.Fprint(w, table([]string{"benchmark", "base ev/s", "head ev/s", "delta"}, rows))
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(w, "REGRESSION %s\n", r)
		}
		return fmt.Errorf("%d regression(s)", len(regressions))
	}
	fmt.Fprintln(w, "ok: no regressions")
	return nil
}
