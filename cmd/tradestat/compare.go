package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"tradenet/internal/manifest"
)

// runCompare matches manifests between base and head by run identity and
// gates head's events/sec and alloc/event against base. Runs present on
// only one side are listed but don't gate (experiments come and go across
// PRs); matched runs without host stats or event counts are skipped for
// the rate and reported as such.
func runCompare(w io.Writer, baseDir, headDir string, evThresh, gcThresh float64, csvPath string) error {
	base, err := loadArtifacts(baseDir)
	if err != nil {
		return err
	}
	head, err := loadArtifacts(headDir)
	if err != nil {
		return err
	}
	baseBy := byKey(base)
	headBy := byKey(head)

	keys := make([]string, 0, len(baseBy))
	for k := range baseBy {
		if _, ok := headBy[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	type row struct {
		key                  string
		baseEv, headEv       float64 // events/sec
		baseAlloc, headAlloc float64 // alloc bytes/event
		evBad, gcBad         bool
	}
	var rows []row
	var regressions []string
	for _, k := range keys {
		b, h := baseBy[k], headBy[k]
		r := row{key: k,
			baseEv: b.EventsPerSec(), headEv: h.EventsPerSec(),
			baseAlloc: b.AllocPerEvent(), headAlloc: h.AllocPerEvent()}
		if r.baseEv > 0 && r.headEv > 0 && r.headEv < (1-evThresh)*r.baseEv {
			r.evBad = true
			regressions = append(regressions, fmt.Sprintf(
				"%s: events/sec %.0f -> %.0f (%.1f%%), beyond the %.0f%% gate",
				k, r.baseEv, r.headEv, 100*r.headEv/r.baseEv, 100*evThresh))
		}
		if r.baseAlloc > 0 && r.headAlloc > 0 && r.headAlloc > (1+gcThresh)*r.baseAlloc {
			r.gcBad = true
			regressions = append(regressions, fmt.Sprintf(
				"%s: alloc/event %.1f -> %.1f B (%.1f%%), beyond the %.0f%% GC-pressure gate",
				k, r.baseAlloc, r.headAlloc, 100*r.headAlloc/r.baseAlloc, 100*gcThresh))
		}
		rows = append(rows, r)
	}

	render := make([][]string, 0, len(rows))
	var csv strings.Builder
	csv.WriteString("run,base_events_per_sec,head_events_per_sec,events_ratio,base_alloc_per_event,head_alloc_per_event,alloc_ratio\n")
	for _, r := range rows {
		render = append(render, []string{
			r.key,
			rate(r.baseEv), rate(r.headEv), ratioCell(r.baseEv, r.headEv, r.evBad, false),
			bytesPer(r.baseAlloc), bytesPer(r.headAlloc), ratioCell(r.baseAlloc, r.headAlloc, r.gcBad, true),
		})
		fmt.Fprintf(&csv, "%s,%.0f,%.0f,%s,%.2f,%.2f,%s\n",
			r.key, r.baseEv, r.headEv, csvRatio(r.baseEv, r.headEv),
			r.baseAlloc, r.headAlloc, csvRatio(r.baseAlloc, r.headAlloc))
	}
	fmt.Fprintf(w, "Telemetry comparison: %s (base) vs %s (head), %d matched run(s)\n",
		baseDir, headDir, len(rows))
	fmt.Fprint(w, table([]string{"run", "base ev/s", "head ev/s", "delta", "base B/ev", "head B/ev", "delta"}, render))
	for _, k := range onlyIn(baseBy, headBy) {
		fmt.Fprintf(w, "only in base: %s\n", k)
	}
	for _, k := range onlyIn(headBy, baseBy) {
		fmt.Fprintf(w, "only in head: %s\n", k)
	}

	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(csv.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", csvPath)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(w, "REGRESSION %s\n", r)
		}
		return fmt.Errorf("%d regression(s)", len(regressions))
	}
	if len(rows) == 0 {
		return fmt.Errorf("no matched runs between %s and %s", baseDir, headDir)
	}
	fmt.Fprintln(w, "ok: no regressions")
	return nil
}

// byKey indexes artifacts by run identity; a duplicate key keeps the
// first (LoadDir order is deterministic).
func byKey(arts []*manifest.Artifact) map[string]*manifest.Artifact {
	m := make(map[string]*manifest.Artifact, len(arts))
	for _, a := range arts {
		k := runKey(a)
		if _, ok := m[k]; !ok {
			m[k] = a
		}
	}
	return m
}

// onlyIn returns keys of a not present in b, sorted.
func onlyIn(a, b map[string]*manifest.Artifact) []string {
	var out []string
	for k := range a {
		if _, ok := b[k]; !ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func rate(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}

func bytesPer(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

// ratioCell renders head/base; flagged cells carry a marker so the
// regression is visible in the table, not only in the FAIL lines.
func ratioCell(base, head float64, bad, moreIsWorse bool) string {
	if base == 0 || head == 0 {
		return "-"
	}
	s := fmt.Sprintf("%+.1f%%", 100*(head/base-1))
	if bad {
		s += " !"
	}
	_ = moreIsWorse
	return s
}

func csvRatio(base, head float64) string {
	if base == 0 || head == 0 {
		return ""
	}
	return fmt.Sprintf("%.4f", head/base)
}

// runTrend renders events/sec per run across telemetry directories in
// argument order — the perf trajectory across revisions.
func runTrend(w io.Writer, dirs []string, csvPath string) error {
	cols := make([]map[string]*manifest.Artifact, len(dirs))
	keySet := map[string]bool{}
	for i, d := range dirs {
		arts, err := loadArtifacts(d)
		if err != nil {
			return err
		}
		cols[i] = byKey(arts)
		for k := range cols[i] {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	headers := append([]string{"run"}, dirs...)
	rows := make([][]string, 0, len(keys))
	var csv strings.Builder
	csv.WriteString("run," + strings.Join(dirs, ",") + "\n")
	for _, k := range keys {
		row := []string{k}
		csvRow := []string{k}
		for i := range dirs {
			v := 0.0
			if a, ok := cols[i][k]; ok {
				v = a.EventsPerSec()
			}
			row = append(row, rate(v))
			csvRow = append(csvRow, fmt.Sprintf("%.0f", v))
		}
		rows = append(rows, row)
		csv.WriteString(strings.Join(csvRow, ",") + "\n")
	}
	fmt.Fprintf(w, "events/sec trend across %d revision(s)\n", len(dirs))
	fmt.Fprint(w, table(headers, rows))
	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(csv.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", csvPath)
	}
	return nil
}
