package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tradenet/internal/manifest"
)

// runCheck validates every argument: directories and *.ndjson files as
// run manifests, BENCH_PR*.json files as recorded benchmark references.
// All problems are reported before failing.
func runCheck(w io.Writer, paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("-check: no paths given")
	}
	var problems []string
	checked := 0
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			problems = append(problems, err.Error())
			continue
		}
		switch {
		case st.IsDir():
			arts, err := manifest.LoadDir(p)
			if err != nil {
				problems = append(problems, err.Error())
				continue
			}
			if len(arts) == 0 {
				problems = append(problems, fmt.Sprintf("%s: no *.ndjson manifests", p))
				continue
			}
			for _, a := range arts {
				if err := a.Validate(); err != nil {
					problems = append(problems, fmt.Sprintf("%s/%s: %v", p, a.Filename(), err))
				}
				checked++
			}
		case strings.HasSuffix(p, ".ndjson"):
			a, err := manifest.Load(p)
			if err == nil {
				err = a.Validate()
			}
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: %v", p, err))
			}
			checked++
		case strings.HasSuffix(p, ".json"):
			if err := checkBenchJSON(p); err != nil {
				problems = append(problems, fmt.Sprintf("%s: %v", p, err))
			}
			checked++
		default:
			problems = append(problems, fmt.Sprintf("%s: not a manifest (.ndjson), telemetry dir, or bench reference (.json)", p))
		}
	}
	for _, p := range problems {
		fmt.Fprintf(w, "FAIL %s\n", p)
	}
	if len(problems) > 0 {
		return fmt.Errorf("%d problem(s) in %d checked file(s)", len(problems), checked)
	}
	fmt.Fprintf(w, "ok: %d file(s) checked\n", checked)
	return nil
}

// checkBenchJSON validates a BENCH_PR*.json recorded-benchmark file: a
// description, optional determinism note, and per-knob sections mapping
// benchmark names to {before, after, ratio} entries.
func checkBenchJSON(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		return err
	}
	var desc string
	if err := json.Unmarshal(doc["description"], &desc); err != nil || desc == "" {
		return fmt.Errorf("missing or empty description")
	}
	sections := 0
	keys := make([]string, 0, len(doc))
	for k := range doc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if k == "description" || k == "determinism" {
			continue
		}
		var sec map[string]struct {
			Before map[string]json.RawMessage `json:"before"`
			After  map[string]json.RawMessage `json:"after"`
			Ratio  *float64                   `json:"ratio"`
		}
		if err := json.Unmarshal(doc[k], &sec); err != nil {
			return fmt.Errorf("section %q: %w", k, err)
		}
		for name, e := range sec {
			if !strings.HasPrefix(name, "Benchmark") {
				return fmt.Errorf("section %q: entry %q is not a Benchmark name", k, name)
			}
			if len(e.Before) == 0 && len(e.After) == 0 {
				return fmt.Errorf("section %q: %s has neither before nor after numbers", k, name)
			}
			if e.Ratio != nil && (*e.Ratio <= 0 || *e.Ratio > 100) {
				return fmt.Errorf("section %q: %s ratio %v out of range", k, name, *e.Ratio)
			}
		}
		sections++
	}
	if sections == 0 {
		return fmt.Errorf("no benchmark sections")
	}
	return nil
}

// loadArtifacts loads one path: a telemetry directory or a single
// manifest file.
func loadArtifacts(path string) ([]*manifest.Artifact, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		return manifest.LoadDir(path)
	}
	a, err := manifest.Load(path)
	if err != nil {
		return nil, err
	}
	return []*manifest.Artifact{a}, nil
}

// runKey names a run across revisions: the canonical filename minus its
// extension, i.e. experiment[-design][-cell]-seed<seed>.
func runKey(a *manifest.Artifact) string {
	return strings.TrimSuffix(a.Filename(), filepath.Ext(a.Filename()))
}
