// Command tradestat is the perf-trajectory observatory: it reads the run
// manifests cmd/tradenet writes (-telemetry, schema tradenet.run.v1) and
// the recorded BENCH_PR*.json reference numbers, computes benchstat-style
// deltas across runs/seeds/revisions, and exits non-zero on regression —
// the CI perf gate.
//
// Modes (exactly one):
//
//	tradestat -check <manifest|dir|BENCH_PR*.json>...
//	    Validate manifests against the schema and BENCH_PR*.json files
//	    against the recorded-benchmark shape. Exit 1 on any failure.
//
//	tradestat -compare <baseDir> <headDir>
//	    Match manifests between two telemetry directories by run identity
//	    (experiment/design/cell/seed) and compare events/sec and GC
//	    pressure (alloc bytes/event). Exit 1 if head regresses beyond the
//	    thresholds on any matched run.
//
//	tradestat -bench <base.out> <head.out>
//	    Compare two `go test -bench` outputs on their events/s metric,
//	    best-of per benchmark (min ns/op is the honest sample on a noisy
//	    box). Exit 1 on regression beyond -events-threshold. This replaces
//	    the ad-hoc awk gate that used to live in CI.
//
//	tradestat -trend <dir>...
//	    Render events/sec per run across several telemetry directories
//	    (revisions, in argument order) as a trend table.
//
// Common flags: -events-threshold (default 0.02 — the ≤2% events/sec
// gate), -gc-threshold (default 0.10 on alloc/event), -csv <file> to also
// write the comparison/trend as CSV.
package main

import (
	"flag"
	"fmt"
	"os"

	"tradenet/internal/metrics"
)

func main() {
	var (
		check    = flag.Bool("check", false, "validate manifests and BENCH_PR*.json files")
		compare  = flag.Bool("compare", false, "compare two telemetry directories (base head)")
		bench    = flag.Bool("bench", false, "compare two `go test -bench` outputs (base.out head.out)")
		trend    = flag.Bool("trend", false, "render events/sec trends across telemetry directories")
		evThresh = flag.Float64("events-threshold", 0.02, "fail -compare/-bench when head events/sec drops more than this fraction")
		gcThresh = flag.Float64("gc-threshold", 0.10, "fail -compare when head alloc-bytes/event grows more than this fraction")
		csvPath  = flag.String("csv", "", "also write the comparison/trend table as CSV to this file")
	)
	flag.Parse()
	args := flag.Args()

	modes := 0
	for _, m := range []bool{*check, *compare, *bench, *trend} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "tradestat: exactly one of -check, -compare, -bench, -trend is required")
		flag.Usage()
		os.Exit(2)
	}

	var err error
	switch {
	case *check:
		err = runCheck(os.Stdout, args)
	case *compare:
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "tradestat -compare: want exactly two directories (base head)")
			os.Exit(2)
		}
		err = runCompare(os.Stdout, args[0], args[1], *evThresh, *gcThresh, *csvPath)
	case *bench:
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "tradestat -bench: want exactly two bench outputs (base.out head.out)")
			os.Exit(2)
		}
		err = runBench(os.Stdout, args[0], args[1], *evThresh)
	case *trend:
		if len(args) == 0 {
			fmt.Fprintln(os.Stderr, "tradestat -trend: want one or more telemetry directories")
			os.Exit(2)
		}
		err = runTrend(os.Stdout, args, *csvPath)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tradestat: %v\n", err)
		os.Exit(1)
	}
}

// table is a tiny alias so the render helpers read naturally.
func table(headers []string, rows [][]string) string {
	return metrics.Table(headers, rows)
}
