package main

import (
	"strings"
	"testing"
)

// Every registered experiment must be listed in the usage message — the
// usage and the runnable set derive from the same slice, so an id missing
// here means the registry itself lost an entry.
func TestUsageListsEveryExperiment(t *testing.T) {
	var b strings.Builder
	writeUsage(&b, "nope")
	usage := b.String()
	if !strings.Contains(usage, `unknown experiment "nope"`) {
		t.Fatalf("usage missing unknown-id echo: %q", usage)
	}
	for _, e := range experiments {
		if !strings.Contains(usage, " "+e.id) {
			t.Errorf("experiment %q not listed in usage: %q", e.id, usage)
		}
	}
}

func TestExperimentIDsUniqueAndRunnable(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range experiments {
		if e.id == "" || e.id == "all" {
			t.Errorf("reserved or empty experiment id %q", e.id)
		}
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.run == nil {
			t.Errorf("experiment %q has no runner", e.id)
		}
		if got, ok := lookupExperiment(e.id); !ok || got.id != e.id {
			t.Errorf("lookupExperiment(%q) failed", e.id)
		}
	}
	if _, ok := lookupExperiment("definitely-not-registered"); ok {
		t.Error("lookupExperiment matched an unregistered id")
	}
}
