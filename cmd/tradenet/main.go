// Command tradenet runs the paper-reproduction experiments and prints the
// corresponding tables and figure statistics.
//
// Usage:
//
//	tradenet -experiment all
//	tradenet -experiment table1 -frames 500000
//	tradenet -experiment designs -scale paper
//	tradenet -experiment attribution -trace trace.json
//	tradenet -experiment all -telemetry out/telemetry
//
// Experiments (see DESIGN.md's per-experiment index):
//
//	table1      E1  — frame lengths per feed (Table 1)
//	fig2a       E2  — daily event growth (Figure 2a)
//	fig2b       E3  — single stock intraday, 1s windows (Figure 2b)
//	fig2c       E4  — busiest second, 100µs windows (Figure 2c)
//	designs     E5+E6+E12 — round trips through Designs 1, 3, 2
//	mroute      E7  — multicast table overflow cliff
//	generations E8  — switch latency/multicast trends
//	merge       E9  — L1S merge bottleneck sweep
//	overhead    E10 — header overhead + compact-transport ablation
//	partitions  E11 — partition growth vs mroute capacity
//	budget      E13 — per-event budgets vs measured codec cost
//	wan         E14 — microwave vs fiber inter-colo circuits
//	dualpath    E15 — A/B arbitration over microwave + fiber with rain
//	colocation  E16 — co-located vs remote firm tick-to-trade race
//	metronbbo   E17 — cross-colo NBBO skew at a surveillance host
//	filtermerge A1  — FPGA-filtered L1S merging (§5 Hardware)
//	placement   A2  — rack placement optimization (§5 Cluster Management)
//	groupmap    A3  — partition→group mapping co-design (§5 Routing)
//	timestamps  A4  — clock-sync precision vs event ordering (§2)
//	filterplace A5  — in-process vs middlebox filtering crossover (§3)
//	correlated  A6  — correlated cross-feed bursts at a merge (§2)
//	corepin     A7  — core isolation vs shared cores (Fig. 1d)
//	genrt       E8b — Design 1 round trip across switch generations
//	stalequotes E18 — the cost of latency: repricing races an aggressor
//	failover    E19 — deterministic fault injection: spine kill + WAN outage
//	attribution E20 — flight-recorder latency attribution across designs
//	oefailover  E21 — order-entry session kill: liveness, cancel-on-disconnect, replay
//	wanredundancy E22 — adaptive WAN redundancy: recovery policy × rain fade × design
//	exchangefailover E23 — primary venue crash: journal replication, promotion, zero-loss failover
//
// Pass -csv <dir> to also export the Figure 2 data series as CSV. Pass
// -trace <file> with -experiment attribution to export the recorded spans
// as Chrome trace-event JSON (chrome://tracing, Perfetto).
//
// Pass -telemetry <dir> to arm the virtual-time telemetry plane and write
// one NDJSON run manifest per run under <dir> (schema tradenet.run.v1; see
// DESIGN.md "Telemetry plane"). Experiments with sampler wiring (designs,
// wanredundancy) emit time-resolved metric series, registry dumps, and
// scheduler profiles; every other experiment emits a meta + host-stats
// manifest so the perf observatory (cmd/tradestat) can track its wall
// clock and GC pressure across revisions. Everything in a manifest except
// the hoststats line is a pure function of the seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tradenet/internal/core"
	"tradenet/internal/manifest"
	"tradenet/internal/sim"
)

// runCfg carries the parsed flags to experiment runners.
type runCfg struct {
	sc        core.Scenario
	seed      int64
	frames    int
	bursts    int
	reps      int
	tracePath string
}

// experimentSpec is one runnable experiment: its id (the -experiment value)
// and runner. The single ordered experiments slice below drives -experiment
// all, the usage listing, and lookup — one registry, no parallel lists to
// drift apart. Runners print their report and return any rich run
// manifests; nil means the driver synthesizes a meta-only manifest when
// telemetry is requested.
type experimentSpec struct {
	id  string
	run func(cfg runCfg) []*manifest.Artifact
}

// show adapts a print-only experiment to the runner signature.
func show(run func(c runCfg) fmt.Stringer) func(runCfg) []*manifest.Artifact {
	return func(c runCfg) []*manifest.Artifact {
		fmt.Println(run(c))
		return nil
	}
}

// metaArtifact builds a meta-only manifest for experiments without sampler
// wiring, optionally carrying deterministic text logs.
func metaArtifact(experiment, design, cell string, seed int64, faults, decisions []manifest.LogRecord) *manifest.Artifact {
	return &manifest.Artifact{
		Meta: manifest.Meta{
			Schema:     manifest.Schema,
			Experiment: experiment,
			Design:     design,
			Cell:       cell,
			Seed:       seed,
		},
		Faults:    faults,
		Decisions: decisions,
	}
}

var experiments = []experimentSpec{
	{"table1", show(func(c runCfg) fmt.Stringer { return core.RunTable1(c.frames, c.seed) })},
	{"fig2a", show(func(c runCfg) fmt.Stringer { return core.RunFig2a(c.seed) })},
	{"fig2b", show(func(c runCfg) fmt.Stringer { return core.RunFig2b(c.seed) })},
	{"fig2c", show(func(c runCfg) fmt.Stringer { return core.RunFig2c(c.seed) })},
	{"designs", func(c runCfg) []*manifest.Artifact {
		if c.reps > 1 {
			r := core.RunDesignComparisonSeeds(c.sc, c.bursts, core.Seeds(c.seed, c.reps))
			fmt.Println(r)
			var arts []*manifest.Artifact
			for _, run := range r.Runs {
				arts = append(arts, run.Artifacts...)
			}
			return arts
		}
		r := core.RunDesignComparison(c.sc, c.bursts)
		fmt.Println(r)
		return r.Artifacts
	}},
	{"mroute", func(c runCfg) []*manifest.Artifact {
		if c.reps > 1 {
			fmt.Println(core.RunMrouteOverflowSeeds(40, 20, 60, core.Seeds(c.seed, c.reps)))
			return nil
		}
		fmt.Println(core.RunMrouteOverflow(40, 20, 60, c.seed))
		return nil
	}},
	{"generations", show(func(c runCfg) fmt.Stringer { return core.RunGenerations() })},
	{"merge", show(func(c runCfg) fmt.Stringer { return core.RunMergeBottleneck([]int{1, 2, 4, 8}, 50, c.seed) })},
	{"overhead", show(func(c runCfg) fmt.Stringer { return core.RunHeaderOverhead(c.frames, c.seed) })},
	{"partitions", show(func(c runCfg) fmt.Stringer { return core.RunPartitionScaling(4) })},
	{"budget", show(func(c runCfg) fmt.Stringer { return core.RunPerEventBudget(2_000_000) })},
	{"wan", show(func(c runCfg) fmt.Stringer { return core.RunWAN(1000, c.seed) })},
	// §5 future-work ablations:
	{"filtermerge", show(func(c runCfg) fmt.Stringer { return core.RunFilteredMerge([]int{2, 4, 8}, 50, c.seed) })},
	{"placement", show(func(c runCfg) fmt.Stringer { return core.RunPlacement(4, 64, 4, 11, 10, c.seed) })},
	{"groupmap", show(func(c runCfg) fmt.Stringer { return core.RunGroupMapping(1024, 64, 50, c.seed) })},
	{"timestamps", show(func(c runCfg) fmt.Stringer { return core.RunTimestampPrecision(20_000, c.seed) })},
	{"filterplace", show(func(c runCfg) fmt.Stringer { return core.RunFilterPlacement() })},
	{"dualpath", show(func(c runCfg) fmt.Stringer { return core.RunDualPathWAN(5000, c.seed) })},
	{"correlated", show(func(c runCfg) fmt.Stringer { return core.RunCorrelatedMerge(4, 60, c.seed) })},
	{"colocation", show(func(c runCfg) fmt.Stringer { return core.RunColocation(2*sim.Microsecond, c.seed) })},
	{"metronbbo", show(func(c runCfg) fmt.Stringer { return core.RunMetroNBBO(500*sim.Millisecond, c.seed) })},
	{"genrt", show(func(c runCfg) fmt.Stringer { return core.RunGenerationRoundTrip(c.sc, c.bursts) })},
	{"corepin", show(func(c runCfg) fmt.Stringer { return core.RunCorePinning(100, c.seed) })},
	{"stalequotes", show(func(c runCfg) fmt.Stringer {
		lats := []sim.Duration{500 * sim.Nanosecond, 2 * sim.Microsecond, 5 * sim.Microsecond,
			10 * sim.Microsecond, 20 * sim.Microsecond, 50 * sim.Microsecond}
		return core.RunStaleQuotes(lats, 20, 15*sim.Microsecond, c.seed)
	})},
	{"failover", func(c runCfg) []*manifest.Artifact {
		r := core.RunFailover(c.sc, core.Seeds(c.seed, c.reps))
		fmt.Println(r)
		var arts []*manifest.Artifact
		for _, run := range r.Runs {
			arts = append(arts,
				metaArtifact("failover", "", "spine", run.Seed,
					[]manifest.LogRecord{{Name: "faults", Log: run.Spine.FaultLog}}, nil),
				metaArtifact("failover", "", "wan-outage", run.Seed,
					[]manifest.LogRecord{{Name: "faults", Log: run.WAN.FaultLog}}, nil))
		}
		return arts
	}},
	{"oefailover", func(c runCfg) []*manifest.Artifact {
		r := core.RunOEFailover(c.sc, core.Seeds(c.seed, c.reps))
		fmt.Println(r)
		var arts []*manifest.Artifact
		for _, run := range r.Runs {
			for _, d := range run.Designs {
				arts = append(arts, metaArtifact("oefailover", d.Design, "", run.Seed,
					[]manifest.LogRecord{{Name: "faults", Log: d.FaultLog}}, nil))
			}
		}
		return arts
	}},
	{"wanredundancy", func(c runCfg) []*manifest.Artifact {
		r := core.RunWANRedundancy(c.sc, core.Seeds(c.seed, c.reps))
		fmt.Println(r)
		var arts []*manifest.Artifact
		for _, run := range r.Runs {
			for _, m := range run.Matrix {
				if m.Artifact != nil {
					arts = append(arts, m.Artifact)
				}
			}
			// Designs[0] reuses the Matrix[3] run (same plant, same
			// artifact) — only the fresh design-sweep cells add manifests.
			for _, m := range run.Designs[1:] {
				if m.Artifact != nil {
					arts = append(arts, m.Artifact)
				}
			}
		}
		return arts
	}},
	{"exchangefailover", func(c runCfg) []*manifest.Artifact {
		r := core.RunExchangeFailover(c.sc, core.Seeds(c.seed, c.reps))
		fmt.Println(r)
		var arts []*manifest.Artifact
		for _, run := range r.Runs {
			for _, d := range run.Designs {
				arts = append(arts, metaArtifact("exchangefailover", d.Design, "", run.Seed,
					[]manifest.LogRecord{{Name: "faults", Log: d.FaultLog}},
					[]manifest.LogRecord{{Name: "promotion", Log: d.DecisionLog}}))
			}
		}
		return arts
	}},
	{"attribution", func(c runCfg) []*manifest.Artifact {
		r := core.RunAttribution(c.sc, c.bursts)
		fmt.Println(r)
		if c.tracePath != "" {
			f, err := os.Create(c.tracePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace export: %v\n", err)
				os.Exit(1)
			}
			if err := r.WriteChrome(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace export: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", c.tracePath)
		}
		return nil
	}},
}

// lookupExperiment finds a spec by id.
func lookupExperiment(id string) (experimentSpec, bool) {
	for _, e := range experiments {
		if e.id == id {
			return e, true
		}
	}
	return experimentSpec{}, false
}

// writeUsage lists every registered experiment id, in registry order.
func writeUsage(w io.Writer, unknown string) {
	fmt.Fprintf(w, "unknown experiment %q; known:", unknown)
	for _, e := range experiments {
		fmt.Fprintf(w, " %s", e.id)
	}
	fmt.Fprintln(w)
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id or 'all'")
		scale      = flag.String("scale", "small", "plant scale: small | paper")
		seed       = flag.Int64("seed", 1, "random seed")
		frames     = flag.Int("frames", 200_000, "frames for table1/overhead")
		bursts     = flag.Int("bursts", 4, "measurement bursts for design round trips")
		reps       = flag.Int("replications", 1, "independent seeds per experiment (seed, seed+1, ...), fanned across CPUs; applies to designs and mroute")
		csvDir     = flag.String("csv", "", "also write Figure 2 data series as CSV into this directory")
		tracePath  = flag.String("trace", "", "write the attribution experiment's Chrome trace JSON to this file")
		telDir     = flag.String("telemetry", "", "arm the telemetry plane and write NDJSON run manifests into this directory")
		sampleUs   = flag.Int64("sample-interval-us", 500, "telemetry sampling interval in virtual microseconds")
	)
	flag.Parse()

	sc := core.SmallScenario()
	if *scale == "paper" {
		sc = core.PaperScenario()
	}
	sc.Seed = *seed
	if *telDir != "" {
		sc.Telemetry = &core.TelemetrySpec{Interval: sim.Duration(*sampleUs) * sim.Microsecond}
	}

	if *csvDir != "" {
		files, err := core.WriteFigureCSVs(*csvDir, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csv export: %v\n", err)
			os.Exit(1)
		}
		for _, f := range files {
			fmt.Printf("wrote %s\n", f)
		}
	}

	cfg := runCfg{sc: sc, seed: *seed, frames: *frames, bursts: *bursts,
		reps: *reps, tracePath: *tracePath}

	// runOne executes the experiment; with -telemetry it brackets the run
	// with a wall-clock/MemStats host collector and collects manifests (a
	// synthesized meta-only one when the runner emits none), so every
	// experiment leaves a trace for the perf observatory.
	var manifests []*manifest.Artifact
	runOne := func(e experimentSpec) {
		if *telDir == "" {
			e.run(cfg)
			return
		}
		hc := manifest.BeginHostStats()
		arts := e.run(cfg)
		host := hc.End()
		if len(arts) == 0 {
			arts = []*manifest.Artifact{metaArtifact(e.id, "", "", *seed, nil, nil)}
		}
		for _, a := range arts {
			a.Host = host
		}
		manifests = append(manifests, arts...)
	}

	if *experiment == "all" {
		for _, e := range experiments {
			fmt.Printf("=== %s ===\n", e.id)
			runOne(e)
		}
	} else {
		e, ok := lookupExperiment(*experiment)
		if !ok {
			writeUsage(os.Stderr, *experiment)
			os.Exit(2)
		}
		runOne(e)
	}

	if *telDir != "" {
		paths, err := manifest.WriteDir(*telDir, manifests)
		if err != nil {
			fmt.Fprintf(os.Stderr, "telemetry export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d run manifests to %s\n", len(paths), *telDir)
	}
}
