// Command tradenet runs the paper-reproduction experiments and prints the
// corresponding tables and figure statistics.
//
// Usage:
//
//	tradenet -experiment all
//	tradenet -experiment table1 -frames 500000
//	tradenet -experiment designs -scale paper
//
// Experiments (see DESIGN.md's per-experiment index):
//
//	table1      E1  — frame lengths per feed (Table 1)
//	fig2a       E2  — daily event growth (Figure 2a)
//	fig2b       E3  — single stock intraday, 1s windows (Figure 2b)
//	fig2c       E4  — busiest second, 100µs windows (Figure 2c)
//	designs     E5+E6+E12 — round trips through Designs 1, 3, 2
//	mroute      E7  — multicast table overflow cliff
//	generations E8  — switch latency/multicast trends
//	merge       E9  — L1S merge bottleneck sweep
//	overhead    E10 — header overhead + compact-transport ablation
//	partitions  E11 — partition growth vs mroute capacity
//	budget      E13 — per-event budgets vs measured codec cost
//	wan         E14 — microwave vs fiber inter-colo circuits
//	dualpath    E15 — A/B arbitration over microwave + fiber with rain
//	colocation  E16 — co-located vs remote firm tick-to-trade race
//	metronbbo   E17 — cross-colo NBBO skew at a surveillance host
//	filtermerge A1  — FPGA-filtered L1S merging (§5 Hardware)
//	placement   A2  — rack placement optimization (§5 Cluster Management)
//	groupmap    A3  — partition→group mapping co-design (§5 Routing)
//	timestamps  A4  — clock-sync precision vs event ordering (§2)
//	filterplace A5  — in-process vs middlebox filtering crossover (§3)
//	correlated  A6  — correlated cross-feed bursts at a merge (§2)
//	corepin     A7  — core isolation vs shared cores (Fig. 1d)
//	genrt       E8b — Design 1 round trip across switch generations
//	stalequotes E18 — the cost of latency: repricing races an aggressor
//	failover    E19 — deterministic fault injection: spine kill + WAN outage
//
// Pass -csv <dir> to also export the Figure 2 data series as CSV.
package main

import (
	"flag"
	"fmt"
	"os"

	"tradenet/internal/core"
	"tradenet/internal/sim"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id or 'all'")
		scale      = flag.String("scale", "small", "plant scale: small | paper")
		seed       = flag.Int64("seed", 1, "random seed")
		frames     = flag.Int("frames", 200_000, "frames for table1/overhead")
		bursts     = flag.Int("bursts", 4, "measurement bursts for design round trips")
		reps       = flag.Int("replications", 1, "independent seeds per experiment (seed, seed+1, ...), fanned across CPUs; applies to designs and mroute")
		csvDir     = flag.String("csv", "", "also write Figure 2 data series as CSV into this directory")
	)
	flag.Parse()

	sc := core.SmallScenario()
	if *scale == "paper" {
		sc = core.PaperScenario()
	}
	sc.Seed = *seed

	if *csvDir != "" {
		files, err := core.WriteFigureCSVs(*csvDir, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csv export: %v\n", err)
			os.Exit(1)
		}
		for _, f := range files {
			fmt.Printf("wrote %s\n", f)
		}
	}

	runners := map[string]func(){
		"table1": func() { fmt.Println(core.RunTable1(*frames, *seed)) },
		"fig2a":  func() { fmt.Println(core.RunFig2a(*seed)) },
		"fig2b":  func() { fmt.Println(core.RunFig2b(*seed)) },
		"fig2c":  func() { fmt.Println(core.RunFig2c(*seed)) },
		"designs": func() {
			if *reps > 1 {
				fmt.Println(core.RunDesignComparisonSeeds(sc, *bursts, core.Seeds(*seed, *reps)))
				return
			}
			fmt.Println(core.RunDesignComparison(sc, *bursts))
		},
		"mroute": func() {
			if *reps > 1 {
				fmt.Println(core.RunMrouteOverflowSeeds(40, 20, 60, core.Seeds(*seed, *reps)))
				return
			}
			fmt.Println(core.RunMrouteOverflow(40, 20, 60, *seed))
		},
		"generations": func() { fmt.Println(core.RunGenerations()) },
		"merge":       func() { fmt.Println(core.RunMergeBottleneck([]int{1, 2, 4, 8}, 50, *seed)) },
		"overhead":    func() { fmt.Println(core.RunHeaderOverhead(*frames, *seed)) },
		"partitions":  func() { fmt.Println(core.RunPartitionScaling(4)) },
		"budget":      func() { fmt.Println(core.RunPerEventBudget(2_000_000)) },
		"wan":         func() { fmt.Println(core.RunWAN(1000, *seed)) },
		// §5 future-work ablations:
		"filtermerge": func() { fmt.Println(core.RunFilteredMerge([]int{2, 4, 8}, 50, *seed)) },
		"placement":   func() { fmt.Println(core.RunPlacement(4, 64, 4, 11, 10, *seed)) },
		"groupmap":    func() { fmt.Println(core.RunGroupMapping(1024, 64, 50, *seed)) },
		"timestamps":  func() { fmt.Println(core.RunTimestampPrecision(20_000, *seed)) },
		"filterplace": func() { fmt.Println(core.RunFilterPlacement()) },
		"dualpath":    func() { fmt.Println(core.RunDualPathWAN(5000, *seed)) },
		"correlated":  func() { fmt.Println(core.RunCorrelatedMerge(4, 60, *seed)) },
		"colocation":  func() { fmt.Println(core.RunColocation(2*sim.Microsecond, *seed)) },
		"metronbbo":   func() { fmt.Println(core.RunMetroNBBO(500*sim.Millisecond, *seed)) },
		"genrt":       func() { fmt.Println(core.RunGenerationRoundTrip(sc, *bursts)) },
		"corepin":     func() { fmt.Println(core.RunCorePinning(100, *seed)) },
		"stalequotes": func() {
			lats := []sim.Duration{500 * sim.Nanosecond, 2 * sim.Microsecond, 5 * sim.Microsecond,
				10 * sim.Microsecond, 20 * sim.Microsecond, 50 * sim.Microsecond}
			fmt.Println(core.RunStaleQuotes(lats, 20, 15*sim.Microsecond, *seed))
		},
		"failover": func() { fmt.Println(core.RunFailover(sc, core.Seeds(*seed, *reps))) },
	}
	order := []string{"table1", "fig2a", "fig2b", "fig2c", "designs", "mroute",
		"generations", "merge", "overhead", "partitions", "budget", "wan",
		"filtermerge", "placement", "groupmap", "timestamps", "filterplace",
		"dualpath", "correlated", "colocation", "metronbbo", "genrt", "corepin",
		"stalequotes", "failover"}

	if *experiment == "all" {
		for _, id := range order {
			fmt.Printf("=== %s ===\n", id)
			runners[id]()
		}
		return
	}
	run, ok := runners[*experiment]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known:", *experiment)
		for _, id := range order {
			fmt.Fprintf(os.Stderr, " %s", id)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
	run()
}
