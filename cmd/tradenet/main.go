// Command tradenet runs the paper-reproduction experiments and prints the
// corresponding tables and figure statistics.
//
// Usage:
//
//	tradenet -experiment all
//	tradenet -experiment table1 -frames 500000
//	tradenet -experiment designs -scale paper
//	tradenet -experiment attribution -trace trace.json
//
// Experiments (see DESIGN.md's per-experiment index):
//
//	table1      E1  — frame lengths per feed (Table 1)
//	fig2a       E2  — daily event growth (Figure 2a)
//	fig2b       E3  — single stock intraday, 1s windows (Figure 2b)
//	fig2c       E4  — busiest second, 100µs windows (Figure 2c)
//	designs     E5+E6+E12 — round trips through Designs 1, 3, 2
//	mroute      E7  — multicast table overflow cliff
//	generations E8  — switch latency/multicast trends
//	merge       E9  — L1S merge bottleneck sweep
//	overhead    E10 — header overhead + compact-transport ablation
//	partitions  E11 — partition growth vs mroute capacity
//	budget      E13 — per-event budgets vs measured codec cost
//	wan         E14 — microwave vs fiber inter-colo circuits
//	dualpath    E15 — A/B arbitration over microwave + fiber with rain
//	colocation  E16 — co-located vs remote firm tick-to-trade race
//	metronbbo   E17 — cross-colo NBBO skew at a surveillance host
//	filtermerge A1  — FPGA-filtered L1S merging (§5 Hardware)
//	placement   A2  — rack placement optimization (§5 Cluster Management)
//	groupmap    A3  — partition→group mapping co-design (§5 Routing)
//	timestamps  A4  — clock-sync precision vs event ordering (§2)
//	filterplace A5  — in-process vs middlebox filtering crossover (§3)
//	correlated  A6  — correlated cross-feed bursts at a merge (§2)
//	corepin     A7  — core isolation vs shared cores (Fig. 1d)
//	genrt       E8b — Design 1 round trip across switch generations
//	stalequotes E18 — the cost of latency: repricing races an aggressor
//	failover    E19 — deterministic fault injection: spine kill + WAN outage
//	attribution E20 — flight-recorder latency attribution across designs
//	oefailover  E21 — order-entry session kill: liveness, cancel-on-disconnect, replay
//	wanredundancy E22 — adaptive WAN redundancy: recovery policy × rain fade × design
//
// Pass -csv <dir> to also export the Figure 2 data series as CSV. Pass
// -trace <file> with -experiment attribution to export the recorded spans
// as Chrome trace-event JSON (chrome://tracing, Perfetto).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tradenet/internal/core"
	"tradenet/internal/sim"
)

// runCfg carries the parsed flags to experiment runners.
type runCfg struct {
	sc        core.Scenario
	seed      int64
	frames    int
	bursts    int
	reps      int
	tracePath string
}

// experimentSpec is one runnable experiment: its id (the -experiment value)
// and runner. The single ordered experiments slice below drives -experiment
// all, the usage listing, and lookup — one registry, no parallel lists to
// drift apart.
type experimentSpec struct {
	id  string
	run func(cfg runCfg)
}

var experiments = []experimentSpec{
	{"table1", func(c runCfg) { fmt.Println(core.RunTable1(c.frames, c.seed)) }},
	{"fig2a", func(c runCfg) { fmt.Println(core.RunFig2a(c.seed)) }},
	{"fig2b", func(c runCfg) { fmt.Println(core.RunFig2b(c.seed)) }},
	{"fig2c", func(c runCfg) { fmt.Println(core.RunFig2c(c.seed)) }},
	{"designs", func(c runCfg) {
		if c.reps > 1 {
			fmt.Println(core.RunDesignComparisonSeeds(c.sc, c.bursts, core.Seeds(c.seed, c.reps)))
			return
		}
		fmt.Println(core.RunDesignComparison(c.sc, c.bursts))
	}},
	{"mroute", func(c runCfg) {
		if c.reps > 1 {
			fmt.Println(core.RunMrouteOverflowSeeds(40, 20, 60, core.Seeds(c.seed, c.reps)))
			return
		}
		fmt.Println(core.RunMrouteOverflow(40, 20, 60, c.seed))
	}},
	{"generations", func(c runCfg) { fmt.Println(core.RunGenerations()) }},
	{"merge", func(c runCfg) { fmt.Println(core.RunMergeBottleneck([]int{1, 2, 4, 8}, 50, c.seed)) }},
	{"overhead", func(c runCfg) { fmt.Println(core.RunHeaderOverhead(c.frames, c.seed)) }},
	{"partitions", func(c runCfg) { fmt.Println(core.RunPartitionScaling(4)) }},
	{"budget", func(c runCfg) { fmt.Println(core.RunPerEventBudget(2_000_000)) }},
	{"wan", func(c runCfg) { fmt.Println(core.RunWAN(1000, c.seed)) }},
	// §5 future-work ablations:
	{"filtermerge", func(c runCfg) { fmt.Println(core.RunFilteredMerge([]int{2, 4, 8}, 50, c.seed)) }},
	{"placement", func(c runCfg) { fmt.Println(core.RunPlacement(4, 64, 4, 11, 10, c.seed)) }},
	{"groupmap", func(c runCfg) { fmt.Println(core.RunGroupMapping(1024, 64, 50, c.seed)) }},
	{"timestamps", func(c runCfg) { fmt.Println(core.RunTimestampPrecision(20_000, c.seed)) }},
	{"filterplace", func(c runCfg) { fmt.Println(core.RunFilterPlacement()) }},
	{"dualpath", func(c runCfg) { fmt.Println(core.RunDualPathWAN(5000, c.seed)) }},
	{"correlated", func(c runCfg) { fmt.Println(core.RunCorrelatedMerge(4, 60, c.seed)) }},
	{"colocation", func(c runCfg) { fmt.Println(core.RunColocation(2*sim.Microsecond, c.seed)) }},
	{"metronbbo", func(c runCfg) { fmt.Println(core.RunMetroNBBO(500*sim.Millisecond, c.seed)) }},
	{"genrt", func(c runCfg) { fmt.Println(core.RunGenerationRoundTrip(c.sc, c.bursts)) }},
	{"corepin", func(c runCfg) { fmt.Println(core.RunCorePinning(100, c.seed)) }},
	{"stalequotes", func(c runCfg) {
		lats := []sim.Duration{500 * sim.Nanosecond, 2 * sim.Microsecond, 5 * sim.Microsecond,
			10 * sim.Microsecond, 20 * sim.Microsecond, 50 * sim.Microsecond}
		fmt.Println(core.RunStaleQuotes(lats, 20, 15*sim.Microsecond, c.seed))
	}},
	{"failover", func(c runCfg) { fmt.Println(core.RunFailover(c.sc, core.Seeds(c.seed, c.reps))) }},
	{"oefailover", func(c runCfg) { fmt.Println(core.RunOEFailover(c.sc, core.Seeds(c.seed, c.reps))) }},
	{"wanredundancy", func(c runCfg) { fmt.Println(core.RunWANRedundancy(c.sc, core.Seeds(c.seed, c.reps))) }},
	{"attribution", func(c runCfg) {
		r := core.RunAttribution(c.sc, c.bursts)
		fmt.Println(r)
		if c.tracePath != "" {
			f, err := os.Create(c.tracePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace export: %v\n", err)
				os.Exit(1)
			}
			if err := r.WriteChrome(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace export: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", c.tracePath)
		}
	}},
}

// lookupExperiment finds a spec by id.
func lookupExperiment(id string) (experimentSpec, bool) {
	for _, e := range experiments {
		if e.id == id {
			return e, true
		}
	}
	return experimentSpec{}, false
}

// writeUsage lists every registered experiment id, in registry order.
func writeUsage(w io.Writer, unknown string) {
	fmt.Fprintf(w, "unknown experiment %q; known:", unknown)
	for _, e := range experiments {
		fmt.Fprintf(w, " %s", e.id)
	}
	fmt.Fprintln(w)
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id or 'all'")
		scale      = flag.String("scale", "small", "plant scale: small | paper")
		seed       = flag.Int64("seed", 1, "random seed")
		frames     = flag.Int("frames", 200_000, "frames for table1/overhead")
		bursts     = flag.Int("bursts", 4, "measurement bursts for design round trips")
		reps       = flag.Int("replications", 1, "independent seeds per experiment (seed, seed+1, ...), fanned across CPUs; applies to designs and mroute")
		csvDir     = flag.String("csv", "", "also write Figure 2 data series as CSV into this directory")
		tracePath  = flag.String("trace", "", "write the attribution experiment's Chrome trace JSON to this file")
	)
	flag.Parse()

	sc := core.SmallScenario()
	if *scale == "paper" {
		sc = core.PaperScenario()
	}
	sc.Seed = *seed

	if *csvDir != "" {
		files, err := core.WriteFigureCSVs(*csvDir, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csv export: %v\n", err)
			os.Exit(1)
		}
		for _, f := range files {
			fmt.Printf("wrote %s\n", f)
		}
	}

	cfg := runCfg{sc: sc, seed: *seed, frames: *frames, bursts: *bursts,
		reps: *reps, tracePath: *tracePath}

	if *experiment == "all" {
		for _, e := range experiments {
			fmt.Printf("=== %s ===\n", e.id)
			e.run(cfg)
		}
		return
	}
	e, ok := lookupExperiment(*experiment)
	if !ok {
		writeUsage(os.Stderr, *experiment)
		os.Exit(2)
	}
	e.run(cfg)
}
