// Package tradenet reproduces "Network Design Considerations for Trading
// Systems" (Myers, Nigito, Foster — HotNets '24) as a discrete-event
// simulation study: the workload characterization of §3 (Table 1,
// Figure 2), and the three candidate network designs of §4 (commodity
// leaf-spine, latency-equalized cloud, Layer-1 switch fabrics), built from
// real wire-format codecs and picosecond-resolution network models.
//
// The implementation lives under internal/; runnable entry points are
// cmd/tradenet (experiment harness), cmd/feedgen, cmd/replay, and the
// programs in examples/. Benchmarks in this package (bench_test.go)
// regenerate every table and figure; see DESIGN.md for the experiment
// index and EXPERIMENTS.md for paper-versus-measured results.
package tradenet
