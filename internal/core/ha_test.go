package core

import (
	"strings"
	"testing"

	"tradenet/internal/device"
	"tradenet/internal/fault"
	"tradenet/internal/market"
	"tradenet/internal/metrics"
	"tradenet/internal/orderentry"
	"tradenet/internal/sim"
)

// TestHAFailoverPromotesAndRehomes drives Design 1 with the HA pair armed:
// market-data bursts get strategies trading against the primary, the
// primary process dies mid-run, the standby detects the journal silence and
// promotes, every gateway redials onto the promoted venue, and a
// post-failover burst trades against it — with every client's working-order
// view reconciling against the promoted book and zero duplicate executions.
func TestHAFailoverPromotesAndRehomes(t *testing.T) {
	sc := SmallScenario()
	sc.Seed = 11
	sc.OEResilience = true
	sc.ExchangeHA = true
	d := NewDesign1(sc, device.DefaultCommodityConfig())
	if d.HA == nil {
		t.Fatal("ExchangeHA set but no cluster built")
	}
	d.HA.Start()

	sched := d.Sched
	perBurst := sc.BurstMessages / 10
	burstStart := sim.Time(5 * sim.Millisecond)
	for b := 0; b < 3; b++ {
		sched.At(burstStart.Add(sim.Duration(b)*2*sim.Millisecond), func() {
			d.Ex.PublishBurst(sched.Rand(), perBurst)
		})
	}

	// Kill the primary between bursts; the watchdog should promote within
	// haDeadAfter plus one tick of slack.
	crashAt := sim.Time(10 * sim.Millisecond)
	plan := fault.NewPlan(sched)
	plan.ProcessFail(d.HA, crashAt)

	// Post-failover order flow: the strategies rest their pre-crash
	// inventory and won't re-trigger, so probe the re-homed path directly —
	// one scripted order per gateway session, ids in a range no
	// strategy-assigned id collides with, priced to rest. The promoted
	// venue must accept every one, and the promoted venue also publishes a
	// burst so the feed path is exercised end to end.
	var promotedOrders int
	sched.At(sim.Time(20*sim.Millisecond), func() {
		if !d.HA.Promoted() {
			t.Fatal("standby not promoted 10 ms after the crash")
		}
		d.HA.Active().OnOrderAccepted = func(*orderentry.Msg, sim.Time) { promotedOrders++ }
		sym := d.U.All()[0].ID
		for i, g := range d.Gws {
			if err := g.ExchangeSession().NewOrder(uint64(1)<<40|uint64(i+1), sym, market.Buy, 1, 1); err != nil {
				t.Fatalf("gateway %d post-failover order: %v", i, err)
			}
		}
		d.HA.Active().PublishBurst(sched.Rand(), perBurst)
	})
	sched.RunUntil(sim.Time(30 * sim.Millisecond))

	if !d.HA.Promoted() {
		t.Fatal("standby never promoted")
	}
	detect := d.HA.PromotedAt.Sub(crashAt)
	if detect <= 0 || detect > sim.Duration(2*sim.Millisecond) {
		t.Fatalf("promotion latency %v, want (0, 2ms]", detect)
	}
	if d.HA.Active() != d.HA.Backup {
		t.Fatal("Active() is not the promoted standby")
	}
	if promotedOrders < len(d.Gws) {
		t.Fatalf("promoted venue accepted %d/%d post-failover orders", promotedOrders, len(d.Gws))
	}
	for i, g := range d.Gws {
		if g.Reconnects == 0 {
			t.Fatalf("gateway %d never re-homed", i)
		}
	}
	// Every client's working-order view must equal the promoted venue's.
	bak := d.HA.Backup
	var overfills uint64
	for i, g := range d.Gws {
		cs := g.ExchangeSession()
		if !equalIDs(bak.WorkingOrders(bak.SessionAt(i)), cs.OpenIDs()) {
			t.Fatalf("gateway %d: client view diverged from promoted book", i)
		}
		overfills += cs.Overfills
	}
	if overfills != 0 {
		t.Fatalf("%d overfills across failover", overfills)
	}
	if d.HA.Journal.Records == 0 || d.HA.Follower.Applied == 0 {
		t.Fatalf("journal never flowed: %d sent / %d applied",
			d.HA.Journal.Records, d.HA.Follower.Applied)
	}
	if d.HA.Follower.Applied > d.HA.Journal.Records {
		t.Fatalf("follower applied %d > journaled %d", d.HA.Follower.Applied, d.HA.Journal.Records)
	}
	log := d.HA.DecisionLog()
	if !strings.Contains(log, "crashed") || !strings.Contains(log, "promoted") {
		t.Fatalf("decision log incomplete:\n%s", log)
	}

	// The ha.* counters register and dump.
	reg := metrics.NewRegistry()
	d.HA.RegisterMetrics(reg)
	dump := reg.String()
	for _, name := range []string{"ha.journal.records", "ha.follower.applied", "ha.promotions"} {
		if !strings.Contains(dump, name) {
			t.Fatalf("registry dump missing %s:\n%s", name, dump)
		}
	}
}

// TestHAPassivePairIsDeterministic: the knob-on plant (cluster built, never
// started) is a pure function of the seed — two runs agree on every sample
// and on the journal volume — and the cloud design's standby ports do not
// perturb the measurement at all: knob-on samples equal knob-off samples.
func TestHAPassivePairIsDeterministic(t *testing.T) {
	sc := SmallScenario()
	sc.Seed = 5
	sc.ExchangeHA = true

	run := func() (RoundTrip, uint64) {
		d := NewDesign1(sc, device.DefaultCommodityConfig())
		rt := d.MeasureRoundTrip(8)
		return rt, d.HA.Journal.Records
	}
	rt1, j1 := run()
	rt2, j2 := run()
	if j1 == 0 || j1 != j2 {
		t.Fatalf("journal volume not deterministic: %d vs %d", j1, j2)
	}
	if len(rt1.Samples) == 0 || len(rt1.Samples) != len(rt2.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(rt1.Samples), len(rt2.Samples))
	}
	for i := range rt1.Samples {
		if rt1.Samples[i] != rt2.Samples[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, rt1.Samples[i], rt2.Samples[i])
		}
	}

	// Cloud design: the standby hangs off inert equalizer ports, so arming
	// the pair must not move a single sample against the knob-off plant.
	lats := []sim.Duration{5 * sim.Microsecond, 20 * sim.Microsecond, 12 * sim.Microsecond}
	off := SmallScenario()
	off.Seed = 5
	on := off
	on.ExchangeHA = true
	rtOff := NewDesign2(off, lats, true).MeasureRoundTrip(8)
	rtOn := NewDesign2(on, lats, true).MeasureRoundTrip(8)
	if len(rtOff.Samples) != len(rtOn.Samples) {
		t.Fatalf("cloud sample counts differ: off %d, on %d", len(rtOff.Samples), len(rtOn.Samples))
	}
	for i := range rtOff.Samples {
		if rtOff.Samples[i] != rtOn.Samples[i] {
			t.Fatalf("cloud sample %d perturbed: off %v, on %v", i, rtOff.Samples[i], rtOn.Samples[i])
		}
	}
}
