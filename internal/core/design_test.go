package core

import (
	"testing"

	"tradenet/internal/device"
	"tradenet/internal/sim"
)

func TestScenarioShapes(t *testing.T) {
	p := PaperScenario()
	if p.Servers() < 950 || p.Servers() > 1050 {
		t.Fatalf("paper scenario servers = %d, want ~1000", p.Servers())
	}
	if p.FnLatency >= 2*sim.Microsecond+1 {
		t.Fatal("software functions must be ≤2µs")
	}
	s := SmallScenario()
	if s.Servers() >= p.Servers() {
		t.Fatal("small scenario should be smaller")
	}
}

func TestBuildUniverse(t *testing.T) {
	u := buildUniverse(30)
	if u.Len() != 30 {
		t.Fatalf("len = %d", u.Len())
	}
	// Tickers span multiple first letters for ByAlpha partitioning.
	letters := map[byte]bool{}
	for _, in := range u.All() {
		letters[in.Ticker[0]] = true
	}
	if len(letters) < 20 {
		t.Fatalf("letter diversity = %d", len(letters))
	}
}

func TestSubscriptionSlice(t *testing.T) {
	subs := subscriptionSlice(0, 64)
	if len(subs) != 16 {
		t.Fatalf("window = %d, want 16 (a quarter)", len(subs))
	}
	for _, p := range subs {
		if p < 0 || p >= 64 {
			t.Fatalf("partition %d out of range", p)
		}
	}
	if len(subscriptionSlice(5, 2)) != 1 {
		t.Fatal("tiny partition count should give 1")
	}
}

func TestDesign1RoundTripShape(t *testing.T) {
	d := NewDesign1(SmallScenario(), device.DefaultCommodityConfig())
	rt := d.MeasureRoundTrip(4)
	if rt.Orders == 0 || len(rt.Samples) == 0 {
		t.Fatal("no orders completed the loop")
	}
	if rt.SwitchHops != 12 || rt.SoftwareHops != 3 {
		t.Fatalf("hops = %d/%d", rt.SwitchHops, rt.SoftwareHops)
	}
	mean := rt.Mean()
	// Floor: 3 software hops (6µs) + 12 switch hops (6µs).
	if mean < 11*sim.Microsecond {
		t.Fatalf("mean RT = %v, below physical floor", mean)
	}
	if mean > 500*sim.Microsecond {
		t.Fatalf("mean RT = %v, implausibly slow", mean)
	}
	// §4.1's punchline: network is roughly half the total.
	share := rt.NetworkShare()
	if share < 0.35 || share > 0.75 {
		t.Fatalf("network share = %.2f, want ≈0.5", share)
	}
}

func TestDesign3RoundTripBeatsDesign1(t *testing.T) {
	sc := SmallScenario()
	d1 := NewDesign1(sc, device.DefaultCommodityConfig())
	rt1 := d1.MeasureRoundTrip(4)
	d3 := NewDesign3(sc, 0)
	rt3 := d3.MeasureRoundTrip(4)
	if rt3.Orders == 0 {
		t.Fatal("design 3 completed no orders")
	}
	if rt3.Mean() >= rt1.Mean() {
		t.Fatalf("L1S (%v) should beat leaf-spine (%v)", rt3.Mean(), rt1.Mean())
	}
	// The network component should be ~2 orders of magnitude smaller
	// (§4.3); serialization is common to both, so compare network time.
	n1, n3 := rt1.NetworkTime(), rt3.NetworkTime()
	if n3 <= 0 || n1 <= 0 {
		t.Fatalf("network times: %v vs %v", n1, n3)
	}
	ratio := float64(n1) / float64(n3)
	if ratio < 3 {
		t.Fatalf("network-time ratio = %.1f, L1S should be far faster", ratio)
	}
}

func TestDesign3MergeAccounting(t *testing.T) {
	sc := SmallScenario()
	d := NewDesign3(sc, 0)
	merges := d.MergePorts()
	// Strategies' partitions span both normalizers → their single NICs are
	// merge outputs; gateways and the exchange port merge many sources.
	if merges["norm-strat"] == 0 {
		t.Fatalf("expected merge ports on norm-strat: %v", merges)
	}
	if merges["gw-ex"] == 0 {
		t.Fatalf("expected merge on gw-ex: %v", merges)
	}
	// Subscription caps eliminate merging at the cost of partitions.
	dCapped := NewDesign3(sc, 1)
	capped := dCapped.MergePorts()
	if capped["norm-strat"] != 0 {
		t.Fatalf("maxSubs=1 should remove norm-strat merges: %v", capped)
	}
	for _, subs := range dCapped.NormSubs {
		if len(subs) > 1 {
			t.Fatal("cap violated")
		}
	}
}

func TestDesign2EqualizationFairness(t *testing.T) {
	sc := SmallScenario()
	lats := []sim.Duration{5 * sim.Microsecond, 20 * sim.Microsecond, 12 * sim.Microsecond}

	dEq := NewDesign2(sc, lats, true)
	rtEq := dEq.MeasureRoundTrip(4)
	maxSkew, samples := dEq.SkewStats()
	if samples == 0 {
		t.Fatal("no skew samples")
	}
	if maxSkew != 0 {
		t.Fatalf("equalized skew = %v, want 0", maxSkew)
	}

	dRaw := NewDesign2(sc, lats, false)
	rtRaw := dRaw.MeasureRoundTrip(4)
	rawSkew, _ := dRaw.SkewStats()
	if rawSkew != 15*sim.Microsecond {
		t.Fatalf("unequalized skew = %v, want 15µs (20-5)", rawSkew)
	}
	// Fairness costs latency: the equalized plant is slower.
	if rtEq.Orders == 0 || rtRaw.Orders == 0 {
		t.Fatal("cloud designs completed no orders")
	}
	if rtEq.Mean() <= rtRaw.Mean() {
		t.Fatalf("equalized (%v) should be slower than raw (%v)", rtEq.Mean(), rtRaw.Mean())
	}
	// Cloud base latency dominates: round trips are tens of µs up.
	if rtEq.Mean() < 100*sim.Microsecond {
		t.Fatalf("equalized cloud RT = %v, should reflect 2×(50µs+20µs) fabric", rtEq.Mean())
	}
}

func TestDesignsAreDeterministic(t *testing.T) {
	sc := SmallScenario()
	a := NewDesign1(sc, device.DefaultCommodityConfig()).MeasureRoundTrip(3)
	b := NewDesign1(sc, device.DefaultCommodityConfig()).MeasureRoundTrip(3)
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a.Samples[i], b.Samples[i])
		}
	}
}
