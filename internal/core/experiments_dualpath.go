package core

import (
	"fmt"

	"tradenet/internal/colo"
	"tradenet/internal/feed"
	"tradenet/internal/metrics"
	"tradenet/internal/netsim"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
)

// DualPathResult is the cross-colo A/B delivery study: the same feed
// carried over microwave (fast, rain-fades) and fiber (slow, reliable),
// arbitrated at the receiver. This composes §2's two reliability mechanisms
// — redundant A/B feeds and diverse WAN media — and shows why firms run
// both: microwave wins latency in the sun, fiber backstops in the rain.
type DualPathResult struct {
	Messages       uint64
	MicrowaveWins  uint64
	FiberWins      uint64
	GapsAfterArbit uint64
	LostMicrowave  uint64 // frames rain took on the microwave path
	ClearP50       sim.Duration
	RainP50        sim.Duration
}

// dualRx terminates one WAN path and feeds the arbiter.
type dualRx struct {
	sched *sim.Scheduler
	fn    func(dgram []byte, origin sim.Time)
}

func (d *dualRx) HandleFrame(_ *netsim.Port, f *netsim.Frame) {
	var uf pkt.UDPFrame
	if err := pkt.ParseUDPFrame(f.Data, &uf); err != nil {
		return
	}
	d.fn(uf.Payload, f.Origin)
}

// RunDualPathWAN publishes msgs feed messages from Carteret to Secaucus on
// both media, with rain over the middle third of the run, and measures the
// arbitrated stream.
func RunDualPathWAN(msgs int, seed int64) DualPathResult {
	sched := sim.NewScheduler(seed)
	var res DualPathResult

	arb := feed.NewArbiter(1)
	clearLat, rainLat := metrics.NewHistogram(), metrics.NewHistogram()
	raining := false

	// Message i is published at exactly i × 10 µs and carries i in its
	// OrderID, so per-message delivery latency is exact even when the
	// reorder buffer delays delivery.
	onMsg := func(m *feed.Msg) {
		published := sim.Time(m.OrderID) * sim.Time(10*sim.Microsecond)
		lat := int64(sched.Now().Sub(published))
		if raining {
			rainLat.Observe(lat)
		} else {
			clearLat.Observe(lat)
		}
		res.Messages++
	}
	mkRx := func(isA bool) *dualRx {
		return &dualRx{sched: sched, fn: func(dgram []byte, origin sim.Time) {
			if isA {
				arb.ConsumeA(dgram, onMsg)
			} else {
				arb.ConsumeB(dgram, onMsg)
			}
		}}
	}

	mw := colo.NewCircuit(sched, colo.Carteret, colo.Secaucus, colo.DefaultMicrowave(), nullH{}, mkRx(true))
	fb := colo.NewCircuit(sched, colo.Carteret, colo.Secaucus, colo.DefaultFiber(), nullH{}, mkRx(false))

	// Publish one small datagram per message, 10 µs apart; rain covers the
	// middle third.
	packer := feed.NewPacker(feed.Internal, 1)
	var m feed.Msg
	m.Type = feed.MsgAddOrder
	m.SetSymbol("AAPL")
	src := pkt.UDPAddr{MAC: pkt.HostMAC(1), IP: pkt.HostIP(1), Port: 1}
	grp := pkt.MulticastGroup(1, 1)
	dst := pkt.UDPAddr{MAC: pkt.MulticastMAC(grp), IP: grp, Port: 2}

	total := sim.Duration(msgs) * 10 * sim.Microsecond
	sched.At(sim.Time(total/3), func() { raining = true; mw.SetRaining(true) })
	sched.At(sim.Time(2*total/3), func() { raining = false; mw.SetRaining(false) })

	for i := 0; i < msgs; i++ {
		i := i
		sched.At(sim.Time(sim.Duration(i)*10*sim.Microsecond), func() {
			m.OrderID = uint64(i)
			packer.Add(&m)
			packer.Flush(func(dgram []byte) {
				frame := pkt.AppendUDPFrame(nil, src, dst, uint16(i), dgram)
				now := sched.Now()
				mw.PortA.Send(&netsim.Frame{Data: append([]byte(nil), frame...), Origin: now})
				fb.PortA.Send(&netsim.Frame{Data: append([]byte(nil), frame...), Origin: now})
			})
		})
	}
	sched.Run()

	res.MicrowaveWins = arb.AWins
	res.FiberWins = arb.BWins
	_, gaps, _ := arb.Stats()
	res.GapsAfterArbit = gaps
	res.LostMicrowave = mw.PortA.Lost
	res.ClearP50 = sim.Duration(clearLat.Median())
	res.RainP50 = sim.Duration(rainLat.Median())
	return res
}

// String renders the dual-path study.
func (r DualPathResult) String() string {
	return fmt.Sprintf(`Dual-path WAN delivery (§2): Carteret→Secaucus, microwave + fiber, A/B arbitrated
  messages delivered: %d   gaps after arbitration: %d
  microwave wins: %d   fiber wins: %d   rain losses on microwave: %d
  median delivery latency: clear %v, rain %v
  every message arrives — rain shifts wins (and latency) to fiber, and the
  microwave advantage returns with the sun.
`, r.Messages, r.GapsAfterArbit, r.MicrowaveWins, r.FiberWins, r.LostMicrowave,
		r.ClearP50, r.RainP50)
}
