package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"tradenet/internal/device"
	"tradenet/internal/exchange"
	"tradenet/internal/metrics"
	"tradenet/internal/sim"
	"tradenet/internal/trace"
)

// Attribution sampling parameters: trace every other published datagram, cap
// total contexts (starts plus multicast forks) so the paper-scale plant
// cannot explode the recorder.
const (
	attributionEvery = 2
	attributionCap   = 4096
)

// DesignAttribution is one design's flight-recorder accounting: where each
// traced message's time went, how every trace terminated, and whether the
// span sums reconcile exactly with the tick-to-trade tap.
type DesignAttribution struct {
	Design string
	// Created counts trace contexts (starts + forks); Finished counts those
	// that reached a terminal.
	Created  int
	Finished int
	// ByEnd counts finished traces per terminal kind.
	ByEnd [trace.NumEnds]int
	// Accepted traces are the reconcilable ones: order admitted at the
	// matching engine.
	Accepted int
	// ByCause sums span time per cause across accepted traces; Total is the
	// sum of their end-to-end durations (ByCause sums to Total exactly, by
	// the telescoping-span invariant).
	ByCause [trace.NumCauses]sim.Duration
	Total   sim.Duration
	// Reconciled counts burst-originated accepted traces whose span-summed
	// duration matches a tick-to-trade tap sample exactly; MaxDelta is the
	// largest discrepancy observed (the acceptance bar is Reconciled ==
	// Accepted − Reflected and MaxDelta 0). Reflected counts accepted traces
	// that began at a match-time publish (the feed reflection of an earlier
	// order) — the tap measures those orders from the burst instant, so they
	// have no same-origin tap counterpart and are excluded.
	Reconciled int
	Reflected  int
	MaxDelta   sim.Duration
	// Traces holds the design's finished contexts for export.
	Traces []*trace.Ctx
	// RegistryDump is the design's unified metrics-registry dump.
	RegistryDump string
}

// AttributionResult is E20: "where do the microseconds go" — the flight
// recorder run through all three designs.
type AttributionResult struct {
	Designs []DesignAttribution
}

// RunAttribution traces sampled messages through Designs 1, 3, and 2 with
// the flight recorder enabled, reconciles every accepted trace against the
// design's tick-to-trade tap, and captures a unified registry dump per
// design (scheduler self-profile, fabric counters, per-cause latency
// histograms).
func RunAttribution(sc Scenario, bursts int) AttributionResult {
	var out AttributionResult

	d1 := NewDesign1(sc, device.DefaultCommodityConfig())
	out.Designs = append(out.Designs, measureAttribution(
		d1.Sched, d1.Ex, sc, bursts,
		func(rt *RoundTrip) { *rt = d1.MeasureRoundTrip(bursts) },
		func(reg *metrics.Registry) {
			reg.RegisterInt("fabric.blackholed", func() int64 { return int64(d1.LS.FabricStats().Blackholed) })
			reg.RegisterInt("fabric.lost", func() int64 { return int64(d1.LS.FabricStats().Lost) })
			reg.RegisterInt("fabric.purged", func() int64 { return int64(d1.LS.FabricStats().Purged) })
			reg.RegisterInt("fabric.drops", func() int64 { return int64(d1.LS.FabricStats().Drops) })
		}))

	d3 := NewDesign3(sc, 0)
	out.Designs = append(out.Designs, measureAttribution(
		d3.Sched, d3.Ex, sc, bursts,
		func(rt *RoundTrip) { *rt = d3.MeasureRoundTrip(bursts) },
		nil))

	lats := []sim.Duration{5 * sim.Microsecond, 20 * sim.Microsecond, 12 * sim.Microsecond}
	d2 := NewDesign2(sc, lats, true)
	out.Designs = append(out.Designs, measureAttribution(
		d2.Sched, d2.Ex, sc, bursts,
		func(rt *RoundTrip) { *rt = d2.MeasureRoundTrip(bursts) },
		nil))

	return out
}

// measureAttribution arms one design's exchange with a recorder, runs its
// round-trip measurement, and folds the finished traces into an attribution
// row plus a registry dump.
func measureAttribution(sched *sim.Scheduler, ex *exchange.Exchange, sc Scenario, bursts int,
	run func(*RoundTrip), extraMetrics func(*metrics.Registry)) DesignAttribution {

	rec := trace.NewRecorder(attributionEvery, attributionCap)
	ex.EnableTracing(rec)

	var rt RoundTrip
	run(&rt)

	var a DesignAttribution
	a.Design = rt.Design
	a.Created = rec.Created()
	a.Traces = rec.Done()
	a.Finished = len(a.Traces)

	reg := metrics.NewRegistry()
	registerScheduler(reg, sched)
	reg.RegisterUint("exch.published.datagrams", &ex.Published)
	reg.RegisterUint("exch.published.msgs", &ex.PublishedMsgs)
	if extraMetrics != nil {
		extraMetrics(reg)
	}
	e2e := reg.Histogram("latency.tick_to_trade")
	for _, s := range rt.Samples {
		e2e.Observe(int64(s))
	}
	causeHists := make([]*metrics.Histogram, trace.NumCauses)
	for c := 0; c < trace.NumCauses; c++ {
		causeHists[c] = reg.Histogram("trace.cause." + trace.Cause(c).String())
	}
	reg.RegisterInt("trace.created", func() int64 { return int64(a.Created) })
	reg.RegisterInt("trace.finished", func() int64 { return int64(a.Finished) })
	for e := 1; e < trace.NumEnds; e++ {
		if trace.End(e) == trace.EndDeduped || trace.End(e) == trace.EndReconstructed {
			// WAN-mirror terminals (E22): the attribution plants never trace
			// the mirror, so these stay zero — omit them from the dump.
			continue
		}
		e := e
		reg.RegisterInt("trace.end."+trace.End(e).String(), func() int64 { return int64(a.ByEnd[e]) })
	}

	// Reconcile each accepted trace's span sum against the tap's samples:
	// both measure publish-instant to accept-instant on the virtual clock, so
	// the match must be exact. Matching consumes samples (multiset match).
	taps := make([]int64, len(rt.Samples))
	for i, s := range rt.Samples {
		taps[i] = int64(s)
	}
	sort.Slice(taps, func(i, j int) bool { return taps[i] < taps[j] })
	burstAt := make(map[sim.Time]bool, len(rt.Bursts))
	for _, t := range rt.Bursts {
		burstAt[t] = true
	}
	for _, c := range a.Traces {
		a.ByEnd[c.Terminal()]++
		if c.Terminal() != trace.EndAccepted {
			continue
		}
		a.Accepted++
		d := c.Duration()
		a.Total += d
		by := c.ByCause()
		for cause, t := range by {
			a.ByCause[cause] += t
			causeHists[cause].Observe(int64(t))
		}
		if !burstAt[c.Start()] {
			// Started at a match-time publish: the reflection of an earlier
			// order on the feed. The tap has no sample with this origin.
			a.Reflected++
			continue
		}
		i := sort.Search(len(taps), func(i int) bool { return taps[i] >= int64(d) })
		if i < len(taps) && taps[i] == int64(d) {
			a.Reconciled++
			taps = append(taps[:i], taps[i+1:]...)
			continue
		}
		// No exact tap: record how far off the nearest one is.
		delta := sim.Duration(int64(1) << 62)
		if i < len(taps) {
			delta = sim.Duration(taps[i] - int64(d))
		}
		if i > 0 {
			if lo := sim.Duration(int64(d) - taps[i-1]); lo < delta {
				delta = lo
			}
		}
		if delta > a.MaxDelta {
			a.MaxDelta = delta
		}
	}

	a.RegistryDump = reg.String()
	return a
}

// registerScheduler exposes the scheduler's self-profile and current wheel
// occupancy under the sched.* registry namespace.
func registerScheduler(reg *metrics.Registry, sched *sim.Scheduler) {
	reg.RegisterInt("sched.fired.total", func() int64 { return int64(sched.Profile().Fired) })
	reg.RegisterInt("sched.fired.closure", func() int64 { return int64(sched.Profile().FiredClosure) })
	reg.RegisterInt("sched.fired.args2", func() int64 { return int64(sched.Profile().FiredArgs2) })
	reg.RegisterInt("sched.fired.args3", func() int64 { return int64(sched.Profile().FiredArgs3) })
	reg.RegisterInt("sched.placed.single", func() int64 { return int64(sched.Profile().PlacedSingle) })
	reg.RegisterInt("sched.placed.overflow", func() int64 { return int64(sched.Profile().PlacedOverflow) })
	reg.RegisterInt("sched.cascades", func() int64 { return int64(sched.Profile().Cascades) })
	for lvl := 0; lvl < sim.WheelLevels; lvl++ {
		lvl := lvl
		reg.RegisterInt(fmt.Sprintf("sched.placed.level%d", lvl),
			func() int64 { return int64(sched.Profile().PlacedLevel[lvl]) })
		reg.RegisterInt(fmt.Sprintf("sched.occupancy.level%d", lvl),
			func() int64 { return int64(sched.Occupancy()[lvl]) })
	}
}

// WriteChrome exports every design's finished traces as one Chrome
// trace-event JSON stream.
func (r AttributionResult) WriteChrome(w io.Writer) error {
	var all []*trace.Ctx
	for _, d := range r.Designs {
		all = append(all, d.Traces...)
	}
	return trace.WriteChrome(w, all)
}

// String renders the per-design attribution table: mean time per accepted
// message by cause, the cause shares, terminal accounting, and the exact-
// reconciliation verdict, followed by each design's registry dump.
func (r AttributionResult) String() string {
	var b strings.Builder
	b.WriteString("E20: where do the microseconds go (flight-recorder attribution)\n")
	var rows [][]string
	for _, d := range r.Designs {
		row := []string{d.Design, fmt.Sprint(d.Accepted)}
		if d.Accepted == 0 {
			row = append(row, "-", "-", "-", "-", "-", "-")
		} else {
			n := sim.Duration(d.Accepted)
			for c := 0; c < trace.NumCauses; c++ {
				row = append(row, (d.ByCause[c] / n).String())
			}
			row = append(row, (d.Total / n).String())
		}
		rows = append(rows, row)
	}
	b.WriteString(metrics.Table(
		[]string{"design", "accepted", "software", "queueing", "serialization", "propagation", "switching", "mean total"},
		rows))
	for _, d := range r.Designs {
		fmt.Fprintf(&b, "%s: %d traces (%d finished); ends:", d.Design, d.Created, d.Finished)
		for e := 1; e < trace.NumEnds; e++ {
			if d.ByEnd[e] > 0 {
				fmt.Fprintf(&b, " %s=%d", trace.End(e), d.ByEnd[e])
			}
		}
		fmt.Fprintf(&b, "; reconciled %d/%d with tap (%d reflections excluded, max delta %v)\n",
			d.Reconciled, d.Accepted-d.Reflected, d.Reflected, d.MaxDelta)
	}
	for _, d := range r.Designs {
		fmt.Fprintf(&b, "\n%s registry:\n%s", d.Design, d.RegistryDump)
	}
	return b.String()
}
