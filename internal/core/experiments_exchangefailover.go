package core

import (
	"fmt"
	"strings"

	"tradenet/internal/device"
	"tradenet/internal/exchange"
	"tradenet/internal/fault"
	"tradenet/internal/firm"
	"tradenet/internal/market"
	"tradenet/internal/metrics"
	"tradenet/internal/orderentry"
	"tradenet/internal/sim"
)

// Exchange failover experiment (E23): crash the whole primary venue process
// mid-burst in each of the three designs, with the HA pair armed, and
// measure what a zero-loss failover actually costs. The standby detects the
// journal silence, replays the in-flight journal tail, promotes, and
// resumes matching; order-entry clients detect the dead transport, back
// off, redial through the cluster onto the standby's twin sessions, resync
// by sequence, and resubmit what never got acknowledged; the feed resumes
// on the standby with continued sequence numbers, so downstream receivers
// see silence, not loss.
//
// Every faulted run is paired with a control run — the identical scripted
// workload on an identical plant with no crash — and the experiment checks
// that failover is *invisible in the end state*:
//
//   - book equality: at the end of the run the promoted standby's
//     per-symbol aggregated depth equals the never-failed control's, level
//     for level (the workload is built order-independent so retried and
//     resubmitted orders may arrive in any order);
//   - execution equality: the promoted pair and the control matched
//     exactly the same number of executions — nothing lost, nothing
//     doubled;
//   - zero orphans: every order resting on the promoted book belongs to
//     some re-homed session's working-order view;
//   - zero overfills, zero unknown-order escalations, zero
//     cancel-on-disconnect sweeps (promotion's grace outlives the redial),
//     zero feed gaps (sequence numbering continued across the blackout);
//   - and the run reports the costs: detection latency, feed blackout
//     window, journal tail replayed at promotion, time to first accepted
//     order and first trade on the promoted venue, and the pick-off
//     exposure (orders resting in the dark × blackout) a real desk would
//     price.
//
// The scripted workload is what makes cross-run comparison sound: client c
// submits bids at strictly descending prices (and asks at strictly
// ascending prices) on a small symbol set, every price distinct, never
// crossing — so the final book is a set, insensitive to arrival order —
// plus a handful of unit-quantity crossing sells, scheduled well clear of
// the blackout, that produce deterministic executions against the unique
// best level. Strategy traffic settles in the first pace interval (the
// default join-the-bid trigger only fires on strictly improving bids, and
// only first touches improve), so the organic order flow is identical in
// faulted and control runs.

// Workload schedule. The crash lands mid-stream (submissions run ~12 ms,
// the crash at +9 ms), so in-flight orders ride the resubmit/reconcile
// path; submissions that fail fast while the session is down are retried
// by the client app until accepted. Crossing sells sit ≥2 ms clear of the
// crash on the left and past the redial+reconcile window on the right.
const (
	ehaPace      = 500 * sim.Microsecond // per-client submission interval
	ehaOrdersPer = 24                    // scripted orders per client
	ehaSymbols   = 4                     // symbols touched (all in the first intervals)
	ehaBidBase   = market.Price(5000)
	ehaAskBase   = market.Price(6000)
	ehaQty       = market.Qty(10)
	ehaCrashLag  = 9 * sim.Millisecond // workload start → crash
	ehaRetry     = 1 * sim.Millisecond // client-app resubmit interval on fast failure
)

// ehaPlant is one design reduced to what the venue-kill run needs.
type ehaPlant struct {
	name    string
	sched   *sim.Scheduler
	u       *market.Universe
	ha      *HACluster
	clients []*orderentry.ClientSession
	gws     []*firm.Gateway // nil in the cloud design
	norms   []*firm.Normalizer
	strats  []*firm.Strategy
}

func ehaPlantDesign1(sc Scenario) ehaPlant {
	d := NewDesign1(sc, device.DefaultCommodityConfig())
	p := ehaPlant{
		name: "Design 1 (leaf-spine)", sched: d.Sched, u: d.U, ha: d.HA,
		gws: d.Gws, norms: d.Norms, strats: d.Strats,
	}
	for _, g := range d.Gws {
		p.clients = append(p.clients, g.ExchangeSession())
	}
	return p
}

func ehaPlantDesign2(sc Scenario) ehaPlant {
	lats := []sim.Duration{5 * sim.Microsecond, 20 * sim.Microsecond, 12 * sim.Microsecond}
	d := NewDesign2(sc, lats, true)
	p := ehaPlant{
		name: "Design 2 (cloud)", sched: d.Sched, u: d.U, ha: d.HA, strats: d.Strats,
	}
	for _, s := range d.Strats {
		p.clients = append(p.clients, s.Session())
	}
	return p
}

func ehaPlantDesign3(sc Scenario) ehaPlant {
	d := NewDesign3(sc, 0)
	p := ehaPlant{
		name: "Design 3 (L1S)", sched: d.Sched, u: d.U, ha: d.HA,
		gws: d.Gws, norms: d.Norms, strats: d.Strats,
	}
	for _, g := range d.Gws {
		p.clients = append(p.clients, g.ExchangeSession())
	}
	return p
}

// EHADesignRun is one design's venue-kill run plus its paired control.
type EHADesignRun struct {
	Design string

	// Failover timeline. DetectIn is crash → promotion (journal-silence
	// watchdog); Blackout is the feed dark window, last primary datagram →
	// first promoted-standby datagram; ReplayDepth is how many journal
	// records the standby applied between the crash instant and promotion
	// (the in-flight tail it had to drain); FirstAcceptIn / FirstTradeIn
	// are promotion → first accepted order / first execution on the
	// promoted venue.
	DetectIn      sim.Duration
	Blackout      sim.Duration
	ReplayDepth   uint64
	FirstAcceptIn sim.Duration
	FirstTradeIn  sim.Duration

	// Exposure: orders resting in the dark during the blackout. PickOffOrdMs
	// is RestingAtCrash × Blackout in order·milliseconds — the quantity a
	// desk would multiply by adverse-move variance to price the failure.
	RestingAtCrash int
	PickOffOrdMs   float64

	// End-state invariants against the paired control run.
	Promoted        bool
	ControlPromoted bool // must stay false: heartbeats hold the watchdog
	DigestMatch     bool // promoted book == control book, level for level
	ExecsFailover   uint64
	ExecsControl    uint64 // must equal ExecsFailover
	ViewMismatch    int
	Orphans         int
	Overfills       uint64
	Unknowns        uint64
	CODCancels      uint64
	FeedGaps        uint64

	// Recovery machinery volume.
	Reconnects     uint64
	Resubmits      uint64
	DupSuppressed  uint64
	Replayed       uint64
	RetriedSubmits uint64 // client-app retries of fast-failed submissions
	OrdersPrimary  uint64 // accepted by the primary before the crash
	OrdersBackup   uint64 // accepted by the standby after promotion

	Registry    string // ha.* and oe.* counters from the faulted run
	FaultLog    string
	DecisionLog string
}

// InvariantsOK reports whether the failover was zero-loss and invisible in
// the end state.
func (r EHADesignRun) InvariantsOK() bool {
	return r.Promoted && !r.ControlPromoted &&
		r.DetectIn > 0 && r.DetectIn <= sim.Duration(2*sim.Millisecond) &&
		r.Blackout > 0 &&
		r.DigestMatch &&
		r.ExecsFailover == r.ExecsControl && r.ExecsFailover > 0 &&
		r.ViewMismatch == 0 && r.Orphans == 0 &&
		r.Overfills == 0 && r.Unknowns == 0 &&
		r.CODCancels == 0 && r.FeedGaps == 0 &&
		r.FirstAcceptIn > 0 && r.FirstTradeIn > 0 &&
		r.Reconnects > 0 && r.OrdersBackup > 0
}

// ehaOrder is one scripted submission.
type ehaOrder struct {
	client int
	at     sim.Time
	id     uint64
	sym    market.SymbolID
	side   market.Side
	price  market.Price
	qty    market.Qty
}

// ehaScript builds the deterministic workload for nClients clients: paced
// non-crossing bids/asks from start, plus unit crossing sells clear of the
// crash window on both sides.
func ehaScript(u *market.Universe, nClients int, start, crashAt sim.Time) []ehaOrder {
	syms := make([]market.SymbolID, ehaSymbols)
	for i := range syms {
		syms[i] = u.All()[i].ID
	}
	var script []ehaOrder
	bidDepth := make(map[market.SymbolID]market.Price)
	askDepth := make(map[market.SymbolID]market.Price)
	for k := 0; k < ehaOrdersPer; k++ {
		for c := 0; c < nClients; c++ {
			o := ehaOrder{
				client: c,
				at:     start.Add(sim.Duration(k)*ehaPace + sim.Duration(c)*20*sim.Microsecond),
				id:     uint64(1)<<40 | uint64(c)<<20 | uint64(k),
				sym:    syms[(c+k)%ehaSymbols],
				qty:    ehaQty,
			}
			if k%3 == 2 {
				o.side = market.Sell
				o.price = ehaAskBase + askDepth[o.sym]
				askDepth[o.sym]++
			} else {
				o.side = market.Buy
				o.price = ehaBidBase - bidDepth[o.sym]
				bidDepth[o.sym]++
			}
			script = append(script, o)
		}
	}
	// Crossing sells: unit quantity against the unique best bid level.
	// Pre-crash pair ≥2 ms clear of the crash; post-crash pair past the
	// detect → back-off → redial → reconcile window.
	for n, at := range []sim.Time{
		start.Add(2 * sim.Millisecond),
		start.Add(3500 * sim.Microsecond),
		crashAt.Add(14 * sim.Millisecond),
		crashAt.Add(15500 * sim.Microsecond),
	} {
		script = append(script, ehaOrder{
			client: 0, at: at, id: uint64(1)<<41 | uint64(n),
			sym: syms[0], side: market.Sell, price: 1, qty: 1,
		})
	}
	return script
}

// ehaBookDigest renders the venue's aggregated depth — every symbol, every
// level, best first — as a comparable string.
func ehaBookDigest(ex *exchange.Exchange, u *market.Universe) string {
	var b strings.Builder
	for _, ins := range u.All() {
		bk := ex.Book(ins.ID)
		if bk.Orders() == 0 {
			continue
		}
		for _, side := range []market.Side{market.Buy, market.Sell} {
			for _, l := range bk.Levels(side, 1<<20) {
				fmt.Fprintf(&b, "%s/%d %d@%d(%d);", ins.Ticker, side, l.Size, l.Price, l.Orders)
			}
		}
	}
	return b.String()
}

// runEHAPlant drives the scripted workload on one plant. With failover set
// it crashes the primary and fills the recovery-side fields of res; the
// control pass fills only the control fields. Returns the end-of-run book
// digest of whichever venue is live.
func runEHAPlant(p ehaPlant, failover bool, res *EHADesignRun) string {
	sched := p.sched
	p.ha.Start()

	start := sim.Time(5 * sim.Millisecond) // logons drain first
	crashAt := start.Add(ehaCrashLag)
	end := crashAt.Add(19 * sim.Millisecond)

	// Client-app submission: a fast failure (session down, not logged on)
	// retries until the order lands — the workload's order *set* is
	// identical in faulted and control runs, only arrival order differs.
	var submit func(o ehaOrder)
	submit = func(o ehaOrder) {
		cs := p.clients[o.client]
		if err := cs.NewOrder(o.id, o.sym, o.side, o.price, o.qty); err != nil {
			if failover {
				res.RetriedSubmits++
			}
			sched.At(sched.Now().Add(ehaRetry), func() { submit(o) })
		}
	}
	for _, o := range ehaScript(p.u, len(p.clients), start, crashAt) {
		o := o
		sched.At(o.at, func() { submit(o) })
	}

	pri, bak := p.ha.Primary, p.ha.Backup
	var ordersPrimary uint64
	pri.OnOrderAccepted = func(*orderentry.Msg, sim.Time) { ordersPrimary++ }

	if failover {
		plan := fault.NewPlan(sched)
		plan.ProcessFail(p.ha, crashAt)

		var appliedAtCrash, execsAtPromote uint64
		sched.AtPrio(crashAt, sim.PrioReport, func() {
			appliedAtCrash = p.ha.Follower.Applied
			for _, ins := range p.u.All() {
				res.RestingAtCrash += pri.Book(ins.ID).Orders()
			}
		})
		prevPromote := p.ha.OnPromote
		p.ha.OnPromote = func() {
			if prevPromote != nil {
				prevPromote()
			}
			execsAtPromote = bak.Executions
		}

		// Blackout right edge: the promoted standby's first datagram (the
		// tap never fires while dark).
		var firstPublish, firstAccept, firstTrade sim.Time
		bak.SetOnPublishDgram(func([]byte) {
			if firstPublish == 0 {
				firstPublish = sched.Now()
			}
		})
		// First accept / first trade on the promoted venue. The accepted
		// hook fires before matching, so the execution check runs at
		// report priority of the same instant, after fills are counted.
		bak.OnOrderAccepted = func(_ *orderentry.Msg, at sim.Time) {
			if !p.ha.Promoted() {
				return
			}
			res.OrdersBackup++
			if firstAccept == 0 {
				firstAccept = at
			}
			if firstTrade == 0 {
				sched.AtPrio(at, sim.PrioReport, func() {
					if firstTrade == 0 && bak.Executions > execsAtPromote {
						firstTrade = at
					}
				})
			}
		}

		sched.RunUntil(end)

		res.Promoted = p.ha.Promoted()
		res.OrdersPrimary = ordersPrimary
		if res.Promoted {
			res.DetectIn = p.ha.PromotedAt.Sub(crashAt)
			res.ReplayDepth = p.ha.AppliedAtPromote - appliedAtCrash
		}
		if firstPublish > 0 {
			res.Blackout = firstPublish.Sub(pri.LastPublishAt())
		}
		if firstAccept > 0 {
			res.FirstAcceptIn = firstAccept.Sub(p.ha.PromotedAt)
		}
		if firstTrade > 0 {
			res.FirstTradeIn = firstTrade.Sub(p.ha.PromotedAt)
		}
		res.PickOffOrdMs = float64(res.RestingAtCrash) *
			float64(res.Blackout) / float64(sim.Millisecond)
		res.ExecsFailover = bak.Executions
		res.CODCancels = pri.CancelOnDisconnect + bak.CancelOnDisconnect

		// Re-homed view reconciliation and orphan accounting on the
		// promoted book: every client's working-order set must equal the
		// standby's, and every resting order must belong to some session.
		resting := 0
		for _, ins := range p.u.All() {
			resting += bak.Book(ins.ID).Orders()
		}
		owned := 0
		for i, cs := range p.clients {
			w := bak.WorkingOrders(bak.SessionAt(i))
			owned += len(w)
			if !equalIDs(w, cs.OpenIDs()) {
				res.ViewMismatch++
			}
			res.Overfills += cs.Overfills
			res.Resubmits += cs.Resubmits
		}
		res.Orphans = resting - owned
		for i := 0; i < bak.NumSessions(); i++ {
			res.Replayed += bak.SessionAt(i).ReplayedMsgs
			res.DupSuppressed += bak.SessionAt(i).DupSuppressed
		}
		for _, g := range p.gws {
			res.Reconnects += g.Reconnects
			res.Unknowns += g.Unknowns
		}
		for _, n := range p.norms {
			res.FeedGaps += n.MsgLost
		}
		for _, s := range p.strats {
			res.FeedGaps += s.GapsSeen
			if p.gws == nil { // cloud: tenants own the session machinery
				res.Reconnects += s.Reconnects
				res.Unknowns += s.UnknownOrders
			}
		}

		reg := metrics.NewRegistry()
		p.ha.RegisterMetrics(reg)
		reg.RegisterUint("oe.resubmits", &res.Resubmits)
		reg.RegisterUint("oe.dup_suppressed", &res.DupSuppressed)
		reg.RegisterUint("oe.replayed", &res.Replayed)
		reg.RegisterUint("oe.reconnects", &res.Reconnects)
		res.Registry = reg.String()
		res.FaultLog = plan.LogString()
		res.DecisionLog = p.ha.DecisionLog()
		return ehaBookDigest(bak, p.u)
	}

	sched.RunUntil(end)
	res.ControlPromoted = p.ha.Promoted()
	res.ExecsControl = pri.Executions
	return ehaBookDigest(pri, p.u)
}

// runEHADesign runs the faulted pass and its control on fresh identical
// plants and checks end-state equality.
func runEHADesign(mk func(Scenario) ehaPlant, sc Scenario) EHADesignRun {
	fo := mk(sc)
	res := EHADesignRun{Design: fo.name}
	foDigest := runEHAPlant(fo, true, &res)
	coDigest := runEHAPlant(mk(sc), false, &res)
	res.DigestMatch = foDigest != "" && foDigest == coDigest
	return res
}

// EHAResult is one seed's three design runs.
type EHAResult struct {
	Seed    int64
	Designs []EHADesignRun
}

// ExchangeFailoverReport is the venue failover experiment replicated
// across seeds.
type ExchangeFailoverReport struct {
	Seeds []int64
	Runs  []EHAResult
}

// AllInvariantsOK reports whether every design run of every seed was a
// zero-loss failover.
func (r ExchangeFailoverReport) AllInvariantsOK() bool {
	for _, run := range r.Runs {
		for _, d := range run.Designs {
			if !d.InvariantsOK() {
				return false
			}
		}
	}
	return true
}

// RunExchangeFailover crashes the primary venue mid-burst in all three
// designs for every seed, each paired with a no-crash control, in
// parallel, results in seed order. Each run is a pure function of its
// seed.
func RunExchangeFailover(sc Scenario, seeds []int64) ExchangeFailoverReport {
	s := sc
	s.OEResilience = true
	s.ExchangeHA = true
	out := ExchangeFailoverReport{Seeds: seeds}
	out.Runs = RunParallel(seeds, func(seed int64) EHAResult {
		sd := s
		sd.Seed = seed
		return EHAResult{
			Seed: seed,
			Designs: []EHADesignRun{
				runEHADesign(ehaPlantDesign1, sd),
				runEHADesign(ehaPlantDesign2, sd),
				runEHADesign(ehaPlantDesign3, sd),
			},
		}
	})
	return out
}

// String renders the report: one table row per seed×design, then the first
// seed's ha.*/oe.* registry, promotion decision log, and fault timeline.
func (r ExchangeFailoverReport) String() string {
	rows := make([][]string, 0, len(r.Runs)*3)
	for _, run := range r.Runs {
		for _, d := range run.Designs {
			verdict := "ok"
			if !d.InvariantsOK() {
				verdict = "VIOLATED"
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", run.Seed),
				d.Design,
				d.DetectIn.String(),
				d.Blackout.String(),
				fmt.Sprintf("%d", d.ReplayDepth),
				fmt.Sprintf("%d", d.RestingAtCrash),
				fmt.Sprintf("%.1f", d.PickOffOrdMs),
				d.FirstAcceptIn.String(),
				d.FirstTradeIn.String(),
				fmt.Sprintf("%d", d.Reconnects),
				fmt.Sprintf("%d/%d", d.Resubmits, d.DupSuppressed),
				fmt.Sprintf("%d", d.RetriedSubmits),
				fmt.Sprintf("%d=%d", d.ExecsFailover, d.ExecsControl),
				verdict,
			})
		}
	}
	out := fmt.Sprintf("Exchange failover (primary/backup HA), %d seed(s)\n\n", len(r.Seeds))
	out += "The primary venue process dies mid-burst; the standby detects journal silence,\n" +
		"replays the in-flight tail, promotes, and resumes matching and publishing with\n" +
		"continued sequence numbers while clients redial onto its twin sessions. Each\n" +
		"faulted run is paired with a no-crash control: final books and execution counts\n" +
		"must be identical — the failover must be invisible in the end state.\n"
	out += metrics.Table(
		[]string{"seed", "design", "detect", "blackout", "replay", "rest@crash",
			"pickoff ord·ms", "1st accept", "1st trade", "redials", "resub/dup",
			"retried", "execs fo=ctl", "invariants"},
		rows)
	if len(r.Runs) > 0 {
		first := r.Runs[0]
		out += fmt.Sprintf("\nMetrics registry (seed %d, %s):\n%s", first.Seed,
			first.Designs[0].Design, first.Designs[0].Registry)
		out += fmt.Sprintf("\nPromotion decisions (seed %d):\n", first.Seed)
		for _, d := range first.Designs {
			out += fmt.Sprintf("  %s:\n%s", d.Design, indent(d.DecisionLog))
		}
		out += fmt.Sprintf("\nFault timeline (seed %d):\n", first.Seed)
		for _, d := range first.Designs {
			out += fmt.Sprintf("  %s:\n%s", d.Design, indent(d.FaultLog))
		}
	}
	return out
}
