package core

import (
	"strings"
	"testing"
)

// TestRunFailoverSpineScenario checks the spine-kill run end to end: the
// fault must actually blackhole traffic, the fabric must reconverge (once for
// the failure, once for the recovery), the blackholed feed data must come
// back through the exchange's TCP replay service, and delivery must catch
// back up to a measurable time-to-recovery.
func TestRunFailoverSpineScenario(t *testing.T) {
	rep := RunFailover(SmallScenario(), Seeds(1, 2))
	if len(rep.Runs) != 2 {
		t.Fatalf("want 2 runs, got %d", len(rep.Runs))
	}
	for _, run := range rep.Runs {
		sp := run.Spine
		if sp.Blackholed == 0 {
			t.Errorf("seed %d: spine kill blackholed no frames", run.Seed)
		}
		if sp.Reconvergences != 2 {
			t.Errorf("seed %d: want 2 reconvergences (fail + recover), got %d", run.Seed, sp.Reconvergences)
		}
		if sp.GapRequests == 0 || sp.RecoveredMsgs == 0 {
			t.Errorf("seed %d: blackholed feed data was never replayed (req=%d, replayed=%d)",
				run.Seed, sp.GapRequests, sp.RecoveredMsgs)
		}
		if sp.ServedDgrams == 0 {
			t.Errorf("seed %d: exchange replay service served nothing", run.Seed)
		}
		if !sp.RecoveredInRun || sp.TimeToRecovery <= 0 {
			t.Errorf("seed %d: delivery never caught back up (recovered=%v ttr=%v)",
				run.Seed, sp.RecoveredInRun, sp.TimeToRecovery)
		}
		if sp.Orders == 0 {
			t.Errorf("seed %d: no orders accepted — plant not actually trading", run.Seed)
		}
		if !strings.Contains(sp.FaultLog, "SwitchFail") || !strings.Contains(sp.FaultLog, "SwitchRecover") {
			t.Errorf("seed %d: fault log missing switch events:\n%s", run.Seed, sp.FaultLog)
		}
	}
}

// TestRunFailoverWANScenario checks the WAN-path run: rain and the hard
// outage must lose frames, and gap recovery over the fiber side channel must
// replay them — every published message accounted for as either live or
// recovered (overlap at datagram boundaries can double-deliver, hence >=).
func TestRunFailoverWANScenario(t *testing.T) {
	rep := RunFailover(SmallScenario(), Seeds(3, 1))
	w := rep.Runs[0].WAN
	if w.LostFrames == 0 {
		t.Error("rain window lost no frames")
	}
	if w.Blackholed == 0 {
		t.Error("hard outage blackholed no frames")
	}
	if w.Requests == 0 || w.Recovered == 0 {
		t.Errorf("gap recovery idle: req=%d recovered=%d", w.Requests, w.Recovered)
	}
	if w.Delivered+w.Recovered < w.Published {
		t.Errorf("messages unaccounted for: live %d + recovered %d < published %d",
			w.Delivered, w.Recovered, w.Published)
	}
	if w.Unrecoverable != 0 {
		t.Errorf("retain window too small for the outage: %d unrecoverable ranges", w.Unrecoverable)
	}
	if !w.RecoveredInRun || w.TimeToRecovery <= 0 {
		t.Errorf("receiver never completed recovery (recovered=%v ttr=%v)", w.RecoveredInRun, w.TimeToRecovery)
	}
}

// TestPullOnGapProtectsQuotes checks the stale-quote protection path inside
// the failover run: when strategies see internal-feed gaps, their pulls must
// cancel working orders (whenever any strategy with live quotes saw a gap).
func TestPullOnGapProtectsQuotes(t *testing.T) {
	// Seeds differ in whether any gap lands on a strategy holding quotes;
	// require the mechanism to fire on at least one of a few seeds.
	rep := RunFailover(SmallScenario(), Seeds(1, 3))
	var pulls, cancels uint64
	for _, run := range rep.Runs {
		pulls += run.Spine.QuotePulls
		cancels += run.Spine.PulledOrders
	}
	if pulls == 0 {
		t.Skip("no seed produced an internal-feed gap at a quoting strategy")
	}
	if cancels == 0 {
		t.Error("quote pulls fired but cancelled nothing")
	}
}
