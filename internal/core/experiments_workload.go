package core

import (
	"fmt"
	"math/rand"
	"strings"

	"tradenet/internal/feed"
	"tradenet/internal/metrics"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/workload"
)

// Table1Result is E1: frame-length statistics per feed (paper Table 1).
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one feed's statistics.
type Table1Row struct {
	Feed                  string
	Min, Avg, Median, Max int64
	PaperMin, PaperAvg    int64
	PaperMedian, PaperMax int64
}

// RunTable1 generates mid-day traffic for each exchange variant and
// measures frame lengths (inclusive of Ethernet, IP, and UDP headers, as in
// the paper).
func RunTable1(frames int, seed int64) Table1Result {
	rng := rand.New(rand.NewSource(seed))
	src := pkt.UDPAddr{MAC: pkt.HostMAC(1), IP: pkt.HostIP(1), Port: 30000}
	grp := pkt.IP4{239, 1, 0, 1}
	dst := pkt.UDPAddr{MAC: pkt.MulticastMAC(grp), IP: grp, Port: 30001}

	paper := map[string][4]int64{
		"Exchange A": {73, 92, 89, 1514},
		"Exchange B": {64, 113, 76, 1067},
		"Exchange C": {81, 151, 101, 1442},
	}
	var out Table1Result
	for _, v := range []*feed.Variant{feed.ExchangeA, feed.ExchangeB, feed.ExchangeC} {
		g := feed.NewFrameGen(v, src, dst)
		h := metrics.NewHistogram()
		for i := 0; i < frames; i++ {
			frame, _ := g.Next(rng)
			h.Observe(int64(len(frame)))
		}
		s := h.Summarize()
		p := paper[v.Name]
		out.Rows = append(out.Rows, Table1Row{
			Feed: v.Name, Min: s.Min, Avg: int64(s.Mean + 0.5), Median: s.Median, Max: s.Max,
			PaperMin: p[0], PaperAvg: p[1], PaperMedian: p[2], PaperMax: p[3],
		})
	}
	return out
}

// String renders the measured-vs-paper table.
func (r Table1Result) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Feed,
			fmt.Sprintf("%d (%d)", row.Min, row.PaperMin),
			fmt.Sprintf("%d (%d)", row.Avg, row.PaperAvg),
			fmt.Sprintf("%d (%d)", row.Median, row.PaperMedian),
			fmt.Sprintf("%d (%d)", row.Max, row.PaperMax),
		})
	}
	return "Table 1: frame lengths, measured (paper)\n" +
		metrics.Table([]string{"Feed", "min", "avg", "median", "max"}, rows)
}

// Fig2aResult is E2: the multi-year daily event-count series.
type Fig2aResult struct {
	Series        []workload.DayVolume
	FirstYearMed  float64
	LastYearMed   float64
	Growth        float64
	AvgRatePerSec float64
}

// RunFig2a generates the five-year growth series.
func RunFig2a(seed int64) Fig2aResult {
	cfg := workload.DefaultFig2a()
	series := workload.Fig2aSeries(rand.New(rand.NewSource(seed)), cfg)
	year := cfg.DaysPerYear
	med := func(v []workload.DayVolume) float64 {
		h := metrics.NewHistogram()
		for _, d := range v {
			h.Observe(int64(d.Count))
		}
		return float64(h.Median())
	}
	first, last := med(series[:year]), med(series[len(series)-year:])
	return Fig2aResult{
		Series:        series,
		FirstYearMed:  first,
		LastYearMed:   last,
		Growth:        last / first,
		AvgRatePerSec: workload.AvgRatePerSecond(last),
	}
}

// String renders yearly medians and the growth headline.
func (r Fig2aResult) String() string {
	var b strings.Builder
	b.WriteString("Figure 2(a): US options+equities daily market-data events\n")
	year := len(r.Series) / 5
	for y := 0; y < 5; y++ {
		h := metrics.NewHistogram()
		for _, d := range r.Series[y*year : (y+1)*year] {
			h.Observe(int64(d.Count))
		}
		fmt.Fprintf(&b, "  year %d median: %.2e events/day\n", y+1, float64(h.Median()))
	}
	fmt.Fprintf(&b, "  growth (first→last year): %.0f%% (paper: ~500%%)\n", (r.Growth-1)*100)
	fmt.Fprintf(&b, "  recent average rate: %.0fk events/s (paper: >500k)\n", r.AvgRatePerSec/1000)
	return b.String()
}

// Fig2bResult is E3: the single-stock single-day 1-second-window series.
type Fig2bResult struct {
	SessionMedian int64
	Busiest       int64
	BusiestAt     sim.Time
	DayTotal      int64
	PerEventNs    float64
}

// RunFig2b generates the day and reports the paper's statistics.
func RunFig2b(seed int64) Fig2bResult {
	day := workload.Fig2bDay(rand.New(rand.NewSource(seed)), workload.DefaultFig2b())
	openSec := int(workload.SessionOpenHour * 3600)
	closeSec := int(workload.SessionCloseHour * 3600)
	med := day.Median(func(i int) bool { return i >= openSec && i < closeSec })
	idx, busiest := day.Busiest()
	return Fig2bResult{
		SessionMedian: med,
		Busiest:       busiest,
		BusiestAt:     day.WindowStart(idx),
		DayTotal:      day.Total(),
		PerEventNs:    workload.PerEventBudget(busiest, sim.Second).Nanoseconds(),
	}
}

// String renders the figure's headline numbers.
func (r Fig2bResult) String() string {
	return fmt.Sprintf(`Figure 2(b): options events for one stock, 1s windows
  session median: %d events/s (paper: >300k)
  busiest second: %d events (paper: ~1.5M) at %s into the day
  per-event budget in busiest second: %.0f ns (paper: ~650 ns)
  day total: %.2e events
`, r.SessionMedian, r.Busiest, r.BusiestAt, r.PerEventNs, float64(r.DayTotal))
}

// Fig2cResult is E4: the busiest second in 100 µs windows.
type Fig2cResult struct {
	Median     int64
	Busiest    int64
	Total      int64
	PerEventNs float64
}

// RunFig2c generates the microburst second.
func RunFig2c(seed int64) Fig2cResult {
	w := workload.Fig2cSecond(rand.New(rand.NewSource(seed)), workload.DefaultFig2c(), nil)
	_, busiest := w.Busiest()
	return Fig2cResult{
		Median:     w.Median(nil),
		Busiest:    busiest,
		Total:      w.Total(),
		PerEventNs: workload.PerEventBudget(busiest, 100*sim.Microsecond).Nanoseconds(),
	}
}

// String renders the figure's headline numbers.
func (r Fig2cResult) String() string {
	return fmt.Sprintf(`Figure 2(c): busiest second, 100µs windows
  median window: %d events (paper: 129)
  busiest window: %d events (paper: 1066)
  second total: %d (paper: ~1.5M)
  per-event budget in busiest window: %.0f ns (paper: ~100 ns)
`, r.Median, r.Busiest, r.Total, r.PerEventNs)
}
