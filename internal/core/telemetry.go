package core

import (
	"tradenet/internal/exchange"
	"tradenet/internal/manifest"
	"tradenet/internal/metrics"
	"tradenet/internal/sim"
)

// Telemetry plane wiring: when Scenario.Telemetry is non-nil, every design
// builds a metrics registry (scheduler internals + exchange counters, plus
// whatever layer the experiment registers, e.g. wan.*) and a virtual-time
// sampler over it, and its measurement runs emit a manifest.Artifact. Nil
// (the default) builds none of it — the plant and its event schedule are
// byte-identical to the knob-less build, same contract as tracing and the
// resilience layers. An armed run adds only the sampler's own tick events
// at PrioReport: plant events keep their relative order, no RNG draws, so
// two armed runs of one seed reproduce the manifest byte-for-byte.

// TelemetrySpec opts a scenario into the telemetry plane.
type TelemetrySpec struct {
	// Interval between samples in virtual time (default 500 µs).
	Interval sim.Duration
	// Capacity bounds each metric's retained points (default 2048).
	Capacity int
}

// Telemetry is one plant's armed telemetry plane.
type Telemetry struct {
	Reg     *metrics.Registry
	Sampler *metrics.Sampler
}

// newTelemetry builds the plane, or nil when the scenario opts out. The
// registry starts with the scheduler's self-metrics; designs add their
// exchange, experiments add their layer (wan.*, …).
func newTelemetry(sched *sim.Scheduler, spec *TelemetrySpec) *Telemetry {
	if spec == nil {
		return nil
	}
	reg := metrics.NewRegistry()
	metrics.RegisterScheduler(reg, sched)
	return &Telemetry{
		Reg:     reg,
		Sampler: metrics.NewSampler(sched, reg, metrics.SamplerConfig{Interval: spec.Interval, Capacity: spec.Capacity}),
	}
}

// RegisterExchange adds the exchange's publish counters. Nil-safe.
func (t *Telemetry) RegisterExchange(ex *exchange.Exchange) {
	if t == nil {
		return
	}
	t.Reg.RegisterUint("exchange.published_dgrams", &ex.Published)
	t.Reg.RegisterUint("exchange.published_msgs", &ex.PublishedMsgs)
	t.Reg.RegisterUint("exchange.cancel_on_disconnect", &ex.CancelOnDisconnect)
	t.Reg.RegisterUint("exchange.sessions_dropped", &ex.SessionsDropped)
}

// RegisterHA adds the HA cluster's ha.* counters. Nil-safe on both sides.
func (t *Telemetry) RegisterHA(ha *HACluster) {
	if t == nil || ha == nil {
		return
	}
	ha.RegisterMetrics(t.Reg)
}

// Arm schedules sampling ticks over [from, until]. Nil-safe no-op.
func (t *Telemetry) Arm(from, until sim.Time) {
	if t == nil {
		return
	}
	t.Sampler.Arm(from, until)
}

// scenarioInfo mirrors the scenario knobs into the manifest's schema.
func scenarioInfo(sc Scenario) *manifest.ScenarioInfo {
	return &manifest.ScenarioInfo{
		Normalizers:        sc.Normalizers,
		Strategies:         sc.Strategies,
		Gateways:           sc.Gateways,
		FnLatencyPs:        int64(sc.FnLatency),
		InternalPartitions: sc.InternalPartitions,
		Symbols:            sc.Symbols,
		BurstMessages:      sc.BurstMessages,
		PullOnGap:          sc.PullOnGap,
		OEResilience:       sc.OEResilience,
		WANRedundancy:      sc.WANRedundancy,
		ExchangeHA:         sc.ExchangeHA,
	}
}

// Artifact assembles the run's manifest: meta (experiment/design/cell,
// seed, knobs, deterministic fired-event count), the registry dump, the
// sampled series, and the scheduler profile. Nil-safe — with a nil
// receiver the artifact still carries meta and profile, so every run
// emits something. Host stats are the caller's to attach (they are
// wall-clock, measured around the whole Run* call in cmd/tradenet).
func (t *Telemetry) Artifact(experiment, design, cell string, sc Scenario, sched *sim.Scheduler) *manifest.Artifact {
	a := &manifest.Artifact{
		Meta: manifest.Meta{
			Schema:     manifest.Schema,
			Experiment: experiment,
			Design:     design,
			Cell:       cell,
			Seed:       sc.Seed,
			Events:     sched.Fired(),
			Scenario:   scenarioInfo(sc),
		},
		Profile: manifest.CaptureProfile(sched.Profile()),
	}
	if t != nil {
		a.Registry = manifest.CaptureRegistry(t.Reg)
		a.Series = manifest.CaptureSeries(t.Sampler)
	}
	return a
}
