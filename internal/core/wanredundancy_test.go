package core

import (
	"strings"
	"testing"

	"tradenet/internal/device"
	"tradenet/internal/sim"
)

// e22Report memoizes one multi-seed E22 run for the acceptance tests below
// (the matrix is 11 plants per seed — build it once).
var e22Report *WANRedundancyReport

func e22(t *testing.T) *WANRedundancyReport {
	t.Helper()
	if e22Report == nil {
		rep := RunWANRedundancy(SmallScenario(), []int64{1, 2, 3})
		e22Report = &rep
	}
	return e22Report
}

// TestWANRedundancyPoliciesBeatReplay is the headline acceptance check:
// proactive redundancy must beat reactive replay on recovery time. Exposure
// integrates the stale-picture time from rain onset through each window's
// heal tail — the time-to-recovery measure that is robust to single-probe
// noise (every policy's residual losses pay the same replay RTT, so the
// worst single window can tie; the integral cannot). Summed over both
// timelines, ParityFEC and Duplicate must each strictly beat ReplayOnly.
func TestWANRedundancyPoliciesBeatReplay(t *testing.T) {
	rep := e22(t)
	for _, run := range rep.Runs {
		stale := map[string]sim.Duration{}
		for _, m := range run.Matrix {
			stale[m.Mode] += m.Exposure + m.TTR
		}
		if stale["parity-fec"] >= stale["replay-only"] {
			t.Errorf("seed %d: parity-fec stale time %v !< replay-only %v",
				run.Seed, stale["parity-fec"], stale["replay-only"])
		}
		if stale["duplicate"] >= stale["replay-only"] {
			t.Errorf("seed %d: duplicate stale time %v !< replay-only %v",
				run.Seed, stale["duplicate"], stale["replay-only"])
		}
	}
}

// TestWANRedundancyAdaptiveConverges: on every tested timeline the adaptive
// controller must land within 5 percentage points of the best static
// policy's goodput (the hysteresis reaction time — EnterAfter windows —
// costs it the first slice of each rain window), while spending strictly
// less overhead than always-on Duplicate. That combination is the point of
// closing the loop: near-best timeliness without paying send-twice in
// clear weather.
func TestWANRedundancyAdaptiveConverges(t *testing.T) {
	rep := e22(t)
	for _, run := range rep.Runs {
		best := map[string]float64{}
		var adaptives []WANRedundancyRun
		for _, m := range run.Matrix {
			if m.Mode == "adaptive" {
				adaptives = append(adaptives, m)
				continue
			}
			if g := m.GoodputPct(); g > best[m.Timeline] {
				best[m.Timeline] = g
			}
		}
		for _, a := range adaptives {
			if a.GoodputPct() < best[a.Timeline]-5 {
				t.Errorf("seed %d %s: adaptive goodput %.1f%% not within 5pp of best static %.1f%%",
					run.Seed, a.Timeline, a.GoodputPct(), best[a.Timeline])
			}
			if a.Switches == 0 {
				t.Errorf("seed %d %s: adaptive controller never switched policy", run.Seed, a.Timeline)
			}
		}
	}
	// Overhead: adaptive pays Duplicate rates only while rain demands it.
	for _, run := range rep.Runs {
		byMode := map[string]map[string]WANRedundancyRun{}
		for _, m := range run.Matrix {
			if byMode[m.Timeline] == nil {
				byMode[m.Timeline] = map[string]WANRedundancyRun{}
			}
			byMode[m.Timeline][m.Mode] = m
		}
		for tl, modes := range byMode {
			if modes["adaptive"].OverheadPct() >= modes["duplicate"].OverheadPct() {
				t.Errorf("seed %d %s: adaptive overhead %.1f%% !< duplicate %.1f%%",
					run.Seed, tl, modes["adaptive"].OverheadPct(), modes["duplicate"].OverheadPct())
			}
		}
	}
}

// TestWANRedundancyControllerTracksWeather: the squall (30% loss, beyond
// one-parity-per-group) must drive the ladder up to Duplicate; the drizzle
// (8% loss, single losses per group dominate) must stop at ParityFEC —
// the decision logs carry the ground truth.
func TestWANRedundancyControllerTracksWeather(t *testing.T) {
	rep := e22(t)
	for _, run := range rep.Runs {
		for _, m := range run.Matrix {
			if m.Mode != "adaptive" {
				continue
			}
			switch m.Timeline {
			case "squall":
				if !strings.Contains(m.DecisionLog, "-> duplicate") {
					t.Errorf("seed %d squall: controller never reached duplicate:\n%s", run.Seed, m.DecisionLog)
				}
			case "drizzle":
				if !strings.Contains(m.DecisionLog, "-> parity-fec") {
					t.Errorf("seed %d drizzle: controller never reached parity-fec:\n%s", run.Seed, m.DecisionLog)
				}
				if strings.Contains(m.DecisionLog, "-> duplicate") {
					t.Errorf("seed %d drizzle: controller overshot to duplicate on light rain:\n%s", run.Seed, m.DecisionLog)
				}
			}
			if !strings.Contains(m.DecisionLog, "-> replay-only") {
				t.Errorf("seed %d %s: controller never decayed back to replay-only after the rain:\n%s",
					run.Seed, m.Timeline, m.DecisionLog)
			}
		}
	}
}

// TestWANRedundancyDeterministic: the full rendered report — tables, fault
// timeline, decision logs, wan.* registry dump — must be byte-identical
// across repeat runs of the same seed.
func TestWANRedundancyDeterministic(t *testing.T) {
	a := RunWANRedundancy(SmallScenario(), []int64{1}).String()
	b := RunWANRedundancy(SmallScenario(), []int64{1}).String()
	if a != b {
		t.Fatalf("same-seed E22 runs differ:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestWANRedundancyRegistryNames: the wan.* counters must be registered and
// appear in the dump (the CI smoke greps for the same prefix).
func TestWANRedundancyRegistryNames(t *testing.T) {
	reg := e22(t).Runs[0].Matrix[3].Registry
	for _, name := range []string{
		"wan.tx.data_frames", "wan.tx.overhead_bytes", "wan.rx.reconstructed",
		"wan.rx.duplicates", "wan.feed.msgs", "wan.replay.recovered_msgs",
		"wan.ctl.switches", "wan.circuit.lost_frames",
	} {
		if !strings.Contains(reg, name) {
			t.Errorf("registry dump missing %q:\n%s", name, reg)
		}
	}
}

// TestWANRedundancyKnobOff: with the scenario knob off no mirror is built,
// and with it on but unsteered (controller never started) the plant's event
// loop still runs dry — the round-trip measurement must not hang or shift.
func TestWANRedundancyKnobOff(t *testing.T) {
	sc := SmallScenario()
	if d := NewDesign1(sc, device.DefaultCommodityConfig()); d.WANFeed != nil {
		t.Fatalf("knob off: WANFeed built anyway")
	}
	off := NewDesign1(sc, device.DefaultCommodityConfig()).MeasureRoundTrip(4)
	sc.WANRedundancy = true
	don := NewDesign1(sc, device.DefaultCommodityConfig())
	if don.WANFeed == nil {
		t.Fatalf("knob on: WANFeed missing")
	}
	// MeasureRoundTrip runs the queue dry: an unsteered mirror must not
	// re-arm ticks, and the passive tap must not perturb tick-to-trade.
	on := don.MeasureRoundTrip(4)
	if off.Orders != on.Orders || len(off.Samples) != len(on.Samples) {
		t.Fatalf("tap perturbed the plant: off %d orders, on %d orders", off.Orders, on.Orders)
	}
	for i := range off.Samples {
		if off.Samples[i] != on.Samples[i] {
			t.Fatalf("tap perturbed tick-to-trade sample %d: off %v, on %v", i, off.Samples[i], on.Samples[i])
		}
	}
}
