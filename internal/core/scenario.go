// Package core is the paper's contribution as a library: it composes the
// substrate packages into the three candidate trading-network designs
// (§4.1–§4.3), runs them against the common scenario — on the order of a
// thousand servers split into normalizers, strategies, and order gateways,
// each software function under ~2 µs — and implements every experiment in
// EXPERIMENTS.md (the paper's Table 1, Figure 2, and the quantitative
// claims of §3–§4).
package core

import (
	"fmt"

	"tradenet/internal/market"
	"tradenet/internal/sim"
)

// Scenario is the common workload and plant shape all designs run.
type Scenario struct {
	// Component counts (§4: "a few dozen each for normalizers and gateways
	// and the rest for strategies" out of ~1,000 servers).
	Normalizers int
	Strategies  int
	Gateways    int

	// FnLatency is the per-software-function processing cost ("the average
	// latency of each function is less than 2 microseconds").
	FnLatency sim.Duration

	// InternalPartitions is the normalized feed's partition count.
	InternalPartitions int

	// Symbols is the instrument count in the universe.
	Symbols int

	// BurstMessages is how many market-data messages each measurement run
	// publishes.
	BurstMessages int

	// PullOnGap makes every strategy cancel its working orders when it sees
	// a sequence gap on the normalized feed (stale-quote protection). The
	// failover experiment turns this on to count pulls under fabric faults.
	PullOnGap bool

	// OEResilience arms the order-entry resilience layer end to end:
	// heartbeat liveness on every exchange-facing session, cancel-on-
	// disconnect with response retention and idempotent resubmission at the
	// exchange, ack-timeout retry and reconnect-with-replay at the firm,
	// quote halting in strategies, and ingress shedding. Off (the default)
	// leaves the order path byte-identical to the legacy happy-path plant.
	OEResilience bool

	// WANRedundancy arms the adaptive WAN redundancy layer: the exchange's
	// published feed is mirrored over a Carteret→Secaucus microwave
	// circuit through a redundancy sender, a remote receiver dedups /
	// FEC-reconstructs / declares, a fiber-latency side channel replays
	// gaps, and a closed-loop controller walks the recovery-policy ladder
	// from the circuit's observed loss. Off (the default) builds none of
	// it — the plant is byte-identical to the knob-less build, zero
	// pointer writes on the hot path.
	WANRedundancy bool

	// ExchangeHA arms the exchange high-availability pair: a dark standby
	// exchange mirrors the primary through a sequence-numbered state
	// journal carried on a dedicated replication link, detects primary
	// death by journal silence, and promotes itself — adopting order-entry
	// transcripts and feed numbering so re-homed clients resync by replay
	// and the feed resumes without a sequence discontinuity. Off (the
	// default) builds no standby and the plant is byte-identical to the
	// knob-less build.
	ExchangeHA bool

	// Telemetry opts the run into the virtual-time telemetry plane: every
	// design builds a metrics registry (scheduler internals, exchange
	// counters, experiment layers) plus a sampler that snapshots it on
	// deterministic virtual-time ticks, and measurement runs emit
	// manifest.Artifact run manifests. Nil (the default) builds none of it
	// — the plant and its event schedule are byte-identical to the
	// knob-less build.
	Telemetry *TelemetrySpec

	// Seed drives all randomness.
	Seed int64
}

// PaperScenario returns the paper's full-scale scenario: ~1,000 servers.
func PaperScenario() Scenario {
	return Scenario{
		Normalizers:        24,
		Strategies:         940,
		Gateways:           24,
		FnLatency:          2 * sim.Microsecond,
		InternalPartitions: 64,
		Symbols:            26,
		BurstMessages:      400,
		Seed:               1,
	}
}

// SmallScenario returns a reduced plant for fast tests and examples: the
// same shape, two orders of magnitude fewer strategies.
func SmallScenario() Scenario {
	s := PaperScenario()
	s.Strategies = 12
	s.Normalizers = 2
	s.Gateways = 2
	s.InternalPartitions = 8
	s.BurstMessages = 120
	return s
}

// Servers returns the total server count.
func (s Scenario) Servers() int { return s.Normalizers + s.Strategies + s.Gateways }

// buildUniverse interns Symbols single-letter-prefixed tickers.
func buildUniverse(n int) *market.Universe {
	u := market.NewUniverse()
	for i := 0; i < n; i++ {
		ticker := fmt.Sprintf("%c%c%c", 'A'+i%26, 'A'+(i/26)%26, 'A'+(i/676)%26)
		u.Add(ticker, market.Equity, 0)
	}
	return u
}

// RoundTrip is the outcome of one design's tick-to-trade measurement: the
// full loop exchange → normalizer → strategy → gateway → exchange.
type RoundTrip struct {
	Design string
	// Samples are tick-to-trade latencies: order accepted at the exchange
	// minus the market-data frame's origin timestamp.
	Samples []sim.Duration
	// SwitchHops is the one-way-loop switch-hop count of the design.
	SwitchHops int
	// SoftwareHops is the number of software functions on the loop.
	SoftwareHops int
	// SoftwareTime is the known software cost on the loop (functions plus
	// the exchange's matching latency).
	SoftwareTime sim.Duration
	// SwitchLatency is the loop's total in-switch forwarding latency (hop
	// count × per-hop latency, plus merge stages) — the component the
	// paper's §4.3 "two orders of magnitude" comparison is about.
	SwitchLatency sim.Duration
	// Orders is the number of orders the exchange accepted.
	Orders int
	// Bursts records the publish instant of each measurement burst — the
	// origins the Samples are measured from (the attribution experiment uses
	// them to tell burst-originated traces from match-time reflections).
	Bursts []sim.Time
}

// Mean returns the mean tick-to-trade latency.
func (r RoundTrip) Mean() sim.Duration {
	if len(r.Samples) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, s := range r.Samples {
		sum += s
	}
	return sum / sim.Duration(len(r.Samples))
}

// NetworkTime returns the mean time attributable to the network: total
// minus the known software cost.
func (r RoundTrip) NetworkTime() sim.Duration {
	n := r.Mean() - r.SoftwareTime
	if n < 0 {
		return 0
	}
	return n
}

// NetworkShare returns the fraction of the round trip spent in the network
// — the §4.1 punchline ("half of the overall time through the system is
// spent in the network!").
func (r RoundTrip) NetworkShare() float64 {
	m := r.Mean()
	if m <= 0 {
		return 0
	}
	return float64(r.NetworkTime()) / float64(m)
}
