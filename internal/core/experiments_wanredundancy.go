package core

import (
	"fmt"

	"tradenet/internal/device"
	"tradenet/internal/exchange"
	"tradenet/internal/fault"
	"tradenet/internal/manifest"
	"tradenet/internal/metrics"
	"tradenet/internal/redundancy"
	"tradenet/internal/sim"
)

// WAN redundancy experiment (E22): recovery policy × rain-fade timeline ×
// design. Each design's plant mirrors its exchange feed to a remote site
// over the Carteret→Secaucus microwave circuit through the redundancy layer
// (see wanfeed.go), rain falls on schedule, and the run measures what each
// recovery policy buys while the path is degraded:
//
//   - goodput: messages delivered in order off the live path (first copies,
//     deduped duplicates, parity reconstructions) as a share of everything
//     the exchange published — the timely fraction. Replay heals the rest,
//     but late: accounted adds it back.
//   - time-to-recovery: rain-window end → first probe at which the remote
//     picture is complete again (live + replayed ≥ published).
//   - pick-off exposure: total probed time with an incomplete remote
//     picture — the stale-quote window a §2 pick-off artist exploits.
//   - overhead: redundant wire bytes as a share of first-copy payload bytes
//     — what the policy costs on a bandwidth-starved microwave link.
//
// The matrix crosses the three static policies and the adaptive controller
// with two rain timelines on Design 1, then runs the adaptive controller
// under the squall on all three designs. Everything replicates across seeds
// via RunParallel; each run is a pure function of its seed.

// E22 schedule: bursts every wanrBurstGap from wanrBurstStart; probes every
// wanrProbeGap from the first rain onset; the run ends wanrDrain after the
// last burst so replay tails can finish.
const (
	wanrBursts     = 120
	wanrBurstGap   = 100 * sim.Microsecond
	wanrBurstStart = sim.Time(2 * sim.Millisecond)
	wanrProbeGap   = 50 * sim.Microsecond
	wanrDrain      = 2 * sim.Millisecond

	// wanrLagAllowance: traffic is continuous, so at any instant the last
	// few hundred microseconds of published data are legitimately in flight
	// (microwave propagation, serialization, reassembly). A probe therefore
	// compares accounted-now against published-as-of lagAllowance ago:
	// "complete" means nothing older than the allowance is still missing.
	// Only losses waiting on the replay round trip breach it; in-flight
	// first copies, immediate duplicates, and parity reconstructions don't.
	wanrLagAllowance = 300 * sim.Microsecond
)

// wanrEnd is the bounded run deadline (the adaptive controller's tick
// re-arms forever, so runs bound themselves by deadline, as E21 does).
func wanrEnd() sim.Time {
	return wanrBurstStart.Add(sim.Duration(wanrBursts)*wanrBurstGap + wanrDrain)
}

// rainTimeline is one scripted weather pattern for the microwave path.
type rainTimeline struct {
	name     string
	lossProb float64 // per-frame loss probability while raining
	windows  []fault.RainWindow
}

// wanrTimelines: a squall (two short, violent cells — loss far beyond what
// one parity frame per group can absorb, so the ladder should climb to
// Duplicate) and a drizzle (one long, light fade — single losses per group
// dominate, FEC territory).
func wanrTimelines() []rainTimeline {
	return []rainTimeline{
		{name: "squall", lossProb: 0.30, windows: []fault.RainWindow{
			{At: wanrBurstStart.Add(1 * sim.Millisecond), Dur: 1500 * sim.Microsecond},
			{At: wanrBurstStart.Add(6 * sim.Millisecond), Dur: 1500 * sim.Microsecond},
		}},
		{name: "drizzle", lossProb: 0.08, windows: []fault.RainWindow{
			{At: wanrBurstStart.Add(2 * sim.Millisecond), Dur: 5 * sim.Millisecond},
		}},
	}
}

// wanrMode is one arm of the policy dimension.
type wanrMode struct {
	name     string
	adaptive bool
	policy   redundancy.Policy // pinned policy when !adaptive
}

func wanrModes() []wanrMode {
	return []wanrMode{
		{name: "replay-only", policy: redundancy.ReplayOnly},
		{name: "parity-fec", policy: redundancy.ParityFEC},
		{name: "duplicate", policy: redundancy.Duplicate},
		{name: "adaptive", adaptive: true},
	}
}

// wanPlant is one design reduced to what the mirror run needs.
type wanPlant struct {
	name  string
	sched *sim.Scheduler
	ex    *exchange.Exchange
	wf    *WANFeed
	tel   *Telemetry
}

func wanPlantDesign1(sc Scenario) wanPlant {
	d := NewDesign1(sc, device.DefaultCommodityConfig())
	return wanPlant{name: "Design 1 (leaf-spine)", sched: d.Sched, ex: d.Ex, wf: d.WANFeed, tel: d.Tel}
}

func wanPlantDesign2(sc Scenario) wanPlant {
	lats := []sim.Duration{5 * sim.Microsecond, 20 * sim.Microsecond, 12 * sim.Microsecond}
	d := NewDesign2(sc, lats, true)
	return wanPlant{name: "Design 2 (cloud)", sched: d.Sched, ex: d.Ex, wf: d.WANFeed, tel: d.Tel}
}

func wanPlantDesign3(sc Scenario) wanPlant {
	d := NewDesign3(sc, 0)
	return wanPlant{name: "Design 3 (L1S)", sched: d.Sched, ex: d.Ex, wf: d.WANFeed, tel: d.Tel}
}

// WANRedundancyRun is one (design, timeline, mode) cell.
type WANRedundancyRun struct {
	Design   string
	Timeline string
	Mode     string

	Published uint64 // messages the exchange published over the run
	LiveMsgs  uint64 // delivered in order off the live path (incl. FEC)
	Recovered uint64 // replayed over the side channel, late

	// RecoveredInRun / TTR: worst rain window's end → first complete probe.
	RecoveredInRun bool
	TTR            sim.Duration
	// Exposure sums probed time with an incomplete remote picture.
	Exposure sim.Duration

	DataBytes     uint64
	OverheadBytes uint64

	CircuitLost   uint64 // frames the microwave path dropped
	Reconstructed uint64 // losses healed by parity, no replay RTT
	DupDiscarded  uint64 // redundant copies deduped by sequence
	LostDeclared  uint64 // residual losses handed to replay
	Requests      uint64 // replay requests sent
	Served        uint64 // datagrams the replay service returned
	Switches      uint64 // controller policy switches (adaptive only)

	DecisionLog string
	FaultLog    string
	Registry    string // wan.* metrics dump

	// Artifact is the cell's run manifest (nil unless the scenario arms
	// Telemetry): wan.* + scheduler series time-resolved across the rain
	// windows, fault timeline and controller decisions as log records.
	Artifact *manifest.Artifact
}

// GoodputPct is the timely fraction: in-order live delivery over published.
func (r WANRedundancyRun) GoodputPct() float64 {
	if r.Published == 0 {
		return 0
	}
	return 100 * float64(r.LiveMsgs) / float64(r.Published)
}

// OverheadPct is redundant wire bytes over first-copy payload bytes.
func (r WANRedundancyRun) OverheadPct() float64 {
	if r.DataBytes == 0 {
		return 0
	}
	return 100 * float64(r.OverheadBytes) / float64(r.DataBytes)
}

// runWANRedundancy drives one plant through one timeline under one mode.
func runWANRedundancy(p wanPlant, sc Scenario, tl rainTimeline, mode wanrMode) WANRedundancyRun {
	res := WANRedundancyRun{Design: p.name, Timeline: tl.name, Mode: mode.name}
	sched, wf := p.sched, p.wf
	if p.tel != nil {
		wf.RegisterMetrics(p.tel.Reg)
		p.tel.Arm(0, wanrEnd())
	}
	wf.MW.Config.RainLossProb = tl.lossProb
	if mode.adaptive {
		wf.Start()
	} else {
		wf.ForceStatic(mode.policy)
	}

	plan := fault.NewPlan(sched)
	plan.RainTimeline(wf.MW, tl.windows...)

	perBurst := sc.BurstMessages / 12
	if perBurst < 1 {
		perBurst = 1
	}
	for b := 0; b < wanrBursts; b++ {
		sched.At(wanrBurstStart.Add(sim.Duration(b)*wanrBurstGap), func() {
			p.ex.PublishBurst(sched.Rand(), perBurst)
		})
	}

	// Completeness probes: every wanrProbeGap, is the remote picture whole
	// (live + replayed ≥ what had been published wanrLagAllowance ago — the
	// E19 >= compare, lag-tolerant per the allowance above)? Exposure
	// accumulates incomplete intervals from the first rain onset; each rain
	// window's TTR is its end → the first complete probe at or after it.
	// Probes share one priority and strictly increasing times, so they run
	// in order and the published-count history indexes cleanly.
	end := wanrEnd()
	winEnd := make([]sim.Time, len(tl.windows))
	winDone := make([]bool, len(tl.windows))
	for i, w := range tl.windows {
		winEnd[i] = w.At.Add(w.Dur)
	}
	lagProbes := int(wanrLagAllowance / wanrProbeGap)
	var pubHist []uint64
	for at := wanrBurstStart; at <= end; at = at.Add(wanrProbeGap) {
		sched.AtPrio(at, sim.PrioReport, func() {
			i := len(pubHist)
			pubHist = append(pubHist, p.ex.PublishedMsgs)
			j := i - lagProbes
			if j < 0 {
				j = 0
			}
			complete := wf.PendingReplays == 0 && wf.AccountedMsgs() >= pubHist[j]
			now := sched.Now()
			if now < tl.windows[0].At {
				return
			}
			if !complete {
				res.Exposure += wanrProbeGap
				return
			}
			for k := range winEnd {
				if !winDone[k] && now >= winEnd[k] {
					winDone[k] = true
					if d := now.Sub(winEnd[k]); d > res.TTR {
						res.TTR = d
					}
				}
			}
		})
	}
	sched.RunUntil(end)

	res.RecoveredInRun = true
	for _, done := range winDone {
		if !done {
			res.RecoveredInRun = false
		}
	}
	res.Published = p.ex.PublishedMsgs
	res.LiveMsgs = wf.FeedMsgs
	res.Recovered = wf.RecoveredMsgs()
	res.DataBytes = wf.Sender.Stats.DataBytes
	res.OverheadBytes = wf.Sender.Stats.OverheadBytes
	res.CircuitLost = wf.MW.PortA.Lost
	res.Reconstructed = wf.Receiver.Stats.Reconstructed
	res.DupDiscarded = wf.Receiver.Stats.Duplicates
	res.LostDeclared = wf.Receiver.Stats.LostDeclared
	res.Requests = wf.Requests
	res.Served = wf.ReplayServed()
	res.Switches = wf.Controller.Switches
	res.DecisionLog = wf.Controller.LogString()
	res.FaultLog = plan.LogString()

	reg := metrics.NewRegistry()
	wf.RegisterMetrics(reg)
	res.Registry = reg.String()

	if p.tel != nil {
		art := p.tel.Artifact("wanredundancy", p.name, tl.name+" "+mode.name, sc, sched)
		art.Faults = []manifest.LogRecord{{Name: "rain", Log: res.FaultLog}}
		art.Decisions = []manifest.LogRecord{{Name: "controller", Log: res.DecisionLog}}
		res.Artifact = art
	}
	return res
}

// WANRedundancyResult is one seed's runs: the policy × timeline matrix on
// Design 1, then the adaptive controller under the squall on all designs.
type WANRedundancyResult struct {
	Seed    int64
	Matrix  []WANRedundancyRun
	Designs []WANRedundancyRun
}

// WANRedundancyReport is E22 replicated across seeds.
type WANRedundancyReport struct {
	Seeds []int64
	Runs  []WANRedundancyResult
}

// RunWANRedundancy runs E22 for every seed in parallel, results in seed
// order. Each run is a pure function of its seed.
func RunWANRedundancy(sc Scenario, seeds []int64) WANRedundancyReport {
	out := WANRedundancyReport{Seeds: seeds}
	out.Runs = RunParallel(seeds, func(seed int64) WANRedundancyResult {
		s := sc
		s.Seed = seed
		s.WANRedundancy = true
		res := WANRedundancyResult{Seed: seed}
		for _, tl := range wanrTimelines() {
			for _, mode := range wanrModes() {
				res.Matrix = append(res.Matrix, runWANRedundancy(wanPlantDesign1(s), s, tl, mode))
			}
		}
		// Design sweep: adaptive under the squall. Design 1's cell is the
		// matrix run — same plant, same schedule — so reuse it.
		squall := wanrTimelines()[0]
		adaptive := wanrModes()[3]
		res.Designs = append(res.Designs, res.Matrix[3])
		res.Designs = append(res.Designs, runWANRedundancy(wanPlantDesign2(s), s, squall, adaptive))
		res.Designs = append(res.Designs, runWANRedundancy(wanPlantDesign3(s), s, squall, adaptive))
		return res
	})
	return out
}

// row renders one run as a table row.
func (r WANRedundancyRun) row(lead ...string) []string {
	return append(lead,
		fmt.Sprintf("%.1f%%", r.GoodputPct()),
		ttr(r.RecoveredInRun, r.TTR),
		r.Exposure.String(),
		fmt.Sprintf("%.1f%%", r.OverheadPct()),
		fmt.Sprintf("%d", r.CircuitLost),
		fmt.Sprintf("%d", r.Reconstructed),
		fmt.Sprintf("%d", r.DupDiscarded),
		fmt.Sprintf("%d", r.LostDeclared),
		fmt.Sprintf("%d/%d", r.Requests, r.Served),
		fmt.Sprintf("%d", r.Switches),
	)
}

// String renders the E22 report.
func (r WANRedundancyReport) String() string {
	out := fmt.Sprintf("Adaptive WAN redundancy (E22): recovery policy × rain timeline × design, %d seed(s)\n\n", len(r.Seeds))
	out += "Exchange feed mirrored Carteret→Secaucus over microwave; rain on schedule;\nfiber side-channel replay backstops whatever the active policy cannot absorb.\ngoodput = in-order live delivery (incl. parity reconstructions) / published;\nTTR = worst rain-window end → complete remote picture; exposure = probed time\nwith an incomplete picture (the stale-quote window).\n\n"

	matrixRows := make([][]string, 0, len(r.Runs)*8)
	for _, run := range r.Runs {
		for _, m := range run.Matrix {
			matrixRows = append(matrixRows, m.row(fmt.Sprintf("%d", run.Seed), m.Timeline, m.Mode))
		}
	}
	out += "Policy × timeline (Design 1):\n"
	out += metrics.Table(
		[]string{"seed", "timeline", "policy", "goodput", "TTR", "exposure", "overhead", "lost", "reconstr", "deduped", "declared", "req/served", "switches"},
		matrixRows)

	designRows := make([][]string, 0, len(r.Runs)*3)
	for _, run := range r.Runs {
		for _, m := range run.Designs {
			designRows = append(designRows, m.row(fmt.Sprintf("%d", run.Seed), m.Design))
		}
	}
	out += "\nAdaptive controller under the squall, all designs:\n"
	out += metrics.Table(
		[]string{"seed", "design", "goodput", "TTR", "exposure", "overhead", "lost", "reconstr", "deduped", "declared", "req/served", "switches"},
		designRows)

	if len(r.Runs) > 0 {
		first := r.Runs[0]
		squallAdaptive := first.Matrix[3]
		drizzleAdaptive := first.Matrix[7]
		out += fmt.Sprintf("\nController decisions (seed %d, Design 1, squall):\n%s", first.Seed, squallAdaptive.DecisionLog)
		out += fmt.Sprintf("Controller decisions (seed %d, Design 1, drizzle):\n%s", first.Seed, drizzleAdaptive.DecisionLog)
		out += fmt.Sprintf("Rain timeline (seed %d, squall):\n%s", first.Seed, squallAdaptive.FaultLog)
		out += fmt.Sprintf("\nwan.* metrics (seed %d, Design 1, squall, adaptive):\n%s", first.Seed, squallAdaptive.Registry)
	}
	return out
}
