package core

import (
	"strings"
	"testing"

	"tradenet/internal/sim"
)

func TestRunTable1MatchesPaperShape(t *testing.T) {
	r := RunTable1(100_000, 1)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Min != row.PaperMin || row.Max != row.PaperMax {
			t.Errorf("%s: min/max %d/%d, paper %d/%d", row.Feed, row.Min, row.Max, row.PaperMin, row.PaperMax)
		}
		if relErr(row.Median, row.PaperMedian) > 0.10 {
			t.Errorf("%s: median %d vs paper %d", row.Feed, row.Median, row.PaperMedian)
		}
		if relErr(row.Avg, row.PaperAvg) > 0.15 {
			t.Errorf("%s: avg %d vs paper %d", row.Feed, row.Avg, row.PaperAvg)
		}
	}
	if !strings.Contains(r.String(), "Exchange B") {
		t.Fatal("render missing feeds")
	}
}

func relErr(got, want int64) float64 {
	d := float64(got-want) / float64(want)
	if d < 0 {
		d = -d
	}
	return d
}

func TestRunFig2a(t *testing.T) {
	r := RunFig2a(2)
	if r.Growth < 4 || r.Growth > 8 {
		t.Fatalf("growth = %.1f, want ~6x (500%%)", r.Growth)
	}
	if r.AvgRatePerSec < 500_000 {
		t.Fatalf("avg rate = %.0f, want >500k", r.AvgRatePerSec)
	}
	if !strings.Contains(r.String(), "500k") {
		t.Fatal("render incomplete")
	}
}

func TestRunFig2b(t *testing.T) {
	r := RunFig2b(3)
	if r.SessionMedian < 300_000 || r.SessionMedian > 400_000 {
		t.Fatalf("median = %d", r.SessionMedian)
	}
	if r.Busiest < 1_200_000 || r.Busiest > 1_900_000 {
		t.Fatalf("busiest = %d", r.Busiest)
	}
	// 1.5M events in a second ⇒ ~650ns/event budget.
	if r.PerEventNs < 500 || r.PerEventNs > 900 {
		t.Fatalf("per-event = %.0fns", r.PerEventNs)
	}
	if len(r.String()) == 0 {
		t.Fatal("empty render")
	}
}

func TestRunFig2c(t *testing.T) {
	r := RunFig2c(4)
	if r.Median < 110 || r.Median > 150 {
		t.Fatalf("median = %d, want ≈129", r.Median)
	}
	if r.Busiest < 700 {
		t.Fatalf("busiest = %d, want ≈1066", r.Busiest)
	}
	if r.PerEventNs > 150 {
		t.Fatalf("per-event = %.0f ns, want ≈100", r.PerEventNs)
	}
}

func TestRunDesignComparison(t *testing.T) {
	r := RunDesignComparison(SmallScenario(), 3)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	d1, d3, d2 := r.Rows[0], r.Rows[1], r.Rows[2]
	// The paper's ordering: L1S fastest, leaf-spine mid, cloud slowest.
	if !(d3.Mean() < d1.Mean() && d1.Mean() < d2.Mean()) {
		t.Fatalf("ordering broken: d3=%v d1=%v d2=%v", d3.Mean(), d1.Mean(), d2.Mean())
	}
	// Design 1: network ≈ half the round trip.
	if s := d1.NetworkShare(); s < 0.35 || s > 0.75 {
		t.Fatalf("design1 network share = %.2f", s)
	}
	// Design 3's network time is a small fraction of Design 1's.
	if ratio := float64(d1.NetworkTime()) / float64(d3.NetworkTime()); ratio < 3 {
		t.Fatalf("network ratio = %.1f", ratio)
	}
	if !strings.Contains(r.String(), "Design 3") {
		t.Fatal("render incomplete")
	}
}

func TestRunMrouteOverflow(t *testing.T) {
	r := RunMrouteOverflow(20, 10, 40, 5)
	if r.HWSent == 0 || r.SWSent == 0 {
		t.Fatal("both classes must see traffic")
	}
	hwLoss := 1 - float64(r.HWDelivered)/float64(r.HWSent)
	swLoss := 1 - float64(r.SWDelivered)/float64(r.SWSent)
	if hwLoss > 0.01 {
		t.Fatalf("hardware loss = %.2f, want ~0", hwLoss)
	}
	if swLoss < 0.3 {
		t.Fatalf("software loss = %.2f, want heavy", swLoss)
	}
	// Software path at least an order of magnitude slower.
	if r.SWMean < 10*r.HWMean {
		t.Fatalf("sw mean %v not ≫ hw mean %v", r.SWMean, r.HWMean)
	}
	if !strings.Contains(r.String(), "cliff") {
		t.Fatal("render incomplete")
	}
}

func TestRunGenerations(t *testing.T) {
	r := RunGenerations()
	if len(r.Measured) != 4 {
		t.Fatalf("measured = %d", len(r.Measured))
	}
	// Measured hop latency equals the generation's spec latency.
	for i, m := range r.Measured {
		if m != sim.Duration(420+[4]int64{0, 30, 55, 80}[i])*sim.Nanosecond {
			// (420, 450, 475, 500 ns)
			t.Fatalf("gen %d measured %v", i, m)
		}
	}
	if !strings.Contains(r.String(), "2023") {
		t.Fatal("render incomplete")
	}
}

func TestRunMergeBottleneck(t *testing.T) {
	r := RunMergeBottleneck([]int{1, 2, 4}, 20, 6)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Offered load grows with fan-in; queueing and/or loss grow sharply
	// once the merged feed saturates the output.
	if r.Rows[0].OfferedLoad >= 1 {
		t.Fatalf("single feed should be under line rate: %.2f", r.Rows[0].OfferedLoad)
	}
	if r.Rows[2].OfferedLoad <= r.Rows[0].OfferedLoad*2 {
		t.Fatalf("offered load should scale with fan-in: %v", r.Rows)
	}
	if r.Rows[2].MeanQueue <= r.Rows[0].MeanQueue {
		t.Fatalf("queueing should grow with fan-in: %v vs %v",
			r.Rows[2].MeanQueue, r.Rows[0].MeanQueue)
	}
	lastLoss := float64(r.Rows[2].Dropped)
	if r.Rows[2].OfferedLoad > 1 && lastLoss == 0 {
		t.Fatal("overloaded merge should drop")
	}
	if !strings.Contains(r.String(), "fan-in") {
		t.Fatal("render incomplete")
	}
}

func TestRunHeaderOverhead(t *testing.T) {
	r := RunHeaderOverhead(50_000, 7)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Paper band: headers are 25–40% of bytes sent (wider tolerance for
		// the packing-heavy feeds).
		if row.HeaderShare < 0.15 || row.HeaderShare > 0.60 {
			t.Errorf("%s header share = %.2f", row.Feed, row.HeaderShare)
		}
		if row.CompactSave <= 0 || row.CompactSave >= row.HeaderShare {
			t.Errorf("%s compact save = %.2f vs share %.2f", row.Feed, row.CompactSave, row.HeaderShare)
		}
	}
	// §5: header processing ≈ 40ns at 10G (54B of Eth+IP+TCP → 43.2 ns).
	if r.HeaderCostNs < 38 || r.HeaderCostNs > 48 {
		t.Fatalf("header cost = %.1f ns", r.HeaderCostNs)
	}
}

func TestRunPartitionScaling(t *testing.T) {
	r := RunPartitionScaling(4)
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if first.PerStrategy != 600 || last.PerStrategy != 1300 {
		t.Fatalf("growth endpoints = %d→%d", first.PerStrategy, last.PerStrategy)
	}
	// By month 24 the oldest generation's table overflows.
	if last.Plans[0].Software == 0 {
		t.Fatalf("old switch should overflow at %d groups", last.TotalGroups)
	}
	// The newest generation holds out longer than the oldest.
	if last.Plans[3].Software >= last.Plans[0].Software {
		t.Fatal("newer generation should absorb more groups")
	}
	if !strings.Contains(r.String(), "month") {
		t.Fatal("render incomplete")
	}
}

func TestRunPerEventBudget(t *testing.T) {
	r := RunPerEventBudget(200_000)
	if r.DecodeNsPerMsg <= 0 || r.DecodeNsPerMsg > 2000 {
		t.Fatalf("decode = %.1f ns", r.DecodeNsPerMsg)
	}
	if r.NormalizeNsPerMsg < r.DecodeNsPerMsg {
		t.Fatalf("normalize (%.1f) should cost at least decode (%.1f)",
			r.NormalizeNsPerMsg, r.DecodeNsPerMsg)
	}
	if r.Budget1s < 600 || r.Budget1s > 700 {
		t.Fatalf("1s budget = %.0f", r.Budget1s)
	}
	if r.Budget100us < 90 || r.Budget100us > 100 {
		t.Fatalf("100µs budget = %.0f", r.Budget100us)
	}
	if !strings.Contains(r.String(), "feasible") && !strings.Contains(r.String(), "OVER") {
		t.Fatal("render missing verdicts")
	}
}

func TestRunWAN(t *testing.T) {
	r := RunWAN(400, 8)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Advantage <= 0 {
			t.Errorf("%s: microwave should win (%v)", row.Pair, row.Advantage)
		}
		if row.RainLossPct <= row.ClearLossPct {
			t.Errorf("%s: rain loss %.1f%% should exceed clear %.1f%%",
				row.Pair, row.RainLossPct, row.ClearLossPct)
		}
		if row.ClearLossPct != 0 {
			t.Errorf("%s: clear-weather loss = %.1f%%", row.Pair, row.ClearLossPct)
		}
	}
	if r.MicrowaveBW >= r.FiberBW {
		t.Fatal("microwave has less bandwidth")
	}
}

func TestRunGenerationRoundTrip(t *testing.T) {
	r := RunGenerationRoundTrip(SmallScenario(), 3)
	if r.NewMean <= r.OldMean {
		t.Fatalf("newer switches should be slower end to end: %v vs %v", r.NewMean, r.OldMean)
	}
	delta := r.NewMean - r.OldMean
	// The measured regression should be close to 12 × 80ns = 960ns; bursts
	// introduce some queueing noise, so allow a generous band.
	if delta < r.SwitchDelta/2 || delta > 2*r.SwitchDelta {
		t.Fatalf("regression %v, predicted %v", delta, r.SwitchDelta)
	}
	if !strings.Contains(r.String(), "12 hops") {
		t.Fatal("render incomplete")
	}
}
