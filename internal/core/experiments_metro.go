package core

import (
	"fmt"

	"tradenet/internal/colo"
	"tradenet/internal/firm"
	"tradenet/internal/market"
	"tradenet/internal/sim"
)

// MetroNBBOResult is the cross-colo surveillance study. §4.2's compliance
// rules (no locked/crossed markets, no trade-throughs) require aggregating
// quotes from exchanges tens of miles apart — but the aggregated view is
// skewed by propagation: Mahwah's quote is ~181 µs old by the time it
// reaches a Carteret surveillance host over microwave. When prices move,
// the stale mix transiently *appears* locked or crossed even though no
// exchange ever was. Faster WANs shrink, but cannot eliminate, this window
// — a physical limit on remote compliance checking.
type MetroNBBOResult struct {
	Horizon sim.Duration
	// ApparentLockedCrossed is the fraction of time the Carteret
	// surveillance view showed a locked or crossed market.
	MicrowaveShare float64
	FiberShare     float64
	// OracleShare is the same fraction for an impossible zero-latency
	// observer (0 by construction: no venue crosses itself).
	OracleShare float64
	// Transitions counts observed state changes on the microwave view.
	Transitions uint64
}

// RunMetroNBBO simulates one symbol quoted at three exchanges (Mahwah,
// Secaucus, Carteret) tracking a common random-walk price, observed by a
// surveillance host in Carteret over each WAN medium.
func RunMetroNBBO(horizon sim.Duration, seed int64) MetroNBBOResult {
	res := MetroNBBOResult{Horizon: horizon}
	res.MicrowaveShare, res.Transitions = runMetroView(horizon, seed, colo.DefaultMicrowave())
	res.FiberShare, _ = runMetroView(horizon, seed, colo.DefaultFiber())
	res.OracleShare, _ = runMetroView(horizon, seed, colo.CircuitConfig{Medium: colo.Microwave, RouteFactor: 1e-9, Bandwidth: colo.DefaultMicrowave().Bandwidth})
	return res
}

func runMetroView(horizon sim.Duration, seed int64, cfg colo.CircuitConfig) (share float64, transitions uint64) {
	sched := sim.NewScheduler(seed)
	sur := firm.NewSurveillance()
	const sym market.SymbolID = 1

	// Observation delays from each venue to the Carteret host.
	delay := map[market.ExchangeID]sim.Duration{
		1: colo.NewCircuit(sched, colo.Mahwah, colo.Carteret, cfg, nullH{}, nullH{}).Latency,
		2: colo.NewCircuit(sched, colo.Secaucus, colo.Carteret, cfg, nullH{}, nullH{}).Latency,
		3: 25 * sim.Nanosecond, // local cross-connect
	}

	// Time-weighted state accounting.
	var badTime sim.Duration
	lastChange := sim.Time(0)
	state := market.MarketNormal
	observe := func(ex market.ExchangeID, bbo market.BBO) {
		sur.Update(ex, sym, bbo)
		now := sched.Now()
		s := sur.State(sym)
		if s != state {
			transitions++
			if state != market.MarketNormal {
				badTime += now.Sub(lastChange)
			}
			state = s
			lastChange = now
		}
	}

	// A common efficient price that all venues track; each venue quotes
	// bid = p-1, ask = p+1, so no venue is ever locked at source.
	price := market.Price(10_000)
	rng := sched.Rand()
	var step func()
	step = func() {
		if rng.Intn(2) == 0 {
			price++
		} else {
			price--
		}
		for ex := market.ExchangeID(1); ex <= 3; ex++ {
			bbo := market.BBO{
				Bid: market.Quote{Price: price - 1, Size: 100},
				Ask: market.Quote{Price: price + 1, Size: 100},
			}
			ex := ex
			sched.After(delay[ex], func() { observe(ex, bbo) })
		}
		next := sched.Now().Add(sim.Duration(1+rng.Intn(200)) * sim.Microsecond)
		if next.Before(sim.Time(horizon)) {
			sched.At(next, step)
		}
	}
	sched.At(0, step)
	sched.Run()
	if state != market.MarketNormal {
		badTime += sched.Now().Sub(lastChange)
	}
	return float64(badTime) / float64(horizon), transitions
}

// String renders the skew study.
func (r MetroNBBOResult) String() string {
	return fmt.Sprintf(`Cross-colo NBBO skew (§4.2): one symbol, three venues, Carteret observer
  apparent locked/crossed share of time:
    zero-latency oracle:  %.2f%%   (no venue ever crossed at source)
    microwave WAN view:   %.2f%%   (%d state transitions)
    fiber WAN view:       %.2f%%
  propagation skew manufactures phantom lock/cross conditions; compliance
  must either tolerate them, co-locate surveillance per venue, or — the
  paper's point — run a network engineered for exactly this aggregation.
`, r.OracleShare*100, r.MicrowaveShare*100, r.Transitions, r.FiberShare*100)
}
