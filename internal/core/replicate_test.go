package core

import (
	"reflect"
	"testing"
)

func TestSeeds(t *testing.T) {
	got := Seeds(7, 4)
	want := []int64{7, 8, 9, 10}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Seeds(7,4) = %v, want %v", got, want)
	}
	if len(Seeds(1, 0)) != 0 {
		t.Fatalf("Seeds(1,0) should be empty")
	}
}

func TestRunParallelPreservesSeedOrder(t *testing.T) {
	seeds := Seeds(100, 64)
	got := RunParallel(seeds, func(seed int64) int64 { return seed * 3 })
	for i, v := range got {
		if v != seeds[i]*3 {
			t.Fatalf("result[%d] = %d, want %d", i, v, seeds[i]*3)
		}
	}
}

// TestRunParallelMatchesSequential is the core determinism claim: fanning N
// seeds of a full plant simulation across workers yields bit-for-bit the
// same results as running them one at a time. Run with -race to also prove
// the replications share no mutable state.
func TestRunParallelMatchesSequential(t *testing.T) {
	sc := SmallScenario()
	seeds := Seeds(1, 4)
	run := func(seed int64) DesignComparison {
		s := sc
		s.Seed = seed
		return RunDesignComparison(s, 2)
	}

	sequential := make([]DesignComparison, len(seeds))
	for i, s := range seeds {
		sequential[i] = run(s)
	}
	parallel := RunParallel(seeds, run)

	if !reflect.DeepEqual(sequential, parallel) {
		t.Fatalf("parallel replications diverge from sequential runs:\nsequential: %+v\nparallel:   %+v",
			sequential, parallel)
	}
}

// TestRunParallelRepeatable: two parallel runs of the same seed set are
// identical to each other, however the work interleaves.
func TestRunParallelRepeatable(t *testing.T) {
	seeds := Seeds(3, 3)
	run := func(seed int64) MrouteOverflowResult {
		return RunMrouteOverflow(12, 6, 10, seed)
	}
	a := RunParallel(seeds, run)
	b := RunParallel(seeds, run)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated parallel runs diverge:\n%+v\n%+v", a, b)
	}
}

func TestRunDesignComparisonSeedsMergesRuns(t *testing.T) {
	sc := SmallScenario()
	seeds := Seeds(1, 3)
	rep := RunDesignComparisonSeeds(sc, 2, seeds)
	if len(rep.Runs) != len(seeds) {
		t.Fatalf("got %d runs, want %d", len(rep.Runs), len(seeds))
	}
	// Each per-seed run must equal the sequential single-seed experiment.
	for i, seed := range seeds {
		s := sc
		s.Seed = seed
		want := RunDesignComparison(s, 2)
		if !reflect.DeepEqual(rep.Runs[i], want) {
			t.Fatalf("run for seed %d diverges from sequential result", seed)
		}
	}
	if len(rep.Rows) != len(rep.Runs[0].Rows) {
		t.Fatalf("got %d merged rows, want %d", len(rep.Rows), len(rep.Runs[0].Rows))
	}
	for d, row := range rep.Rows {
		wantOrders := 0
		for _, run := range rep.Runs {
			wantOrders += run.Rows[d].Orders
		}
		if row.Orders != wantOrders {
			t.Errorf("%s: merged orders %d, want %d", row.Design, row.Orders, wantOrders)
		}
		if row.Mean <= 0 || row.P99 < row.P50 {
			t.Errorf("%s: implausible merged stats: mean %v p50 %v p99 %v",
				row.Design, row.Mean, row.P50, row.P99)
		}
	}
	if rep.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestRunMrouteOverflowSeedsPools(t *testing.T) {
	seeds := Seeds(1, 3)
	rep := RunMrouteOverflowSeeds(12, 6, 10, seeds)
	if len(rep.Runs) != len(seeds) {
		t.Fatalf("got %d runs, want %d", len(rep.Runs), len(seeds))
	}
	for i, seed := range seeds {
		want := RunMrouteOverflow(12, 6, 10, seed)
		if !reflect.DeepEqual(rep.Runs[i], want) {
			t.Fatalf("run for seed %d diverges from sequential result", seed)
		}
	}
	if rep.HWMean <= 0 || rep.SWMean <= rep.HWMean {
		t.Fatalf("implausible pooled means: hw %v sw %v", rep.HWMean, rep.SWMean)
	}
	if rep.String() == "" {
		t.Fatal("empty rendering")
	}
}
