package core

import (
	"fmt"

	"tradenet/internal/device"
	"tradenet/internal/exchange"
	"tradenet/internal/feed"
	"tradenet/internal/firm"
	"tradenet/internal/market"
	"tradenet/internal/mcast"
	"tradenet/internal/netsim"
	"tradenet/internal/orderentry"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/units"
)

// Design2 is §4.2: exchange and trading machines hosted in a cloud whose
// fabric equalizes latency across tenants. Normalization is folded into the
// cloud-hosted exchange (it publishes the internal format directly), per
// the cloud-exchange proposals the paper cites; each tenant runs a strategy
// directly against that feed.
type Design2 struct {
	Scenario Scenario
	Sched    *sim.Scheduler
	U        *market.Universe
	EqMD     *device.CloudEqualizer
	EqOE     *device.CloudEqualizer
	Ex       *exchange.Exchange
	Strats   []*firm.Strategy
	OutMap   *mcast.Map

	// ExSessions[i] is the exchange's side of tenant i's order-entry
	// session (see Design1.ExSessions).
	ExSessions []*orderentry.ExchangeSession

	// arrivals[ipID][tenant] records market-data delivery times for skew
	// analysis; the zero Time means "not delivered to this tenant" (nothing
	// arrives at t=0 — every path charges positive latency).
	arrivals map[uint16][]sim.Time

	// WANFeed is the adaptive WAN redundancy mirror (nil unless
	// Scenario.WANRedundancy).
	WANFeed *WANFeed

	// HA is the exchange high-availability pair (nil unless
	// Scenario.ExchangeHA). Its OnPromote hook swaps both equalizers'
	// standby ports so tenant traffic re-steers to the promoted venue.
	HA *HACluster

	// Tel is the telemetry plane (nil unless Scenario.Telemetry).
	Tel *Telemetry
}

// NewDesign2 builds the cloud plant with the given per-tenant path
// latencies (zone placement). equalize toggles the fairness fabric.
func NewDesign2(sc Scenario, tenantLat []sim.Duration, equalize bool) *Design2 {
	d := &Design2{
		Scenario: sc,
		Sched:    sim.NewScheduler(sc.Seed),
		arrivals: make(map[uint16][]sim.Time),
	}
	d.U = buildUniverse(sc.Symbols)
	d.OutMap = mcast.NewMap(mcast.NewPartitioner(d.U, mcast.ByHash, sc.InternalPartitions), mcast.NewAllocator(2))

	cfg := device.DefaultCloudConfig()
	cfg.Equalize = equalize
	d.EqMD = device.NewCloudEqualizer(d.Sched, "cloud-md", tenantLat, cfg)
	d.EqOE = device.NewCloudEqualizer(d.Sched, "cloud-oe", tenantLat, cfg)

	d.Ex = exchange.New(d.Sched, d.U, d.OutMap, exchange.Config{
		ID: 1, Name: "CLOUD-EXCH", Variant: feed.Internal, MatchLatency: 0, HostID: idExchange,
	})
	netsim.Connect(d.Ex.MDNIC().Port, d.EqMD.ExchangePort(), units.Rate10G, 0)
	netsim.Connect(d.Ex.OENIC().Port, d.EqOE.ExchangePort(), units.Rate10G, 0)

	if sc.OEResilience {
		d.Ex.EnableResilience(oeExchangeResilience())
	}
	if sc.ExchangeHA {
		// The standby hangs off provisioned-but-inactive equalizer ports;
		// promotion swaps them into the exchange slot so tenant unicasts and
		// feed multicasts re-steer without the tenants re-addressing.
		bak := exchange.New(d.Sched, d.U, d.OutMap, exchange.Config{
			ID: 1, Name: "CLOUD-EXCH-B", Variant: feed.Internal, MatchLatency: 0, HostID: idExchangeBak,
		})
		netsim.Connect(bak.MDNIC().Port, d.EqMD.AddStandbyPort(), units.Rate10G, 0)
		netsim.Connect(bak.OENIC().Port, d.EqOE.AddStandbyPort(), units.Rate10G, 0)
		if sc.OEResilience {
			bak.EnableResilience(oeExchangeResilience())
		}
		d.HA = NewHACluster(d.Sched, d.Ex, bak)
		d.HA.OnPromote = func() {
			d.EqMD.PromoteStandby()
			d.EqOE.PromoteStandby()
		}
	}
	for i := 0; i < len(tenantLat); i++ {
		// Every tenant takes the full feed: fairness is only observable on
		// data everyone receives.
		s := firm.NewStrategy(d.Sched, d.U, fmt.Sprintf("tenant%d", i), uint32(idStrategy+2*i),
			d.OutMap, firm.StrategyConfig{DecisionLatency: sc.FnLatency})
		netsim.Connect(s.MDNIC().Port, d.EqMD.TenantPort(i+1), units.Rate10G, 0)
		netsim.Connect(s.OENIC().Port, d.EqOE.TenantPort(i+1), units.Rate10G, 0)

		// Wrap the MD handler to record per-datagram arrival for skew.
		tenant := i
		inner := s.MDNIC().OnFrame
		s.MDNIC().OnFrame = func(n *netsim.NIC, f *netsim.Frame) {
			var uf pkt.UDPFrame
			if err := pkt.ParseUDPFrame(f.Data, &uf); err == nil {
				m := d.arrivals[uf.IP.ID]
				if m == nil {
					m = make([]sim.Time, len(tenantLat))
					d.arrivals[uf.IP.ID] = m
				}
				m[tenant] = d.Sched.Now()
			}
			inner(n, f)
		}

		// Cloud tenants talk straight to the exchange: no gateway tier.
		addr := s.OENIC().Addr(uint16(42000 + i))
		sess, exPort := d.Ex.AcceptSession(addr)
		d.ExSessions = append(d.ExSessions, sess)
		s.ConnectGateway(uint16(42000+i), d.Ex.OENIC().Addr(exPort))
		if sc.OEResilience {
			if d.HA != nil {
				hardenTenantHA(s, d.HA, i, addr)
			} else {
				hardenTenant(s, d.Ex, sess, addr)
			}
		}
		d.Strats = append(d.Strats, s)
	}
	if sc.WANRedundancy {
		d.WANFeed = NewWANFeed(d.Sched, d.Ex, DefaultWANFeedConfig())
	}
	d.Tel = newTelemetry(d.Sched, sc.Telemetry)
	d.Tel.RegisterExchange(d.Ex)
	d.Tel.RegisterHA(d.HA)
	return d
}

// MeasureRoundTrip mirrors the other designs' measurement; the path is
// exchange → cloud fabric → strategy → cloud fabric → exchange, one
// software hop.
func (d *Design2) MeasureRoundTrip(bursts int) RoundTrip {
	rt := RoundTrip{
		Design:       "Design 2 (cloud)",
		SwitchHops:   0,
		SoftwareHops: 1,
		SoftwareTime: d.Scenario.FnLatency,
	}
	measure(d.Sched, d.Ex, d.Scenario, bursts, &rt, d.Tel)
	return rt
}

// SkewStats summarizes cross-tenant delivery skew: for every datagram seen
// by at least two tenants, max arrival minus min arrival.
func (d *Design2) SkewStats() (maxSkew sim.Duration, samples int) {
	for _, byTenant := range d.arrivals {
		var lo, hi sim.Time
		n := 0
		for _, at := range byTenant {
			if at == 0 {
				continue
			}
			if n == 0 {
				lo, hi = at, at
			} else {
				if at < lo {
					lo = at
				}
				if at > hi {
					hi = at
				}
			}
			n++
		}
		if n < 2 {
			continue
		}
		samples++
		if s := hi.Sub(lo); s > maxSkew {
			maxSkew = s
		}
	}
	return maxSkew, samples
}
