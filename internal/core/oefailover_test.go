package core

import (
	"strings"
	"testing"
)

// TestOEFailoverInvariants runs E21 at small scale and checks the paper's
// resilience invariants on every design: the kill is detected, no resting
// orders survive a dead session, the reconnected view matches the book, and
// no duplicate executions slip through retry/replay.
func TestOEFailoverInvariants(t *testing.T) {
	rep := RunOEFailover(SmallScenario(), []int64{1, 2})
	if len(rep.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(rep.Runs))
	}
	if !rep.AllInvariantsOK() {
		t.Fatalf("invariants violated:\n%s", rep)
	}
	for _, run := range rep.Runs {
		for _, d := range run.Designs {
			if d.CODCancels == 0 {
				t.Errorf("seed %d %s: cancel-on-disconnect never fired", run.Seed, d.Design)
			}
			if d.Reconnects == 0 {
				t.Errorf("seed %d %s: victim never reconnected", run.Seed, d.Design)
			}
			if d.Overfills != 0 {
				t.Errorf("seed %d %s: %d overfills (duplicate executions)", run.Seed, d.Design, d.Overfills)
			}
		}
	}
}

// TestOEFailoverDeterministic asserts the fault-injected run is still a pure
// function of the seed: the full rendered report — tables, registry dump,
// fault timelines — must be byte-identical across repeat runs.
func TestOEFailoverDeterministic(t *testing.T) {
	a := RunOEFailover(SmallScenario(), []int64{1}).String()
	b := RunOEFailover(SmallScenario(), []int64{1}).String()
	if a != b {
		t.Fatalf("same-seed E21 runs differ:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestOEFailoverRegistryNames is the metrics-registry satellite: the
// resilience counters must be registered and appear in the dump.
func TestOEFailoverRegistryNames(t *testing.T) {
	rep := RunOEFailover(SmallScenario(), []int64{1})
	reg := rep.Runs[0].Designs[0].Registry
	for _, name := range []string{
		"oe.retries", "oe.busy_rejects", "oe.cancel_on_disconnect", "oe.sessions_dropped",
	} {
		if !strings.Contains(reg, name) {
			t.Errorf("registry dump missing %q:\n%s", name, reg)
		}
	}
}
