package core

import "testing"

// Determinism regression tests for the contract DESIGN.md ("Determinism
// contract & simlint") states: a run is a pure function of its seed, down
// to the rendered metrics. Wall-clock reads, global-rand draws, or
// map-iteration order leaking into the event schedule all surface here as
// flaky diffs — the dynamic complement to the static simlint suite.

// TestSameSeedByteIdentical renders the full three-design comparison twice
// from one seed and requires byte-identical output. This exercises the
// whole plant: exchanges, feed arbitration, normalizers, strategies,
// gateways, and both fabric designs.
func TestSameSeedByteIdentical(t *testing.T) {
	sc := SmallScenario()
	a := RunDesignComparison(sc, 2).String()
	b := RunDesignComparison(sc, 2).String()
	if a != b {
		t.Fatalf("same seed produced different metrics output:\n--- first run\n%s\n--- second run\n%s", a, b)
	}
}

// TestMrouteOverflowByteIdentical repeats the check on the experiment most
// sensitive to multicast-tree installation order (mroute hardware/software
// placement under table overflow).
func TestMrouteOverflowByteIdentical(t *testing.T) {
	a := RunMrouteOverflow(12, 6, 10, 7).String()
	b := RunMrouteOverflow(12, 6, 10, 7).String()
	if a != b {
		t.Fatalf("same seed produced different metrics output:\n--- first run\n%s\n--- second run\n%s", a, b)
	}
}

// TestFailoverByteIdentical repeats the check with fault injection live: a
// spine killed mid-burst (reroute, multicast rehoming, TCP gap replay, quote
// pulls) and a WAN path raining then failing. Fault handling — purges, flight
// cancellation, reconvergence order, replay scheduling — must be as
// reproducible as the fault-free path.
func TestFailoverByteIdentical(t *testing.T) {
	sc := SmallScenario()
	a := RunFailover(sc, Seeds(7, 2)).String()
	b := RunFailover(sc, Seeds(7, 2)).String()
	if a != b {
		t.Fatalf("same seed produced different metrics output:\n--- first run\n%s\n--- second run\n%s", a, b)
	}
}
