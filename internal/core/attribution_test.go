package core

import (
	"bytes"
	"testing"

	"tradenet/internal/device"
	"tradenet/internal/sim"
	"tradenet/internal/trace"
)

// TestTracingNonPerturbing enforces the flight recorder's central contract:
// installing a recorder must not change what the simulation does. Two
// identical Design 1 plants run the same measurement, one with tracing armed
// and one without; the event schedule, the tick-to-trade samples, and the
// exchange's publish counters must match exactly.
func TestTracingNonPerturbing(t *testing.T) {
	sc := SmallScenario()

	plain := NewDesign1(sc, device.DefaultCommodityConfig())
	rtPlain := plain.MeasureRoundTrip(2)

	traced := NewDesign1(sc, device.DefaultCommodityConfig())
	rec := trace.NewRecorder(attributionEvery, attributionCap)
	traced.Ex.EnableTracing(rec)
	rtTraced := traced.MeasureRoundTrip(2)

	if got, want := traced.Sched.Fired(), plain.Sched.Fired(); got != want {
		t.Errorf("tracing changed the event schedule: fired %d events, untraced fired %d", got, want)
	}
	if got, want := traced.Ex.Published, plain.Ex.Published; got != want {
		t.Errorf("tracing changed published datagrams: %d vs %d", got, want)
	}
	if got, want := traced.Ex.PublishedMsgs, plain.Ex.PublishedMsgs; got != want {
		t.Errorf("tracing changed published messages: %d vs %d", got, want)
	}
	if len(rtTraced.Samples) != len(rtPlain.Samples) {
		t.Fatalf("tracing changed sample count: %d vs %d", len(rtTraced.Samples), len(rtPlain.Samples))
	}
	for i := range rtPlain.Samples {
		if rtTraced.Samples[i] != rtPlain.Samples[i] {
			t.Fatalf("tracing changed sample %d: %v vs %v", i, rtTraced.Samples[i], rtPlain.Samples[i])
		}
	}
	if rec.Created() == 0 || len(rec.Done()) == 0 {
		t.Error("traced run recorded nothing — the non-perturbation comparison proved nothing")
	}
}

// TestAttributionByteIdentical requires the whole E20 pipeline — recorder,
// span capture across three designs, registry dumps, and the Chrome trace
// export — to be a pure function of the seed.
func TestAttributionByteIdentical(t *testing.T) {
	sc := SmallScenario()
	a := RunAttribution(sc, 2)
	b := RunAttribution(sc, 2)
	if as, bs := a.String(), b.String(); as != bs {
		t.Fatalf("same seed produced different attribution output:\n--- first run\n%s\n--- second run\n%s", as, bs)
	}
	var aw, bw bytes.Buffer
	if err := a.WriteChrome(&aw); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteChrome(&bw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aw.Bytes(), bw.Bytes()) {
		t.Fatal("same seed produced different Chrome trace bytes")
	}
	if aw.Len() == 0 {
		t.Fatal("Chrome trace export was empty")
	}
}

// TestAttributionReconcilesExactly is the acceptance bar for the telescoping
// span design: every burst-originated accepted trace's span sum must equal a
// tick-to-trade tap sample to the picosecond, in every design.
func TestAttributionReconcilesExactly(t *testing.T) {
	r := RunAttribution(SmallScenario(), 2)
	if len(r.Designs) != 3 {
		t.Fatalf("expected 3 designs, got %d", len(r.Designs))
	}
	for _, d := range r.Designs {
		if d.Accepted == 0 {
			t.Errorf("%s: no accepted traces — nothing reconciled", d.Design)
			continue
		}
		if d.MaxDelta != 0 {
			t.Errorf("%s: span sums diverge from the tap by up to %v; want exact", d.Design, d.MaxDelta)
		}
		if want := d.Accepted - d.Reflected; d.Reconciled != want {
			t.Errorf("%s: reconciled %d of %d burst-originated accepted traces", d.Design, d.Reconciled, want)
		}
		if d.Finished > d.Created || d.Created > attributionCap {
			t.Errorf("%s: finished %d / created %d violates the recorder cap %d",
				d.Design, d.Finished, d.Created, attributionCap)
		}
		var byCause sim.Duration
		for _, v := range d.ByCause {
			byCause += v
		}
		if byCause != d.Total {
			t.Errorf("%s: cause breakdown sums to %v, total is %v", d.Design, byCause, d.Total)
		}
		if d.RegistryDump == "" {
			t.Errorf("%s: empty registry dump", d.Design)
		}
	}
}
