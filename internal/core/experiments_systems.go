package core

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"tradenet/internal/colo"
	"tradenet/internal/device"
	"tradenet/internal/feed"
	"tradenet/internal/manifest"
	"tradenet/internal/mcast"
	"tradenet/internal/metrics"
	"tradenet/internal/netsim"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/units"
	"tradenet/internal/workload"
)

// DesignComparison is E5+E6(+E12): round trips through all three designs.
type DesignComparison struct {
	Rows []RoundTrip
	// Artifacts are the per-design run manifests (empty unless the
	// scenario arms Telemetry).
	Artifacts []*manifest.Artifact
}

// RunDesignComparison measures the common scenario through Designs 1, 3,
// and 2 (equalized cloud).
func RunDesignComparison(sc Scenario, bursts int) DesignComparison {
	var out DesignComparison
	art := func(t *Telemetry, design string, sched *sim.Scheduler) {
		if sc.Telemetry != nil {
			out.Artifacts = append(out.Artifacts, t.Artifact("designs", design, "", sc, sched))
		}
	}
	d1 := NewDesign1(sc, device.DefaultCommodityConfig())
	out.Rows = append(out.Rows, d1.MeasureRoundTrip(bursts))
	art(d1.Tel, "design1", d1.Sched)
	d3 := NewDesign3(sc, 0)
	out.Rows = append(out.Rows, d3.MeasureRoundTrip(bursts))
	art(d3.Tel, "design3", d3.Sched)
	lats := []sim.Duration{5 * sim.Microsecond, 20 * sim.Microsecond, 12 * sim.Microsecond}
	d2 := NewDesign2(sc, lats, true)
	out.Rows = append(out.Rows, d2.MeasureRoundTrip(bursts))
	art(d2.Tel, "design2", d2.Sched)
	return out
}

// String renders the design comparison.
func (r DesignComparison) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, rt := range r.Rows {
		rows = append(rows, []string{
			rt.Design,
			fmt.Sprintf("%d", rt.SwitchHops),
			fmt.Sprintf("%d", rt.SoftwareHops),
			rt.Mean().String(),
			rt.NetworkTime().String(),
			rt.SwitchLatency.String(),
			fmt.Sprintf("%.0f%%", rt.NetworkShare()*100),
			fmt.Sprintf("%d", rt.Orders),
		})
	}
	s := "Designs 1/3/2: tick-to-trade round trip (§4)\n" +
		metrics.Table([]string{"design", "sw-hops", "fn-hops", "mean RT", "net time", "switch lat", "net share", "orders"}, rows)
	if len(r.Rows) >= 2 && r.Rows[1].SwitchLatency > 0 {
		s += fmt.Sprintf("switch-latency ratio D1/D3: %.0fx (paper: ~two orders of magnitude per hop: 500ns vs 5-6ns)\n",
			float64(r.Rows[0].SwitchLatency)/float64(r.Rows[1].SwitchLatency))
	}
	return s
}

// MrouteOverflowResult is E7: the latency/loss cliff when the multicast
// route table overflows into software forwarding.
type MrouteOverflowResult struct {
	Groups              int
	Capacity            int
	HWMean              sim.Duration
	SWMean              sim.Duration
	HWDelivered, HWSent uint64
	SWDelivered, SWSent uint64
}

// RunMrouteOverflow joins `groups` multicast groups on a switch with the
// given table capacity, blasts frames round-robin across them, and measures
// delivery latency and loss separately for hardware- and software-forwarded
// groups.
func RunMrouteOverflow(groups, capacity, framesPerGroup int, seed int64) MrouteOverflowResult {
	sched := sim.NewScheduler(seed)
	cfg := device.DefaultCommodityConfig()
	cfg.MrouteCapacity = capacity
	sw := device.NewCommoditySwitch(sched, "sw", 2, cfg)
	tx := netsim.NewPort(sched, nil, "tx")
	tx.SetQueueCapacity(1 << 28)
	netsim.Connect(tx, sw.Port(0), units.Rate10G, 0)

	res := MrouteOverflowResult{Groups: groups, Capacity: capacity}
	hwLat, swLat := metrics.NewHistogram(), metrics.NewHistogram()
	sink := &classifySink{sched: sched, capacity: capacity, hw: hwLat, sw: swLat, res: &res}
	sink.port = netsim.NewPort(sched, sink, "rx")
	netsim.Connect(sw.Port(1), sink.port, units.Rate10G, 0)

	gs := make([]pkt.IP4, groups)
	inHW := make([]bool, groups)
	for i := range gs {
		gs[i] = pkt.MulticastGroup(1, uint16(i))
		inHW[i] = sw.JoinGroup(gs[i], 1)
	}
	src := pkt.UDPAddr{MAC: pkt.HostMAC(1), IP: pkt.HostIP(1), Port: 1}
	// Offer frames at 20% line rate, round-robin across groups: hardware
	// groups sail through; software groups hit the slow path's PPS limit.
	gap := 10 * units.SerializationDelay(200, units.Rate10G)
	for i := 0; i < groups*framesPerGroup; i++ {
		g := gs[i%groups]
		hw := inHW[i%groups]
		at := sim.Time(sim.Duration(i) * gap)
		sched.At(at, func() {
			dst := pkt.UDPAddr{MAC: pkt.MulticastMAC(g), IP: g, Port: 9}
			f := &netsim.Frame{Data: pkt.AppendUDPFrame(nil, src, dst, 0, make([]byte, 150)), Origin: sched.Now()}
			if hw {
				res.HWSent++
			} else {
				res.SWSent++
			}
			tx.Send(f)
		})
	}
	sched.Run()
	res.HWMean = sim.Duration(hwLat.Mean())
	res.SWMean = sim.Duration(swLat.Mean())
	return res
}

type classifySink struct {
	port     *netsim.Port
	sched    *sim.Scheduler
	capacity int
	hw, sw   *metrics.Histogram
	res      *MrouteOverflowResult
}

func (s *classifySink) HandleFrame(_ *netsim.Port, f *netsim.Frame) {
	var uf pkt.UDPFrame
	if err := pkt.ParseUDPFrame(f.Data, &uf); err != nil {
		return
	}
	idx := int(uf.IP.Dst[2])<<8 | int(uf.IP.Dst[3])
	lat := int64(s.sched.Now().Sub(f.Origin))
	if idx < s.capacity {
		s.hw.Observe(lat)
		s.res.HWDelivered++
	} else {
		s.sw.Observe(lat)
		s.res.SWDelivered++
	}
}

// String renders the overflow cliff.
func (r MrouteOverflowResult) String() string {
	lossHW := 1 - float64(r.HWDelivered)/float64(r.HWSent)
	lossSW := 1 - float64(r.SWDelivered)/float64(r.SWSent)
	return fmt.Sprintf(`Mroute table overflow (§3): %d groups, table holds %d
  hardware groups: mean latency %v, loss %.1f%%
  software groups: mean latency %v, loss %.1f%%  ← the overflow cliff
`, r.Groups, r.Capacity, r.HWMean, lossHW*100, r.SWMean, lossSW*100)
}

// GenerationsResult is E8: switch trends across hardware generations.
type GenerationsResult struct {
	Measured []sim.Duration // per-hop latency measured through each gen
}

// RunGenerations measures one-hop forwarding latency through each
// generation's switch model.
func RunGenerations() GenerationsResult {
	var out GenerationsResult
	for _, gen := range device.Generations {
		sched := sim.NewScheduler(1)
		sw := device.NewCommoditySwitch(sched, "sw", 2, gen.Config())
		sw.Learn(pkt.HostMAC(2), 1)
		tx := netsim.NewPort(sched, nil, "tx")
		netsim.Connect(tx, sw.Port(0), units.Rate10G, 0)
		var at sim.Time
		sink := &arrivalSink{sched: sched, at: &at}
		sink.port = netsim.NewPort(sched, sink, "rx")
		netsim.Connect(sw.Port(1), sink.port, units.Rate10G, 0)
		frame := pkt.AppendUDPFrame(nil,
			pkt.UDPAddr{MAC: pkt.HostMAC(1), IP: pkt.HostIP(1), Port: 1},
			pkt.UDPAddr{MAC: pkt.HostMAC(2), IP: pkt.HostIP(2), Port: 2}, 0, make([]byte, 100))
		ser := units.SerializationDelay(pkt.WireSize(len(frame))+netsim.FrameOverheadBytes, units.Rate10G)
		sched.At(0, func() { tx.Send(&netsim.Frame{Data: frame}) })
		sched.Run()
		out.Measured = append(out.Measured, sim.Duration(at)-ser)
	}
	return out
}

type arrivalSink struct {
	port  *netsim.Port
	sched *sim.Scheduler
	at    *sim.Time
}

func (s *arrivalSink) HandleFrame(_ *netsim.Port, f *netsim.Frame) { *s.at = s.sched.Now() }

// String renders the generation table with the paper's trend claims.
func (r GenerationsResult) String() string {
	rows := make([][]string, 0, len(device.Generations))
	for i, g := range device.Generations {
		rows = append(rows, []string{
			fmt.Sprintf("%d", g.Year),
			g.Latency.String(),
			r.Measured[i].String(),
			fmt.Sprintf("%d", g.McastGroups),
			g.ASICBandwidth.String(),
		})
	}
	var b strings.Builder
	b.WriteString("Switch generations (§3 trends)\n")
	b.WriteString(metrics.Table([]string{"year", "spec latency", "measured hop", "mcast groups", "ASIC bw"}, rows))
	fmt.Fprintf(&b, "latency growth: +%.0f%% (paper: ~+20%%/decade)\n", (device.LatencyGrowth()-1)*100)
	fmt.Fprintf(&b, "mcast group growth: +%.0f%% (paper: ~+80%%) vs market data +500%%\n", (device.McastGroupGrowth()-1)*100)
	fmt.Fprintf(&b, "bandwidth growth: %.0fx (roughly doubling per generation)\n", device.BandwidthGrowth())
	b.WriteString("software hop reference: <1µs and falling (§3)\n")
	return b.String()
}

// MergeRow is one fan-in level of E9.
type MergeRow struct {
	FanIn       int
	OfferedLoad float64 // fraction of egress line rate
	Delivered   uint64
	Dropped     uint64
	MeanQueue   sim.Duration
	P99Latency  sim.Duration
}

// MergeResult is E9: the L1S merge bottleneck under bursty feeds.
type MergeResult struct {
	Rows []MergeRow
}

// RunMergeBottleneck merges fanIn bursty feeds onto one 10G L1S output for
// each fan-in level, measuring queueing and loss. Each source offers ~27%
// of line rate on average with 8x bursts (the Fig 2(c) structure), so the
// merged feed crosses saturation between fan-in 2 and 4 — "merged feeds can
// easily exceed the available bandwidth, leading to latency from queuing or
// packet loss" (§4.3).
func RunMergeBottleneck(fanIns []int, millis int, seed int64) MergeResult {
	var out MergeResult
	for _, k := range fanIns {
		sched := sim.NewScheduler(seed)
		cfg := device.DefaultL1SConfig()
		cfg.MergeQueueBytes = 256 * 1024
		sw := device.NewL1Switch(sched, "l1s", k+1, cfg)
		lat := metrics.NewHistogram()
		sink := &latencySink{sched: sched, h: lat}
		sink.port = netsim.NewPort(sched, sink, "rx")
		netsim.Connect(sw.Port(k), sink.port, units.Rate10G, 0)

		end := sim.Time(sim.Duration(millis) * sim.Millisecond)
		var sent uint64
		for i := 0; i < k; i++ {
			txp := netsim.NewPort(sched, nil, fmt.Sprintf("tx%d", i))
			txp.SetQueueCapacity(1 << 26)
			netsim.Connect(txp, sw.Port(i), units.Rate10G, 0)
			sw.Circuit(i, k)
			// ~27% load per source: 600-byte frames at a bursty ~560k/s.
			proc := workload.NewMMPP(
				workload.MMPPState{Rate: 400_000, MeanDwell: 2 * sim.Millisecond},
				workload.MMPPState{Rate: 3_200_000, MeanDwell: 120 * sim.Microsecond},
			)
			src := pkt.UDPAddr{MAC: pkt.HostMAC(uint32(i + 1)), IP: pkt.HostIP(uint32(i + 1)), Port: 1}
			dst := pkt.UDPAddr{MAC: pkt.HostMAC(99), IP: pkt.HostIP(99), Port: 2}
			payload := make([]byte, 558)
			workload.Generate(sched, proc, 0, end, func() {
				sent++
				f := &netsim.Frame{Data: pkt.AppendUDPFrame(nil, src, dst, 0, payload), Origin: sched.Now()}
				txp.Send(f)
			})
		}
		sched.Run()
		mergePort := sw.Port(k)
		row := MergeRow{
			FanIn:     k,
			Delivered: mergePort.TxFrames,
			Dropped:   mergePort.Drops,
		}
		// Offered load: 600B frames (+overhead) × arrival rate vs 10G.
		wire := float64(pkt.WireSize(600)+netsim.FrameOverheadBytes) * 8
		row.OfferedLoad = float64(sent) / (float64(millis) / 1000) * wire / float64(units.Rate10G)
		if mergePort.TxFrames > 0 {
			row.MeanQueue = mergePort.QueueDelay / sim.Duration(mergePort.TxFrames)
		}
		row.P99Latency = sim.Duration(lat.P99())
		out.Rows = append(out.Rows, row)
	}
	return out
}

type latencySink struct {
	port  *netsim.Port
	sched *sim.Scheduler
	h     *metrics.Histogram
}

func (s *latencySink) HandleFrame(_ *netsim.Port, f *netsim.Frame) {
	s.h.Observe(int64(s.sched.Now().Sub(f.Origin)))
}

// String renders the merge sweep.
func (r MergeResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		loss := float64(row.Dropped) / float64(row.Delivered+row.Dropped) * 100
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.FanIn),
			fmt.Sprintf("%.2f", row.OfferedLoad),
			row.MeanQueue.String(),
			row.P99Latency.String(),
			fmt.Sprintf("%.1f%%", loss),
		})
	}
	return "L1S merge bottleneck (§4.3): bursty feeds onto one 10G output\n" +
		metrics.Table([]string{"fan-in", "offered", "mean queue", "p99 e2e", "loss"}, rows)
}

// OverheadRow is one feed's E10 numbers.
type OverheadRow struct {
	Feed        string
	HeaderShare float64 // Ethernet+IP+UDP+unit header share of wire bytes
	CompactSave float64 // bytes saved by the §5 compact transport
}

// OverheadResult is E10: protocol header overhead.
type OverheadResult struct {
	Rows []OverheadRow
	// HeaderCost40ns is the §5 claim: processing Ethernet+IP+TCP headers at
	// 10G costs ~40 ns of serialization alone.
	HeaderCostNs float64
}

// RunHeaderOverhead measures header share over generated mid-day traffic
// and the compact-transport ablation's savings.
func RunHeaderOverhead(frames int, seed int64) OverheadResult {
	out := OverheadResult{
		HeaderCostNs: units.SerializationDelay(
			pkt.EthernetHeaderLen+pkt.IPv4HeaderLen+pkt.TCPHeaderLen, units.Rate10G).Nanoseconds(),
	}
	src := pkt.UDPAddr{MAC: pkt.HostMAC(1), IP: pkt.HostIP(1), Port: 30000}
	grp := pkt.IP4{239, 1, 0, 1}
	dst := pkt.UDPAddr{MAC: pkt.MulticastMAC(grp), IP: grp, Port: 30001}
	for _, v := range []*feed.Variant{feed.ExchangeA, feed.ExchangeB, feed.ExchangeC} {
		rng := rand.New(rand.NewSource(seed))
		g := feed.NewFrameGen(v, src, dst)
		var total, headers, compact int64
		for i := 0; i < frames; i++ {
			frame, _ := g.Next(rng)
			total += int64(len(frame))
			headers += pkt.UDPOverhead + feed.UnitHeaderLen
			// Compact ablation: Ethernet + 8-byte compact header instead of
			// Ethernet+IP+UDP+unit header.
			compact += int64(len(frame)) - (pkt.IPv4HeaderLen + pkt.UDPHeaderLen + feed.UnitHeaderLen) + pkt.CompactHeaderLen
		}
		out.Rows = append(out.Rows, OverheadRow{
			Feed:        v.Name,
			HeaderShare: float64(headers) / float64(total),
			CompactSave: 1 - float64(compact)/float64(total),
		})
	}
	return out
}

// String renders the overhead table.
func (r OverheadResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Feed,
			fmt.Sprintf("%.0f%%", row.HeaderShare*100),
			fmt.Sprintf("%.0f%%", row.CompactSave*100),
		})
	}
	return fmt.Sprintf("Header overhead (§3, §5): paper cites 25–40%% headers; Eth+IP+TCP costs %.0f ns at 10G\n",
		r.HeaderCostNs) +
		metrics.Table([]string{"feed", "header share", "compact saves"}, rows)
}

// PartitionScalingResult is E11: partition growth vs mroute capacity.
type PartitionScalingResult struct {
	Rows []PartitionScalingRow
}

// PartitionScalingRow is one point in time.
type PartitionScalingRow struct {
	Month       int
	PerStrategy int
	TotalGroups int
	Plans       []mcast.CapacityPlan // one per switch generation
}

// RunPartitionScaling tracks the §3 growth (600 → 1300 partitions per
// representative strategy over 24 months) across feedFamilies concurrent
// partitioned feeds, against each switch generation's table.
func RunPartitionScaling(feedFamilies int) PartitionScalingResult {
	var out PartitionScalingResult
	for mo := 0; mo <= 24; mo += 6 {
		per := mcast.PartitionGrowth(600, mo, 1300, 24)
		row := PartitionScalingRow{Month: mo, PerStrategy: per, TotalGroups: per * feedFamilies}
		for _, gen := range device.Generations {
			row.Plans = append(row.Plans, mcast.Plan(row.TotalGroups, gen.McastGroups))
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// String renders the scaling table.
func (r PartitionScalingResult) String() string {
	header := []string{"month", "parts/strat", "total groups"}
	for _, gen := range device.Generations {
		header = append(header, fmt.Sprintf("sw@%d overflow", gen.Year))
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{
			fmt.Sprintf("%d", row.Month),
			fmt.Sprintf("%d", row.PerStrategy),
			fmt.Sprintf("%d", row.TotalGroups),
		}
		for _, p := range row.Plans {
			cells = append(cells, fmt.Sprintf("%d", p.Software))
		}
		rows = append(rows, cells)
	}
	return "Partition growth vs mroute tables (§3: 600→1300 over 2 years)\n" +
		metrics.Table(header, rows)
}

// BudgetResult is E13: real Go codec throughput vs the paper's per-event
// budgets.
type BudgetResult struct {
	DecodeNsPerMsg    float64
	NormalizeNsPerMsg float64
	Budget1s          float64 // ns/event to survive the busiest second
	Budget100us       float64 // ns/event to survive the busiest 100µs
}

// RunPerEventBudget times the real decode and decode+re-encode paths over n
// messages and compares them to the §3 budgets.
//
//simlint:allow wallclock: deliberately measures real host codec throughput (wall time per message) to compare against the simulated per-event budget; nothing here feeds back into simulated time
func RunPerEventBudget(n int) BudgetResult {
	var m feed.Msg
	m.Type = feed.MsgAddOrder
	m.SetSymbol("AAPL")
	m.Qty, m.Price = 100, 15025
	buf := feed.ExchangeB.Append(nil, &m)

	var out feed.Msg
	start := time.Now()
	for i := 0; i < n; i++ {
		feed.Decode(buf, &out)
	}
	decode := float64(time.Since(start).Nanoseconds()) / float64(n)

	enc := make([]byte, 0, 64)
	start = time.Now()
	for i := 0; i < n; i++ {
		feed.Decode(buf, &out)
		enc = feed.Internal.Append(enc[:0], &out)
	}
	norm := float64(time.Since(start).Nanoseconds()) / float64(n)

	return BudgetResult{
		DecodeNsPerMsg:    decode,
		NormalizeNsPerMsg: norm,
		Budget1s:          workload.PerEventBudget(1_500_000, sim.Second).Nanoseconds(),
		Budget100us:       workload.PerEventBudget(1066, 100*sim.Microsecond).Nanoseconds(),
	}
}

// String renders the feasibility comparison.
func (r BudgetResult) String() string {
	verdict := func(cost, budget float64) string {
		if cost <= budget {
			return "feasible"
		}
		return "OVER BUDGET"
	}
	return fmt.Sprintf(`Per-event budgets (§3) vs measured Go codec costs
  busiest-second budget: %.0f ns/event; busiest-100µs budget: %.0f ns/event
  decode:            %.1f ns/msg (%s for 1s, %s for 100µs)
  decode+normalize:  %.1f ns/msg (%s for 1s, %s for 100µs)
`,
		r.Budget1s, r.Budget100us,
		r.DecodeNsPerMsg, verdict(r.DecodeNsPerMsg, r.Budget1s), verdict(r.DecodeNsPerMsg, r.Budget100us),
		r.NormalizeNsPerMsg, verdict(r.NormalizeNsPerMsg, r.Budget1s), verdict(r.NormalizeNsPerMsg, r.Budget100us))
}

// WANRow is one circuit of E14.
type WANRow struct {
	Pair             string
	FiberLatency     sim.Duration
	MicrowaveLatency sim.Duration
	Advantage        sim.Duration
	RainLossPct      float64
	ClearLossPct     float64
}

// WANResult is E14: microwave vs fiber between the NJ colos.
type WANResult struct {
	Rows                 []WANRow
	FiberBW, MicrowaveBW units.Bandwidth
}

// RunWAN builds each inter-colo pair both ways and measures latency and
// rain loss.
func RunWAN(framesPerTest int, seed int64) WANResult {
	pairs := [][2]colo.Facility{
		{colo.Mahwah, colo.Secaucus},
		{colo.Carteret, colo.Secaucus},
		{colo.Carteret, colo.Mahwah},
	}
	out := WANResult{
		FiberBW:     colo.DefaultFiber().Bandwidth,
		MicrowaveBW: colo.DefaultMicrowave().Bandwidth,
	}
	for _, p := range pairs {
		sched := sim.NewScheduler(seed)
		fb := colo.NewCircuit(sched, p[0], p[1], colo.DefaultFiber(), nullH{}, nullH{})
		mw := colo.NewCircuit(sched, p[0], p[1], colo.DefaultMicrowave(), nullH{}, nullH{})

		lossRate := func(rain bool) float64 {
			s := sim.NewScheduler(seed)
			cnt := &countSink{}
			c := colo.NewCircuit(s, p[0], p[1], colo.DefaultMicrowave(), nullH{}, cnt)
			c.SetRaining(rain)
			for i := 0; i < framesPerTest; i++ {
				i := i
				s.At(sim.Time(i)*sim.Time(10*sim.Microsecond), func() {
					c.PortA.Send(&netsim.Frame{Data: make([]byte, 100)})
				})
			}
			s.Run()
			return 1 - float64(cnt.n)/float64(framesPerTest)
		}

		out.Rows = append(out.Rows, WANRow{
			Pair:             p[0].Name + "↔" + p[1].Name,
			FiberLatency:     fb.Latency,
			MicrowaveLatency: mw.Latency,
			Advantage:        fb.Latency - mw.Latency,
			RainLossPct:      lossRate(true) * 100,
			ClearLossPct:     lossRate(false) * 100,
		})
	}
	return out
}

type nullH struct{}

func (nullH) HandleFrame(*netsim.Port, *netsim.Frame) {}

type countSink struct{ n int }

func (c *countSink) HandleFrame(*netsim.Port, *netsim.Frame) { c.n++ }

// String renders the WAN table.
func (r WANResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Pair,
			row.FiberLatency.String(),
			row.MicrowaveLatency.String(),
			row.Advantage.String(),
			fmt.Sprintf("%.1f%%", row.RainLossPct),
			fmt.Sprintf("%.1f%%", row.ClearLossPct),
		})
	}
	return fmt.Sprintf("Inter-colo WAN (§2): microwave wins latency (%v vs %v bandwidth), loses in rain\n",
		r.MicrowaveBW, r.FiberBW) +
		metrics.Table([]string{"pair", "fiber", "microwave", "advantage", "rain loss", "clear loss"}, rows)
}

// GenerationRTResult is E8b: the end-to-end consequence of the §3 latency
// trend — the same Design 1 plant on decade-old versus current switches.
type GenerationRTResult struct {
	OldYear, NewYear int
	OldMean, NewMean sim.Duration
	// SwitchDelta is the predicted difference: 12 hops × latency delta.
	SwitchDelta sim.Duration
}

// RunGenerationRoundTrip measures the small-scenario Design 1 round trip on
// the oldest and newest switch generations.
func RunGenerationRoundTrip(sc Scenario, bursts int) GenerationRTResult {
	gens := device.Generations
	oldGen, newGen := gens[0], gens[len(gens)-1]
	dOld := NewDesign1(sc, oldGen.Config())
	rtOld := dOld.MeasureRoundTrip(bursts)
	dNew := NewDesign1(sc, newGen.Config())
	rtNew := dNew.MeasureRoundTrip(bursts)
	return GenerationRTResult{
		OldYear: oldGen.Year, NewYear: newGen.Year,
		OldMean: rtOld.Mean(), NewMean: rtNew.Mean(),
		SwitchDelta: 12 * (newGen.Latency - oldGen.Latency),
	}
}

// String renders the generation round-trip comparison.
func (r GenerationRTResult) String() string {
	return fmt.Sprintf(`Design 1 round trip across switch generations (§3 trend, end to end)
  %d switches: mean RT %v
  %d switches: mean RT %v
  regression: %v (predicted from 12 hops × latency delta: %v)
  the fabric got faster in bandwidth and slower in latency — and a trading
  round trip pays the latency 12 times.
`, r.OldYear, r.OldMean, r.NewYear, r.NewMean, r.NewMean-r.OldMean, r.SwitchDelta)
}
