package core

import (
	"fmt"

	"tradenet/internal/device"
	"tradenet/internal/exchange"
	"tradenet/internal/feed"
	"tradenet/internal/firm"
	"tradenet/internal/market"
	"tradenet/internal/mcast"
	"tradenet/internal/netsim"
	"tradenet/internal/orderentry"
	"tradenet/internal/sim"
	"tradenet/internal/topo"
)

// Design1 is §4.1: a leaf-spine fabric of commodity switches with servers
// grouped by function per rack and a dedicated exchange leaf. The loop
// exchange→normalizer→strategy→gateway→exchange crosses 12 switch hops.
type Design1 struct {
	Scenario Scenario
	Sched    *sim.Scheduler
	U        *market.Universe
	LS       *topo.LeafSpine
	Ex       *exchange.Exchange
	Norms    []*firm.Normalizer
	Strats   []*firm.Strategy
	Gws      []*firm.Gateway

	// ExSessions[i] is the exchange's side of gateway i's order-entry
	// session — the handle failover experiments use to inspect ownership
	// and working-order state.
	ExSessions []*orderentry.ExchangeSession

	RawMap *mcast.Map
	OutMap *mcast.Map

	// RecReaders parse gap-replay responses, one per normalizer (nil before
	// WireGapRecovery); their Recovered counters tally replayed messages.
	RecReaders []*feed.ResponseReader
	// GapRequests counts replay requests normalizers sent to the exchange.
	GapRequests uint64

	// WANFeed is the adaptive WAN redundancy mirror (nil unless
	// Scenario.WANRedundancy).
	WANFeed *WANFeed

	// HA is the exchange high-availability pair (nil unless
	// Scenario.ExchangeHA); HA.Backup is the dark standby on the exchange
	// leaf.
	HA *HACluster

	// Tel is the telemetry plane (nil unless Scenario.Telemetry).
	Tel *Telemetry
}

// hostIDs: the exchange uses 100+, normalizers 1000+, strategies 10000+,
// gateways 50000+ — disjoint so derived MACs/IPs never collide.
const (
	idExchange   = 100
	idNormalizer = 1000
	idStrategy   = 10000
	idGateway    = 50000
)

// NewDesign1 builds the full plant. switchCfg overrides the generation
// (pass device.DefaultCommodityConfig() for current hardware).
func NewDesign1(sc Scenario, switchCfg device.CommoditySwitchConfig) *Design1 {
	d := &Design1{Scenario: sc, Sched: sim.NewScheduler(sc.Seed)}
	d.U = buildUniverse(sc.Symbols)

	// Rack plan: rack 1 normalizers, racks 2..k strategies, rack k+1
	// gateways ("group servers with common functions by rack", §4.1).
	perRack := 32
	stratRacks := (sc.Strategies + perRack - 1) / perRack
	cfg := topo.DefaultLeafSpineConfig()
	cfg.Switch = switchCfg
	cfg.Racks = 2 + stratRacks
	cfg.HostsPerRack = 2 * perRack // two NICs per server
	d.LS = topo.NewLeafSpine(d.Sched, cfg)

	d.RawMap = mcast.NewMap(mcast.NewPartitioner(d.U, mcast.ByAlpha, 0), mcast.NewAllocator(1))
	d.OutMap = mcast.NewMap(mcast.NewPartitioner(d.U, mcast.ByHash, sc.InternalPartitions), mcast.NewAllocator(2))

	d.Ex = exchange.New(d.Sched, d.U, d.RawMap, exchange.Config{
		ID: 1, Name: "EXCH", Variant: feed.ExchangeB, MatchLatency: 0, HostID: idExchange,
	})
	d.LS.Attach(0, d.Ex.MDNIC())
	d.LS.Attach(0, d.Ex.OENIC())

	if sc.ExchangeHA {
		// The standby lives on the same exchange leaf (an HA pair shares the
		// facility; the journal rides a dedicated cross-connect, not the
		// fabric). Its NICs idle until promotion.
		bak := exchange.New(d.Sched, d.U, d.RawMap, exchange.Config{
			ID: 1, Name: "EXCH-B", Variant: feed.ExchangeB, MatchLatency: 0, HostID: idExchangeBak,
		})
		d.LS.Attach(0, bak.MDNIC())
		d.LS.Attach(0, bak.OENIC())
		if sc.OEResilience {
			bak.EnableResilience(oeExchangeResilience())
		}
		d.HA = NewHACluster(d.Sched, d.Ex, bak)
	}

	// Normalizers on rack 1 (leaf index 1).
	for i := 0; i < sc.Normalizers; i++ {
		n := firm.NewNormalizer(d.Sched, d.U, fmt.Sprintf("norm%d", i), uint32(idNormalizer+2*i),
			feed.ExchangeB, d.RawMap, d.OutMap, firm.NormalizerConfig{ProcLatency: sc.FnLatency})
		d.LS.Attach(1, n.RawNIC())
		d.LS.Attach(1, n.PubNIC())
		for _, g := range d.RawMap.Groups() {
			d.LS.Join(g, n.RawNIC())
		}
		d.Norms = append(d.Norms, n)
	}

	// Gateways on the last rack.
	gwLeaf := cfg.Racks
	for i := 0; i < sc.Gateways; i++ {
		g := firm.NewGateway(d.Sched, fmt.Sprintf("gw%d", i), uint32(idGateway+2*i),
			firm.GatewayConfig{TranslateLatency: sc.FnLatency})
		d.LS.Attach(gwLeaf, g.InNIC())
		d.LS.Attach(gwLeaf, g.ExNIC())
		d.Gws = append(d.Gws, g)
	}

	// Strategies fill the middle racks; each subscribes to a slice of the
	// internal partitions and dials a gateway round-robin.
	for i := 0; i < sc.Strategies; i++ {
		subs := subscriptionSlice(i, sc.InternalPartitions)
		s := firm.NewStrategy(d.Sched, d.U, fmt.Sprintf("strat%d", i), uint32(idStrategy+2*i),
			d.OutMap, firm.StrategyConfig{DecisionLatency: sc.FnLatency, Subscriptions: subs, PullOnGap: sc.PullOnGap})
		leaf := 2 + i/perRack
		d.LS.Attach(leaf, s.MDNIC())
		d.LS.Attach(leaf, s.OENIC())
		for _, p := range subs {
			d.LS.Join(d.OutMap.GroupByIndex(p), s.MDNIC())
		}
		d.Strats = append(d.Strats, s)
	}

	d.wireSessions()
	if sc.WANRedundancy {
		d.WANFeed = NewWANFeed(d.Sched, d.Ex, DefaultWANFeedConfig())
	}
	d.Tel = newTelemetry(d.Sched, sc.Telemetry)
	d.Tel.RegisterExchange(d.Ex)
	d.Tel.RegisterHA(d.HA)
	return d
}

// subscriptionSlice gives strategy i a contiguous window of 1/4 of the
// partitions ("some strategies only analyze a subset of the feed").
func subscriptionSlice(i, parts int) []int {
	w := parts / 4
	if w < 1 {
		w = 1
	}
	var subs []int
	for j := 0; j < w; j++ {
		subs = append(subs, (i*w+j)%parts)
	}
	return subs
}

// wireSessions dials every order-entry session: gateways to the exchange,
// strategies to gateways.
func (d *Design1) wireSessions() {
	if d.Scenario.OEResilience {
		d.Ex.EnableResilience(oeExchangeResilience())
	}
	for i, g := range d.Gws {
		addr := g.ExNIC().Addr(uint16(41000 + i))
		sess, exPort := d.Ex.AcceptSession(addr)
		d.ExSessions = append(d.ExSessions, sess)
		g.ConnectExchange(uint16(41000+i), d.Ex.OENIC().Addr(exPort))
		if d.Scenario.OEResilience {
			if d.HA != nil {
				hardenGatewayHA(g, d.HA, i, addr)
			} else {
				hardenGateway(g, d.Ex, sess, addr)
			}
		}
	}
	for i, s := range d.Strats {
		g := d.Gws[i%len(d.Gws)]
		gwPort := g.AcceptStrategy(s.OENIC().Addr(uint16(42000 + i)))
		s.ConnectGateway(uint16(42000+i), g.InNIC().Addr(gwPort))
		if d.Scenario.OEResilience {
			hardenStrategyBehindGateway(s)
		}
	}
}

// WireGapRecovery dials a gap-recovery stream from every normalizer to the
// exchange's replay service (over the fabric, on the normalizer's pub NIC)
// and hangs replay requests off the normalizers' gap handlers. Recovered
// messages re-enter the normalize path and are re-sequenced onto the
// internal feed — downstream consumers see late data instead of lost data,
// which is exactly the §2 sequenced-feed recovery contract.
func (d *Design1) WireGapRecovery() {
	for i, n := range d.Norms {
		n := n
		mux := netsim.NewStreamMux(n.PubNIC())
		localPort := uint16(46000 + i)
		exPort := d.Ex.AcceptRecoverySession(n.PubNIC().Addr(localPort))
		st := netsim.NewStream(n.PubNIC(), localPort, d.Ex.OENIC().Addr(exPort))
		mux.Register(st)
		rr := &feed.ResponseReader{}
		st.OnData = func(b []byte) { _ = rr.Read(b, n.ConsumeRecovered) }
		n.OnGap = func(gi feed.GapInfo) {
			d.GapRequests++
			st.Write(feed.AppendRecoveryRequest(nil, gi.Unit, gi.Expected, gi.Got))
		}
		d.RecReaders = append(d.RecReaders, rr)
	}
}

// MeasureRoundTrip publishes isolated market-data bursts and measures
// tick-to-trade at the exchange: order-accepted time minus burst publish
// time. Bursts are spaced far enough apart that attribution is exact.
func (d *Design1) MeasureRoundTrip(bursts int) RoundTrip {
	rt := RoundTrip{
		Design:        "Design 1 (leaf-spine)",
		SwitchHops:    12,
		SoftwareHops:  3,
		SoftwareTime:  3 * d.Scenario.FnLatency,
		SwitchLatency: 12 * d.LS.Config().Switch.Latency,
	}
	measure(d.Sched, d.Ex, d.Scenario, bursts, &rt, d.Tel)
	return rt
}

// measure runs the shared burst-publish / order-capture loop: after a
// settle-in period (logons), it publishes `bursts` isolated message bursts
// 2 ms apart and attributes each accepted order to the most recent burst.
// A non-nil telemetry plane is armed over the whole measurement span; nil
// costs one compare inside Arm and the schedule is untouched.
func measure(sched *sim.Scheduler, ex *exchange.Exchange, sc Scenario, bursts int, rt *RoundTrip, tel *Telemetry) {
	var burstAt sim.Time
	ex.OnOrderAccepted = func(_ *orderentry.Msg, at sim.Time) {
		rt.Orders++
		rt.Samples = append(rt.Samples, at.Sub(burstAt))
	}
	start := sim.Time(5 * sim.Millisecond) // let logons drain
	tel.Arm(0, start.Add(sim.Duration(bursts)*2*sim.Millisecond))
	for b := 0; b < bursts; b++ {
		at := start.Add(sim.Duration(b) * 2 * sim.Millisecond)
		sched.At(at, func() {
			burstAt = sched.Now()
			rt.Bursts = append(rt.Bursts, burstAt)
			ex.PublishBurst(sched.Rand(), sc.BurstMessages/bursts)
		})
	}
	sched.Run()
}
