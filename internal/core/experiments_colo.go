package core

import (
	"fmt"

	"tradenet/internal/colo"
	"tradenet/internal/netsim"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/units"
)

// ColocationResult quantifies §2's rationale for colocation: "to minimize
// speed-of-light delays, trading firms co-locate their servers in the same
// data centers as the exchanges' systems". A firm trading a Carteret
// exchange from Secaucus — even over the best microwave path — concedes a
// round trip of WAN latency to a co-located competitor.
type ColocationResult struct {
	LocalTickToTrade  sim.Duration // co-located firm: in-colo cross-connect
	RemoteTickToTrade sim.Duration // remote firm: microwave both ways
	Advantage         sim.Duration
	WANOneWay         sim.Duration
}

type stampSink struct {
	sched *sim.Scheduler
	at    *sim.Time
	relay func(f *netsim.Frame)
}

func (s *stampSink) HandleFrame(_ *netsim.Port, f *netsim.Frame) {
	if s.at != nil {
		*s.at = s.sched.Now()
	}
	if s.relay != nil {
		s.relay(f)
	}
}

// RunColocation races a co-located firm against a remote firm reacting to
// the same market-data event with identical decision latency.
func RunColocation(decision sim.Duration, seed int64) ColocationResult {
	sched := sim.NewScheduler(seed)

	src := pkt.UDPAddr{MAC: pkt.HostMAC(1), IP: pkt.HostIP(1), Port: 1}
	dst := pkt.UDPAddr{MAC: pkt.HostMAC(2), IP: pkt.HostIP(2), Port: 2}
	mkFrame := func() *netsim.Frame {
		return &netsim.Frame{Data: pkt.AppendUDPFrame(nil, src, dst, 0, make([]byte, 100)), Origin: sched.Now()}
	}

	var localOrderAt, remoteOrderAt sim.Time

	// Local firm: exchange → firm over an in-colo cross-connect (5 m), and
	// back the same way.
	localOrderRx := &stampSink{sched: sched, at: &localOrderAt}
	localOrderPort := netsim.NewPort(sched, localOrderRx, "ex-oe-local")
	var localFirmTx *netsim.Port

	localFirm := &stampSink{sched: sched}
	localFirm.relay = func(*netsim.Frame) {
		sched.After(decision, func() { localFirmTx.Send(mkFrame()) })
	}
	localFirmRxPort := netsim.NewPort(sched, localFirm, "local-md")
	localMDTx := netsim.NewPort(sched, nil, "ex-md-local")
	crossConnect := 25 * sim.Nanosecond
	netsim.Connect(localMDTx, localFirmRxPort, units.Rate10G, crossConnect)
	localFirmTx = netsim.NewPort(sched, nil, "local-oe")
	netsim.Connect(localFirmTx, localOrderPort, units.Rate10G, crossConnect)

	// Remote firm: exchange → Secaucus over microwave, orders back over
	// microwave.
	remoteFirm := &stampSink{sched: sched}
	mdCircuit := colo.NewCircuit(sched, colo.Carteret, colo.Secaucus, colo.DefaultMicrowave(), nullH{}, remoteFirm)
	remoteOrderRx := &stampSink{sched: sched, at: &remoteOrderAt}
	oeCircuit := colo.NewCircuit(sched, colo.Secaucus, colo.Carteret, colo.DefaultMicrowave(), nullH{}, remoteOrderRx)
	remoteFirm.relay = func(*netsim.Frame) {
		sched.After(decision, func() { oeCircuit.PortA.Send(mkFrame()) })
	}

	// The market event fires at t=1ms on both paths simultaneously.
	sched.At(sim.Time(sim.Millisecond), func() {
		localMDTx.Send(mkFrame())
		mdCircuit.PortA.Send(mkFrame())
	})
	sched.Run()

	t0 := sim.Time(sim.Millisecond)
	return ColocationResult{
		LocalTickToTrade:  localOrderAt.Sub(t0),
		RemoteTickToTrade: remoteOrderAt.Sub(t0),
		Advantage:         remoteOrderAt.Sub(localOrderAt),
		WANOneWay:         mdCircuit.Latency,
	}
}

// String renders the race.
func (r ColocationResult) String() string {
	return fmt.Sprintf(`Colocation advantage (§2): same event, same decision latency
  co-located firm tick-to-trade: %v
  remote (Secaucus, microwave):  %v
  colocation advantage:          %v  (≈ 2 × %v one-way WAN)
  this is why trading all US equities markets requires servers in all
  three facilities.
`, r.LocalTickToTrade, r.RemoteTickToTrade, r.Advantage, r.WANOneWay)
}
