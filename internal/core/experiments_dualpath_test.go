package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tradenet/internal/sim"
)

func TestRunDualPathWAN(t *testing.T) {
	r := RunDualPathWAN(3000, 9)
	// Arbitration heals everything: no gaps, all messages delivered.
	if r.Messages != 3000 {
		t.Fatalf("delivered %d of 3000", r.Messages)
	}
	if r.GapsAfterArbit != 0 {
		t.Fatalf("gaps after arbitration = %d", r.GapsAfterArbit)
	}
	// The microwave path actually lost frames to rain.
	if r.LostMicrowave == 0 {
		t.Fatal("no rain losses: the test exercised nothing")
	}
	// Microwave wins in the clear (it is ~60µs faster on this pair), so it
	// takes the large majority of wins; fiber only wins rained-out frames.
	if r.MicrowaveWins <= r.FiberWins {
		t.Fatalf("wins: mw=%d fiber=%d — microwave should dominate", r.MicrowaveWins, r.FiberWins)
	}
	if r.FiberWins == 0 {
		t.Fatal("fiber never won: rain healing untested")
	}
	if r.FiberWins != r.LostMicrowave {
		t.Fatalf("fiber wins (%d) should equal microwave losses (%d)", r.FiberWins, r.LostMicrowave)
	}
	// Latency: clear-weather median ≈ microwave propagation (~66µs);
	// rain median is still microwave-dominated (98% of frames survive) but
	// must not be faster than clear.
	if r.ClearP50.Microseconds() < 60 || r.ClearP50.Microseconds() > 75 {
		t.Fatalf("clear p50 = %v, want ≈66µs (microwave)", r.ClearP50)
	}
	if r.RainP50 < r.ClearP50 {
		t.Fatalf("rain p50 (%v) should not beat clear (%v)", r.RainP50, r.ClearP50)
	}
	if !strings.Contains(r.String(), "arbitration") {
		t.Fatal("render incomplete")
	}
}

func TestRunDualPathWANDeterministic(t *testing.T) {
	a := RunDualPathWAN(1000, 5)
	b := RunDualPathWAN(1000, 5)
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestRunColocation(t *testing.T) {
	r := RunColocation(2*sim.Microsecond, 3)
	if r.LocalTickToTrade <= 0 || r.RemoteTickToTrade <= 0 {
		t.Fatalf("race incomplete: %+v", r)
	}
	if r.RemoteTickToTrade <= r.LocalTickToTrade {
		t.Fatal("remote firm cannot beat the co-located firm")
	}
	// Advantage ≈ 2 × one-way WAN propagation, plus ~2.4µs because the
	// 1 Gbps microwave link also serializes each frame 10× slower than the
	// local 10G cross-connect — a second, smaller cost of being remote.
	want := 2 * r.WANOneWay
	diff := r.Advantage - want
	if diff < 0 {
		t.Fatalf("advantage %v below 2×propagation %v", r.Advantage, want)
	}
	if diff > 4*sim.Microsecond {
		t.Fatalf("advantage = %v, want ≈%v + serialization", r.Advantage, want)
	}
	// Secaucus–Carteret microwave is ~66µs one-way: advantage ≈ 132µs.
	if us := r.Advantage.Microseconds(); us < 120 || us > 145 {
		t.Fatalf("advantage = %vµs, want ≈132µs", us)
	}
	if !strings.Contains(r.String(), "Colocation") {
		t.Fatal("render incomplete")
	}
}

func TestWriteFigureCSVs(t *testing.T) {
	dir := t.TempDir()
	files, err := WriteFigureCSVs(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("files = %v", files)
	}
	// fig2b has 86400 rows + header; spot-check sizes and headers.
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 100 {
			t.Fatalf("%s too small (%d bytes)", f, len(data))
		}
		if !strings.Contains(string(data[:64]), ",") {
			t.Fatalf("%s missing CSV header", f)
		}
	}
	lines := func(path string) int {
		data, _ := os.ReadFile(path)
		return strings.Count(string(data), "\n")
	}
	if n := lines(filepath.Join(dir, "fig2b.csv")); n != 86401 {
		t.Fatalf("fig2b rows = %d", n)
	}
	if n := lines(filepath.Join(dir, "fig2c.csv")); n != 10001 {
		t.Fatalf("fig2c rows = %d", n)
	}
	if n := lines(filepath.Join(dir, "fig2a.csv")); n != 1261 {
		t.Fatalf("fig2a rows = %d", n)
	}
}

func TestRunMetroNBBO(t *testing.T) {
	r := RunMetroNBBO(200*sim.Millisecond, 7)
	// The oracle never sees a locked/crossed market.
	if r.OracleShare > 0.001 {
		t.Fatalf("oracle share = %v", r.OracleShare)
	}
	// The skewed views do, microwave less than fiber (smaller skew).
	if r.MicrowaveShare <= 0 {
		t.Fatal("microwave view saw no phantom lock/cross")
	}
	if r.FiberShare <= r.MicrowaveShare {
		t.Fatalf("fiber (%.4f) should be worse than microwave (%.4f)",
			r.FiberShare, r.MicrowaveShare)
	}
	// Sanity: shares are small fractions, not majorities.
	if r.MicrowaveShare > 0.5 || r.FiberShare > 0.8 {
		t.Fatalf("shares implausible: mw=%v fiber=%v", r.MicrowaveShare, r.FiberShare)
	}
	if r.Transitions == 0 {
		t.Fatal("no state transitions observed")
	}
	if !strings.Contains(r.String(), "phantom") {
		t.Fatal("render incomplete")
	}
}
