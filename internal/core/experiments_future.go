package core

import (
	"fmt"
	"math/rand"

	"tradenet/internal/device"
	"tradenet/internal/firm"
	"tradenet/internal/metrics"
	"tradenet/internal/netsim"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/topo"
	"tradenet/internal/units"
	"tradenet/internal/workload"
)

// The experiments in this file cover the paper's §5 research agenda — the
// "future work" directions — as ablations: FPGA-filtered merging
// (Hardware), subscription-aware group mapping (Routing), placement
// optimization (Cluster Management), and filtering placement (§3
// Implications).

// FilteredMergeRow is one fan-in level of the filtered-merge ablation.
type FilteredMergeRow struct {
	FanIn             int
	RawDropped        uint64
	RawDelivered      uint64
	FilteredDropped   uint64
	FilteredDelivered uint64
	FilteredP99       sim.Duration
}

// FilteredMergeResult compares plain L1S merging with FPGA-filtered
// merging.
type FilteredMergeResult struct {
	Rows []FilteredMergeRow
}

// RunFilteredMerge merges fanIn bursty single-group feeds onto one 10G
// output, where the consumer wants only one group. Plain merging carries
// everything and overruns the line; filtering discards unwanted groups in
// the switch, keeping the merge safe (§5 Hardware).
func RunFilteredMerge(fanIns []int, millis int, seed int64) FilteredMergeResult {
	var out FilteredMergeResult
	for _, k := range fanIns {
		row := FilteredMergeRow{FanIn: k}
		for _, filtered := range []bool{false, true} {
			sched := sim.NewScheduler(seed)
			cfg := device.DefaultFilteringL1Config()
			sw := device.NewFilteringL1Switch(sched, "fl1s", k+1, cfg)
			lat := metrics.NewHistogram()
			sink := &latencySink{sched: sched, h: lat}
			sink.port = netsim.NewPort(sched, sink, "rx")
			netsim.Connect(sw.Port(k), sink.port, units.Rate10G, 0)

			groups := make([]pkt.IP4, k)
			for i := range groups {
				groups[i] = pkt.MulticastGroup(1, uint16(i))
			}
			if filtered {
				sw.Subscribe(k, groups[0])
			}
			end := sim.Time(sim.Duration(millis) * sim.Millisecond)
			for i := 0; i < k; i++ {
				tx := netsim.NewPort(sched, nil, fmt.Sprintf("tx%d", i))
				tx.SetQueueCapacity(1 << 26)
				netsim.Connect(tx, sw.Port(i), units.Rate10G, 0)
				sw.Circuit(i, k)
				proc := workload.NewMMPP(
					workload.MMPPState{Rate: 400_000, MeanDwell: 2 * sim.Millisecond},
					workload.MMPPState{Rate: 3_200_000, MeanDwell: 120 * sim.Microsecond},
				)
				g := groups[i]
				src := pkt.UDPAddr{MAC: pkt.HostMAC(uint32(i + 1)), IP: pkt.HostIP(uint32(i + 1)), Port: 1}
				dst := pkt.UDPAddr{MAC: pkt.MulticastMAC(g), IP: g, Port: 2}
				payload := make([]byte, 558)
				txp := tx
				workload.Generate(sched, proc, 0, end, func() {
					txp.Send(&netsim.Frame{Data: pkt.AppendUDPFrame(nil, src, dst, 0, payload), Origin: sched.Now()})
				})
			}
			sched.Run()
			if filtered {
				row.FilteredDelivered = sw.Port(k).TxFrames
				row.FilteredDropped = sw.Port(k).Drops
				row.FilteredP99 = sim.Duration(lat.P99())
			} else {
				row.RawDelivered = sw.Port(k).TxFrames
				row.RawDropped = sw.Port(k).Drops
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// String renders the comparison.
func (r FilteredMergeResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rawLoss := float64(row.RawDropped) / float64(row.RawDropped+row.RawDelivered) * 100
		filtLoss := float64(row.FilteredDropped) / float64(row.FilteredDropped+row.FilteredDelivered) * 100
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.FanIn),
			fmt.Sprintf("%.1f%%", rawLoss),
			fmt.Sprintf("%.1f%%", filtLoss),
			row.FilteredP99.String(),
		})
	}
	return "Filtered merge ablation (§5 Hardware): FPGA filtering makes merges safe\n" +
		metrics.Table([]string{"fan-in", "raw merge loss", "filtered loss", "filtered p99"}, rows)
}

// PlacementResult is the §4.1/§5 placement-optimization ablation.
type PlacementResult struct {
	BaselineMeanHops  float64
	OptimizedMeanHops float64
	LowerBoundHops    float64
	GapClosed         float64
}

// RunPlacement builds a plant-shaped placement instance and compares
// function-grouped racks against hill-climbed placement.
func RunPlacement(nNorm, nStrat, nGw, racks, rackCap int, seed int64) PlacementResult {
	pp := &topo.PlacementProblem{Racks: racks, RackCap: rackCap, Pinned: map[int]int{0: 0}}
	pp.Components = append(pp.Components, topo.Component{Name: "exch", Kind: topo.KindExchangePort})
	normBase := len(pp.Components)
	for i := 0; i < nNorm; i++ {
		pp.Components = append(pp.Components, topo.Component{Kind: topo.KindNormalizer})
		pp.Demands = append(pp.Demands, topo.Demand{From: 0, To: normBase + i, Weight: 100})
	}
	stratBase := len(pp.Components)
	for i := 0; i < nStrat; i++ {
		pp.Components = append(pp.Components, topo.Component{Kind: topo.KindStrategy})
		pp.Demands = append(pp.Demands, topo.Demand{From: normBase + i%nNorm, To: stratBase + i, Weight: 50})
	}
	gwBase := len(pp.Components)
	for i := 0; i < nGw; i++ {
		pp.Components = append(pp.Components, topo.Component{Kind: topo.KindGateway})
		pp.Demands = append(pp.Demands, topo.Demand{From: gwBase + i, To: 0, Weight: 80})
	}
	for i := 0; i < nStrat; i++ {
		pp.Demands = append(pp.Demands, topo.Demand{From: stratBase + i, To: gwBase + i%nGw, Weight: 10})
	}

	base := pp.FunctionGrouped()
	opt, _ := pp.Improve(base, 100, rand.New(rand.NewSource(seed)))
	res := PlacementResult{
		BaselineMeanHops:  pp.MeanHops(base),
		OptimizedMeanHops: pp.MeanHops(opt),
		LowerBoundHops:    1,
	}
	res.GapClosed = (res.BaselineMeanHops - res.OptimizedMeanHops) /
		(res.BaselineMeanHops - res.LowerBoundHops)
	return res
}

// String renders the placement comparison.
func (r PlacementResult) String() string {
	return fmt.Sprintf(`Placement optimization (§4.1 remark, §5 Cluster Management)
  function-grouped racks: %.2f mean switch hops per message
  optimized placement:    %.2f mean switch hops
  all-local lower bound:  %.2f
  gap closed: %.0f%% — "we could only optimize placement for a few
  strategies and the majority would not benefit" (§4.1)
`, r.BaselineMeanHops, r.OptimizedMeanHops, r.LowerBoundHops, r.GapClosed*100)
}

// GroupMappingResult is the §5 Routing ablation: co-designing the
// partition→group mapping against actual subscriptions.
type GroupMappingResult struct {
	Partitions    int
	GroupBudget   int
	NaiveUnwanted float64 // fraction of delivered messages unwanted, naive mapping
	OptUnwanted   float64 // same, subscription-clustered mapping
}

// RunGroupMapping compares two ways of packing P partitions into G < P
// multicast groups when consumers subscribe to contiguous partition
// windows: naive modulo packing scatters each consumer's window across
// groups (so every group delivers mostly unwanted traffic), while
// clustering adjacent partitions into the same group keeps delivery tight.
// This is the §5 Routing question: "by co-designing the algorithm used to
// transform raw market data ... as well as the mapping from feeds to
// multicast groups, can we achieve a more efficient design?"
func RunGroupMapping(partitions, groupBudget, consumers int, seed int64) GroupMappingResult {
	rng := rand.New(rand.NewSource(seed))
	window := partitions / 4
	type consumer struct{ lo int }
	cs := make([]consumer, consumers)
	for i := range cs {
		cs[i] = consumer{lo: rng.Intn(partitions)}
	}
	wants := func(c consumer, part int) bool {
		off := (part - c.lo + partitions) % partitions
		return off < window
	}
	// Per-partition traffic is uniform; measure, for each mapping, the
	// fraction of (consumer, delivered message) pairs that are unwanted.
	measure := func(groupOf func(part int) int) float64 {
		// groupMembers[g] = set of partitions in group g.
		members := make(map[int][]int)
		for p := 0; p < partitions; p++ {
			members[groupOf(p)] = append(members[groupOf(p)], p)
		}
		var wanted, delivered float64
		joined := make([]bool, groupBudget)
		for _, c := range cs {
			for i := range joined {
				joined[i] = false
			}
			for p := 0; p < partitions; p++ {
				if wants(c, p) {
					joined[groupOf(p)] = true
				}
			}
			for g, in := range joined {
				if !in {
					continue
				}
				for _, p := range members[g] {
					delivered++
					if wants(c, p) {
						wanted++
					}
				}
			}
		}
		if delivered == 0 {
			return 0
		}
		return 1 - wanted/delivered
	}
	naive := measure(func(p int) int { return p % groupBudget })
	clustered := measure(func(p int) int { return p * groupBudget / partitions })
	return GroupMappingResult{
		Partitions:    partitions,
		GroupBudget:   groupBudget,
		NaiveUnwanted: naive,
		OptUnwanted:   clustered,
	}
}

// String renders the mapping comparison.
func (r GroupMappingResult) String() string {
	return fmt.Sprintf(`Group-mapping co-design (§5 Routing): %d partitions into %d groups
  naive modulo mapping:   %.0f%% of delivered messages unwanted
  clustered mapping:      %.0f%% unwanted
  subscription-aware mapping cuts wasted delivery when groups are scarce
  (the mroute squeeze of §3 is exactly what makes them scarce).
`, r.Partitions, r.GroupBudget, r.NaiveUnwanted*100, r.OptUnwanted*100)
}

// TimestampPrecisionResult is the §2 timestamping study: how sync precision
// drives event-ordering fidelity.
type TimestampPrecisionResult struct {
	Rows []TimestampPrecisionRow
}

// TimestampPrecisionRow is one sync-precision level.
type TimestampPrecisionRow struct {
	Precision  sim.Duration
	Inversions int
	Pairs      int
}

// RunTimestampPrecision measures ordering errors between two taps whose
// clocks are disciplined to each precision, observing event pairs spaced
// like back-to-back feed messages at 10G (§2: "precise timestamps are
// necessary for understanding the ordering of market data events"; some
// firms want <100 ps).
func RunTimestampPrecision(pairs int, seed int64) TimestampPrecisionResult {
	gap := units.SerializationDelay(100, units.Rate10G) // ~80 ns between events
	var out TimestampPrecisionResult
	for _, prec := range []sim.Duration{sim.Microsecond, 100 * sim.Nanosecond, 10 * sim.Nanosecond, 100 * sim.Picosecond} {
		rng := rand.New(rand.NewSource(seed))
		inv := 0
		for i := 0; i < pairs; i++ {
			a := newSyncedClock(prec, rng)
			b := newSyncedClock(prec, rng)
			t0 := sim.Time(i) * sim.Time(sim.Microsecond)
			t1 := t0.Add(gap)
			if b.Read(t1) < a.Read(t0) {
				inv++
			}
		}
		out.Rows = append(out.Rows, TimestampPrecisionRow{Precision: prec, Inversions: inv, Pairs: pairs})
	}
	return out
}

func newSyncedClock(prec sim.Duration, rng *rand.Rand) *clockShim {
	off := sim.Duration(0)
	if prec > 0 {
		off = sim.Duration(rng.Int63n(int64(2*prec)+1)) - prec
	}
	return &clockShim{off: off}
}

type clockShim struct{ off sim.Duration }

func (c *clockShim) Read(t sim.Time) sim.Time { return t.Add(c.off) }

// String renders the precision sweep.
func (r TimestampPrecisionResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Precision.String(),
			fmt.Sprintf("%.2f%%", float64(row.Inversions)/float64(row.Pairs)*100),
		})
	}
	return "Timestamp sync precision vs event-ordering errors (§2; events ~80ns apart)\n" +
		metrics.Table([]string{"sync precision", "misordered pairs"}, rows)
}

// FilterPlacementResult sweeps consumer counts for the §3 filtering-
// placement decision.
type FilterPlacementResult struct {
	Rows []FilterPlacementRow
}

// FilterPlacementRow is one consumer count.
type FilterPlacementRow struct {
	Consumers      int
	InProcessCores float64
	MiddleboxCores float64
}

func filterPlacementInstance(consumers int) firm.FilterPlacement {
	return firm.FilterPlacement{
		Rate:        1_000_000,
		Want:        0.1,
		Consumers:   consumers,
		DiscardCost: 50 * sim.Nanosecond,
		ProcessCost: 500 * sim.Nanosecond,
	}
}

// RunFilterPlacement sweeps the §3 middlebox-vs-in-process arithmetic.
func RunFilterPlacement() FilterPlacementResult {
	var out FilterPlacementResult
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		fp := filterPlacementInstance(n)
		out.Rows = append(out.Rows, FilterPlacementRow{
			Consumers:      n,
			InProcessCores: fp.InProcessCoresUsed(),
			MiddleboxCores: fp.MiddleboxCoresUsed(),
		})
	}
	return out
}

// String renders the sweep.
func (r FilterPlacementResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		winner := "in-process"
		if row.MiddleboxCores < row.InProcessCores {
			winner = "middlebox"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Consumers),
			fmt.Sprintf("%.2f", row.InProcessCores),
			fmt.Sprintf("%.2f", row.MiddleboxCores),
			winner,
		})
	}
	return "Filtering placement (§3): cores used, 1M msg/s feed, 10% wanted\n" +
		metrics.Table([]string{"consumers", "in-process cores", "middlebox cores", "winner"}, rows)
}
