package core

import (
	"strings"
	"testing"

	"tradenet/internal/sim"
)

// TestExchangeFailoverInvariants: the venue-kill experiment upholds the
// zero-loss contract in every design for several seeds — promotion within
// the watchdog deadline, books and execution counts identical to the
// paired no-crash control, no orphans, no overfills, no unknown
// escalations, no cancel-on-disconnect sweeps, no feed gaps.
func TestExchangeFailoverInvariants(t *testing.T) {
	seeds := []int64{1, 2, 3}
	r := RunExchangeFailover(SmallScenario(), seeds)
	if len(r.Runs) != len(seeds) {
		t.Fatalf("got %d runs, want %d", len(r.Runs), len(seeds))
	}
	for _, run := range r.Runs {
		if len(run.Designs) != 3 {
			t.Fatalf("seed %d: got %d designs, want 3", run.Seed, len(run.Designs))
		}
		for _, d := range run.Designs {
			if !d.InvariantsOK() {
				t.Errorf("seed %d %s: invariants violated: %+v", run.Seed, d.Design, d)
			}
			if d.Blackout <= 0 || d.Blackout > sim.Duration(10*sim.Millisecond) {
				t.Errorf("seed %d %s: blackout %v outside (0, 10ms]", run.Seed, d.Design, d.Blackout)
			}
			if d.FirstTradeIn < d.FirstAcceptIn {
				t.Errorf("seed %d %s: first trade %v before first accept %v",
					run.Seed, d.Design, d.FirstTradeIn, d.FirstAcceptIn)
			}
			for _, want := range []string{"crashed", "declaring primary", "promoted"} {
				if !strings.Contains(d.DecisionLog, want) {
					t.Errorf("seed %d %s: decision log missing %q:\n%s",
						run.Seed, d.Design, want, d.DecisionLog)
				}
			}
		}
	}
	if !r.AllInvariantsOK() {
		t.Fatal("AllInvariantsOK false")
	}
	out := r.String()
	for _, want := range []string{"ha.journal.records", "ha.follower.applied",
		"ha.promotions", "blackout", "VIOLATED"} {
		ok := strings.Contains(out, want)
		if want == "VIOLATED" {
			ok = !ok // a clean report must not flag any run
		}
		if !ok {
			t.Errorf("report check failed for %q", want)
		}
	}
}

// TestExchangeFailoverDeterministic: the whole faulted experiment —
// crash, promotion, redials, retries, final books — is a pure function of
// the seed: two runs render byte-identical reports.
func TestExchangeFailoverDeterministic(t *testing.T) {
	a := RunExchangeFailover(SmallScenario(), []int64{7}).String()
	b := RunExchangeFailover(SmallScenario(), []int64{7}).String()
	if a != b {
		t.Fatalf("reports differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}
