package core

import (
	"fmt"

	"tradenet/internal/exchange"
	"tradenet/internal/feed"
	"tradenet/internal/firm"
	"tradenet/internal/market"
	"tradenet/internal/mcast"
	"tradenet/internal/orderentry"
	"tradenet/internal/sim"
	"tradenet/internal/topo"
)

// Design3 is §4.3: four Layer-1 circuit-switch networks, one per leg of the
// loop. Fan-out happens at wire speed (~5 ns); anywhere multiple sources
// share a consumer NIC, the merge unit adds 50 ns and introduces the
// contention the paper warns about.
type Design3 struct {
	Scenario Scenario
	Sched    *sim.Scheduler
	U        *market.Universe
	Fabric   *topo.L1Fabric
	Ex       *exchange.Exchange
	Norms    []*firm.Normalizer
	Strats   []*firm.Strategy
	Gws      []*firm.Gateway

	// ExSessions[i] is the exchange's side of gateway i's order-entry
	// session (see Design1.ExSessions).
	ExSessions []*orderentry.ExchangeSession

	RawMap *mcast.Map
	OutMap *mcast.Map

	// NormSubs[i] is the set of normalizer indices strategy i subscribes
	// to; with one L1S NIC per strategy, |NormSubs[i]| > 1 implies merging.
	NormSubs [][]int

	// WANFeed is the adaptive WAN redundancy mirror (nil unless
	// Scenario.WANRedundancy).
	WANFeed *WANFeed

	// HA is the exchange high-availability pair (nil unless
	// Scenario.ExchangeHA). The standby's NICs join networks 1 and 4 as
	// extra circuit endpoints; until promotion they transmit nothing.
	HA *HACluster

	// Tel is the telemetry plane (nil unless Scenario.Telemetry).
	Tel *Telemetry
}

// NewDesign3 builds the four-network L1S plant. maxSubs caps the number of
// normalizer feeds a strategy may take ("a practical workaround for NIC
// proliferation is to restrict the total number of normalizers each trading
// strategy can subscribe to"); 0 means all.
func NewDesign3(sc Scenario, maxSubs int) *Design3 {
	d := &Design3{Scenario: sc, Sched: sim.NewScheduler(sc.Seed)}
	d.U = buildUniverse(sc.Symbols)
	cfg := topo.DefaultL1FabricConfig()
	cfg.Ports = 2*sc.Servers() + 16
	d.Fabric = topo.NewL1Fabric(d.Sched, cfg)

	d.RawMap = mcast.NewMap(mcast.NewPartitioner(d.U, mcast.ByAlpha, 0), mcast.NewAllocator(1))
	d.OutMap = mcast.NewMap(mcast.NewPartitioner(d.U, mcast.ByHash, sc.InternalPartitions), mcast.NewAllocator(2))

	d.Ex = exchange.New(d.Sched, d.U, d.RawMap, exchange.Config{
		ID: 1, Name: "EXCH", Variant: feed.ExchangeB, MatchLatency: 0, HostID: idExchange,
	})

	// Network 1: exchange → normalizers. Pure fan-out; the L1S replicates
	// the raw feed to every normalizer's NIC, which filters by group. Each
	// normalizer owns internal partitions p with p % Normalizers == i, so
	// the fleet divides the normalization work without duplication.
	exIn := d.Fabric.AttachSource(d.Fabric.ExToNorm, d.Ex.MDNIC())
	var normOuts []int
	for i := 0; i < sc.Normalizers; i++ {
		i := i
		n := firm.NewNormalizer(d.Sched, d.U, fmt.Sprintf("norm%d", i), uint32(idNormalizer+2*i),
			feed.ExchangeB, d.RawMap, d.OutMap, firm.NormalizerConfig{
				ProcLatency:    sc.FnLatency,
				PartitionOwned: func(p int) bool { return p%sc.Normalizers == i },
			})
		normOuts = append(normOuts, d.Fabric.AttachSink(d.Fabric.ExToNorm, n.RawNIC()))
		d.Norms = append(d.Norms, n)
	}
	d.Fabric.Deliver(d.Fabric.ExToNorm, exIn, normOuts...)

	// Network 2: normalizers → strategies. A strategy's partitions are
	// owned by several normalizers, but it has one MD NIC: every feed
	// beyond the first must merge onto that NIC (§4.3's trade). maxSubs
	// caps the feeds taken; capped-away partitions are simply not received
	// — the reduced-partitioning cost the paper describes.
	normIns := make([]int, sc.Normalizers)
	for i, n := range d.Norms {
		normIns[i] = d.Fabric.AttachSource(d.Fabric.NormToStrat, n.PubNIC())
	}
	normFanouts := make([][]int, sc.Normalizers)
	for i := 0; i < sc.Strategies; i++ {
		subs := subscriptionSlice(i, sc.InternalPartitions)
		s := firm.NewStrategy(d.Sched, d.U, fmt.Sprintf("strat%d", i), uint32(idStrategy+2*i),
			d.OutMap, firm.StrategyConfig{DecisionLatency: sc.FnLatency, Subscriptions: subs})
		out := d.Fabric.AttachSink(d.Fabric.NormToStrat, s.MDNIC())
		var owners []int
		seen := map[int]bool{}
		for _, p := range subs {
			o := p % sc.Normalizers
			if !seen[o] {
				seen[o] = true
				owners = append(owners, o)
			}
		}
		if maxSubs > 0 && len(owners) > maxSubs {
			owners = owners[:maxSubs]
		}
		for _, o := range owners {
			normFanouts[o] = append(normFanouts[o], out)
		}
		d.NormSubs = append(d.NormSubs, owners)
		d.Strats = append(d.Strats, s)
	}
	for i, outs := range normFanouts {
		if len(outs) > 0 {
			d.Fabric.Deliver(d.Fabric.NormToStrat, normIns[i], outs...)
		}
	}

	// Network 3: strategies → gateways (merge many strategies onto each
	// gateway NIC) and the reverse circuits for responses.
	gwIns := make([]int, sc.Gateways)
	gwInPorts := make([]int, sc.Gateways)
	for i := 0; i < sc.Gateways; i++ {
		g := firm.NewGateway(d.Sched, fmt.Sprintf("gw%d", i), uint32(idGateway+2*i),
			firm.GatewayConfig{TranslateLatency: sc.FnLatency})
		d.Gws = append(d.Gws, g)
		gwInPorts[i] = d.Fabric.AttachSink(d.Fabric.StratToGw, g.InNIC())
		gwIns[i] = gwInPorts[i]
	}
	for i, s := range d.Strats {
		in := d.Fabric.AttachSource(d.Fabric.StratToGw, s.OENIC())
		gw := i % sc.Gateways
		d.Fabric.Deliver(d.Fabric.StratToGw, in, gwInPorts[gw])
		// Reverse: gateway responses fan out to its strategies' NICs, which
		// filter by MAC (an L1S cannot address individual consumers).
		prev := d.Fabric.Circuits(d.Fabric.StratToGw)[gwInPorts[gw]]
		d.Fabric.Deliver(d.Fabric.StratToGw, gwInPorts[gw], append(prev, in)...)
	}

	// Network 4: gateways → exchange, and responses back.
	exOE := d.Fabric.AttachSink(d.Fabric.GwToEx, d.Ex.OENIC())
	var gwExPorts []int
	for _, g := range d.Gws {
		in := d.Fabric.AttachSource(d.Fabric.GwToEx, g.ExNIC())
		gwExPorts = append(gwExPorts, in)
		d.Fabric.Deliver(d.Fabric.GwToEx, in, exOE)
	}
	d.Fabric.Deliver(d.Fabric.GwToEx, exOE, gwExPorts...)

	if sc.ExchangeHA {
		// The standby joins the feed and order networks as a second set of
		// circuit endpoints. Its MD source shares the normalizers' sink NICs
		// (which therefore become merge outputs — the §4.3 contention cost of
		// a second source), and each gateway's order circuit also reaches the
		// standby's OE NIC, which filters by MAC until clients re-home to it.
		bak := exchange.New(d.Sched, d.U, d.RawMap, exchange.Config{
			ID: 1, Name: "EXCH-B", Variant: feed.ExchangeB, MatchLatency: 0, HostID: idExchangeBak,
		})
		bakIn := d.Fabric.AttachSource(d.Fabric.ExToNorm, bak.MDNIC())
		d.Fabric.Deliver(d.Fabric.ExToNorm, bakIn, normOuts...)
		bakOE := d.Fabric.AttachSink(d.Fabric.GwToEx, bak.OENIC())
		for _, in := range gwExPorts {
			prev := d.Fabric.Circuits(d.Fabric.GwToEx)[in]
			d.Fabric.Deliver(d.Fabric.GwToEx, in, append(prev, bakOE)...)
		}
		d.Fabric.Deliver(d.Fabric.GwToEx, bakOE, gwExPorts...)
		if sc.OEResilience {
			bak.EnableResilience(oeExchangeResilience())
		}
		d.HA = NewHACluster(d.Sched, d.Ex, bak)
	}

	d.wireSessions()
	if sc.WANRedundancy {
		d.WANFeed = NewWANFeed(d.Sched, d.Ex, DefaultWANFeedConfig())
	}
	d.Tel = newTelemetry(d.Sched, sc.Telemetry)
	d.Tel.RegisterExchange(d.Ex)
	d.Tel.RegisterHA(d.HA)
	return d
}

func (d *Design3) wireSessions() {
	if d.Scenario.OEResilience {
		d.Ex.EnableResilience(oeExchangeResilience())
	}
	for i, g := range d.Gws {
		addr := g.ExNIC().Addr(uint16(41000 + i))
		sess, exPort := d.Ex.AcceptSession(addr)
		d.ExSessions = append(d.ExSessions, sess)
		g.ConnectExchange(uint16(41000+i), d.Ex.OENIC().Addr(exPort))
		if d.Scenario.OEResilience {
			if d.HA != nil {
				hardenGatewayHA(g, d.HA, i, addr)
			} else {
				hardenGateway(g, d.Ex, sess, addr)
			}
		}
	}
	for i, s := range d.Strats {
		g := d.Gws[i%len(d.Gws)]
		gwPort := g.AcceptStrategy(s.OENIC().Addr(uint16(42000 + i)))
		s.ConnectGateway(uint16(42000+i), g.InNIC().Addr(gwPort))
		if d.Scenario.OEResilience {
			hardenStrategyBehindGateway(s)
		}
	}
}

// MeasureRoundTrip mirrors Design1's measurement over the L1S fabric. The
// loop crosses 4 L1S hops (5 ns each, plus 50 ns at each merge stage).
func (d *Design3) MeasureRoundTrip(bursts int) RoundTrip {
	cfg := d.Fabric.Config().Switch
	// The order-side legs (strategy→gateway, gateway→exchange) always pass
	// merge units; the feed legs are pure fan-out unless strategies merge
	// normalizer feeds.
	merges := 2
	if len(d.NormSubs) > 0 && len(d.NormSubs[0]) > 1 {
		merges++
	}
	rt := RoundTrip{
		Design:        "Design 3 (L1S)",
		SwitchHops:    4,
		SoftwareHops:  3,
		SoftwareTime:  3 * d.Scenario.FnLatency,
		SwitchLatency: 4*cfg.FanoutLatency + sim.Duration(merges)*cfg.MergeLatency,
	}
	measure(d.Sched, d.Ex, d.Scenario, bursts, &rt, d.Tel)
	return rt
}

// MergePorts reports how many merge outputs each of the four networks has.
func (d *Design3) MergePorts() map[string]int {
	count := func(sw interface{ IsMergeOutput(int) bool }, n int) int {
		c := 0
		for i := 0; i < n; i++ {
			if sw.IsMergeOutput(i) {
				c++
			}
		}
		return c
	}
	n := d.Fabric.Config().Ports
	return map[string]int{
		"ex-norm":    count(d.Fabric.ExToNorm, n),
		"norm-strat": count(d.Fabric.NormToStrat, n),
		"strat-gw":   count(d.Fabric.StratToGw, n),
		"gw-ex":      count(d.Fabric.GwToEx, n),
	}
}
