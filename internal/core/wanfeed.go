package core

import (
	"tradenet/internal/colo"
	"tradenet/internal/exchange"
	"tradenet/internal/feed"
	"tradenet/internal/metrics"
	"tradenet/internal/netsim"
	"tradenet/internal/pkt"
	"tradenet/internal/redundancy"
	"tradenet/internal/sim"
	"tradenet/internal/trace"
	"tradenet/internal/units"
)

// Adaptive WAN redundancy (§2): the exchange's published feed, mirrored to a
// remote site over the Carteret→Secaucus microwave circuit — the path firms
// run *because* it is fast, accepting that it rain-fades. The mirror is built
// from the internal/redundancy policy layer:
//
//	exchange tap ─► redundancy.Sender ─► microwave ─► redundancy.Receiver
//	                                                   │ per-unit Reassemblers
//	                                                   └ gaps ─► TCP replay over
//	                                                             a fiber side channel
//
// A closed-loop controller samples the circuit's transmit/loss counters plus
// the feed side's residual declared losses every window of virtual time and
// walks the policy ladder ReplayOnly → ParityFEC → Duplicate with
// deterministic hysteresis. Everything — tick instants, loss draws, policy
// decisions — is a pure function of the scenario seed.
//
// The mirror is a passive observer of the plant: it taps datagrams the
// exchange publishes anyway and feeds nothing back into the round-trip path,
// so arming it cannot perturb tick-to-trade measurements. With the Scenario
// knob off none of this is built and the publish path pays one nil compare.

// wanfeed side-channel host IDs (disjoint from the plant's 100/1000/10000/
// 50000 ranges) and stream ports.
const (
	idWANPub = 90
	idWANSub = 91

	wanPubPort = 5100
	wanSubPort = 5101

	// wanSideChanLatency is the metro-fiber one-way latency of the replay
	// side channel — the round trip every replay pays and proactive
	// redundancy avoids (E19's side-channel figure).
	wanSideChanLatency = 80 * sim.Microsecond
)

// WANFeedConfig assembles the mirror's tunables.
type WANFeedConfig struct {
	// Sender, Receiver, and Controller tune the redundancy layer; the
	// receiver's K must mirror the sender's.
	Sender     redundancy.SenderConfig
	Receiver   redundancy.ReceiverConfig
	Controller redundancy.ControllerConfig

	// CrossPath provisions a fiber twin circuit and sends Duplicate second
	// copies over it (path diversity) instead of twice down the microwave.
	CrossPath bool
}

// DefaultWANFeedConfig: parity groups of 4, 256-slot reorder ring, 500 µs
// controller windows, same-path duplication.
func DefaultWANFeedConfig() WANFeedConfig {
	return WANFeedConfig{
		Sender:     redundancy.DefaultSenderConfig(),
		Receiver:   redundancy.DefaultReceiverConfig(),
		Controller: redundancy.DefaultControllerConfig(),
	}
}

// WANFeed is the armed mirror: one instance per design plant when
// Scenario.WANRedundancy is set.
type WANFeed struct {
	MW *colo.Circuit // the mirrored live path (microwave)
	FB *colo.Circuit // fiber twin for cross-path duplicates (nil unless CrossPath)

	Sender     *redundancy.Sender
	Receiver   *redundancy.Receiver
	Controller *redundancy.Controller

	// FeedMsgs counts messages delivered in order at the remote site off the
	// live path — first copies, deduped duplicates, and parity
	// reconstructions, but not replayed data (that arrives late and out of
	// band). GapDgrams and LostMsgs are the residual gaps that fell through
	// to replay; Requests counts the replay requests they triggered.
	FeedMsgs  uint64
	GapDgrams uint64
	LostMsgs  uint64
	Requests  uint64
	// Unrecoverable counts replay refusals (range rolled out of retention).
	Unrecoverable uint64
	// PendingReplays is the gauge of replay requests still in flight —
	// requests sent minus RecoveryDone terminators read back. While nonzero
	// the remote site *knows* it is missing data: the probe-visible half of
	// the stale-picture window (losses not yet detected are the blind half).
	PendingReplays int

	srv       *feed.RecoveryServer
	recReader *feed.ResponseReader
	reasm     []*feed.Reassembler
	cliStream *netsim.Stream

	sched  *sim.Scheduler
	tracer *trace.Recorder
	src    pkt.UDPAddr
	dst    pkt.UDPAddr
	ipID   uint16

	// LastAdvanceAt is the last instant the remote picture advanced — a
	// live/reconstructed delivery or a replayed message.
	LastAdvanceAt sim.Time
}

// wanRx terminates the mirror's WAN circuits at the remote site.
type wanRx struct{ wf *WANFeed }

// HandleFrame unwraps one wire frame, feeds it to the redundancy receiver,
// and closes the frame's trace with the outcome-specific terminal.
func (r *wanRx) HandleFrame(_ *netsim.Port, f *netsim.Frame) {
	var uf pkt.UDPFrame
	if err := pkt.ParseUDPFrame(f.Data, &uf); err != nil {
		f.Release()
		return
	}
	out := r.wf.Receiver.Consume(uf.Payload)
	if t := f.Trace; t != nil {
		t.Finish(wanEnd(out))
		f.Trace = nil
	}
	f.Release()
}

// wanEnd maps a redundancy outcome to the flight recorder's terminal kind.
func wanEnd(out redundancy.Outcome) trace.End {
	switch out {
	case redundancy.OutDup:
		return trace.EndDeduped
	case redundancy.OutParityUsed:
		return trace.EndReconstructed
	default:
		// Delivered/held data, unused or exhausted parity, bad frames: the
		// frame was consumed at the receiver either way.
		return trace.EndConsumed
	}
}

// NewWANFeed arms the mirror on ex's publish path. The controller is built
// but not ticking: call Start for the adaptive closed loop, or ForceStatic
// to pin a policy. Until either, the mirror runs ReplayOnly — the status
// quo — so a plant built with the knob on but never steered still
// terminates its event loop (no self-rearming ticks).
func NewWANFeed(sched *sim.Scheduler, ex *exchange.Exchange, cfg WANFeedConfig) *WANFeed {
	wf := &WANFeed{sched: sched}
	rx := &wanRx{wf: wf}
	wf.MW = colo.NewCircuit(sched, colo.Carteret, colo.Secaucus, colo.DefaultMicrowave(), nullH{}, rx)

	wf.Sender = redundancy.NewSender(sched, cfg.Sender)
	wf.Sender.Emit = wf.emitMW
	if cfg.CrossPath {
		wf.FB = colo.NewCircuit(sched, colo.Carteret, colo.Secaucus, colo.DefaultFiber(), nullH{}, rx)
		wf.Sender.Emit2 = wf.emitFB
	}
	wf.Receiver = redundancy.NewReceiver(cfg.Receiver)
	wf.Receiver.Deliver = wf.deliver

	// Remote feed state: one reassembler per feed unit; gaps fall through to
	// the replay client on the fiber side channel.
	parts := ex.PartitionMap().Partitioner().Partitions()
	wf.reasm = make([]*feed.Reassembler, parts)
	for i := range wf.reasm {
		r := feed.NewReassembler(uint8(i))
		r.OnGap = wf.onGap
		wf.reasm[i] = r
	}

	// Replay side channel: metro fiber, dedicated hosts, one shared stream.
	// Responses carry unit headers, so one reader serves all units; the
	// server side gets a fresh per-stream framing state over the exchange's
	// retain buffers.
	wf.srv = ex.NewRecoveryServer()
	pubNIC := netsim.NewHost(sched, "wanfeed-pub").AddNIC("rec", idWANPub)
	subNIC := netsim.NewHost(sched, "wanfeed-sub").AddNIC("rec", idWANSub)
	netsim.Connect(pubNIC.Port, subNIC.Port, units.Rate10G, wanSideChanLatency)
	pubMux := netsim.NewStreamMux(pubNIC)
	subMux := netsim.NewStreamMux(subNIC)
	srvStream := netsim.NewStream(pubNIC, wanPubPort, subNIC.Addr(wanSubPort))
	wf.cliStream = netsim.NewStream(subNIC, wanSubPort, pubNIC.Addr(wanPubPort))
	pubMux.Register(srvStream)
	subMux.Register(wf.cliStream)
	srvStream.OnData = func(b []byte) {
		wf.srv.Receive(b, func(resp []byte) { srvStream.Write(resp) })
	}
	wf.recReader = &feed.ResponseReader{}
	wf.recReader.OnRefused = func(uint8) { wf.Unrecoverable++ }
	wf.recReader.OnDone = func() {
		if wf.PendingReplays > 0 {
			wf.PendingReplays--
		}
	}
	wf.cliStream.OnData = func(b []byte) {
		_ = wf.recReader.Read(b, wf.onRecovered)
	}

	wf.Controller = redundancy.NewController(sched, cfg.Controller,
		redundancy.SumSource{
			// Ground truth from the medium: every frame committed to the
			// microwave circuit vs every frame it lost in flight.
			redundancy.CounterSource{Tx: &wf.MW.PortA.TxFrames, Lost: &wf.MW.PortA.Lost},
			// Residual pressure from the feed side: datagrams mirrored vs
			// sequences the receiver gave up on (what the active policy
			// failed to absorb). Keeps the loop honest when port counters
			// alone would under-read a policy that is losing the fight.
			redundancy.CounterSource{Tx: &wf.Sender.Stats.DataFrames, Lost: &wf.Receiver.Stats.LostDeclared},
		},
		wf.Sender, wf.Receiver)

	// Addressing for the mirrored frames (nominal: the circuit delivers
	// port-to-port, but frames carry real headers like everything else).
	wf.src = pubNIC.Addr(wanPubPort)
	grp := pkt.MulticastGroup(3, 1)
	wf.dst = pkt.UDPAddr{MAC: pkt.MulticastMAC(grp), IP: grp, Port: exchange.MDPort}

	ex.SetOnPublishDgram(wf.Sender.Send)
	return wf
}

// Start engages the adaptive closed loop. The controller tick re-arms every
// window until Stop, so runs driving an adaptive mirror bound themselves
// with RunUntil (the E21 idiom) rather than running the queue dry.
func (wf *WANFeed) Start() { wf.Controller.Start() }

// ForceStatic pins one policy on both ends and leaves the controller off —
// the static arms of the E22 matrix.
func (wf *WANFeed) ForceStatic(p redundancy.Policy) {
	wf.Sender.Apply(p)
	wf.Receiver.Apply(p)
}

// EnableTracing starts a flight-recorder trace on every mirrored wire frame;
// the receive side finishes them with outcome terminals (deduped,
// reconstructed, consumed), and the ports record loss and transit spans as
// for any traced frame.
func (wf *WANFeed) EnableTracing(r *trace.Recorder) { wf.tracer = r }

// emitMW transmits one wire frame on the microwave path.
func (wf *WANFeed) emitMW(b []byte) { wf.emit(wf.MW.PortA, b) }

// emitFB transmits one wire frame on the fiber twin.
func (wf *WANFeed) emitFB(b []byte) { wf.emit(wf.FB.PortA, b) }

func (wf *WANFeed) emit(p *netsim.Port, b []byte) {
	wf.ipID++
	fr := netsim.NewFrame()
	fr.Data = pkt.AppendUDPFrame(fr.Data, wf.src, wf.dst, wf.ipID, b)
	fr.Origin = wf.sched.Now()
	if wf.tracer != nil {
		fr.Trace = wf.tracer.Start(wf.sched.Now())
	}
	p.Send(fr)
}

// deliver routes one in-order datagram off the redundancy layer into its
// unit's reassembler.
func (wf *WANFeed) deliver(payload []byte, _ bool) {
	var h feed.UnitHeader
	if _, err := feed.DecodeUnitHeader(payload, &h); err != nil {
		return
	}
	if int(h.Unit) >= len(wf.reasm) {
		return
	}
	_ = wf.reasm[h.Unit].Consume(payload, wf.onMsg)
}

// onMsg counts one live (or parity-reconstructed) in-order message.
func (wf *WANFeed) onMsg(*feed.Msg) {
	wf.FeedMsgs++
	wf.LastAdvanceAt = wf.sched.Now()
}

// onRecovered counts one replayed message.
func (wf *WANFeed) onRecovered(*feed.Msg) {
	wf.LastAdvanceAt = wf.sched.Now()
}

// onGap is the residual-loss path: the redundancy layer declared sequences
// lost, the reassembler saw the hole, and replay is the only healer left.
func (wf *WANFeed) onGap(gi feed.GapInfo) {
	wf.GapDgrams++
	wf.LostMsgs += uint64(gi.MsgsLost)
	wf.Requests++
	wf.PendingReplays++
	wf.cliStream.Write(feed.AppendRecoveryRequest(nil, gi.Unit, gi.Expected, gi.Got))
}

// RecoveredMsgs returns the messages replayed over the side channel.
func (wf *WANFeed) RecoveredMsgs() uint64 { return wf.recReader.Recovered }

// AccountedMsgs returns every message the remote site has seen by any route:
// in-order live/reconstructed delivery plus out-of-band replay. Replayed
// datagrams can overlap the gap range at datagram boundaries, so this can
// overshoot the published count — compare with >=, as E19 does.
func (wf *WANFeed) AccountedMsgs() uint64 { return wf.FeedMsgs + wf.recReader.Recovered }

// ReplayServed returns datagrams the exchange's replay service served to
// this mirror.
func (wf *WANFeed) ReplayServed() uint64 { return wf.srv.Served }

// RegisterMetrics registers the mirror's counters under wan.*.
func (wf *WANFeed) RegisterMetrics(reg *metrics.Registry) {
	reg.RegisterUint("wan.tx.data_frames", &wf.Sender.Stats.DataFrames)
	reg.RegisterUint("wan.tx.dup_frames", &wf.Sender.Stats.DupFrames)
	reg.RegisterUint("wan.tx.parity_frames", &wf.Sender.Stats.ParityFrames)
	reg.RegisterUint("wan.tx.data_bytes", &wf.Sender.Stats.DataBytes)
	reg.RegisterUint("wan.tx.overhead_bytes", &wf.Sender.Stats.OverheadBytes)
	reg.RegisterUint("wan.rx.delivered", &wf.Receiver.Stats.Delivered)
	reg.RegisterUint("wan.rx.reconstructed", &wf.Receiver.Stats.Reconstructed)
	reg.RegisterUint("wan.rx.duplicates", &wf.Receiver.Stats.Duplicates)
	reg.RegisterUint("wan.rx.lost_declared", &wf.Receiver.Stats.LostDeclared)
	reg.RegisterUint("wan.rx.parity_unused", &wf.Receiver.Stats.ParityUnused)
	reg.RegisterUint("wan.rx.parity_unusable", &wf.Receiver.Stats.ParityUnusable)
	reg.RegisterUint("wan.feed.msgs", &wf.FeedMsgs)
	reg.RegisterUint("wan.feed.gap_dgrams", &wf.GapDgrams)
	reg.RegisterUint("wan.feed.lost_msgs", &wf.LostMsgs)
	reg.RegisterUint("wan.replay.requests", &wf.Requests)
	reg.RegisterUint("wan.replay.recovered_msgs", &wf.recReader.Recovered)
	reg.RegisterUint("wan.replay.served_dgrams", &wf.srv.Served)
	reg.RegisterUint("wan.replay.unrecoverable", &wf.Unrecoverable)
	reg.RegisterUint("wan.ctl.switches", &wf.Controller.Switches)
	reg.RegisterUint("wan.ctl.windows_sampled", &wf.Controller.WindowsSampled)
	reg.RegisterUint("wan.ctl.windows_skipped", &wf.Controller.WindowsSkipped)
	reg.RegisterUint("wan.circuit.tx_frames", &wf.MW.PortA.TxFrames)
	reg.RegisterUint("wan.circuit.lost_frames", &wf.MW.PortA.Lost)
}
