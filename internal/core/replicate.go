package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tradenet/internal/metrics"
	"tradenet/internal/sim"
)

// RunParallel fans n independent replications across GOMAXPROCS workers and
// returns their results in seed order. Each replication builds its own
// scheduler and plant, so every simulation remains single-goroutine and
// bit-for-bit deterministic for its seed: RunParallel(seeds, run) returns
// exactly what calling run(seeds[i]) sequentially would, regardless of how
// the replications interleave on the worker pool.
//
// run must not share mutable state across calls. Everything under
// internal/sim, internal/netsim, and internal/metrics is safe: schedulers
// own their event pools, histograms are per-run, and the frame pool is a
// sync.Pool.
//
//simlint:allow goroutine: the sanctioned harness — each worker runs whole, single-goroutine replications and writes only its own disjoint results slot; output is independent of worker count
func RunParallel[T any](seeds []int64, run func(seed int64) T) []T {
	results := make([]T, len(seeds))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(seeds) {
		workers = len(seeds)
	}
	if workers <= 1 {
		for i, s := range seeds {
			results[i] = run(s)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(seeds) {
					return
				}
				results[i] = run(seeds[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// Seeds returns n consecutive seeds starting at base — the conventional way
// to name a replication set ("seeds 1..10") so any single replication can be
// re-run in isolation with -seed.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// ReplicatedDesignRow is one design's statistics merged across replications.
type ReplicatedDesignRow struct {
	Design       string
	SwitchHops   int
	SoftwareHops int
	Mean         sim.Duration
	P50          sim.Duration
	P99          sim.Duration
	Spread       sim.Duration // max seed mean − min seed mean
	Orders       int
}

// ReplicatedComparison is the design comparison replicated over several
// seeds: the per-seed runs (in seed order) plus per-design merged rows.
type ReplicatedComparison struct {
	Seeds []int64
	Runs  []DesignComparison
	Rows  []ReplicatedDesignRow
}

// RunDesignComparisonSeeds replicates RunDesignComparison across seeds in
// parallel and merges each design's round-trip samples into one
// distribution. Per-seed results stay available in Runs for variance
// inspection; each equals a sequential RunDesignComparison with that seed.
func RunDesignComparisonSeeds(sc Scenario, bursts int, seeds []int64) ReplicatedComparison {
	out := ReplicatedComparison{Seeds: seeds}
	out.Runs = RunParallel(seeds, func(seed int64) DesignComparison {
		s := sc
		s.Seed = seed
		return RunDesignComparison(s, bursts)
	})
	if len(out.Runs) == 0 {
		return out
	}
	for d := range out.Runs[0].Rows {
		h := metrics.NewHistogram()
		row := ReplicatedDesignRow{
			Design:       out.Runs[0].Rows[d].Design,
			SwitchHops:   out.Runs[0].Rows[d].SwitchHops,
			SoftwareHops: out.Runs[0].Rows[d].SoftwareHops,
		}
		var minMean, maxMean sim.Duration
		for i, run := range out.Runs {
			rt := run.Rows[d]
			for _, s := range rt.Samples {
				h.Observe(int64(s))
			}
			row.Orders += rt.Orders
			m := rt.Mean()
			if i == 0 || m < minMean {
				minMean = m
			}
			if i == 0 || m > maxMean {
				maxMean = m
			}
		}
		row.Mean = sim.Duration(h.Mean())
		row.P50 = sim.Duration(h.Quantile(0.5))
		row.P99 = sim.Duration(h.P99())
		row.Spread = maxMean - minMean
		out.Rows = append(out.Rows, row)
	}
	return out
}

// String renders the merged comparison.
func (r ReplicatedComparison) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Design,
			fmt.Sprintf("%d", row.SwitchHops),
			fmt.Sprintf("%d", row.SoftwareHops),
			row.Mean.String(),
			row.P50.String(),
			row.P99.String(),
			row.Spread.String(),
			fmt.Sprintf("%d", row.Orders),
		})
	}
	return fmt.Sprintf("Designs 1/3/2 over %d seeds (merged round-trip distributions)\n", len(r.Seeds)) +
		metrics.Table([]string{"design", "sw-hops", "fn-hops", "mean RT", "p50", "p99", "seed spread", "orders"}, rows)
}

// ReplicatedMroute is the E7 overflow cliff replicated over several seeds,
// with delivery-weighted latency means and pooled loss.
type ReplicatedMroute struct {
	Seeds []int64
	Runs  []MrouteOverflowResult

	Groups, Capacity     int
	HWMean, SWMean       sim.Duration
	HWLossPct, SWLossPct float64
}

// RunMrouteOverflowSeeds replicates RunMrouteOverflow across seeds in
// parallel and pools the hardware/software paths' latency and loss.
func RunMrouteOverflowSeeds(groups, capacity, framesPerGroup int, seeds []int64) ReplicatedMroute {
	out := ReplicatedMroute{Seeds: seeds, Groups: groups, Capacity: capacity}
	out.Runs = RunParallel(seeds, func(seed int64) MrouteOverflowResult {
		return RunMrouteOverflow(groups, capacity, framesPerGroup, seed)
	})
	var hwSum, swSum float64
	var hwDel, hwSent, swDel, swSent uint64
	for _, r := range out.Runs {
		//simlint:allow floatorder: Runs comes back from RunParallel in seed order, so this fold is pinned for a given seed list; the weighted products stay far below 2^53 and sum exactly
		hwSum += float64(r.HWMean) * float64(r.HWDelivered)
		//simlint:allow floatorder: same fixed seed-order fold as hwSum above
		swSum += float64(r.SWMean) * float64(r.SWDelivered)
		hwDel += r.HWDelivered
		hwSent += r.HWSent
		swDel += r.SWDelivered
		swSent += r.SWSent
	}
	if hwDel > 0 {
		out.HWMean = sim.Duration(hwSum / float64(hwDel))
	}
	if swDel > 0 {
		out.SWMean = sim.Duration(swSum / float64(swDel))
	}
	if hwSent > 0 {
		out.HWLossPct = (1 - float64(hwDel)/float64(hwSent)) * 100
	}
	if swSent > 0 {
		out.SWLossPct = (1 - float64(swDel)/float64(swSent)) * 100
	}
	return out
}

// String renders the pooled overflow cliff.
func (r ReplicatedMroute) String() string {
	return fmt.Sprintf(`Mroute table overflow (§3) over %d seeds: %d groups, table holds %d
  hardware groups: mean latency %v, loss %.1f%%
  software groups: mean latency %v, loss %.1f%%  ← the overflow cliff
`, len(r.Seeds), r.Groups, r.Capacity, r.HWMean, r.HWLossPct, r.SWMean, r.SWLossPct)
}
