package core

import (
	"reflect"
	"strings"
	"testing"

	"tradenet/internal/device"
	"tradenet/internal/sim"
)

// telemetryScenario: the small plant with the sampler armed at a coarse
// interval so tests stay fast.
func telemetryScenario() Scenario {
	sc := SmallScenario()
	sc.Telemetry = &TelemetrySpec{Interval: 200 * sim.Microsecond, Capacity: 256}
	return sc
}

// TestTelemetryNonPerturbation is the satellite contract: arming the
// sampler must not perturb the plant. The armed run's measurement — every
// latency sample, burst instant, and publish count — must be byte-identical
// to the unarmed run's, and the fired-event counts must differ by exactly
// the sampler's own ticks.
func TestTelemetryNonPerturbation(t *testing.T) {
	sc := SmallScenario()
	off := NewDesign1(sc, device.DefaultCommodityConfig())
	rtOff := off.MeasureRoundTrip(4)
	firedOff := off.Sched.Fired()
	pubOff := off.Ex.PublishedMsgs

	on := NewDesign1(telemetryScenario(), device.DefaultCommodityConfig())
	rtOn := on.MeasureRoundTrip(4)
	firedOn := on.Sched.Fired()

	if !reflect.DeepEqual(rtOff, rtOn) {
		t.Errorf("armed run perturbed the measurement:\noff: %+v\non:  %+v", rtOff, rtOn)
	}
	if on.Ex.PublishedMsgs != pubOff {
		t.Errorf("armed run published %d msgs, unarmed %d", on.Ex.PublishedMsgs, pubOff)
	}
	ticks := on.Tel.Sampler.Ticks()
	if ticks == 0 {
		t.Fatal("armed sampler never ticked")
	}
	if firedOn-ticks != firedOff {
		t.Errorf("fired %d armed, %d unarmed, %d ticks: armed run added non-tick events",
			firedOn, firedOff, ticks)
	}
}

// TestTelemetryArtifactDeterminism: two armed runs of one seed must emit
// byte-identical manifests (no host block is attached in core, so the whole
// encoding must match), and the artifacts must validate and carry the
// expected blocks.
func TestTelemetryArtifactDeterminism(t *testing.T) {
	run := func() DesignComparison { return RunDesignComparison(telemetryScenario(), 4) }
	a, b := run(), run()
	if len(a.Artifacts) != 3 {
		t.Fatalf("got %d artifacts, want 3 (one per design)", len(a.Artifacts))
	}
	for i := range a.Artifacts {
		art := a.Artifacts[i]
		if err := art.Validate(); err != nil {
			t.Fatalf("artifact %d invalid: %v", i, err)
		}
		first, second := art.EncodeString(), b.Artifacts[i].EncodeString()
		if first != second {
			t.Errorf("artifact %d (%s) not deterministic across runs", i, art.Meta.Design)
		}
		if art.Meta.Experiment != "designs" || art.Meta.Events == 0 || art.Registry == nil || art.Profile == nil {
			t.Errorf("artifact %d missing blocks: %+v", i, art.Meta)
		}
		if s := findSeries(art.EncodeString(), "sched.fired"); !s {
			t.Errorf("artifact %d has no sched.fired series", i)
		}
		if s := findSeries(art.EncodeString(), "exchange.published_msgs"); !s {
			t.Errorf("artifact %d has no exchange series", i)
		}
	}
	if a.Artifacts[0].Filename() != "designs-design1-seed1.ndjson" {
		t.Errorf("filename = %q", a.Artifacts[0].Filename())
	}
}

func findSeries(ndjson, name string) bool {
	return strings.Contains(ndjson, `{"record":"series","name":"`+name+`"`)
}

// TestTelemetryOffByDefault: the default scenario builds no telemetry
// plane and emits no artifacts.
func TestTelemetryOffByDefault(t *testing.T) {
	sc := SmallScenario()
	d := NewDesign1(sc, device.DefaultCommodityConfig())
	if d.Tel != nil {
		t.Fatal("telemetry built without the knob")
	}
	out := RunDesignComparison(sc, 2)
	if len(out.Artifacts) != 0 {
		t.Fatalf("unarmed comparison emitted %d artifacts", len(out.Artifacts))
	}
}

// TestWANRedundancyArtifact: an armed E22 cell carries time-resolved wan.*
// series plus the fault timeline and decision log as structured records.
func TestWANRedundancyArtifact(t *testing.T) {
	sc := telemetryScenario()
	sc.Seed = 3
	sc.WANRedundancy = true
	res := runWANRedundancy(wanPlantDesign1(sc), sc, wanrTimelines()[0], wanrModes()[3])
	art := res.Artifact
	if art == nil {
		t.Fatal("armed E22 cell emitted no artifact")
	}
	if err := art.Validate(); err != nil {
		t.Fatalf("artifact invalid: %v", err)
	}
	enc := art.EncodeString()
	if !findSeries(enc, "wan.rx.delivered") || !findSeries(enc, "wan.ctl.switches") {
		t.Error("wan.* series missing from artifact")
	}
	if len(art.Faults) != 1 || art.Faults[0].Log != res.FaultLog || art.Faults[0].Log == "" {
		t.Error("fault timeline not attached")
	}
	if len(art.Decisions) != 1 || art.Decisions[0].Log != res.DecisionLog {
		t.Error("decision log not attached")
	}
	if art.Meta.Cell != "squall adaptive" {
		t.Errorf("cell = %q", art.Meta.Cell)
	}
}
