package core

import (
	"strings"
	"testing"

	"tradenet/internal/sim"
)

func TestRunFilteredMerge(t *testing.T) {
	r := RunFilteredMerge([]int{4}, 20, 5)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	row := r.Rows[0]
	if row.RawDropped == 0 {
		t.Fatal("raw 4-way merge at ~2x line rate should drop")
	}
	if row.FilteredDropped != 0 {
		t.Fatalf("filtered merge dropped %d", row.FilteredDropped)
	}
	// Filtered delivery is ~1/4 of the traffic (one group wanted).
	if row.FilteredDelivered >= row.RawDelivered {
		t.Fatal("filtering should reduce delivered volume")
	}
	if !strings.Contains(r.String(), "filtered") {
		t.Fatal("render incomplete")
	}
}

func TestRunPlacement(t *testing.T) {
	r := RunPlacement(4, 64, 4, 11, 10, 1)
	if r.OptimizedMeanHops > r.BaselineMeanHops {
		t.Fatalf("optimization worsened: %v → %v", r.BaselineMeanHops, r.OptimizedMeanHops)
	}
	if r.OptimizedMeanHops < r.LowerBoundHops {
		t.Fatal("below lower bound")
	}
	// The §4.1 observation: the gap does not fully close.
	if r.GapClosed > 0.9 {
		t.Fatalf("gap closed %.2f — capacity constraints should bind", r.GapClosed)
	}
	if !strings.Contains(r.String(), "lower bound") {
		t.Fatal("render incomplete")
	}
}

func TestRunGroupMapping(t *testing.T) {
	r := RunGroupMapping(1024, 64, 50, 2)
	if r.OptUnwanted >= r.NaiveUnwanted {
		t.Fatalf("clustered mapping (%.2f) should beat naive (%.2f)",
			r.OptUnwanted, r.NaiveUnwanted)
	}
	// With contiguous windows and modulo scattering, the naive mapping
	// delivers mostly junk.
	if r.NaiveUnwanted < 0.5 {
		t.Fatalf("naive unwanted = %.2f, expected heavy waste", r.NaiveUnwanted)
	}
	if r.OptUnwanted > 0.2 {
		t.Fatalf("clustered unwanted = %.2f, expected tight delivery", r.OptUnwanted)
	}
	if !strings.Contains(r.String(), "partitions") {
		t.Fatal("render incomplete")
	}
}

func TestRunGroupMappingAmpleGroups(t *testing.T) {
	// With one group per partition, both mappings deliver exactly what is
	// wanted.
	r := RunGroupMapping(64, 64, 10, 3)
	if r.NaiveUnwanted != 0 || r.OptUnwanted != 0 {
		t.Fatalf("ample groups should waste nothing: %v / %v", r.NaiveUnwanted, r.OptUnwanted)
	}
}

func TestRunTimestampPrecision(t *testing.T) {
	r := RunTimestampPrecision(5000, 4)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Inversions must be monotone nonincreasing as precision tightens.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Inversions > r.Rows[i-1].Inversions {
			t.Fatalf("inversions rose with tighter sync: %+v", r.Rows)
		}
	}
	// 1µs sync vs 80ns event spacing: heavy misordering.
	if first := r.Rows[0]; float64(first.Inversions)/float64(first.Pairs) < 0.2 {
		t.Fatalf("coarse sync misordered only %d/%d", first.Inversions, first.Pairs)
	}
	// 100ps sync (the §2 aspiration): effectively zero misordering.
	if last := r.Rows[len(r.Rows)-1]; last.Inversions != 0 {
		t.Fatalf("100ps sync misordered %d pairs", last.Inversions)
	}
	if !strings.Contains(r.String(), "sync precision") {
		t.Fatal("render incomplete")
	}
}

func TestRunFilterPlacement(t *testing.T) {
	r := RunFilterPlacement()
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// In-process cost scales linearly with consumers; middlebox cost has a
	// fixed inspection component plus the same useful work.
	if r.Rows[0].MiddleboxCores < r.Rows[0].InProcessCores {
		t.Fatal("one consumer: middlebox cannot win")
	}
	last := r.Rows[len(r.Rows)-1]
	if last.MiddleboxCores >= last.InProcessCores {
		t.Fatal("32 consumers: middlebox must win")
	}
	// Crossover exists somewhere in between.
	crossed := false
	for _, row := range r.Rows {
		if row.MiddleboxCores < row.InProcessCores {
			crossed = true
		}
	}
	if !crossed {
		t.Fatal("no crossover found")
	}
	if !strings.Contains(r.String(), "winner") {
		t.Fatal("render incomplete")
	}
}

func TestFilterPlacementInstance(t *testing.T) {
	fp := filterPlacementInstance(10)
	if fp.Consumers != 10 || fp.Rate != 1_000_000 {
		t.Fatalf("instance = %+v", fp)
	}
	if fp.DiscardCost >= fp.ProcessCost {
		t.Fatal("discarding should be cheaper than processing")
	}
	_ = sim.Nanosecond
}

func TestRunCorrelatedMerge(t *testing.T) {
	r := RunCorrelatedMerge(4, 60, 12)
	// At ~50% average load, only coincident bursts overload the merge;
	// correlation makes them coincide, so loss must be far heavier.
	// (p99 saturates at the queue depth in both cases, so loss is the
	// discriminating metric.)
	if r.CorrelatedDrops < 3*r.IndependentDrops {
		t.Fatalf("correlated drops %d not ≫ independent %d",
			r.CorrelatedDrops, r.IndependentDrops)
	}
	if r.IndependentDrops == 0 {
		t.Fatal("independent run should still see occasional coincidences")
	}
	if !strings.Contains(r.String(), "multiplexing") {
		t.Fatal("render incomplete")
	}
}

func TestRunCorePinning(t *testing.T) {
	r := RunCorePinning(50, 8)
	if r.Events == 0 {
		t.Fatal("no events measured")
	}
	// With the OS sharing the event core, worst case inherits a 50µs
	// housekeeping chunk; isolation bounds the tail to event self-queueing.
	if r.SharedMax < 20*sim.Microsecond {
		t.Fatalf("shared worst case %v too small to show blocking", r.SharedMax)
	}
	if r.PinnedMax*4 >= r.SharedMax {
		t.Fatalf("isolated max %v should be far below shared max %v", r.PinnedMax, r.SharedMax)
	}
	if r.PinnedP99 > r.SharedP99 {
		t.Fatalf("isolated p99 %v should not exceed shared %v", r.PinnedP99, r.SharedP99)
	}
	if !strings.Contains(r.String(), "Fig. 1d") {
		t.Fatal("render incomplete")
	}
}

func TestRunStaleQuotes(t *testing.T) {
	lats := []sim.Duration{2 * sim.Microsecond, 50 * sim.Microsecond}
	r := RunStaleQuotes(lats, 10, 15*sim.Microsecond, 3)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	fast, slow := r.Rows[0], r.Rows[1]
	// The fast quoter's reprice beats the 15µs aggressor every round; the
	// slow quoter loses every race.
	if fast.StaleFills != 0 {
		t.Fatalf("fast quoter picked off %d times", fast.StaleFills)
	}
	if slow.StaleFills != uint64(slow.Moves) {
		t.Fatalf("slow quoter picked off %d of %d", slow.StaleFills, slow.Moves)
	}
	// Both repriced at least once per move plus the initial quote.
	if fast.Reprices < uint64(fast.Moves) || slow.Reprices < uint64(slow.Moves) {
		t.Fatalf("reprices = %d / %d", fast.Reprices, slow.Reprices)
	}
	if !strings.Contains(r.String(), "picked off") {
		t.Fatal("render incomplete")
	}
}
