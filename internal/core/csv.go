package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"tradenet/internal/sim"
	"tradenet/internal/workload"
)

// WriteFigureCSVs regenerates the Figure 2 data series and writes them as
// CSV files (fig2a.csv, fig2b.csv, fig2c.csv) into dir, so the paper's
// plots can be reproduced with any plotting tool. It returns the files
// written.
func WriteFigureCSVs(dir string, seed int64) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string

	// Figure 2(a): daily event counts over five years.
	{
		path := filepath.Join(dir, "fig2a.csv")
		f, err := os.Create(path)
		if err != nil {
			return written, err
		}
		fmt.Fprintln(f, "trading_day,events")
		for _, d := range workload.Fig2aSeries(rand.New(rand.NewSource(seed)), workload.DefaultFig2a()) {
			fmt.Fprintf(f, "%d,%.0f\n", d.Day, d.Count)
		}
		if err := f.Close(); err != nil {
			return written, err
		}
		written = append(written, path)
	}

	// Figure 2(b): one day of 1-second windows.
	{
		path := filepath.Join(dir, "fig2b.csv")
		f, err := os.Create(path)
		if err != nil {
			return written, err
		}
		day := workload.Fig2bDay(rand.New(rand.NewSource(seed)), workload.DefaultFig2b())
		if err := day.WriteCSV(f, sim.Second, "second_of_day", "events"); err != nil {
			f.Close()
			return written, err
		}
		if err := f.Close(); err != nil {
			return written, err
		}
		written = append(written, path)
	}

	// Figure 2(c): the busiest second in 100 µs windows.
	{
		path := filepath.Join(dir, "fig2c.csv")
		f, err := os.Create(path)
		if err != nil {
			return written, err
		}
		sec := workload.Fig2cSecond(rand.New(rand.NewSource(seed)), workload.DefaultFig2c(), nil)
		if err := sec.WriteCSV(f, 100*sim.Microsecond, "window_100us", "events"); err != nil {
			f.Close()
			return written, err
		}
		if err := f.Close(); err != nil {
			return written, err
		}
		written = append(written, path)
	}
	return written, nil
}
