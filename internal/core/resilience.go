// Order-entry resilience wiring: one shared parameter set applied to all
// three designs when Scenario.OEResilience is set, so the failover
// experiment compares network shapes rather than tuning choices.
package core

import (
	"tradenet/internal/exchange"
	"tradenet/internal/firm"
	"tradenet/internal/orderentry"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
)

// Shared order-entry resilience parameters. The liveness deadline
// (Interval × MissLimit = 1.5 ms) sits under the burst spacing so a
// mid-burst session cut is detected before the next burst; the reconnect
// delay models a deliberate back-off (a real gateway re-resolves, re-dials,
// and re-authenticates before it is allowed back in).
const (
	// oeHeartbeat / oeMissLimit: heartbeat every 500 µs, declared dead
	// after three silent intervals.
	oeHeartbeat = 500 * sim.Microsecond
	oeMissLimit = 3

	// oeAckTimeout..oeMaxResubmits: first resubmit after 400 µs, backing
	// off ×2 per attempt to 3.2 ms, escalated as unknown after 4 attempts.
	oeAckTimeout    = 400 * sim.Microsecond
	oeMaxAckTimeout = 3200 * sim.Microsecond
	oeMaxResubmits  = 4

	// oeReconnectDelay / oeRequoteDelay: redial 5 ms after peer-death;
	// halted strategies re-enter the market after 4 ms.
	oeReconnectDelay = 5 * sim.Millisecond
	oeRequoteDelay   = 4 * sim.Millisecond

	// oeRetainResponses bounds the exchange's replay ring per session. At
	// SmallScenario burst rates a session sees well under this many
	// responses across an outage, so resyncs replay rather than refuse.
	oeRetainResponses = 1024

	// oeBucketCap / oeBucketRefill: per-session ingress budget — a burst
	// of 24 on top of a sustained one message per 30 µs. Sized so the
	// legacy burst load clears but a reconnect's reconcile storm sheds.
	oeBucketCap    = 24
	oeBucketRefill = 30 * sim.Microsecond

	// oeStreamMaxRTO / oeStreamDeadAfter: transport retransmits back off
	// ×2 to 3.2 ms and the stream is declared dead after 8 silent rounds.
	oeStreamMaxRTO    = 3200 * sim.Microsecond
	oeStreamDeadAfter = 8
)

// oeLiveness / oeRetry are the session-level knobs shared by every
// hardened endpoint.
func oeLiveness() orderentry.LivenessConfig {
	return orderentry.LivenessConfig{Interval: oeHeartbeat, MissLimit: oeMissLimit}
}

func oeRetry() orderentry.RetryConfig {
	return orderentry.RetryConfig{
		AckTimeout:    oeAckTimeout,
		MaxAckTimeout: oeMaxAckTimeout,
		MaxResubmits:  oeMaxResubmits,
	}
}

// oeExchangeResilience is the exchange-side configuration: liveness with
// cancel-on-disconnect, a replay ring, idempotent resubmission, and
// per-session ingress shedding. Pass to Exchange.EnableResilience before
// any AcceptSession.
func oeExchangeResilience() exchange.Resilience {
	return exchange.Resilience{
		Session: orderentry.ExchangeResilience{
			Liveness:        oeLiveness(),
			RetainResponses: oeRetainResponses,
			Idempotent:      true,
			Bucket:          orderentry.BucketConfig{Capacity: oeBucketCap, Refill: oeBucketRefill},
		},
		StreamMaxRTO:    oeStreamMaxRTO,
		StreamDeadAfter: oeStreamDeadAfter,
	}
}

// hardenGateway arms a gateway's exchange-facing session and wires its
// redial to a replacement endpoint at the exchange. clientAddr is the
// gateway's own OE address — the exchange needs it to provision the
// replacement stream.
func hardenGateway(g *firm.Gateway, ex *exchange.Exchange, sess *orderentry.ExchangeSession, clientAddr pkt.UDPAddr) {
	g.HardenExchangeSession(firm.GatewayResilience{
		Liveness:       oeLiveness(),
		Retry:          oeRetry(),
		ReconnectDelay: oeReconnectDelay,
		Reconnect: func() pkt.UDPAddr {
			return ex.OENIC().Addr(ex.ReacceptSession(sess, clientAddr))
		},
		StreamMaxRTO:    oeStreamMaxRTO,
		StreamDeadAfter: oeStreamDeadAfter,
	})
}

// hardenGatewayHA mirrors hardenGateway with the redial routed through the
// HA cluster: the replacement endpoint is provisioned by whichever exchange
// is live at redial time, addressed by the session-table index both sides
// of the replication pair share — after a failover the same closure lands
// the gateway on the promoted standby's twin session.
func hardenGatewayHA(g *firm.Gateway, ha *HACluster, idx int, clientAddr pkt.UDPAddr) {
	g.HardenExchangeSession(firm.GatewayResilience{
		Liveness:       oeLiveness(),
		Retry:          oeRetry(),
		ReconnectDelay: oeReconnectDelay,
		Reconnect: func() pkt.UDPAddr {
			return ha.Reaccept(idx, clientAddr)
		},
		StreamMaxRTO:    oeStreamMaxRTO,
		StreamDeadAfter: oeStreamDeadAfter,
	})
}

// hardenStrategyBehindGateway arms only the market-exit behavior: the
// gateway owns the exchange session, so the strategy's job is to stop
// quoting when the gateway reports the path down (RejectSessionDown /
// RejectBusy) and re-enter on the requote timer. No liveness: the
// gateway-side strategy sessions never heartbeat, so arming a deadline
// here would declare a healthy peer dead.
func hardenStrategyBehindGateway(s *firm.Strategy) {
	s.EnableResilience(firm.StrategyResilience{RequoteDelay: oeRequoteDelay})
}

// hardenTenant arms a cloud tenant that holds its exchange session
// directly: the full gateway treatment (liveness, retry, reconnect with
// replay) plus the strategy's quote halt.
func hardenTenant(s *firm.Strategy, ex *exchange.Exchange, sess *orderentry.ExchangeSession, clientAddr pkt.UDPAddr) {
	s.EnableResilience(firm.StrategyResilience{
		Liveness:       oeLiveness(),
		Retry:          oeRetry(),
		ReconnectDelay: oeReconnectDelay,
		Reconnect: func() pkt.UDPAddr {
			return ex.OENIC().Addr(ex.ReacceptSession(sess, clientAddr))
		},
		RequoteDelay:    oeRequoteDelay,
		StreamMaxRTO:    oeStreamMaxRTO,
		StreamDeadAfter: oeStreamDeadAfter,
	})
}

// hardenTenantHA is hardenTenant with the redial routed through the HA
// cluster (see hardenGatewayHA).
func hardenTenantHA(s *firm.Strategy, ha *HACluster, idx int, clientAddr pkt.UDPAddr) {
	s.EnableResilience(firm.StrategyResilience{
		Liveness:       oeLiveness(),
		Retry:          oeRetry(),
		ReconnectDelay: oeReconnectDelay,
		Reconnect: func() pkt.UDPAddr {
			return ha.Reaccept(idx, clientAddr)
		},
		RequoteDelay:    oeRequoteDelay,
		StreamMaxRTO:    oeStreamMaxRTO,
		StreamDeadAfter: oeStreamDeadAfter,
	})
}
