package core

import (
	"fmt"

	"tradenet/internal/device"
	"tradenet/internal/metrics"
	"tradenet/internal/netsim"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/units"
	"tradenet/internal/workload"
)

// CorrelatedMergeResult compares merging independent bursty feeds against
// merging feeds whose bursts are coupled (§2: "bursts across different
// feeds are often correlated because the underlying market conditions are
// related"). Same long-run load either way; correlation concentrates the
// peaks, so the merged queue sees them simultaneously.
type CorrelatedMergeResult struct {
	FanIn            int
	IndependentP99   sim.Duration
	IndependentDrops uint64
	CorrelatedP99    sim.Duration
	CorrelatedDrops  uint64
}

// RunCorrelatedMerge merges fanIn feeds onto one 10G L1S output twice: once
// with independent per-feed burst processes, once with a shared burst
// condition, at matched average rates.
func RunCorrelatedMerge(fanIn, millis int, seed int64) CorrelatedMergeResult {
	res := CorrelatedMergeResult{FanIn: fanIn}
	// Calibrated so the average load is ~50% of line rate and a single
	// feed's burst still fits — only *coincident* bursts overload the
	// merge, which is precisely what correlation manufactures.
	const (
		quietRate = 150_000.0
		factor    = 8.0
	)
	quietDwell, burstDwell := 2*sim.Millisecond, 200*sim.Microsecond

	run := func(correlated bool) (sim.Duration, uint64) {
		sched := sim.NewScheduler(seed)
		sw := device.NewL1Switch(sched, "l1s", fanIn+1, device.DefaultL1SConfig())
		lat := metrics.NewHistogram()
		sink := &latencySink{sched: sched, h: lat}
		sink.port = netsim.NewPort(sched, sink, "rx")
		netsim.Connect(sw.Port(fanIn), sink.port, units.Rate10G, 0)

		end := sim.Time(sim.Duration(millis) * sim.Millisecond)
		txs := make([]*netsim.Port, fanIn)
		for i := 0; i < fanIn; i++ {
			txs[i] = netsim.NewPort(sched, nil, fmt.Sprintf("tx%d", i))
			txs[i].SetQueueCapacity(1 << 26)
			netsim.Connect(txs[i], sw.Port(i), units.Rate10G, 0)
			sw.Circuit(i, fanIn)
		}
		payload := make([]byte, 558)
		send := func(feed int) {
			src := pkt.UDPAddr{MAC: pkt.HostMAC(uint32(feed + 1)), IP: pkt.HostIP(uint32(feed + 1)), Port: 1}
			dst := pkt.UDPAddr{MAC: pkt.HostMAC(99), IP: pkt.HostIP(99), Port: 2}
			txs[feed].Send(&netsim.Frame{Data: pkt.AppendUDPFrame(nil, src, dst, 0, payload), Origin: sched.Now()})
		}
		if correlated {
			rates := make([]float64, fanIn)
			for i := range rates {
				rates[i] = quietRate
			}
			cf := workload.NewCorrelatedFeeds(rates, factor, quietDwell, burstDwell)
			cf.Generate(sched, 0, end, send)
		} else {
			for i := 0; i < fanIn; i++ {
				i := i
				m := workload.NewMMPP(
					workload.MMPPState{Rate: quietRate, MeanDwell: quietDwell},
					workload.MMPPState{Rate: quietRate * factor, MeanDwell: burstDwell},
				)
				workload.Generate(sched, m, 0, end, func() { send(i) })
			}
		}
		sched.Run()
		return sim.Duration(lat.P99()), sw.Port(fanIn).Drops
	}

	res.IndependentP99, res.IndependentDrops = run(false)
	res.CorrelatedP99, res.CorrelatedDrops = run(true)
	return res
}

// String renders the comparison.
func (r CorrelatedMergeResult) String() string {
	return fmt.Sprintf(`Correlated vs independent bursts into a %d-way merge (§2)
  independent bursts: p99 %v, drops %d
  correlated bursts:  p99 %v, drops %d
  correlation defeats statistical multiplexing: all feeds peak at once, so
  the merge sees the sum of the bursts, not their average.
`, r.FanIn, r.IndependentP99, r.IndependentDrops, r.CorrelatedP99, r.CorrelatedDrops)
}
