package core

import (
	"fmt"

	"tradenet/internal/metrics"
	"tradenet/internal/netsim"
	"tradenet/internal/sim"
	"tradenet/internal/workload"
)

// CorePinningResult is the Fig. 1(d) ablation: why trading servers
// partition cores between the OS and latency-critical work. The event
// thread owns core 0 in both configurations (that is where its socket
// lives); the difference is whether OS/housekeeping chunks may be scheduled
// onto core 0 too (shared, the OS default) or are confined to core 1
// (isolated, the Fig. 1d discipline). A 500 ns event that lands behind a
// 50 µs housekeeping chunk inherits the chunk's remaining runtime — a fat,
// unpredictable tail that isolation removes entirely.
type CorePinningResult struct {
	SharedP99 sim.Duration
	PinnedP99 sim.Duration
	SharedMax sim.Duration
	PinnedMax sim.Duration
	Events    int64
}

// RunCorePinning drives the Figure 2(c) burst structure as the event
// workload against periodic housekeeping, on shared versus pinned cores.
func RunCorePinning(millis int, seed int64) CorePinningResult {
	const (
		eventCost = 500 * sim.Nanosecond
		osCost    = 50 * sim.Microsecond
		osPeriod  = 200 * sim.Microsecond
	)
	run := func(pinned bool) *metrics.Histogram {
		sched := sim.NewScheduler(seed)
		cores := netsim.NewCoreSet(sched, 2)
		h := metrics.NewHistogram()
		end := sim.Time(sim.Duration(millis) * sim.Millisecond)

		// Housekeeping: a 50µs chunk every 200µs (kernel ticks, GC-ish
		// runtime work, management agents). Isolated: confined to core 1.
		// Shared: the OS scheduler places it blindly — it has no idea which
		// core carries latency-critical work — so half the chunks land on
		// the event core.
		stop := sched.Every(0, osPeriod, func() {
			if pinned {
				cores.SubmitTo(1, osCost, nil)
			} else {
				cores.SubmitTo(sched.Rand().Intn(cores.Cores()), osCost, nil)
			}
		})
		defer stop()

		// Latency-critical events: the Fig 2(c) microburst process scaled
		// down; each event costs 500ns of CPU and its completion latency is
		// the measurement.
		proc := workload.NewMMPP(
			workload.MMPPState{Rate: 120_000, MeanDwell: 2 * sim.Millisecond},
			workload.MMPPState{Rate: 1_000_000, MeanDwell: 120 * sim.Microsecond},
		)
		workload.Generate(sched, proc, 0, end, func() {
			arrive := sched.Now()
			complete := func() { h.Observe(int64(sched.Now().Sub(arrive))) }
			// The event thread always runs on core 0.
			cores.SubmitTo(0, eventCost, complete)
		})
		sched.RunUntil(end.Add(10 * sim.Millisecond))
		return h
	}
	shared := run(false)
	pinnedH := run(true)
	return CorePinningResult{
		SharedP99: sim.Duration(shared.P99()),
		PinnedP99: sim.Duration(pinnedH.P99()),
		SharedMax: sim.Duration(shared.Max()),
		PinnedMax: sim.Duration(pinnedH.Max()),
		Events:    pinnedH.Count(),
	}
}

// String renders the pinning comparison.
func (r CorePinningResult) String() string {
	return fmt.Sprintf(`Core pinning (Fig. 1d): %d market-data events vs 50µs housekeeping chunks
  OS shares the event core:   p99 %v, worst %v
  OS isolated to core 1:      p99 %v, worst %v
  an event behind a housekeeping chunk inherits its runtime; isolating the
  OS bounds the event tail to the event workload alone (Fig. 1d).
`, r.Events, r.SharedP99, r.SharedMax, r.PinnedP99, r.PinnedMax)
}
