package core

import (
	"fmt"
	"strings"

	"tradenet/internal/exchange"
	"tradenet/internal/fault"
	"tradenet/internal/metrics"
	"tradenet/internal/netsim"
	"tradenet/internal/orderentry"
	"tradenet/internal/pkt"
	"tradenet/internal/replication"
	"tradenet/internal/sim"
	"tradenet/internal/units"
)

// Exchange high availability (Scenario.ExchangeHA): a hot-standby exchange
// pair built from internal/replication's journal plus the exchange's shadow
// machinery.
//
//	primary exchange ─ journal tap ─► dedicated stream ─► follower ─► shadow apply
//	                                                                  (dark standby)
//
// The primary journals every accepted operation, every response byte, and
// every feed datagram; the standby applies them into shadow books, session
// transcripts, and feed retain windows. Liveness is the journal itself:
// once Start is called the primary heartbeats the journal on a fixed
// cadence, and a standby-side watchdog promotes after haDeadAfter of
// silence. Promotion unmutes the shadow sessions under a widened liveness
// grace (clients need time to detect the death and redial), and re-homed
// sessions resync by replay against the adopted transcripts — the same
// PR 5 sequence-resync path an ordinary reconnect takes. Feed numbering
// continues from the adopted datagrams, so downstream arbiters and
// recovery clients see at most an ordinary gap, never a restart.
//
// Until Start, the pair replicates passively and never self-arms a tick,
// so knob-on plants still drain their event queues; runs that Start the
// cluster bound themselves with RunUntil (the WANFeed controller idiom).

// HA side-channel host IDs (disjoint from the plant's ranges and from the
// wanfeed pair), stream ports, and the standby exchange's host ID.
const (
	idExchangeBak = 110
	idHAPri       = 92
	idHABak       = 93

	haPriPort = 5200
	haBakPort = 5201

	// haLinkLatency is the replication link's one-way latency — an
	// intra-facility cross-connect, not a WAN.
	haLinkLatency = 5 * sim.Microsecond

	// haHeartbeat / haDeadAfter: the primary journals a keepalive every
	// 250 µs; the standby promotes after 1 ms of journal silence (four
	// silent intervals). Detection must finish well inside the clients'
	// own liveness-plus-redial window (~6.5 ms) so the promoted venue is
	// up before the first relogon arrives.
	haHeartbeat = 250 * sim.Microsecond
	haDeadAfter = 1 * sim.Millisecond

	// haGraceMissLimit widens the promoted sessions' liveness deadline to
	// Interval × 20 = 10 ms: wide enough for a client to detect the
	// primary's death (1.5 ms), back off (5 ms), and relogon before
	// cancel-on-disconnect would sweep its resting orders.
	haGraceMissLimit = 20
)

// haGrace is the session resilience the promoted standby re-arms with.
func haGrace() orderentry.ExchangeResilience {
	cfg := oeExchangeResilience().Session
	cfg.Liveness.MissLimit = haGraceMissLimit
	return cfg
}

// HACluster owns one primary/standby exchange pair: the replication link
// between them, the journal heartbeat, the promotion watchdog, and the
// session re-home routing.
type HACluster struct {
	Sched    *sim.Scheduler
	Primary  *exchange.Exchange
	Backup   *exchange.Exchange
	Journal  *replication.Journal
	Follower *replication.Follower

	// OnPromote, if set, runs immediately after the standby promotes —
	// designs hook fabric re-steering here (e.g. the cloud equalizer's
	// standby-port swap).
	OnPromote func()

	// HeartbeatsSent / WatchdogTicks / Promotions are the cluster's own
	// counters (journal and follower volumes live on those structs).
	HeartbeatsSent uint64
	WatchdogTicks  uint64
	Promotions     uint64

	// PromotedAt is the promotion instant (zero while the primary lives);
	// AppliedAtPromote snapshots the follower's applied-record count at
	// that instant — the "journal replay depth" observable is the delta
	// against the count at crash time.
	PromotedAt       sim.Time
	AppliedAtPromote uint64

	priStream    *netsim.Stream
	lastRecordAt sim.Time
	promoted     bool
	started      bool
	log          strings.Builder
}

// NewHACluster wires primary and backup into a replication pair: the backup
// goes dark, a dedicated loss-free stream carries the journal, and every
// record applies into the shadow on arrival. Call before the design accepts
// any order-entry session, so session-table deltas reach the standby.
func NewHACluster(sched *sim.Scheduler, primary, backup *exchange.Exchange) *HACluster {
	c := &HACluster{Sched: sched, Primary: primary, Backup: backup}
	backup.StartShadow()
	c.Follower = &replication.Follower{Apply: func(r *replication.Record) {
		c.lastRecordAt = sched.Now()
		backup.ShadowApply(r)
	}}

	priNIC := netsim.NewHost(sched, "ha-journal-pri").AddNIC("jrn", idHAPri)
	bakNIC := netsim.NewHost(sched, "ha-journal-bak").AddNIC("jrn", idHABak)
	netsim.Connect(priNIC.Port, bakNIC.Port, units.Rate10G, haLinkLatency)
	priMux := netsim.NewStreamMux(priNIC)
	bakMux := netsim.NewStreamMux(bakNIC)
	c.priStream = netsim.NewStream(priNIC, haPriPort, bakNIC.Addr(haBakPort))
	bakStream := netsim.NewStream(bakNIC, haBakPort, priNIC.Addr(haPriPort))
	priMux.Register(c.priStream)
	bakMux.Register(bakStream)
	bakStream.OnData = func(b []byte) {
		if err := c.Follower.Receive(b); err != nil {
			// The link is loss-free and ordered; a gap is a bug, not weather.
			panic(fmt.Sprintf("ha: journal follower: %v", err))
		}
	}
	c.Journal = primary.EnableJournal(func(b []byte) { c.priStream.Write(b) })
	return c
}

// Start arms the liveness loop: journal heartbeats on the primary and the
// promotion watchdog on the standby. Both ticks stop on their own once the
// primary dies and the standby promotes; until a crash they re-arm forever,
// so Start-ed runs bound themselves with RunUntil.
func (c *HACluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.lastRecordAt = c.Sched.Now()
	c.Sched.AtPrio(c.Sched.Now().Add(haHeartbeat), sim.PrioControl, c.heartbeatTick)
	c.Sched.AtPrio(c.Sched.Now().Add(haHeartbeat), sim.PrioControl, c.watchdogTick)
}

func (c *HACluster) heartbeatTick() {
	if c.Primary.Crashed() {
		return // a corpse does not heartbeat; the tick dies with it
	}
	c.Journal.Heartbeat()
	c.HeartbeatsSent++
	c.Sched.AtPrio(c.Sched.Now().Add(haHeartbeat), sim.PrioControl, c.heartbeatTick)
}

func (c *HACluster) watchdogTick() {
	if c.promoted {
		return
	}
	c.WatchdogTicks++
	now := c.Sched.Now()
	if now.Sub(c.lastRecordAt) >= haDeadAfter {
		c.promote(now)
		return
	}
	c.Sched.AtPrio(now.Add(haHeartbeat), sim.PrioControl, c.watchdogTick)
}

// promote is the failover decision: the journal has been silent past the
// deadline, so the primary is presumed dead and the standby takes over.
func (c *HACluster) promote(now sim.Time) {
	c.promoted = true
	c.Promotions++
	c.PromotedAt = now
	c.AppliedAtPromote = c.Follower.Applied
	c.logf(now, "journal silent %dps (last record t=%dps); declaring primary %s dead",
		int64(now.Sub(c.lastRecordAt)), int64(c.lastRecordAt), c.Primary.FaultName())
	c.Backup.Promote(haGrace())
	c.logf(now, "promoted %s: applied %d records (journal seq %d), %d sessions, grace deadline %dps",
		c.Backup.FaultName(), c.Follower.Applied, c.Follower.LastSeq(),
		c.Backup.NumSessions(), int64(oeHeartbeat)*haGraceMissLimit)
	if c.OnPromote != nil {
		c.OnPromote()
	}
}

// Promoted reports whether the standby has taken over.
func (c *HACluster) Promoted() bool { return c.promoted }

// Active returns the exchange currently serving: the standby once promoted,
// the primary until then.
func (c *HACluster) Active() *exchange.Exchange {
	if c.promoted {
		return c.Backup
	}
	return c.Primary
}

// Reaccept provisions a replacement order-entry endpoint for the client on
// session-table index idx, at whichever exchange is live — the HA-aware
// form of Exchange.ReacceptSession that redial closures route through. Both
// machines allocate session indexes in accept order, so idx addresses the
// same logical session on either.
func (c *HACluster) Reaccept(idx int, clientAddr pkt.UDPAddr) pkt.UDPAddr {
	ex := c.Active()
	return ex.OENIC().Addr(ex.ReacceptSession(ex.SessionAt(idx), clientAddr))
}

// FaultName implements fault.Process, naming the primary (the process a
// failover plan kills).
func (c *HACluster) FaultName() string { return c.Primary.FaultName() }

// Crash implements fault.Process: the primary process dies, taking its
// journal transport with it. Records already on the wire still deliver —
// that in-flight tail is what the standby replays before promoting.
func (c *HACluster) Crash() {
	c.Primary.Crash()
	c.priStream.Kill()
	c.logf(c.Sched.Now(), "primary %s crashed (journal seq %d, %d records sent)",
		c.Primary.FaultName(), c.Journal.Seq(), c.Journal.Records)
}

// Restart implements fault.Process; the HA design promotes the standby
// instead of resurrecting a primary, so this only clears the crash flag.
func (c *HACluster) Restart() { c.Primary.Restart() }

// Compile-time check: a cluster is a schedulable fault target.
var _ fault.Process = (*HACluster)(nil)

// RegisterMetrics registers the cluster's counters under ha.*.
func (c *HACluster) RegisterMetrics(reg *metrics.Registry) {
	reg.RegisterUint("ha.journal.records", &c.Journal.Records)
	reg.RegisterUint("ha.journal.bytes", &c.Journal.Bytes)
	reg.RegisterUint("ha.follower.applied", &c.Follower.Applied)
	reg.RegisterUint("ha.follower.bytes", &c.Follower.Bytes)
	reg.RegisterUint("ha.heartbeats_sent", &c.HeartbeatsSent)
	reg.RegisterUint("ha.watchdog.ticks", &c.WatchdogTicks)
	reg.RegisterUint("ha.promotions", &c.Promotions)
	reg.RegisterUint("ha.executions.primary", &c.Primary.Executions)
	reg.RegisterUint("ha.executions.backup", &c.Backup.Executions)
}

// DecisionLog returns the deterministic failover decision log (virtual-time
// stamped), for the manifest's decisions block.
func (c *HACluster) DecisionLog() string { return c.log.String() }

func (c *HACluster) logf(at sim.Time, format string, args ...any) {
	fmt.Fprintf(&c.log, "t=%dps ", int64(at))
	fmt.Fprintf(&c.log, format, args...)
	c.log.WriteByte('\n')
}
