package core

import (
	"fmt"

	"tradenet/internal/device"
	"tradenet/internal/exchange"
	"tradenet/internal/fault"
	"tradenet/internal/firm"
	"tradenet/internal/metrics"
	"tradenet/internal/orderentry"
	"tradenet/internal/sim"
)

// Order-entry failover experiment (E21): kill the order-entry path of one
// participant mid-burst in each of the three designs and watch the session
// layer put the world back together. The victim's transport dies instantly
// (a process crash on the OE path); the exchange only learns through
// heartbeat silence, then cancels everything the dead session owns
// (cancel-on-disconnect) and publishes the removals on the feed. The victim
// redials after a deliberate back-off, resyncs by sequence, receives the
// retained responses it missed — acks, fills, and the cancel-on-disconnect
// cancels — and reconciles its working-order view off the replay. Orders
// whose acks died on the wire are resubmitted and absorbed by the
// exchange's idempotent duplicate handling, so nothing executes twice.
//
// The run checks the invariants that make such a recovery trustworthy:
//
//   - no duplicate fills: no client order ever fills past its submitted
//     quantity (Overfills == 0), even though in-flight orders are resubmitted;
//   - no orphaned liquidity: a probe between cancel-on-disconnect and the
//     redial finds zero resting orders owned by the dead session;
//   - reconciled views: at the end of the run every client's working-order
//     set is byte-for-byte the exchange's view of that session's book;
//   - determinism: the whole faulted run is a pure function of the seed
//     (the test reruns it and compares reports byte for byte).

// Session-kill schedule: bursts every oefBurstInterval from oefBurstStart;
// the victim dies just before burst oefDropBurst publishes, so that burst's
// orders fly into the dead transport. The orphan probe lands after the
// liveness deadline (1.5–2 ms to detect) but before the redial
// (oeReconnectDelay after detection).
const (
	oefBursts        = 10
	oefBurstInterval = 2 * sim.Millisecond
	oefDropBurst     = 3
	oefOrphanProbe   = 4 * sim.Millisecond
	oefDrain         = 11 * sim.Millisecond
)

// oePlant is one design reduced to what the session-kill run needs: the
// scheduler, the exchange, the session pairs (exchange side index-aligned
// with client side), and the victim endpoint (always index 0).
type oePlant struct {
	name    string
	sched   *sim.Scheduler
	ex      *exchange.Exchange
	exSess  []*orderentry.ExchangeSession
	clients []*orderentry.ClientSession
	victim  fault.SessionDropper
	gws     []*firm.Gateway // nil in the cloud design
	strats  []*firm.Strategy
}

func oePlantDesign1(sc Scenario) oePlant {
	d := NewDesign1(sc, device.DefaultCommodityConfig())
	p := oePlant{
		name: "Design 1 (leaf-spine)", sched: d.Sched, ex: d.Ex,
		exSess: d.ExSessions, victim: d.Gws[0], gws: d.Gws, strats: d.Strats,
	}
	for _, g := range d.Gws {
		p.clients = append(p.clients, g.ExchangeSession())
	}
	return p
}

func oePlantDesign2(sc Scenario) oePlant {
	lats := []sim.Duration{5 * sim.Microsecond, 20 * sim.Microsecond, 12 * sim.Microsecond}
	d := NewDesign2(sc, lats, true)
	p := oePlant{
		name: "Design 2 (cloud)", sched: d.Sched, ex: d.Ex,
		exSess: d.ExSessions, victim: d.Strats[0], strats: d.Strats,
	}
	for _, s := range d.Strats {
		p.clients = append(p.clients, s.Session())
	}
	return p
}

func oePlantDesign3(sc Scenario) oePlant {
	d := NewDesign3(sc, 0)
	p := oePlant{
		name: "Design 3 (L1S)", sched: d.Sched, ex: d.Ex,
		exSess: d.ExSessions, victim: d.Gws[0], gws: d.Gws, strats: d.Strats,
	}
	for _, g := range d.Gws {
		p.clients = append(p.clients, g.ExchangeSession())
	}
	return p
}

// OEDesignRun is one design's session-kill run.
type OEDesignRun struct {
	Design string
	Victim string

	// Invariant probes. DetectIn is drop → exchange-side peer-death
	// (cancel-on-disconnect instant); OrphansAtProbe is the dead session's
	// resting-order count after cancel-on-disconnect (must be 0);
	// ViewMismatch counts sessions whose end-of-run client working-order
	// set differs from the exchange's (must be 0); Overfills counts fills
	// past submitted quantity — the duplicate-execution signature (must
	// be 0).
	DetectIn       sim.Duration
	OrphansAtProbe int
	ViewMismatch   int
	Overfills      uint64

	// Resilience machinery counters, summed across sessions.
	CODCancels    uint64 // exchange cancels issued by cancel-on-disconnect
	Replayed      uint64 // retained responses replayed at resync
	DupSuppressed uint64 // idempotent duplicate submissions absorbed
	ResyncRefused uint64 // resyncs refused (retain window rolled out)
	Resubmits     uint64 // client new-order re-emissions
	BusyRejects   uint64 // submissions shed by the ingress token bucket
	Reconnects    uint64 // sessions redialed
	Halts         uint64 // strategy quote halts
	Resumes       uint64 // strategy quote resumptions
	Rejected      uint64 // requests failed fast while the path was down
	Unknowns      uint64 // orders escalated as unknown

	Orders   uint64 // orders the exchange accepted over the run
	Registry string // metrics registry dump (oe.* et al.)
	FaultLog string
}

// runOEDesign runs the session-kill schedule against one plant.
func runOEDesign(p oePlant, sc Scenario) OEDesignRun {
	res := OEDesignRun{Design: p.name, Victim: p.victim.FaultName()}
	sched := p.sched

	perBurst := sc.BurstMessages / oefBursts
	if perBurst < 1 {
		perBurst = 1
	}
	burstStart := sim.Time(5 * sim.Millisecond) // logons drain first
	// The drop lands inside burst oefDropBurst's tick-to-trade window: the
	// burst has published and its orders are mid-flight on the OE path, so
	// the kill catches unacknowledged orders and in-flight responses — the
	// hardest case for the replay/resubmit reconciliation.
	dropAt := burstStart.Add(sim.Duration(oefDropBurst)*oefBurstInterval + 12*sim.Microsecond)

	plan := fault.NewPlan(sched)
	plan.SessionDrop(p.victim, dropAt)

	for b := 0; b < oefBursts; b++ {
		sched.At(burstStart.Add(sim.Duration(b)*oefBurstInterval), func() {
			p.ex.PublishBurst(sched.Rand(), perBurst)
		})
	}
	p.ex.OnOrderAccepted = func(*orderentry.Msg, sim.Time) { res.Orders++ }

	// Stamp the exchange-side death declaration without disturbing the
	// cancel-on-disconnect hook it triggers.
	vSess := p.exSess[0]
	onDead := vSess.OnPeerDead
	vSess.OnPeerDead = func() {
		if res.DetectIn == 0 {
			res.DetectIn = sched.Now().Sub(dropAt)
		}
		if onDead != nil {
			onDead()
		}
	}

	// Orphan probe: after cancel-on-disconnect, before the redial, nothing
	// in the book may still belong to the dead session.
	sched.AtPrio(dropAt.Add(oefOrphanProbe), sim.PrioReport, func() {
		res.OrphansAtProbe = p.ex.OpenOrdersOf(vSess)
	})

	// Liveness timers re-arm forever, so the run bounds itself by deadline
	// rather than queue exhaustion.
	end := burstStart.Add(sim.Duration(oefBursts)*oefBurstInterval + oefDrain)
	sched.RunUntil(end)

	// Reconciliation invariant: every client's working-order view must
	// equal the exchange's view of that session, victim included.
	for i, es := range p.exSess {
		if !equalIDs(p.ex.WorkingOrders(es), p.clients[i].OpenIDs()) {
			res.ViewMismatch++
		}
	}

	res.CODCancels = p.ex.CancelOnDisconnect
	for _, es := range p.exSess {
		res.Replayed += es.ReplayedMsgs
		res.DupSuppressed += es.DupSuppressed
		res.ResyncRefused += es.ResyncRefused
		res.BusyRejects += es.BusyRejects
	}
	for _, cs := range p.clients {
		res.Resubmits += cs.Resubmits
		res.Overfills += cs.Overfills
	}
	for _, g := range p.gws {
		res.Reconnects += g.Reconnects
		res.Rejected += g.SessionDownRejects
		res.Unknowns += g.Unknowns
	}
	for _, s := range p.strats {
		res.Halts += s.Halts
		res.Resumes += s.Resumes
		if p.gws == nil { // cloud: strategies own the session machinery
			res.Reconnects += s.Reconnects
			res.Unknowns += s.UnknownOrders
		}
	}

	reg := metrics.NewRegistry()
	reg.RegisterUint("oe.retries", &res.Resubmits)
	reg.RegisterUint("oe.busy_rejects", &res.BusyRejects)
	reg.RegisterUint("oe.cancel_on_disconnect", &p.ex.CancelOnDisconnect)
	reg.RegisterUint("oe.sessions_dropped", &p.ex.SessionsDropped)
	reg.RegisterUint("oe.replayed", &res.Replayed)
	reg.RegisterUint("oe.dup_suppressed", &res.DupSuppressed)
	reg.RegisterUint("oe.reconnects", &res.Reconnects)
	reg.RegisterUint("oe.halts", &res.Halts)
	res.Registry = reg.String()
	res.FaultLog = plan.LogString()
	return res
}

// equalIDs compares two sorted id slices.
func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// InvariantsOK reports whether a run upheld the recovery contract.
func (r OEDesignRun) InvariantsOK() bool {
	return r.DetectIn > 0 && // the exchange noticed the death
		r.OrphansAtProbe == 0 && // cancel-on-disconnect cleared the book
		r.ViewMismatch == 0 && // every view reconciled
		r.Overfills == 0 && // nothing executed twice
		r.Reconnects > 0 // the victim made it back in
}

// OEFailoverResult is one seed's three design runs.
type OEFailoverResult struct {
	Seed    int64
	Designs []OEDesignRun
}

// OEFailoverReport is the order-entry failover experiment replicated
// across seeds.
type OEFailoverReport struct {
	Seeds []int64
	Runs  []OEFailoverResult
}

// AllInvariantsOK reports whether every design run of every seed upheld
// the recovery contract.
func (r OEFailoverReport) AllInvariantsOK() bool {
	for _, run := range r.Runs {
		for _, d := range run.Designs {
			if !d.InvariantsOK() {
				return false
			}
		}
	}
	return true
}

// RunOEFailover kills the order-entry path mid-burst in all three designs
// for every seed, in parallel, results in seed order. Each run is a pure
// function of its seed.
func RunOEFailover(sc Scenario, seeds []int64) OEFailoverReport {
	s := sc
	s.OEResilience = true
	out := OEFailoverReport{Seeds: seeds}
	out.Runs = RunParallel(seeds, func(seed int64) OEFailoverResult {
		sd := s
		sd.Seed = seed
		return OEFailoverResult{
			Seed: seed,
			Designs: []OEDesignRun{
				runOEDesign(oePlantDesign1(sd), sd),
				runOEDesign(oePlantDesign2(sd), sd),
				runOEDesign(oePlantDesign3(sd), sd),
			},
		}
	})
	return out
}

// String renders the report: one table row per seed×design, the first
// seed's metrics registry, and the first seed's fault timeline.
func (r OEFailoverReport) String() string {
	rows := make([][]string, 0, len(r.Runs)*3)
	for _, run := range r.Runs {
		for _, d := range run.Designs {
			verdict := "ok"
			if !d.InvariantsOK() {
				verdict = "VIOLATED"
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", run.Seed),
				d.Design,
				d.Victim,
				d.DetectIn.String(),
				fmt.Sprintf("%d", d.OrphansAtProbe),
				fmt.Sprintf("%d", d.CODCancels),
				fmt.Sprintf("%d", d.Replayed),
				fmt.Sprintf("%d/%d", d.Resubmits, d.DupSuppressed),
				fmt.Sprintf("%d", d.BusyRejects),
				fmt.Sprintf("%d", d.Reconnects),
				fmt.Sprintf("%d/%d", d.Halts, d.Resumes),
				fmt.Sprintf("%d", d.Rejected),
				fmt.Sprintf("%d", d.Orders),
				verdict,
			})
		}
	}
	out := fmt.Sprintf("Order-entry session failover, %d seed(s)\n\n", len(r.Seeds))
	out += "A participant's OE path dies mid-burst; the exchange detects via heartbeat\n" +
		"silence, cancels the dead session's orders, and the victim redials, resyncs by\n" +
		"sequence, and reconciles off the replayed responses. Invariants: no orphaned\n" +
		"resting orders, no duplicate executions, client and exchange views equal.\n"
	out += metrics.Table(
		[]string{"seed", "design", "victim", "detect", "orphans", "COD", "replayed",
			"resub/dup", "shed", "redials", "halts/resumes", "fastfail", "orders", "invariants"},
		rows)
	if len(r.Runs) > 0 {
		first := r.Runs[0]
		out += fmt.Sprintf("\nMetrics registry (seed %d, %s):\n%s", first.Seed,
			first.Designs[0].Design, first.Designs[0].Registry)
		out += fmt.Sprintf("\nFault timeline (seed %d):\n", first.Seed)
		for _, d := range first.Designs {
			out += fmt.Sprintf("  %s:\n%s", d.Design, indent(d.FaultLog))
		}
	}
	return out
}

// indent shifts a rendered block right by two spaces for nesting.
func indent(s string) string {
	out := ""
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out += "  " + s[:i] + "\n"
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}
