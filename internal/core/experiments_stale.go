package core

import (
	"fmt"

	"tradenet/internal/device"
	"tradenet/internal/exchange"
	"tradenet/internal/feed"
	"tradenet/internal/firm"
	"tradenet/internal/market"
	"tradenet/internal/mcast"
	"tradenet/internal/metrics"
	"tradenet/internal/netsim"
	"tradenet/internal/orderentry"
	"tradenet/internal/sim"
	"tradenet/internal/units"
)

// StaleQuoteResult is the paper's central claim, quantified: "the most
// important requirement is to be fast — the likelihood that an order will
// be profitable rapidly decays as the market data it was based on becomes
// stale ... exchanges will continue matching with an old order's price
// until it is updated, making trades that are no longer desired" (§1–§2).
// A market maker repricing with latency L races aggressors reacting to the
// same move; every race it loses is a fill at a price it no longer wants.
type StaleQuoteResult struct {
	Rows []StaleQuoteRow
}

// StaleQuoteRow is one quoter-latency level.
type StaleQuoteRow struct {
	DecisionLatency sim.Duration
	Moves           int
	StaleFills      uint64
	Reprices        uint64
}

// RunStaleQuotes sweeps the quoter's decision latency against a fixed
// aggressor: the market mid jumps, and aggressorDelay later a taker lifts
// the quoter's (possibly stale) ask. Fast quoters win the race and reprice
// away; slow quoters get picked off.
func RunStaleQuotes(latencies []sim.Duration, moves int, aggressorDelay sim.Duration, seed int64) StaleQuoteResult {
	var out StaleQuoteResult
	for _, lat := range latencies {
		row := StaleQuoteRow{DecisionLatency: lat, Moves: moves}
		row.StaleFills, row.Reprices = runStaleRace(lat, moves, aggressorDelay, seed)
		out.Rows = append(out.Rows, row)
	}
	return out
}

func runStaleRace(decision sim.Duration, moves int, aggressorDelay sim.Duration, seed int64) (staleFills, reprices uint64) {
	sched := sim.NewScheduler(seed)
	u := buildUniverse(4)
	aapl := market.SymbolID(1)

	rawMap := mcast.NewMap(mcast.NewPartitioner(u, mcast.ByAlpha, 0), mcast.NewAllocator(1))
	outMap := mcast.NewMap(mcast.NewPartitioner(u, mcast.ByHash, 8), mcast.NewAllocator(2))
	ex := exchange.New(sched, u, rawMap, exchange.Config{
		ID: 1, Name: "EXCH", Variant: feed.ExchangeB, MatchLatency: sim.Microsecond, HostID: 100,
	})
	norm := firm.NewNormalizer(sched, u, "norm", 200, feed.ExchangeB, rawMap, outMap,
		firm.NormalizerConfig{ProcLatency: sim.Microsecond})
	q := firm.NewQuoter(sched, u, "quoter", 300, outMap, firm.QuoterConfig{
		Symbol: aapl, HalfSpread: 50, Size: 100, DecisionLatency: decision,
	})
	gw := firm.NewGateway(sched, "gw", 400, firm.GatewayConfig{TranslateLatency: sim.Microsecond})

	link := func(a, b *netsim.NIC) { netsim.Connect(a.Port, b.Port, units.Rate10G, 200*sim.Nanosecond) }
	link(ex.MDNIC(), norm.RawNIC())
	link(norm.PubNIC(), q.MDNIC())
	link(gw.ExNIC(), ex.OENIC())

	// Order-side switch: quoter, driver, gateway.
	sw := device.NewCommoditySwitch(sched, "swOE", 3, device.DefaultCommodityConfig())
	drvHost := netsim.NewHost(sched, "driver")
	drvNIC := drvHost.AddNIC("oe", 500)
	netsim.Connect(sw.Port(0), q.OENIC().Port, units.Rate10G, 200*sim.Nanosecond)
	netsim.Connect(sw.Port(1), drvNIC.Port, units.Rate10G, 200*sim.Nanosecond)
	netsim.Connect(sw.Port(2), gw.InNIC().Port, units.Rate10G, 200*sim.Nanosecond)
	sw.Learn(q.OENIC().MAC, 0)
	sw.Learn(drvNIC.MAC, 1)
	sw.Learn(gw.InNIC().MAC, 2)

	_, exPort := ex.AcceptSession(gw.ExNIC().Addr(41000))
	gw.ConnectExchange(41000, ex.OENIC().Addr(exPort))
	gwPort := gw.AcceptStrategy(q.OENIC().Addr(42000))
	q.ConnectGateway(42000, gw.InNIC().Addr(gwPort))

	drvGwPort := gw.AcceptStrategy(drvNIC.Addr(43000))
	mux := netsim.NewStreamMux(drvNIC)
	ds := netsim.NewStream(drvNIC, 43000, gw.InNIC().Addr(drvGwPort))
	mux.Register(ds)
	driver := orderentry.NewClientSession(func(b []byte) { ds.Write(b) })
	ds.OnData = func(b []byte) { driver.Receive(b) }
	driver.Logon()

	// Establish the market, then run `moves` races. Each round the mid
	// steps up 100 in two stages: first the driver lifts its *ask* (moving
	// away — no crossing — but signalling the move on the feed), then
	// aggressorDelay later it lifts its *bid* to the quoter's old ask
	// price. If the quoter's reprice reached the exchange first, its ask
	// has moved away and nothing trades; if not, the stale ask is hit.
	mid0 := market.Price(10_050)
	sched.After(sim.Millisecond, func() {
		driver.NewOrder(1, aapl, market.Buy, mid0-50, 5000)
		driver.NewOrder(2, aapl, market.Sell, mid0+50, 5000)
	})
	for i := 0; i < moves; i++ {
		at := sim.Time(10*sim.Millisecond) + sim.Time(i)*sim.Time(5*sim.Millisecond)
		newMid := mid0 + market.Price(100*(i+1))
		sched.At(at, func() {
			driver.Modify(2, newMid+50, 5000) // ask steps away: the signal
		})
		sched.At(at.Add(aggressorDelay), func() {
			driver.Modify(1, newMid-50, 5000) // bid steps onto the old ask
		})
	}
	sched.Run()
	return q.Fills, q.Reprices
}

// String renders the latency sweep.
func (r StaleQuoteResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.DecisionLatency.String(),
			fmt.Sprintf("%d", row.Moves),
			fmt.Sprintf("%d", row.StaleFills),
			fmt.Sprintf("%.0f%%", float64(row.StaleFills)/float64(row.Moves)*100),
		})
	}
	return "Cost of latency (§1/§2): slow reprices get picked off\n" +
		metrics.Table([]string{"decision latency", "mid moves", "picked off", "rate"}, rows) +
		"a quoter that reprices faster than the aggressor reacts escapes; every\n" +
		"race lost is a fill at a price the market has already left behind.\n"
}
