package core

import (
	"fmt"

	"tradenet/internal/colo"
	"tradenet/internal/device"
	"tradenet/internal/fault"
	"tradenet/internal/feed"
	"tradenet/internal/metrics"
	"tradenet/internal/netsim"
	"tradenet/internal/orderentry"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/units"
)

// Failover experiment: what happens to a trading plant when infrastructure
// dies mid-burst? Two scenarios, both deterministic per seed:
//
//   - A spine of Design 1's leaf-spine fabric is killed while market-data
//     bursts are flowing. Until the control plane reconverges (BFD detect +
//     ECMP rehash + multicast tree rebuild, modelled as one ReconvergeDelay),
//     everything hashed onto the dead spine blackholes. Normalizers heal
//     their raw-feed gaps through the exchange's TCP replay service (§2's
//     sequenced-feed recovery contract), and strategies react to internal-
//     feed gaps by pulling their quotes — stale quotes are priced against
//     liquidity events they never saw.
//
//   - A WAN feed path (Carteret→Secaucus microwave) suffers a rain fade and
//     then a hard outage. There is no alternate path in this scenario — the
//     receiver leans entirely on gap recovery over a metro-fiber TCP path,
//     measuring how much a replay service alone can give back and how fast.

// Spine-failure schedule: bursts every burstInterval from burstStart; the
// victim spine dies just before burst spineFailBurst publishes — so that
// burst flies into the blackhole window — and stays dead for spineOutage.
const (
	failoverBursts   = 10
	burstInterval    = 2 * sim.Millisecond
	spineFailBurst   = 3
	spineOutage      = 6 * sim.Millisecond
	recoveryProbeGap = 500 * sim.Microsecond
)

// SpineFailoverResult is one seed's spine-kill run.
type SpineFailoverResult struct {
	Victim         int  // spine index killed
	RecoveredInRun bool // did delivery catch back up before the run ended?
	// TimeToRecovery is fault instant → first probe at which every published
	// message (live or replayed) had reached every normalizer. Resolution is
	// recoveryProbeGap; the floor is set by gap *detection* — a gap is only
	// visible when the next burst arrives on the surviving spines.
	TimeToRecovery sim.Duration

	Blackholed uint64 // sends into dead links during the blackhole window
	LostFrames uint64 // frames cut on the wire at the failure instant
	Purged     uint64 // queued frames lost with the dead spine's packet memory

	GapRequests   uint64 // replay requests normalizers sent
	RecoveredMsgs uint64 // messages replayed into normalizers
	ServedDgrams  uint64 // datagrams the exchange's replay service served
	RefusedReqs   uint64 // replay requests refused (range rolled out)

	GapsSeen     uint64 // sequence gaps strategies saw on the normalized feed
	QuotePulls   uint64 // gap-triggered pull events
	PulledOrders uint64 // cancels those pulls sent

	Reconvergences int
	Orders         uint64 // orders the exchange accepted over the run
	FaultLog       string
}

// runSpineFailover kills the spine carrying raw-feed unit 0 mid-burst.
func runSpineFailover(sc Scenario, seed int64) SpineFailoverResult {
	s := sc
	s.Seed = seed
	s.PullOnGap = true
	d := NewDesign1(s, device.DefaultCommodityConfig())
	d.WireGapRecovery()
	sched := d.Sched

	perBurst := s.BurstMessages / failoverBursts
	if perBurst < 1 {
		perBurst = 1
	}
	// Aim at the spine carrying the first raw-feed group, so the fault
	// provably crosses the measured feed.
	victim := d.LS.GroupSpine(d.RawMap.Groups()[0])
	res := SpineFailoverResult{Victim: victim}

	burstStart := sim.Time(5 * sim.Millisecond) // logons drain first
	failAt := burstStart.Add(sim.Duration(spineFailBurst)*burstInterval - 10*sim.Microsecond)

	plan := fault.NewPlan(sched)
	plan.SwitchOutage(d.LS.SpineFault(victim), failAt, spineOutage)

	for b := 0; b < failoverBursts; b++ {
		sched.At(burstStart.Add(sim.Duration(b)*burstInterval), func() {
			d.Ex.PublishBurst(sched.Rand(), perBurst)
		})
	}
	d.Ex.OnOrderAccepted = func(*orderentry.Msg, sim.Time) { res.Orders++ }

	// Completeness probes: every message the exchange published (bursts plus
	// reflections of accepted orders) should reach every normalizer — each
	// joins all raw groups — live or via replay. The first probe after the
	// fault at which that holds again marks recovery. Replayed datagrams can
	// overlap the gap range at datagram boundaries, so MsgsIn may overshoot —
	// hence >=, not ==. Probes before any post-fault burst has published are
	// skipped: completeness of the pre-fault traffic says nothing about the
	// blackhole.
	totalIn := func() uint64 {
		var t uint64
		for _, n := range d.Norms {
			t += n.MsgsIn
		}
		return t
	}
	var pubAtFail uint64
	sched.AtPrio(failAt, sim.PrioReport, func() { pubAtFail = d.Ex.PublishedMsgs })
	end := burstStart.Add(sim.Duration(failoverBursts)*burstInterval + 5*sim.Millisecond)
	for at := failAt.Add(recoveryProbeGap); at <= end; at = at.Add(recoveryProbeGap) {
		sched.AtPrio(at, sim.PrioReport, func() {
			if res.RecoveredInRun || d.Ex.PublishedMsgs <= pubAtFail {
				return
			}
			if totalIn() >= d.Ex.PublishedMsgs*uint64(len(d.Norms)) {
				res.RecoveredInRun = true
				res.TimeToRecovery = sched.Now().Sub(failAt)
			}
		})
	}
	sched.Run()

	st := d.LS.FabricStats()
	res.Blackholed = st.Blackholed
	res.LostFrames = st.Lost
	res.Purged = st.Purged
	res.GapRequests = d.GapRequests
	for _, rr := range d.RecReaders {
		res.RecoveredMsgs += rr.Recovered
	}
	res.ServedDgrams = d.Ex.RecoveryServer().Served
	res.RefusedReqs = d.Ex.RecoveryServer().Refused
	for _, str := range d.Strats {
		res.GapsSeen += str.GapsSeen
		res.QuotePulls += str.QuotePulls
		res.PulledOrders += str.PulledOrders
	}
	res.Reconvergences = d.LS.Reconvergences
	res.FaultLog = plan.LogString()
	return res
}

// WANFailoverResult is one seed's WAN-path-failure run.
type WANFailoverResult struct {
	Published uint64
	Delivered uint64 // messages that arrived on the live stream
	Recovered uint64 // messages replayed over the recovery stream

	LostFrames uint64 // rain losses plus frames cut at the failure instant
	Blackholed uint64 // sends during the hard outage

	Requests      uint64 // replay requests the receiver sent
	ServedDgrams  uint64 // datagrams the publisher's replay service served
	Unrecoverable uint64 // refused ranges (rolled out of the retain window)

	RecoveredInRun bool
	// TimeToRecovery is link-restored → last replayed message applied: how
	// long the receiver's picture stayed incomplete after the path healed.
	TimeToRecovery sim.Duration
	FaultLog       string
}

// WAN-failure schedule, in fractions of the publish window.
const (
	wanMsgs      = 3000
	wanMsgGap    = 10 * sim.Microsecond
	wanRainProb  = 0.35
	wanOutageLen = 2 * sim.Millisecond
)

// runWANFailover publishes a feed over a single microwave path with a TCP
// replay service on a metro-fiber side channel, then rains on it and later
// hard-fails it.
func runWANFailover(seed int64) WANFailoverResult {
	sched := sim.NewScheduler(seed)
	var res WANFailoverResult

	// Publisher side: retain window + replay server.
	retain := feed.NewRetainBuffer(1, 2048)
	srv := feed.NewRecoveryServer(retain)

	// Recovery side channel: metro fiber between dedicated NICs. Slower than
	// the microwave path it backstops, but weather-proof.
	pubNIC := netsim.NewHost(sched, "wan-pub").AddNIC("rec", 70)
	subNIC := netsim.NewHost(sched, "wan-sub").AddNIC("rec", 72)
	netsim.Connect(pubNIC.Port, subNIC.Port, units.Rate10G, 80*sim.Microsecond)
	pubMux := netsim.NewStreamMux(pubNIC)
	subMux := netsim.NewStreamMux(subNIC)
	srvStream := netsim.NewStream(pubNIC, 5000, subNIC.Addr(5001))
	cliStream := netsim.NewStream(subNIC, 5001, pubNIC.Addr(5000))
	pubMux.Register(srvStream)
	subMux.Register(cliStream)
	srvStream.OnData = func(b []byte) {
		srv.Receive(b, func(resp []byte) { srvStream.Write(resp) })
	}

	var lastRecoveredAt sim.Time
	client := feed.NewRecoveryClient(1, func(req []byte) { cliStream.Write(req) })
	client.Unrecoverable = func(feed.GapInfo) { res.Unrecoverable++ }
	cliStream.OnData = func(b []byte) {
		_ = client.ReceiveRecovery(b, func(*feed.Msg) { lastRecoveredAt = sched.Now() })
	}

	// Live path: one microwave circuit, no A/B twin — recovery is all there is.
	rx := &dualRx{sched: sched, fn: func(dgram []byte, _ sim.Time) {
		_ = client.Consume(dgram, func(*feed.Msg) { res.Delivered++ })
	}}
	mw := colo.NewCircuit(sched, colo.Carteret, colo.Secaucus, colo.DefaultMicrowave(), nullH{}, rx)

	total := sim.Duration(wanMsgs) * wanMsgGap
	plan := fault.NewPlan(sched)
	plan.LossBurst(mw.PortA, sim.Time(total/4), total/10, wanRainProb)
	outStart := sim.Time(total * 6 / 10)
	plan.LinkOutage(mw.PortA, outStart, wanOutageLen)

	packer := feed.NewPacker(feed.Internal, 1)
	var m feed.Msg
	m.Type = feed.MsgAddOrder
	m.SetSymbol("AAPL")
	src := pkt.UDPAddr{MAC: pkt.HostMAC(1), IP: pkt.HostIP(1), Port: 1}
	grp := pkt.MulticastGroup(1, 1)
	dst := pkt.UDPAddr{MAC: pkt.MulticastMAC(grp), IP: grp, Port: 2}
	for i := 0; i < wanMsgs; i++ {
		i := i
		sched.At(sim.Time(sim.Duration(i)*wanMsgGap), func() {
			m.OrderID = uint64(i)
			packer.Add(&m)
			packer.Flush(func(dgram []byte) {
				retain.Retain(dgram)
				frame := pkt.AppendUDPFrame(nil, src, dst, uint16(i), dgram)
				mw.PortA.Send(&netsim.Frame{Data: frame, Origin: sched.Now()})
			})
		})
	}
	sched.Run()

	res.Published = wanMsgs
	res.Recovered = client.Recovered
	res.Requests = client.Requests
	res.ServedDgrams = srv.Served
	res.LostFrames = mw.PortA.Lost
	res.Blackholed = mw.PortA.Blackholed
	outEnd := outStart.Add(wanOutageLen)
	if lastRecoveredAt > outEnd {
		res.RecoveredInRun = true
		res.TimeToRecovery = lastRecoveredAt.Sub(outEnd)
	}
	res.FaultLog = plan.LogString()
	return res
}

// FailoverResult is one seed's pair of failover runs.
type FailoverResult struct {
	Seed  int64
	Spine SpineFailoverResult
	WAN   WANFailoverResult
}

// FailoverReport is the failover experiment replicated across seeds.
type FailoverReport struct {
	Seeds []int64
	Runs  []FailoverResult
}

// RunFailover runs both failover scenarios for every seed, in parallel,
// results in seed order. Each run is a pure function of its seed.
func RunFailover(sc Scenario, seeds []int64) FailoverReport {
	out := FailoverReport{Seeds: seeds}
	out.Runs = RunParallel(seeds, func(seed int64) FailoverResult {
		return FailoverResult{
			Seed:  seed,
			Spine: runSpineFailover(sc, seed),
			WAN:   runWANFailover(seed),
		}
	})
	return out
}

// ttr renders a time-to-recovery, or "never" when delivery did not catch up.
func ttr(recovered bool, d sim.Duration) string {
	if !recovered {
		return "never"
	}
	return d.String()
}

// String renders the failover report: per-seed tables for both scenarios,
// then the first seed's fault timelines.
func (r FailoverReport) String() string {
	spineRows := make([][]string, 0, len(r.Runs))
	wanRows := make([][]string, 0, len(r.Runs))
	for _, run := range r.Runs {
		sp := run.Spine
		spineRows = append(spineRows, []string{
			fmt.Sprintf("%d", run.Seed),
			fmt.Sprintf("spine%d", sp.Victim),
			ttr(sp.RecoveredInRun, sp.TimeToRecovery),
			fmt.Sprintf("%d", sp.Blackholed),
			fmt.Sprintf("%d", sp.LostFrames),
			fmt.Sprintf("%d", sp.Purged),
			fmt.Sprintf("%d/%d", sp.GapRequests, sp.ServedDgrams),
			fmt.Sprintf("%d", sp.RecoveredMsgs),
			fmt.Sprintf("%d/%d", sp.QuotePulls, sp.PulledOrders),
			fmt.Sprintf("%d", sp.Orders),
		})
		w := run.WAN
		wanRows = append(wanRows, []string{
			fmt.Sprintf("%d", run.Seed),
			ttr(w.RecoveredInRun, w.TimeToRecovery),
			fmt.Sprintf("%d", w.Published),
			fmt.Sprintf("%d", w.Delivered),
			fmt.Sprintf("%d", w.Recovered),
			fmt.Sprintf("%d", w.LostFrames),
			fmt.Sprintf("%d", w.Blackholed),
			fmt.Sprintf("%d/%d", w.Requests, w.ServedDgrams),
			fmt.Sprintf("%d", w.Unrecoverable),
		})
	}
	out := fmt.Sprintf("Failover under deterministic fault injection, %d seed(s)\n\n", len(r.Seeds))
	out += fmt.Sprintf("Spine killed mid-burst in Design 1 (reconverge delay %v): blackhole until\nECMP rehash + multicast rehoming; gaps healed by TCP replay; stale quotes pulled.\n",
		sim.Millisecond)
	out += metrics.Table(
		[]string{"seed", "victim", "TTR", "blackholed", "lost", "purged", "req/served", "replayed", "pulls/cancels", "orders"},
		spineRows)
	out += "\nWAN microwave path: rain fade, then a hard outage; no second path —\ngap recovery over metro fiber is the only healer.\n"
	out += metrics.Table(
		[]string{"seed", "TTR", "published", "live", "recovered", "lost", "blackholed", "req/served", "unrecoverable"},
		wanRows)
	if len(r.Runs) > 0 {
		out += "\nFault timeline (seed " + fmt.Sprintf("%d", r.Runs[0].Seed) + "), spine scenario:\n" + r.Runs[0].Spine.FaultLog
		out += "Fault timeline (seed " + fmt.Sprintf("%d", r.Runs[0].Seed) + "), WAN scenario:\n" + r.Runs[0].WAN.FaultLog
	}
	return out
}
