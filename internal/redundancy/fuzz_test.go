package redundancy

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzParityGroup drives a Sender/Receiver pair in ParityFEC over a
// fuzz-chosen group size and loss mask, then checks the two invariants
// the FEC layer guarantees:
//
//  1. Never emit a corrupt frame: every delivered payload byte-matches
//     an original, in sequence order — whether it arrived live, was
//     reconstructed from parity, or survived a declare.
//  2. Never strand a frame: every sequence below the delivery cursor is
//     delivered or declared lost (surfacing the gap for replay) — two
//     losses in one group must fall through to declare, not hang
//     waiting for a second parity. (Sequences past the cursor are tail
//     losses nothing arrived after; the feed layer's next burst or
//     heartbeat surfaces those, outside this layer.)
//
// The loss mask covers data frames and parity frames alike, so
// lost-parity and loss-position sweeps fall out of the corpus.
func FuzzParityGroup(f *testing.F) {
	f.Add(uint8(4), uint16(0b00001), uint8(12))         // single loss, first group
	f.Add(uint8(4), uint16(0b00101), uint8(12))         // two losses in one group
	f.Add(uint8(4), uint16(0b10000), uint8(12))         // lost parity frame
	f.Add(uint8(2), uint16(0xFFFF), uint8(9))           // everything early lost
	f.Add(uint8(7), uint16(0b0100010001000), uint8(30)) // spread losses
	f.Add(uint8(255), uint16(2), uint8(40))             // max group size

	f.Fuzz(func(t *testing.T, k uint8, lossMask uint16, nmsgs uint8) {
		if k < 2 { // sender contract: group size in [2, MaxGroup]
			k = 2
		}
		if nmsgs == 0 {
			return
		}
		msgs := make([][]byte, nmsgs)
		for i := range msgs {
			// Varying lengths (including empty) exercise lenXor
			// reconstruction and zero-padding.
			msgs[i] = []byte(fmt.Sprintf("m%d-%s", i, string(make([]byte, (i*int(k))%11))))
			if i%5 == 4 {
				msgs[i] = msgs[i][:0]
			}
		}

		s := NewSender(nil, SenderConfig{K: int(k)})
		r := NewReceiver(ReceiverConfig{K: int(k), WindowPow2: 10, HoldDup: 16})
		var delivered [][]byte
		r.Deliver = func(p []byte, _ bool) {
			delivered = append(delivered, append([]byte(nil), p...))
		}
		emit := 0
		s.Emit = func(b []byte) {
			i := emit
			emit++
			if i < 16 && lossMask&(1<<i) != 0 {
				return
			}
			r.Consume(b)
		}
		s.Apply(ParityFEC)
		r.Apply(ParityFEC)
		for _, m := range msgs {
			s.Send(m)
		}
		// Flush: step the policy down. The sender emits the partial
		// group's parity; the receiver declares anything still held so
		// the stream fully resolves up to its cursor.
		s.Apply(ReplayOnly)
		r.Apply(ReplayOnly)

		// Invariant 2: everything below the cursor accounted for.
		if got, want := r.Stats.Delivered+r.Stats.LostDeclared, uint64(r.NextSeq()-1); got != want {
			t.Fatalf("k=%d mask=%b: %d delivered + %d declared, cursor says %d resolved",
				k, lossMask, r.Stats.Delivered, r.Stats.LostDeclared, want)
		}
		if r.NextSeq()-1 > uint32(nmsgs) {
			t.Fatalf("k=%d mask=%b: cursor %d past the %d sent", k, lossMask, r.NextSeq()-1, nmsgs)
		}
		// Invariant 1: deliveries are an in-order, uncorrupted
		// subsequence of the originals.
		j := 0
		for _, d := range delivered {
			for j < len(msgs) && !bytes.Equal(d, msgs[j]) {
				j++
			}
			if j == len(msgs) {
				t.Fatalf("k=%d mask=%b: delivered payload %q matches no remaining original (corrupt or out of order)",
					k, lossMask, d)
			}
			j++
		}
	})
}
