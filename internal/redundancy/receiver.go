package redundancy

// ReceiverConfig tunes the receive side of the policy layer.
type ReceiverConfig struct {
	// K mirrors the sender's parity group size; it sizes the hold window
	// while ParityFEC is active (2*K frames, enough to keep a whole group
	// plus its successor in flight before giving up on the parity frame).
	K int
	// WindowPow2 is log2 of the reorder/retention ring size. Delivered
	// frames are retained in the ring until overwritten so a later parity
	// frame can reconstruct a groupmate. Default 8 (256 slots).
	WindowPow2 int
	// HoldDup is the hold window under Duplicate: how many frames past a
	// hole to buffer while waiting for the second copy. Default 16.
	HoldDup int
}

// DefaultReceiverConfig matches DefaultSenderConfig.
func DefaultReceiverConfig() ReceiverConfig { return ReceiverConfig{K: 4, WindowPow2: 8, HoldDup: 16} }

// ReceiverStats are cumulative receive-side counters.
type ReceiverStats struct {
	Delivered      uint64 // datagrams handed to Deliver, in order
	Reconstructed  uint64 // of Delivered: rebuilt from parity, no replay RTT
	Duplicates     uint64 // redundant copies discarded by sequence
	LostDeclared   uint64 // sequences given up on (surface as feed gaps -> replay)
	ParityFrames   uint64 // parity frames received
	ParityUnused   uint64 // parity arrived but every groupmate made it
	ParityUnusable uint64 // >=2 losses in group or evidence evicted: fell through to replay
	BadFrames      uint64 // truncated or unknown-kind frames
}

// Outcome tells the caller what Consume did with a wire frame, so the
// transport adapter can finish the frame's trace span with the right end.
type Outcome uint8

const (
	// OutDelivered: a data frame that was delivered (possibly unblocking
	// more held frames behind it).
	OutDelivered Outcome = iota
	// OutHeld: stored ahead of a hole, waiting for recovery or declare.
	OutHeld
	// OutDup: a redundant copy of an already-seen sequence; discarded.
	OutDup
	// OutParityUsed: a parity frame that reconstructed a lost groupmate.
	OutParityUsed
	// OutParityUnused: a parity frame whose whole group arrived intact.
	OutParityUnused
	// OutParityUnusable: a parity frame that could not help (two or more
	// groupmates missing, or retained evidence already evicted); the
	// group's holes are declared immediately so replay starts now.
	OutParityUnusable
	// OutBad: unparseable frame.
	OutBad
)

// slot states. A done slot retains its payload until the ring laps it, so
// parity arriving after delivery can still reconstruct a lost groupmate.
const (
	slotEmpty = iota
	slotHeld  // payload buffered, not yet deliverable (hole before it)
	slotDone  // delivered; payload retained for parity reconstruction
)

type rxSlot struct {
	seq       uint32
	state     uint8
	recovered bool
	data      []byte
}

// Receiver is the receive side of the policy layer: it dedups Duplicate
// copies, reconstructs single losses from parity frames, and otherwise
// declares losses promptly so the downstream feed reassembler's gap
// detection triggers replay. Single-goroutine, virtual-time only.
type Receiver struct {
	// Deliver receives each datagram exactly once, in sequence order.
	// recovered is true for parity-reconstructed datagrams. The slice is
	// valid only for the duration of the call.
	Deliver func(payload []byte, recovered bool)

	Stats ReceiverStats

	cfg     ReceiverConfig
	policy  Policy
	holdMax uint32 // max span past a hole before declaring losses

	ring    []rxSlot
	mask    uint32
	nextSeq uint32 // next sequence to deliver
	maxSeq  uint32 // highest data sequence seen

	scratch []byte // parity reconstruction accumulator
	frame   WireFrame
}

// NewReceiver creates a Receiver in the ReplayOnly policy (hold window
// zero: any hole is declared immediately, replay heals it).
func NewReceiver(cfg ReceiverConfig) *Receiver {
	if cfg.WindowPow2 <= 0 {
		cfg.WindowPow2 = 8
	}
	if cfg.K < 2 || cfg.K > MaxGroup {
		panic("redundancy: parity group size out of range")
	}
	if cfg.HoldDup <= 0 {
		cfg.HoldDup = 16
	}
	size := 1 << cfg.WindowPow2
	if 2*cfg.K >= size || cfg.HoldDup >= size {
		panic("redundancy: hold window must be smaller than the ring")
	}
	return &Receiver{cfg: cfg, ring: make([]rxSlot, size), mask: uint32(size - 1), nextSeq: 1}
}

// Policy returns the active policy.
func (r *Receiver) Policy() Policy { return r.policy }

// NextSeq returns the delivery cursor: every sequence below it has been
// either delivered or declared lost.
func (r *Receiver) NextSeq() uint32 { return r.nextSeq }

// Apply switches the receive policy. Shrinking the hold window declares
// any now-over-budget holes immediately, so a step down to ReplayOnly
// hands outstanding gaps straight to replay rather than stranding them.
func (r *Receiver) Apply(p Policy) {
	r.policy = p
	switch p {
	case Duplicate:
		r.holdMax = uint32(r.cfg.HoldDup)
	case ParityFEC:
		r.holdMax = uint32(2 * r.cfg.K)
	default:
		r.holdMax = 0
	}
	r.enforceHold()
}

// Consume feeds one wire frame (as produced by a Sender) into the
// receiver. Deliveries happen synchronously via the Deliver callback.
func (r *Receiver) Consume(b []byte) Outcome {
	if err := ParseFrame(b, &r.frame); err != nil {
		r.Stats.BadFrames++
		return OutBad
	}
	if r.frame.Parity {
		return r.consumeParity()
	}
	return r.consumeData(r.frame.Seq, r.frame.Payload, false)
}

// consumeData inserts one data payload (from the wire or reconstructed
// from parity) and drains everything it unblocks.
func (r *Receiver) consumeData(seq uint32, payload []byte, recovered bool) Outcome {
	if seq < r.nextSeq {
		r.Stats.Duplicates++
		return OutDup
	}
	s := &r.ring[seq&r.mask]
	if s.state != slotEmpty && s.seq == seq {
		r.Stats.Duplicates++
		return OutDup
	}
	// Make room: the span [nextSeq, seq] must fit the ring. Anything the
	// insert would lap is out of patience by definition.
	if seq-r.nextSeq >= uint32(len(r.ring)) {
		r.declareTo(seq - uint32(len(r.ring)) + 1)
	}
	s.seq = seq
	s.state = slotHeld
	s.recovered = recovered
	s.data = append(s.data[:0], payload...)
	if seq > r.maxSeq {
		r.maxSeq = seq
	}
	if seq != r.nextSeq {
		r.enforceHold()
		if s.state == slotHeld {
			return OutHeld
		}
		return OutDelivered // enforceHold declared past the hole and flushed it
	}
	r.drain()
	return OutDelivered
}

// drain delivers the contiguous run starting at nextSeq.
func (r *Receiver) drain() {
	for {
		s := &r.ring[r.nextSeq&r.mask]
		if s.state != slotHeld || s.seq != r.nextSeq {
			break
		}
		r.deliver(s)
	}
}

// deliver hands one held slot downstream and retains it for parity.
func (r *Receiver) deliver(s *rxSlot) {
	r.Stats.Delivered++
	if s.recovered {
		r.Stats.Reconstructed++
	}
	if r.Deliver != nil {
		r.Deliver(s.data, s.recovered)
	}
	s.state = slotDone
	r.nextSeq++
}

// enforceHold declares losses once the span past the oldest hole exceeds
// the policy's hold window.
func (r *Receiver) enforceHold() {
	if r.maxSeq >= r.nextSeq && r.maxSeq-r.nextSeq+1 > r.holdMax {
		r.declareTo(r.maxSeq + 1 - r.holdMax)
	}
}

// declareTo resolves every sequence below target: held frames are
// delivered, missing ones are declared lost (the downstream reassembler
// sees the gap and kicks off replay), then the cursor drains whatever the
// skip unblocked.
func (r *Receiver) declareTo(target uint32) {
	for r.nextSeq < target {
		s := &r.ring[r.nextSeq&r.mask]
		if s.state == slotHeld && s.seq == r.nextSeq {
			r.deliver(s)
			continue
		}
		r.Stats.LostDeclared++
		r.nextSeq++
	}
	r.drain()
}

// consumeParity applies one parity frame to its group.
func (r *Receiver) consumeParity() Outcome {
	r.Stats.ParityFrames++
	start, n := r.frame.Seq, uint32(r.frame.N)
	if n == 0 || start+n <= r.nextSeq && !r.groupRetained(start, n) {
		// Entirely in the past with evidence gone — nothing to do.
		r.Stats.ParityUnused++
		return OutParityUnused
	}
	missing, missingSeq, unusable := uint32(0), uint32(0), false
	for q := start; q < start+n; q++ {
		s := &r.ring[q&r.mask]
		if s.state != slotEmpty && s.seq == q {
			continue // payload on hand (held or retained)
		}
		if q < r.nextSeq {
			unusable = true // already declared lost and evidence evicted
			continue
		}
		missing++
		missingSeq = q
	}
	switch {
	case missing == 0 && !unusable:
		r.Stats.ParityUnused++
		return OutParityUnused
	case missing == 1 && !unusable:
		if r.reconstruct(start, n, missingSeq) {
			return OutParityUsed
		}
	}
	// Two or more losses (or stale evidence): the code is exhausted.
	// Declare the group's holes now — waiting longer cannot help, and
	// replay only starts once the gap surfaces downstream.
	r.Stats.ParityUnusable++
	if start+n > r.nextSeq {
		r.declareTo(start + n)
	}
	return OutParityUnusable
}

// groupRetained reports whether every frame of [start, start+n) is still
// in the ring.
func (r *Receiver) groupRetained(start, n uint32) bool {
	for q := start; q < start+n; q++ {
		s := &r.ring[q&r.mask]
		if s.state == slotEmpty || s.seq != q {
			return false
		}
	}
	return true
}

// reconstruct rebuilds the single missing frame of a parity group:
// payload = parity XOR survivors, length = lenXor XOR survivor lengths.
// Returns false (leaving the caller to declare) if the implied length is
// impossible — the never-emit-corrupt-frames guard.
func (r *Receiver) reconstruct(start, n, missingSeq uint32) bool {
	r.scratch = append(r.scratch[:0], r.frame.Payload...)
	length := r.frame.LenXor
	for q := start; q < start+n; q++ {
		if q == missingSeq {
			continue
		}
		s := &r.ring[q&r.mask]
		for i, b := range s.data {
			r.scratch[i] ^= b
		}
		length ^= uint16(len(s.data))
	}
	if int(length) > len(r.scratch) {
		return false
	}
	r.consumeData(missingSeq, r.scratch[:length], true)
	return true
}
