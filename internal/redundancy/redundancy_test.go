package redundancy

import (
	"bytes"
	"fmt"
	"testing"

	"tradenet/internal/sim"
)

// harness wires a Sender straight into a Receiver through a scriptable
// lossy pipe: drop(i) decides the fate of the i-th emitted wire frame
// (0-based, in emit order).
type harness struct {
	s         *Sender
	r         *Receiver
	emitted   int
	delivered [][]byte
	recovered []bool
}

func newHarness(t *testing.T, drop func(i int) bool) *harness {
	t.Helper()
	h := &harness{}
	h.s = NewSender(nil, DefaultSenderConfig())
	h.r = NewReceiver(DefaultReceiverConfig())
	h.s.Emit = func(b []byte) {
		i := h.emitted
		h.emitted++
		if drop != nil && drop(i) {
			return
		}
		h.r.Consume(b)
	}
	h.r.Deliver = func(p []byte, rec bool) {
		h.delivered = append(h.delivered, append([]byte(nil), p...))
		h.recovered = append(h.recovered, rec)
	}
	return h
}

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("msg-%03d-%s", i, string(make([]byte, i%7))))
	}
	return out
}

// checkPrefix asserts delivered payloads are a subsequence-correct,
// uncorrupted run: each delivered payload must byte-match the original at
// its position in delivery order (originals minus declared losses).
func (h *harness) checkDeliveredExactly(t *testing.T, want [][]byte) {
	t.Helper()
	if len(h.delivered) != len(want) {
		t.Fatalf("delivered %d payloads, want %d", len(h.delivered), len(want))
	}
	for i := range want {
		if !bytes.Equal(h.delivered[i], want[i]) {
			t.Fatalf("payload %d corrupted: got %q want %q", i, h.delivered[i], want[i])
		}
	}
}

func TestWireFormatRoundTrip(t *testing.T) {
	var f WireFrame
	b := AppendDataFrame(nil, 42, []byte("hello"))
	if err := ParseFrame(b, &f); err != nil || f.Parity || f.Seq != 42 || string(f.Payload) != "hello" {
		t.Fatalf("data frame round trip: %+v err=%v", f, err)
	}
	b = AppendParityFrame(nil, 100, 4, 0x1234, []byte{0xaa, 0xbb})
	if err := ParseFrame(b, &f); err != nil || !f.Parity || f.Seq != 100 || f.N != 4 || f.LenXor != 0x1234 || !bytes.Equal(f.Payload, []byte{0xaa, 0xbb}) {
		t.Fatalf("parity frame round trip: %+v err=%v", f, err)
	}
	if err := ParseFrame([]byte{kindData, 0}, &f); err != ErrShortFrame {
		t.Fatalf("short frame: %v", err)
	}
	if err := ParseFrame([]byte{0x7f, 0, 0, 0, 0}, &f); err != ErrBadKind {
		t.Fatalf("bad kind: %v", err)
	}
}

func TestReplayOnlyDeclaresImmediately(t *testing.T) {
	// Frames 0..9, drop emit #3. ReplayOnly holds nothing: the moment
	// frame 4 arrives the hole is declared and everything after flows.
	h := newHarness(t, func(i int) bool { return i == 3 })
	msgs := payloads(10)
	for _, m := range msgs {
		h.s.Send(m)
	}
	want := append(append([][]byte{}, msgs[:3]...), msgs[4:]...)
	h.checkDeliveredExactly(t, want)
	if h.r.Stats.LostDeclared != 1 {
		t.Fatalf("LostDeclared = %d, want 1", h.r.Stats.LostDeclared)
	}
}

func TestDuplicateSurvivesSingleCopyLoss(t *testing.T) {
	// Every frame sent twice back to back; drop every even emit (the
	// first copy of every frame). The second copies carry the stream.
	h := newHarness(t, func(i int) bool { return i%2 == 0 })
	h.s.Apply(Duplicate)
	h.r.Apply(Duplicate)
	msgs := payloads(20)
	for _, m := range msgs {
		h.s.Send(m)
	}
	h.checkDeliveredExactly(t, msgs)
	if h.r.Stats.LostDeclared != 0 {
		t.Fatalf("LostDeclared = %d, want 0", h.r.Stats.LostDeclared)
	}
	if h.s.Stats.DupFrames != 20 {
		t.Fatalf("DupFrames = %d, want 20", h.s.Stats.DupFrames)
	}
}

func TestDuplicateDedupsBothCopies(t *testing.T) {
	h := newHarness(t, nil)
	h.s.Apply(Duplicate)
	h.r.Apply(Duplicate)
	msgs := payloads(10)
	for _, m := range msgs {
		h.s.Send(m)
	}
	h.checkDeliveredExactly(t, msgs)
	if h.r.Stats.Duplicates != 10 {
		t.Fatalf("Duplicates = %d, want 10", h.r.Stats.Duplicates)
	}
}

func TestDuplicateCrossPath(t *testing.T) {
	// Emit2 set: second copies take the alternate path; primary drops
	// everything, alternate is clean.
	h := newHarness(t, func(i int) bool { return true })
	h.s.Emit2 = func(b []byte) { h.r.Consume(b) }
	h.s.Apply(Duplicate)
	h.r.Apply(Duplicate)
	msgs := payloads(10)
	for _, m := range msgs {
		h.s.Send(m)
	}
	h.checkDeliveredExactly(t, msgs)
}

func TestDuplicateStaggered(t *testing.T) {
	sched := sim.NewScheduler(1)
	s := NewSender(sched, SenderConfig{K: 4, Stagger: 5 * sim.Microsecond})
	r := NewReceiver(DefaultReceiverConfig())
	var got [][]byte
	r.Deliver = func(p []byte, _ bool) { got = append(got, append([]byte(nil), p...)) }
	emit := 0
	s.Emit = func(b []byte) {
		i := emit
		emit++
		// The send loop runs before sched.Run, so emits 0..7 are the
		// first copies and 8..15 the staggered ones: lose every first
		// copy, let the staggered copies carry the stream.
		if i < 8 {
			return
		}
		r.Consume(b)
	}
	s.Apply(Duplicate)
	r.Apply(Duplicate)
	msgs := payloads(8)
	for _, m := range msgs {
		s.Send(m)
	}
	sched.Run()
	if len(got) != len(msgs) {
		t.Fatalf("delivered %d, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !bytes.Equal(got[i], msgs[i]) {
			t.Fatalf("payload %d corrupted", i)
		}
	}
}

func TestParityReconstructsEachPosition(t *testing.T) {
	// K=4: emits per group are d d d d P (5 wire frames). Drop the data
	// frame at each group position in turn; every loss reconstructs with
	// no declared losses and no replay.
	for pos := 0; pos < 4; pos++ {
		h := newHarness(t, func(i int) bool { return i == pos })
		h.s.Apply(ParityFEC)
		h.r.Apply(ParityFEC)
		msgs := payloads(12)
		for _, m := range msgs {
			h.s.Send(m)
		}
		h.checkDeliveredExactly(t, msgs)
		if h.r.Stats.Reconstructed != 1 {
			t.Fatalf("pos %d: Reconstructed = %d, want 1", pos, h.r.Stats.Reconstructed)
		}
		if h.r.Stats.LostDeclared != 0 {
			t.Fatalf("pos %d: LostDeclared = %d, want 0", pos, h.r.Stats.LostDeclared)
		}
	}
}

func TestParityLostParityFrame(t *testing.T) {
	// Losing the parity frame itself (emit #4) costs nothing: all data
	// arrived, nothing to reconstruct.
	h := newHarness(t, func(i int) bool { return i == 4 })
	h.s.Apply(ParityFEC)
	h.r.Apply(ParityFEC)
	msgs := payloads(12)
	for _, m := range msgs {
		h.s.Send(m)
	}
	h.checkDeliveredExactly(t, msgs)
	if h.r.Stats.LostDeclared != 0 || h.r.Stats.Reconstructed != 0 {
		t.Fatalf("stats: %+v", h.r.Stats)
	}
}

func TestParityTwoLossesFallThroughToReplay(t *testing.T) {
	// Two losses in the first group (emits 0 and 2) exhaust the XOR
	// code: the parity frame must declare both immediately — surfacing
	// the gap for replay — and must never emit a corrupt frame.
	h := newHarness(t, func(i int) bool { return i == 0 || i == 2 })
	h.s.Apply(ParityFEC)
	h.r.Apply(ParityFEC)
	msgs := payloads(12)
	for _, m := range msgs {
		h.s.Send(m)
	}
	want := [][]byte{msgs[1], msgs[3]}
	want = append(want, msgs[4:]...)
	h.checkDeliveredExactly(t, want)
	if h.r.Stats.LostDeclared != 2 {
		t.Fatalf("LostDeclared = %d, want 2", h.r.Stats.LostDeclared)
	}
	if h.r.Stats.ParityUnusable != 1 {
		t.Fatalf("ParityUnusable = %d, want 1", h.r.Stats.ParityUnusable)
	}
	if h.r.Stats.Reconstructed != 0 {
		t.Fatalf("Reconstructed = %d, want 0", h.r.Stats.Reconstructed)
	}
}

func TestParityReconstructsAfterDelivery(t *testing.T) {
	// Loss in the *second* group while the first group was delivered
	// normally: retained slots from group 1 must not confuse group 2's
	// reconstruction.
	h := newHarness(t, func(i int) bool { return i == 6 }) // d d d d P d [d] d d P
	h.s.Apply(ParityFEC)
	h.r.Apply(ParityFEC)
	msgs := payloads(8)
	for _, m := range msgs {
		h.s.Send(m)
	}
	h.checkDeliveredExactly(t, msgs)
	if h.r.Stats.Reconstructed != 1 {
		t.Fatalf("Reconstructed = %d, want 1", h.r.Stats.Reconstructed)
	}
}

func TestSenderFlushesPartialGroupOnPolicyExit(t *testing.T) {
	// Two frames into a group of 4, the policy steps down. The partial
	// group's parity must flush so the in-flight frames stay covered:
	// drop frame #1 and the flushed parity still reconstructs it.
	h := newHarness(t, func(i int) bool { return i == 1 })
	h.s.Apply(ParityFEC)
	h.r.Apply(ParityFEC)
	msgs := payloads(6)
	h.s.Send(msgs[0])
	h.s.Send(msgs[1])
	h.s.Apply(ReplayOnly) // flushes parity over {0,1} as emit #2
	h.r.Apply(ReplayOnly)
	for _, m := range msgs[2:] {
		h.s.Send(m)
	}
	h.checkDeliveredExactly(t, msgs)
	if h.r.Stats.Reconstructed != 1 {
		t.Fatalf("Reconstructed = %d, want 1", h.r.Stats.Reconstructed)
	}
}

func TestReceiverRingWrapDeclares(t *testing.T) {
	// A frame arriving a full ring ahead of the cursor forces the old
	// span to resolve rather than silently corrupting slots.
	r := NewReceiver(ReceiverConfig{K: 4, WindowPow2: 4, HoldDup: 8}) // 16 slots
	var n int
	r.Deliver = func([]byte, bool) { n++ }
	r.Apply(Duplicate) // hold window 8
	var buf []byte
	buf = AppendDataFrame(buf[:0], 2, []byte("a")) // hole at 1
	r.Consume(buf)
	buf = AppendDataFrame(buf[:0], 40, []byte("b")) // 38 ahead: wraps
	r.Consume(buf)
	if r.Stats.LostDeclared == 0 {
		t.Fatal("ring wrap did not declare the stranded span")
	}
	if n != 1 { // frame 2 was delivered during the declare; 40 held
		t.Fatalf("delivered %d, want 1", n)
	}
}

// scriptSource is a hand-cranked cumulative counter pair.
type scriptSource struct{ tx, lost uint64 }

func (s *scriptSource) Sample() LossSample { return LossSample{Tx: s.tx, Lost: s.lost} }

type recAdapter struct{ applied []Policy }

func (r *recAdapter) Apply(p Policy) { r.applied = append(r.applied, p) }

func TestControllerHysteresis(t *testing.T) {
	sched := sim.NewScheduler(7)
	src := &scriptSource{}
	rec := &recAdapter{}
	cfg := ControllerConfig{
		Window: 100 * sim.Microsecond, MinFrames: 8,
		EnterFEC: 0.01, EnterDup: 0.12, EnterAfter: 2, ExitAfter: 3,
	}
	c := NewController(sched, cfg, src, rec)
	// Script: each entry is the (tx, lost) delta landed before that
	// window's sampling tick.
	script := []struct{ tx, lost uint64 }{
		{100, 5},  // w1: 5% -> desire FEC, streak 1
		{100, 5},  // w2: streak 2 -> switch to FEC
		{100, 30}, // w3: 30% -> desire Dup, streak 1
		{100, 30}, // w4: streak 2 -> switch to Duplicate
		{100, 0},  // w5: clean, down 1
		{100, 0},  // w6: down 2
		{2, 0},    // w7: too quiet -> skipped, streak frozen
		{100, 0},  // w8: down 3 -> step to FEC
		{100, 0},  // w9: down 1
		{100, 0},  // w10: down 2
		{100, 0},  // w11: down 3 -> step to ReplayOnly
	}
	for i, step := range script {
		tx, lost := step.tx, step.lost
		// Land the counters mid-window, before the sampling tick.
		sched.AtPrio(sim.Time(i)*sim.Time(cfg.Window)+sim.Time(cfg.Window)/2, sim.PrioDeliver, func() {
			src.tx += tx
			src.lost += lost
		})
	}
	c.Start()
	sched.RunUntil(sim.Time(len(script)) * sim.Time(cfg.Window))
	c.Stop()

	wantApplied := []Policy{ParityFEC, Duplicate, ParityFEC, ReplayOnly}
	if len(rec.applied) != len(wantApplied) {
		t.Fatalf("applied %v, want %v", rec.applied, wantApplied)
	}
	for i := range wantApplied {
		if rec.applied[i] != wantApplied[i] {
			t.Fatalf("applied %v, want %v", rec.applied, wantApplied)
		}
	}
	wantWindows := []uint64{2, 4, 8, 11}
	for i, d := range c.Decisions {
		if d.Window != wantWindows[i] {
			t.Fatalf("decision %d at window %d, want %d (%+v)", i, d.Window, wantWindows[i], c.Decisions)
		}
	}
	if c.WindowsSkipped != 1 {
		t.Fatalf("WindowsSkipped = %d, want 1", c.WindowsSkipped)
	}
	if c.Policy() != ReplayOnly {
		t.Fatalf("final policy %s, want replay-only", c.Policy())
	}
}

func TestControllerDeterministicDecisionLog(t *testing.T) {
	run := func() string {
		sched := sim.NewScheduler(3)
		src := &scriptSource{}
		s := NewSender(nil, DefaultSenderConfig())
		s.Emit = func([]byte) {}
		c := NewController(sched, DefaultControllerConfig(), src, s)
		for i := 0; i < 20; i++ {
			i := i
			sched.AtPrio(sim.Time(i)*sim.Time(250*sim.Microsecond), sim.PrioDeliver, func() {
				src.tx += 50
				if i > 4 && i < 15 {
					src.lost += 10
				}
			})
		}
		c.Start()
		sched.RunUntil(6 * sim.Time(sim.Millisecond))
		return c.LogString()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("decision log not reproducible:\n%s\nvs\n%s", a, b)
	}
	if a == "  (no policy switches)\n" {
		t.Fatal("script should have tripped at least one switch")
	}
}
