// Package redundancy is the adaptive recovery-policy layer for lossy WAN
// circuits (§2: firms run the rain-faded microwave path anyway, because
// latency wins — so the engineering problem is operating gracefully while
// degraded, not avoiding degradation).
//
// The layer sits between a feed publisher and a lossy path. The sender
// wraps each datagram in a small redundancy header (a dense per-frame
// sequence) and, depending on the active policy, transmits proactive
// redundancy alongside the data:
//
//   - ReplayOnly — the status quo: one copy per datagram; every loss costs
//     a full replay round trip over the fiber side channel.
//   - Duplicate — send-twice: each datagram goes out twice (staggered on
//     the same path, or mirrored onto a second path); the receiver dedups
//     by sequence. Residual loss is p² per frame instead of p.
//   - ParityFEC(k) — one XOR parity frame per group of k data frames; the
//     receiver reconstructs any single loss per group from the k−1
//     survivors and the parity, with no replay round trip. Two losses in a
//     group exhaust the code and fall through to replay.
//
// A closed-loop Controller (controller.go) samples per-window loss
// statistics on virtual-time ticks and walks the policy ladder
// ReplayOnly ↔ ParityFEC ↔ Duplicate through deterministic hysteresis
// thresholds. Everything in this package derives from virtual-time state:
// no wall clock, no global RNG, no map iteration — a run armed with this
// layer remains a pure function of its seed.
package redundancy

import (
	"encoding/binary"
	"errors"
)

// Policy is a recovery policy. The numeric order is the controller's
// escalation ladder: each step up spends more proactive redundancy to
// shave more replay round trips.
type Policy uint8

const (
	// ReplayOnly sends one copy and leans entirely on gap replay.
	ReplayOnly Policy = iota
	// ParityFEC adds one XOR parity frame per group of K data frames.
	ParityFEC
	// Duplicate transmits every data frame twice.
	Duplicate
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case ReplayOnly:
		return "replay-only"
	case ParityFEC:
		return "parity-fec"
	case Duplicate:
		return "duplicate"
	}
	return "unknown"
}

// Adapter is anything the controller reconfigures when a policy decision
// fires — the Sender and Receiver both implement it.
type Adapter interface {
	Apply(Policy)
}

// Wire format: every frame on the redundant path starts with a kind byte
// and a big-endian uint32 sequence. Data frames carry the wrapped datagram
// as payload. Parity frames cover the group of data frames starting at the
// header sequence: count covered (1 byte), the XOR of the covered payload
// lengths (2 bytes, for reconstructing the lost frame's exact length), then
// the byte-wise XOR of the covered payloads zero-padded to the longest.
const (
	kindData   = 0x01
	kindParity = 0x02

	dataHeaderLen   = 5 // kind(1) + seq(4)
	parityHeaderLen = 8 // kind(1) + groupStart(4) + n(1) + lenXor(2)

	// MaxGroup bounds a parity group: the count field is one byte, and
	// reconstruction cost grows with the group.
	MaxGroup = 255
)

// Errors returned by the frame parser.
var (
	ErrShortFrame = errors.New("redundancy: truncated frame")
	ErrBadKind    = errors.New("redundancy: unknown frame kind")
)

// AppendDataFrame wraps payload as data frame seq, appending to b.
func AppendDataFrame(b []byte, seq uint32, payload []byte) []byte {
	b = append(b, kindData)
	b = binary.BigEndian.AppendUint32(b, seq)
	return append(b, payload...)
}

// AppendParityFrame appends a parity frame covering the n data frames
// [start, start+n): lenXor is the XOR of their payload lengths, parity the
// XOR of their zero-padded payloads.
func AppendParityFrame(b []byte, start uint32, n uint8, lenXor uint16, parity []byte) []byte {
	b = append(b, kindParity)
	b = binary.BigEndian.AppendUint32(b, start)
	b = append(b, n)
	b = binary.BigEndian.AppendUint16(b, lenXor)
	return append(b, parity...)
}

// WireFrame is a parsed redundancy-layer frame.
type WireFrame struct {
	Parity  bool
	Seq     uint32 // data: frame sequence; parity: first covered sequence
	N       uint8  // parity only: frames covered
	LenXor  uint16 // parity only: XOR of covered payload lengths
	Payload []byte // data: the datagram; parity: XOR of padded payloads
}

// ParseFrame decodes a redundancy-layer frame in place (Payload aliases b).
func ParseFrame(b []byte, f *WireFrame) error {
	if len(b) < dataHeaderLen {
		return ErrShortFrame
	}
	switch b[0] {
	case kindData:
		f.Parity = false
		f.Seq = binary.BigEndian.Uint32(b[1:5])
		f.N, f.LenXor = 0, 0
		f.Payload = b[dataHeaderLen:]
		return nil
	case kindParity:
		if len(b) < parityHeaderLen {
			return ErrShortFrame
		}
		f.Parity = true
		f.Seq = binary.BigEndian.Uint32(b[1:5])
		f.N = b[5]
		f.LenXor = binary.BigEndian.Uint16(b[6:8])
		f.Payload = b[parityHeaderLen:]
		return nil
	}
	return ErrBadKind
}
