package redundancy

import (
	"tradenet/internal/sim"
)

// SenderConfig tunes the transmit side of the policy layer.
type SenderConfig struct {
	// K is the parity group size for ParityFEC: one parity frame is
	// emitted per K data frames. Must be in [2, MaxGroup].
	K int
	// Stagger delays the Duplicate second copy by this much virtual time
	// on the primary path. Zero sends the copy back to back — equivalent
	// under the simulator's i.i.d. per-frame loss draws, since each copy
	// rolls its own loss independently at drain time. A real fade is
	// bursty, so the knob exists for timelines that model correlation.
	Stagger sim.Duration
}

// DefaultSenderConfig: parity groups of 4 (25% overhead when FEC is
// active), back-to-back duplicates.
func DefaultSenderConfig() SenderConfig { return SenderConfig{K: 4} }

// SenderStats are cumulative transmit-side counters, suitable for
// metrics.Registry registration.
type SenderStats struct {
	DataFrames    uint64 // first copies of wrapped datagrams
	DupFrames     uint64 // Duplicate second copies
	ParityFrames  uint64 // parity frames emitted
	DataBytes     uint64 // payload bytes in first copies
	OverheadBytes uint64 // every wire byte beyond first-copy payloads
}

// Sender wraps a datagram stream in the redundancy wire format and emits
// per-policy proactive redundancy. It is single-goroutine, virtual-time
// only, and allocation-free after warmup (scratch buffers and staggered
// copies recycle through free lists).
type Sender struct {
	// Emit transmits one wire frame on the primary (microwave) path. The
	// slice is valid only for the duration of the call.
	Emit func(b []byte)
	// Emit2, if set, carries Duplicate second copies on an alternate
	// path (cross-path duplication). When nil the copy reuses Emit.
	Emit2 func(b []byte)

	Stats SenderStats

	sched  *sim.Scheduler
	cfg    SenderConfig
	policy Policy
	seq    uint32

	// Parity accumulator for the open group [groupStart, groupStart+groupN).
	groupStart uint32
	groupN     uint8
	lenXor     uint16
	parity     []byte

	buf  []byte    // scratch wire buffer, reused per frame
	jobs []*dupJob // free list for staggered duplicate copies
}

// NewSender creates a Sender in the ReplayOnly policy. sched is needed
// only when cfg.Stagger is nonzero.
func NewSender(sched *sim.Scheduler, cfg SenderConfig) *Sender {
	if cfg.K < 2 || cfg.K > MaxGroup {
		panic("redundancy: parity group size out of range")
	}
	return &Sender{sched: sched, cfg: cfg}
}

// Policy returns the active policy.
func (s *Sender) Policy() Policy { return s.policy }

// NextSeq returns the sequence the next datagram will carry.
func (s *Sender) NextSeq() uint32 { return s.seq + 1 }

// Apply switches the transmit policy. Leaving ParityFEC flushes a partial
// parity group first, so every frame already on the wire stays covered;
// entering it opens a fresh group at the next sequence. Policy changes are
// therefore safe at any frame boundary — the wire format carries all group
// state, and the receiver needs no notice.
func (s *Sender) Apply(p Policy) {
	if p == s.policy {
		return
	}
	if s.policy == ParityFEC && s.groupN > 0 {
		s.flushParity()
	}
	s.policy = p
	if p == ParityFEC {
		s.resetGroup()
	}
}

// Send transmits one datagram under the active policy. payload must fit
// the wire format's uint16 length XOR (64 KiB), far above any MTU here.
func (s *Sender) Send(payload []byte) {
	s.seq++
	s.buf = AppendDataFrame(s.buf[:0], s.seq, payload)
	s.Stats.DataFrames++
	s.Stats.DataBytes += uint64(len(payload))
	s.Stats.OverheadBytes += dataHeaderLen
	s.Emit(s.buf)

	switch s.policy {
	case Duplicate:
		s.Stats.DupFrames++
		s.Stats.OverheadBytes += uint64(len(s.buf))
		switch {
		case s.Emit2 != nil:
			s.Emit2(s.buf)
		case s.cfg.Stagger > 0:
			j := s.getJob()
			j.b = append(j.b, s.buf...)
			s.sched.AfterArgs(s.cfg.Stagger, sim.PrioDeliver, sendDup, s, j)
		default:
			s.Emit(s.buf)
		}
	case ParityFEC:
		s.accumulate(payload)
		if int(s.groupN) == s.cfg.K {
			s.flushParity()
			s.resetGroup()
		}
	}
}

// accumulate folds payload into the open parity group.
func (s *Sender) accumulate(payload []byte) {
	for len(s.parity) < len(payload) {
		s.parity = append(s.parity, 0)
	}
	for i, b := range payload {
		s.parity[i] ^= b
	}
	s.lenXor ^= uint16(len(payload))
	s.groupN++
}

// flushParity emits the parity frame for the open group.
func (s *Sender) flushParity() {
	s.buf = AppendParityFrame(s.buf[:0], s.groupStart, s.groupN, s.lenXor, s.parity)
	s.Stats.ParityFrames++
	s.Stats.OverheadBytes += uint64(len(s.buf))
	s.Emit(s.buf)
}

// resetGroup opens a fresh parity group at the next sequence.
func (s *Sender) resetGroup() {
	s.groupStart = s.seq + 1
	s.groupN = 0
	s.lenXor = 0
	s.parity = s.parity[:0]
}

// dupJob carries one staggered duplicate copy through the scheduler
// without a closure; the buffer recycles through the sender's free list.
type dupJob struct{ b []byte }

func (s *Sender) getJob() *dupJob {
	if n := len(s.jobs); n > 0 {
		j := s.jobs[n-1]
		s.jobs = s.jobs[:n-1]
		j.b = j.b[:0]
		return j
	}
	return &dupJob{}
}

func sendDup(a, b any) {
	s, j := a.(*Sender), b.(*dupJob)
	s.Emit(j.b)
	s.jobs = append(s.jobs, j)
}
