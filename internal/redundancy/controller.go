package redundancy

import (
	"fmt"
	"strings"

	"tradenet/internal/sim"
)

// StatsSource supplies cumulative transmit/loss counters for the path the
// controller is steering. Samples are taken on virtual-time ticks; the
// controller works on per-window deltas.
type StatsSource interface {
	Sample() LossSample
}

// LossSample is a cumulative counter pair: frames committed to the wire
// and frames lost in flight.
type LossSample struct {
	Tx, Lost uint64
}

// CounterSource adapts any pair of cumulative uint64 counters — e.g. a
// netsim.Port's TxFrames/Lost, or a normalizer's MsgsIn/MsgLost — into a
// StatsSource. The pointers are read on the simulation goroutine only.
type CounterSource struct {
	Tx, Lost *uint64
}

// Sample reads the counters.
func (c CounterSource) Sample() LossSample { return LossSample{Tx: *c.Tx, Lost: *c.Lost} }

// SumSource aggregates several sources (e.g. both directions of a
// circuit, or both paths of a dual-path WAN).
type SumSource []StatsSource

// Sample sums the member samples.
func (s SumSource) Sample() LossSample {
	var out LossSample
	for _, src := range s {
		m := src.Sample()
		out.Tx += m.Tx
		out.Lost += m.Lost
	}
	return out
}

// ControllerConfig tunes the closed loop. The defaults react within ~1 ms
// of a fade onset (two 500 µs windows) and decay within ~2 ms of clear
// air — fast attack, slow decay, the classic congestion-control shape.
type ControllerConfig struct {
	// Window is the sampling period.
	Window sim.Duration
	// MinFrames skips judgement on windows with fewer transmitted
	// frames — a quiet window says nothing about the medium. Streaks
	// freeze rather than reset across skipped windows.
	MinFrames uint64
	// EnterFEC and EnterDup are window loss ratios at or above which
	// ParityFEC (resp. Duplicate) is the desired policy. EnterDup should
	// sit near the loss rate where two-losses-per-parity-group stops
	// being rare — beyond it, FEC's groups keep exhausting and replay
	// returns through the back door.
	EnterFEC, EnterDup float64
	// EnterAfter is how many consecutive windows must desire a higher
	// policy before the controller jumps (directly) to it.
	EnterAfter int
	// ExitAfter is how many consecutive windows must desire a lower
	// policy before the controller steps down (one level at a time).
	ExitAfter int
}

// DefaultControllerConfig: 500 µs windows, ≥8 frames to judge, FEC at
// ≥1% loss, Duplicate at ≥12% loss, escalate after 2 windows, decay
// after 4.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{
		Window:     500 * sim.Microsecond,
		MinFrames:  8,
		EnterFEC:   0.01,
		EnterDup:   0.12,
		EnterAfter: 2,
		ExitAfter:  4,
	}
}

// PolicyDecision records one policy switch, for the experiment report and
// for regression-testing convergence.
type PolicyDecision struct {
	At       sim.Time
	From, To Policy
	Ratio    float64 // the window loss ratio that tipped the streak
	Window   uint64  // index of the sampling window that decided
}

// Controller is the closed loop: every Window of virtual time it samples
// the StatsSource, classifies the window's loss ratio against the policy
// ladder ReplayOnly < ParityFEC < Duplicate, and applies hysteresis-gated
// switches to its adapters (sender and receiver). All inputs are
// virtual-time simulation state; with a fixed seed the decision sequence
// is byte-reproducible.
type Controller struct {
	// Decisions is the switch log, in decision order.
	Decisions []PolicyDecision

	// Cumulative counters, suitable for metrics.Registry registration.
	Switches       uint64
	WindowsSampled uint64
	WindowsSkipped uint64

	sched    *sim.Scheduler
	cfg      ControllerConfig
	src      StatsSource
	adapters []Adapter

	policy   Policy
	last     LossSample
	up, down int
	stopped  bool
}

// NewController builds a controller starting in ReplayOnly. It does not
// tick until Start.
func NewController(sched *sim.Scheduler, cfg ControllerConfig, src StatsSource, adapters ...Adapter) *Controller {
	if cfg.Window <= 0 || cfg.EnterAfter <= 0 || cfg.ExitAfter <= 0 {
		panic("redundancy: controller config must have positive window and streaks")
	}
	return &Controller{sched: sched, cfg: cfg, src: src, adapters: adapters}
}

// Policy returns the currently applied policy.
func (c *Controller) Policy() Policy { return c.policy }

// Start baselines the counters now and schedules the first sampling tick
// one window out, at control priority (management-plane actions order
// before same-tick deliveries, like real control planes that run beside
// the data path).
func (c *Controller) Start() {
	c.last = c.src.Sample()
	c.sched.AfterArgs(c.cfg.Window, sim.PrioControl, controllerTick, c, nil)
}

// Stop halts the loop after the current window.
func (c *Controller) Stop() { c.stopped = true }

// controllerTick is the closure-free self-rearming tick.
func controllerTick(a, _ any) {
	c := a.(*Controller)
	if c.stopped {
		return
	}
	c.evaluate()
	c.sched.AfterArgs(c.cfg.Window, sim.PrioControl, controllerTick, c, nil)
}

// evaluate judges one window.
func (c *Controller) evaluate() {
	s := c.src.Sample()
	dTx := s.Tx - c.last.Tx
	dLost := s.Lost - c.last.Lost
	c.last = s
	c.WindowsSampled++
	if dTx < c.cfg.MinFrames {
		c.WindowsSkipped++
		return
	}
	ratio := float64(dLost) / float64(dTx)
	desired := ReplayOnly
	switch {
	case ratio >= c.cfg.EnterDup:
		desired = Duplicate
	case ratio >= c.cfg.EnterFEC:
		desired = ParityFEC
	}
	switch {
	case desired > c.policy:
		c.up++
		c.down = 0
		if c.up >= c.cfg.EnterAfter {
			c.switchTo(desired, ratio) // fast attack: jump straight there
		}
	case desired < c.policy:
		c.down++
		c.up = 0
		if c.down >= c.cfg.ExitAfter {
			c.switchTo(c.policy-1, ratio) // slow decay: one rung at a time
		}
	default:
		c.up, c.down = 0, 0
	}
}

// switchTo applies a policy to every adapter and logs the decision.
func (c *Controller) switchTo(p Policy, ratio float64) {
	c.Decisions = append(c.Decisions, PolicyDecision{
		At: c.sched.Now(), From: c.policy, To: p, Ratio: ratio, Window: c.WindowsSampled,
	})
	c.policy = p
	c.Switches++
	c.up, c.down = 0, 0
	for _, a := range c.adapters {
		a.Apply(p)
	}
}

// LogString renders the decision log, one line per switch — the E-series
// reports embed it so a policy trajectory change shows up as a byte diff.
func (c *Controller) LogString() string {
	if len(c.Decisions) == 0 {
		return "  (no policy switches)\n"
	}
	var b strings.Builder
	for _, d := range c.Decisions {
		fmt.Fprintf(&b, "  %8.1fus  %s -> %s  (window %d loss %.3f)\n",
			float64(d.At)/float64(sim.Microsecond), d.From, d.To, d.Window, d.Ratio)
	}
	return b.String()
}
