package feed

import (
	"testing"

	"tradenet/internal/netsim"
	"tradenet/internal/sim"
	"tradenet/internal/units"
)

func mkDgrams(t *testing.T, unit uint8, counts ...int) [][]byte {
	t.Helper()
	p := NewPacker(Internal, unit)
	var m Msg
	m.Type = MsgDeleteOrder
	var out [][]byte
	id := uint64(0)
	for _, n := range counts {
		for i := 0; i < n; i++ {
			m.OrderID = id
			id++
			p.Add(&m)
		}
		p.Flush(func(d []byte) { out = append(out, append([]byte(nil), d...)) })
	}
	return out
}

func TestRetainBufferWindow(t *testing.T) {
	rb := NewRetainBuffer(1, 3)
	dgrams := mkDgrams(t, 1, 2, 2, 2, 2) // seqs 1-2, 3-4, 5-6, 7-8
	for _, d := range dgrams {
		rb.Retain(d)
	}
	if rb.Retained() != 3 {
		t.Fatalf("retained = %d", rb.Retained())
	}
	// Oldest datagram (seq 1-2) rolled out.
	if rb.OldestSeq() != 3 {
		t.Fatalf("oldest = %d", rb.OldestSeq())
	}
	// Replay of a covered range.
	var replayed int
	if !rb.Replay(5, 7, func([]byte) { replayed++ }) {
		t.Fatal("covered range reported incomplete")
	}
	if replayed != 1 {
		t.Fatalf("replayed %d datagrams, want 1 (seqs 5-6)", replayed)
	}
	// Replay spanning the rolled-out region reports incompleteness.
	replayed = 0
	if rb.Replay(1, 4, func([]byte) { replayed++ }) {
		t.Fatal("rolled-out range reported complete")
	}
	if replayed != 1 {
		t.Fatalf("partial replay = %d, want the surviving 3-4 datagram", replayed)
	}
	// Foreign units are not retained.
	rb.Retain(mkDgrams(t, 9, 1)[0])
	if rb.Retained() != 3 {
		t.Fatal("foreign unit retained")
	}
}

func TestRetainBufferSteadyStateEviction(t *testing.T) {
	// At capacity every Retain evicts the oldest datagram and recycles its
	// buffer as the copy target for the next one. A long steady-state run
	// must keep exactly the newest cap datagrams with their contents intact
	// — any aliasing between the spare buffer and a still-retained datagram
	// shows up here as corrupted order ids.
	const cap = 4
	rb := NewRetainBuffer(1, cap)
	dgrams := mkDgrams(t, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1) // 10 dgrams, seqs 1..10, OrderIDs 0..9
	for i, d := range dgrams {
		rb.Retain(d)
		if rb.Retained() > cap {
			t.Fatalf("after %d retains: window holds %d > cap %d", i+1, rb.Retained(), cap)
		}
	}
	if rb.OldestSeq() != uint32(len(dgrams)-cap+1) {
		t.Fatalf("oldest = %d, want %d", rb.OldestSeq(), len(dgrams)-cap+1)
	}
	var ids []uint64
	rb.Replay(1, 100, func(d []byte) {
		var h UnitHeader
		rest, err := DecodeUnitHeader(d, &h)
		if err != nil {
			t.Fatal(err)
		}
		var m Msg
		if _, err := Decode(rest, &m); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, m.OrderID)
	})
	want := []uint64{6, 7, 8, 9} // the newest cap datagrams, oldest first
	if len(ids) != len(want) {
		t.Fatalf("replayed ids %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("replayed ids %v, want %v (evicted buffer aliased a live one?)", ids, want)
		}
	}
}

func TestRecoveryReplayOlderThanWindow(t *testing.T) {
	// A request entirely behind the retain window is refused with TooOld:
	// no datagrams, one refusal surfaced to the reader.
	dgrams := mkDgrams(t, 1, 2, 2, 2, 2) // seqs 1-2, 3-4, 5-6, 7-8
	rb := NewRetainBuffer(1, 2)          // window holds 5-6, 7-8
	for _, d := range dgrams {
		rb.Retain(d)
	}
	srv := NewRecoveryServer(rb)
	var resp []byte
	srv.Receive(AppendRecoveryRequest(nil, 1, 1, 5), func(b []byte) { resp = append(resp, b...) })
	if srv.Served != 0 || srv.Refused != 1 {
		t.Fatalf("served=%d refused=%d, want 0/1", srv.Served, srv.Refused)
	}
	rr := &ResponseReader{}
	var refusals []uint8
	rr.OnRefused = func(st uint8) { refusals = append(refusals, st) }
	if err := rr.Read(resp, nil); err != nil {
		t.Fatal(err)
	}
	if rr.Recovered != 0 {
		t.Fatalf("recovered %d messages from a refused range", rr.Recovered)
	}
	if len(refusals) != 1 || refusals[0] != RecoveryTooOld {
		t.Fatalf("refusals = %v, want [TooOld]", refusals)
	}
}

func TestRecoveryRequestSpansWindowBoundary(t *testing.T) {
	// A request straddling the oldest retained sequence is served partially:
	// the surviving datagrams are replayed AND the response carries TooOld,
	// so the client learns the head of the range is permanently gone rather
	// than mistaking partial replay for full recovery.
	dgrams := mkDgrams(t, 1, 2, 2, 2, 2) // seqs 1-2, 3-4, 5-6, 7-8
	rb := NewRetainBuffer(1, 3)          // 1-2 rolled out; window holds 3-4, 5-6, 7-8
	for _, d := range dgrams {
		rb.Retain(d)
	}
	srv := NewRecoveryServer(rb)
	var resp []byte
	srv.Receive(AppendRecoveryRequest(nil, 1, 1, 7), func(b []byte) { resp = append(resp, b...) })
	if srv.Served != 2 { // 3-4 and 5-6 overlap [1,7); 7-8 does not
		t.Fatalf("served = %d, want 2", srv.Served)
	}
	if srv.Refused != 1 {
		t.Fatalf("refused = %d, want 1 (head of range rolled out)", srv.Refused)
	}
	rr := &ResponseReader{}
	var refused int
	rr.OnRefused = func(uint8) { refused++ }
	if err := rr.Read(resp, nil); err != nil {
		t.Fatal(err)
	}
	if rr.Recovered != 4 {
		t.Fatalf("recovered = %d, want 4 (seqs 3..6)", rr.Recovered)
	}
	if refused != 1 {
		t.Fatalf("reader refusals = %d, want 1", refused)
	}
}

func TestRetainBufferValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity should panic")
		}
	}()
	NewRetainBuffer(1, 0)
}

func TestRecoveryEndToEnd(t *testing.T) {
	// Live path drops the middle datagram; the client requests replay and
	// recovers every message.
	dgrams := mkDgrams(t, 1, 3, 2, 4) // seqs 1-3, 4-5, 6-9
	rb := NewRetainBuffer(1, 16)
	for _, d := range dgrams {
		rb.Retain(d)
	}
	srv := NewRecoveryServer(rb)

	var toServer, toClient []byte
	client := NewRecoveryClient(1, func(req []byte) { toServer = append(toServer, req...) })

	var live, recovered []uint64
	onLive := func(m *Msg) { live = append(live, m.OrderID) }
	onRec := func(m *Msg) { recovered = append(recovered, m.OrderID) }

	client.Consume(dgrams[0], onLive)
	// dgrams[1] lost on the wire.
	client.Consume(dgrams[2], onLive) // triggers the gap request

	if client.Requests != 1 {
		t.Fatalf("requests = %d", client.Requests)
	}
	srv.Receive(toServer, func(b []byte) { toClient = append(toClient, b...) })
	if err := client.ReceiveRecovery(toClient, onRec); err != nil {
		t.Fatal(err)
	}
	if len(live) != 7 {
		t.Fatalf("live messages = %d", len(live))
	}
	if len(recovered) != 2 || recovered[0] != 3 || recovered[1] != 4 {
		t.Fatalf("recovered = %v, want order ids 3,4", recovered)
	}
	if client.Recovered != 2 || srv.Served != 1 {
		t.Fatalf("client.Recovered=%d srv.Served=%d", client.Recovered, srv.Served)
	}
	if srv.Refused != 0 {
		t.Fatalf("refused = %d", srv.Refused)
	}
}

func TestRecoveryUnrecoverableRange(t *testing.T) {
	dgrams := mkDgrams(t, 1, 1, 1, 1, 1, 1) // seqs 1..5
	rb := NewRetainBuffer(1, 2)             // only the last two retained
	for _, d := range dgrams {
		rb.Retain(d)
	}
	srv := NewRecoveryServer(rb)
	var toServer, toClient []byte
	client := NewRecoveryClient(1, func(req []byte) { toServer = append(toServer, req...) })
	var failed []GapInfo
	client.Unrecoverable = func(g GapInfo) { failed = append(failed, g) }

	client.Consume(dgrams[0], nil)
	// Lose 2,3 — both already rolled out of the retain window.
	client.Consume(dgrams[3], nil)
	srv.Receive(toServer, func(b []byte) { toClient = append(toClient, b...) })
	client.ReceiveRecovery(toClient, nil)
	if len(failed) != 1 || failed[0].Expected != 2 {
		t.Fatalf("unrecoverable = %+v", failed)
	}
	if srv.Refused != 1 {
		t.Fatalf("refused = %d", srv.Refused)
	}
}

func TestRecoveryUnknownUnit(t *testing.T) {
	srv := NewRecoveryServer(NewRetainBuffer(1, 4))
	var out []byte
	srv.Receive(AppendRecoveryRequest(nil, 42, 1, 2), func(b []byte) { out = append(out, b...) })
	if srv.Refused != 1 {
		t.Fatal("unknown unit should refuse")
	}
	client := NewRecoveryClient(42, func([]byte) {})
	gotFail := false
	client.Unrecoverable = func(GapInfo) { gotFail = true }
	client.ReceiveRecovery(out, nil)
	if !gotFail {
		t.Fatal("bad-unit response should surface as unrecoverable")
	}
}

func TestRecoveryRequestSegmentationTolerant(t *testing.T) {
	// Requests and responses may arrive in arbitrary stream segments.
	dgrams := mkDgrams(t, 1, 2, 2)
	rb := NewRetainBuffer(1, 8)
	for _, d := range dgrams {
		rb.Retain(d)
	}
	srv := NewRecoveryServer(rb)
	req := AppendRecoveryRequest(nil, 1, 1, 3)
	var resp []byte
	// Byte-at-a-time request delivery.
	for _, by := range req {
		srv.Receive([]byte{by}, func(b []byte) { resp = append(resp, b...) })
	}
	if srv.Served != 1 {
		t.Fatalf("served = %d", srv.Served)
	}
	client := NewRecoveryClient(1, func([]byte) {})
	n := 0
	// Byte-at-a-time response delivery.
	for _, by := range resp {
		if err := client.ReceiveRecovery([]byte{by}, func(*Msg) { n++ }); err != nil {
			t.Fatal(err)
		}
	}
	if n != 2 {
		t.Fatalf("recovered = %d", n)
	}
}

// Recovery over the simulated network: client and server on hosts joined by
// a real stream, loss injected on the multicast path.
func TestRecoveryOverSimulatedStream(t *testing.T) {
	sched := sim.NewScheduler(17)
	h1, h2 := netsim.NewHost(sched, "rxhost"), netsim.NewHost(sched, "exchange")
	n1, n2 := h1.AddNIC("rec", 10), h2.AddNIC("rec", 20)
	netsim.Connect(n1.Port, n2.Port, units.Rate10G, 500*sim.Nanosecond)
	m1, m2 := netsim.NewStreamMux(n1), netsim.NewStreamMux(n2)
	cs := netsim.NewStream(n1, 5000, n2.Addr(5001))
	ss := netsim.NewStream(n2, 5001, n1.Addr(5000))
	m1.Register(cs)
	m2.Register(ss)

	dgrams := mkDgrams(t, 1, 3, 2, 4)
	rb := NewRetainBuffer(1, 16)
	for _, d := range dgrams {
		rb.Retain(d)
	}
	srv := NewRecoveryServer(rb)
	ss.OnData = func(b []byte) { srv.Receive(b, func(resp []byte) { ss.Write(resp) }) }

	client := NewRecoveryClient(1, func(req []byte) { cs.Write(req) })
	var recovered int
	cs.OnData = func(b []byte) {
		if err := client.ReceiveRecovery(b, func(*Msg) { recovered++ }); err != nil {
			t.Fatalf("recovery stream: %v", err)
		}
	}

	live := 0
	sched.At(0, func() {
		client.Consume(dgrams[0], func(*Msg) { live++ })
		// dgrams[1] lost; gap detected on dgrams[2], request goes over the
		// stream.
		client.Consume(dgrams[2], func(*Msg) { live++ })
	})
	sched.Run()
	if live != 7 || recovered != 2 {
		t.Fatalf("live=%d recovered=%d", live, recovered)
	}
}
