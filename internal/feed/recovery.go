package feed

import "encoding/binary"

// Gap recovery: production sequenced feeds pair the multicast stream with a
// TCP retransmission service — a receiver that detects a sequence gap asks
// the exchange to replay the missing range from a retained window. (CBOE's
// PITCH spec calls this the gap-request proxy; the paper's §2 "highly-
// optimized, stateful protocols" covers exactly this machinery.) A/B
// arbitration heals single-path loss for free; recovery is the backstop
// when both copies are gone or only one path is provisioned.

// RetainBuffer is the server-side replay window: the most recent datagrams
// of one unit, indexed by starting sequence number.
type RetainBuffer struct {
	unit  uint8
	cap   int
	ring  [][]byte // retained datagrams, oldest first
	seqs  []uint32 // starting seq per retained datagram
	spare []byte   // last evicted datagram's buffer, reused by Retain
}

// NewRetainBuffer retains up to capDgrams datagrams for unit.
func NewRetainBuffer(unit uint8, capDgrams int) *RetainBuffer {
	if capDgrams <= 0 {
		panic("feed: retain capacity must be positive")
	}
	return &RetainBuffer{unit: unit, cap: capDgrams}
}

// Retain stores a copy of the datagram for future replay.
func (rb *RetainBuffer) Retain(dgram []byte) {
	var h UnitHeader
	if _, err := DecodeUnitHeader(dgram, &h); err != nil || h.Unit != rb.unit {
		return
	}
	buf := rb.spare
	rb.spare = nil
	rb.ring = append(rb.ring, append(buf[:0], dgram...))
	rb.seqs = append(rb.seqs, h.Seq)
	if len(rb.ring) > rb.cap {
		// At steady state every Retain evicts one datagram, whose buffer
		// becomes the spare for the next copy — the window stops allocating
		// once full.
		rb.spare = rb.ring[0]
		rb.ring = rb.ring[1:]
		rb.seqs = rb.seqs[1:]
	}
}

// Retained returns how many datagrams are currently replayable.
func (rb *RetainBuffer) Retained() int { return len(rb.ring) }

// OldestSeq returns the first sequence still replayable (0 if empty).
func (rb *RetainBuffer) OldestSeq() uint32 {
	if len(rb.seqs) == 0 {
		return 0
	}
	return rb.seqs[0]
}

// Replay invokes emit for every retained datagram overlapping [from, to).
// It reports whether the entire range was covered — false means the window
// has already rolled past part of it (an unrecoverable gap).
func (rb *RetainBuffer) Replay(from, to uint32, emit func(dgram []byte)) bool {
	covered := from >= rb.OldestSeq() && len(rb.ring) > 0
	for i, d := range rb.ring {
		var h UnitHeader
		if _, err := DecodeUnitHeader(d, &h); err != nil {
			continue
		}
		end := rb.seqs[i] + uint32(h.Count)
		if end <= from || rb.seqs[i] >= to {
			continue
		}
		emit(d)
	}
	return covered
}

// Recovery request/response wire format, carried over a reliable stream.
const (
	recoveryReqLen  = 10 // unit(1) + from(4) + to(4) + flags(1)
	recoveryRespHdr = 3  // status(1) + length(2), followed by the datagram
)

// Recovery response status codes.
const (
	RecoveryOK      uint8 = 0
	RecoveryTooOld  uint8 = 1 // range rolled out of the retain window
	RecoveryBadUnit uint8 = 2
	RecoveryDone    uint8 = 3 // terminator after the last replayed datagram
)

// AppendRecoveryRequest encodes a request for unit's sequences [from, to).
func AppendRecoveryRequest(b []byte, unit uint8, from, to uint32) []byte {
	b = append(b, unit)
	b = binary.BigEndian.AppendUint32(b, from)
	b = binary.BigEndian.AppendUint32(b, to)
	return append(b, 0)
}

// RecoveryServer serves replay requests from one or more retain buffers
// (one per unit) over a byte stream.
type RecoveryServer struct {
	buffers map[uint8]*RetainBuffer
	pending []byte

	// Served counts datagrams replayed; Refused counts unrecoverable
	// requests.
	Served  uint64
	Refused uint64
}

// NewRecoveryServer serves the given retain buffers.
func NewRecoveryServer(buffers ...*RetainBuffer) *RecoveryServer {
	s := &RecoveryServer{buffers: make(map[uint8]*RetainBuffer)}
	for _, rb := range buffers {
		s.buffers[rb.unit] = rb
	}
	return s
}

// Receive ingests request-stream bytes; send transmits response bytes.
func (s *RecoveryServer) Receive(data []byte, send func([]byte)) {
	s.pending = append(s.pending, data...)
	for len(s.pending) >= recoveryReqLen {
		req := s.pending[:recoveryReqLen]
		s.pending = s.pending[recoveryReqLen:]
		unit := req[0]
		from := binary.BigEndian.Uint32(req[1:5])
		to := binary.BigEndian.Uint32(req[5:9])
		s.handle(unit, from, to, send)
	}
}

func (s *RecoveryServer) handle(unit uint8, from, to uint32, send func([]byte)) {
	rb, ok := s.buffers[unit]
	if !ok {
		s.Refused++
		send([]byte{RecoveryBadUnit, 0, 0})
		return
	}
	var out []byte
	complete := rb.Replay(from, to, func(d []byte) {
		s.Served++
		out = append(out, RecoveryOK)
		out = binary.BigEndian.AppendUint16(out, uint16(len(d)))
		out = append(out, d...)
	})
	if !complete {
		s.Refused++
		out = append(out, RecoveryTooOld, 0, 0)
	}
	out = append(out, RecoveryDone, 0, 0)
	send(out)
}

// ResponseReader incrementally parses a recovery response stream, decoding
// replayed datagrams back into messages. It is the client-side half of the
// wire protocol with no gap policy attached — RecoveryClient composes it
// with a Reassembler, and components with their own sequencing (a
// normalizer's per-unit reassemblers, say) drive it directly.
type ResponseReader struct {
	pending []byte

	// Recovered counts messages decoded from RecoveryOK responses.
	Recovered uint64
	// OnRefused, if set, fires once per refusal status (RecoveryTooOld or
	// RecoveryBadUnit): the requested range is permanently lost.
	OnRefused func(status uint8)
	// OnDone, if set, fires once per RecoveryDone terminator — the server
	// has finished answering one request (served or refused), so callers can
	// balance requests sent against responses completed.
	OnDone func()
}

// Read ingests response-stream bytes, invoking fn for every recovered
// message. Partial responses are buffered until the rest arrives.
func (rr *ResponseReader) Read(data []byte, fn func(*Msg)) error {
	rr.pending = append(rr.pending, data...)
	for len(rr.pending) >= recoveryRespHdr {
		status := rr.pending[0]
		n := int(binary.BigEndian.Uint16(rr.pending[1:3]))
		if len(rr.pending) < recoveryRespHdr+n {
			return nil
		}
		body := rr.pending[recoveryRespHdr : recoveryRespHdr+n]
		rr.pending = rr.pending[recoveryRespHdr+n:]
		switch status {
		case RecoveryOK:
			var h UnitHeader
			rest, err := DecodeUnitHeader(body, &h)
			if err != nil {
				return err
			}
			var m Msg
			for i := 0; i < int(h.Count); i++ {
				rest, err = Decode(rest, &m)
				if err != nil {
					return err
				}
				rr.Recovered++
				if fn != nil {
					fn(&m)
				}
			}
		case RecoveryTooOld, RecoveryBadUnit:
			if rr.OnRefused != nil {
				rr.OnRefused(status)
			}
		case RecoveryDone:
			// Range complete.
			if rr.OnDone != nil {
				rr.OnDone()
			}
		}
	}
	return nil
}

// RecoveryClient pairs a Reassembler with a recovery stream: gaps trigger
// replay requests, and replayed datagrams are fed back through the
// reassembler (whose partial-overlap handling skips anything already
// delivered).
type RecoveryClient struct {
	R    *Reassembler
	send func([]byte) // transmits request bytes
	resp ResponseReader

	// Unrecoverable fires when the server could not cover a requested
	// range — permanent data loss despite recovery.
	Unrecoverable func(GapInfo)

	Requests  uint64
	Recovered uint64
	lastGap   GapInfo
}

// NewRecoveryClient wraps a reassembler for unit; send transmits recovery
// requests. The client installs itself as the reassembler's gap handler.
func NewRecoveryClient(unit uint8, send func([]byte)) *RecoveryClient {
	c := &RecoveryClient{R: NewReassembler(unit), send: send}
	c.R.OnGap = c.RequestRange
	c.resp.OnRefused = func(uint8) {
		if c.Unrecoverable != nil {
			c.Unrecoverable(c.lastGap)
		}
	}
	return c
}

// RequestRange issues a recovery request for the described range. The
// reassembler's own gap detection routes here automatically; callers with
// out-of-band loss knowledge — an Arbiter declaring a loss after A/B
// arbitration, or a receiver healing a failover blackout — drive recovery
// through it directly.
func (c *RecoveryClient) RequestRange(g GapInfo) {
	c.lastGap = g
	c.Requests++
	c.send(AppendRecoveryRequest(nil, g.Unit, g.Expected, g.Got))
}

// Consume ingests a live multicast datagram.
func (c *RecoveryClient) Consume(dgram []byte, fn func(*Msg)) error {
	return c.R.Consume(dgram, fn)
}

// ReceiveRecovery ingests response-stream bytes, replaying recovered
// datagrams into fn.
//
// Note the recovered messages arrive *late and out of band*: the live
// stream has moved on, so the reassembler's sequence cursor is already
// past them. Recovered data is delivered straight to fn (flagged data, in
// a real system) rather than through the sequencer.
func (c *RecoveryClient) ReceiveRecovery(data []byte, fn func(*Msg)) error {
	err := c.resp.Read(data, fn)
	c.Recovered = c.resp.Recovered
	return err
}
