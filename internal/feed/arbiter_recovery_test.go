package feed

import (
	"math/rand"
	"testing"
)

// TestArbiterRecoveryExactlyOnceProperty is the satellite property test for
// the Arbiter + RecoveryClient composition: when both copies of a datagram
// are lost and the declared gap is recovered out of band *while live A/B
// arbitration keeps running* — late slow-path copies of already-declared
// datagrams, recovery responses interleaved with live delivery, responses
// segmented mid-frame — every published message is still delivered exactly
// once, and the live stream stays strictly in order.
//
// The invariant holds because both components share the datagram as their
// unit of work: the arbiter's holes always open and close on datagram
// boundaries (nextSeq only ever advances to a datagram's start or end), so a
// replayed range covers exactly the declared-lost datagrams and never
// overlaps a live-delivered sequence, while stale late copies are dropped by
// the arbiter's sequence cursor. Randomized drop patterns, reorder delays,
// and response timing across many seeds probe that argument rather than one
// hand-picked interleaving.
func TestArbiterRecoveryExactlyOnceProperty(t *testing.T) {
	const (
		mainDgrams = 150
		tailDgrams = 20 // drop-free tail flushes any open hole past MaxHold
	)
	var totalGaps, totalRecovered, totalLateStale uint64

	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))

		counts := make([]int, 0, mainDgrams+tailDgrams)
		for i := 0; i < mainDgrams; i++ {
			counts = append(counts, 1+rng.Intn(4))
		}
		for i := 0; i < tailDgrams; i++ {
			counts = append(counts, 1)
		}
		dgrams := mkDgrams(t, 1, counts...)
		totalMsgs := 0
		for _, n := range counts {
			totalMsgs += n
		}

		// The exchange side retains everything, so every declared loss is
		// recoverable; the server must never refuse.
		rb := NewRetainBuffer(1, len(dgrams))
		for _, d := range dgrams {
			rb.Retain(d)
		}
		srv := NewRecoveryServer(rb)

		arb := NewArbiter(1)
		arb.MaxHold = 3 // small reorder buffer: losses get declared mid-stream

		// Request and response bytes travel on delayed queues so recovery
		// traffic interleaves with — and races — continuing live arbitration.
		type delayed struct {
			at int
			b  []byte
		}
		var reqQ, respQ []delayed
		step := 0
		client := NewRecoveryClient(1, func(req []byte) {
			reqQ = append(reqQ, delayed{step + 1 + rng.Intn(3), append([]byte(nil), req...)})
		})
		arb.OnGap = client.RequestRange
		client.Unrecoverable = func(g GapInfo) {
			t.Fatalf("seed %d: unrecoverable range %+v with a full retain window", seed, g)
		}

		var liveIDs, recIDs []uint64
		onLive := func(m *Msg) { liveIDs = append(liveIDs, m.OrderID) }
		onRec := func(m *Msg) { recIDs = append(recIDs, m.OrderID) }

		var bQ []delayed
		var lateStale uint64
		pump := func() {
			// Late slow-path copies first: some land after their datagram was
			// declared lost (or even after its replay arrived) and must be
			// dropped as stale, not re-delivered.
			rest := bQ[:0]
			for _, d := range bQ {
				if d.at > step {
					rest = append(rest, d)
					continue
				}
				var h UnitHeader
				if _, err := DecodeUnitHeader(d.b, &h); err != nil {
					t.Fatal(err)
				}
				if h.Seq+uint32(h.Count) <= arb.nextSeq {
					lateStale++
				}
				if err := arb.ConsumeB(d.b, onLive); err != nil && err != ErrGap {
					t.Fatalf("seed %d: ConsumeB: %v", seed, err)
				}
			}
			bQ = rest

			due := reqQ[:0]
			for _, r := range reqQ {
				if r.at > step {
					due = append(due, r)
					continue
				}
				srv.Receive(r.b, func(b []byte) {
					respQ = append(respQ, delayed{step + 1 + rng.Intn(3), append([]byte(nil), b...)})
				})
			}
			reqQ = due

			due = respQ[:0]
			for _, r := range respQ {
				if r.at > step {
					due = append(due, r)
					continue
				}
				// Segmented response delivery: frames split mid-header and
				// mid-datagram.
				for b := r.b; len(b) > 0; {
					n := 7
					if n > len(b) {
						n = len(b)
					}
					if err := client.ReceiveRecovery(b[:n], onRec); err != nil {
						t.Fatalf("seed %d: ReceiveRecovery: %v", seed, err)
					}
					b = b[n:]
				}
			}
			respQ = due
		}

		for ; step < len(dgrams); step++ {
			pump()
			tail := step >= mainDgrams
			if tail || rng.Float64() >= 0.30 { // A path delivers
				if err := arb.ConsumeA(dgrams[step], onLive); err != nil && err != ErrGap {
					t.Fatalf("seed %d: ConsumeA: %v", seed, err)
				}
			}
			if tail || rng.Float64() >= 0.35 { // B path delivers, delayed 0-3 steps
				bQ = append(bQ, delayed{step + rng.Intn(4), dgrams[step]})
			}
		}
		for extra := 0; len(bQ)+len(reqQ)+len(respQ) > 0; extra++ {
			if extra > 100 {
				t.Fatalf("seed %d: queues never drained", seed)
			}
			pump()
			step++
		}

		// The property: exactly-once, partitioned cleanly between the live
		// in-order stream and the out-of-band recovery stream.
		seen := make(map[uint64]int, totalMsgs)
		for i, id := range liveIDs {
			if i > 0 && id <= liveIDs[i-1] {
				t.Fatalf("seed %d: live stream out of order at %d: %d after %d",
					seed, i, id, liveIDs[i-1])
			}
			seen[id]++
		}
		for _, id := range recIDs {
			seen[id]++
		}
		for id := uint64(0); id < uint64(totalMsgs); id++ {
			if seen[id] != 1 {
				t.Fatalf("seed %d: order id %d delivered %d times (live=%d recovered=%d)",
					seed, id, seen[id], len(liveIDs), len(recIDs))
			}
		}
		if len(seen) != totalMsgs {
			t.Fatalf("seed %d: %d distinct ids delivered, want %d", seed, len(seen), totalMsgs)
		}

		// Accounting closes: the arbiter's own ledger agrees with what the
		// callbacks saw, and every declared-lost message was recovered.
		msgs, gaps, lost := arb.Stats()
		if msgs != uint64(len(liveIDs)) {
			t.Fatalf("seed %d: arbiter msgs=%d, live callback saw %d", seed, msgs, len(liveIDs))
		}
		if msgs+lost != uint64(totalMsgs) {
			t.Fatalf("seed %d: msgs %d + lost %d != published %d", seed, msgs, lost, totalMsgs)
		}
		if uint64(len(recIDs)) != lost {
			t.Fatalf("seed %d: recovered %d messages, arbiter declared %d lost",
				seed, len(recIDs), lost)
		}
		if client.Requests != gaps {
			t.Fatalf("seed %d: %d recovery requests for %d declared gaps", seed, client.Requests, gaps)
		}
		if srv.Refused != 0 {
			t.Fatalf("seed %d: server refused %d requests with a full window", seed, srv.Refused)
		}
		if arb.Held() != 0 {
			t.Fatalf("seed %d: %d datagrams still held after the drop-free tail", seed, arb.Held())
		}
		totalGaps += gaps
		totalRecovered += uint64(len(recIDs))
		totalLateStale += lateStale
	}

	// The sweep must actually have exercised the interesting interleavings,
	// not vacuously passed on loss-free runs.
	if totalGaps == 0 || totalRecovered == 0 {
		t.Fatalf("property vacuous: gaps=%d recovered=%d across all seeds", totalGaps, totalRecovered)
	}
	if totalLateStale == 0 {
		t.Fatal("no late slow-path copy ever arrived after its loss declaration: race untested")
	}
}
