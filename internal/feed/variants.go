package feed

import (
	"math/rand"

	"tradenet/internal/market"
	"tradenet/internal/pkt"
)

// The paper's Table 1 samples frame lengths from three production feeds.
// These variants reproduce those distributions: each exchange's message
// widths set the minimum and median frame, its packing behaviour sets the
// mean, and its maximum datagram sets the maximum frame.
//
//	Feed        min  avg  median  max
//	Exchange A   73   92      89  1514
//	Exchange B   64  113      76  1067
//	Exchange C   81  151     101  1442
var (
	// ExchangeA uses mid-width encodings and mostly single-message frames.
	ExchangeA = &Variant{
		Name: "Exchange A",
		Sizes: map[MsgType]int{
			MsgAddOrder: 39, MsgDeleteOrder: 23, MsgOrderExecuted: 31,
			MsgReduceSize: 27, MsgModifyOrder: 31, MsgTrade: 47,
		},
		MaxDgram: 1472, // 1514-byte frames at the maximum
	}

	// ExchangeB uses the canonical compact encodings (the PITCH sizes the
	// paper cites: 26-byte adds, 14-byte deletes) but packs aggressively,
	// so its mean is far above its median.
	ExchangeB = &Variant{
		Name:     "Exchange B",
		MaxDgram: 1025, // 1067-byte frames at the maximum
	}

	// ExchangeC uses verbose encodings with exchange-specific fields.
	ExchangeC = &Variant{
		Name: "Exchange C",
		Sizes: map[MsgType]int{
			MsgAddOrder: 51, MsgDeleteOrder: 31, MsgOrderExecuted: 43,
			MsgReduceSize: 35, MsgModifyOrder: 47, MsgTrade: 63,
		},
		MaxDgram: 1400, // 1442-byte frames at the maximum
	}
)

// Mix is a market-data message-type distribution plus packing behaviour,
// modelling one exchange's mid-day traffic.
type Mix struct {
	// Weights holds relative frequencies per message type.
	Weights map[MsgType]float64
	// ExtraMean is the mean number of additional messages packed into a
	// frame beyond the first (geometric).
	ExtraMean float64
	// BurstProb is the probability a frame is a burst frame, packed to the
	// variant's maximum datagram.
	BurstProb float64
}

// MidDayMix returns the calibrated mid-day mix for each Table 1 variant.
func MidDayMix(v *Variant) Mix {
	switch v {
	case ExchangeA:
		return Mix{
			Weights: map[MsgType]float64{
				MsgAddOrder: .55, MsgDeleteOrder: .20, MsgOrderExecuted: .08,
				MsgReduceSize: .02, MsgModifyOrder: .10, MsgTrade: .05,
			},
			ExtraMean: 0.10,
			BurstProb: 0.002,
		}
	case ExchangeB:
		return Mix{
			Weights: map[MsgType]float64{
				MsgAddOrder: .50, MsgDeleteOrder: .25, MsgOrderExecuted: .10,
				MsgReduceSize: .05, MsgModifyOrder: .05, MsgTrade: .05,
			},
			ExtraMean: 0.70,
			BurstProb: 0.025,
		}
	case ExchangeC:
		return Mix{
			Weights: map[MsgType]float64{
				MsgAddOrder: .50, MsgDeleteOrder: .25, MsgOrderExecuted: .10,
				MsgReduceSize: .05, MsgModifyOrder: .05, MsgTrade: .05,
			},
			ExtraMean: 0.55,
			BurstProb: 0.024,
		}
	default:
		return Mix{
			Weights:   map[MsgType]float64{MsgAddOrder: .6, MsgDeleteOrder: .4},
			ExtraMean: 0.2,
		}
	}
}

var mixOrder = []MsgType{
	MsgAddOrder, MsgDeleteOrder, MsgOrderExecuted,
	MsgReduceSize, MsgModifyOrder, MsgTrade,
}

// drawType samples a message type from the mix.
func (m Mix) drawType(rng *rand.Rand) MsgType {
	var total float64
	for _, t := range mixOrder {
		total += m.Weights[t]
	}
	x := rng.Float64() * total
	for _, t := range mixOrder {
		x -= m.Weights[t]
		if x < 0 {
			return t
		}
	}
	return MsgAddOrder
}

// randomMsg fills m with a plausible message of type t.
func randomMsg(rng *rand.Rand, t MsgType, m *Msg) {
	*m = Msg{
		Type:    t,
		TimeNs:  rng.Uint32() % 1_000_000_000,
		OrderID: rng.Uint64(),
	}
	switch t {
	case MsgAddOrder, MsgTrade:
		m.Side = market.Side(rng.Intn(2))
		m.Qty = uint32(1 + rng.Intn(500))
		m.SetSymbol("SYM")
		m.Price = uint64(10_000 + rng.Intn(1_000_000))
		m.ExecID = rng.Uint64()
	case MsgOrderExecuted, MsgReduceSize, MsgModifyOrder:
		m.Qty = uint32(1 + rng.Intn(500))
		m.Price = uint64(10_000 + rng.Intn(1_000_000))
		m.ExecID = rng.Uint64()
	}
}

// FrameGen produces a stream of UDP market-data frames for one variant,
// for the Table 1 experiment and for driving feed traffic through the
// network models.
type FrameGen struct {
	variant *Variant
	mix     Mix
	packer  *Packer
	src     pkt.UDPAddr
	dst     pkt.UDPAddr
	ipID    uint16
	frame   []byte
	msg     Msg
}

// NewFrameGen returns a generator emitting frames from src to dst in v's
// format.
func NewFrameGen(v *Variant, src, dst pkt.UDPAddr) *FrameGen {
	return &FrameGen{
		variant: v,
		mix:     MidDayMix(v),
		packer:  NewPacker(v, 1),
		src:     src,
		dst:     dst,
	}
}

// Next generates the next frame. The returned slice is reused across calls;
// the caller must copy it if it outlives the next call. The message count
// packed into the frame is also returned.
func (g *FrameGen) Next(rng *rand.Rand) (frame []byte, msgs int) {
	n := 1
	if rng.Float64() < g.mix.BurstProb {
		n = 1 << 30 // pack until the datagram is full
	} else if g.mix.ExtraMean > 0 {
		// Geometric number of extra messages with the configured mean.
		p := 1 / (1 + g.mix.ExtraMean)
		for rng.Float64() > p {
			n++
		}
	}
	for i := 0; i < n; i++ {
		randomMsg(rng, g.mix.drawType(rng), &g.msg)
		if !g.packer.Add(&g.msg) {
			break // datagram full
		}
	}
	msgs = g.packer.Pending()
	g.packer.Flush(func(dgram []byte) {
		g.ipID++
		g.frame = pkt.AppendUDPFrame(g.frame[:0], g.src, g.dst, g.ipID, dgram)
	})
	return g.frame, msgs
}
