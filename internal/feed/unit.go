package feed

import (
	"encoding/binary"
	"errors"
)

// UnitHeaderLen is the size of the sequenced unit header that precedes the
// messages in every datagram: length (2), count (1), unit (1), sequence (4).
const UnitHeaderLen = 8

// UnitHeader is the datagram-level header of a sequenced feed. An exchange
// often partitions its feed across units/multicast groups (§2); each unit
// numbers its messages independently so receivers can detect loss.
type UnitHeader struct {
	Length uint16 // total datagram length including this header
	Count  uint8  // messages in this datagram
	Unit   uint8  // feed partition id
	Seq    uint32 // sequence number of the first message
}

// AppendUnitHeader appends h to b.
func AppendUnitHeader(b []byte, h UnitHeader) []byte {
	b = binary.BigEndian.AppendUint16(b, h.Length)
	b = append(b, h.Count, h.Unit)
	return binary.BigEndian.AppendUint32(b, h.Seq)
}

// DecodeUnitHeader parses the unit header from the front of b and returns
// the message bytes.
func DecodeUnitHeader(b []byte, h *UnitHeader) ([]byte, error) {
	if len(b) < UnitHeaderLen {
		return nil, ErrShort
	}
	h.Length = binary.BigEndian.Uint16(b)
	h.Count = b[2]
	h.Unit = b[3]
	h.Seq = binary.BigEndian.Uint32(b[4:])
	if int(h.Length) < UnitHeaderLen || int(h.Length) > len(b) {
		return nil, ErrShort
	}
	return b[UnitHeaderLen:h.Length], nil
}

// Packer accumulates messages for one feed unit and emits sequenced
// datagrams, packing "multiple individual update messages ... into each
// packet for efficiency" (§2). Flush policy belongs to the caller: real
// feeds flush when a burst's messages are drained or the datagram nears the
// exchange's maximum.
type Packer struct {
	variant *Variant
	unit    uint8
	seq     uint32 // next sequence number to assign
	count   int
	buf     []byte
}

// NewPacker returns a packer for the given unit in the variant's format.
// Sequence numbers start at 1, as on real feeds.
func NewPacker(v *Variant, unit uint8) *Packer {
	p := &Packer{variant: v, unit: unit, seq: 1}
	p.reset()
	return p
}

func (p *Packer) reset() {
	p.buf = AppendUnitHeader(p.buf[:0], UnitHeader{Unit: p.unit})
	p.count = 0
}

// Variant returns the packer's encoding variant.
func (p *Packer) Variant() *Variant { return p.variant }

// Pending returns the number of messages buffered and not yet flushed.
func (p *Packer) Pending() int { return p.count }

// NextSeq returns the sequence number the next added message will get.
func (p *Packer) NextSeq() uint32 { return p.seq + uint32(p.count) }

// SetNextSeq adopts seq as the next sequence number to assign. A hot-standby
// exchange tracks the primary's feed this way: each journaled datagram
// advances the shadow packer so a promoted backup continues the unit's
// numbering without a discontinuity — downstream receivers see the blackout
// as an ordinary gap. Only legal with no buffered messages.
func (p *Packer) SetNextSeq(seq uint32) {
	if p.count > 0 {
		panic("feed: SetNextSeq with messages pending")
	}
	p.seq = seq
}

// Add encodes m into the pending datagram. It reports whether the message
// fit; when false, the caller must Flush and retry (the datagram is at the
// exchange's maximum).
func (p *Packer) Add(m *Msg) bool {
	if len(p.buf)+p.variant.size(m.Type) > p.variant.MaxDgram || p.count == 255 {
		return false
	}
	p.buf = p.variant.Append(p.buf, m)
	p.count++
	return true
}

// Flush finalizes the pending datagram and passes it to emit. The slice is
// only valid during the call. Flushing an empty packer is a no-op.
func (p *Packer) Flush(emit func(datagram []byte)) {
	if p.count == 0 {
		return
	}
	binary.BigEndian.PutUint16(p.buf, uint16(len(p.buf)))
	p.buf[2] = uint8(p.count)
	binary.BigEndian.PutUint32(p.buf[4:], p.seq)
	p.seq += uint32(p.count)
	emit(p.buf)
	p.reset()
}

// ErrGap is returned by the Reassembler when a sequence gap is detected.
var ErrGap = errors.New("feed: sequence gap")

// GapInfo describes a detected loss.
type GapInfo struct {
	Unit     uint8
	Expected uint32
	Got      uint32
	MsgsLost uint32
}

// Reassembler consumes datagrams for one unit, verifies sequencing, and
// yields decoded messages in order. Out-of-order or duplicate datagrams
// (possible under A/B arbitration) are dropped as already-seen; gaps are
// reported, not healed — the simulator models feeds without retransmission,
// as UDP multicast feeds are.
type Reassembler struct {
	unit    uint8
	nextSeq uint32

	// OnGap, if set, is called when a gap is observed.
	OnGap func(GapInfo)

	msgs     uint64
	gaps     uint64
	lostMsgs uint64

	// scratch is the Msg passed to Consume callbacks; hoisting it off the
	// stack keeps Consume allocation-free (a stack Msg escapes through the
	// dynamic callback). The pointer is only valid during the callback.
	scratch Msg
}

// NewReassembler returns a reassembler expecting unit's sequence 1 first.
func NewReassembler(unit uint8) *Reassembler {
	return &Reassembler{unit: unit, nextSeq: 1}
}

// Resync moves the expected sequence without recording a gap — used when
// joining a stream mid-flight (late subscriber, mid-stream capture).
func (r *Reassembler) Resync(seq uint32) { r.nextSeq = seq }

// Stats returns totals: messages delivered, gap events, messages lost.
func (r *Reassembler) Stats() (msgs, gaps, lost uint64) {
	return r.msgs, r.gaps, r.lostMsgs
}

// Consume parses datagram, delivering each in-sequence message to fn. It
// returns ErrGap (after delivering the datagram's messages — they are still
// valid data) when a gap preceded this datagram, or a decode error. The
// *Msg passed to fn is reused across messages and calls: it is only valid
// during the callback; copy it to retain it.
func (r *Reassembler) Consume(datagram []byte, fn func(*Msg)) error {
	var h UnitHeader
	body, err := DecodeUnitHeader(datagram, &h)
	if err != nil {
		return err
	}
	if h.Unit != r.unit {
		return nil // not ours; receivers subscribe per-unit
	}
	end := h.Seq + uint32(h.Count)
	if end <= r.nextSeq {
		return nil // duplicate (e.g. the B feed's copy)
	}
	gapped := false
	var gap GapInfo
	if h.Seq > r.nextSeq {
		gapped = true
		gap = GapInfo{Unit: h.Unit, Expected: r.nextSeq, Got: h.Seq, MsgsLost: h.Seq - r.nextSeq}
		r.gaps++
		r.lostMsgs += uint64(gap.MsgsLost)
	}
	// Skip messages we've already delivered (partial overlap).
	skip := uint32(0)
	if h.Seq < r.nextSeq {
		skip = r.nextSeq - h.Seq
	}
	r.scratch = Msg{}
	m := &r.scratch
	for i := uint32(0); i < uint32(h.Count); i++ {
		body, err = Decode(body, m)
		if err != nil {
			return err
		}
		if i < skip {
			continue
		}
		r.msgs++
		if fn != nil {
			fn(m)
		}
	}
	r.nextSeq = end
	if gapped {
		if r.OnGap != nil {
			r.OnGap(gap)
		}
		return ErrGap
	}
	return nil
}

// Arbiter performs A/B feed arbitration with gap filling: exchanges publish
// each datagram on two redundant paths; the receiver delivers in sequence,
// taking whichever copy arrives first. When the fast path drops a datagram
// (rain fade on microwave, §2), later fast-path datagrams are *held* in a
// reorder buffer until the slow path's copy fills the hole — head-of-line
// blocking is the price of losslessness. Only when the buffer exceeds
// MaxHold datagrams is the hole declared lost and skipped.
type Arbiter struct {
	unit    uint8
	nextSeq uint32
	pending map[uint32][]byte // first-arrived copy of future datagrams, by start seq

	// MaxHold bounds the reorder buffer in datagrams; exceeding it declares
	// the oldest hole lost.
	MaxHold int

	// OnGap fires when a hole is declared lost (both copies gone).
	OnGap func(GapInfo)

	// Stats. A win is counted for the path whose copy of a datagram
	// arrived first (whether delivered immediately or held).
	AWins, BWins uint64
	msgs         uint64
	gaps         uint64
	lostMsgs     uint64
	// HeldMax is the reorder buffer's high-water mark.
	HeldMax int
}

// NewArbiter returns a gap-filling arbiter for unit.
func NewArbiter(unit uint8) *Arbiter {
	return &Arbiter{unit: unit, nextSeq: 1, pending: make(map[uint32][]byte), MaxHold: 64}
}

// Stats returns totals: messages delivered, gap events declared, messages
// lost on both paths.
func (a *Arbiter) Stats() (msgs, gaps, lost uint64) { return a.msgs, a.gaps, a.lostMsgs }

// Held returns the number of datagrams currently in the reorder buffer.
func (a *Arbiter) Held() int { return len(a.pending) }

// ConsumeA feeds a datagram that arrived on the A path.
func (a *Arbiter) ConsumeA(dgram []byte, fn func(*Msg)) error {
	return a.consume(dgram, fn, true)
}

// ConsumeB feeds a datagram that arrived on the B path.
func (a *Arbiter) ConsumeB(dgram []byte, fn func(*Msg)) error {
	return a.consume(dgram, fn, false)
}

func (a *Arbiter) consume(dgram []byte, fn func(*Msg), isA bool) error {
	var h UnitHeader
	if _, err := DecodeUnitHeader(dgram, &h); err != nil {
		return err
	}
	if h.Unit != a.unit {
		return nil
	}
	end := h.Seq + uint32(h.Count)
	if end <= a.nextSeq {
		return nil // stale duplicate
	}
	if _, dup := a.pending[h.Seq]; dup {
		return nil // the other path's copy already holds this seq
	}
	win := func() {
		if isA {
			a.AWins++
		} else {
			a.BWins++
		}
	}
	if h.Seq <= a.nextSeq {
		win()
		if err := a.deliver(dgram, h, fn); err != nil {
			return err
		}
		return a.drain(fn)
	}
	// Future datagram: hold it for in-order delivery.
	win()
	a.pending[h.Seq] = append([]byte(nil), dgram...)
	if len(a.pending) > a.HeldMax {
		a.HeldMax = len(a.pending)
	}
	if len(a.pending) > a.MaxHold {
		a.declareLoss()
		return a.drain(fn)
	}
	return nil
}

// deliver emits the datagram's not-yet-delivered messages and advances the
// sequence.
func (a *Arbiter) deliver(dgram []byte, h UnitHeader, fn func(*Msg)) error {
	body := dgram[UnitHeaderLen:h.Length]
	skip := uint32(0)
	if h.Seq < a.nextSeq {
		skip = a.nextSeq - h.Seq
	}
	var m Msg
	var err error
	for i := uint32(0); i < uint32(h.Count); i++ {
		body, err = Decode(body, &m)
		if err != nil {
			return err
		}
		if i < skip {
			continue
		}
		a.msgs++
		if fn != nil {
			fn(&m)
		}
	}
	a.nextSeq = h.Seq + uint32(h.Count)
	return nil
}

// drain delivers any held datagrams now contiguous with the sequence.
func (a *Arbiter) drain(fn func(*Msg)) error {
	for {
		var found []byte
		var foundKey uint32
		var fh UnitHeader
		// The scan below is a pure reduction: stale entries are dropped
		// wherever they appear, and among deliverable candidates the lowest
		// starting sequence wins, so the outcome is independent of the order
		// the map yields its entries in.
		//simlint:allow maporder: full-scan min-reduction (lowest h.Seq wins, stale entries deleted unconditionally); result does not depend on iteration order
		for seq, d := range a.pending {
			var h UnitHeader
			if _, err := DecodeUnitHeader(d, &h); err != nil {
				delete(a.pending, seq)
				continue
			}
			if h.Seq+uint32(h.Count) <= a.nextSeq {
				delete(a.pending, seq) // became stale
				continue
			}
			if h.Seq <= a.nextSeq && (found == nil || h.Seq < fh.Seq) {
				found, foundKey, fh = d, seq, h
			}
		}
		if found == nil {
			return nil
		}
		delete(a.pending, foundKey)
		if err := a.deliver(found, fh, fn); err != nil {
			return err
		}
	}
}

// declareLoss gives up on the oldest hole: advance to the earliest held
// datagram, recording what was skipped.
func (a *Arbiter) declareLoss() {
	var lo uint32
	first := true
	//simlint:allow maporder: pure min-reduction over held sequence numbers; result does not depend on iteration order
	for seq := range a.pending {
		if first || seq < lo {
			lo, first = seq, false
		}
	}
	if first || lo <= a.nextSeq {
		return
	}
	gap := GapInfo{Unit: a.unit, Expected: a.nextSeq, Got: lo, MsgsLost: lo - a.nextSeq}
	a.gaps++
	a.lostMsgs += uint64(gap.MsgsLost)
	a.nextSeq = lo
	if a.OnGap != nil {
		a.OnGap(gap)
	}
}
