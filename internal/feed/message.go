// Package feed implements a PITCH-style sequenced multicast market-data
// protocol: binary messages packed several-per-datagram under a sequenced
// unit header, per-exchange format variants (each exchange "chooses its own
// binary formats", §2), gap detection, and A/B feed arbitration.
//
// Message sizes follow the paper's PITCH citations — 26 bytes for an add
// order, 14 for a delete (§5) — with variant-specific widths producing the
// distinct frame-length distributions of Table 1.
package feed

import (
	"encoding/binary"
	"errors"

	"tradenet/internal/market"
)

// MsgType identifies a market-data message.
type MsgType uint8

// Message types (values in the spirit of the PITCH spec).
const (
	MsgTime          MsgType = 0x20
	MsgAddOrder      MsgType = 0x21
	MsgOrderExecuted MsgType = 0x23
	MsgReduceSize    MsgType = 0x25
	MsgModifyOrder   MsgType = 0x27
	MsgDeleteOrder   MsgType = 0x29
	MsgTrade         MsgType = 0x30
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgTime:
		return "time"
	case MsgAddOrder:
		return "add"
	case MsgOrderExecuted:
		return "executed"
	case MsgReduceSize:
		return "reduce"
	case MsgModifyOrder:
		return "modify"
	case MsgDeleteOrder:
		return "delete"
	case MsgTrade:
		return "trade"
	}
	return "unknown"
}

// Errors returned by the codec.
var (
	ErrShort      = errors.New("feed: truncated message")
	ErrUnknown    = errors.New("feed: unknown message type")
	ErrBadVariant = errors.New("feed: message shorter than canonical fields")
)

// Msg is the decoded form of any market-data message. Unused fields are
// zero for types that do not carry them. One struct for all types keeps the
// decode path allocation-free (the gopacket DecodingLayer idiom).
type Msg struct {
	Type     MsgType
	TimeNs   uint32 // nanoseconds since the feed's epoch second
	OrderID  uint64
	Side     market.Side
	Qty      uint32
	Symbol   [6]byte // right-padded ASCII ticker
	Price    uint64  // fixed-point, 1e-4 dollars
	ExecID   uint64
	EpochSec uint32 // MsgTime only
}

// SetSymbol stores ticker (≤6 ASCII bytes) into the fixed-width field.
func (m *Msg) SetSymbol(ticker string) {
	var s [6]byte
	copy(s[:], ticker)
	m.Symbol = s
}

// SymbolString returns the ticker without padding.
func (m *Msg) SymbolString() string {
	n := len(m.Symbol)
	for n > 0 && (m.Symbol[n-1] == 0 || m.Symbol[n-1] == ' ') {
		n--
	}
	return string(m.Symbol[:n])
}

// canonicalSize is the minimum encoding of each type: the fields above,
// packed. Variants may only pad beyond this.
func canonicalSize(t MsgType) int {
	switch t {
	case MsgTime:
		return 6 // len, type, epochSec
	case MsgAddOrder:
		return 26 // len, type, time, oid, side, qty(2), sym, price(2), flags
	case MsgOrderExecuted:
		return 26 // len, type, time, oid, qty, execID
	case MsgReduceSize:
		return 18 // len, type, time, oid, qty
	case MsgModifyOrder:
		return 27 // len, type, time, oid, qty, price(8), flags — re-entry loses priority
	case MsgDeleteOrder:
		return 14 // len, type, time, oid
	case MsgTrade:
		return 41 // len, type, time, oid, side, qty, sym, price(8), execID
	}
	return 0
}

// Variant describes one exchange's binary format: the on-wire size of each
// message type (≥ canonical; the excess is exchange-specific fields the
// internal format does not carry) and the exchange's maximum datagram.
type Variant struct {
	Name     string
	Sizes    map[MsgType]int
	MaxDgram int // largest UDP payload the exchange emits
}

// size returns the variant's wire size for t.
func (v *Variant) size(t MsgType) int {
	if v == nil || v.Sizes == nil {
		return canonicalSize(t)
	}
	if s, ok := v.Sizes[t]; ok {
		return s
	}
	return canonicalSize(t)
}

// Internal is the firm's normalized format (§2): canonical sizes, full-size
// datagrams. Normalizers re-encode every exchange's variant into this.
var Internal = &Variant{Name: "internal", MaxDgram: 1472}

// Append encodes m in variant v's format, appending to b. It panics on an
// unknown type: message construction is program logic, not input.
func (v *Variant) Append(b []byte, m *Msg) []byte {
	size := v.size(m.Type)
	start := len(b)
	b = append(b, byte(size), byte(m.Type))
	switch m.Type {
	case MsgTime:
		b = binary.BigEndian.AppendUint32(b, m.EpochSec)
	case MsgAddOrder:
		b = binary.BigEndian.AppendUint32(b, m.TimeNs)
		b = binary.BigEndian.AppendUint64(b, m.OrderID)
		b = append(b, byte(m.Side))
		b = binary.BigEndian.AppendUint16(b, uint16(m.Qty))
		b = append(b, m.Symbol[:]...)
		b = binary.BigEndian.AppendUint16(b, uint16(m.Price))
		b = append(b, 0) // flags
	case MsgOrderExecuted:
		b = binary.BigEndian.AppendUint32(b, m.TimeNs)
		b = binary.BigEndian.AppendUint64(b, m.OrderID)
		b = binary.BigEndian.AppendUint32(b, m.Qty)
		b = binary.BigEndian.AppendUint64(b, m.ExecID)
	case MsgReduceSize:
		b = binary.BigEndian.AppendUint32(b, m.TimeNs)
		b = binary.BigEndian.AppendUint64(b, m.OrderID)
		b = binary.BigEndian.AppendUint32(b, m.Qty)
	case MsgModifyOrder:
		b = binary.BigEndian.AppendUint32(b, m.TimeNs)
		b = binary.BigEndian.AppendUint64(b, m.OrderID)
		b = binary.BigEndian.AppendUint32(b, m.Qty)
		b = binary.BigEndian.AppendUint64(b, m.Price)
		b = append(b, 0) // flags
	case MsgDeleteOrder:
		b = binary.BigEndian.AppendUint32(b, m.TimeNs)
		b = binary.BigEndian.AppendUint64(b, m.OrderID)
	case MsgTrade:
		b = binary.BigEndian.AppendUint32(b, m.TimeNs)
		b = binary.BigEndian.AppendUint64(b, m.OrderID)
		b = append(b, byte(m.Side))
		b = binary.BigEndian.AppendUint32(b, m.Qty)
		b = append(b, m.Symbol[:]...)
		b = binary.BigEndian.AppendUint64(b, m.Price)
		b = binary.BigEndian.AppendUint64(b, m.ExecID)
	default:
		panic("feed: cannot encode unknown message type")
	}
	// Variant-specific padding (exchange fields the internal format drops).
	for len(b)-start < size {
		b = append(b, 0)
	}
	return b
}

// Decode parses one message from the front of b into m and returns the
// remaining bytes. Price widths narrower than 8 bytes (the PITCH "short
// form") decode into the full-width field.
func Decode(b []byte, m *Msg) ([]byte, error) {
	if len(b) < 2 {
		return nil, ErrShort
	}
	size := int(b[0])
	if size < 2 || size > len(b) {
		return nil, ErrShort
	}
	t := MsgType(b[1])
	if canonicalSize(t) == 0 {
		return nil, ErrUnknown
	}
	if size < canonicalSize(t) {
		return nil, ErrBadVariant
	}
	*m = Msg{Type: t}
	p := b[2:size]
	switch t {
	case MsgTime:
		m.EpochSec = binary.BigEndian.Uint32(p)
	case MsgAddOrder:
		m.TimeNs = binary.BigEndian.Uint32(p)
		m.OrderID = binary.BigEndian.Uint64(p[4:])
		m.Side = market.Side(p[12])
		m.Qty = uint32(binary.BigEndian.Uint16(p[13:]))
		copy(m.Symbol[:], p[15:21])
		m.Price = uint64(binary.BigEndian.Uint16(p[21:]))
	case MsgOrderExecuted:
		m.TimeNs = binary.BigEndian.Uint32(p)
		m.OrderID = binary.BigEndian.Uint64(p[4:])
		m.Qty = binary.BigEndian.Uint32(p[12:])
		m.ExecID = binary.BigEndian.Uint64(p[16:])
	case MsgReduceSize:
		m.TimeNs = binary.BigEndian.Uint32(p)
		m.OrderID = binary.BigEndian.Uint64(p[4:])
		m.Qty = binary.BigEndian.Uint32(p[12:])
	case MsgModifyOrder:
		m.TimeNs = binary.BigEndian.Uint32(p)
		m.OrderID = binary.BigEndian.Uint64(p[4:])
		m.Qty = binary.BigEndian.Uint32(p[12:])
		m.Price = binary.BigEndian.Uint64(p[16:])
	case MsgDeleteOrder:
		m.TimeNs = binary.BigEndian.Uint32(p)
		m.OrderID = binary.BigEndian.Uint64(p[4:])
	case MsgTrade:
		m.TimeNs = binary.BigEndian.Uint32(p)
		m.OrderID = binary.BigEndian.Uint64(p[4:])
		m.Side = market.Side(p[12])
		m.Qty = binary.BigEndian.Uint32(p[13:])
		copy(m.Symbol[:], p[17:23])
		m.Price = binary.BigEndian.Uint64(p[23:])
		m.ExecID = binary.BigEndian.Uint64(p[31:])
	}
	return b[size:], nil
}
