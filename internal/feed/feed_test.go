package feed

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tradenet/internal/market"
	"tradenet/internal/metrics"
	"tradenet/internal/pkt"
)

func TestMsgTypeNames(t *testing.T) {
	for _, mt := range []MsgType{MsgTime, MsgAddOrder, MsgOrderExecuted,
		MsgReduceSize, MsgModifyOrder, MsgDeleteOrder, MsgTrade} {
		if mt.String() == "unknown" {
			t.Fatalf("type %#x unnamed", uint8(mt))
		}
	}
	if MsgType(0xff).String() != "unknown" {
		t.Fatal("unknown type should say so")
	}
}

func TestSymbolRoundTrip(t *testing.T) {
	var m Msg
	m.SetSymbol("AAPL")
	if m.SymbolString() != "AAPL" {
		t.Fatalf("symbol = %q", m.SymbolString())
	}
	m.SetSymbol("GOOGLX") // exactly 6
	if m.SymbolString() != "GOOGLX" {
		t.Fatalf("symbol = %q", m.SymbolString())
	}
}

func TestMessageRoundTripAllTypes(t *testing.T) {
	msgs := []Msg{
		{Type: MsgTime, EpochSec: 34200},
		{Type: MsgAddOrder, TimeNs: 123, OrderID: 777, Side: market.Sell, Qty: 100, Price: 15025},
		{Type: MsgOrderExecuted, TimeNs: 5, OrderID: 777, Qty: 40, ExecID: 909},
		{Type: MsgReduceSize, TimeNs: 6, OrderID: 777, Qty: 60},
		{Type: MsgModifyOrder, TimeNs: 7, OrderID: 777, Qty: 50, Price: 1502600},
		{Type: MsgDeleteOrder, TimeNs: 8, OrderID: 777},
		{Type: MsgTrade, TimeNs: 9, OrderID: 778, Side: market.Buy, Qty: 10, Price: 1502500, ExecID: 910},
	}
	msgs[1].SetSymbol("AAPL")
	msgs[6].SetSymbol("SPY")
	for _, v := range []*Variant{Internal, ExchangeA, ExchangeB, ExchangeC} {
		for _, want := range msgs {
			b := v.Append(nil, &want)
			if len(b) != v.size(want.Type) {
				t.Fatalf("%s %v: encoded %d bytes, want %d", v.Name, want.Type, len(b), v.size(want.Type))
			}
			var got Msg
			rest, err := Decode(b, &got)
			if err != nil {
				t.Fatalf("%s %v: %v", v.Name, want.Type, err)
			}
			if len(rest) != 0 {
				t.Fatalf("%s %v: %d bytes left", v.Name, want.Type, len(rest))
			}
			if got != want {
				t.Fatalf("%s %v round trip:\n got %+v\nwant %+v", v.Name, want.Type, got, want)
			}
		}
	}
}

func TestCanonicalSizesMatchPaper(t *testing.T) {
	// §5 cites PITCH: 26 bytes for a new order, 14 for a cancellation.
	if canonicalSize(MsgAddOrder) != 26 {
		t.Fatalf("add = %d, want 26", canonicalSize(MsgAddOrder))
	}
	if canonicalSize(MsgDeleteOrder) != 14 {
		t.Fatalf("delete = %d, want 14", canonicalSize(MsgDeleteOrder))
	}
}

func TestDecodeErrors(t *testing.T) {
	var m Msg
	if _, err := Decode(nil, &m); err != ErrShort {
		t.Fatalf("nil: %v", err)
	}
	if _, err := Decode([]byte{30, byte(MsgAddOrder), 0}, &m); err != ErrShort {
		t.Fatalf("length beyond buffer: %v", err)
	}
	if _, err := Decode([]byte{2, 0xEE}, &m); err != ErrUnknown {
		t.Fatalf("unknown type: %v", err)
	}
	// Declared size below the canonical minimum for the type.
	short := make([]byte, 20)
	short[0], short[1] = 20, byte(MsgAddOrder)
	if _, err := Decode(short, &m); err != ErrBadVariant {
		t.Fatalf("sub-canonical: %v", err)
	}
	if _, err := Decode([]byte{1, 1}, &m); err != ErrShort {
		t.Fatalf("size<2: %v", err)
	}
}

func TestDecodeFuzzNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		var m Msg
		for len(data) > 0 {
			rest, err := Decode(data, &m)
			if err != nil {
				return true
			}
			if len(rest) >= len(data) {
				return false // must consume
			}
			data = rest
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPackerSequencing(t *testing.T) {
	p := NewPacker(Internal, 3)
	var m Msg
	m.Type = MsgDeleteOrder
	var dgrams [][]byte
	for i := 0; i < 5; i++ {
		m.OrderID = uint64(i)
		if !p.Add(&m) {
			t.Fatal("add failed")
		}
	}
	p.Flush(func(d []byte) { dgrams = append(dgrams, append([]byte(nil), d...)) })
	for i := 0; i < 2; i++ {
		p.Add(&m)
	}
	p.Flush(func(d []byte) { dgrams = append(dgrams, append([]byte(nil), d...)) })
	p.Flush(func(d []byte) { t.Fatal("empty flush emitted") })

	var h UnitHeader
	if _, err := DecodeUnitHeader(dgrams[0], &h); err != nil {
		t.Fatal(err)
	}
	if h.Seq != 1 || h.Count != 5 || h.Unit != 3 {
		t.Fatalf("dgram0 header = %+v", h)
	}
	if int(h.Length) != len(dgrams[0]) {
		t.Fatalf("length = %d, want %d", h.Length, len(dgrams[0]))
	}
	if _, err := DecodeUnitHeader(dgrams[1], &h); err != nil {
		t.Fatal(err)
	}
	if h.Seq != 6 || h.Count != 2 {
		t.Fatalf("dgram1 header = %+v", h)
	}
	if p.NextSeq() != 8 {
		t.Fatalf("next seq = %d", p.NextSeq())
	}
}

// TestPackerAdoptsSequence: a standby packer tracking a primary's feed via
// SetNextSeq continues the unit's numbering without a discontinuity.
func TestPackerAdoptsSequence(t *testing.T) {
	p := NewPacker(Internal, 3)
	p.SetNextSeq(101) // primary published seqs 1..100 before dying
	var m Msg
	m.Type = MsgDeleteOrder
	p.Add(&m)
	var h UnitHeader
	p.Flush(func(d []byte) {
		if _, err := DecodeUnitHeader(d, &h); err != nil {
			t.Fatal(err)
		}
	})
	if h.Seq != 101 || p.NextSeq() != 102 {
		t.Fatalf("adopted seq = %d, next = %d, want 101/102", h.Seq, p.NextSeq())
	}

	p.Add(&m)
	defer func() {
		if recover() == nil {
			t.Fatal("SetNextSeq with pending messages did not panic")
		}
	}()
	p.SetNextSeq(200)
}

func TestPackerRespectsMaxDgram(t *testing.T) {
	v := &Variant{Name: "tiny", MaxDgram: 60}
	p := NewPacker(v, 1)
	var m Msg
	m.Type = MsgAddOrder // 26 bytes canonical
	if !p.Add(&m) || !p.Add(&m) {
		t.Fatal("two adds should fit (8+52=60)")
	}
	if p.Add(&m) {
		t.Fatal("third add should not fit")
	}
	p.Flush(func(d []byte) {
		if len(d) != 60 {
			t.Fatalf("dgram = %d bytes", len(d))
		}
	})
	// After flush there is room again.
	if !p.Add(&m) {
		t.Fatal("add after flush failed")
	}
}

func TestReassemblerInOrderAndGaps(t *testing.T) {
	p := NewPacker(Internal, 1)
	var m Msg
	m.Type = MsgDeleteOrder
	mk := func(n int) []byte {
		for i := 0; i < n; i++ {
			p.Add(&m)
		}
		var out []byte
		p.Flush(func(d []byte) { out = append([]byte(nil), d...) })
		return out
	}
	d1, d2, d3 := mk(3), mk(2), mk(4) // seqs 1-3, 4-5, 6-9

	r := NewReassembler(1)
	var gaps []GapInfo
	r.OnGap = func(g GapInfo) { gaps = append(gaps, g) }
	var got int
	if err := r.Consume(d1, func(*Msg) { got++ }); err != nil {
		t.Fatal(err)
	}
	// Drop d2: consuming d3 reports the gap but still delivers d3's messages.
	if err := r.Consume(d3, func(*Msg) { got++ }); err != ErrGap {
		t.Fatalf("err = %v, want ErrGap", err)
	}
	if got != 7 {
		t.Fatalf("delivered = %d, want 7", got)
	}
	if len(gaps) != 1 || gaps[0].MsgsLost != 2 || gaps[0].Expected != 4 || gaps[0].Got != 6 {
		t.Fatalf("gaps = %+v", gaps)
	}
	// Late d2 is entirely stale: dropped.
	if err := r.Consume(d2, func(*Msg) { got++ }); err != nil || got != 7 {
		t.Fatalf("late dgram: err=%v got=%d", err, got)
	}
	msgs, gapN, lost := r.Stats()
	if msgs != 7 || gapN != 1 || lost != 2 {
		t.Fatalf("stats = %d/%d/%d", msgs, gapN, lost)
	}
}

func TestReassemblerIgnoresOtherUnits(t *testing.T) {
	p := NewPacker(Internal, 2)
	var m Msg
	m.Type = MsgDeleteOrder
	p.Add(&m)
	var d []byte
	p.Flush(func(x []byte) { d = append([]byte(nil), x...) })
	r := NewReassembler(1)
	n := 0
	if err := r.Consume(d, func(*Msg) { n++ }); err != nil || n != 0 {
		t.Fatalf("foreign unit: err=%v n=%d", err, n)
	}
}

func TestArbiterTakesFirstCopy(t *testing.T) {
	p := NewPacker(Internal, 1)
	var m Msg
	m.Type = MsgDeleteOrder
	mk := func() []byte {
		p.Add(&m)
		var out []byte
		p.Flush(func(d []byte) { out = append([]byte(nil), d...) })
		return out
	}
	d1, d2, d3 := mk(), mk(), mk()

	a := NewArbiter(1)
	n := 0
	cb := func(*Msg) { n++ }
	// A wins d1; B's copy is a dup. B wins d2 (A's copy late). A wins d3.
	a.ConsumeA(d1, cb)
	a.ConsumeB(d1, cb)
	a.ConsumeB(d2, cb)
	a.ConsumeA(d2, cb)
	a.ConsumeA(d3, cb)
	a.ConsumeB(d3, cb)
	if n != 3 {
		t.Fatalf("delivered = %d, want 3 (no dup delivery)", n)
	}
	if a.AWins != 2 || a.BWins != 1 {
		t.Fatalf("wins = A:%d B:%d", a.AWins, a.BWins)
	}
	// Arbitration healed nothing-lost: no gaps.
	if _, gaps, _ := a.Stats(); gaps != 0 {
		t.Fatal("spurious gap under arbitration")
	}
	if a.Held() != 0 {
		t.Fatalf("reorder buffer should be empty, holds %d", a.Held())
	}
}

func TestArbiterHealsSingleSideLoss(t *testing.T) {
	p := NewPacker(Internal, 1)
	var m Msg
	m.Type = MsgDeleteOrder
	mk := func() []byte {
		p.Add(&m)
		var out []byte
		p.Flush(func(d []byte) { out = append([]byte(nil), d...) })
		return out
	}
	d1, d2, d3 := mk(), mk(), mk()
	a := NewArbiter(1)
	n := 0
	cb := func(*Msg) { n++ }
	a.ConsumeA(d1, cb)
	// d2 lost on A, arrives on B.
	a.ConsumeB(d2, cb)
	a.ConsumeA(d3, cb)
	if n != 3 {
		t.Fatalf("delivered = %d", n)
	}
	if _, gaps, _ := a.Stats(); gaps != 0 {
		t.Fatal("single-side loss should be healed by arbitration")
	}
}

func TestArbiterReordersAcrossPathSkew(t *testing.T) {
	// The realistic WAN case: the fast path drops d2, and its d3 arrives
	// BEFORE the slow path's copy of d2. The arbiter must hold d3 and
	// deliver d2, d3 in order once the slow copy lands.
	p := NewPacker(Internal, 1)
	var m Msg
	m.Type = MsgDeleteOrder
	mk := func() []byte {
		p.Add(&m)
		var out []byte
		p.Flush(func(d []byte) { out = append([]byte(nil), d...) })
		return out
	}
	d1, d2, d3 := mk(), mk(), mk()
	a := NewArbiter(1)
	var got []uint32
	cb := func(mm *Msg) { got = append(got, uint32(len(got)+1)) }
	a.ConsumeA(d1, cb)
	a.ConsumeA(d3, cb) // d2 lost on A; d3 arrives early
	if len(got) != 1 {
		t.Fatalf("d3 must be held, delivered=%d", len(got))
	}
	if a.Held() != 1 {
		t.Fatalf("held = %d", a.Held())
	}
	a.ConsumeB(d2, cb) // slow path fills the hole
	if len(got) != 3 {
		t.Fatalf("delivered = %d after fill", len(got))
	}
	if msgs, gaps, lost := statsOf(a); msgs != 3 || gaps != 0 || lost != 0 {
		t.Fatalf("stats = %d/%d/%d", msgs, gaps, lost)
	}
	// Late duplicates of everything are ignored.
	a.ConsumeB(d1, cb)
	a.ConsumeB(d3, cb)
	if len(got) != 3 {
		t.Fatal("duplicates delivered")
	}
	if a.BWins != 1 || a.AWins != 2 {
		t.Fatalf("wins = A:%d B:%d", a.AWins, a.BWins)
	}
}

func statsOf(a *Arbiter) (uint64, uint64, uint64) { return a.Stats() }

func TestArbiterDeclaresLossWhenBufferOverflows(t *testing.T) {
	p := NewPacker(Internal, 1)
	var m Msg
	m.Type = MsgDeleteOrder
	mk := func() []byte {
		p.Add(&m)
		var out []byte
		p.Flush(func(d []byte) { out = append([]byte(nil), d...) })
		return out
	}
	d1 := mk()
	lost := mk() // never delivered on either path
	var later [][]byte
	for i := 0; i < 5; i++ {
		later = append(later, mk())
	}
	a := NewArbiter(1)
	a.MaxHold = 3
	var gaps []GapInfo
	a.OnGap = func(g GapInfo) { gaps = append(gaps, g) }
	n := 0
	cb := func(*Msg) { n++ }
	a.ConsumeA(d1, cb)
	_ = lost
	for _, d := range later {
		a.ConsumeA(d, cb)
	}
	// After MaxHold is exceeded the hole is declared lost and the held
	// datagrams drain.
	if len(gaps) != 1 || gaps[0].MsgsLost != 1 {
		t.Fatalf("gaps = %+v", gaps)
	}
	if n != 1+len(later) {
		t.Fatalf("delivered = %d", n)
	}
	if _, g, l := a.Stats(); g != 1 || l != 1 {
		t.Fatalf("stats gaps/lost = %d/%d", g, l)
	}
}

func TestUnitHeaderErrors(t *testing.T) {
	var h UnitHeader
	if _, err := DecodeUnitHeader(make([]byte, 4), &h); err != ErrShort {
		t.Fatal("short header accepted")
	}
	bad := AppendUnitHeader(nil, UnitHeader{Length: 100, Count: 1, Unit: 1, Seq: 1})
	if _, err := DecodeUnitHeader(bad, &h); err != ErrShort {
		t.Fatal("overlong length accepted")
	}
}

// TestTable1FrameLengths verifies the generated mid-day frame-length
// distributions against the paper's Table 1.
func TestTable1FrameLengths(t *testing.T) {
	src := pkt.UDPAddr{MAC: pkt.HostMAC(1), IP: pkt.HostIP(1), Port: 30000}
	grp := pkt.IP4{239, 1, 0, 1}
	dst := pkt.UDPAddr{MAC: pkt.MulticastMAC(grp), IP: grp, Port: 30001}

	cases := []struct {
		v                     *Variant
		min, avg, median, max int64
	}{
		{ExchangeA, 73, 92, 89, 1514},
		{ExchangeB, 64, 113, 76, 1067},
		{ExchangeC, 81, 151, 101, 1442},
	}
	rng := rand.New(rand.NewSource(11))
	for _, c := range cases {
		g := NewFrameGen(c.v, src, dst)
		h := metrics.NewHistogram()
		for i := 0; i < 200_000; i++ {
			frame, msgs := g.Next(rng)
			if msgs < 1 {
				t.Fatalf("%s: empty frame", c.v.Name)
			}
			h.Observe(int64(len(frame)))
		}
		s := h.Summarize()
		if s.Min != c.min {
			t.Errorf("%s min = %d, want %d", c.v.Name, s.Min, c.min)
		}
		if s.Max != c.max {
			t.Errorf("%s max = %d, want %d", c.v.Name, s.Max, c.max)
		}
		if rel(s.Median, c.median) > 0.10 {
			t.Errorf("%s median = %d, want ≈%d", c.v.Name, s.Median, c.median)
		}
		if relF(s.Mean, float64(c.avg)) > 0.12 {
			t.Errorf("%s mean = %.1f, want ≈%d", c.v.Name, s.Mean, c.avg)
		}
	}
}

func rel(got, want int64) float64 { return relF(float64(got), float64(want)) }

func relF(got, want float64) float64 {
	d := (got - want) / want
	if d < 0 {
		d = -d
	}
	return d
}

// Every generated frame decodes end to end: headers, unit header, and all
// packed messages.
func TestGeneratedFramesDecode(t *testing.T) {
	src := pkt.UDPAddr{MAC: pkt.HostMAC(1), IP: pkt.HostIP(1), Port: 30000}
	dst := pkt.UDPAddr{MAC: pkt.HostMAC(2), IP: pkt.HostIP(2), Port: 30001}
	rng := rand.New(rand.NewSource(12))
	for _, v := range []*Variant{ExchangeA, ExchangeB, ExchangeC, Internal} {
		g := NewFrameGen(v, src, dst)
		r := NewReassembler(1)
		for i := 0; i < 2_000; i++ {
			frame, msgs := g.Next(rng)
			var uf pkt.UDPFrame
			if err := pkt.ParseUDPFrame(frame, &uf); err != nil {
				t.Fatalf("%s: frame parse: %v", v.Name, err)
			}
			seen := 0
			if err := r.Consume(uf.Payload, func(*Msg) { seen++ }); err != nil {
				t.Fatalf("%s: consume: %v", v.Name, err)
			}
			if seen != msgs {
				t.Fatalf("%s: decoded %d of %d messages", v.Name, seen, msgs)
			}
		}
	}
}

func BenchmarkDecodeAddOrder(b *testing.B) {
	var m Msg
	m.Type = MsgAddOrder
	m.SetSymbol("AAPL")
	m.Qty, m.Price = 100, 15025
	buf := Internal.Append(nil, &m)
	b.ReportAllocs()
	b.ResetTimer()
	var out Msg
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeAddOrder(b *testing.B) {
	var m Msg
	m.Type = MsgAddOrder
	m.SetSymbol("AAPL")
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Internal.Append(buf[:0], &m)
	}
}

func BenchmarkFrameGen(b *testing.B) {
	src := pkt.UDPAddr{MAC: pkt.HostMAC(1), IP: pkt.HostIP(1), Port: 30000}
	dst := pkt.UDPAddr{MAC: pkt.HostMAC(2), IP: pkt.HostIP(2), Port: 30001}
	g := NewFrameGen(ExchangeB, src, dst)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next(rng)
	}
}

// Property: for any loss pattern where at least one copy of each datagram
// survives, and any interleaving where each path stays in order, the
// arbiter delivers every message exactly once, in order.
func TestArbiterLossPatternProperty(t *testing.T) {
	f := func(seed int64, lossBitsA, lossBitsB uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 32
		p := NewPacker(Internal, 1)
		var m Msg
		m.Type = MsgReduceSize
		dgrams := make([][]byte, n)
		for i := 0; i < n; i++ {
			m.OrderID = uint64(i)
			p.Add(&m)
			p.Flush(func(d []byte) { dgrams[i] = append([]byte(nil), d...) })
		}
		// Ensure at least one copy of each survives.
		for i := 0; i < n; i++ {
			if lossBitsA&(1<<i) != 0 && lossBitsB&(1<<i) != 0 {
				lossBitsB &^= 1 << i
			}
		}
		a := NewArbiter(1)
		a.MaxHold = n + 1
		var got []uint64
		cb := func(mm *Msg) { got = append(got, mm.OrderID) }
		// Interleave: A leads by a random skew; B trails. Each path is
		// in-order within itself (paths don't reorder, they lose).
		ai, bi := 0, 0
		for ai < n || bi < n {
			if ai < n && (bi >= n || rng.Intn(3) != 0) {
				if lossBitsA&(1<<ai) == 0 {
					a.ConsumeA(dgrams[ai], cb)
				}
				ai++
			} else if bi < n {
				if lossBitsB&(1<<bi) == 0 {
					a.ConsumeB(dgrams[bi], cb)
				}
				bi++
			}
		}
		if len(got) != n {
			return false
		}
		for i, id := range got {
			if id != uint64(i) {
				return false
			}
		}
		msgs, gaps, lost := a.Stats()
		return msgs == n && gaps == 0 && lost == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any random message stream, packing distribution, and drop
// pattern, the reassembler's accounting is exact — delivered + lost equals
// published, delivery order matches publication order, and gap events
// correspond exactly to dropped runs.
func TestPipelineConservationProperty(t *testing.T) {
	f := func(seed int64, dropBits uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPacker(Internal, 1)
		var m Msg
		var dgrams [][]byte
		var perDgram []int
		published := 0
		for len(dgrams) < 24 {
			n := 1 + rng.Intn(5)
			for i := 0; i < n; i++ {
				m.Type = MsgDeleteOrder
				m.OrderID = uint64(published)
				published++
				p.Add(&m)
			}
			p.Flush(func(d []byte) {
				dgrams = append(dgrams, append([]byte(nil), d...))
				perDgram = append(perDgram, n)
			})
		}
		// Never drop the last datagram so trailing losses are observable.
		dropBits &^= 1 << 23

		r := NewReassembler(1)
		var got []uint64
		dropped := 0
		for i, d := range dgrams {
			if dropBits&(1<<i) != 0 {
				dropped += perDgram[i]
				continue
			}
			r.Consume(d, func(mm *Msg) { got = append(got, mm.OrderID) })
		}
		msgs, _, lost := r.Stats()
		if int(msgs)+int(lost) != published {
			return false
		}
		if int(lost) != dropped {
			return false
		}
		// Delivered ids strictly increasing (order preserved).
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReassemblerConsume(b *testing.B) {
	p := NewPacker(Internal, 1)
	var m Msg
	m.Type = MsgAddOrder
	m.SetSymbol("AAPL")
	for i := 0; i < 20; i++ {
		p.Add(&m)
	}
	var dgram []byte
	p.Flush(func(d []byte) { dgram = append([]byte(nil), d...) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh reassembler every 1000 rounds to keep sequencing valid.
		r := NewReassembler(1)
		// Patch the sequence each round is unnecessary: one consume per
		// reassembler measures the full parse path.
		r.Consume(dgram, func(*Msg) {})
	}
}

func TestReassemblerResync(t *testing.T) {
	p := NewPacker(Internal, 1)
	var m Msg
	m.Type = MsgDeleteOrder
	mk := func() []byte {
		p.Add(&m)
		var out []byte
		p.Flush(func(d []byte) { out = append([]byte(nil), d...) })
		return out
	}
	mk() // seq 1 never seen by the late joiner
	d2 := mk()
	r := NewReassembler(1)
	r.Resync(2)
	n := 0
	if err := r.Consume(d2, func(*Msg) { n++ }); err != nil {
		t.Fatalf("resynced consume: %v", err)
	}
	if n != 1 {
		t.Fatalf("delivered = %d", n)
	}
	if _, gaps, _ := r.Stats(); gaps != 0 {
		t.Fatal("resync must not record a gap")
	}
}
