package metrics

import (
	"fmt"

	"tradenet/internal/sim"
)

// Sampler turns the registry's end-of-run totals into time-resolved series:
// on deterministic virtual-time ticks it scans every registered metric and
// appends one point per metric to a ring-buffered series — counter deltas
// for int kinds, count/quantile snapshots for histograms. The paper's
// comparisons are about *when* things happen (tick-to-trade races, fairness
// while a path is degraded); the sampler is what lets an experiment report
// `wan.*` loss against the rain timeline instead of one total at the end.
//
// Determinism contract (see DESIGN.md "Telemetry plane"):
//
//   - Sampling is opt-in. An un-armed sampler schedules nothing and the
//     plant never touches one on the hot path, so sampler-off runs are
//     byte-identical to a build without the sampler compiled in.
//   - Ticks run at sim.PrioReport, after all same-instant deliveries and
//     drains, and read metrics without mutating simulation state or
//     drawing from the scheduler's RNG. Relative order of plant events is
//     therefore unchanged; the only observable difference of an armed
//     sampler is its own tick events in Scheduler.Fired (exactly Ticks()
//     of them — the non-perturbation test accounts for them to the event).
//   - A tick re-arms itself only while now+Interval <= the Arm deadline,
//     so runs driven by Scheduler.Run() (queue-empty termination) still
//     terminate.
type Sampler struct {
	sched  *sim.Scheduler
	reg    *Registry
	cfg    SamplerConfig
	series []*SampleSeries
	last   []int64 // previous sampled value per series, for deltas
	tickFn func()
	ticks  uint64
	until  sim.Time
	armed  bool
}

// SamplerConfig sizes a sampler.
type SamplerConfig struct {
	// Interval is the virtual-time tick spacing (default 500 µs — the same
	// cadence as the WAN controller's stats windows).
	Interval sim.Duration
	// Capacity is the per-metric ring capacity: a full ring evicts its
	// oldest point and counts it, so memory stays bounded on long runs.
	// Default 2048 points.
	Capacity int
}

func (c SamplerConfig) withDefaults() SamplerConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * sim.Microsecond
	}
	if c.Capacity <= 0 {
		c.Capacity = 2048
	}
	return c
}

// SamplePoint is one metric's observation at one virtual-time tick.
type SamplePoint struct {
	T sim.Time
	// Value is the current reading: the int/gauge value, or a histogram's
	// observation count.
	Value int64
	// Delta is Value minus the previous tick's reading (the first tick
	// measures from the Arm instant). For monotonic counters this is the
	// per-interval rate; gauges may go negative.
	Delta int64
	// P50/P99/Max snapshot a histogram's distribution at the tick (zero
	// for int kinds and for histograms that are still empty).
	P50, P99, Max int64
}

// SampleSeries is one metric's ring-buffered time series, oldest first.
type SampleSeries struct {
	Name string
	Kind Kind

	buf     []SamplePoint
	head    int // index of the oldest point
	n       int
	evicted uint64
}

// Len returns the number of retained points.
func (s *SampleSeries) Len() int { return s.n }

// Evicted returns how many points rolled out of a full ring.
func (s *SampleSeries) Evicted() uint64 { return s.evicted }

// At returns retained point i, 0 being the oldest.
func (s *SampleSeries) At(i int) SamplePoint {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("metrics: sample index %d out of range [0,%d)", i, s.n))
	}
	return s.buf[(s.head+i)%len(s.buf)]
}

// Each walks the retained points oldest to newest.
func (s *SampleSeries) Each(fn func(SamplePoint)) {
	for i := 0; i < s.n; i++ {
		fn(s.At(i))
	}
}

func (s *SampleSeries) push(p SamplePoint) {
	if s.n == len(s.buf) {
		s.buf[s.head] = p
		s.head = (s.head + 1) % len(s.buf)
		s.evicted++
		return
	}
	s.buf[(s.head+s.n)%len(s.buf)] = p
	s.n++
}

// NewSampler builds a sampler over reg. It schedules nothing until Arm.
func NewSampler(sched *sim.Scheduler, reg *Registry, cfg SamplerConfig) *Sampler {
	if sched == nil || reg == nil {
		panic("metrics: NewSampler needs a scheduler and a registry")
	}
	s := &Sampler{sched: sched, reg: reg, cfg: cfg.withDefaults()}
	s.tickFn = s.tick
	return s
}

// Interval returns the configured tick spacing.
func (s *Sampler) Interval() sim.Duration { return s.cfg.Interval }

// Ticks returns how many sampling ticks have fired — exactly the number of
// extra scheduler events an armed sampler contributes.
func (s *Sampler) Ticks() uint64 {
	if s == nil {
		return 0
	}
	return s.ticks
}

// Series returns every sampled series in registry (sorted-name) order.
// Empty until Arm snapshots the registry.
func (s *Sampler) Series() []*SampleSeries {
	if s == nil {
		return nil
	}
	return s.series
}

// SeriesByName returns the series for one metric, or nil.
func (s *Sampler) SeriesByName(name string) *SampleSeries {
	if s == nil {
		return nil
	}
	for _, ser := range s.series {
		if ser.Name == name {
			return ser
		}
	}
	return nil
}

// Arm snapshots the registry's current metric set as the sampled set
// (metrics registered later are not picked up), baselines every delta at
// the current readings, and schedules ticks every Interval from
// from+Interval through until (inclusive). Arm is nil-safe so call sites
// follow the tracing idiom: a plant without telemetry never branches.
func (s *Sampler) Arm(from, until sim.Time) {
	if s == nil {
		return
	}
	if s.armed {
		panic("metrics: sampler armed twice")
	}
	s.armed = true
	s.until = until
	s.reg.Each(func(name string, kind Kind) {
		ser := &SampleSeries{Name: name, Kind: kind, buf: make([]SamplePoint, s.cfg.Capacity)}
		s.series = append(s.series, ser)
		s.last = append(s.last, s.read(name, kind))
	})
	first := from.Add(s.cfg.Interval)
	if first <= until {
		s.sched.AtPrio(first, sim.PrioReport, s.tickFn)
	}
}

// read returns the delta-tracked reading for one metric: the int value, or
// a histogram's observation count.
func (s *Sampler) read(name string, kind Kind) int64 {
	if kind == KindHistogram {
		h, _ := s.reg.Hist(name)
		return h.Count()
	}
	v, _ := s.reg.Int(name)
	return v
}

// tick samples every metric once and re-arms while inside the deadline.
func (s *Sampler) tick() {
	now := s.sched.Now()
	s.ticks++
	for i, ser := range s.series {
		p := SamplePoint{T: now}
		if ser.Kind == KindHistogram {
			h, _ := s.reg.Hist(ser.Name)
			p.Value = h.Count()
			if p.Value > 0 {
				p.P50, p.P99, p.Max = h.Median(), h.P99(), h.Max()
			}
		} else {
			p.Value, _ = s.reg.Int(ser.Name)
		}
		p.Delta = p.Value - s.last[i]
		s.last[i] = p.Value
		ser.push(p)
	}
	if next := now.Add(s.cfg.Interval); next <= s.until {
		s.sched.AtPrio(next, sim.PrioReport, s.tickFn)
	}
}

// RegisterScheduler exposes a scheduler's self-profile through the
// registry: fired totals by handler kind, wheel placement counters, the
// pending-event queue depth, and per-level slot occupancy. Paired with a
// Sampler this yields the scheduler-occupancy and queue-depth time series
// the mechanical-sympathy work reads to see where fired-event time goes
// *during* a run.
func RegisterScheduler(r *Registry, s *sim.Scheduler) {
	r.RegisterInt("sched.fired", func() int64 { return int64(s.Fired()) })
	r.RegisterInt("sched.fired.closure", func() int64 { return int64(s.Profile().FiredClosure) })
	r.RegisterInt("sched.fired.args2", func() int64 { return int64(s.Profile().FiredArgs2) })
	r.RegisterInt("sched.fired.args3", func() int64 { return int64(s.Profile().FiredArgs3) })
	r.RegisterInt("sched.pending", func() int64 { return int64(s.Pending()) })
	r.RegisterInt("sched.placed.single", func() int64 { return int64(s.Profile().PlacedSingle) })
	r.RegisterInt("sched.placed.overflow", func() int64 { return int64(s.Profile().PlacedOverflow) })
	r.RegisterInt("sched.cascades", func() int64 { return int64(s.Profile().Cascades) })
	for lvl := 0; lvl < sim.WheelLevels; lvl++ {
		lvl := lvl
		r.RegisterInt(fmt.Sprintf("sched.placed.l%d", lvl),
			func() int64 { return int64(s.Profile().PlacedLevel[lvl]) })
		r.RegisterInt(fmt.Sprintf("sched.occupancy.l%d", lvl),
			func() int64 { return int64(s.Occupancy()[lvl]) })
	}
}
