package metrics

import (
	"fmt"
	"math/rand"
	"testing"
)

// sampleSet draws n values spanning the histogram's interesting regimes:
// small exact-bucket values, mid-range, and large octaves.
func sampleSet(rng *rand.Rand, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		switch rng.Intn(3) {
		case 0:
			out[i] = rng.Int63n(32) // unit buckets
		case 1:
			out[i] = rng.Int63n(1 << 20)
		default:
			out[i] = rng.Int63n(1 << 50)
		}
	}
	return out
}

// requireEquivalent asserts two histograms agree on every externally
// observable statistic (counts, moments, extremes, quantiles, rendering).
func requireEquivalent(t *testing.T, label string, got, want *Histogram) {
	t.Helper()
	if got.Count() != want.Count() || got.Sum() != want.Sum() {
		t.Fatalf("%s: count/sum (%d, %d) != (%d, %d)",
			label, got.Count(), got.Sum(), want.Count(), want.Sum())
	}
	if got.Min() != want.Min() || got.Max() != want.Max() {
		t.Fatalf("%s: min/max (%d, %d) != (%d, %d)",
			label, got.Min(), got.Max(), want.Min(), want.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if g, w := got.Quantile(q), want.Quantile(q); g != w {
			t.Fatalf("%s: q%.2f = %d, want %d", label, q, g, w)
		}
	}
	if g, w := got.String(), want.String(); g != w {
		t.Fatalf("%s: rendered summaries differ:\n got %s\nwant %s", label, g, w)
	}
}

// Property: merging N shard histograms is indistinguishable from observing
// the union of their samples into one histogram — for any shard count and
// both below and above the exact-quantile threshold.
func TestHistogramMergeEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shards := range []int{1, 2, 3, 7} {
		for _, perShard := range []int{0, 1, 50, exactThreshold/2 + 1, exactThreshold + 10} {
			t.Run(fmt.Sprintf("shards=%d/per=%d", shards, perShard), func(t *testing.T) {
				union := NewHistogram()
				merged := NewHistogram()
				for s := 0; s < shards; s++ {
					shard := NewHistogram()
					for _, v := range sampleSet(rng, perShard) {
						shard.Observe(v)
						union.Observe(v)
					}
					merged.Merge(shard)
				}
				requireEquivalent(t, "merged vs union", merged, union)
			})
		}
	}
}

// Property: merging an empty histogram — fresh or Reset after use — is the
// identity, in both directions.
func TestHistogramMergeEmptyIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))

	base := NewHistogram()
	ref := NewHistogram()
	for _, v := range sampleSet(rng, 200) {
		base.Observe(v)
		ref.Observe(v)
	}

	base.Merge(NewHistogram())
	requireEquivalent(t, "merge fresh empty", base, ref)

	used := NewHistogram()
	for _, v := range sampleSet(rng, 50) {
		used.Observe(v)
	}
	used.Reset()
	base.Merge(used)
	requireEquivalent(t, "merge reset histogram", base, ref)

	// Empty ← full: the empty side becomes equivalent to the full side.
	into := NewHistogram()
	into.Merge(ref)
	requireEquivalent(t, "merge into empty", into, ref)

	// Reset ← full: a recycled histogram behaves like a fresh one.
	used.Merge(ref)
	requireEquivalent(t, "merge into reset", used, ref)
}
