package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Registry unifies the repo's scattered observability surfaces — ad-hoc
// uint64 stat fields, fabric counter aggregates, histograms — behind named
// hierarchical keys with one deterministic dump format. Names are dotted
// paths ("sched.fired.args2", "fabric.md.drops", "latency.design1.e2e");
// the convention is component.subcomponent.metric, so a sorted dump groups
// related metrics without the registry knowing the hierarchy.
//
// Integer metrics register a read function, not a value: sources keep
// mutating their own plain fields on the hot path (no indirection, no
// interface call per event) and the registry reads them once, at dump time.
// Registration order never matters — Dump sorts keys — so a registry dump
// is byte-stable across runs of a deterministic simulation.
type Registry struct {
	ints  map[string]func() int64
	hists map[string]*Histogram
	kinds map[string]Kind
}

// Kind classifies a registered metric for consumers that walk the registry
// structurally (the Sampler, manifest capture, cmd/tradestat) instead of
// re-parsing Dump's text output.
type Kind uint8

const (
	// KindInt is a read-at-dump-time integer: counters, *uint64 stat
	// fields, arbitrary derived reads. Deltas between samples are
	// meaningful for monotonic sources.
	KindInt Kind = iota
	// KindGauge is a settable level (queue depth, open orders): the
	// current value is the signal, deltas may go negative.
	KindGauge
	// KindHistogram is a distribution summarized by quantiles.
	KindHistogram
)

// String names the kind as it appears in manifests.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ints:  make(map[string]func() int64),
		hists: make(map[string]*Histogram),
		kinds: make(map[string]Kind),
	}
}

// RegisterInt binds name to an integer read at dump time. Registering a name
// twice panics: silent last-wins would make dumps depend on wiring order.
func (r *Registry) RegisterInt(name string, read func() int64) {
	if read == nil {
		panic("metrics: RegisterInt with nil reader")
	}
	r.checkName(name)
	r.ints[name] = read
	r.kinds[name] = KindInt
}

// RegisterUint binds name to a *uint64 stat field — the dominant shape of
// existing device and application counters.
func (r *Registry) RegisterUint(name string, v *uint64) {
	if v == nil {
		panic("metrics: RegisterUint with nil field")
	}
	r.RegisterInt(name, func() int64 { return int64(*v) })
}

// Counter creates, registers, and returns a fresh Counter under name.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.RegisterInt(name, c.Value)
	return c
}

// Gauge creates, registers, and returns a settable gauge handle under name.
// Unlike RegisterInt's read-function shape, a gauge is written by its owner
// (Set/Add) and read by the registry — the handle for levels that rise and
// fall (queue depths, open orders, pending replays).
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	r.RegisterInt(name, g.Value)
	r.kinds[name] = KindGauge
	return g
}

// RegisterHistogram binds name to a histogram, summarized at dump time.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	if h == nil {
		panic("metrics: RegisterHistogram with nil histogram")
	}
	r.checkName(name)
	r.hists[name] = h
	r.kinds[name] = KindHistogram
}

// Histogram creates, registers, and returns a fresh histogram under name.
func (r *Registry) Histogram(name string) *Histogram {
	h := NewHistogram()
	r.RegisterHistogram(name, h)
	return h
}

func (r *Registry) checkName(name string) {
	if name == "" || strings.ContainsAny(name, " \t\n=") {
		panic(fmt.Sprintf("metrics: invalid registry name %q", name))
	}
	if _, ok := r.ints[name]; ok {
		panic(fmt.Sprintf("metrics: duplicate registry name %q", name))
	}
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("metrics: duplicate registry name %q", name))
	}
}

// Names returns all registered names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.ints)+len(r.hists))
	for k := range r.ints {
		out = append(out, k)
	}
	for k := range r.hists {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Int reads the integer metric registered under name (false if absent).
func (r *Registry) Int(name string) (int64, bool) {
	read, ok := r.ints[name]
	if !ok {
		return 0, false
	}
	return read(), true
}

// Hist returns the histogram registered under name (false if absent).
func (r *Registry) Hist(name string) (*Histogram, bool) {
	h, ok := r.hists[name]
	return h, ok
}

// Kind returns the kind registered under name (false if absent).
func (r *Registry) Kind(name string) (Kind, bool) {
	k, ok := r.kinds[name]
	return k, ok
}

// Each walks every registered metric in sorted name order — the structural
// complement to Dump, so samplers and exporters never re-parse text. The
// walk order is deterministic and matches Dump's line order exactly.
func (r *Registry) Each(fn func(name string, kind Kind)) {
	for _, name := range r.Names() {
		fn(name, r.kinds[name])
	}
}

// Dump writes every metric in sorted name order, one per line: integers as
// "name value", histograms as "name count=N min=… mean=… p50=… p99=… max=…"
// (empty histograms dump as count=0 only). The output is deterministic:
// byte-identical across runs with identical metric values.
func (r *Registry) Dump(w io.Writer) error {
	for _, name := range r.Names() {
		if read, ok := r.ints[name]; ok {
			if _, err := fmt.Fprintf(w, "%s %d\n", name, read()); err != nil {
				return err
			}
			continue
		}
		h := r.hists[name]
		if h.Count() == 0 {
			if _, err := fmt.Fprintf(w, "%s count=0\n", name); err != nil {
				return err
			}
			continue
		}
		_, err := fmt.Fprintf(w, "%s count=%d min=%d mean=%.0f p50=%d p99=%d max=%d\n",
			name, h.Count(), h.Min(), h.Mean(), h.Median(), h.P99(), h.Max())
		if err != nil {
			return err
		}
	}
	return nil
}

// String returns the Dump output as a string.
func (r *Registry) String() string {
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		panic(err) // Builder never errors
	}
	return b.String()
}
