package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"tradenet/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Median() != 0 {
		t.Fatal("empty median should be 0")
	}
	if h.String() != "empty" {
		t.Fatalf("String = %q", h.String())
	}
}

func TestHistogramExactSmall(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{5, 1, 9, 3, 7} {
		h.Observe(v)
	}
	if h.Min() != 1 || h.Max() != 9 || h.Count() != 5 {
		t.Fatalf("min/max/count = %d/%d/%d", h.Min(), h.Max(), h.Count())
	}
	if h.Mean() != 5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Median() != 5 {
		t.Fatalf("median = %d, want 5", h.Median())
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 9 {
		t.Fatal("extreme quantiles should hit min/max")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-100)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative not clamped: min=%d max=%d", h.Min(), h.Max())
	}
}

func TestHistogramBucketedQuantileAccuracy(t *testing.T) {
	// Beyond the exact threshold, quantiles come from log-linear buckets and
	// must stay within ~3.2% (one sub-bucket) of the true value.
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	var raw []int64
	for i := 0; i < 50_000; i++ {
		// Latency-shaped distribution: ~exp around 500ns in picoseconds.
		v := int64(rng.ExpFloat64() * 500_000)
		raw = append(raw, v)
		h.Observe(v)
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := raw[int(q*float64(len(raw)))]
		got := h.Quantile(q)
		relErr := float64(got-want) / float64(want)
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 0.04 {
			t.Errorf("q%.3f: got %d want %d (rel err %.3f)", q, got, want, relErr)
		}
	}
}

func TestHistogramMergePreservesTotals(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(1); i <= 100; i++ {
		a.Observe(i)
	}
	for i := int64(101); i <= 200; i++ {
		b.Observe(i)
	}
	a.Merge(b)
	if a.Count() != 200 || a.Min() != 1 || a.Max() != 200 {
		t.Fatalf("merged: %v", a)
	}
	if a.Sum() != 200*201/2 {
		t.Fatalf("sum = %d", a.Sum())
	}
	if m := a.Median(); m < 95 || m > 105 {
		t.Fatalf("median after merge = %d", m)
	}
	// Merging an empty histogram is a no-op.
	before := a.Summarize()
	a.Merge(NewHistogram())
	if a.Summarize() != before {
		t.Fatal("merging empty histogram changed state")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Min() != 0 {
		t.Fatal("reset did not clear")
	}
	h.Observe(7)
	if h.Median() != 7 {
		t.Fatal("histogram unusable after reset")
	}
}

// Property: quantile is monotone in q and bounded by [min, max].
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		h := NewHistogram()
		for _, s := range samples {
			h.Observe(int64(s))
		}
		prev := int64(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<22; v += 97 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucket index decreased at %d", v)
		}
		if lo := bucketLow(idx); lo > v {
			t.Fatalf("bucketLow(%d)=%d > sample %d", idx, lo, v)
		}
		prev = idx
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
}

func TestWindowSeriesBasics(t *testing.T) {
	w := NewWindowSeries(0, sim.Second, 10)
	w.Record(0)
	w.Record(sim.Time(sim.Second) - 1) // still window 0
	w.Record(sim.Time(sim.Second))     // window 1
	w.RecordN(sim.Time(9*sim.Second), 5)
	w.Record(sim.Time(10 * sim.Second)) // out of range, dropped
	if w.Count(0) != 2 || w.Count(1) != 1 || w.Count(9) != 5 {
		t.Fatalf("counts = %v", w.Counts())
	}
	if w.Total() != 8 {
		t.Fatalf("total = %d", w.Total())
	}
	idx, c := w.Busiest()
	if idx != 9 || c != 5 {
		t.Fatalf("busiest = %d,%d", idx, c)
	}
	if w.NonZero() != 3 {
		t.Fatalf("nonzero = %d", w.NonZero())
	}
	if w.WindowStart(3) != sim.Time(3*sim.Second) {
		t.Fatal("window start wrong")
	}
	if w.Len() != 10 || w.Width() != sim.Second {
		t.Fatal("len/width wrong")
	}
}

func TestWindowSeriesIndexOutOfRange(t *testing.T) {
	w := NewWindowSeries(sim.Time(sim.Second), sim.Second, 2)
	if w.Index(0) != -1 {
		t.Fatal("before start should be -1")
	}
	if w.Index(sim.Time(3*sim.Second)) != -1 {
		t.Fatal("past end should be -1")
	}
	if w.Index(sim.Time(sim.Second)) != 0 {
		t.Fatal("start should be window 0")
	}
}

func TestWindowSeriesMedianWithFilter(t *testing.T) {
	w := NewWindowSeries(0, sim.Second, 5)
	// windows: 0, 10, 20, 30, 0 — median over all = 10; over nonzero = 20.
	w.RecordN(sim.Time(1*sim.Second), 10)
	w.RecordN(sim.Time(2*sim.Second), 20)
	w.RecordN(sim.Time(3*sim.Second), 30)
	if m := w.Median(nil); m != 10 {
		t.Fatalf("median all = %d", m)
	}
	m := w.Median(func(i int) bool { return w.Count(i) > 0 })
	if m != 20 {
		t.Fatalf("median nonzero = %d", m)
	}
}

func TestWindowSeriesValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero width should panic")
		}
	}()
	NewWindowSeries(0, 0, 1)
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"Feed", "min", "max"}, [][]string{
		{"Exchange A", "73", "1514"},
		{"B", "64", "1067"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Feed") || !strings.Contains(lines[2], "Exchange A") {
		t.Fatalf("table malformed:\n%s", out)
	}
	// Columns align: header and row start of "min" column match.
	if idxHeader, idxRow := strings.Index(lines[0], "min"), strings.Index(lines[2], "73"); idxHeader != idxRow {
		t.Fatalf("columns misaligned: %d vs %d\n%s", idxHeader, idxRow, out)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i % 1_000_000))
	}
}

func TestWindowSeriesWriteCSV(t *testing.T) {
	w := NewWindowSeries(0, sim.Second, 3)
	w.RecordN(0, 5)
	w.RecordN(sim.Time(2*sim.Second), 7)
	var buf strings.Builder
	if err := w.WriteCSV(&buf, sim.Second, "t_s", "events"); err != nil {
		t.Fatal(err)
	}
	want := "t_s,events\n0,5\n1,0\n2,7\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
	// Zero unit defaults to the window width.
	var buf2 strings.Builder
	if err := w.WriteCSV(&buf2, 0, "w", "n"); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != "w,n\n0,5\n1,0\n2,7\n" {
		t.Fatalf("csv2 = %q", buf2.String())
	}
}
