package metrics

import (
	"fmt"
	"io"
	"sort"

	"tradenet/internal/sim"
)

// Counter is a monotonically increasing event count.
type Counter struct{ n int64 }

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Gauge is a settable level: where a Counter only accumulates, a gauge
// tracks a quantity that rises and falls (queue depth, open orders,
// in-flight replays). Registered through Registry.Gauge so consumers can
// tell levels from counts without guessing at monotonicity.
type Gauge struct{ v int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v = v }

// Add moves the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) { g.v += delta }

// Inc adds one.
func (g *Gauge) Inc() { g.v++ }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v-- }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// WindowSeries counts events into fixed-width windows of simulated time:
// the aggregation behind Figure 2(b) (1-second windows across a trading
// day) and Figure 2(c) (100-microsecond windows across the busiest second).
type WindowSeries struct {
	start   sim.Time
	width   sim.Duration
	counts  []int64
	dropped int64
}

// NewWindowSeries creates a series of n windows of the given width starting
// at start. Events outside [start, start+n*width) are dropped (and counted
// by Dropped).
func NewWindowSeries(start sim.Time, width sim.Duration, n int) *WindowSeries {
	if width <= 0 || n <= 0 {
		panic("metrics: window series needs positive width and count")
	}
	return &WindowSeries{start: start, width: width, counts: make([]int64, n)}
}

// Record counts one event at instant t.
func (w *WindowSeries) Record(t sim.Time) { w.RecordN(t, 1) }

// RecordN counts n events at instant t.
func (w *WindowSeries) RecordN(t sim.Time, n int64) {
	idx := w.Index(t)
	if idx < 0 {
		w.dropped += n
		return
	}
	w.counts[idx] += n
}

// Dropped returns the number of events recorded outside the series range
// (before start or at/after the final window's end).
func (w *WindowSeries) Dropped() int64 { return w.dropped }

// Index returns the window index containing t, or -1 if out of range.
func (w *WindowSeries) Index(t sim.Time) int {
	if t < w.start {
		return -1
	}
	idx := int(t.Sub(w.start) / w.width)
	if idx >= len(w.counts) {
		return -1
	}
	return idx
}

// WindowStart returns the start instant of window i.
func (w *WindowSeries) WindowStart(i int) sim.Time {
	return w.start.Add(sim.Duration(i) * w.width)
}

// WindowEnd returns the exclusive end instant of window i: events at
// exactly WindowEnd(i) belong to window i+1 (or are dropped past the last).
func (w *WindowSeries) WindowEnd(i int) sim.Time {
	return w.start.Add(sim.Duration(i+1) * w.width)
}

// Window returns window i's half-open boundaries [start, end).
func (w *WindowSeries) Window(i int) (start, end sim.Time) {
	return w.WindowStart(i), w.WindowEnd(i)
}

// Bounds returns the series' overall half-open range [start, end): the
// instants Record accepts without dropping.
func (w *WindowSeries) Bounds() (start, end sim.Time) {
	return w.start, w.WindowEnd(len(w.counts) - 1)
}

// Each walks every window in index order — a deterministic iterator
// exposing each window's boundaries alongside its count, so consumers
// (CSV writers, manifest capture, tests) never recompute the geometry.
func (w *WindowSeries) Each(fn func(i int, start, end sim.Time, count int64)) {
	for i, c := range w.counts {
		fn(i, w.WindowStart(i), w.WindowEnd(i), c)
	}
}

// Merge adds o's per-window counts and dropped total into w. The two
// series must share identical geometry (start, width, window count):
// merging misaligned series would silently smear events across window
// boundaries, so that is a panic, not a best-effort.
func (w *WindowSeries) Merge(o *WindowSeries) {
	if w.start != o.start || w.width != o.width || len(w.counts) != len(o.counts) {
		panic("metrics: WindowSeries.Merge geometry mismatch")
	}
	for i, c := range o.counts {
		w.counts[i] += c
	}
	w.dropped += o.dropped
}

// Len returns the number of windows.
func (w *WindowSeries) Len() int { return len(w.counts) }

// Width returns the window width.
func (w *WindowSeries) Width() sim.Duration { return w.width }

// Count returns the event count in window i.
func (w *WindowSeries) Count(i int) int64 { return w.counts[i] }

// Counts returns the underlying window counts. The caller must not modify it.
func (w *WindowSeries) Counts() []int64 { return w.counts }

// Total returns the sum across all windows.
func (w *WindowSeries) Total() int64 {
	var t int64
	for _, c := range w.counts {
		t += c
	}
	return t
}

// Busiest returns the index and count of the fullest window.
func (w *WindowSeries) Busiest() (idx int, count int64) {
	for i, c := range w.counts {
		if c > count {
			idx, count = i, c
		}
	}
	return idx, count
}

// Median returns the median per-window count, considering only windows that
// satisfy the filter (pass nil to include all windows). Figure 2(b)'s
// "median second has over 300k events" considers only the trading session,
// not the empty overnight windows.
func (w *WindowSeries) Median(include func(i int) bool) int64 {
	var vals []int64
	for i, c := range w.counts {
		if include == nil || include(i) {
			vals = append(vals, c)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals[len(vals)/2]
}

// NonZero returns the number of windows with at least one event.
func (w *WindowSeries) NonZero() int {
	n := 0
	for _, c := range w.counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// WriteCSV emits the series as two columns — window start (in units of
// unit, e.g. seconds) and count — so the paper's figures can be re-plotted
// from the generated data.
func (w *WindowSeries) WriteCSV(out io.Writer, unit sim.Duration, xLabel, yLabel string) error {
	if unit <= 0 {
		unit = w.width
	}
	if _, err := fmt.Fprintf(out, "%s,%s\n", xLabel, yLabel); err != nil {
		return err
	}
	for i, c := range w.counts {
		x := float64(w.WindowStart(i)) / float64(unit)
		if _, err := fmt.Fprintf(out, "%g,%d\n", x, c); err != nil {
			return err
		}
	}
	return nil
}
