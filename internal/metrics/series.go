package metrics

import (
	"fmt"
	"io"
	"sort"

	"tradenet/internal/sim"
)

// Counter is a monotonically increasing event count.
type Counter struct{ n int64 }

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// WindowSeries counts events into fixed-width windows of simulated time:
// the aggregation behind Figure 2(b) (1-second windows across a trading
// day) and Figure 2(c) (100-microsecond windows across the busiest second).
type WindowSeries struct {
	start   sim.Time
	width   sim.Duration
	counts  []int64
	dropped int64
}

// NewWindowSeries creates a series of n windows of the given width starting
// at start. Events outside [start, start+n*width) are dropped (and counted
// by Dropped).
func NewWindowSeries(start sim.Time, width sim.Duration, n int) *WindowSeries {
	if width <= 0 || n <= 0 {
		panic("metrics: window series needs positive width and count")
	}
	return &WindowSeries{start: start, width: width, counts: make([]int64, n)}
}

// Record counts one event at instant t.
func (w *WindowSeries) Record(t sim.Time) { w.RecordN(t, 1) }

// RecordN counts n events at instant t.
func (w *WindowSeries) RecordN(t sim.Time, n int64) {
	idx := w.Index(t)
	if idx < 0 {
		w.dropped += n
		return
	}
	w.counts[idx] += n
}

// Dropped returns the number of events recorded outside the series range
// (before start or at/after the final window's end).
func (w *WindowSeries) Dropped() int64 { return w.dropped }

// Index returns the window index containing t, or -1 if out of range.
func (w *WindowSeries) Index(t sim.Time) int {
	if t < w.start {
		return -1
	}
	idx := int(t.Sub(w.start) / w.width)
	if idx >= len(w.counts) {
		return -1
	}
	return idx
}

// WindowStart returns the start instant of window i.
func (w *WindowSeries) WindowStart(i int) sim.Time {
	return w.start.Add(sim.Duration(i) * w.width)
}

// Len returns the number of windows.
func (w *WindowSeries) Len() int { return len(w.counts) }

// Width returns the window width.
func (w *WindowSeries) Width() sim.Duration { return w.width }

// Count returns the event count in window i.
func (w *WindowSeries) Count(i int) int64 { return w.counts[i] }

// Counts returns the underlying window counts. The caller must not modify it.
func (w *WindowSeries) Counts() []int64 { return w.counts }

// Total returns the sum across all windows.
func (w *WindowSeries) Total() int64 {
	var t int64
	for _, c := range w.counts {
		t += c
	}
	return t
}

// Busiest returns the index and count of the fullest window.
func (w *WindowSeries) Busiest() (idx int, count int64) {
	for i, c := range w.counts {
		if c > count {
			idx, count = i, c
		}
	}
	return idx, count
}

// Median returns the median per-window count, considering only windows that
// satisfy the filter (pass nil to include all windows). Figure 2(b)'s
// "median second has over 300k events" considers only the trading session,
// not the empty overnight windows.
func (w *WindowSeries) Median(include func(i int) bool) int64 {
	var vals []int64
	for i, c := range w.counts {
		if include == nil || include(i) {
			vals = append(vals, c)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals[len(vals)/2]
}

// NonZero returns the number of windows with at least one event.
func (w *WindowSeries) NonZero() int {
	n := 0
	for _, c := range w.counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// WriteCSV emits the series as two columns — window start (in units of
// unit, e.g. seconds) and count — so the paper's figures can be re-plotted
// from the generated data.
func (w *WindowSeries) WriteCSV(out io.Writer, unit sim.Duration, xLabel, yLabel string) error {
	if unit <= 0 {
		unit = w.width
	}
	if _, err := fmt.Fprintf(out, "%s,%s\n", xLabel, yLabel); err != nil {
		return err
	}
	for i, c := range w.counts {
		x := float64(w.WindowStart(i)) / float64(unit)
		if _, err := fmt.Fprintf(out, "%g,%d\n", x, c); err != nil {
			return err
		}
	}
	return nil
}
