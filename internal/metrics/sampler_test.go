package metrics

import (
	"testing"

	"tradenet/internal/sim"
)

// TestGaugeAndEachWalker covers the structural registry surface the
// sampler and cmd/tradestat consume: kinds, the sorted Each walk matching
// Dump's line order, and the settable gauge handle.
func TestGaugeAndEachWalker(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("q.depth")
	c := r.Counter("a.count")
	h := r.Histogram("m.lat")

	g.Set(5)
	g.Add(-2)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge value = %d, want 3", got)
	}
	c.Add(7)
	h.Observe(10)

	var names []string
	var kinds []Kind
	r.Each(func(name string, kind Kind) {
		names = append(names, name)
		kinds = append(kinds, kind)
	})
	wantNames := []string{"a.count", "m.lat", "q.depth"}
	wantKinds := []Kind{KindInt, KindHistogram, KindGauge}
	if len(names) != len(wantNames) {
		t.Fatalf("Each walked %d metrics, want %d", len(names), len(wantNames))
	}
	for i := range wantNames {
		if names[i] != wantNames[i] || kinds[i] != wantKinds[i] {
			t.Errorf("Each[%d] = (%s, %s), want (%s, %s)", i, names[i], kinds[i], wantNames[i], wantKinds[i])
		}
	}

	if v, ok := r.Int("q.depth"); !ok || v != 3 {
		t.Errorf("Int(q.depth) = %d,%v; want 3,true", v, ok)
	}
	if hh, ok := r.Hist("m.lat"); !ok || hh != h {
		t.Errorf("Hist(m.lat) did not return the registered histogram")
	}
	if _, ok := r.Hist("a.count"); ok {
		t.Error("Hist(a.count) matched an int metric")
	}
	if k, ok := r.Kind("a.count"); !ok || k != KindInt {
		t.Errorf("Kind(a.count) = %s,%v; want int,true", k, ok)
	}
	if _, ok := r.Kind("missing"); ok {
		t.Error("Kind(missing) reported present")
	}
}

// TestSamplerDeltasAndSnapshots drives a counter, a gauge, and a histogram
// through a scripted run and checks the per-tick points: values, deltas
// (negative for the gauge), and histogram quantile snapshots.
func TestSamplerDeltasAndSnapshots(t *testing.T) {
	sched := sim.NewScheduler(1)
	reg := NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h")

	s := NewSampler(sched, reg, SamplerConfig{Interval: 10 * sim.Microsecond})
	c.Add(100) // pre-arm counts baseline into the first delta's floor
	s.Arm(0, sim.Time(40*sim.Microsecond))

	at := func(us int, fn func()) { sched.At(sim.Time(sim.Duration(us)*sim.Microsecond), fn) }
	at(5, func() { c.Add(3); g.Set(10); h.Observe(50) })
	at(15, func() { c.Add(4); g.Set(2); h.Observe(100); h.Observe(200) })
	at(35, func() { c.Add(1) })
	sched.Run()

	if got := s.Ticks(); got != 4 {
		t.Fatalf("ticks = %d, want 4", got)
	}
	cs := s.SeriesByName("c")
	if cs == nil || cs.Kind != KindInt {
		t.Fatalf("missing counter series")
	}
	wantVals := []int64{103, 107, 107, 108}
	wantDeltas := []int64{3, 4, 0, 1}
	for i := 0; i < cs.Len(); i++ {
		p := cs.At(i)
		if p.Value != wantVals[i] || p.Delta != wantDeltas[i] {
			t.Errorf("c tick %d = (v=%d d=%d), want (v=%d d=%d)", i, p.Value, p.Delta, wantVals[i], wantDeltas[i])
		}
		if want := sim.Time(sim.Duration(10*(i+1)) * sim.Microsecond); p.T != want {
			t.Errorf("c tick %d at %v, want %v", i, p.T, want)
		}
	}

	gs := s.SeriesByName("g")
	if gs.Kind != KindGauge {
		t.Fatalf("g kind = %s", gs.Kind)
	}
	if p := gs.At(1); p.Value != 2 || p.Delta != -8 {
		t.Errorf("gauge tick 1 = (v=%d d=%d), want (v=2 d=-8)", p.Value, p.Delta)
	}

	hs := s.SeriesByName("h")
	if hs.Kind != KindHistogram {
		t.Fatalf("h kind = %s", hs.Kind)
	}
	if p := hs.At(0); p.Value != 1 || p.Max != 50 {
		t.Errorf("hist tick 0 = (count=%d max=%d), want (1, 50)", p.Value, p.Max)
	}
	p := hs.At(1)
	if p.Value != 3 || p.Delta != 2 || p.Max != 200 || p.P50 != 100 {
		t.Errorf("hist tick 1 = (count=%d d=%d p50=%d max=%d), want (3,2,100,200)", p.Value, p.Delta, p.P50, p.Max)
	}
}

// TestSamplerRingEviction fills a tiny ring past capacity and checks the
// oldest points roll off, the eviction counter is exact, and the retained
// window is the most recent points in order.
func TestSamplerRingEviction(t *testing.T) {
	sched := sim.NewScheduler(1)
	reg := NewRegistry()
	c := reg.Counter("c")
	s := NewSampler(sched, reg, SamplerConfig{Interval: sim.Microsecond, Capacity: 3})
	s.Arm(0, sim.Time(10*sim.Microsecond))
	for i := 1; i <= 10; i++ {
		i := i
		sched.AtPrio(sim.Time(sim.Duration(i)*sim.Microsecond), sim.PrioDeliver, func() { c.Add(int64(i)) })
	}
	sched.Run()

	ser := s.SeriesByName("c")
	if ser.Len() != 3 {
		t.Fatalf("retained %d points, want 3", ser.Len())
	}
	if ser.Evicted() != 7 {
		t.Fatalf("evicted = %d, want 7", ser.Evicted())
	}
	// Ticks 8, 9, 10 remain: cumulative sums 36, 45, 55 with deltas 8, 9, 10.
	wantVals := []int64{36, 45, 55}
	for i := 0; i < 3; i++ {
		p := ser.At(i)
		if p.Value != wantVals[i] || p.Delta != int64(i+8) {
			t.Errorf("retained[%d] = (v=%d d=%d), want (v=%d d=%d)", i, p.Value, p.Delta, wantVals[i], i+8)
		}
	}
}

// TestSamplerBoundedByDeadline: the tick chain must stop at the Arm
// deadline so Scheduler.Run (queue-empty termination) still terminates,
// and an un-armed or nil sampler must schedule nothing.
func TestSamplerBoundedByDeadline(t *testing.T) {
	sched := sim.NewScheduler(1)
	reg := NewRegistry()
	reg.Counter("c")
	s := NewSampler(sched, reg, SamplerConfig{Interval: sim.Microsecond})
	s.Arm(0, sim.Time(5*sim.Microsecond))
	end := sched.Run() // would hang here if ticks re-armed forever
	if want := sim.Time(5 * sim.Microsecond); end != want {
		t.Errorf("run ended at %v, want %v", end, want)
	}
	if s.Ticks() != 5 {
		t.Errorf("ticks = %d, want 5", s.Ticks())
	}

	var nilS *Sampler
	nilS.Arm(0, sim.Time(sim.Second)) // must not panic or schedule
	if nilS.Ticks() != 0 || nilS.Series() != nil || nilS.SeriesByName("c") != nil {
		t.Error("nil sampler reported state")
	}
}

// TestSamplerSchedulerMetrics: RegisterScheduler's occupancy and queue-depth
// reads must reflect the live scheduler at each tick.
func TestSamplerSchedulerMetrics(t *testing.T) {
	sched := sim.NewScheduler(1)
	reg := NewRegistry()
	RegisterScheduler(reg, sched)
	s := NewSampler(sched, reg, SamplerConfig{Interval: 10 * sim.Microsecond})

	for i := 0; i < 50; i++ {
		sched.At(sim.Time(sim.Duration(25+i)*sim.Microsecond), func() {})
	}
	s.Arm(0, sim.Time(50*sim.Microsecond))
	sched.Run()

	fired := s.SeriesByName("sched.fired")
	if fired == nil {
		t.Fatal("sched.fired not sampled")
	}
	var prev int64
	fired.Each(func(p SamplePoint) {
		if p.Value < prev || p.Delta != p.Value-prev {
			t.Errorf("sched.fired not monotone/consistent at %v: v=%d d=%d prev=%d", p.T, p.Value, p.Delta, prev)
		}
		prev = p.Value
	})
	if prev == 0 || uint64(prev) > sched.Fired() {
		t.Errorf("last sched.fired sample %d out of range (final fired %d)", prev, sched.Fired())
	}
	pend := s.SeriesByName("sched.pending")
	if pend.At(0).Value == 0 {
		t.Error("sched.pending sampled 0 while 50 events were queued")
	}
	if s.SeriesByName("sched.occupancy.l0") == nil || s.SeriesByName("sched.placed.l1") == nil {
		t.Error("per-level scheduler series missing")
	}
}
