// Package metrics provides the measurement primitives used by every
// experiment: latency histograms with percentile queries, simple counters,
// and fixed-width windowed time series (the aggregation behind the paper's
// Figure 2(b) 1-second windows and Figure 2(c) 100-microsecond windows).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram records int64 samples (typically picosecond latencies or byte
// counts) with exact min/max/mean and quantiles computed from
// log-linear buckets, in the style of HDR histograms: each power-of-two
// range is split into 32 linear sub-buckets, giving ~3% relative error on
// quantiles across the full int64 range with a small fixed footprint.
type Histogram struct {
	count  int64
	sum    int64
	min    int64
	max    int64
	counts map[int]int64 // bucket index -> count
	exact  []int64       // retained raw samples while small, for exact quantiles
}

const (
	subBucketBits  = 5 // 32 linear sub-buckets per octave
	subBuckets     = 1 << subBucketBits
	exactThreshold = 4096 // keep raw samples up to this many for exact stats
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64, max: math.MinInt64, counts: make(map[int]int64)}
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// v lies in the octave [2^hi, 2^(hi+1)), split into 32 linear
	// sub-buckets of width 2^(hi-5).
	hi := 63 - leadingZeros64(uint64(v))
	shift := hi - subBucketBits
	sub := int(v>>uint(shift)) & (subBuckets - 1)
	octave := hi - subBucketBits
	return subBuckets + octave*subBuckets + sub
}

func bucketLow(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	idx -= subBuckets
	octave := idx / subBuckets
	sub := idx % subBuckets
	base := int64(1) << uint(octave+subBucketBits)
	width := int64(1) << uint(octave)
	return base + int64(sub)*width
}

func bucketMid(idx int) int64 {
	lo := bucketLow(idx)
	if idx < subBuckets {
		return lo
	}
	next := bucketLow(idx + 1)
	return lo + (next-lo)/2
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Observe records one sample. Negative samples are clamped to zero: they can
// only arise from clock-model skew and would otherwise corrupt quantiles.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketIndex(v)]++
	if h.exact != nil || h.count <= exactThreshold {
		h.exact = append(h.exact, v)
		if len(h.exact) > exactThreshold {
			h.exact = nil // fall back to bucketed quantiles
		}
	}
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest sample, or 0 if empty.
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 if empty.
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the q-quantile (q in [0,1]). While the histogram holds at
// most 4096 samples the answer is exact; beyond that it is the midpoint of
// the log-linear bucket containing the quantile (≤ ~3% relative error).
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	if h.exact != nil {
		sorted := append([]int64(nil), h.exact...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return sorted[rank]
	}
	idxs := make([]int, 0, len(h.counts))
	for idx := range h.counts {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	var seen int64
	for _, idx := range idxs {
		seen += h.counts[idx]
		if seen > rank {
			mid := bucketMid(idx)
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.Max()
}

// Median is Quantile(0.5).
func (h *Histogram) Median() int64 { return h.Quantile(0.5) }

// P99 is Quantile(0.99).
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// Merge adds all of o's samples into h. Exactness is preserved only if the
// merged sample count still fits the exact-retention threshold.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	h.count += o.count
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for idx, c := range o.counts {
		h.counts[idx] += c
	}
	if h.exact != nil && o.exact != nil && int64(len(h.exact)+len(o.exact)) <= exactThreshold {
		h.exact = append(h.exact, o.exact...)
	} else {
		h.exact = nil
	}
}

// Reset empties the histogram.
func (h *Histogram) Reset() {
	h.count, h.sum = 0, 0
	h.min, h.max = math.MaxInt64, math.MinInt64
	h.counts = make(map[int]int64)
	h.exact = h.exact[:0]
}

// String summarizes the distribution on one line.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "empty"
	}
	return fmt.Sprintf("n=%d min=%d p50=%d mean=%.1f p99=%d max=%d",
		h.count, h.Min(), h.Median(), h.Mean(), h.P99(), h.Max())
}

// Summary holds a snapshot of a distribution's headline statistics.
type Summary struct {
	Count       int64
	Min, Max    int64
	Mean        float64
	Median, P90 int64
	P99, P999   int64
}

// Summarize captures the headline statistics of the histogram.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count:  h.Count(),
		Min:    h.Min(),
		Max:    h.Max(),
		Mean:   h.Mean(),
		Median: h.Median(),
		P90:    h.Quantile(0.90),
		P99:    h.P99(),
		P999:   h.Quantile(0.999),
	}
}

// Table renders rows of labeled summaries as a fixed-width text table, the
// output format used by the experiment harness.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, hcol := range header {
		widths[i] = len(hcol)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
