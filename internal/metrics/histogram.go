// Package metrics provides the measurement primitives used by every
// experiment: latency histograms with percentile queries, simple counters,
// and fixed-width windowed time series (the aggregation behind the paper's
// Figure 2(b) 1-second windows and Figure 2(c) 100-microsecond windows).
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"slices"
	"strings"
)

const (
	subBucketBits  = 5 // 32 linear sub-buckets per octave
	subBuckets     = 1 << subBucketBits
	exactThreshold = 4096 // keep raw samples up to this many for exact stats

	// numBuckets is the full index range of bucketIndex over non-negative
	// int64: 32 unit buckets for [0,32), then 32 sub-buckets for each of the
	// 58 octaves [2^5,2^6) … [2^62,2^63).
	numBuckets = subBuckets + (62-subBucketBits+1)*subBuckets // 1888
)

// Histogram records int64 samples (typically picosecond latencies or byte
// counts) with exact min/max/mean and quantiles computed from log-linear
// buckets, in the style of HDR histograms: each power-of-two range is split
// into 32 linear sub-buckets, giving ~3% relative error on quantiles across
// the full int64 range with a small fixed footprint.
//
// Buckets are a dense fixed-size array (no map, no hashing on the record
// path), and quantile queries run off a cached cumulative distribution that
// is rebuilt at most once per batch of observations — so neither Observe nor
// Quantile allocates in steady state.
type Histogram struct {
	count int64
	sum   int64
	min   int64
	max   int64

	counts [numBuckets]int64

	// exact retains raw samples while the histogram is small, for exact
	// quantiles. Once the count passes exactThreshold the histogram degrades
	// to bucketed quantiles; exactOver records that transition (the backing
	// array is kept for Reset-without-realloc).
	exact     []int64
	exactOver bool

	// Quantile caches, invalidated by Observe/Merge/Reset.
	cdf         []int64 // cdf[i] = sum of counts[0..i]; len numBuckets when valid
	cdfValid    bool
	sortedExact []int64
	sortValid   bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64, max: math.MinInt64}
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// v lies in the octave [2^hi, 2^(hi+1)), split into 32 linear
	// sub-buckets of width 2^(hi-5).
	hi := bits.Len64(uint64(v)) - 1
	shift := hi - subBucketBits
	sub := int(v>>uint(shift)) & (subBuckets - 1)
	octave := hi - subBucketBits
	return subBuckets + octave*subBuckets + sub
}

func bucketLow(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	idx -= subBuckets
	octave := idx / subBuckets
	sub := idx % subBuckets
	base := int64(1) << uint(octave+subBucketBits)
	width := int64(1) << uint(octave)
	return base + int64(sub)*width
}

func bucketMid(idx int) int64 {
	lo := bucketLow(idx)
	if idx < subBuckets {
		return lo
	}
	next := bucketLow(idx + 1)
	return lo + (next-lo)/2
}

// Observe records one sample. Negative samples are clamped to zero: they can
// only arise from clock-model skew and would otherwise corrupt quantiles.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketIndex(v)]++
	if !h.exactOver {
		h.exact = append(h.exact, v)
		if len(h.exact) > exactThreshold {
			h.exactOver = true // fall back to bucketed quantiles
			h.exact = h.exact[:0]
		}
	}
	h.cdfValid, h.sortValid = false, false
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest sample, or 0 if empty.
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 if empty.
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the q-quantile (q in [0,1]). While the histogram holds at
// most 4096 samples the answer is exact; beyond that it is the midpoint of
// the log-linear bucket containing the quantile (≤ ~3% relative error).
// Queries are O(buckets) to refresh the cached CDF after new observations
// and O(log buckets) thereafter; no per-query sorting or allocation.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	if !h.exactOver {
		if !h.sortValid {
			h.sortedExact = append(h.sortedExact[:0], h.exact...)
			slices.Sort(h.sortedExact)
			h.sortValid = true
		}
		return h.sortedExact[rank]
	}
	if !h.cdfValid {
		if h.cdf == nil {
			h.cdf = make([]int64, numBuckets)
		}
		var run int64
		for i, c := range h.counts {
			run += c
			h.cdf[i] = run
		}
		h.cdfValid = true
	}
	// First bucket whose cumulative count exceeds rank.
	lo, hi := 0, numBuckets-1
	for lo < hi {
		mid := (lo + hi) / 2
		if h.cdf[mid] > rank {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	mid := bucketMid(lo)
	if mid < h.min {
		mid = h.min
	}
	if mid > h.max {
		mid = h.max
	}
	return mid
}

// Median is Quantile(0.5).
func (h *Histogram) Median() int64 { return h.Quantile(0.5) }

// P99 is Quantile(0.99).
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// Merge adds all of o's samples into h. Exactness is preserved only if the
// merged sample count still fits the exact-retention threshold.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	h.count += o.count
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	if !h.exactOver && !o.exactOver && len(h.exact)+len(o.exact) <= exactThreshold {
		h.exact = append(h.exact, o.exact...)
	} else {
		h.exactOver = true
		h.exact = h.exact[:0]
	}
	h.cdfValid, h.sortValid = false, false
}

// Reset empties the histogram without releasing its backing storage, so a
// pooled histogram reused across replications does not re-allocate.
func (h *Histogram) Reset() {
	h.count, h.sum = 0, 0
	h.min, h.max = math.MaxInt64, math.MinInt64
	h.counts = [numBuckets]int64{}
	h.exact = h.exact[:0]
	h.exactOver = false
	h.cdfValid, h.sortValid = false, false
}

// String summarizes the distribution on one line.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "empty"
	}
	return fmt.Sprintf("n=%d min=%d p50=%d mean=%.1f p99=%d max=%d",
		h.count, h.Min(), h.Median(), h.Mean(), h.P99(), h.Max())
}

// Summary holds a snapshot of a distribution's headline statistics.
type Summary struct {
	Count       int64
	Min, Max    int64
	Mean        float64
	Median, P90 int64
	P99, P999   int64
}

// Summarize captures the headline statistics of the histogram.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count:  h.Count(),
		Min:    h.Min(),
		Max:    h.Max(),
		Mean:   h.Mean(),
		Median: h.Median(),
		P90:    h.Quantile(0.90),
		P99:    h.P99(),
		P999:   h.Quantile(0.999),
	}
}

// Table renders rows of labeled summaries as a fixed-width text table, the
// output format used by the experiment harness.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, hcol := range header {
		widths[i] = len(hcol)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
