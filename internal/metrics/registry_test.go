package metrics

import (
	"strings"
	"testing"
)

func TestRegistryDumpIsSortedAndLazy(t *testing.T) {
	r := NewRegistry()
	var backing int64 = 1
	r.RegisterInt("z.last", func() int64 { return 26 })
	r.RegisterInt("a.first", func() int64 { return backing })
	c := r.Counter("m.counter")
	h := r.Histogram("m.hist")

	backing = 41 // reads are lazy: the dump must see the current value
	c.Add(3)
	h.Observe(5)
	h.Observe(7)

	dump := r.String()
	lines := strings.Split(strings.TrimRight(dump, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("dump has %d lines, want 4:\n%s", len(lines), dump)
	}
	wantOrder := []string{"a.first", "m.counter", "m.hist", "z.last"}
	for i, name := range wantOrder {
		if !strings.HasPrefix(lines[i], name+" ") {
			t.Fatalf("line %d = %q, want prefix %q (dump must sort by name)", i, lines[i], name)
		}
	}
	if lines[0] != "a.first 41" {
		t.Errorf("lazy int read: %q, want \"a.first 41\"", lines[0])
	}
	if lines[1] != "m.counter 3" {
		t.Errorf("counter line: %q", lines[1])
	}
	if !strings.Contains(lines[2], "count=2") {
		t.Errorf("histogram line: %q, want count=2", lines[2])
	}

	if r.String() != dump {
		t.Error("two dumps of unchanged registry differ")
	}
	names := r.Names()
	for i, n := range wantOrder {
		if names[i] != n {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], n)
		}
	}
	if got, ok := r.Int("a.first"); !ok || got != 41 {
		t.Errorf("Int(a.first) = %d, %v; want 41, true", got, ok)
	}
	if _, ok := r.Int("no.such"); ok {
		t.Error("Int on an unregistered name reported ok")
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	mustPanic := func(label string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", label)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.RegisterInt("dup", func() int64 { return 0 })
	mustPanic("duplicate int", func() { r.RegisterInt("dup", func() int64 { return 0 }) })
	mustPanic("duplicate across kinds", func() { r.Histogram("dup") })
	mustPanic("empty name", func() { r.RegisterInt("", func() int64 { return 0 }) })
	mustPanic("whitespace name", func() { r.RegisterInt("a b", func() int64 { return 0 }) })
	mustPanic("nil reader", func() { r.RegisterInt("nilread", nil) })
}

func TestRegistryHistogramHandleIsLive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	if !strings.Contains(r.String(), "lat count=0") {
		t.Fatalf("empty histogram dump: %q", r.String())
	}
	h.Observe(9) // observations through the returned handle reach the dump
	if !strings.Contains(r.String(), "lat count=1") {
		t.Fatalf("observation missing from dump: %q", r.String())
	}
}
