package metrics

import (
	"testing"

	"tradenet/internal/sim"
)

// Out-of-range records must be counted, not silently discarded: Figure 2's
// windowed series are also the failover experiments' evidence, and a series
// that quietly eats late events would understate recovery tails.
func TestWindowSeriesDropped(t *testing.T) {
	start := sim.Time(10 * sim.Microsecond)
	width := sim.Duration(1 * sim.Microsecond)
	w := NewWindowSeries(start, width, 4)
	end := start.Add(4 * width)

	// Boundary instants, in order: just before start, exactly start, last
	// instant of the final window, exactly the series end, and beyond.
	w.Record(start.Add(-1)) // before start: dropped
	w.Record(start)         // first instant: window 0
	w.Record(end.Add(-1))   // last instant: window 3
	w.Record(end)           // first instant past the series: dropped
	w.RecordN(end.Add(5*width), 7)

	if got := w.Dropped(); got != 9 {
		t.Errorf("Dropped() = %d, want 9 (1 before start, 1 at end, 7 after)", got)
	}
	if got := w.Count(0); got != 1 {
		t.Errorf("Count(0) = %d, want 1 (record at exactly start)", got)
	}
	if got := w.Count(3); got != 1 {
		t.Errorf("Count(3) = %d, want 1 (record at end-1)", got)
	}
	if got := w.Total(); got != 2 {
		t.Errorf("Total() = %d, want 2 — dropped events must not leak into windows", got)
	}

	// Index agrees with the drop accounting at every boundary.
	cases := []struct {
		at   sim.Time
		want int
	}{
		{start.Add(-1), -1},
		{start, 0},
		{start.Add(width - 1), 0},
		{start.Add(width), 1},
		{end.Add(-1), 3},
		{end, -1},
	}
	for _, c := range cases {
		if got := w.Index(c.at); got != c.want {
			t.Errorf("Index(%v) = %d, want %d", c.at, got, c.want)
		}
	}
}

func TestWindowSeriesDroppedZeroInitially(t *testing.T) {
	w := NewWindowSeries(0, sim.Duration(sim.Second), 2)
	if got := w.Dropped(); got != 0 {
		t.Errorf("fresh series Dropped() = %d, want 0", got)
	}
	w.Record(sim.Time(sim.Second))
	if got := w.Dropped(); got != 0 {
		t.Errorf("in-range record bumped Dropped() to %d", got)
	}
}
