package metrics

import "testing"

func TestHistogramObserveZeroAllocs(t *testing.T) {
	h := NewHistogram()
	// Push past the exact-retention threshold so Observe is in its
	// steady-state (bucketed-only) regime with the exact backing allocated.
	for i := int64(0); i < exactThreshold+10; i++ {
		h.Observe(i)
	}
	v := int64(123456)
	allocs := testing.AllocsPerRun(2000, func() {
		h.Observe(v)
		v += 7919
	})
	if allocs != 0 {
		t.Fatalf("steady-state Observe allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestHistogramRecordQuantileZeroAllocs(t *testing.T) {
	// Bucketed regime: every op records (invalidating the CDF cache) and
	// queries, forcing a full cache rebuild per op — still zero allocations.
	h := NewHistogram()
	for i := int64(0); i < exactThreshold+10; i++ {
		h.Observe(i * 1000)
	}
	h.Quantile(0.5) // allocate the CDF cache once
	v := int64(1)
	allocs := testing.AllocsPerRun(500, func() {
		h.Observe(v)
		if h.Quantile(0.99) < 0 {
			t.Fatal("impossible")
		}
		v += 104729
	})
	if allocs != 0 {
		t.Fatalf("bucketed record+quantile allocates %.1f allocs/op, want 0", allocs)
	}

	// Exact regime: the sorted-sample cache is re-sorted per op, also
	// without allocating once its backing array has grown.
	e := NewHistogram()
	for i := int64(0); i < 1024; i++ {
		e.Observe(i * 37)
	}
	e.Quantile(0.5)
	allocs = testing.AllocsPerRun(500, func() {
		if e.Quantile(0.99) < 0 {
			t.Fatal("impossible")
		}
	})
	if allocs != 0 {
		t.Fatalf("exact quantile allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestHistogramResetNoRealloc(t *testing.T) {
	h := NewHistogram()
	for i := int64(0); i < 1000; i++ {
		h.Observe(i)
	}
	h.Quantile(0.5)
	h.Reset()
	allocs := testing.AllocsPerRun(200, func() {
		h.Reset()
		for i := int64(0); i < 64; i++ {
			h.Observe(i)
		}
		if h.Quantile(0.5) < 0 {
			t.Fatal("impossible")
		}
	})
	if allocs != 0 {
		t.Fatalf("reset+refill allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkHistogramRecordQuantile measures the paired record-then-query hot
// path in the bucketed regime (CDF rebuild amortized per batch would be
// cheaper; this is the worst case of one rebuild per record).
func BenchmarkHistogramRecordQuantile(b *testing.B) {
	h := NewHistogram()
	for i := int64(0); i < exactThreshold+10; i++ {
		h.Observe(i * 1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	v := int64(1)
	for i := 0; i < b.N; i++ {
		h.Observe(v)
		_ = h.Quantile(0.99)
		v += 104729
	}
}

// BenchmarkHistogramQuantileCached measures quantile queries against an
// unchanged histogram — the common reporting pattern (record everything,
// then ask for many percentiles).
func BenchmarkHistogramQuantileCached(b *testing.B) {
	h := NewHistogram()
	for i := int64(0); i < 100_000; i++ {
		h.Observe(i)
	}
	h.Quantile(0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}
