package metrics

import (
	"math/rand"
	"testing"

	"tradenet/internal/sim"
)

// Property tests for WindowSeries geometry and merging. The series backs
// the Figure 2 aggregations and now the telemetry plane's CSV exports, so
// its boundary arithmetic must be exact: an off-by-one at a window edge
// silently moves events between the paper's buckets.

// TestWindowBoundariesExact pins the half-open [start, end) contract at
// every edge: an event at WindowStart(i) lands in i, an event one tick
// before lands in i-1, and an event at the final WindowEnd is dropped.
func TestWindowBoundariesExact(t *testing.T) {
	start := sim.Time(3 * sim.Microsecond)
	w := NewWindowSeries(start, 100*sim.Nanosecond, 7)

	s0, e0 := w.Window(0)
	if s0 != start || e0 != start.Add(100*sim.Nanosecond) {
		t.Fatalf("Window(0) = [%v,%v)", s0, e0)
	}
	lo, hi := w.Bounds()
	if lo != start || hi != w.WindowEnd(6) {
		t.Fatalf("Bounds() = [%v,%v)", lo, hi)
	}

	for i := 0; i < w.Len(); i++ {
		if got := w.Index(w.WindowStart(i)); got != i {
			t.Errorf("Index(WindowStart(%d)) = %d", i, got)
		}
		if got := w.Index(w.WindowEnd(i) - 1); got != i {
			t.Errorf("Index(WindowEnd(%d)-1) = %d", i, got)
		}
	}
	if got := w.Index(hi); got != -1 {
		t.Errorf("Index(end) = %d, want -1 (dropped)", got)
	}
	if got := w.Index(start - 1); got != -1 {
		t.Errorf("Index(start-1) = %d, want -1", got)
	}
}

// TestWindowSeriesProperty fuzzes random event streams and checks the
// invariants that make the iterator trustworthy: every recorded event is
// either in exactly the window whose [start, end) contains it or counted
// as dropped (rollover past capacity), totals reconcile exactly, and Each
// walks the same geometry Index computes.
func TestWindowSeriesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		start := sim.Time(rng.Int63n(1000))
		width := sim.Duration(1 + rng.Int63n(500))
		n := 1 + rng.Intn(20)
		w := NewWindowSeries(start, width, n)
		_, end := w.Bounds()

		ref := make([]int64, n)
		var refDropped, recorded int64
		for e := 0; e < 300; e++ {
			// Bias events around the valid range so both in-range and
			// rollover-past-capacity paths are exercised.
			t0 := start.Add(sim.Duration(rng.Int63n(int64(end.Sub(start))*3/2)) - width)
			cnt := int64(1 + rng.Int63n(3))
			w.RecordN(t0, cnt)
			recorded += cnt
			if t0 < start || t0 >= end {
				refDropped += cnt
			} else {
				ref[int(t0.Sub(start)/width)] += cnt
			}
		}

		if w.Dropped() != refDropped {
			t.Fatalf("trial %d: dropped %d, want %d", trial, w.Dropped(), refDropped)
		}
		if w.Total()+w.Dropped() != recorded {
			t.Fatalf("trial %d: total %d + dropped %d != recorded %d", trial, w.Total(), w.Dropped(), recorded)
		}
		walked := 0
		w.Each(func(i int, s, e sim.Time, count int64) {
			if count != ref[i] {
				t.Fatalf("trial %d window %d: count %d, want %d", trial, i, count, ref[i])
			}
			if s != w.WindowStart(i) || e != w.WindowEnd(i) || e.Sub(s) != width {
				t.Fatalf("trial %d window %d: bad bounds [%v,%v)", trial, i, s, e)
			}
			walked++
		})
		if walked != n {
			t.Fatalf("trial %d: Each walked %d windows, want %d", trial, walked, n)
		}
	}
}

// TestWindowSeriesMergeProperty: recording one event stream split across k
// series and merging must equal recording the whole stream into one — per
// window and for the dropped count. Geometry mismatches must panic.
func TestWindowSeriesMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		start := sim.Time(rng.Int63n(100))
		width := sim.Duration(1 + rng.Int63n(50))
		n := 1 + rng.Intn(10)
		whole := NewWindowSeries(start, width, n)
		parts := []*WindowSeries{
			NewWindowSeries(start, width, n),
			NewWindowSeries(start, width, n),
			NewWindowSeries(start, width, n),
		}
		_, end := whole.Bounds()
		for e := 0; e < 200; e++ {
			t0 := start.Add(sim.Duration(rng.Int63n(int64(end.Sub(start))*2)) - width/2)
			whole.Record(t0)
			parts[rng.Intn(len(parts))].Record(t0)
		}
		merged := parts[0]
		merged.Merge(parts[1])
		merged.Merge(parts[2])
		if merged.Dropped() != whole.Dropped() {
			t.Fatalf("trial %d: merged dropped %d, want %d", trial, merged.Dropped(), whole.Dropped())
		}
		for i := 0; i < n; i++ {
			if merged.Count(i) != whole.Count(i) {
				t.Fatalf("trial %d window %d: merged %d, want %d", trial, i, merged.Count(i), whole.Count(i))
			}
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Merge of mismatched geometry did not panic")
		}
	}()
	a := NewWindowSeries(0, sim.Microsecond, 4)
	b := NewWindowSeries(0, sim.Microsecond, 5)
	a.Merge(b)
}
