package capture

import (
	"bytes"
	"math/rand"
	"testing"

	"tradenet/internal/netsim"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/units"
)

func TestClockOffsetAndDrift(t *testing.T) {
	// 100 ppb fast clock with 1 µs initial offset.
	c := NewClock(sim.Microsecond, 100)
	if c.Read(0) != sim.Time(sim.Microsecond) {
		t.Fatalf("read(0) = %v", c.Read(0))
	}
	// After 1 s, drift adds 100 ns.
	got := c.Error(sim.Time(sim.Second))
	want := sim.Microsecond + 100*sim.Nanosecond
	if got != want {
		t.Fatalf("error after 1s = %v, want %v", got, want)
	}
}

func TestClockSyncBoundsError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewClock(50*sim.Microsecond, 200)
	now := sim.Time(sim.Second)
	c.Sync(now, 100*sim.Nanosecond, rng)
	e := c.Error(now)
	if e > 100*sim.Nanosecond || e < -100*sim.Nanosecond {
		t.Fatalf("post-sync error = %v", e)
	}
	// Perfect sync (precision 0) zeroes the offset.
	c.Sync(now, 0, rng)
	if c.Error(now) != 0 {
		t.Fatal("perfect sync should zero error")
	}
	// Drift resumes accumulating from the sync point.
	if c.Error(now.Add(sim.Second)) != 200*sim.Nanosecond {
		t.Fatalf("drift after sync = %v", c.Error(now.Add(sim.Second)))
	}
}

func TestRecorderCapturesWithClockError(t *testing.T) {
	c := NewClock(10*sim.Nanosecond, 0)
	r := NewRecorder(c, "exchange-tap")
	r.Capture(sim.Time(100*sim.Nanosecond), 64)
	r.Capture(sim.Time(200*sim.Nanosecond), 128)
	recs := r.Records()
	if len(recs) != 2 || recs[0].Point != "exchange-tap" || recs[1].FrameLen != 128 {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].Stamped != sim.Time(110*sim.Nanosecond) {
		t.Fatalf("stamped = %v", recs[0].Stamped)
	}
	if r.MaxTimestampError() != 10*sim.Nanosecond {
		t.Fatalf("max error = %v", r.MaxTimestampError())
	}
}

func TestOrderingErrorsDetectInversions(t *testing.T) {
	// Two taps with clocks 50 ns apart observe events 10 ns apart: the
	// merged capture misorders them.
	good := NewClock(0, 0)
	bad := NewClock(-50*sim.Nanosecond, 0)
	ra := NewRecorder(good, "a")
	rb := NewRecorder(bad, "b")
	ra.Capture(sim.Time(100*sim.Nanosecond), 64)
	rb.Capture(sim.Time(110*sim.Nanosecond), 64) // stamped 60ns: inverted
	all := append(ra.Records(), rb.Records()...)
	if OrderingErrors(all) != 1 {
		t.Fatalf("ordering errors = %d", OrderingErrors(all))
	}
	// Precisely synced clocks see no inversions.
	rb2 := NewRecorder(good, "b")
	rb2.Capture(sim.Time(110*sim.Nanosecond), 64)
	all2 := append(ra.Records(), rb2.Records()...)
	if OrderingErrors(all2) != 0 {
		t.Fatal("false inversion")
	}
}

func TestOrderingErrorRateFallsWithPrecision(t *testing.T) {
	// Events 50 ns apart; compare 1 µs sync precision to 10 ns precision.
	run := func(precision sim.Duration) int {
		rng := rand.New(rand.NewSource(9))
		var recs []Record
		for i := 0; i < 500; i++ {
			c := NewClock(0, 0)
			c.Sync(0, precision, rng)
			r := NewRecorder(c, "tap")
			r.Capture(sim.Time(i)*sim.Time(50*sim.Nanosecond), 64)
			recs = append(recs, r.Records()...)
		}
		return OrderingErrors(recs)
	}
	coarse, fine := run(sim.Microsecond), run(10*sim.Nanosecond)
	if coarse <= fine {
		t.Fatalf("coarse sync (%d inversions) should misorder more than fine (%d)", coarse, fine)
	}
	if fine > 60 {
		t.Fatalf("fine sync inversions = %d, want few", fine)
	}
}

func TestLatencyProbe(t *testing.T) {
	var p LatencyProbe
	if _, ok := p.Order(sim.Time(100)); ok {
		t.Fatal("order before any input should not measure")
	}
	p.Input(sim.Time(1000 * sim.Nanosecond))
	p.Input(sim.Time(2000 * sim.Nanosecond)) // most recent input wins
	d, ok := p.Order(sim.Time(3500 * sim.Nanosecond))
	if !ok || d != 1500*sim.Nanosecond {
		t.Fatalf("latency = %v ok=%v", d, ok)
	}
	if len(p.Samples) != 1 {
		t.Fatalf("samples = %d", len(p.Samples))
	}
}

func TestPeriodicSyncBoundsDrift(t *testing.T) {
	// A PTP-style discipline loop: a 500ppb clock synced every 100ms to
	// ±50ns keeps worst-case error bounded by precision + drift-per-period
	// (50ns + 0.5ppb/ms×100ms = 100ns); without syncing, error grows
	// unboundedly.
	sched := sim.NewScheduler(11)
	c := NewClock(20*sim.Microsecond, 500)
	rng := rand.New(rand.NewSource(11))
	period := 100 * sim.Millisecond
	sched.Every(0, period, func() {
		c.Sync(sched.Now(), 50*sim.Nanosecond, rng)
	})
	var worst sim.Duration
	sched.Every(sim.Time(sim.Millisecond), sim.Millisecond, func() {
		e := c.Error(sched.Now())
		if e < 0 {
			e = -e
		}
		if e > worst {
			worst = e
		}
	})
	sched.RunUntil(sim.Time(2 * sim.Second))
	bound := 50*sim.Nanosecond + sim.Duration(float64(period)*500/1e9)
	if worst > bound {
		t.Fatalf("worst error %v exceeds bound %v", worst, bound)
	}
	// The unsynced clock would be 20µs+ off the whole time.
	free := NewClock(20*sim.Microsecond, 500)
	if e := free.Error(sim.Time(2 * sim.Second)); e < 20*sim.Microsecond {
		t.Fatalf("free-running error = %v", e)
	}
}

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf, 0)
	f1 := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	f2 := make([]byte, 100)
	at1 := sim.Time(1_500_000_000) * sim.Time(sim.Nanosecond) // 1.5s
	at2 := at1.Add(613 * sim.Nanosecond)
	if err := w.WriteFrame(at1, f1); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(at2, f2); err != nil {
		t.Fatal(err)
	}
	if w.Frames != 2 {
		t.Fatalf("frames = %d", w.Frames)
	}
	pkts, err := ReadPcap(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 2 {
		t.Fatalf("parsed %d packets", len(pkts))
	}
	if pkts[0].At != at1 || pkts[1].At != at2 {
		t.Fatalf("timestamps %v %v", pkts[0].At, pkts[1].At)
	}
	if !bytes.Equal(pkts[0].Data, f1) || len(pkts[1].Data) != 100 {
		t.Fatal("payloads corrupted")
	}
	if pkts[1].Orig != 100 {
		t.Fatalf("orig = %d", pkts[1].Orig)
	}
}

func TestPcapSnaplenTruncates(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf, 16)
	frame := make([]byte, 64)
	if err := w.WriteFrame(0, frame); err != nil {
		t.Fatal(err)
	}
	pkts, err := ReadPcap(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts[0].Data) != 16 || pkts[0].Orig != 64 {
		t.Fatalf("caplen=%d orig=%d", len(pkts[0].Data), pkts[0].Orig)
	}
}

func TestReadPcapRejectsGarbage(t *testing.T) {
	if _, err := ReadPcap([]byte{1, 2, 3}); err != ErrBadPcap {
		t.Fatalf("short: %v", err)
	}
	var buf bytes.Buffer
	w := NewPcapWriter(&buf, 0)
	w.WriteFrame(0, []byte{1, 2, 3})
	data := buf.Bytes()
	data[0] ^= 0xFF // wrong magic
	if _, err := ReadPcap(data); err != ErrBadPcap {
		t.Fatalf("magic: %v", err)
	}
	data[0] ^= 0xFF
	// Truncated record body.
	if _, err := ReadPcap(data[:len(data)-1]); err != ErrBadPcap {
		t.Fatalf("truncated: %v", err)
	}
}

// Tap-to-pcap integration: a port tap feeds the writer; the file replays
// with exact simulated timestamps and real frame bytes.
func TestPortTapToPcap(t *testing.T) {
	sched := sim.NewScheduler(5)
	h1, h2 := netsim.NewHost(sched, "a"), netsim.NewHost(sched, "b")
	n1, n2 := h1.AddNIC("x", 1), h2.AddNIC("x", 2)
	netsim.Connect(n1.Port, n2.Port, units.Rate10G, 0)
	n2.OnFrame = func(*netsim.NIC, *netsim.Frame) {}

	var buf bytes.Buffer
	w := NewPcapWriter(&buf, 0)
	n1.Port.Tap = func(f *netsim.Frame, at sim.Time) {
		if err := w.WriteFrame(at, f.Data); err != nil {
			t.Fatal(err)
		}
	}
	payload := []byte("ADD AAPL 150.25")
	sched.At(sim.Time(sim.Microsecond), func() {
		n1.SendBytes(pkt.AppendUDPFrame(nil, n1.Addr(1), n2.Addr(2), 7, payload))
	})
	sched.Run()

	pkts, err := ReadPcap(buf.Bytes())
	if err != nil || len(pkts) != 1 {
		t.Fatalf("pkts=%d err=%v", len(pkts), err)
	}
	if pkts[0].At != sim.Time(sim.Microsecond) {
		t.Fatalf("timestamp = %v", pkts[0].At)
	}
	var uf pkt.UDPFrame
	if err := pkt.ParseUDPFrame(pkts[0].Data, &uf); err != nil {
		t.Fatalf("captured frame unparsable: %v", err)
	}
	if string(uf.Payload) != string(payload) || uf.IP.ID != 7 {
		t.Fatal("captured payload corrupted")
	}
}
