package capture

import (
	"encoding/binary"
	"errors"
	"io"

	"tradenet/internal/sim"
)

// PcapWriter emits captured frames in the classic libpcap format with
// nanosecond timestamps (magic 0xa1b23c4d), so taps on the simulated
// network produce files Wireshark and tcpdump open directly — the §2
// monitoring/research workflow ("trading firms want to record their network
// traffic with precise timestamps").
//
// Simulated time is written as seconds/nanoseconds since the Unix epoch
// starting at 0; sub-nanosecond precision (the simulator keeps picoseconds)
// is truncated, matching what nanosecond pcap can express.
type PcapWriter struct {
	w       io.Writer
	snaplen uint32
	wrote   bool

	// Frames counts packets written.
	Frames uint64
}

const (
	pcapMagicNanos   = 0xa1b23c4d
	pcapVersionMaj   = 2
	pcapVersionMin   = 4
	pcapLinkEther    = 1
	pcapHeaderLen    = 24
	pcapRecHeaderLen = 16
)

// NewPcapWriter returns a writer emitting to w with the given snap length
// (0 means 65535).
func NewPcapWriter(w io.Writer, snaplen int) *PcapWriter {
	if snaplen <= 0 {
		snaplen = 65535
	}
	return &PcapWriter{w: w, snaplen: uint32(snaplen)}
}

func (p *PcapWriter) writeHeader() error {
	var h [pcapHeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:], pcapMagicNanos)
	binary.LittleEndian.PutUint16(h[4:], pcapVersionMaj)
	binary.LittleEndian.PutUint16(h[6:], pcapVersionMin)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(h[16:], p.snaplen)
	binary.LittleEndian.PutUint32(h[20:], pcapLinkEther)
	_, err := p.w.Write(h[:])
	return err
}

// WriteFrame records one frame captured at simulated time at.
func (p *PcapWriter) WriteFrame(at sim.Time, frame []byte) error {
	if !p.wrote {
		if err := p.writeHeader(); err != nil {
			return err
		}
		p.wrote = true
	}
	caplen := uint32(len(frame))
	if caplen > p.snaplen {
		caplen = p.snaplen
	}
	var h [pcapRecHeaderLen]byte
	ns := int64(at) / int64(sim.Nanosecond)
	binary.LittleEndian.PutUint32(h[0:], uint32(ns/1_000_000_000))
	binary.LittleEndian.PutUint32(h[4:], uint32(ns%1_000_000_000))
	binary.LittleEndian.PutUint32(h[8:], caplen)
	binary.LittleEndian.PutUint32(h[12:], uint32(len(frame)))
	if _, err := p.w.Write(h[:]); err != nil {
		return err
	}
	if _, err := p.w.Write(frame[:caplen]); err != nil {
		return err
	}
	p.Frames++
	return nil
}

// PcapPacket is one parsed capture record.
type PcapPacket struct {
	At   sim.Time
	Orig int // original length on the wire
	Data []byte
}

// ErrBadPcap reports an unparsable capture file.
var ErrBadPcap = errors.New("capture: malformed pcap")

// ReadPcap parses a nanosecond-pcap byte stream (as produced by PcapWriter)
// and returns its packets. It exists so tests and tools can verify captures
// without external dependencies.
func ReadPcap(data []byte) ([]PcapPacket, error) {
	if len(data) < pcapHeaderLen {
		return nil, ErrBadPcap
	}
	if binary.LittleEndian.Uint32(data) != pcapMagicNanos {
		return nil, ErrBadPcap
	}
	if binary.LittleEndian.Uint32(data[20:]) != pcapLinkEther {
		return nil, ErrBadPcap
	}
	data = data[pcapHeaderLen:]
	var out []PcapPacket
	for len(data) > 0 {
		if len(data) < pcapRecHeaderLen {
			return nil, ErrBadPcap
		}
		sec := binary.LittleEndian.Uint32(data[0:])
		nsec := binary.LittleEndian.Uint32(data[4:])
		caplen := int(binary.LittleEndian.Uint32(data[8:]))
		orig := int(binary.LittleEndian.Uint32(data[12:]))
		data = data[pcapRecHeaderLen:]
		if caplen > len(data) {
			return nil, ErrBadPcap
		}
		out = append(out, PcapPacket{
			At:   sim.Time(int64(sec)*int64(sim.Second) + int64(nsec)*int64(sim.Nanosecond)),
			Orig: orig,
			Data: append([]byte(nil), data[:caplen]...),
		})
		data = data[caplen:]
	}
	return out, nil
}
