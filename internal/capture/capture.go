// Package capture models precise network timestamping (§2): per-device
// clocks with offset and frequency drift, PTP-style synchronization, tap
// capture records, and the latency analysis trading firms run on them —
// a strategy's latency is the time its order left minus the time its most
// recent market-data input arrived.
package capture

import (
	"math/rand"
	"sort"

	"tradenet/internal/sim"
)

// Clock is a device-local oscillator: it reads true simulation time plus a
// fixed offset plus accumulated frequency drift since the last sync.
type Clock struct {
	offset   sim.Duration
	driftPPB float64 // parts per billion frequency error
	lastSync sim.Time
}

// NewClock returns a clock with the given initial offset and drift rate.
func NewClock(offset sim.Duration, driftPPB float64) *Clock {
	return &Clock{offset: offset, driftPPB: driftPPB}
}

// Read returns the clock's value at true time now.
func (c *Clock) Read(now sim.Time) sim.Time {
	elapsed := float64(now.Sub(c.lastSync))
	drift := sim.Duration(elapsed * c.driftPPB / 1e9)
	return now.Add(c.offset + drift)
}

// Error returns the clock's deviation from true time at now.
func (c *Clock) Error(now sim.Time) sim.Duration { return c.Read(now).Sub(now) }

// Sync disciplines the clock at true time now: the residual offset after a
// sync round is drawn uniformly within ±precision (the sync protocol's
// accuracy), and drift accumulation restarts. Firms pushing for <100 ps
// precision (§2) are pushing precision toward zero here.
func (c *Clock) Sync(now sim.Time, precision sim.Duration, rng *rand.Rand) {
	residual := sim.Duration(0)
	if precision > 0 {
		residual = sim.Duration(rng.Int63n(int64(2*precision)+1)) - precision
	}
	c.offset = residual
	c.lastSync = now
}

// Record is one captured frame observation.
type Record struct {
	// Stamped is the capture device's clock reading.
	Stamped sim.Time
	// True is the exact simulation time (unknowable in production; kept for
	// evaluating timestamp error).
	True sim.Time
	// FrameLen is the captured frame's length.
	FrameLen int
	// Point identifies the tap location.
	Point string
}

// Recorder accumulates capture records from one or more taps, each
// timestamped by a local clock.
type Recorder struct {
	Clock *Clock
	Point string
	recs  []Record
}

// NewRecorder returns a recorder stamping with clock at the named point.
func NewRecorder(clock *Clock, point string) *Recorder {
	return &Recorder{Clock: clock, Point: point}
}

// Capture records a frame of length n observed at true time now.
func (r *Recorder) Capture(now sim.Time, n int) {
	r.recs = append(r.recs, Record{
		Stamped:  r.Clock.Read(now),
		True:     now,
		FrameLen: n,
		Point:    r.Point,
	})
}

// Records returns the captured records in capture order.
func (r *Recorder) Records() []Record { return r.recs }

// MaxTimestampError returns the largest |stamped − true| across records.
func (r *Recorder) MaxTimestampError() sim.Duration {
	var max sim.Duration
	for _, rec := range r.recs {
		e := rec.Stamped.Sub(rec.True)
		if e < 0 {
			e = -e
		}
		if e > max {
			max = e
		}
	}
	return max
}

// OrderingErrors counts adjacent record pairs whose stamped order disagrees
// with their true order — the failure mode that makes imprecise timestamps
// useless for the §2 research use case ("understanding the ordering of
// market data events"). Records are compared in true-time order.
func OrderingErrors(recs []Record) int {
	sorted := append([]Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].True < sorted[j].True })
	n := 0
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Stamped < sorted[i-1].Stamped {
			n++
		}
	}
	return n
}

// LatencyProbe computes per-strategy decision latency from timestamps: the
// stamped time an order left minus the stamped time of the most recent
// market-data input (§2's definition).
type LatencyProbe struct {
	lastInput sim.Time
	haveInput bool
	Samples   []sim.Duration
}

// Input records a market-data arrival at stamped time t.
func (p *LatencyProbe) Input(t sim.Time) {
	p.lastInput = t
	p.haveInput = true
}

// Order records an order transmission at stamped time t and returns the
// measured decision latency (false if no input has been seen).
func (p *LatencyProbe) Order(t sim.Time) (sim.Duration, bool) {
	if !p.haveInput {
		return 0, false
	}
	d := t.Sub(p.lastInput)
	p.Samples = append(p.Samples, d)
	return d, true
}
