package netsim

import "tradenet/internal/sim"

// CoreSet models a server's CPU cores as busy-until horizons — the resource
// behind the paper's Fig. 1(d): production trading servers dedicate
// "separate server cores ... for the operating system and for strategies
// and other functions", because a latency-critical event that lands behind
// a housekeeping chunk on a shared core inherits its entire remaining
// runtime.
type CoreSet struct {
	sched *sim.Scheduler
	busy  []sim.Time
	// work accumulates total busy time per core for utilization reporting.
	work []sim.Duration
}

// NewCoreSet returns n idle cores.
func NewCoreSet(sched *sim.Scheduler, n int) *CoreSet {
	if n <= 0 {
		panic("netsim: core set needs at least one core")
	}
	return &CoreSet{sched: sched, busy: make([]sim.Time, n), work: make([]sim.Duration, n)}
}

// Cores returns the core count.
func (c *CoreSet) Cores() int { return len(c.busy) }

// Submit queues work of the given CPU cost on the least-loaded core and
// invokes fn when it completes. It returns the core chosen and the
// completion time.
func (c *CoreSet) Submit(cost sim.Duration, fn func()) (core int, done sim.Time) {
	core = 0
	for i := 1; i < len(c.busy); i++ {
		if c.busy[i] < c.busy[core] {
			core = i
		}
	}
	return core, c.SubmitTo(core, cost, fn)
}

// SubmitTo queues work on a specific core (pinning) and returns the
// completion time.
func (c *CoreSet) SubmitTo(core int, cost sim.Duration, fn func()) sim.Time {
	now := c.sched.Now()
	start := c.busy[core]
	if start < now {
		start = now
	}
	done := start.Add(cost)
	c.busy[core] = done
	c.work[core] += cost
	if fn != nil {
		c.sched.At(done, fn)
	}
	return done
}

// QueueDelay returns how long newly submitted work would wait before
// starting on the given core.
func (c *CoreSet) QueueDelay(core int) sim.Duration {
	now := c.sched.Now()
	if c.busy[core] <= now {
		return 0
	}
	return c.busy[core].Sub(now)
}

// Utilization returns core i's busy fraction over [0, horizon].
func (c *CoreSet) Utilization(core int, horizon sim.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(c.work[core]) / float64(horizon)
}
