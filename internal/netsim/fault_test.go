package netsim

import (
	"testing"

	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/units"
)

// Link-failure semantics tests: these pin the contract the fault-injection
// subsystem builds on. A frame in flight when the link drops is lost and its
// pooled buffer reclaimed (no leak); Send while down is counted in
// Blackholed and delivers nothing; queued frames survive the outage and the
// drain resumes cleanly on recovery.

// payload builds a minimal valid frame body.
func payload(n int) []byte { return make([]byte, n) }

func TestLinkDownLosesInFlightFrameAndReclaimsBuffer(t *testing.T) {
	sched := sim.NewScheduler(1)
	a, rx := twoPorts(sched, units.Rate10G, 10*sim.Microsecond)

	f := NewFrame()
	f.Data = append(f.Data, payload(200)...)
	a.Send(f)

	// Let serialization complete so the frame is committed to the wire,
	// then cut the link mid-propagation.
	sched.At(sim.Time(5*sim.Microsecond), func() {
		if a.InFlight() != 1 {
			t.Fatalf("expected 1 frame in flight, got %d", a.InFlight())
		}
		a.SetUp(false)
		a.Peer().SetUp(false)
		if a.InFlight() != 0 {
			t.Fatalf("in-flight ring not cleared on link down: %d", a.InFlight())
		}
	})
	sched.Run()

	if len(rx.frames) != 0 {
		t.Fatalf("frame delivered across a dead link")
	}
	if a.Lost != 1 {
		t.Fatalf("Lost = %d, want 1 (the in-flight frame)", a.Lost)
	}
	if !f.released {
		t.Fatal("in-flight frame not released back to the pool on link failure")
	}
}

func TestSendWhileDownIncrementsBlackholed(t *testing.T) {
	sched := sim.NewScheduler(1)
	a, rx := twoPorts(sched, units.Rate10G, sim.Microsecond)
	a.SetUp(false)

	for i := 0; i < 3; i++ {
		f := NewFrame()
		f.Data = append(f.Data, payload(100)...)
		if a.Send(f) {
			t.Fatal("Send on a down link reported success")
		}
		if !f.released {
			t.Fatal("blackholed frame not released back to the pool")
		}
	}
	sched.Run()

	if a.Blackholed != 3 {
		t.Fatalf("Blackholed = %d, want 3", a.Blackholed)
	}
	if a.TxFrames != 0 || len(rx.frames) != 0 {
		t.Fatalf("blackholed frames reached the wire: tx=%d rx=%d", a.TxFrames, len(rx.frames))
	}
}

func TestDrainPausesWhileDownAndResumesOnLinkUp(t *testing.T) {
	sched := sim.NewScheduler(1)
	a, rx := twoPorts(sched, units.Rate10G, sim.Microsecond)

	// Queue several frames, then fail the link before any serialize.
	a.SetUp(false)
	a.SetUp(true) // no-op round trip must not disturb a healthy port
	for i := 0; i < 4; i++ {
		f := NewFrame()
		f.Data = append(f.Data, payload(300)...)
		f.ID = uint64(i)
		// Bypass the down check deliberately: enqueue while up, then drop
		// the link at t=0 before the drain event fires.
		a.Send(f)
	}
	a.SetUp(false)
	a.Peer().SetUp(false)
	if got := a.QueuedBytes(); got != 4*300 {
		t.Fatalf("queued bytes = %d, want %d (queue must survive the outage)", got, 4*300)
	}

	up := sim.Time(50 * sim.Microsecond)
	sched.At(up, func() {
		a.SetUp(true)
		a.Peer().SetUp(true)
	})
	sched.Run()

	if len(rx.frames) != 4 {
		t.Fatalf("delivered %d frames after recovery, want 4", len(rx.frames))
	}
	for i, f := range rx.frames {
		if f.ID != uint64(i) {
			t.Fatalf("frame %d delivered out of order (ID %d)", i, f.ID)
		}
	}
	for _, at := range rx.at {
		if at < up {
			t.Fatalf("frame delivered at %v, before the link came back at %v", at, up)
		}
	}
	if a.Blackholed != 0 || a.Lost != 0 {
		t.Fatalf("queued frames wrongly counted: blackholed=%d lost=%d", a.Blackholed, a.Lost)
	}
}

func TestPurgeQueueReclaimsQueuedFrames(t *testing.T) {
	sched := sim.NewScheduler(1)
	a, rx := twoPorts(sched, units.Rate10G, sim.Microsecond)

	var frames []*Frame
	for i := 0; i < 3; i++ {
		f := NewFrame()
		f.Data = append(f.Data, payload(100)...)
		a.Send(f)
		frames = append(frames, f)
	}
	// The scheduler has not run, so nothing is on the wire yet: all three
	// frames are queued. A device failure purges them.
	a.SetUp(false)
	if purged := a.PurgeQueue(); purged != 3 || a.QueuedBytes() != 0 {
		t.Fatalf("purged %d frames, %d bytes left; want 3 and 0", purged, a.QueuedBytes())
	}
	if a.Purged != 3 {
		t.Fatalf("Purged = %d, want 3", a.Purged)
	}
	sched.Run()
	if len(rx.frames) != 0 {
		t.Fatal("purged frames delivered")
	}
	for i, f := range frames {
		if !f.released {
			t.Fatalf("frame %d leaked (not released by purge or link-down)", i)
		}
	}
}

// TestLinkDownWithUDPTraffic exercises the failure path with real frame
// construction end to end, so header building and the pool interact the way
// production senders do.
func TestLinkDownWithUDPTraffic(t *testing.T) {
	sched := sim.NewScheduler(1)
	a, rx := twoPorts(sched, units.Rate10G, 2*sim.Microsecond)
	src := pkt.UDPAddr{MAC: pkt.HostMAC(1), IP: pkt.HostIP(1), Port: 9}
	dst := pkt.UDPAddr{MAC: pkt.HostMAC(2), IP: pkt.HostIP(2), Port: 9}

	send := func() {
		f := NewFrame()
		f.Data = pkt.AppendUDPFrame(f.Data, src, dst, 1, payload(64))
		f.Origin = sched.Now()
		a.Send(f)
	}
	send()
	down := sim.Time(10 * sim.Microsecond)
	sched.At(down, func() { a.SetUp(false); a.Peer().SetUp(false) })
	sched.At(down.Add(sim.Microsecond), func() { send() })
	sched.At(down.Add(20*sim.Microsecond), func() { a.SetUp(true); a.Peer().SetUp(true) })
	sched.At(down.Add(30*sim.Microsecond), func() { send() })
	sched.Run()

	if len(rx.frames) != 2 {
		t.Fatalf("delivered %d, want 2 (pre-fail and post-recovery)", len(rx.frames))
	}
	if a.Blackholed != 1 {
		t.Fatalf("Blackholed = %d, want 1", a.Blackholed)
	}
}
