package netsim

import (
	"sync"

	"tradenet/internal/trace"
)

// frameBufCap is the byte capacity of pooled frame buffers: comfortably
// above the largest legal frame (pkt.MaxFrameNoFCS), so building any frame
// into a pooled buffer never re-allocates.
const frameBufCap = 2048

// framePool recycles Frame objects together with their byte buffers, making
// the per-frame hot path allocation-free. It is a sync.Pool (not a free
// list) because core.RunParallel runs independent simulations on separate
// goroutines that share this package.
var framePool = sync.Pool{
	New: func() any {
		return &Frame{Data: make([]byte, 0, frameBufCap), pooled: true}
	},
}

// NewFrame returns an empty pooled frame. Build the wire bytes by appending
// to Data (capacity frameBufCap is pre-reserved). Pass ownership along with
// the frame: whoever terminates it calls Release.
//
//simlint:allow sharedstate: framePool is a sync.Pool — concurrency-safe by contract, and a recycled buffer carries no observable state between runs
func NewFrame() *Frame {
	f := framePool.Get().(*Frame)
	f.Data = f.Data[:0]
	f.Origin = 0
	f.ID = 0
	// f.Trace is already nil: fresh frames start nil and Release clears it
	// before pooling. Not storing here keeps this path free of GC write
	// barriers (a nil pointer store still pays one).
	f.released = false
	return f
}

// NewFrameBytes returns a pooled frame whose Data is a copy of data.
func NewFrameBytes(data []byte) *Frame {
	f := NewFrame()
	f.Data = append(f.Data, data...)
	return f
}

// Release returns the frame to the pool. It is a no-op for frames not
// obtained from the pool (hand-built test frames) and for double releases,
// so terminal points can release unconditionally.
//
// Release only at provably-terminal points: address-filter discards, queue
// tail-drops, in-flight losses, and consumers that are done with the bytes.
// Frames handed to an application callback may be retained by it (e.g. a
// normalizer defers processing); infrastructure must not release those.
func (f *Frame) Release() {
	if f == nil {
		return
	}
	if t := f.Trace; t != nil {
		// Catch-all terminal: a consumer done with the bytes (and anything
		// that forgot an explicit terminal) closes the trace as consumed at
		// its last recorded instant. Paths with a more specific terminal
		// (drop, blackhole, loss, purge) finish the trace before releasing.
		t.Finish(trace.EndConsumed)
		f.Trace = nil
	}
	if !f.pooled || f.released {
		return
	}
	f.released = true
	//simlint:allow sharedstate: returning to the sync.Pool is concurrency-safe by contract; the frame is dead and carries no state into its next run
	framePool.Put(f)
}
