package netsim

import (
	"bytes"
	"testing"

	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/units"
)

// sink is a Handler recording arrivals.
type sink struct {
	frames []*Frame
	at     []sim.Time
	sched  *sim.Scheduler
}

func (s *sink) HandleFrame(_ *Port, f *Frame) {
	s.frames = append(s.frames, f)
	s.at = append(s.at, s.sched.Now())
}

func twoPorts(sched *sim.Scheduler, rate units.Bandwidth, prop sim.Duration) (*Port, *sink) {
	rx := &sink{sched: sched}
	a := NewPort(sched, nil, "a")
	b := NewPort(sched, rx, "b")
	Connect(a, b, rate, prop)
	return a, rx
}

func TestLinkLatencyIsSerializationPlusPropagation(t *testing.T) {
	sched := sim.NewScheduler(1)
	prop := 500 * sim.Nanosecond
	a, rx := twoPorts(sched, units.Rate10G, prop)

	data := make([]byte, 1000)
	sched.At(0, func() { a.Send(&Frame{Data: data, Origin: 0}) })
	sched.Run()

	if len(rx.frames) != 1 {
		t.Fatalf("arrived %d frames", len(rx.frames))
	}
	// Wire bytes: 1000 + 4 FCS + 20 preamble/IFG = 1024 → 819.2 ns at 10G.
	wantSer := units.SerializationDelay(1024, units.Rate10G)
	want := sim.Time(wantSer + prop)
	if rx.at[0] != want {
		t.Fatalf("arrival = %v, want %v", rx.at[0], want)
	}
	if a.TxFrames != 1 || a.TxBytes != 1000 {
		t.Fatalf("tx stats: %d frames %d bytes", a.TxFrames, a.TxBytes)
	}
}

func TestSmallFramePaddedToMinimum(t *testing.T) {
	sched := sim.NewScheduler(1)
	a, rx := twoPorts(sched, units.Rate10G, 0)
	sched.At(0, func() { a.Send(&Frame{Data: make([]byte, 10)}) })
	sched.Run()
	// 10 bytes pads to 60, +4 FCS +20 overhead = 84 bytes → 67.2 ns.
	want := sim.Time(units.SerializationDelay(84, units.Rate10G))
	if rx.at[0] != want {
		t.Fatalf("arrival = %v, want %v", rx.at[0], want)
	}
}

func TestQueueingDelayAccumulates(t *testing.T) {
	sched := sim.NewScheduler(1)
	a, rx := twoPorts(sched, units.Rate10G, 0)
	// Three 1000-byte frames sent at t=0: they serialize back to back.
	sched.At(0, func() {
		for i := 0; i < 3; i++ {
			a.Send(&Frame{Data: make([]byte, 1000), ID: uint64(i)})
		}
	})
	sched.Run()
	per := sim.Time(units.SerializationDelay(1024, units.Rate10G))
	for i, at := range rx.at {
		if want := per * sim.Time(i+1); at != want {
			t.Fatalf("frame %d at %v, want %v", i, at, want)
		}
	}
	if a.QueueDelay <= 0 {
		t.Fatal("queueing delay not recorded")
	}
	if a.QueueHighWaterBytes != 3000 {
		t.Fatalf("high water = %d", a.QueueHighWaterBytes)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	sched := sim.NewScheduler(1)
	a, rx := twoPorts(sched, units.Rate10G, 0)
	a.SetQueueCapacity(2500) // fits two 1000-byte frames only
	sent := 0
	sched.At(0, func() {
		for i := 0; i < 5; i++ {
			if a.Send(&Frame{Data: make([]byte, 1000)}) {
				sent++
			}
		}
	})
	sched.Run()
	if sent != 2 || a.Drops != 3 {
		t.Fatalf("sent=%d drops=%d", sent, a.Drops)
	}
	if len(rx.frames) != 2 {
		t.Fatalf("arrived = %d", len(rx.frames))
	}
}

func TestTapObservesEgress(t *testing.T) {
	sched := sim.NewScheduler(1)
	a, _ := twoPorts(sched, units.Rate10G, 0)
	var tapped []sim.Time
	a.Tap = func(f *Frame, at sim.Time) { tapped = append(tapped, at) }
	sched.At(0, func() {
		a.Send(&Frame{Data: make([]byte, 100)})
		a.Send(&Frame{Data: make([]byte, 100)})
	})
	sched.Run()
	if len(tapped) != 2 {
		t.Fatalf("tapped %d", len(tapped))
	}
	if tapped[0] != 0 || tapped[1] <= tapped[0] {
		t.Fatalf("tap times = %v", tapped)
	}
}

func TestConnectPanicsOnDoubleConnect(t *testing.T) {
	sched := sim.NewScheduler(1)
	a := NewPort(sched, nil, "a")
	b := NewPort(sched, nil, "b")
	c := NewPort(sched, nil, "c")
	Connect(a, b, units.Rate10G, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double connect should panic")
		}
	}()
	Connect(a, c, units.Rate10G, 0)
}

func TestSendOnUnconnectedPortPanics(t *testing.T) {
	sched := sim.NewScheduler(1)
	p := NewPort(sched, nil, "lonely")
	defer func() {
		if recover() == nil {
			t.Fatal("send on unconnected port should panic")
		}
	}()
	p.Send(&Frame{Data: []byte{1}})
}

func TestFrameClone(t *testing.T) {
	f := &Frame{Data: []byte{1, 2, 3}, Origin: 5, ID: 9}
	c := f.Clone()
	c.Data[0] = 99
	if f.Data[0] != 1 || c.Origin != 5 || c.ID != 9 {
		t.Fatal("clone not deep")
	}
}

func TestHostNICFiltering(t *testing.T) {
	sched := sim.NewScheduler(1)
	h := NewHost(sched, "srv1")
	nic := h.AddNIC("md", 1)
	var got [][]byte
	nic.OnFrame = func(_ *NIC, f *Frame) { got = append(got, f.Data) }

	tx := NewPort(sched, nil, "tx")
	Connect(tx, nic.Port, units.Rate10G, 0)

	grp := pkt.MulticastGroup(1, 7)
	other := pkt.MulticastGroup(1, 8)
	src := pkt.UDPAddr{MAC: pkt.HostMAC(99), IP: pkt.HostIP(99), Port: 1}
	mk := func(dstMAC pkt.MAC, dstIP pkt.IP4) *Frame {
		return &Frame{Data: pkt.AppendUDPFrame(nil,
			src, pkt.UDPAddr{MAC: dstMAC, IP: dstIP, Port: 2}, 0, []byte("x"))}
	}

	nic.Join(grp)
	sched.At(0, func() {
		tx.Send(mk(nic.MAC, nic.IP))                 // unicast to us: accept
		tx.Send(mk(pkt.HostMAC(55), pkt.HostIP(55))) // unicast to other: filter
		tx.Send(mk(pkt.MulticastMAC(grp), grp))      // joined group: accept
		tx.Send(mk(pkt.MulticastMAC(other), other))  // unjoined group: filter
	})
	sched.Run()
	if len(got) != 2 {
		t.Fatalf("accepted %d frames, want 2", len(got))
	}
	if nic.Filtered != 2 {
		t.Fatalf("filtered = %d, want 2", nic.Filtered)
	}
	if nic.Subscriptions() != 1 {
		t.Fatalf("subs = %d", nic.Subscriptions())
	}
	nic.Leave(grp)
	if nic.Subscriptions() != 0 {
		t.Fatal("leave failed")
	}
}

func TestHostPromiscuousNIC(t *testing.T) {
	sched := sim.NewScheduler(1)
	h := NewHost(sched, "cap")
	nic := h.AddNIC("tap", 2)
	nic.Promiscuous = true
	n := 0
	nic.OnFrame = func(*NIC, *Frame) { n++ }
	tx := NewPort(sched, nil, "tx")
	Connect(tx, nic.Port, units.Rate10G, 0)
	src := pkt.UDPAddr{MAC: pkt.HostMAC(9), IP: pkt.HostIP(9), Port: 1}
	dst := pkt.UDPAddr{MAC: pkt.HostMAC(55), IP: pkt.HostIP(55), Port: 2}
	sched.At(0, func() {
		tx.Send(&Frame{Data: pkt.AppendUDPFrame(nil, src, dst, 0, []byte("y"))})
	})
	sched.Run()
	if n != 1 {
		t.Fatal("promiscuous NIC filtered a frame")
	}
}

func TestHostRxLatencyApplied(t *testing.T) {
	sched := sim.NewScheduler(1)
	h := NewHost(sched, "srv")
	h.RxLatency = sim.Microsecond
	nic := h.AddNIC("md", 3)
	var deliveredAt sim.Time
	nic.OnFrame = func(*NIC, *Frame) { deliveredAt = sched.Now() }
	tx := NewPort(sched, nil, "tx")
	Connect(tx, nic.Port, units.Rate10G, 0)
	src := pkt.UDPAddr{MAC: pkt.HostMAC(9), IP: pkt.HostIP(9), Port: 1}
	sched.At(0, func() {
		tx.Send(&Frame{Data: pkt.AppendUDPFrame(nil, src, nic.Addr(5), 0, []byte("z"))})
	})
	sched.Run()
	arrival := sim.Time(units.SerializationDelay(84, units.Rate10G))
	if deliveredAt != arrival.Add(sim.Microsecond) {
		t.Fatalf("delivered at %v, want %v", deliveredAt, arrival.Add(sim.Microsecond))
	}
}

// hostPair builds two hosts connected directly with streams registered both
// ways.
func hostPair(t *testing.T, sched *sim.Scheduler, lossyCap int) (*Stream, *Stream, *Port, *Port) {
	t.Helper()
	h1, h2 := NewHost(sched, "client"), NewHost(sched, "server")
	n1, n2 := h1.AddNIC("orders", 10), h2.AddNIC("orders", 20)
	Connect(n1.Port, n2.Port, units.Rate10G, 500*sim.Nanosecond)
	if lossyCap > 0 {
		n1.Port.SetQueueCapacity(lossyCap)
	}
	m1, m2 := NewStreamMux(n1), NewStreamMux(n2)
	s1 := NewStream(n1, 40000, n2.Addr(443))
	s2 := NewStream(n2, 443, n1.Addr(40000))
	m1.Register(s1)
	m2.Register(s2)
	return s1, s2, n1.Port, n2.Port
}

func TestStreamDeliversInOrder(t *testing.T) {
	sched := sim.NewScheduler(1)
	s1, s2, _, _ := hostPair(t, sched, 0)
	var got bytes.Buffer
	s2.OnData = func(b []byte) { got.Write(b) }
	sched.At(0, func() {
		s1.Write([]byte("hello "))
		s1.Write([]byte("trading "))
		s1.Write([]byte("world"))
	})
	sched.Run()
	if got.String() != "hello trading world" {
		t.Fatalf("got %q", got.String())
	}
	if s1.InFlight() != 0 {
		t.Fatalf("in flight = %d after acks", s1.InFlight())
	}
	if s1.Retransmits != 0 {
		t.Fatalf("retransmits = %d on clean link", s1.Retransmits)
	}
}

func TestStreamSegmentsLargeWrites(t *testing.T) {
	sched := sim.NewScheduler(1)
	s1, s2, _, _ := hostPair(t, sched, 0)
	big := make([]byte, 4*MSS+100)
	for i := range big {
		big[i] = byte(i)
	}
	var got bytes.Buffer
	s2.OnData = func(b []byte) { got.Write(b) }
	sched.At(0, func() { s1.Write(big) })
	sched.Run()
	if !bytes.Equal(got.Bytes(), big) {
		t.Fatalf("reassembly failed: %d vs %d bytes", got.Len(), len(big))
	}
	if s1.SentSegments != 5 {
		t.Fatalf("segments = %d, want 5", s1.SentSegments)
	}
}

func TestStreamRetransmitsThroughLoss(t *testing.T) {
	sched := sim.NewScheduler(1)
	// Tiny egress queue on the client: a burst overflows it and drops
	// segments, forcing RTO recovery.
	s1, s2, txPort, _ := hostPair(t, sched, 3000)
	var got bytes.Buffer
	s2.OnData = func(b []byte) { got.Write(b) }
	payload := make([]byte, 10*MSS)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	sched.At(0, func() { s1.Write(payload) })
	sched.Run()
	if txPort.Drops == 0 {
		t.Fatal("expected drops to exercise retransmission")
	}
	if s1.Retransmits == 0 {
		t.Fatal("expected retransmissions")
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("delivery incomplete/corrupt: %d vs %d bytes", got.Len(), len(payload))
	}
}

func TestStreamBidirectional(t *testing.T) {
	sched := sim.NewScheduler(1)
	s1, s2, _, _ := hostPair(t, sched, 0)
	var a2b, b2a bytes.Buffer
	s2.OnData = func(b []byte) { a2b.Write(b) }
	s1.OnData = func(b []byte) { b2a.Write(b) }
	sched.At(0, func() {
		s1.Write([]byte("new-order"))
		s2.Write([]byte("ack"))
	})
	sched.Run()
	if a2b.String() != "new-order" || b2a.String() != "ack" {
		t.Fatalf("a2b=%q b2a=%q", a2b.String(), b2a.String())
	}
}

func TestStreamMuxFallback(t *testing.T) {
	sched := sim.NewScheduler(1)
	h1, h2 := NewHost(sched, "a"), NewHost(sched, "b")
	n1, n2 := h1.AddNIC("x", 30), h2.AddNIC("x", 31)
	Connect(n1.Port, n2.Port, units.Rate10G, 0)
	mux := NewStreamMux(n2)
	var fallback int
	mux.Fallback = func(*NIC, *Frame) { fallback++ }
	src := n1.Addr(5)
	sched.At(0, func() {
		// UDP frame: not TCP, must hit fallback.
		n1.SendBytes(pkt.AppendUDPFrame(nil, src, n2.Addr(6), 0, []byte("md")))
		// TCP frame with no registered stream: fallback too.
		n1.SendBytes(pkt.AppendTCPFrame(nil, src, n2.Addr(7), &pkt.TCP{Flags: pkt.FlagACK}, []byte("??")))
	})
	sched.Run()
	if fallback != 2 {
		t.Fatalf("fallback = %d", fallback)
	}
}

func TestSoftwareHopBelowMicrosecond(t *testing.T) {
	// §3: "latency for a hop through a software host ... is now below
	// 1 microsecond" for an empty ping-pong. Verify the host model's
	// default encodes that when configured accordingly.
	sched := sim.NewScheduler(1)
	h := NewHost(sched, "pingpong")
	h.RxLatency = 850 * sim.Nanosecond
	if h.RxLatency >= sim.Microsecond {
		t.Fatal("software hop should be configurable below 1µs")
	}
}

func BenchmarkPortThroughput(b *testing.B) {
	sched := sim.NewScheduler(1)
	rx := &sink{sched: sched}
	p := NewPort(sched, nil, "a")
	q := NewPort(sched, rx, "b")
	Connect(p, q, units.Rate100G, 0)
	p.SetQueueCapacity(1 << 30)
	data := make([]byte, 200)
	b.ReportAllocs()
	b.ResetTimer()
	sched.At(0, func() {
		for i := 0; i < b.N; i++ {
			p.Send(&Frame{Data: data})
		}
	})
	sched.Run()
}

func TestStreamDuplicateDataReAcked(t *testing.T) {
	// Deliver the same segment twice (as a retransmission would): the
	// receiver delivers once and re-acks, the sender's state is unharmed.
	sched := sim.NewScheduler(1)
	s1, s2, _, _ := hostPair(t, sched, 0)
	var got bytes.Buffer
	s2.OnData = func(b []byte) { got.Write(b) }
	sched.At(0, func() { s1.Write([]byte("order")) })
	sched.Run()
	// Force a spurious retransmission by replaying the RTO path.
	sched.After(0, func() { s1.Write([]byte("!")) })
	sched.Run()
	if got.String() != "order!" {
		t.Fatalf("got %q", got.String())
	}
	if s1.InFlight() != 0 {
		t.Fatalf("in flight = %d", s1.InFlight())
	}
}

func TestStreamAccessors(t *testing.T) {
	sched := sim.NewScheduler(1)
	s1, s2, _, _ := hostPair(t, sched, 0)
	if s1.Local().Port != 40000 || s1.Remote().Port != 443 {
		t.Fatalf("addrs: %+v %+v", s1.Local(), s1.Remote())
	}
	if s2.Local().Port != 443 {
		t.Fatalf("server local: %+v", s2.Local())
	}
}

func TestPortRateAndPeerAccessors(t *testing.T) {
	sched := sim.NewScheduler(1)
	a := NewPort(sched, nil, "a")
	b := NewPort(sched, nil, "b")
	if a.Connected() {
		t.Fatal("unconnected port reports connected")
	}
	Connect(a, b, units.Rate25G, sim.Microsecond)
	if !a.Connected() || a.Peer() != b || a.Rate() != units.Rate25G {
		t.Fatal("accessors wrong")
	}
}

func TestCoreSetSubmitAndPinning(t *testing.T) {
	sched := sim.NewScheduler(1)
	cores := NewCoreSet(sched, 2)
	if cores.Cores() != 2 {
		t.Fatalf("cores = %d", cores.Cores())
	}
	var doneAt []sim.Time
	sched.At(0, func() {
		// Two 10µs jobs: least-loaded dispatch uses both cores.
		c1, d1 := cores.Submit(10*sim.Microsecond, func() { doneAt = append(doneAt, sched.Now()) })
		c2, d2 := cores.Submit(10*sim.Microsecond, func() { doneAt = append(doneAt, sched.Now()) })
		if c1 == c2 {
			t.Errorf("both jobs on core %d", c1)
		}
		if d1 != d2 {
			t.Errorf("parallel completions differ: %v vs %v", d1, d2)
		}
		// A third job queues behind one of them.
		_, d3 := cores.Submit(5*sim.Microsecond, func() { doneAt = append(doneAt, sched.Now()) })
		if d3 != sim.Time(15*sim.Microsecond) {
			t.Errorf("queued completion = %v", d3)
		}
	})
	sched.Run()
	if len(doneAt) != 3 {
		t.Fatalf("completions = %d", len(doneAt))
	}
	// Utilization: core work = 10+5 and 10 over a 15µs horizon.
	u0 := cores.Utilization(0, 15*sim.Microsecond)
	u1 := cores.Utilization(1, 15*sim.Microsecond)
	if u0+u1 < 1.6 || u0+u1 > 1.7 {
		t.Fatalf("utilizations = %v + %v", u0, u1)
	}
}

func TestCoreSetQueueDelay(t *testing.T) {
	sched := sim.NewScheduler(1)
	cores := NewCoreSet(sched, 1)
	sched.At(0, func() {
		if cores.QueueDelay(0) != 0 {
			t.Error("idle core should have zero delay")
		}
		cores.SubmitTo(0, 7*sim.Microsecond, nil)
		if cores.QueueDelay(0) != 7*sim.Microsecond {
			t.Errorf("queue delay = %v", cores.QueueDelay(0))
		}
	})
	sched.Run()
	if cores.Utilization(0, 0) != 0 {
		t.Fatal("zero horizon utilization should be 0")
	}
}

func TestCoreSetValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero cores should panic")
		}
	}()
	NewCoreSet(sim.NewScheduler(1), 0)
}
