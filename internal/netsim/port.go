// Package netsim models the physical network: ports, links, output queues,
// NICs, hosts, and taps. A frame is a real byte slice (built by pkt);
// transit charges serialization delay (frame bytes at line rate, plus
// preamble and inter-frame gap), propagation delay (set by the link's
// length and medium), and queueing delay (FIFO output queues with a finite
// byte capacity; overflow drops the frame, as switches do).
package netsim

import (
	"strconv"

	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/trace"
	"tradenet/internal/units"
)

// FrameOverheadBytes is the per-frame wire overhead beyond the frame bytes:
// 8 bytes of preamble/SFD plus a 12-byte minimum inter-frame gap.
const FrameOverheadBytes = 20

// Frame is a frame in flight. Data is the on-wire bytes excluding FCS;
// Origin is the instant the originating application handed it to its NIC,
// carried along so receivers can measure one-way latency the way the
// paper's timestamping discussion describes (order-out minus md-in).
type Frame struct {
	Data   []byte
	Origin sim.Time
	ID     uint64

	// Trace is the flight-recorder context riding on this frame, or nil for
	// untraced frames (the common case — every hook below is then a single
	// nil compare). Ownership follows the frame: whoever terminates the frame
	// finishes or hands off the trace; Release closes leftovers.
	Trace *trace.Ctx

	pooled   bool // came from framePool; Release returns it
	released bool // double-release guard
}

// Clone returns a deep copy of the frame from the pool. Replication points
// (multicast fan-out) clone so downstream queues own their bytes. A traced
// frame's clone carries a fork of the trace (nil once the recorder is at
// capacity — replication is where trace counts could otherwise explode).
func (f *Frame) Clone() *Frame {
	c := NewFrame()
	c.Data = append(c.Data, f.Data...)
	c.Origin = f.Origin
	c.ID = f.ID
	if f.Trace != nil {
		c.Trace = trace.ForkOf(f.Trace)
	}
	return c
}

// Handler is anything that terminates frames: a switch, a host NIC stack,
// an exchange port.
type Handler interface {
	// HandleFrame is invoked when a frame fully arrives at ingress.
	HandleFrame(ingress *Port, f *Frame)
}

// queued is one egress-queue entry: the frame and its enqueue instant.
type queued struct {
	f   *Frame
	enq sim.Time
}

// flight is one frame committed to the wire: its delivery event and the
// frame itself, so a link failure can cancel the arrival and reclaim the
// buffer. Deliveries complete FIFO (a later frame's start is this frame's
// serialization end, and per-frame delay is serialization + a constant
// propagation), so the head of the flight ring is always the next arrival.
type flight struct {
	ev *sim.Event
	f  *Frame
}

// Port is one end of a full-duplex link, with an egress FIFO queue.
type Port struct {
	Name  string
	Owner Handler

	peer *Port
	rate units.Bandwidth
	prop sim.Duration

	sched *sim.Scheduler

	// queue is a power-of-two ring buffer: steady-state enqueue/dequeue
	// moves no memory and allocates nothing.
	queue      []queued
	qhead      int
	qlen       int
	queuedByte int
	capBytes   int
	draining   bool

	// down marks the transmit side of the link failed (fault injection).
	// The zero value is up, so slab-allocated ports start healthy.
	down bool

	// fly is a power-of-two ring of frames committed to the wire, in
	// transmit order; a link failure cancels and reclaims every entry.
	fly     []flight
	flyHead int
	flyLen  int

	// Tap, if set, observes every frame this port transmits, at the instant
	// serialization starts — where a capture appliance's optical tap sits.
	Tap func(f *Frame, at sim.Time)

	// CutThrough marks a switch egress port: the frame's bits are already
	// streaming (the source NIC serialized them once), so delivery is
	// charged only propagation, while the line stays occupied for the full
	// serialization time. Host NICs leave this false and charge
	// serialization — once per path, matching cut-through fabric physics
	// and the paper's per-hop arithmetic (12 hops × 500 ns + one
	// serialization).
	CutThrough bool

	// LossProb is the probability a transmitted frame is lost in flight —
	// the medium's intrinsic error rate. Losses are drawn from the
	// scheduler's deterministic RNG.
	LossProb float64

	// lossOverlays are named transient loss sources layered over LossProb
	// — rain fade on a microwave circuit (§2), a scripted burst, a dirty
	// connector. The effective per-frame loss probability is the max of
	// LossProb and every active overlay, so overlapping windows compose
	// instead of clobbering each other's capture-and-restore value.
	lossOverlays []lossOverlay

	// Stats.
	TxFrames, RxFrames  uint64
	TxBytes, RxBytes    uint64
	Drops               uint64
	Lost                uint64 // in-flight losses: LossProb draws and link-down cuts
	Blackholed          uint64 // sends attempted while the link was down
	Purged              uint64 // queued frames flushed by PurgeQueue (device failure)
	QueueHighWaterBytes int
	QueueDelay          sim.Duration // cumulative queueing delay (sum)
}

// DefaultQueueBytes is the default egress buffer: 512 KiB, a typical
// shallow-buffer ASIC share per port.
const DefaultQueueBytes = 512 * 1024

// NewPort creates an unconnected port owned by owner.
func NewPort(sched *sim.Scheduler, owner Handler, name string) *Port {
	return &Port{Name: name, Owner: owner, sched: sched, capBytes: DefaultQueueBytes}
}

// NewPorts creates n unconnected ports owned by owner, named
// baseName/p0..p(n-1). The ports share one backing array — switches create
// dozens at once, and a single slab is far cheaper for the allocator and
// the garbage collector than n separate objects.
func NewPorts(sched *sim.Scheduler, owner Handler, baseName string, n int) []*Port {
	slab := make([]Port, n)
	out := make([]*Port, n)
	for i := range slab {
		p := &slab[i]
		p.Name = baseName + "/p" + strconv.Itoa(i)
		p.Owner = owner
		p.sched = sched
		p.capBytes = DefaultQueueBytes
		out[i] = p
	}
	return out
}

// SetQueueCapacity overrides the egress buffer size in bytes.
func (p *Port) SetQueueCapacity(bytes int) { p.capBytes = bytes }

// lossOverlay is one named transient loss source.
type lossOverlay struct {
	name string
	prob float64
}

// SetLossSource installs or updates the named transient loss source on
// this port; prob 0 removes it. Each fault mechanism owns a distinct name
// ("rain", "burst#3", ...) and tears down only its own contribution, so
// overlapping loss windows restore correctly: the effective probability is
// always the max over LossProb and the active overlays, never a stale
// captured value. Overlays live in a small slice in insertion order —
// deterministic, and the empty case costs the hot path one length check.
func (p *Port) SetLossSource(name string, prob float64) {
	for i := range p.lossOverlays {
		if p.lossOverlays[i].name == name {
			if prob == 0 {
				p.lossOverlays = append(p.lossOverlays[:i], p.lossOverlays[i+1:]...)
			} else {
				p.lossOverlays[i].prob = prob
			}
			return
		}
	}
	if prob != 0 {
		p.lossOverlays = append(p.lossOverlays, lossOverlay{name: name, prob: prob})
	}
}

// EffectiveLossProb is the per-frame loss probability the next transmit
// will draw against: the max of LossProb and every active overlay.
func (p *Port) EffectiveLossProb() float64 {
	loss := p.LossProb
	for i := range p.lossOverlays {
		if p.lossOverlays[i].prob > loss {
			loss = p.lossOverlays[i].prob
		}
	}
	return loss
}

// Connect joins a and b with a full-duplex link of the given rate and
// one-way propagation delay.
func Connect(a, b *Port, rate units.Bandwidth, prop sim.Duration) {
	if a.peer != nil || b.peer != nil {
		panic("netsim: port already connected")
	}
	a.peer, b.peer = b, a
	a.rate, b.rate = rate, rate
	a.prop, b.prop = prop, prop
}

// Peer returns the port at the other end of the link, or nil.
func (p *Port) Peer() *Port { return p.peer }

// Rate returns the link rate.
func (p *Port) Rate() units.Bandwidth { return p.rate }

// Connected reports whether the port has a link.
func (p *Port) Connected() bool { return p.peer != nil }

// QueuedBytes returns the bytes currently waiting in the egress queue.
func (p *Port) QueuedBytes() int { return p.queuedByte }

// Up reports whether the port's transmit side is up.
func (p *Port) Up() bool { return !p.down }

// InFlight returns the number of frames committed to the wire and not yet
// delivered.
func (p *Port) InFlight() int { return p.flyLen }

// SetUp changes the transmit-side link state — the fault-injection entry
// point (a whole-link failure downs both ends; fault.Plan does that).
//
// Going down: every frame already committed to the wire is lost (counted in
// Lost) and its buffer reclaimed; queued frames stay queued and the drain
// pauses. Sends while down are counted in Blackholed and discarded — the
// transmitter keeps handing frames to a dead medium until something tells
// it otherwise. Coming up: the drain resumes where it paused.
func (p *Port) SetUp(up bool) {
	if up == !p.down {
		return
	}
	if !up {
		p.down = true
		for p.flyLen > 0 {
			ent := p.flyPop()
			ent.ev.Cancel()
			p.Lost++
			if t := ent.f.Trace; t != nil {
				// The in-flight span was already recorded up to the would-be
				// delivery; the cut truncates nothing retroactively.
				t.Finish(trace.EndLost)
				ent.f.Trace = nil
			}
			ent.f.Release()
		}
		return
	}
	p.down = false
	if p.qlen > 0 && !p.draining {
		p.draining = true
		p.sched.AtArgs(p.sched.Now(), sim.PrioDrain, drainPort, p, nil)
	}
}

// PurgeQueue discards every frame waiting in the egress queue — a device
// failure takes its packet memory with it. Purged frames are counted in
// Purged and their buffers reclaimed; frames already on the wire are not
// affected (SetUp(false) handles those).
func (p *Port) PurgeQueue() int {
	n := p.qlen
	for p.qlen > 0 {
		ent := p.queue[p.qhead]
		p.queue[p.qhead] = queued{}
		p.qhead = (p.qhead + 1) & (len(p.queue) - 1)
		p.qlen--
		p.Purged++
		if t := ent.f.Trace; t != nil {
			t.Record(p.Name, trace.CauseQueueing, p.sched.Now())
			t.Finish(trace.EndPurged)
			ent.f.Trace = nil
		}
		ent.f.Release()
	}
	p.queuedByte = 0
	return n
}

// flyPush records a frame committed to the wire.
func (p *Port) flyPush(ev *sim.Event, f *Frame) {
	if p.flyLen == len(p.fly) {
		size := len(p.fly) * 2
		if size == 0 {
			size = 8
		}
		nf := make([]flight, size)
		for i := 0; i < p.flyLen; i++ {
			nf[i] = p.fly[(p.flyHead+i)&(len(p.fly)-1)]
		}
		p.fly = nf
		p.flyHead = 0
	}
	p.fly[(p.flyHead+p.flyLen)&(len(p.fly)-1)] = flight{ev, f}
	p.flyLen++
}

// flyPop removes and returns the oldest in-flight entry.
func (p *Port) flyPop() flight {
	ent := p.fly[p.flyHead]
	p.fly[p.flyHead] = flight{}
	p.flyHead = (p.flyHead + 1) & (len(p.fly) - 1)
	p.flyLen--
	return ent
}

// Send enqueues f for transmission. It reports false (and counts a drop)
// when the egress buffer cannot hold the frame — tail-drop, as in shallow
// switch buffers. The port takes ownership of the frame in both cases; a
// dropped pooled frame is released here.
func (p *Port) Send(f *Frame) bool {
	if p.peer == nil {
		panic("netsim: send on unconnected port " + p.Name)
	}
	if p.down {
		p.Blackholed++
		if t := f.Trace; t != nil {
			t.Finish(trace.EndBlackholed)
			f.Trace = nil
		}
		f.Release()
		return false
	}
	if p.queuedByte+len(f.Data) > p.capBytes {
		p.Drops++
		if t := f.Trace; t != nil {
			t.Finish(trace.EndDropped)
			f.Trace = nil
		}
		f.Release()
		return false
	}
	if p.qlen == len(p.queue) {
		p.growQueue()
	}
	p.queue[(p.qhead+p.qlen)&(len(p.queue)-1)] = queued{f, p.sched.Now()}
	p.qlen++
	p.queuedByte += len(f.Data)
	if p.queuedByte > p.QueueHighWaterBytes {
		p.QueueHighWaterBytes = p.queuedByte
	}
	if !p.draining {
		p.draining = true
		p.sched.AtArgs(p.sched.Now(), sim.PrioDrain, drainPort, p, nil)
	}
	return true
}

// growQueue doubles the ring, unrolling it into insertion order.
func (p *Port) growQueue() {
	size := len(p.queue) * 2
	if size == 0 {
		size = 16
	}
	nq := make([]queued, size)
	for i := 0; i < p.qlen; i++ {
		nq[i] = p.queue[(p.qhead+i)&(len(p.queue)-1)]
	}
	p.queue = nq
	p.qhead = 0
}

// deliverFrame is the arrival callback, scheduled closure-free via AtArgs.
// Deliveries are FIFO per link, so the arriving frame is the sender's
// oldest in-flight entry; the pop keeps the flight ring in lockstep.
func deliverFrame(a, b any) {
	peer := a.(*Port)
	f := b.(*Frame)
	sender := peer.peer
	if ent := sender.flyPop(); ent.f != f {
		panic("netsim: in-flight ordering violated on " + sender.Name)
	}
	peer.RxFrames++
	peer.RxBytes += uint64(len(f.Data))
	peer.Owner.HandleFrame(peer, f)
}

// drainPort is the drain callback, scheduled closure-free via AtArgs (a
// cached method value would cost one closure allocation per port).
func drainPort(a, _ any) { a.(*Port).drain() }

// drain transmits the head-of-line frame and reschedules itself until the
// queue empties. One invocation per frame: the scheduler's clock provides
// the serialization spacing.
func (p *Port) drain() {
	if p.qlen == 0 || p.down {
		// Empty, or the link failed with frames still queued: pause. SetUp
		// restarts the drain on recovery.
		p.draining = false
		return
	}
	ent := p.queue[p.qhead]
	p.queue[p.qhead] = queued{}
	p.qhead = (p.qhead + 1) & (len(p.queue) - 1)
	p.qlen--
	f := ent.f
	p.queuedByte -= len(f.Data)

	now := p.sched.Now()
	p.QueueDelay += now.Sub(ent.enq)
	if p.Tap != nil {
		p.Tap(f, now)
	}
	wire := pkt.WireSize(len(f.Data)) + FrameOverheadBytes
	ser := units.SerializationDelay(wire, p.rate)
	p.TxFrames++
	p.TxBytes += uint64(len(f.Data))
	if t := f.Trace; t != nil {
		// Queueing covers the wait since enqueue (the handoff cursor).
		t.Record(p.Name, trace.CauseQueueing, now)
	}

	loss := p.LossProb
	if len(p.lossOverlays) != 0 {
		loss = p.EffectiveLossProb()
	}
	if loss > 0 && p.sched.Rand().Float64() < loss {
		// The frame leaves the port but never arrives.
		p.Lost++
		if t := f.Trace; t != nil {
			t.Record(p.Name, trace.CauseSerialization, now.Add(ser))
			t.Finish(trace.EndLost)
			f.Trace = nil
		}
		f.Release()
		p.sched.AtArgs(now.Add(ser), sim.PrioDrain, drainPort, p, nil)
		return
	}

	delay := ser + p.prop
	if p.CutThrough {
		delay = p.prop
	}
	if t := f.Trace; t != nil {
		// Spans end exactly at the delivery instant, so the cursor lands on
		// the receiver's clock with no gap (the telescoping invariant).
		if !p.CutThrough {
			t.Record(p.Name, trace.CauseSerialization, now.Add(ser))
		}
		t.Record(p.Name, trace.CausePropagation, now.Add(delay))
	}
	ev := p.sched.AtArgs(now.Add(delay), sim.PrioDeliver, deliverFrame, p.peer, f)
	p.flyPush(ev, f)
	// Next frame may start once this one's bits have left.
	p.sched.AtArgs(now.Add(ser), sim.PrioDrain, drainPort, p, nil)
}
