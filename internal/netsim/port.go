// Package netsim models the physical network: ports, links, output queues,
// NICs, hosts, and taps. A frame is a real byte slice (built by pkt);
// transit charges serialization delay (frame bytes at line rate, plus
// preamble and inter-frame gap), propagation delay (set by the link's
// length and medium), and queueing delay (FIFO output queues with a finite
// byte capacity; overflow drops the frame, as switches do).
package netsim

import (
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/units"
)

// FrameOverheadBytes is the per-frame wire overhead beyond the frame bytes:
// 8 bytes of preamble/SFD plus a 12-byte minimum inter-frame gap.
const FrameOverheadBytes = 20

// Frame is a frame in flight. Data is the on-wire bytes excluding FCS;
// Origin is the instant the originating application handed it to its NIC,
// carried along so receivers can measure one-way latency the way the
// paper's timestamping discussion describes (order-out minus md-in).
type Frame struct {
	Data   []byte
	Origin sim.Time
	ID     uint64
}

// Clone returns a deep copy of the frame. Replication points (multicast
// fan-out) clone so downstream queues own their bytes.
func (f *Frame) Clone() *Frame {
	c := *f
	c.Data = append([]byte(nil), f.Data...)
	return &c
}

// Handler is anything that terminates frames: a switch, a host NIC stack,
// an exchange port.
type Handler interface {
	// HandleFrame is invoked when a frame fully arrives at ingress.
	HandleFrame(ingress *Port, f *Frame)
}

// Port is one end of a full-duplex link, with an egress FIFO queue.
type Port struct {
	Name  string
	Owner Handler

	peer *Port
	rate units.Bandwidth
	prop sim.Duration

	sched *sim.Scheduler

	queue      []*Frame
	queueEnq   []sim.Time
	queuedByte int
	capBytes   int
	draining   bool

	// Tap, if set, observes every frame this port transmits, at the instant
	// serialization starts — where a capture appliance's optical tap sits.
	Tap func(f *Frame, at sim.Time)

	// CutThrough marks a switch egress port: the frame's bits are already
	// streaming (the source NIC serialized them once), so delivery is
	// charged only propagation, while the line stays occupied for the full
	// serialization time. Host NICs leave this false and charge
	// serialization — once per path, matching cut-through fabric physics
	// and the paper's per-hop arithmetic (12 hops × 500 ns + one
	// serialization).
	CutThrough bool

	// LossProb is the probability a transmitted frame is lost in flight —
	// the medium's error rate, e.g. rain fade on a microwave circuit (§2).
	// Losses are drawn from the scheduler's deterministic RNG.
	LossProb float64

	// Stats.
	TxFrames, RxFrames  uint64
	TxBytes, RxBytes    uint64
	Drops               uint64
	Lost                uint64 // in-flight losses from LossProb
	QueueHighWaterBytes int
	QueueDelay          sim.Duration // cumulative queueing delay (sum)
}

// DefaultQueueBytes is the default egress buffer: 512 KiB, a typical
// shallow-buffer ASIC share per port.
const DefaultQueueBytes = 512 * 1024

// NewPort creates an unconnected port owned by owner.
func NewPort(sched *sim.Scheduler, owner Handler, name string) *Port {
	return &Port{Name: name, Owner: owner, sched: sched, capBytes: DefaultQueueBytes}
}

// SetQueueCapacity overrides the egress buffer size in bytes.
func (p *Port) SetQueueCapacity(bytes int) { p.capBytes = bytes }

// Connect joins a and b with a full-duplex link of the given rate and
// one-way propagation delay.
func Connect(a, b *Port, rate units.Bandwidth, prop sim.Duration) {
	if a.peer != nil || b.peer != nil {
		panic("netsim: port already connected")
	}
	a.peer, b.peer = b, a
	a.rate, b.rate = rate, rate
	a.prop, b.prop = prop, prop
}

// Peer returns the port at the other end of the link, or nil.
func (p *Port) Peer() *Port { return p.peer }

// Rate returns the link rate.
func (p *Port) Rate() units.Bandwidth { return p.rate }

// Connected reports whether the port has a link.
func (p *Port) Connected() bool { return p.peer != nil }

// QueuedBytes returns the bytes currently waiting in the egress queue.
func (p *Port) QueuedBytes() int { return p.queuedByte }

// Send enqueues f for transmission. It reports false (and counts a drop)
// when the egress buffer cannot hold the frame — tail-drop, as in shallow
// switch buffers. The port takes ownership of the frame.
func (p *Port) Send(f *Frame) bool {
	if p.peer == nil {
		panic("netsim: send on unconnected port " + p.Name)
	}
	if p.queuedByte+len(f.Data) > p.capBytes {
		p.Drops++
		return false
	}
	p.queue = append(p.queue, f)
	p.queueEnq = append(p.queueEnq, p.sched.Now())
	p.queuedByte += len(f.Data)
	if p.queuedByte > p.QueueHighWaterBytes {
		p.QueueHighWaterBytes = p.queuedByte
	}
	if !p.draining {
		p.draining = true
		p.sched.AtPrio(p.sched.Now(), sim.PrioDrain, p.drain)
	}
	return true
}

// drain transmits the head-of-line frame and reschedules itself until the
// queue empties. One invocation per frame: the scheduler's clock provides
// the serialization spacing.
func (p *Port) drain() {
	if len(p.queue) == 0 {
		p.draining = false
		return
	}
	f := p.queue[0]
	enq := p.queueEnq[0]
	p.queue = p.queue[1:]
	p.queueEnq = p.queueEnq[1:]
	p.queuedByte -= len(f.Data)

	now := p.sched.Now()
	p.QueueDelay += now.Sub(enq)
	if p.Tap != nil {
		p.Tap(f, now)
	}
	wire := pkt.WireSize(len(f.Data)) + FrameOverheadBytes
	ser := units.SerializationDelay(wire, p.rate)
	p.TxFrames++
	p.TxBytes += uint64(len(f.Data))

	if p.LossProb > 0 && p.sched.Rand().Float64() < p.LossProb {
		// The frame leaves the port but never arrives.
		p.Lost++
		p.sched.AtPrio(now.Add(ser), sim.PrioDrain, p.drain)
		return
	}

	peer := p.peer
	delay := ser + p.prop
	if p.CutThrough {
		delay = p.prop
	}
	arrive := now.Add(delay)
	p.sched.At(arrive, func() {
		peer.RxFrames++
		peer.RxBytes += uint64(len(f.Data))
		peer.Owner.HandleFrame(peer, f)
	})
	// Next frame may start once this one's bits have left.
	p.sched.AtPrio(now.Add(ser), sim.PrioDrain, p.drain)
}
