package netsim

import (
	"bytes"
	"testing"

	"tradenet/internal/sim"
	"tradenet/internal/units"
)

// outagePair wires two hosts and cuts the link (both directions) for the
// window [at, at+d).
func outagePair(t *testing.T, sched *sim.Scheduler, at sim.Time, d sim.Duration) (*Stream, *Stream) {
	t.Helper()
	s1, s2, p1, p2 := hostPair(t, sched, 0)
	sched.At(at, func() {
		p1.SetUp(false)
		p2.SetUp(false)
	})
	sched.At(at.Add(d), func() {
		p1.SetUp(true)
		p2.SetUp(true)
	})
	return s1, s2
}

// TestStreamRTOBackoffLimitsRetransmitStorm is the satellite fix for the
// fixed-interval retransmit storm: across a long outage a legacy stream
// fires a retransmission every RTO forever, while a backed-off stream's
// interval doubles to MaxRTO — an order of magnitude fewer wasted sends —
// and both still deliver everything once the link heals.
func TestStreamRTOBackoffLimitsRetransmitStorm(t *testing.T) {
	const outage = 40 * sim.Millisecond
	run := func(maxRTO sim.Duration) (uint64, bool) {
		sched := sim.NewScheduler(1)
		s1, s2 := outagePair(t, sched, sim.Time(sim.Millisecond), outage)
		s1.MaxRTO = maxRTO
		var got bytes.Buffer
		s2.OnData = func(b []byte) { got.Write(b) }
		sched.At(0, func() { s1.Write([]byte("resting order book state")) })
		// Written into the dead link: this segment retransmits across the
		// whole outage (the sub-µs RTT acks anything sent before the cut).
		sched.At(sim.Time(1010*sim.Microsecond), func() { s1.Write([]byte(" plus one torn update")) })
		sched.Run()
		return s1.Retransmits, got.String() == "resting order book state plus one torn update"
	}

	legacy, legacyOK := run(0)
	backed, backedOK := run(3200 * sim.Microsecond)
	if !legacyOK || !backedOK {
		t.Fatalf("delivery incomplete: legacy=%v backoff=%v", legacyOK, backedOK)
	}
	// Legacy: one round per 200 µs RTO across 40 ms ≈ 200 rounds. Backoff:
	// 200, 400, ..., 3200 µs then capped ≈ 16 rounds.
	if legacy < 100 {
		t.Fatalf("legacy retransmits = %d, expected a storm (>=100)", legacy)
	}
	if backed >= legacy/4 {
		t.Fatalf("backoff retransmits = %d vs legacy %d: backoff did not tame the storm", backed, legacy)
	}
}

func TestStreamBackoffResetsOnProgress(t *testing.T) {
	sched := sim.NewScheduler(1)
	s1, s2 := outagePair(t, sched, sim.Time(sim.Millisecond), 10*sim.Millisecond)
	s1.MaxRTO = 3200 * sim.Microsecond
	var got bytes.Buffer
	s2.OnData = func(b []byte) { got.Write(b) }
	sched.At(sim.Time(1010*sim.Microsecond), func() { s1.Write([]byte("first")) })
	// Well after recovery (interval has backed off and then been acked):
	// new traffic must retransmit at the base RTO again, i.e. promptly.
	sched.At(sim.Time(20*sim.Millisecond), func() { s1.Write([]byte(" second")) })
	sched.Run()
	if got.String() != "first second" {
		t.Fatalf("got %q", got.String())
	}
	if s1.Dead() {
		t.Fatal("stream died despite recovery")
	}
}

func TestStreamDeadAfterFiresOnDeadTransport(t *testing.T) {
	sched := sim.NewScheduler(1)
	s1, s2, p1, p2 := hostPair(t, sched, 0)
	s1.MaxRTO = 800 * sim.Microsecond
	s1.DeadAfter = 4
	var diedAt sim.Time
	s1.OnDead = func() { diedAt = sched.Now() }
	// Hard-fail the link forever: the stream must give up, not spin.
	sched.At(sim.Time(sim.Millisecond), func() {
		p1.SetUp(false)
		p2.SetUp(false)
	})
	sched.At(sim.Time(1010*sim.Microsecond), func() { s1.Write([]byte("doomed")) })
	sched.Run()

	if !s1.Dead() || diedAt == 0 {
		t.Fatalf("stream not declared dead (dead=%v at=%v)", s1.Dead(), diedAt)
	}
	retransAtDeath := s1.Retransmits
	// A dead stream is inert: writes are dropped and counted, no new timers.
	s1.Write([]byte("after death"))
	if s1.DroppedWrites != 1 {
		t.Fatalf("dropped writes = %d, want 1", s1.DroppedWrites)
	}
	sched.Run()
	if s1.Retransmits != retransAtDeath {
		t.Fatalf("dead stream kept retransmitting: %d -> %d", retransAtDeath, s1.Retransmits)
	}
	_ = s2
}

func TestStreamKillIsSilent(t *testing.T) {
	sched := sim.NewScheduler(1)
	s1, _, _, _ := hostPair(t, sched, 0)
	fired := false
	s1.OnDead = func() { fired = true }
	s1.Kill()
	if !s1.Dead() {
		t.Fatal("killed stream not dead")
	}
	if fired {
		t.Fatal("Kill must not fire OnDead (the local side already knows)")
	}
	s1.Write([]byte("x"))
	if s1.DroppedWrites != 1 {
		t.Fatalf("dropped writes = %d", s1.DroppedWrites)
	}
}

// TestStreamReconnectStartsAtBaseRTO is the redial-path audit's regression
// test: every reconnect in the firm layer constructs a fresh Stream
// (gateway reconnectExchange, strategy redial) rather than reviving the
// dead one, so a replacement must not inherit its predecessor's backed-off
// retransmission state — first retransmit at the base RTO, round counter
// zero, alive — even when the stream it replaces died pinned at MaxRTO.
func TestStreamReconnectStartsAtBaseRTO(t *testing.T) {
	sched := sim.NewScheduler(1)
	h1, h2 := NewHost(sched, "client"), NewHost(sched, "server")
	n1, n2 := h1.AddNIC("orders", 10), h2.AddNIC("orders", 20)
	Connect(n1.Port, n2.Port, units.Rate10G, 500*sim.Nanosecond)
	m1, m2 := NewStreamMux(n1), NewStreamMux(n2)

	old := NewStream(n1, 40000, n2.Addr(443))
	srv := NewStream(n2, 443, n1.Addr(40000))
	m1.Register(old)
	m2.Register(srv)
	old.MaxRTO = 3200 * sim.Microsecond
	old.DeadAfter = 6

	// The server process dies silently; the client stream backs off to
	// MaxRTO and eventually declares the transport dead.
	sched.At(sim.Time(sim.Millisecond), func() { srv.Kill() })
	sched.At(sim.Time(1010*sim.Microsecond), func() { old.Write([]byte("into the void")) })
	sched.Run()
	if !old.Dead() {
		t.Fatal("predecessor never died")
	}
	if old.curRTO != old.MaxRTO {
		t.Fatalf("predecessor curRTO = %v, want pinned at MaxRTO %v", old.curRTO, old.MaxRTO)
	}

	// Redial exactly like the firm layer: same local port, fresh remote
	// endpoint, fresh Stream registered on the same mux.
	repl := NewStream(n1, 40000, n2.Addr(444))
	repl.MaxRTO = old.MaxRTO
	repl.DeadAfter = old.DeadAfter
	m1.Register(repl)
	srv2 := NewStream(n2, 444, n1.Addr(40000))
	m2.Register(srv2)
	var got bytes.Buffer
	srv2.OnData = func(b []byte) { got.Write(b) }

	if repl.Dead() || repl.curRTO != 0 || repl.rtoRounds != 0 {
		t.Fatalf("replacement inherited retransmit state: dead=%v curRTO=%v rounds=%d",
			repl.Dead(), repl.curRTO, repl.rtoRounds)
	}

	// Prove the first retransmit fires at the base RTO (200 µs), not at an
	// inherited MaxRTO: cut the link around a write and count attempts.
	down, up := sim.Time(20*sim.Millisecond), sim.Time(20400*sim.Microsecond)
	sched.At(down, func() {
		n1.Port.SetUp(false)
		n2.Port.SetUp(false)
	})
	sched.At(down.Add(10*sim.Microsecond), func() { repl.Write([]byte("prompt retry")) })
	sched.At(down.Add(300*sim.Microsecond), func() {
		if repl.Retransmits == 0 {
			t.Errorf("no retransmit within 300 µs of the cut: replacement is not at the base RTO")
		}
	})
	sched.At(up, func() {
		n1.Port.SetUp(true)
		n2.Port.SetUp(true)
	})
	sched.Run()

	if got.String() != "prompt retry" {
		t.Fatalf("replacement never delivered: got %q", got.String())
	}
	if repl.Dead() {
		t.Fatal("replacement died")
	}
}
