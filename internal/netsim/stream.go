package netsim

import (
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/trace"
)

// MSS is the stream segment payload limit: a full frame minus headers.
const MSS = pkt.MaxFrameNoFCS - pkt.EthernetHeaderLen - pkt.IPv4HeaderLen - pkt.TCPHeaderLen

// Stream is one endpoint of a reliable, ordered byte stream carried in TCP
// frames over the simulated network — the transport under the order-entry
// sessions (§2: orders ride long-lived TCP connections). It implements
// go-back-N with cumulative ACKs and timeout retransmission; no handshake
// or teardown, because trading sessions live for the whole day and the
// application's logon is the real handshake.
type Stream struct {
	nic    *NIC
	local  pkt.UDPAddr
	remote pkt.UDPAddr
	sched  *sim.Scheduler

	sndNxt uint32 // next byte sequence to send
	sndUna uint32 // oldest unacknowledged byte
	rcvNxt uint32 // next byte sequence expected

	unacked  []segment
	freeBufs [][]byte // retired segment buffers, reused by Write
	rto      sim.Handle
	onRTOFn  func() // cached method value: arming the timer never allocates

	// txTrace is a flight-recorder context pending attachment: the next
	// transmitted segment carries it (retransmits never do — a trace follows
	// the first copy onto the wire). rxTrace holds the context taken off an
	// inbound frame for the duration of Deliver, so application callbacks can
	// adopt it via TakeRxTrace.
	txTrace *trace.Ctx
	rxTrace *trace.Ctx

	// RTO is the retransmission timeout. Intra-colo RTTs are microseconds;
	// the default is generous without stalling experiments.
	RTO sim.Duration
	// MaxRTO, when non-zero, enables exponential retransmission backoff:
	// each timeout round without forward ACK progress doubles the interval,
	// capped here; progress resets to RTO. Zero keeps the legacy fixed
	// interval (and its retransmit storm across a long outage).
	MaxRTO sim.Duration
	// DeadAfter, when non-zero, caps consecutive no-progress retransmission
	// rounds: past it the connection is declared dead — writes drop, the
	// timer stops — and OnDead fires once. Zero retransmits forever.
	DeadAfter int
	// OnDead fires once when the retransmit cap is exhausted.
	OnDead func()

	dead      bool
	rtoRounds int          // consecutive timeout rounds without progress
	curRTO    sim.Duration // backed-off interval; 0 means base RTO

	// OnData receives in-order stream bytes. The slice is only valid during
	// the callback.
	OnData func([]byte)

	// Stats.
	Retransmits   uint64
	SentSegments  uint64
	RecvSegments  uint64
	DroppedWrites uint64 // writes discarded because the stream was dead
}

type segment struct {
	seq  uint32
	data []byte
}

// NewStream creates a stream endpoint sending from local to remote via nic.
// The caller routes inbound TCP frames to Deliver (usually via a StreamMux).
func NewStream(nic *NIC, localPort uint16, remote pkt.UDPAddr) *Stream {
	s := &Stream{
		nic:    nic,
		local:  nic.Addr(localPort),
		remote: remote,
		sched:  nic.host.sched,
		RTO:    200 * sim.Microsecond,
	}
	s.onRTOFn = s.onRTO
	return s
}

// Local returns the stream's local address.
func (s *Stream) Local() pkt.UDPAddr { return s.local }

// Remote returns the stream's remote address.
func (s *Stream) Remote() pkt.UDPAddr { return s.remote }

// InFlight returns the number of unacknowledged bytes.
func (s *Stream) InFlight() int { return int(s.sndNxt - s.sndUna) }

// Write queues data for reliable delivery and transmits it immediately.
// Writes on a dead stream are dropped (and counted): the bytes a process
// writes into a cut connection go nowhere.
func (s *Stream) Write(data []byte) {
	if s.dead {
		s.DroppedWrites++
		return
	}
	for len(data) > 0 {
		n := len(data)
		if n > MSS {
			n = MSS
		}
		var buf []byte
		if k := len(s.freeBufs); k > 0 {
			buf = s.freeBufs[k-1][:0]
			s.freeBufs = s.freeBufs[:k-1]
		}
		seg := segment{seq: s.sndNxt, data: append(buf, data[:n]...)}
		s.unacked = append(s.unacked, seg)
		s.sndNxt += uint32(n)
		s.transmit(seg)
		data = data[n:]
	}
	s.armRTO()
}

func (s *Stream) transmit(seg segment) {
	hdr := pkt.TCP{Seq: seg.seq, Ack: s.rcvNxt, Flags: pkt.FlagACK | pkt.FlagPSH}
	f := NewFrame()
	f.Data = pkt.AppendTCPFrame(f.Data, s.local, s.remote, &hdr, seg.data)
	f.Origin = s.sched.Now()
	if s.txTrace != nil {
		f.Trace = s.txTrace
		s.txTrace = nil
	}
	s.SentSegments++
	s.nic.Send(f)
}

// AttachTxTrace hands a flight-recorder context to the stream; the next
// transmitted segment carries it onto the wire. Attaching over a pending
// context closes the displaced one (it never made it to a segment).
func (s *Stream) AttachTxTrace(t *trace.Ctx) {
	if s.txTrace != nil {
		s.txTrace.Finish(trace.EndConsumed)
	}
	s.txTrace = t
}

// TakeRxTrace adopts the flight-recorder context of the frame currently
// being delivered (nil when the frame was untraced or someone already took
// it). Session callbacks running under Deliver call this to carry the trace
// across their own deferred processing.
func (s *Stream) TakeRxTrace() *trace.Ctx {
	t := s.rxTrace
	if t != nil {
		s.rxTrace = nil
	}
	return t
}

func (s *Stream) sendAck() {
	hdr := pkt.TCP{Seq: s.sndNxt, Ack: s.rcvNxt, Flags: pkt.FlagACK}
	f := NewFrame()
	f.Data = pkt.AppendTCPFrame(f.Data, s.local, s.remote, &hdr, nil)
	f.Origin = s.sched.Now()
	s.nic.Send(f)
}

func (s *Stream) armRTO() {
	s.rto.Cancel()
	s.rto = sim.Handle{}
	if len(s.unacked) == 0 || s.dead {
		return
	}
	d := s.RTO
	if s.curRTO > 0 {
		d = s.curRTO
	}
	s.rto = s.sched.After(d, s.onRTOFn).Handle()
}

func (s *Stream) onRTO() {
	s.rto = sim.Handle{}
	if len(s.unacked) == 0 || s.dead {
		return
	}
	if s.DeadAfter > 0 && s.rtoRounds >= s.DeadAfter {
		s.declareDead(true)
		return
	}
	s.rtoRounds++
	// Go-back-N: retransmit everything outstanding.
	for _, seg := range s.unacked {
		s.Retransmits++
		s.transmit(seg)
	}
	if s.MaxRTO > 0 {
		// Exponential backoff: double the interval each silent round so a
		// long outage costs O(log) retransmit rounds, not O(outage/RTO).
		if s.curRTO == 0 {
			s.curRTO = s.RTO
		}
		s.curRTO *= 2
		if s.curRTO > s.MaxRTO {
			s.curRTO = s.MaxRTO
		}
	}
	s.armRTO()
}

// declareDead retires the stream after the peer stayed unreachable through
// the whole retransmission schedule. Writes drop from here on; recovery is
// the session layer's job (reconnect on a fresh stream).
func (s *Stream) declareDead(fire bool) {
	if s.dead {
		return
	}
	s.dead = true
	s.rto.Cancel()
	s.rto = sim.Handle{}
	if fire && s.OnDead != nil {
		s.OnDead()
	}
}

// Kill marks the stream dead without firing OnDead: fault injection uses it
// for the local side of a cut, and reconnect logic uses it to retire a
// replaced stream.
func (s *Stream) Kill() { s.declareDead(false) }

// Dead reports whether the stream has been declared dead.
func (s *Stream) Dead() bool { return s.dead }

// Deliver ingests one TCP frame addressed to this stream. A dead stream
// ignores everything — its socket is gone.
func (s *Stream) Deliver(f *pkt.TCPFrame) {
	if s.dead {
		return
	}
	// ACK processing: drop fully acknowledged segments.
	if f.TCP.Flags&pkt.FlagACK != 0 {
		ack := f.TCP.Ack
		if int32(ack-s.sndUna) > 0 {
			s.sndUna = ack
			// Forward progress: the path is alive, reset the backoff.
			s.rtoRounds = 0
			s.curRTO = 0
			keep := s.unacked[:0]
			for _, seg := range s.unacked {
				if int32(seg.seq+uint32(len(seg.data))-ack) > 0 {
					keep = append(keep, seg)
				} else {
					s.freeBufs = append(s.freeBufs, seg.data)
				}
			}
			s.unacked = keep
			s.armRTO()
		}
	}
	if len(f.Payload) == 0 {
		return
	}
	s.RecvSegments++
	switch {
	case f.TCP.Seq == s.rcvNxt:
		s.rcvNxt += uint32(len(f.Payload))
		if s.OnData != nil {
			s.OnData(f.Payload)
		}
		s.sendAck()
	case int32(f.TCP.Seq-s.rcvNxt) < 0:
		// Duplicate of already-delivered data: re-ACK so the sender stops.
		s.sendAck()
	default:
		// Out of order (a gap precedes it): go-back-N receivers drop it and
		// re-ACK the last in-order byte.
		s.sendAck()
	}
}

// StreamMux demultiplexes a NIC's inbound TCP frames to streams by the
// (remote IP, remote port, local port) triple, and passes non-TCP frames to
// Fallback (market data and order traffic can share a NIC even though
// production plants separate them — Fig. 1d).
type StreamMux struct {
	streams  map[muxKey]*Stream
	Fallback func(nic *NIC, f *Frame)
}

type muxKey struct {
	remoteIP   pkt.IP4
	remotePort uint16
	localPort  uint16
}

// NewStreamMux installs a mux as nic's frame handler and returns it.
func NewStreamMux(nic *NIC) *StreamMux {
	m := &StreamMux{streams: make(map[muxKey]*Stream)}
	nic.OnFrame = m.handle
	return m
}

// Register attaches a stream to the mux.
func (m *StreamMux) Register(s *Stream) {
	m.streams[muxKey{s.remote.IP, s.remote.Port, s.local.Port}] = s
}

func (m *StreamMux) handle(nic *NIC, f *Frame) {
	var tf pkt.TCPFrame
	if err := pkt.ParseTCPFrame(f.Data, &tf); err == nil {
		key := muxKey{tf.IP.Src, tf.TCP.SrcPort, tf.TCP.DstPort}
		if s, ok := m.streams[key]; ok {
			// Deliver consumes the payload synchronously (OnData contracts
			// say the slice is only valid during the callback), so the frame
			// terminates here. The trace is parked on the stream for the
			// callback to adopt; an unadopted trace ends as consumed.
			if f.Trace != nil {
				s.rxTrace = f.Trace
				f.Trace = nil
			}
			s.Deliver(&tf)
			if s.rxTrace != nil {
				s.rxTrace.Finish(trace.EndConsumed)
				s.rxTrace = nil
			}
			f.Release()
			return
		}
	}
	if m.Fallback != nil {
		m.Fallback(nic, f)
		return
	}
	f.Release()
}
