package netsim

import (
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
)

// NIC is a host network interface: a port plus address filtering and
// multicast subscriptions. Servers in a trading plant have several NICs
// with distinct roles — management, market data, orders (paper Fig. 1d) —
// so a Host owns a set of named NICs.
type NIC struct {
	Port *Port
	MAC  pkt.MAC
	IP   pkt.IP4

	host   *Host
	groups map[pkt.MAC]bool

	// Promiscuous disables destination filtering (tap/capture NICs).
	Promiscuous bool

	// Filtered counts frames dropped by address filtering — the NIC-level
	// discard work that §3's "Implications" paragraph discusses placing
	// in-process versus on a middlebox.
	Filtered uint64

	// OnFrame receives accepted frames. If nil, frames are counted and
	// dropped.
	OnFrame func(nic *NIC, f *Frame)
}

// Join subscribes the NIC to an IP multicast group (IGMP join in spirit).
func (n *NIC) Join(group pkt.IP4) {
	if n.groups == nil {
		n.groups = make(map[pkt.MAC]bool)
	}
	n.groups[pkt.MulticastMAC(group)] = true
}

// Leave unsubscribes the NIC from a group.
func (n *NIC) Leave(group pkt.IP4) { delete(n.groups, pkt.MulticastMAC(group)) }

// Subscriptions returns the number of joined groups.
func (n *NIC) Subscriptions() int { return len(n.groups) }

// Addr returns the NIC's UDP address with the given port number.
func (n *NIC) Addr(port uint16) pkt.UDPAddr {
	return pkt.UDPAddr{MAC: n.MAC, IP: n.IP, Port: port}
}

// accepts applies destination filtering.
func (n *NIC) accepts(dst pkt.MAC) bool {
	if n.Promiscuous || dst == n.MAC {
		return true
	}
	if dst.IsMulticast() {
		return n.groups[dst]
	}
	return false
}

// Host is a server with one or more NICs. Frame dispatch to the application
// happens after a configurable software receive latency, modelling the
// kernel-bypass stack the paper assumes (~1 µs per software hop, §3).
type Host struct {
	Name  string
	sched *sim.Scheduler
	nics  []*NIC

	// RxLatency is the software receive path cost applied between frame
	// arrival and the application callback.
	RxLatency sim.Duration
}

// NewHost creates a host with no NICs.
func NewHost(sched *sim.Scheduler, name string) *Host {
	return &Host{Name: name, sched: sched}
}

// Scheduler returns the host's scheduler (for app-level timers).
func (h *Host) Scheduler() *sim.Scheduler { return h.sched }

// AddNIC attaches a new NIC with addresses derived from id.
func (h *Host) AddNIC(name string, id uint32) *NIC {
	n := &NIC{MAC: pkt.HostMAC(id), IP: pkt.HostIP(id), host: h}
	n.Port = NewPort(h.sched, (*hostHandler)(h), h.Name+"/"+name)
	h.nics = append(h.nics, n)
	return n
}

// NICs returns the host's interfaces.
func (h *Host) NICs() []*NIC { return h.nics }

// hostHandler adapts Host to the Handler interface without exposing
// HandleFrame on Host's public API.
type hostHandler Host

// HandleFrame implements Handler: filter by NIC address, charge the
// software receive latency, then deliver to the application. Filtered and
// unconsumed frames terminate here and return to the pool; frames handed to
// OnFrame are owned by the application (which may retain them past the
// callback), so they are never auto-released.
func (hh *hostHandler) HandleFrame(ingress *Port, f *Frame) {
	h := (*Host)(hh)
	var nic *NIC
	for _, n := range h.nics {
		if n.Port == ingress {
			nic = n
			break
		}
	}
	if nic == nil {
		f.Release()
		return
	}
	var eth pkt.Ethernet
	if _, err := eth.Decode(f.Data); err != nil {
		nic.Filtered++
		f.Release()
		return
	}
	if !nic.accepts(eth.Dst) {
		nic.Filtered++
		f.Release()
		return
	}
	if nic.OnFrame == nil {
		f.Release()
		return
	}
	if h.RxLatency <= 0 {
		nic.OnFrame(nic, f)
		return
	}
	h.sched.AfterArgs(h.RxLatency, sim.PrioDeliver, deliverToNIC, nic, f)
}

// deliverToNIC runs a deferred application delivery, scheduled closure-free.
func deliverToNIC(a, b any) {
	nic := a.(*NIC)
	nic.OnFrame(nic, b.(*Frame))
}

// Send transmits a frame out of the NIC, stamping Origin if unset.
func (n *NIC) Send(f *Frame) bool {
	if f.Origin == 0 {
		f.Origin = n.host.sched.Now()
	}
	return n.Port.Send(f)
}

// SendBytes builds a pooled Frame around data (copying it) and transmits it.
func (n *NIC) SendBytes(data []byte) bool {
	f := NewFrameBytes(data)
	f.Origin = n.host.sched.Now()
	return n.Send(f)
}
