// Package trace is the flight recorder: a per-message trace context carried
// on frames through ports, switches, and software stages, recording
// contiguous per-hop spans on the virtual clock with a cause breakdown
// (software, queueing, serialization, propagation, switching) and a terminal
// event (accepted, consumed, dropped, blackholed, lost, purged).
//
// The recorder is built around three hard constraints:
//
//   - Non-perturbing: recording never schedules events, never draws from the
//     RNG, and never changes a branch the simulation takes. With no recorder
//     installed every hook is a nil-pointer compare, so the event schedule is
//     bit-identical to an untraced run (core's determinism tests enforce
//     this).
//   - Sampling-bounded: a Recorder starts at most one trace per Every
//     eligible messages (counter-based — no RNG draw) and caps the total
//     number of contexts (MaxTraces) including multicast forks; once the cap
//     is reached Start and Fork return nil and downstream frames simply go
//     untraced.
//   - Allocation-pooled: contexts and their span slices come from a free
//     list and are recycled on Reset, so steady-state tracing performs no
//     per-message heap allocation beyond span-slice growth up to the cap.
//
// Spans telescope: every span starts at the context's cursor and ends at the
// instant passed to Record, which becomes the new cursor. Sums of spans are
// therefore exactly End-minus-Start by construction — the property the E20
// attribution experiment's 0 ps reconciliation check rests on.
package trace

import "tradenet/internal/sim"

// Cause classifies where a span's time went, mirroring the paper's latency
// decomposition: software processing (§2's per-function budgets), queueing
// and serialization and propagation (§3's switching fabrics), and in-device
// switching latency (500 ns commodity vs 5 ns L1S).
type Cause uint8

const (
	CauseSoftware Cause = iota
	CauseQueueing
	CauseSerialization
	CausePropagation
	CauseSwitching

	// NumCauses sizes per-cause accumulation arrays.
	NumCauses = 5
)

// String returns the cause's attribution-table label.
func (c Cause) String() string {
	switch c {
	case CauseSoftware:
		return "software"
	case CauseQueueing:
		return "queueing"
	case CauseSerialization:
		return "serialization"
	case CausePropagation:
		return "propagation"
	case CauseSwitching:
		return "switching"
	}
	return "unknown"
}

// End is a trace's terminal event kind.
type End uint8

const (
	// EndNone marks a context still in flight.
	EndNone End = iota
	// EndAccepted: the matching engine admitted the traced order — the happy
	// path's terminal, and the only kind the attribution table reconciles.
	EndAccepted
	// EndConsumed: a software stage consumed the message without producing a
	// traced successor (filtered, unowned partition, no trigger).
	EndConsumed
	// EndDropped: tail-dropped at a full egress queue.
	EndDropped
	// EndBlackholed: transmitted into a link that was down.
	EndBlackholed
	// EndLost: lost in flight — a loss-probability draw or a link cut.
	EndLost
	// EndPurged: flushed from a queue by a device failure.
	EndPurged
	// EndDeduped: a redundant WAN copy discarded by the redundancy layer —
	// its sequence had already been delivered or held (send-twice working
	// as intended).
	EndDeduped
	// EndReconstructed: a parity frame spent rebuilding a lost groupmate —
	// the frame's bytes live on in the reconstructed datagram, with no
	// replay round trip.
	EndReconstructed
	// EndCrashed: the process that would have handled the message died
	// before its engine event fired — the order-entry shape of an exchange
	// failover, healed by client resubmission against the promoted standby.
	EndCrashed

	// NumEnds sizes per-end accumulation arrays.
	NumEnds = 10
)

// String returns the end kind's label.
func (e End) String() string {
	switch e {
	case EndNone:
		return "open"
	case EndAccepted:
		return "accepted"
	case EndConsumed:
		return "consumed"
	case EndDropped:
		return "dropped"
	case EndBlackholed:
		return "blackholed"
	case EndLost:
		return "lost"
	case EndPurged:
		return "purged"
	case EndDeduped:
		return "deduped"
	case EndReconstructed:
		return "reconstructed"
	case EndCrashed:
		return "crashed"
	}
	return "unknown"
}

// Span is one contiguous slice of a traced message's life: [Start, End) at
// Where, attributed to Cause.
type Span struct {
	Where string
	Cause Cause
	Start sim.Time
	End   sim.Time
}

// Ctx is one traced message's flight record. It rides on a frame (or is
// carried across software stages by their deferred-work structs) and is
// owned by exactly one holder at a time; multicast replication forks it.
type Ctx struct {
	// ID distinguishes traces and groups forks: a fork keeps its parent's ID
	// with a new fork ordinal.
	ID   uint64
	Fork int

	rec    *Recorder
	spans  []Span
	start  sim.Time
	cursor sim.Time
	end    End
}

// Start returns the instant the trace began (the publish instant).
func (c *Ctx) Start() sim.Time { return c.start }

// EndAt returns the instant the trace finished (its cursor at Finish time).
func (c *Ctx) EndAt() sim.Time { return c.cursor }

// Terminal returns the trace's end kind (EndNone while in flight).
func (c *Ctx) Terminal() End { return c.end }

// Spans returns the recorded spans. The slice is owned by the recorder and
// valid until its Reset.
func (c *Ctx) Spans() []Span { return c.spans }

// Duration returns the sum of all recorded span durations, which by the
// telescoping invariant equals EndAt minus Start exactly.
func (c *Ctx) Duration() sim.Duration { return c.cursor.Sub(c.start) }

// ByCause returns the per-cause span-duration totals.
func (c *Ctx) ByCause() [NumCauses]sim.Duration {
	var out [NumCauses]sim.Duration
	for _, s := range c.spans {
		out[s.Cause] += s.End.Sub(s.Start)
	}
	return out
}

// Record appends a span at where covering [cursor, until) and advances the
// cursor to until. Zero-length spans are skipped (the cursor still moves);
// an until before the cursor is ignored — time never rewinds.
func (c *Ctx) Record(where string, cause Cause, until sim.Time) {
	if c == nil || until <= c.cursor {
		return
	}
	c.spans = append(c.spans, Span{Where: where, Cause: cause, Start: c.cursor, End: until})
	c.cursor = until
}

// Finish closes the trace with the given terminal kind at its current cursor
// and hands it to the recorder's finished list. Finishing an already-finished
// or nil context is a no-op, so terminal points can finish unconditionally.
func (c *Ctx) Finish(end End) {
	if c == nil || c.end != EndNone {
		return
	}
	c.end = end
	c.rec.done = append(c.rec.done, c)
}

// Recorder owns trace contexts for one simulation run. It is not safe for
// concurrent use — like the Scheduler, one recorder belongs to one
// simulation goroutine.
type Recorder struct {
	// Every samples one trace per Every eligible starts (1 = every message).
	// The stride is counter-based, not random, so installing a recorder
	// cannot perturb the run's RNG stream.
	every int
	// maxTraces caps the total contexts created (starts plus forks).
	maxTraces int

	counter uint64
	nextID  uint64
	created int
	// forkSeq[id] is the last fork ordinal issued for trace id, so sibling
	// forks get distinct ordinals (IDs are dense and cap-bounded).
	forkSeq []int

	free []*Ctx
	done []*Ctx
}

// NewRecorder creates a recorder sampling one in every starts, with at most
// maxTraces total contexts (forks included).
func NewRecorder(every, maxTraces int) *Recorder {
	if every < 1 {
		every = 1
	}
	if maxTraces < 1 {
		maxTraces = 1
	}
	return &Recorder{every: every, maxTraces: maxTraces}
}

// alloc takes a pooled context or makes one, counting it against the cap.
func (r *Recorder) alloc() *Ctx {
	if r.created >= r.maxTraces {
		return nil
	}
	r.created++
	if n := len(r.free); n > 0 {
		c := r.free[n-1]
		r.free = r.free[:n-1]
		return c
	}
	return &Ctx{rec: r, spans: make([]Span, 0, 16)}
}

// Start begins a new trace at the given instant if this start is sampled and
// capacity remains; otherwise it returns nil (and the message goes
// untraced).
func (r *Recorder) Start(at sim.Time) *Ctx {
	if r == nil {
		return nil
	}
	r.counter++
	if (r.counter-1)%uint64(r.every) != 0 {
		return nil
	}
	c := r.alloc()
	if c == nil {
		return nil
	}
	r.nextID++
	c.ID = r.nextID
	c.Fork = 0
	c.start, c.cursor = at, at
	c.end = EndNone
	c.spans = c.spans[:0]
	return c
}

// ForkOf clones a context for a replicated frame: the fork inherits the
// parent's spans and cursor and records independently from there. It returns
// nil when the parent is nil or the recorder is at capacity.
func ForkOf(parent *Ctx) *Ctx {
	if parent == nil {
		return nil
	}
	r := parent.rec
	c := r.alloc()
	if c == nil {
		return nil
	}
	c.ID = parent.ID
	for uint64(len(r.forkSeq)) <= parent.ID {
		r.forkSeq = append(r.forkSeq, 0)
	}
	r.forkSeq[parent.ID]++
	c.Fork = r.forkSeq[parent.ID]
	c.start, c.cursor = parent.start, parent.cursor
	c.end = EndNone
	c.spans = append(c.spans[:0], parent.spans...)
	return c
}

// Done returns the finished traces in finish order (deterministic: finish
// order is event order).
func (r *Recorder) Done() []*Ctx {
	if r == nil {
		return nil
	}
	return r.done
}

// Created returns the number of contexts created so far (starts + forks).
func (r *Recorder) Created() int {
	if r == nil {
		return 0
	}
	return r.created
}

// Reset recycles every finished context and clears the sampling counters, so
// one recorder serves many replications without re-allocating.
func (r *Recorder) Reset() {
	for _, c := range r.done {
		c.end = EndNone
		r.free = append(r.free, c)
	}
	r.done = r.done[:0]
	r.forkSeq = r.forkSeq[:0]
	r.counter, r.nextID = 0, 0
	r.created = 0
}
