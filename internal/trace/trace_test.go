package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tradenet/internal/sim"
)

func us(n int64) sim.Time { return sim.Time(n * int64(sim.Microsecond)) }

func TestTelescopingSpans(t *testing.T) {
	r := NewRecorder(1, 16)
	c := r.Start(us(10))
	c.Record("nic", CauseSerialization, us(11))
	c.Record("wire", CausePropagation, us(12))
	c.Record("sw", CauseSwitching, us(15))
	c.Record("host", CauseSoftware, us(20))
	c.Finish(EndAccepted)

	if got, want := c.Duration(), us(20).Sub(us(10)); got != want {
		t.Fatalf("Duration() = %v, want %v", got, want)
	}
	var sum sim.Duration
	for _, v := range c.ByCause() {
		sum += v
	}
	if sum != c.Duration() {
		t.Fatalf("ByCause sums to %v, Duration is %v — telescoping invariant broken", sum, c.Duration())
	}
	spans := c.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start != spans[i-1].End {
			t.Fatalf("span %d starts at %v, previous ends at %v — gap", i, spans[i].Start, spans[i-1].End)
		}
	}
	if c.Terminal() != EndAccepted {
		t.Fatalf("Terminal() = %v, want accepted", c.Terminal())
	}
}

func TestRecordIgnoresRewindsAndZeroSpans(t *testing.T) {
	r := NewRecorder(1, 4)
	c := r.Start(us(5))
	c.Record("a", CauseSoftware, us(5)) // zero-length: skipped
	c.Record("b", CauseSoftware, us(4)) // rewind: ignored
	if len(c.Spans()) != 0 {
		t.Fatalf("got %d spans, want 0", len(c.Spans()))
	}
	c.Record("c", CauseSoftware, us(6))
	if len(c.Spans()) != 1 || c.Duration() != us(6).Sub(us(5)) {
		t.Fatalf("spans=%d dur=%v after valid record", len(c.Spans()), c.Duration())
	}

	// Nil context: every method is a no-op, not a panic.
	var nilCtx *Ctx
	nilCtx.Record("x", CauseSoftware, us(9))
	nilCtx.Finish(EndConsumed)
}

func TestSamplingStride(t *testing.T) {
	r := NewRecorder(3, 100)
	var started int
	for i := 0; i < 9; i++ {
		if c := r.Start(us(int64(i))); c != nil {
			started++
			c.Finish(EndConsumed)
		}
	}
	if started != 3 {
		t.Fatalf("every=3 over 9 starts traced %d, want 3", started)
	}
	if r.Created() != 3 {
		t.Fatalf("Created() = %d, want 3", r.Created())
	}
}

func TestCapCountsForks(t *testing.T) {
	r := NewRecorder(1, 3)
	c := r.Start(us(1))
	f1 := ForkOf(c)
	f2 := ForkOf(c)
	if c == nil || f1 == nil || f2 == nil {
		t.Fatal("expected 3 contexts within cap")
	}
	if ForkOf(c) != nil {
		t.Fatal("fork beyond cap should return nil")
	}
	if r.Start(us(2)) != nil {
		t.Fatal("start beyond cap should return nil")
	}
	if f1.Fork == f2.Fork || f1.Fork == 0 || f2.Fork == 0 {
		t.Fatalf("sibling forks got ordinals %d and %d — must be distinct and nonzero", f1.Fork, f2.Fork)
	}
	if f1.ID != c.ID || f2.ID != c.ID {
		t.Fatal("forks must keep the parent's trace ID")
	}
}

func TestForkInheritsSpansThenDiverges(t *testing.T) {
	r := NewRecorder(1, 8)
	c := r.Start(us(0))
	c.Record("shared", CauseSwitching, us(2))
	f := ForkOf(c)
	f.Record("branch", CausePropagation, us(5))
	c.Record("trunk", CauseSoftware, us(3))
	if len(c.Spans()) != 2 || len(f.Spans()) != 2 {
		t.Fatalf("spans: trunk %d, branch %d; want 2 and 2", len(c.Spans()), len(f.Spans()))
	}
	if f.Spans()[0].Where != "shared" || f.Spans()[1].Where != "branch" {
		t.Fatalf("fork spans = %+v", f.Spans())
	}
	if c.Duration() != us(3).Sub(us(0)) || f.Duration() != us(5).Sub(us(0)) {
		t.Fatalf("durations trunk=%v branch=%v", c.Duration(), f.Duration())
	}
}

func TestFinishIdempotentAndDoneOrder(t *testing.T) {
	r := NewRecorder(1, 8)
	a := r.Start(us(1))
	b := r.Start(us(2))
	b.Finish(EndDropped)
	a.Finish(EndAccepted)
	a.Finish(EndConsumed) // second finish: ignored
	done := r.Done()
	if len(done) != 2 {
		t.Fatalf("Done() has %d traces, want 2", len(done))
	}
	if done[0] != b || done[1] != a {
		t.Fatal("Done() must preserve finish order")
	}
	if a.Terminal() != EndAccepted {
		t.Fatalf("second Finish overwrote terminal: %v", a.Terminal())
	}
}

func TestResetRecyclesContexts(t *testing.T) {
	r := NewRecorder(1, 2)
	a := r.Start(us(1))
	a.Record("x", CauseSoftware, us(2))
	a.Finish(EndConsumed)
	r.Reset()
	if r.Created() != 0 || len(r.Done()) != 0 {
		t.Fatal("Reset must clear created count and done list")
	}
	b := r.Start(us(10))
	if b != a {
		t.Fatal("Reset must recycle finished contexts through the free list")
	}
	if len(b.Spans()) != 0 || b.Terminal() != EndNone || b.Start() != us(10) {
		t.Fatalf("recycled context not clean: spans=%d end=%v start=%v", len(b.Spans()), b.Terminal(), b.Start())
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Start(us(1)) != nil {
		t.Fatal("nil recorder must not start traces")
	}
	if r.Created() != 0 || r.Done() != nil {
		t.Fatal("nil recorder accessors must return zero values")
	}
}

func TestWriteChromeDeterministicAndParsable(t *testing.T) {
	build := func() []*Ctx {
		r := NewRecorder(1, 8)
		c := r.Start(us(0))
		c.Record("EXCH-md0", CauseSerialization, sim.Time(1500*sim.Nanosecond))
		c.Record("leaf0", CauseSwitching, us(2))
		f := ForkOf(c)
		f.Record("strat1", CauseSoftware, us(4))
		f.Finish(EndConsumed)
		c.Record("strat0", CauseSoftware, us(3))
		c.Finish(EndAccepted)
		return r.Done()
	}

	var first, second bytes.Buffer
	if err := WriteChrome(&first, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&second, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("two identical trace sets rendered different bytes")
	}

	var events []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Tid  uint64  `json:"tid"`
		Args struct {
			Trace uint64 `json:"trace"`
			Fork  int    `json:"fork"`
			End   string `json:"end"`
		} `json:"args"`
	}
	if err := json.Unmarshal(first.Bytes(), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, first.String())
	}
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6 (fork: 2 inherited + 1 own; trunk: 3)", len(events))
	}
	for _, e := range events {
		if e.Ph != "X" {
			t.Fatalf("event phase %q, want X", e.Ph)
		}
	}
	// Sub-µs precision must survive as an exact decimal fraction.
	if !strings.Contains(first.String(), `"dur":1.5`) {
		t.Fatalf("1.5 µs span not rendered exactly:\n%s", first.String())
	}
	// The fork finished first, so events 0–2 are its row and 3–5 the
	// trunk's; the two rows must not overlap.
	if events[0].Tid == events[3].Tid {
		t.Fatal("fork shares tid with trunk — rows would overlap")
	}
}
