package trace

import (
	"bufio"
	"io"
	"strconv"

	"tradenet/internal/sim"
)

// WriteChrome emits finished traces in the Chrome trace-event JSON array
// format (load in chrome://tracing or Perfetto). Each span becomes one
// complete ("X") event; spans of one trace share a tid (the trace ID plus
// fork ordinal scaled), so a message's hops line up on one row. Timestamps
// are virtual microseconds with sub-µs precision preserved as fractions.
//
// Output is deterministic: traces appear in finish order and spans in record
// order, with fixed number formatting — two runs from one seed produce
// byte-identical files (the determinism test enforces this).
func WriteChrome(w io.Writer, traces []*Ctx) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	first := true
	for _, c := range traces {
		tid := c.ID*1000 + uint64(c.Fork)
		for _, s := range c.spans {
			if !first {
				bw.WriteString(",\n")
			}
			first = false
			bw.WriteString(`{"name":`)
			bw.WriteString(strconv.Quote(s.Where))
			bw.WriteString(`,"cat":"`)
			bw.WriteString(s.Cause.String())
			bw.WriteString(`","ph":"X","ts":`)
			writeMicros(bw, sim.Duration(s.Start))
			bw.WriteString(`,"dur":`)
			writeMicros(bw, s.End.Sub(s.Start))
			bw.WriteString(`,"pid":1,"tid":`)
			bw.WriteString(strconv.FormatUint(tid, 10))
			bw.WriteString(`,"args":{"trace":`)
			bw.WriteString(strconv.FormatUint(c.ID, 10))
			bw.WriteString(`,"fork":`)
			bw.WriteString(strconv.Itoa(c.Fork))
			bw.WriteString(`,"end":"`)
			bw.WriteString(c.end.String())
			bw.WriteString(`"}}`)
		}
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// writeMicros renders a picosecond quantity as decimal microseconds with
// exact fixed-point formatting (no float rounding, so output is stable).
func writeMicros(bw *bufio.Writer, ps sim.Duration) {
	const psPerUs = 1_000_000
	whole := int64(ps) / psPerUs
	frac := int64(ps) % psPerUs
	if frac < 0 {
		frac = -frac
	}
	bw.WriteString(strconv.FormatInt(whole, 10))
	if frac != 0 {
		s := strconv.FormatInt(frac+psPerUs, 10) // "1xxxxxx": keeps leading zeros
		s = s[1:]
		for len(s) > 0 && s[len(s)-1] == '0' {
			s = s[:len(s)-1]
		}
		bw.WriteByte('.')
		bw.WriteString(s)
	}
}
