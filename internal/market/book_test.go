package market

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniverseInterning(t *testing.T) {
	u := NewUniverse()
	aapl := u.Add("AAPL", Equity, 0)
	spy := u.Add("SPY", ETF, 0)
	opt := u.Add("AAPL 240119C00150000", Option, aapl)
	if u.Add("AAPL", Equity, 0) != aapl {
		t.Fatal("re-adding ticker must return same id")
	}
	if u.Len() != 3 {
		t.Fatalf("len = %d", u.Len())
	}
	if id, ok := u.Lookup("SPY"); !ok || id != spy {
		t.Fatal("lookup failed")
	}
	if _, ok := u.Lookup("MISSING"); ok {
		t.Fatal("phantom lookup")
	}
	in := u.Get(opt)
	if in.Underlying != aapl || in.Class != Option {
		t.Fatalf("instrument = %+v", in)
	}
}

func TestSideAndPriceHelpers(t *testing.T) {
	if Buy.Opposite() != Sell || Sell.Opposite() != Buy {
		t.Fatal("Opposite broken")
	}
	if Buy.String() != "buy" || Sell.String() != "sell" {
		t.Fatal("Side.String broken")
	}
	if Price(1502500).Dollars() != "$150.2500" {
		t.Fatalf("Dollars = %s", Price(1502500).Dollars())
	}
	for _, c := range []InstrumentClass{Equity, ETF, Option, Future} {
		if c.String() == "unknown" {
			t.Fatal("class name missing")
		}
	}
}

func TestBookAddRestAndBBO(t *testing.T) {
	b := NewBook(1)
	var bboEvents []BBO
	b.OnBBOChange = func(q BBO) { bboEvents = append(bboEvents, q) }

	if fills := b.Add(Order{ID: 1, Side: Buy, Price: 1000000, Qty: 100}); len(fills) != 0 {
		t.Fatal("buy into empty book should rest")
	}
	b.Add(Order{ID: 2, Side: Sell, Price: 1000500, Qty: 200})
	bbo := b.BBO()
	if bbo.Bid != (Quote{1000000, 100}) || bbo.Ask != (Quote{1000500, 200}) {
		t.Fatalf("BBO = %+v", bbo)
	}
	if !bbo.Valid() {
		t.Fatal("two-sided BBO should be valid")
	}
	if len(bboEvents) != 2 {
		t.Fatalf("BBO events = %d, want 2", len(bboEvents))
	}
	// A deeper bid does not move the BBO: no event.
	b.Add(Order{ID: 3, Side: Buy, Price: 999900, Qty: 50})
	if len(bboEvents) != 2 {
		t.Fatal("non-BBO-affecting add fired event")
	}
	if b.Depth(Buy) != 2 || b.Depth(Sell) != 1 {
		t.Fatalf("depth = %d/%d", b.Depth(Buy), b.Depth(Sell))
	}
}

func TestBookMatchingPriceTimePriority(t *testing.T) {
	b := NewBook(1)
	b.Add(Order{ID: 1, Side: Sell, Price: 1000, Qty: 100}) // first at 1000
	b.Add(Order{ID: 2, Side: Sell, Price: 1000, Qty: 100}) // second at 1000
	b.Add(Order{ID: 3, Side: Sell, Price: 999, Qty: 50})   // better price

	fills := b.Add(Order{ID: 10, Side: Buy, Price: 1000, Qty: 180})
	if len(fills) != 3 {
		t.Fatalf("fills = %+v", fills)
	}
	// Price priority first (999), then time priority at 1000.
	if fills[0].Resting != 3 || fills[0].Price != 999 || fills[0].Qty != 50 {
		t.Fatalf("fill0 = %+v", fills[0])
	}
	if fills[1].Resting != 1 || fills[1].Qty != 100 {
		t.Fatalf("fill1 = %+v", fills[1])
	}
	if fills[2].Resting != 2 || fills[2].Qty != 30 {
		t.Fatalf("fill2 = %+v", fills[2])
	}
	// Order 2 has 70 left at the ask.
	if bbo := b.BBO(); bbo.Ask != (Quote{1000, 70}) || bbo.Bid.Size != 0 {
		t.Fatalf("BBO after sweep = %+v", bbo)
	}
	// Incoming fully exhausted: nothing rests on the buy side.
	if _, live := b.Lookup(10); live {
		t.Fatal("exhausted incoming order should not rest")
	}
}

func TestBookPartialRestAfterMatch(t *testing.T) {
	b := NewBook(1)
	b.Add(Order{ID: 1, Side: Sell, Price: 1000, Qty: 60})
	fills := b.Add(Order{ID: 2, Side: Buy, Price: 1001, Qty: 100})
	if len(fills) != 1 || fills[0].Qty != 60 || fills[0].Price != 1000 {
		t.Fatalf("fills = %+v", fills)
	}
	// Remainder rests at its limit price.
	o, live := b.Lookup(2)
	if !live || o.Qty != 40 || o.Price != 1001 {
		t.Fatalf("remainder = %+v live=%v", o, live)
	}
	if b.BBO().Bid != (Quote{1001, 40}) {
		t.Fatalf("BBO = %+v", b.BBO())
	}
}

func TestBookCancelSemanticsIncludingRace(t *testing.T) {
	b := NewBook(1)
	b.Add(Order{ID: 1, Side: Buy, Price: 1000, Qty: 100})
	if !b.Cancel(1) {
		t.Fatal("cancel of live order failed")
	}
	if b.Cancel(1) {
		t.Fatal("double cancel should fail")
	}
	// Cancel-vs-fill race (§2): order fills, then cancel arrives.
	b.Add(Order{ID: 2, Side: Buy, Price: 1000, Qty: 100})
	b.Add(Order{ID: 3, Side: Sell, Price: 1000, Qty: 100}) // fills 2
	if b.Cancel(2) {
		t.Fatal("cancel after full fill should report dead order")
	}
	if b.Orders() != 0 || b.Depth(Buy) != 0 || b.Depth(Sell) != 0 {
		t.Fatal("book should be empty")
	}
}

func TestBookModify(t *testing.T) {
	b := NewBook(1)
	b.Add(Order{ID: 1, Side: Buy, Price: 1000, Qty: 100})
	b.Add(Order{ID: 2, Side: Buy, Price: 1000, Qty: 100})

	// Size decrease keeps priority.
	if _, ok := b.Modify(1, 1000, 50); !ok {
		t.Fatal("modify failed")
	}
	b.Add(Order{ID: 3, Side: Sell, Price: 1000, Qty: 10})
	// Order 1 kept time priority, so it trades first.
	o, _ := b.Lookup(1)
	if o.Qty != 40 {
		t.Fatalf("order1 qty = %d, want 40 (kept priority)", o.Qty)
	}

	// Price change loses priority and can trade on re-entry.
	b2 := NewBook(1)
	b2.Add(Order{ID: 1, Side: Sell, Price: 1005, Qty: 100})
	b2.Add(Order{ID: 2, Side: Buy, Price: 1000, Qty: 100})
	fills, ok := b2.Modify(2, 1005, 100) // reprice the bid up to the ask
	if !ok || len(fills) != 1 || fills[0].Price != 1005 {
		t.Fatalf("modify-to-cross fills = %+v ok=%v", fills, ok)
	}

	// Modify to zero qty cancels.
	b3 := NewBook(1)
	b3.Add(Order{ID: 9, Side: Buy, Price: 1000, Qty: 10})
	if _, ok := b3.Modify(9, 1000, 0); !ok {
		t.Fatal("modify-to-zero failed")
	}
	if _, live := b3.Lookup(9); live {
		t.Fatal("order should be gone")
	}
	// Modify of unknown order reports not-live.
	if _, ok := b3.Modify(404, 1, 1); ok {
		t.Fatal("modify of unknown order should fail")
	}
}

func TestBookRejectsDuplicateAndNonPositive(t *testing.T) {
	b := NewBook(1)
	b.Add(Order{ID: 1, Side: Buy, Price: 1000, Qty: 100})
	if fills := b.Add(Order{ID: 1, Side: Buy, Price: 2000, Qty: 5}); fills != nil {
		t.Fatal("duplicate id should be ignored")
	}
	o, _ := b.Lookup(1)
	if o.Price != 1000 {
		t.Fatal("duplicate add mutated original")
	}
	b.Add(Order{ID: 2, Side: Sell, Price: 1000, Qty: 0})
	if b.Orders() != 1 {
		t.Fatal("zero-qty order should be ignored")
	}
}

// Property: conservation — total quantity added equals resting + filled,
// and the book never holds a crossed state after an operation completes.
func TestBookConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBook(1)
		var added, filled Qty
		for i := 0; i < 300; i++ {
			id := OrderID(i + 1)
			switch rng.Intn(10) {
			case 0, 1: // cancel a random earlier id
				b.Cancel(OrderID(rng.Intn(i + 1)))
			case 2: // modify
				b.Modify(OrderID(rng.Intn(i+1)), Price(990+rng.Intn(20)), Qty(rng.Intn(50)))
				// modifies change resting qty; recompute below from scratch
			default:
				q := Qty(1 + rng.Intn(100))
				o := Order{ID: id, Side: Side(rng.Intn(2)), Price: Price(990 + rng.Intn(20)), Qty: q}
				added += q
				for _, fl := range b.Add(o) {
					filled += fl.Qty
				}
			}
			bbo := b.BBO()
			if bbo.Bid.Size > 0 && bbo.Ask.Size > 0 && bbo.Bid.Price >= bbo.Ask.Price {
				return false // book internally locked/crossed: impossible
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNBBOBestAndState(t *testing.T) {
	n := NewNBBO()
	var transitions []MarketState
	n.OnStateChange = func(_, new MarketState) { transitions = append(transitions, new) }

	n.Update(1, BBO{Bid: Quote{1000, 100}, Ask: Quote{1010, 100}})
	n.Update(2, BBO{Bid: Quote{1005, 50}, Ask: Quote{1015, 50}})
	bid, bidEx, ask, askEx := n.Best()
	if bid.Price != 1005 || bidEx != 2 || ask.Price != 1010 || askEx != 1 {
		t.Fatalf("best = %v@%d / %v@%d", bid, bidEx, ask, askEx)
	}
	if n.State() != MarketNormal {
		t.Fatalf("state = %v", n.State())
	}

	// Exchange 2 bids 1010: equals exchange 1's ask → locked.
	if st := n.Update(2, BBO{Bid: Quote{1010, 50}, Ask: Quote{1015, 50}}); st != MarketLocked {
		t.Fatalf("state = %v, want locked", st)
	}
	// Exchange 2 bids 1012 → crossed.
	if st := n.Update(2, BBO{Bid: Quote{1012, 50}, Ask: Quote{1015, 50}}); st != MarketCrossed {
		t.Fatalf("state = %v, want crossed", st)
	}
	// Back to normal.
	n.Update(2, BBO{Bid: Quote{1005, 50}, Ask: Quote{1015, 50}})
	want := []MarketState{MarketLocked, MarketCrossed, MarketNormal}
	if len(transitions) != 3 {
		t.Fatalf("transitions = %v", transitions)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
	if n.Exchanges() != 2 {
		t.Fatalf("exchanges = %d", n.Exchanges())
	}
}

func TestNBBOSingleExchangeCannotLockItself(t *testing.T) {
	n := NewNBBO()
	// One exchange reporting bid == ask is a data artifact, not a locked
	// market; matching would have cleared it.
	n.Update(1, BBO{Bid: Quote{1000, 10}, Ask: Quote{1000, 10}})
	if n.State() != MarketNormal {
		t.Fatalf("state = %v", n.State())
	}
}

func TestNBBOOneSidedQuotes(t *testing.T) {
	n := NewNBBO()
	n.Update(1, BBO{Bid: Quote{1000, 10}})
	if n.State() != MarketNormal {
		t.Fatal("one-sided market is normal")
	}
	bid, _, ask, _ := n.Best()
	if bid.Size != 10 || ask.Size != 0 {
		t.Fatalf("best = %v / %v", bid, ask)
	}
}

func TestWouldLockOrCross(t *testing.T) {
	n := NewNBBO()
	n.Update(1, BBO{Bid: Quote{1000, 10}, Ask: Quote{1010, 10}})
	// Posting a bid at 1010 on exchange 2 would lock exchange 1's ask.
	if !n.WouldLockOrCross(2, Buy, 1010) {
		t.Fatal("lock not detected")
	}
	if !n.WouldLockOrCross(2, Buy, 1011) {
		t.Fatal("cross not detected")
	}
	if n.WouldLockOrCross(2, Buy, 1009) {
		t.Fatal("false positive")
	}
	// Same price on the *same* exchange is that exchange's matching problem.
	if n.WouldLockOrCross(1, Buy, 1010) {
		t.Fatal("self-exchange should not count")
	}
	if !n.WouldLockOrCross(2, Sell, 1000) || n.WouldLockOrCross(2, Sell, 1001) {
		t.Fatal("sell-side lock detection wrong")
	}
}

func TestWouldTradeThrough(t *testing.T) {
	n := NewNBBO()
	n.Update(1, BBO{Bid: Quote{1000, 10}, Ask: Quote{1010, 10}})
	// Buying at 1012 on exchange 2 trades through exchange 1's 1010 ask.
	if !n.WouldTradeThrough(2, Buy, 1012) {
		t.Fatal("buy trade-through not detected")
	}
	if n.WouldTradeThrough(2, Buy, 1010) {
		t.Fatal("executing at the best price is not a trade-through")
	}
	if !n.WouldTradeThrough(2, Sell, 998) {
		t.Fatal("sell trade-through not detected")
	}
	if s := MarketLocked.String() + MarketCrossed.String() + MarketNormal.String(); s == "" {
		t.Fatal("state names")
	}
}

func BenchmarkBookAddCancelChurn(b *testing.B) {
	book := NewBook(1)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := OrderID(i)
		book.Add(Order{ID: id, Side: Side(i % 2), Price: Price(9990 + rng.Intn(20)), Qty: 100})
		if i%2 == 1 {
			book.Cancel(id - 1)
		}
	}
}

func TestBookLevels(t *testing.T) {
	b := NewBook(1)
	b.Add(Order{ID: 1, Side: Buy, Price: 1000, Qty: 100})
	b.Add(Order{ID: 2, Side: Buy, Price: 1000, Qty: 50})
	b.Add(Order{ID: 3, Side: Buy, Price: 990, Qty: 200})
	b.Add(Order{ID: 4, Side: Sell, Price: 1010, Qty: 75})

	bids := b.Levels(Buy, 10)
	if len(bids) != 2 {
		t.Fatalf("bid levels = %d", len(bids))
	}
	if bids[0] != (Level{Price: 1000, Size: 150, Orders: 2}) {
		t.Fatalf("top bid level = %+v", bids[0])
	}
	if bids[1] != (Level{Price: 990, Size: 200, Orders: 1}) {
		t.Fatalf("second bid level = %+v", bids[1])
	}
	// n caps the depth.
	if got := b.Levels(Buy, 1); len(got) != 1 || got[0].Price != 1000 {
		t.Fatalf("capped levels = %+v", got)
	}
	asks := b.Levels(Sell, 10)
	if len(asks) != 1 || asks[0].Size != 75 {
		t.Fatalf("ask levels = %+v", asks)
	}
	if empty := NewBook(2).Levels(Buy, 5); len(empty) != 0 {
		t.Fatal("empty book should have no levels")
	}
}

func BenchmarkNBBOUpdate(b *testing.B) {
	n := NewNBBO()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ex := ExchangeID(i % 16)
		p := Price(10000 + i%50)
		n.Update(ex, BBO{Bid: Quote{p - 1, 100}, Ask: Quote{p + 1, 100}})
	}
}
