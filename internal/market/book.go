package market

import "sort"

// level is one price level: a FIFO queue of resting orders.
type level struct {
	price  Price
	orders []*bookOrder // time priority: index 0 is oldest
	size   Qty          // sum of live order quantities
}

type bookOrder struct {
	Order
	lvl *level
}

// Book is a single-symbol limit order book with price-time priority
// matching — the core of the exchange substrate. It supports the order
// operations the paper lists for order-entry protocols (§2): enter, cancel,
// modify price/size; and produces the fills and BBO changes that feed the
// market-data publisher.
type Book struct {
	symbol SymbolID
	bids   []*level // sorted descending by price (best first)
	asks   []*level // sorted ascending by price (best first)
	orders map[OrderID]*bookOrder

	// OnBBOChange, if set, is invoked after any operation that moved the
	// best bid or offer (price or size). Figure 2(b) counts exactly these
	// events.
	OnBBOChange func(BBO)

	lastBBO BBO

	// Free lists: resting orders and price levels churn at feed rate
	// (add/cancel is the dominant message mix), so their storage is
	// recycled instead of re-allocated.
	freeOrders []*bookOrder
	freeLevels []*level

	// fills backs the slice Add returns; see Add.
	fills []Fill
}

func (b *Book) allocOrder() *bookOrder {
	if n := len(b.freeOrders); n > 0 {
		bo := b.freeOrders[n-1]
		b.freeOrders = b.freeOrders[:n-1]
		return bo
	}
	return &bookOrder{}
}

func (b *Book) freeOrder(bo *bookOrder) {
	bo.lvl = nil
	b.freeOrders = append(b.freeOrders, bo)
}

func (b *Book) allocLevel(p Price) *level {
	if n := len(b.freeLevels); n > 0 {
		l := b.freeLevels[n-1]
		b.freeLevels = b.freeLevels[:n-1]
		l.price, l.size = p, 0
		return l
	}
	return &level{price: p}
}

// NewBook returns an empty book for symbol.
func NewBook(symbol SymbolID) *Book {
	return &Book{symbol: symbol, orders: make(map[OrderID]*bookOrder)}
}

// Symbol returns the book's symbol.
func (b *Book) Symbol() SymbolID { return b.symbol }

// Orders returns the number of resting orders.
func (b *Book) Orders() int { return len(b.orders) }

func sideLevels(b *Book, s Side) *[]*level {
	if s == Buy {
		return &b.bids
	}
	return &b.asks
}

// better reports whether price p is more aggressive than q on side s.
func better(s Side, p, q Price) bool {
	if s == Buy {
		return p > q
	}
	return p < q
}

// crosses reports whether an order at price p on side s would trade with a
// resting order at price q on the opposite side.
func crosses(s Side, p, q Price) bool {
	if s == Buy {
		return p >= q
	}
	return p <= q
}

func (b *Book) findLevel(s Side, p Price, create bool) *level {
	lvls := sideLevels(b, s)
	i := sort.Search(len(*lvls), func(i int) bool {
		return !better(s, (*lvls)[i].price, p)
	})
	if i < len(*lvls) && (*lvls)[i].price == p {
		return (*lvls)[i]
	}
	if !create {
		return nil
	}
	l := b.allocLevel(p)
	*lvls = append(*lvls, nil)
	copy((*lvls)[i+1:], (*lvls)[i:])
	(*lvls)[i] = l
	return l
}

func (b *Book) removeLevelIfEmpty(s Side, l *level) {
	if l.size > 0 {
		return
	}
	lvls := sideLevels(b, s)
	for i, cand := range *lvls {
		if cand == l {
			copy((*lvls)[i:], (*lvls)[i+1:])
			(*lvls)[len(*lvls)-1] = nil
			*lvls = (*lvls)[:len(*lvls)-1]
			l.orders = l.orders[:0]
			b.freeLevels = append(b.freeLevels, l)
			return
		}
	}
}

// BBO returns the current best bid and offer.
func (b *Book) BBO() BBO {
	var out BBO
	if len(b.bids) > 0 {
		out.Bid = Quote{Price: b.bids[0].price, Size: b.bids[0].size}
	}
	if len(b.asks) > 0 {
		out.Ask = Quote{Price: b.asks[0].price, Size: b.asks[0].size}
	}
	return out
}

// Depth returns the number of price levels on side s.
func (b *Book) Depth(s Side) int { return len(*sideLevels(b, s)) }

func (b *Book) notifyIfBBOChanged() bool {
	now := b.BBO()
	if now == b.lastBBO {
		return false
	}
	b.lastBBO = now
	if b.OnBBOChange != nil {
		b.OnBBOChange(now)
	}
	return true
}

// Add enters a limit order. If it crosses resting liquidity it matches
// immediately (price-time priority, at the resting price); any remainder
// rests. It returns the fills generated, in execution order. The returned
// slice is reused by the next call to Add or Modify — callers that need
// the fills afterwards must copy them.
func (b *Book) Add(o Order) []Fill {
	if o.Qty <= 0 {
		return nil
	}
	if _, dup := b.orders[o.ID]; dup {
		return nil
	}
	fills := b.fills[:0]
	opp := sideLevels(b, o.Side.Opposite())
	for o.Qty > 0 && len(*opp) > 0 && crosses(o.Side, o.Price, (*opp)[0].price) {
		lvl := (*opp)[0]
		for o.Qty > 0 && len(lvl.orders) > 0 {
			rest := lvl.orders[0]
			qty := o.Qty
			if rest.Qty < qty {
				qty = rest.Qty
			}
			fills = append(fills, Fill{Resting: rest.ID, Incoming: o.ID, Price: lvl.price, Qty: qty})
			rest.Qty -= qty
			lvl.size -= qty
			o.Qty -= qty
			if rest.Qty == 0 {
				lvl.orders = lvl.orders[1:]
				delete(b.orders, rest.ID)
				b.freeOrder(rest)
			}
		}
		b.removeLevelIfEmpty(o.Side.Opposite(), lvl)
	}
	if o.Qty > 0 {
		lvl := b.findLevel(o.Side, o.Price, true)
		bo := b.allocOrder()
		bo.Order, bo.lvl = o, lvl
		lvl.orders = append(lvl.orders, bo)
		lvl.size += o.Qty
		b.orders[o.ID] = bo
	}
	b.fills = fills
	b.notifyIfBBOChanged()
	return fills
}

// Cancel removes a resting order. It reports whether the order was live —
// false models the cancel-vs-fill race in §2: the cancel arrived after the
// order had already traded.
func (b *Book) Cancel(id OrderID) bool {
	bo, ok := b.orders[id]
	if !ok {
		return false
	}
	lvl := bo.lvl
	for i, cand := range lvl.orders {
		if cand == bo {
			copy(lvl.orders[i:], lvl.orders[i+1:])
			lvl.orders[len(lvl.orders)-1] = nil
			lvl.orders = lvl.orders[:len(lvl.orders)-1]
			break
		}
	}
	lvl.size -= bo.Qty
	delete(b.orders, id)
	b.removeLevelIfEmpty(bo.Side, lvl)
	b.freeOrder(bo)
	b.notifyIfBBOChanged()
	return true
}

// Modify changes a resting order's price and/or quantity. Price changes and
// quantity increases lose time priority (the order is re-entered and may
// trade on arrival, exactly like exchange modify semantics); a pure quantity
// decrease keeps priority. It returns any fills from re-entry and whether
// the order was live.
func (b *Book) Modify(id OrderID, price Price, qty Qty) ([]Fill, bool) {
	bo, ok := b.orders[id]
	if !ok {
		return nil, false
	}
	if price == bo.Price && qty < bo.Qty && qty > 0 {
		bo.lvl.size -= bo.Qty - qty
		bo.Qty = qty
		b.notifyIfBBOChanged()
		return nil, true
	}
	sym, side := bo.Symbol, bo.Side
	b.Cancel(id)
	if qty <= 0 {
		return nil, true
	}
	fills := b.Add(Order{ID: id, Symbol: sym, Side: side, Price: price, Qty: qty})
	return fills, true
}

// Level is one aggregated price level in a depth snapshot.
type Level struct {
	Price  Price
	Size   Qty
	Orders int
}

// Levels returns up to n aggregated levels on side s, best first — the
// depth-of-book view strategies maintain from the feed.
func (b *Book) Levels(s Side, n int) []Level {
	lvls := *sideLevels(b, s)
	if n > len(lvls) {
		n = len(lvls)
	}
	out := make([]Level, 0, n)
	for _, l := range lvls[:n] {
		out = append(out, Level{Price: l.price, Size: l.size, Orders: len(l.orders)})
	}
	return out
}

// Lookup returns a copy of a resting order's current state.
func (b *Book) Lookup(id OrderID) (Order, bool) {
	bo, ok := b.orders[id]
	if !ok {
		return Order{}, false
	}
	return bo.Order, true
}
