// Package market models the financial objects that flow through a trading
// plant: symbols, instruments, limit orders, a price-time-priority matching
// book, per-exchange best bid/offer (BBO) tracking, and the national best
// bid/offer (NBBO) aggregation that §4.2's regulatory discussion (locked,
// crossed, and traded-through markets) depends on.
package market

import "fmt"

// SymbolID is an interned symbol identifier. Interning keeps hot-path
// structs free of strings.
type SymbolID uint32

// Side is the side of an order.
type Side uint8

// Order sides.
const (
	Buy Side = iota
	Sell
)

// String returns "buy" or "sell".
func (s Side) String() string {
	if s == Buy {
		return "buy"
	}
	return "sell"
}

// Opposite returns the other side.
func (s Side) Opposite() Side { return 1 - s }

// Price is a limit price in ten-thousandths of a dollar (10000 = $1.00).
// Integer prices keep book arithmetic exact.
type Price int64

// Dollars formats the price as a dollar string.
func (p Price) Dollars() string { return fmt.Sprintf("$%.4f", float64(p)/10000) }

// Qty is an order quantity in shares/contracts.
type Qty int64

// OrderID identifies an order within one exchange.
type OrderID uint64

// InstrumentClass distinguishes the asset classes the paper's exchanges
// partition by (§2: "some partition based on the type of instrument").
type InstrumentClass uint8

// Instrument classes.
const (
	Equity InstrumentClass = iota
	ETF
	Option
	Future
)

// String names the class.
func (c InstrumentClass) String() string {
	switch c {
	case Equity:
		return "equity"
	case ETF:
		return "etf"
	case Option:
		return "option"
	case Future:
		return "future"
	}
	return "unknown"
}

// Instrument describes one tradable product.
type Instrument struct {
	ID     SymbolID
	Ticker string
	Class  InstrumentClass
	// Underlying is the equity SymbolID an option or ETF references
	// (zero for equities). Correlated bursts across feeds (§2) arise
	// because instruments share underlyings.
	Underlying SymbolID
}

// Universe is an interning table of instruments.
type Universe struct {
	byTicker map[string]SymbolID
	list     []Instrument
}

// NewUniverse returns an empty instrument table.
func NewUniverse() *Universe {
	return &Universe{byTicker: make(map[string]SymbolID)}
}

// Add interns an instrument and returns its SymbolID. Adding an existing
// ticker returns the existing ID.
func (u *Universe) Add(ticker string, class InstrumentClass, underlying SymbolID) SymbolID {
	if id, ok := u.byTicker[ticker]; ok {
		return id
	}
	id := SymbolID(len(u.list) + 1)
	u.list = append(u.list, Instrument{ID: id, Ticker: ticker, Class: class, Underlying: underlying})
	u.byTicker[ticker] = id
	return id
}

// Lookup returns the SymbolID for ticker, if interned.
func (u *Universe) Lookup(ticker string) (SymbolID, bool) {
	id, ok := u.byTicker[ticker]
	return id, ok
}

// Get returns the instrument for id. It panics on an unknown id: the
// universe is constructed up front and an unknown id is a wiring bug.
func (u *Universe) Get(id SymbolID) Instrument {
	return u.list[int(id)-1]
}

// Len returns the number of interned instruments.
func (u *Universe) Len() int { return len(u.list) }

// All returns the instrument list. The caller must not modify it.
func (u *Universe) All() []Instrument { return u.list }

// Order is a resting or incoming limit order.
type Order struct {
	ID     OrderID
	Symbol SymbolID
	Side   Side
	Price  Price
	Qty    Qty
}

// Fill describes one execution: an incoming order matched against a resting
// order for qty at the resting order's price.
type Fill struct {
	Resting  OrderID
	Incoming OrderID
	Price    Price
	Qty      Qty
}

// Quote is one side's best price and total size at that price.
type Quote struct {
	Price Price
	Size  Qty
}

// BBO is an exchange's best bid and offer. A zero-size side means no
// liquidity on that side.
type BBO struct {
	Bid Quote
	Ask Quote
}

// Valid reports whether both sides are quoted.
func (b BBO) Valid() bool { return b.Bid.Size > 0 && b.Ask.Size > 0 }
