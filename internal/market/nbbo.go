package market

// ExchangeID identifies an exchange within the simulation.
type ExchangeID uint16

// MarketState classifies the cross-exchange quote condition for one symbol.
// §4.2: the SEC prohibits advertising prices that lock (a bid on one
// exchange equals the ask on another) or cross (a bid exceeds another
// exchange's ask), and prohibits trading through better advertised prices.
// Detecting these conditions requires aggregating quotes from every
// exchange, which is the paper's argument for broad internal communication.
type MarketState uint8

// Market states, in increasing severity.
const (
	MarketNormal MarketState = iota
	MarketLocked
	MarketCrossed
)

// String names the state.
func (s MarketState) String() string {
	switch s {
	case MarketNormal:
		return "normal"
	case MarketLocked:
		return "locked"
	case MarketCrossed:
		return "crossed"
	}
	return "unknown"
}

// NBBO aggregates per-exchange BBOs for one symbol into the national best
// bid and offer.
type NBBO struct {
	quotes map[ExchangeID]BBO

	// OnStateChange, if set, fires when the lock/cross condition changes.
	OnStateChange func(old, new MarketState)

	lastState MarketState
}

// NewNBBO returns an empty aggregation.
func NewNBBO() *NBBO {
	return &NBBO{quotes: make(map[ExchangeID]BBO)}
}

// Update records exchange ex's current BBO and returns the new market state.
func (n *NBBO) Update(ex ExchangeID, b BBO) MarketState {
	n.quotes[ex] = b
	st := n.State()
	if st != n.lastState {
		old := n.lastState
		n.lastState = st
		if n.OnStateChange != nil {
			n.OnStateChange(old, st)
		}
	}
	return st
}

// Best returns the national best bid and offer, with the exchanges that set
// them. Zero sizes indicate an unquoted side.
func (n *NBBO) Best() (bid Quote, bidEx ExchangeID, ask Quote, askEx ExchangeID) {
	for ex, b := range n.quotes {
		if b.Bid.Size > 0 && (bid.Size == 0 || b.Bid.Price > bid.Price ||
			(b.Bid.Price == bid.Price && ex < bidEx)) {
			bid, bidEx = b.Bid, ex
		}
		if b.Ask.Size > 0 && (ask.Size == 0 || b.Ask.Price < ask.Price ||
			(b.Ask.Price == ask.Price && ex < askEx)) {
			ask, askEx = b.Ask, ex
		}
	}
	return bid, bidEx, ask, askEx
}

// State classifies the current cross-exchange condition. Locked and crossed
// conditions only count across *different* exchanges: a single exchange's
// own book cannot lock itself (its matching engine would have traded).
func (n *NBBO) State() MarketState {
	bid, bidEx, ask, askEx := n.Best()
	if bid.Size == 0 || ask.Size == 0 {
		return MarketNormal
	}
	if bidEx == askEx {
		return MarketNormal
	}
	switch {
	case bid.Price > ask.Price:
		return MarketCrossed
	case bid.Price == ask.Price:
		return MarketLocked
	default:
		return MarketNormal
	}
}

// WouldLockOrCross reports whether posting a new quote on side s at price p
// on exchange ex would create a locked or crossed market against the other
// exchanges' current quotes — the check a compliant trading system must run
// before advertising a price (§4.2).
func (n *NBBO) WouldLockOrCross(ex ExchangeID, s Side, p Price) bool {
	for other, b := range n.quotes {
		if other == ex {
			continue
		}
		if s == Buy && b.Ask.Size > 0 && p >= b.Ask.Price {
			return true
		}
		if s == Sell && b.Bid.Size > 0 && p <= b.Bid.Price {
			return true
		}
	}
	return false
}

// WouldTradeThrough reports whether executing on exchange ex at price p on
// side s would trade through a better price advertised elsewhere.
func (n *NBBO) WouldTradeThrough(ex ExchangeID, s Side, p Price) bool {
	for other, b := range n.quotes {
		if other == ex {
			continue
		}
		// A buy executing at p trades through a cheaper ask elsewhere; a
		// sell executing at p trades through a higher bid elsewhere.
		if s == Buy && b.Ask.Size > 0 && b.Ask.Price < p {
			return true
		}
		if s == Sell && b.Bid.Size > 0 && b.Bid.Price > p {
			return true
		}
	}
	return false
}

// Exchanges returns the number of exchanges currently contributing quotes.
func (n *NBBO) Exchanges() int { return len(n.quotes) }
