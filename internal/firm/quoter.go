package firm

import (
	"tradenet/internal/feed"
	"tradenet/internal/market"
	"tradenet/internal/mcast"
	"tradenet/internal/netsim"
	"tradenet/internal/orderentry"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
)

// QuoterConfig parameterizes a market-making strategy.
type QuoterConfig struct {
	// Symbol is the single instrument this quoter makes markets in.
	Symbol market.SymbolID
	// HalfSpread is the distance from the reference price to each quote.
	HalfSpread market.Price
	// Size is the quoted size per side.
	Size market.Qty
	// DecisionLatency is the software cost from input event to the
	// repricing messages leaving.
	DecisionLatency sim.Duration
	// Subscriptions selects internal partitions (empty = all).
	Subscriptions []int
}

// Quoter is the repricing workload §2 singles out: "repricing orders as
// quickly as possible is also critical because exchanges will continue
// matching with an old order's price until it is updated, making trades
// that are no longer desired." It keeps a two-sided quote centered on the
// observed book and *modifies* its resting orders whenever the reference
// moves — so unlike the fire-once Strategy, it drives a continuous stream
// of modify traffic through gateways and the exchange.
type Quoter struct {
	cfg   QuoterConfig
	sched *sim.Scheduler
	u     *market.Universe
	host  *netsim.Host
	mdNIC *netsim.NIC
	oeNIC *netsim.NIC

	book    *market.Book
	reasm   map[uint8]*feed.Reassembler
	session *orderentry.ClientSession

	bidID, askID   uint64
	quotedMid      market.Price
	quoting        bool
	pendingReprice bool
	// ownExchIDs are the venue's ids for our resting orders (from acks):
	// the drop-copy linkage that keeps the reference book free of our own
	// quotes, so the quoter never chases itself.
	ownExchIDs map[uint64]bool

	// Stats.
	MsgsIn    uint64
	Reprices  uint64
	Fills     uint64
	StaleHits uint64 // fills received at a price we had already moved away from
}

// NewQuoter builds a market-maker host subscribed to the normalized feed.
func NewQuoter(sched *sim.Scheduler, u *market.Universe, name string, hostID uint32,
	outMap *mcast.Map, cfg QuoterConfig) *Quoter {
	if cfg.HalfSpread <= 0 || cfg.Size <= 0 || cfg.Symbol == 0 {
		panic("firm: quoter needs symbol, positive spread and size")
	}
	q := &Quoter{
		cfg:        cfg,
		sched:      sched,
		u:          u,
		book:       market.NewBook(cfg.Symbol),
		reasm:      make(map[uint8]*feed.Reassembler),
		ownExchIDs: make(map[uint64]bool),
	}
	q.host = netsim.NewHost(sched, name)
	q.mdNIC = q.host.AddNIC("md", hostID)
	q.oeNIC = q.host.AddNIC("oe", hostID+1)
	parts := cfg.Subscriptions
	if len(parts) == 0 {
		for i := 0; i < outMap.Partitioner().Partitions(); i++ {
			parts = append(parts, i)
		}
	}
	for _, i := range parts {
		q.mdNIC.Join(outMap.GroupByIndex(i))
		q.reasm[uint8(i)] = feed.NewReassembler(uint8(i))
	}
	q.mdNIC.OnFrame = q.onFrame
	return q
}

// MDNIC returns the market-data NIC.
func (q *Quoter) MDNIC() *netsim.NIC { return q.mdNIC }

// OENIC returns the order-entry NIC.
func (q *Quoter) OENIC() *netsim.NIC { return q.oeNIC }

// Session returns the order session (nil before ConnectGateway).
func (q *Quoter) Session() *orderentry.ClientSession { return q.session }

// ConnectGateway opens the quoter's order path (same shape as Strategy's).
func (q *Quoter) ConnectGateway(localPort uint16, gwAddr pkt.UDPAddr) {
	mux := netsim.NewStreamMux(q.oeNIC)
	stream := netsim.NewStream(q.oeNIC, localPort, gwAddr)
	mux.Register(stream)
	q.session = orderentry.NewClientSession(func(b []byte) { stream.Write(b) })
	stream.OnData = func(b []byte) { q.session.Receive(b) }
	q.session.OnExchangeID = func(_, exchID uint64) {
		q.ownExchIDs[exchID] = true
		// The feed's add may have raced ahead of the ack: evict it from the
		// reference book.
		q.book.Cancel(market.OrderID(exchID))
	}
	q.session.OnFill = func(id uint64, qty market.Qty, price market.Price, done bool) {
		q.Fills++
		// A fill at a price off our current quote means the old order
		// traded before the reprice landed — §2's stale-order cost.
		want := q.quotedMid - q.cfg.HalfSpread
		if id == q.askID {
			want = q.quotedMid + q.cfg.HalfSpread
		}
		if price != want {
			q.StaleHits++
		}
		if done {
			// Re-establish the missing side at the next reprice.
			q.quoting = false
		}
	}
	q.session.Logon()
}

func (q *Quoter) onFrame(_ *netsim.NIC, f *netsim.Frame) {
	// Fully consumed synchronously; the frame terminates here.
	defer f.Release()
	var uf pkt.UDPFrame
	if err := pkt.ParseUDPFrame(f.Data, &uf); err != nil {
		return
	}
	var h feed.UnitHeader
	if _, err := feed.DecodeUnitHeader(uf.Payload, &h); err != nil {
		return
	}
	r, ok := q.reasm[h.Unit]
	if !ok {
		return
	}
	r.Consume(uf.Payload, func(m *feed.Msg) {
		q.MsgsIn++
		q.apply(m)
	})
}

// apply updates the book view and schedules a reprice when the mid moved.
func (q *Quoter) apply(m *feed.Msg) {
	if q.ownExchIDs[m.OrderID] {
		// Our own order echoing back on the feed: not part of the
		// reference price.
		return
	}
	switch m.Type {
	case feed.MsgAddOrder:
		if id, ok := q.u.Lookup(m.SymbolString()); ok && id == q.cfg.Symbol {
			q.book.Add(market.Order{
				ID: market.OrderID(m.OrderID), Symbol: id, Side: m.Side,
				Price: market.Price(m.Price), Qty: market.Qty(m.Qty),
			})
		}
	case feed.MsgDeleteOrder:
		q.book.Cancel(market.OrderID(m.OrderID))
	case feed.MsgOrderExecuted, feed.MsgReduceSize:
		if o, ok := q.book.Lookup(market.OrderID(m.OrderID)); ok {
			rem := o.Qty - market.Qty(m.Qty)
			if rem < 0 {
				rem = 0
			}
			q.book.Modify(market.OrderID(m.OrderID), o.Price, rem)
		}
	case feed.MsgModifyOrder:
		if _, ok := q.book.Lookup(market.OrderID(m.OrderID)); ok {
			q.book.Modify(market.OrderID(m.OrderID), market.Price(m.Price), market.Qty(m.Qty))
		}
	}
	q.maybeReprice()
}

// mid returns the reference price: the book midpoint, or zero if one-sided.
func (q *Quoter) mid() market.Price {
	bbo := q.book.BBO()
	if bbo.Bid.Size == 0 || bbo.Ask.Size == 0 {
		return 0
	}
	return (bbo.Bid.Price + bbo.Ask.Price) / 2
}

func (q *Quoter) maybeReprice() {
	if q.session == nil || !q.session.LoggedOn() || q.pendingReprice {
		return
	}
	mid := q.mid()
	if mid == 0 || (q.quoting && mid == q.quotedMid) {
		return
	}
	q.pendingReprice = true
	q.sched.AfterArgs(q.cfg.DecisionLatency, sim.PrioDeliver, fireRepriceArgs, q, nil)
}

// fireRepriceArgs adapts the delayed reprice to the Scheduler's closure-free
// two-argument callback shape.
func fireRepriceArgs(a, _ any) {
	q := a.(*Quoter)
	q.pendingReprice = false
	q.reprice()
}

// reprice establishes or moves the two-sided quote to the current mid.
func (q *Quoter) reprice() {
	mid := q.mid()
	if mid == 0 || (q.quoting && mid == q.quotedMid) {
		return
	}
	bid := mid - q.cfg.HalfSpread
	ask := mid + q.cfg.HalfSpread
	q.Reprices++
	if !q.quoting {
		// Clear any surviving half of the previous quote before
		// re-establishing both sides (the other half died in a fill).
		if q.bidID != 0 {
			q.session.Cancel(q.bidID)
			q.session.Cancel(q.askID)
		}
		q.bidID = q.Reprices*2 + 1_000_000
		q.askID = q.Reprices*2 + 1_000_001
		q.session.NewOrder(q.bidID, q.cfg.Symbol, market.Buy, bid, q.cfg.Size)
		q.session.NewOrder(q.askID, q.cfg.Symbol, market.Sell, ask, q.cfg.Size)
		q.quoting = true
	} else {
		q.session.Modify(q.bidID, bid, q.cfg.Size)
		q.session.Modify(q.askID, ask, q.cfg.Size)
	}
	q.quotedMid = mid
}
