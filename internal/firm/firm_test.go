package firm

import (
	"testing"

	"tradenet/internal/exchange"
	"tradenet/internal/feed"
	"tradenet/internal/market"
	"tradenet/internal/mcast"
	"tradenet/internal/netsim"
	"tradenet/internal/sim"
	"tradenet/internal/units"
)

func testUniverse() *market.Universe {
	u := market.NewUniverse()
	u.Add("AAPL", market.Equity, 0)
	u.Add("MSFT", market.Equity, 0)
	u.Add("ZTS", market.Equity, 0)
	return u
}

// plant wires a complete single-exchange pipeline over direct links:
// exchange --md--> normalizer --normalized--> strategy --orders--> gateway
// --exchange protocol--> exchange.
type plant struct {
	sched *sim.Scheduler
	u     *market.Universe
	ex    *exchange.Exchange
	norm  *Normalizer
	strat *Strategy
	gw    *Gateway
}

func buildPlant(t *testing.T, normCfg NormalizerConfig, stratCfg StrategyConfig) *plant {
	t.Helper()
	p := &plant{sched: sim.NewScheduler(31), u: testUniverse()}

	rawMap := mcast.NewMap(mcast.NewPartitioner(p.u, mcast.ByAlpha, 0), mcast.NewAllocator(1))
	outMap := mcast.NewMap(mcast.NewPartitioner(p.u, mcast.ByHash, 8), mcast.NewAllocator(2))

	p.ex = exchange.New(p.sched, p.u, rawMap, exchange.Config{
		ID: 1, Name: "EXCH", Variant: feed.ExchangeB,
		MatchLatency: sim.Microsecond, HostID: 100,
	})
	p.norm = NewNormalizer(p.sched, p.u, "norm1", 200, feed.ExchangeB, rawMap, outMap, normCfg)
	p.strat = NewStrategy(p.sched, p.u, "strat1", 300, outMap, stratCfg)
	p.gw = NewGateway(p.sched, "gw1", 400, GatewayConfig{TranslateLatency: sim.Microsecond})

	link := func(a, b *netsim.NIC) { netsim.Connect(a.Port, b.Port, units.Rate10G, 200*sim.Nanosecond) }
	link(p.ex.MDNIC(), p.norm.RawNIC())
	link(p.norm.PubNIC(), p.strat.MDNIC())
	link(p.strat.OENIC(), p.gw.InNIC())
	link(p.gw.ExNIC(), p.ex.OENIC())
	return p
}

func TestNormalizerConvertsAndRepartitions(t *testing.T) {
	p := buildPlant(t, NormalizerConfig{ProcLatency: sim.Microsecond}, StrategyConfig{})
	// Drive raw feed without the matching engine.
	p.sched.At(0, func() {
		rng := p.sched.Rand()
		p.ex.PublishBurst(rng, 200)
	})
	p.sched.Run()
	if p.norm.MsgsIn != 200 {
		t.Fatalf("normalizer in = %d", p.norm.MsgsIn)
	}
	if p.norm.MsgsOut != 200 {
		t.Fatalf("normalizer out = %d", p.norm.MsgsOut)
	}
	// The strategy subscribed to all 8 internal partitions sees everything.
	if p.strat.MsgsIn != 200 {
		t.Fatalf("strategy in = %d", p.strat.MsgsIn)
	}
}

func TestNormalizerFilterDropsBeforeReencode(t *testing.T) {
	cfg := NormalizerConfig{
		ProcLatency: sim.Microsecond,
		Filter:      func(m *feed.Msg) bool { return m.Type == feed.MsgAddOrder },
	}
	p := buildPlant(t, cfg, StrategyConfig{})
	p.sched.At(0, func() { p.ex.PublishBurst(p.sched.Rand(), 300) })
	p.sched.Run()
	if p.norm.Filtered == 0 {
		t.Fatal("filter never fired")
	}
	if p.norm.MsgsOut+p.norm.Filtered != p.norm.MsgsIn {
		t.Fatalf("conservation: out %d + filtered %d != in %d",
			p.norm.MsgsOut, p.norm.Filtered, p.norm.MsgsIn)
	}
	if p.strat.MsgsIn != p.norm.MsgsOut {
		t.Fatalf("strategy saw %d, normalizer emitted %d", p.strat.MsgsIn, p.norm.MsgsOut)
	}
}

func TestStrategySubscriptionSubset(t *testing.T) {
	stratCfg := StrategyConfig{Subscriptions: []int{0, 1, 2}}
	p := buildPlant(t, NormalizerConfig{ProcLatency: sim.Microsecond}, stratCfg)
	p.sched.At(0, func() { p.ex.PublishBurst(p.sched.Rand(), 400) })
	p.sched.Run()
	if p.strat.MDNIC().Subscriptions() != 3 {
		t.Fatalf("subscriptions = %d", p.strat.MDNIC().Subscriptions())
	}
	if p.strat.MsgsIn == 0 || p.strat.MsgsIn >= p.norm.MsgsOut {
		t.Fatalf("subset subscriber saw %d of %d", p.strat.MsgsIn, p.norm.MsgsOut)
	}
	// NIC-level filtering did the discarding.
	if p.strat.MDNIC().Filtered == 0 {
		t.Fatal("expected NIC filtering of unjoined partitions")
	}
}

func TestEndToEndTickToTrade(t *testing.T) {
	p := buildPlant(t,
		NormalizerConfig{ProcLatency: sim.Microsecond},
		StrategyConfig{DecisionLatency: sim.Microsecond})

	// Wire the order path: strategy → gateway → exchange.
	exPortSess := func() uint16 {
		_, port := p.ex.AcceptSession(p.gw.ExNIC().Addr(41000))
		return port
	}()
	p.gw.ConnectExchange(41000, p.ex.OENIC().Addr(exPortSess))
	gwPort := p.gw.AcceptStrategy(p.strat.OENIC().Addr(42000))
	p.strat.ConnectGateway(42000, p.gw.InNIC().Addr(gwPort))

	// Let the logons complete, then move the market: a burst of adds, some
	// of which strictly improve a bid and trigger the strategy.
	p.sched.After(sim.Millisecond, func() {
		p.ex.PublishBurst(p.sched.Rand(), 50)
	})
	p.sched.Run()

	if !p.strat.Session().LoggedOn() {
		t.Fatal("strategy session not logged on")
	}
	if p.strat.OrdersSent == 0 {
		t.Fatal("strategy never fired")
	}
	if p.gw.Relayed == 0 {
		t.Fatal("gateway relayed nothing")
	}
	// The strategy's orders reached the real engine: acks flowed back and
	// the exchange book shows resting strategy orders.
	if p.gw.Responses == 0 {
		t.Fatal("no exchange responses relayed back")
	}
	// Decision latency was measured. Individual samples can be below the
	// configured 1 µs: the probe measures against the *most recent* input
	// (§2's definition), and during a burst newer messages land between
	// trigger and transmission. At least one quiet-period sample must show
	// the full decision cost.
	if len(p.strat.Probe.Samples) == 0 {
		t.Fatal("no latency samples")
	}
	for _, d := range p.strat.Probe.Samples {
		if d <= 0 {
			t.Fatalf("nonpositive decision latency %v", d)
		}
	}
}

func TestGatewayTranslatesIDsBothWays(t *testing.T) {
	// A never-firing trigger isolates the gateway from the strategy's own
	// reaction to its orders echoing back on the feed.
	neverFire := func(*feed.Msg, *market.Book) (market.Price, market.Qty, market.Side, bool) {
		return 0, 0, 0, false
	}
	p := buildPlant(t,
		NormalizerConfig{ProcLatency: sim.Microsecond},
		StrategyConfig{DecisionLatency: sim.Microsecond, Trigger: neverFire})
	_, exPort := p.ex.AcceptSession(p.gw.ExNIC().Addr(41000))
	p.gw.ConnectExchange(41000, p.ex.OENIC().Addr(exPort))
	gwPort := p.gw.AcceptStrategy(p.strat.OENIC().Addr(42000))
	p.strat.ConnectGateway(42000, p.gw.InNIC().Addr(gwPort))

	var acked []uint64
	p.sched.After(sim.Millisecond, func() {
		p.strat.Session().OnAck = func(id uint64) { acked = append(acked, id) }
		aapl, _ := p.u.Lookup("AAPL")
		p.strat.Session().NewOrder(7, aapl, market.Buy, 1000000, 10)
		p.strat.Session().NewOrder(8, aapl, market.Buy, 999000, 10)
	})
	p.sched.Run()
	if len(acked) != 2 || acked[0] != 7 || acked[1] != 8 {
		t.Fatalf("acked = %v (internal ids must round-trip)", acked)
	}
	// Cancel via the gateway: internal id 7 maps to the right exchange
	// order.
	var cancelOK bool
	p.sched.After(0, func() {
		p.strat.Session().OnCancelAck = func(id uint64) { cancelOK = id == 7 }
		p.strat.Session().Cancel(7)
	})
	p.sched.Run()
	if !cancelOK {
		t.Fatal("cancel id translation failed")
	}
	// Cancel of never-sent id is rejected locally by the gateway.
	var rejected bool
	p.sched.After(0, func() {
		p.strat.Session().OnCancelReject = func(id uint64) { rejected = id == 99 }
		p.strat.Session().Cancel(99)
	})
	p.sched.Run()
	if !rejected {
		t.Fatal("unknown cancel should be rejected")
	}
}

func TestNormalizerPreservesOriginTimestamps(t *testing.T) {
	p := buildPlant(t, NormalizerConfig{ProcLatency: 2 * sim.Microsecond}, StrategyConfig{})
	var origins []sim.Time
	var arrivals []sim.Time
	orig := p.strat.MDNIC().OnFrame
	p.strat.MDNIC().OnFrame = func(n *netsim.NIC, f *netsim.Frame) {
		origins = append(origins, f.Origin)
		arrivals = append(arrivals, p.sched.Now())
		orig(n, f)
	}
	// Publish away from t=0: a zero Origin is indistinguishable from
	// "unset" and would be restamped downstream.
	p.sched.After(sim.Millisecond, func() { p.ex.PublishBurst(p.sched.Rand(), 20) })
	p.sched.Run()
	if len(origins) == 0 {
		t.Fatal("nothing arrived")
	}
	for i := range origins {
		e2e := arrivals[i].Sub(origins[i])
		// End-to-end includes the 2µs normalizer hop: must exceed it.
		if e2e < 2*sim.Microsecond {
			t.Fatalf("end-to-end %v too small to include normalizer", e2e)
		}
		if e2e > 100*sim.Microsecond {
			t.Fatalf("end-to-end %v implausibly large", e2e)
		}
	}
}

func TestNormalizerFlushThresholdPacksMessages(t *testing.T) {
	// Threshold 4: four messages per normalized datagram (amortizing
	// headers, the §5 protocol discussion).
	cfgPacked := NormalizerConfig{ProcLatency: sim.Microsecond, FlushThreshold: 4}
	p := buildPlant(t, cfgPacked, StrategyConfig{})
	var dgrams int
	orig := p.strat.MDNIC().OnFrame
	p.strat.MDNIC().OnFrame = func(n *netsim.NIC, f *netsim.Frame) {
		dgrams++
		orig(n, f)
	}
	p.sched.At(0, func() { p.ex.PublishBurst(p.sched.Rand(), 64) })
	p.sched.Run()
	if p.strat.MsgsIn != 64 {
		t.Fatalf("strategy in = %d", p.strat.MsgsIn)
	}
	if dgrams >= 64 {
		t.Fatalf("datagrams = %d for 64 messages: packing ineffective", dgrams)
	}
}

func TestFirmAccessors(t *testing.T) {
	p := buildPlant(t, NormalizerConfig{}, StrategyConfig{})
	if p.norm.OutMap() == nil {
		t.Fatal("normalizer OutMap")
	}
	if p.gw.ExchangeSession() != nil {
		t.Fatal("exchange session should be nil before connect")
	}
	_, exPort := p.ex.AcceptSession(p.gw.ExNIC().Addr(41000))
	p.gw.ConnectExchange(41000, p.ex.OENIC().Addr(exPort))
	p.sched.Run()
	if p.gw.ExchangeSession() == nil || !p.gw.ExchangeSession().LoggedOn() {
		t.Fatal("exchange session after connect")
	}
}
