package firm

import (
	"testing"

	"tradenet/internal/device"
	"tradenet/internal/exchange"
	"tradenet/internal/feed"
	"tradenet/internal/market"
	"tradenet/internal/mcast"
	"tradenet/internal/netsim"
	"tradenet/internal/orderentry"
	"tradenet/internal/sim"
	"tradenet/internal/units"
)

// quoterPlant: exchange → normalizer → quoter, with the order path through
// a small ToR switch so a driver client can share the gateway:
//
//	quoter ─┐
//	driver ─┼─ swOE ─ gateway ─ exchange
type quoterPlant struct {
	sched  *sim.Scheduler
	u      *market.Universe
	ex     *exchange.Exchange
	norm   *Normalizer
	q      *Quoter
	gw     *Gateway
	driver *orderentry.ClientSession
}

func buildQuoterPlant(t *testing.T) *quoterPlant {
	t.Helper()
	p := &quoterPlant{sched: sim.NewScheduler(61), u: testUniverse()}
	rawMap := mcast.NewMap(mcast.NewPartitioner(p.u, mcast.ByAlpha, 0), mcast.NewAllocator(1))
	outMap := mcast.NewMap(mcast.NewPartitioner(p.u, mcast.ByHash, 8), mcast.NewAllocator(2))
	p.ex = exchange.New(p.sched, p.u, rawMap, exchange.Config{
		ID: 1, Name: "EXCH", Variant: feed.ExchangeB, MatchLatency: sim.Microsecond, HostID: 100,
	})
	p.norm = NewNormalizer(p.sched, p.u, "norm", 200, feed.ExchangeB, rawMap, outMap,
		NormalizerConfig{ProcLatency: sim.Microsecond})
	aapl, _ := p.u.Lookup("AAPL")
	p.q = NewQuoter(p.sched, p.u, "quoter", 300, outMap, QuoterConfig{
		Symbol: aapl, HalfSpread: 50, Size: 100, DecisionLatency: sim.Microsecond,
	})
	p.gw = NewGateway(p.sched, "gw", 400, GatewayConfig{TranslateLatency: sim.Microsecond})

	link := func(a, b *netsim.NIC) { netsim.Connect(a.Port, b.Port, units.Rate10G, 200*sim.Nanosecond) }
	link(p.ex.MDNIC(), p.norm.RawNIC())
	link(p.norm.PubNIC(), p.q.MDNIC())
	link(p.gw.ExNIC(), p.ex.OENIC())

	// Order-side ToR: quoter (port 0), driver (port 1), gateway (port 2).
	sw := device.NewCommoditySwitch(p.sched, "swOE", 3, device.DefaultCommodityConfig())
	drvHost := netsim.NewHost(p.sched, "driver")
	drvNIC := drvHost.AddNIC("oe", 500)
	netsim.Connect(sw.Port(0), p.q.OENIC().Port, units.Rate10G, 200*sim.Nanosecond)
	netsim.Connect(sw.Port(1), drvNIC.Port, units.Rate10G, 200*sim.Nanosecond)
	netsim.Connect(sw.Port(2), p.gw.InNIC().Port, units.Rate10G, 200*sim.Nanosecond)
	sw.Learn(p.q.OENIC().MAC, 0)
	sw.Learn(drvNIC.MAC, 1)
	sw.Learn(p.gw.InNIC().MAC, 2)

	_, exPort := p.ex.AcceptSession(p.gw.ExNIC().Addr(41000))
	p.gw.ConnectExchange(41000, p.ex.OENIC().Addr(exPort))
	gwPort := p.gw.AcceptStrategy(p.q.OENIC().Addr(42000))
	p.q.ConnectGateway(42000, p.gw.InNIC().Addr(gwPort))

	// Driver session through the same gateway.
	drvGwPort := p.gw.AcceptStrategy(drvNIC.Addr(43000))
	mux := netsim.NewStreamMux(drvNIC)
	ds := netsim.NewStream(drvNIC, 43000, p.gw.InNIC().Addr(drvGwPort))
	mux.Register(ds)
	p.driver = orderentry.NewClientSession(func(b []byte) { ds.Write(b) })
	ds.OnData = func(b []byte) { p.driver.Receive(b) }
	p.driver.Logon()
	return p
}

func TestQuoterEstablishesAndReprices(t *testing.T) {
	p := buildQuoterPlant(t)
	aapl, _ := p.u.Lookup("AAPL")

	p.sched.After(sim.Millisecond, func() {
		p.driver.NewOrder(1, aapl, market.Buy, 10000, 500)
		p.driver.NewOrder(2, aapl, market.Sell, 10100, 500)
	})
	// Improve the bid later: mid moves 10050 → 10070.
	p.sched.After(10*sim.Millisecond, func() {
		p.driver.NewOrder(3, aapl, market.Buy, 10040, 500)
	})
	p.sched.Run()

	if p.q.MsgsIn == 0 {
		t.Fatal("quoter saw no market data")
	}
	if p.q.Reprices < 2 {
		t.Fatalf("reprices = %d, want ≥2 (initial quote + move)", p.q.Reprices)
	}
	// After the move the mid is (10040+10100)/2 = 10070 → quotes 10020/10120.
	bid, ok := p.q.Session().Order(p.q.bidID)
	if !ok {
		t.Fatal("bid not resting")
	}
	if bid.Price != 10020 {
		t.Fatalf("bid price = %d, want 10020", bid.Price)
	}
	ask, ok := p.q.Session().Order(p.q.askID)
	if !ok {
		t.Fatal("ask not resting")
	}
	if ask.Price != 10120 {
		t.Fatalf("ask price = %d, want 10120", ask.Price)
	}
	// The exchange book holds driver orders + the quoter's two.
	if n := p.ex.Book(aapl).Orders(); n < 5 {
		t.Fatalf("exchange book orders = %d", n)
	}
	// The quoter's quotes never crossed the market: no fills expected here.
	if p.q.Fills != 0 {
		t.Fatalf("unexpected fills: %d", p.q.Fills)
	}
}

func TestQuoterStaleQuoteGetsHit(t *testing.T) {
	// §2's race: the market moves and an aggressor hits the quoter's stale
	// ask before the reprice lands at the exchange.
	p := buildQuoterPlant(t)
	aapl, _ := p.u.Lookup("AAPL")

	p.sched.After(sim.Millisecond, func() {
		p.driver.NewOrder(1, aapl, market.Buy, 10000, 500)
		p.driver.NewOrder(2, aapl, market.Sell, 10100, 500)
	})
	// The quoter quotes mid±50 = 10000/10100 — joining the driver's own
	// quotes, behind them in time priority. The aggressor buys through the
	// whole 10100 level (driver's 500 + quoter's 100), so the quoter's
	// resting ask is hit.
	p.sched.After(10*sim.Millisecond, func() {
		p.driver.NewOrder(4, aapl, market.Buy, 10100, 550)
	})
	p.sched.Run()
	if p.q.Fills == 0 {
		t.Fatal("aggressor should have hit the quoter's ask")
	}
}

func TestQuoterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid quoter config should panic")
		}
	}()
	NewQuoter(sim.NewScheduler(1), testUniverse(), "bad", 1, nil, QuoterConfig{})
}

func TestQuoterStaleHitAccounting(t *testing.T) {
	// The StaleHits counter: a fill at a price the quoter has already moved
	// away from counts as stale.
	p := buildQuoterPlant(t)
	aapl, _ := p.u.Lookup("AAPL")
	p.sched.After(sim.Millisecond, func() {
		p.driver.NewOrder(1, aapl, market.Buy, 10000, 500)
		p.driver.NewOrder(2, aapl, market.Sell, 10100, 500)
	})
	p.sched.After(10*sim.Millisecond, func() {
		p.driver.NewOrder(4, aapl, market.Buy, 10100, 550)
	})
	p.sched.Run()
	if p.q.Fills == 0 {
		t.Fatal("no fills")
	}
	// The aggressor swept the level while the quoter's view still priced
	// its ask there (mid unchanged until the fill publishes), so the fill
	// is at the *current* quote — not stale by the quoter's own accounting.
	// StaleHits therefore stays ≤ Fills; the invariant under test.
	if p.q.StaleHits > p.q.Fills {
		t.Fatalf("stale %d > fills %d", p.q.StaleHits, p.q.Fills)
	}
}
