package firm

import (
	"tradenet/internal/feed"
	"tradenet/internal/netsim"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
)

// Middlebox is the §3 "Implications" filtering appliance: a host that
// subscribes to feed groups, discards messages its clients don't want, and
// republishes the survivors on a dedicated group. Compared with filtering
// inside each trading process, a middlebox spends its discard CPU once for
// all downstream consumers: "when several systems employ the same
// partitioning scheme, middleboxes can be more efficient in terms of the
// number of cores used".
type Middlebox struct {
	sched *sim.Scheduler
	host  *netsim.Host
	inNIC *netsim.NIC
	out   *netsim.NIC

	// Keep decides which messages survive.
	Keep func(m *feed.Msg) bool
	// PerMsgCost is the CPU time spent examining one message (spent whether
	// or not the message survives — discarding costs too, which is the
	// crux of the placement decision).
	PerMsgCost sim.Duration

	outGroup pkt.IP4
	packer   *feed.Packer
	reasm    map[uint8]*feed.Reassembler
	ipID     uint16
	busy     sim.Time
	// flushQ holds the origins of flushes scheduled but not yet fired, in
	// schedule order. busy is monotonically non-decreasing, so the scheduler
	// fires the flush events in exactly this order — a FIFO queue lets the
	// closure-free callback recover each flush's origin without boxing a
	// sim.Time (a non-pointer) into any, which would allocate per event.
	flushQ []sim.Time

	// Stats.
	Examined  uint64
	Passed    uint64
	Discarded uint64
	// CPUTime is total processing time consumed — the "cores used" metric.
	CPUTime sim.Duration
}

// NewMiddlebox builds a filtering appliance. It joins every group of inMap
// on its ingress NIC and republishes survivors on outGroup (unit 0).
func NewMiddlebox(sched *sim.Scheduler, name string, hostID uint32,
	inGroups []pkt.IP4, outGroup pkt.IP4, keep func(*feed.Msg) bool, perMsg sim.Duration) *Middlebox {
	mb := &Middlebox{
		sched:      sched,
		Keep:       keep,
		PerMsgCost: perMsg,
		outGroup:   outGroup,
		packer:     feed.NewPacker(feed.Internal, 0),
		reasm:      make(map[uint8]*feed.Reassembler),
	}
	mb.host = netsim.NewHost(sched, name)
	mb.inNIC = mb.host.AddNIC("in", hostID)
	mb.out = mb.host.AddNIC("out", hostID+1)
	for _, g := range inGroups {
		mb.inNIC.Join(g)
	}
	mb.inNIC.OnFrame = mb.onFrame
	return mb
}

// InNIC returns the subscribing NIC.
func (mb *Middlebox) InNIC() *netsim.NIC { return mb.inNIC }

// OutNIC returns the republishing NIC.
func (mb *Middlebox) OutNIC() *netsim.NIC { return mb.out }

// OutGroup returns the filtered feed's group.
func (mb *Middlebox) OutGroup() pkt.IP4 { return mb.outGroup }

func (mb *Middlebox) onFrame(_ *netsim.NIC, f *netsim.Frame) {
	// Messages are re-encoded into the packer before this returns; the
	// frame terminates here.
	defer f.Release()
	var uf pkt.UDPFrame
	if err := pkt.ParseUDPFrame(f.Data, &uf); err != nil {
		return
	}
	var h feed.UnitHeader
	if _, err := feed.DecodeUnitHeader(uf.Payload, &h); err != nil {
		return
	}
	r, ok := mb.reasm[h.Unit]
	if !ok {
		r = feed.NewReassembler(h.Unit)
		mb.reasm[h.Unit] = r
	}
	// A single core serves the box: work queues behind earlier work.
	now := mb.sched.Now()
	if mb.busy < now {
		mb.busy = now
	}
	origin := f.Origin
	var kept int
	r.Consume(uf.Payload, func(m *feed.Msg) {
		mb.Examined++
		mb.busy = mb.busy.Add(mb.PerMsgCost)
		mb.CPUTime += mb.PerMsgCost
		if mb.Keep != nil && !mb.Keep(m) {
			mb.Discarded++
			return
		}
		mb.Passed++
		kept++
		if !mb.packer.Add(m) {
			// Output datagram full: emit it now and start another.
			mb.flush(origin)
			mb.packer.Add(m)
		}
	})
	if kept == 0 {
		return
	}
	mb.flushQ = append(mb.flushQ, origin)
	mb.sched.AtArgs(mb.busy, sim.PrioDeliver, flushHeadArgs, mb, nil)
}

// flushHeadArgs adapts the queued flush to the Scheduler's closure-free
// two-argument callback shape.
func flushHeadArgs(a, _ any) {
	mb := a.(*Middlebox)
	origin := mb.flushQ[0]
	if len(mb.flushQ) == 1 {
		mb.flushQ = mb.flushQ[:0] // reuse the backing array once drained
	} else {
		mb.flushQ = mb.flushQ[1:]
	}
	mb.flush(origin)
}

func (mb *Middlebox) flush(origin sim.Time) {
	dst := pkt.UDPAddr{MAC: pkt.MulticastMAC(mb.outGroup), IP: mb.outGroup, Port: NormalizedPort}
	src := mb.out.Addr(NormalizedPort)
	mb.packer.Flush(func(dgram []byte) {
		mb.ipID++
		fr := netsim.NewFrame()
		fr.Data = pkt.AppendUDPFrame(fr.Data, src, dst, mb.ipID, dgram)
		fr.Origin = origin
		mb.out.Send(fr)
	})
}

// FilterPlacement captures the §3 arithmetic for where to filter: given a
// feed of `rate` messages/s of which fraction `want` is useful, a consumer
// that filters in-process spends discardCost on every unwanted message plus
// processCost on wanted ones; with an upstream filter it spends only
// processCost on wanted ones, while the middlebox spends discardCost once
// for all `consumers`.
type FilterPlacement struct {
	Rate        float64 // messages/s on the raw feed
	Want        float64 // fraction useful to each consumer
	Consumers   int
	DiscardCost sim.Duration // per-message cost to inspect-and-drop
	ProcessCost sim.Duration // per-message cost to actually process
}

// InProcessCoresUsed returns the total CPU cores consumed when every
// consumer filters for itself.
func (fp FilterPlacement) InProcessCoresUsed() float64 {
	perConsumer := fp.Rate * ((1-fp.Want)*fp.DiscardCost.Seconds() + fp.Want*fp.ProcessCost.Seconds())
	return perConsumer * float64(fp.Consumers)
}

// MiddleboxCoresUsed returns the total CPU cores consumed with one upstream
// filter: the box inspects everything once, consumers process only wanted
// traffic.
func (fp FilterPlacement) MiddleboxCoresUsed() float64 {
	box := fp.Rate * fp.DiscardCost.Seconds()
	consumers := fp.Rate * fp.Want * fp.ProcessCost.Seconds() * float64(fp.Consumers)
	return box + consumers
}

// MiddleboxWins reports whether the middlebox placement uses fewer cores —
// the paper's rule of thumb: it wins once several systems share the same
// partitioning scheme.
func (fp FilterPlacement) MiddleboxWins() bool {
	return fp.MiddleboxCoresUsed() < fp.InProcessCoresUsed()
}
