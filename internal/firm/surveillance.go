package firm

import (
	"tradenet/internal/market"
)

// Surveillance is the firm-wide market-state aggregator §4.2 motivates:
// SEC rules prohibit advertising prices that lock or cross other exchanges'
// quotes, and trading through better prices advertised elsewhere — so a
// compliant firm must aggregate every exchange's quotes and gate outgoing
// orders against the national picture. This is the paper's argument for
// "broad internal communication": the surveillance function needs data from
// all markets, not just the one being traded.
type Surveillance struct {
	nbbo map[market.SymbolID]*market.NBBO

	// Stats.
	Updates        uint64
	GateChecks     uint64
	BlockedLock    uint64
	BlockedThrough uint64
	// StateChanges counts observed lock/cross transitions across the
	// whole market.
	StateChanges uint64
}

// NewSurveillance returns an empty aggregator.
func NewSurveillance() *Surveillance {
	return &Surveillance{nbbo: make(map[market.SymbolID]*market.NBBO)}
}

func (s *Surveillance) book(sym market.SymbolID) *market.NBBO {
	n, ok := s.nbbo[sym]
	if !ok {
		n = market.NewNBBO()
		n.OnStateChange = func(_, _ market.MarketState) { s.StateChanges++ }
		s.nbbo[sym] = n
	}
	return n
}

// Update records exchange ex's BBO for a symbol.
func (s *Surveillance) Update(ex market.ExchangeID, sym market.SymbolID, bbo market.BBO) {
	s.Updates++
	s.book(sym).Update(ex, bbo)
}

// NBBO returns the national best bid/offer for a symbol.
func (s *Surveillance) NBBO(sym market.SymbolID) (bid market.Quote, ask market.Quote) {
	b, _, a, _ := s.book(sym).Best()
	return b, a
}

// State returns the symbol's current lock/cross condition.
func (s *Surveillance) State(sym market.SymbolID) market.MarketState {
	return s.book(sym).State()
}

// GateReason classifies why an order was blocked.
type GateReason uint8

// Gate outcomes.
const (
	GateOK GateReason = iota
	GateWouldLockOrCross
	GateWouldTradeThrough
)

// String names the outcome.
func (g GateReason) String() string {
	switch g {
	case GateOK:
		return "ok"
	case GateWouldLockOrCross:
		return "would-lock-or-cross"
	case GateWouldTradeThrough:
		return "would-trade-through"
	}
	return "unknown"
}

// Gate checks an order about to be sent to exchange ex: a passive order
// must not lock or cross another market's quote; an aggressive
// (immediately-executable) order must not trade through a better price
// elsewhere.
func (s *Surveillance) Gate(ex market.ExchangeID, sym market.SymbolID, side market.Side, price market.Price) GateReason {
	s.GateChecks++
	n := s.book(sym)
	// Aggressive orders (crossing ex's own displayed quote) are checked
	// for trade-throughs; passive orders for lock/cross.
	if n.WouldTradeThrough(ex, side, price) {
		s.BlockedThrough++
		return GateWouldTradeThrough
	}
	if n.WouldLockOrCross(ex, side, price) {
		s.BlockedLock++
		return GateWouldLockOrCross
	}
	return GateOK
}

// Reprice returns the most aggressive compliant price at or behind the
// requested price for exchange ex, or ok=false if any price on that side
// would violate. Firms commonly "slide" orders to the compliant price
// rather than rejecting them outright.
func (s *Surveillance) Reprice(ex market.ExchangeID, sym market.SymbolID, side market.Side, price market.Price) (market.Price, bool) {
	n := s.book(sym)
	bid, _, ask, _ := n.Best()
	if side == market.Buy {
		if ask.Size == 0 || price < ask.Price {
			return price, true
		}
		// Slide to one tick below the national ask.
		p := ask.Price - 1
		if p <= 0 {
			return 0, false
		}
		return p, true
	}
	if bid.Size == 0 || price > bid.Price {
		return price, true
	}
	return bid.Price + 1, true
}
