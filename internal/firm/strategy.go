package firm

import (
	"tradenet/internal/capture"
	"tradenet/internal/feed"
	"tradenet/internal/market"
	"tradenet/internal/mcast"
	"tradenet/internal/netsim"
	"tradenet/internal/orderentry"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/trace"
)

// StrategyConfig parameterizes a strategy server.
type StrategyConfig struct {
	// DecisionLatency is the software cost from normalized message arrival
	// to order transmission when the strategy decides to act.
	DecisionLatency sim.Duration
	// Subscriptions selects which internal partitions this strategy
	// consumes ("some strategies only analyze a subset of the feed", §1).
	// Empty means all partitions.
	Subscriptions []int
	// Trigger decides whether a message prompts an order. If nil, the
	// strategy fires on every event that improves the best bid (a simple
	// join-the-bid strategy), pricing at the new best bid.
	Trigger func(m *feed.Msg, book *market.Book) (market.Price, market.Qty, market.Side, bool)
	// Gate, if set, screens (and may reprice) every outgoing order — the
	// §4.2 compliance hook, typically firm.Surveillance.Reprice bound to
	// the destination exchange. Returning ok=false suppresses the order.
	Gate func(sym market.SymbolID, side market.Side, price market.Price) (market.Price, bool)
	// PullOnGap cancels every working order when a sequence gap appears on
	// the normalized feed: a gap means missed liquidity events, so resting
	// quotes are priced against a book the strategy can no longer trust —
	// the stale-quote risk §2's loss discussion is really about.
	PullOnGap bool
}

// Strategy consumes the normalized feed, maintains books, and submits
// orders through a gateway session.
type Strategy struct {
	cfg   StrategyConfig
	sched *sim.Scheduler
	u     *market.Universe
	host  *netsim.Host
	mdNIC *netsim.NIC
	oeNIC *netsim.NIC

	books map[market.SymbolID]*market.Book
	reasm map[uint8]*feed.Reassembler
	// byOrder indexes live orders to the book holding them (exchange order
	// ids are unique across symbols), so delete/modify/execute messages —
	// which carry no symbol — resolve in O(1) instead of scanning the books
	// map, whose iteration order is randomized per run.
	byOrder map[uint64]*market.Book

	session *orderentry.ClientSession
	stream  *netsim.Stream
	oeMux   *netsim.StreamMux
	oePort  uint16
	nextOID uint64

	// res, when set, hardens the order path (resilience.go); halted gates
	// decision firing while the path is untrusted.
	res    *StrategyResilience
	halted bool
	// liveOrders tracks submitted order ids in submission order (only when
	// PullOnGap is set), so a pull cancels deterministically — never by
	// iterating the session's map.
	liveOrders []uint64

	// decFree pools pendingDecision values so the decision path schedules
	// allocation-free via AtArgs.
	decFree []*pendingDecision

	// rxTrace is the flight-recorder context stolen from the frame being
	// consumed; the first decision it triggers adopts it and carries it to
	// the outgoing order.
	rxTrace *trace.Ctx

	// Probe measures decision latency (order-out minus last md-in) using
	// frame origin timestamps — the §2 measurement.
	Probe capture.LatencyProbe
	// mdOrigins tracks the network origin time of the message that
	// triggered each decision, for end-to-end (tick-to-trade) latency.
	LastTriggerOrigin sim.Time

	// Stats.
	MsgsIn       uint64
	OrdersSent   uint64
	Fills        uint64
	Gated        uint64 // orders suppressed by the compliance gate
	Repriced     uint64 // orders the gate moved to a compliant price
	GapsSeen     uint64 // sequence gaps detected on the normalized feed
	QuotePulls   uint64 // gap-triggered pull events (PullOnGap)
	PulledOrders uint64 // cancels sent by those pulls
	// Resilience stats (resilience.go).
	Halts         uint64 // times quoting was halted on a degraded order path
	Resumes       uint64 // times quoting resumed
	HaltedOrders  uint64 // decisions suppressed while halted
	UnknownOrders uint64 // orders escalated as unknown
	Reconnects    uint64 // order-session redials completed
}

// NewStrategy builds a strategy host subscribed to the chosen partitions of
// the normalized feed.
func NewStrategy(sched *sim.Scheduler, u *market.Universe, name string, hostID uint32,
	outMap *mcast.Map, cfg StrategyConfig) *Strategy {
	s := &Strategy{
		cfg:     cfg,
		sched:   sched,
		u:       u,
		books:   make(map[market.SymbolID]*market.Book),
		reasm:   make(map[uint8]*feed.Reassembler),
		byOrder: make(map[uint64]*market.Book),
	}
	s.host = netsim.NewHost(sched, name)
	s.mdNIC = s.host.AddNIC("md", hostID)
	s.oeNIC = s.host.AddNIC("oe", hostID+1)

	parts := cfg.Subscriptions
	if len(parts) == 0 {
		for i := 0; i < outMap.Partitioner().Partitions(); i++ {
			parts = append(parts, i)
		}
	}
	for _, i := range parts {
		s.mdNIC.Join(outMap.GroupByIndex(i))
		r := feed.NewReassembler(uint8(i))
		r.OnGap = func(feed.GapInfo) { s.noteGap() }
		s.reasm[uint8(i)] = r
	}
	s.mdNIC.OnFrame = s.onFrame
	return s
}

// MDNIC returns the market-data NIC.
func (s *Strategy) MDNIC() *netsim.NIC { return s.mdNIC }

// OENIC returns the order-entry NIC.
func (s *Strategy) OENIC() *netsim.NIC { return s.oeNIC }

// Session returns the gateway-facing order session (nil before
// ConnectGateway).
func (s *Strategy) Session() *orderentry.ClientSession { return s.session }

// ConnectGateway opens the strategy's order path to a gateway: an internal
// order-entry session over a reliable stream. The gateway must already have
// accepted at gwAddr.
func (s *Strategy) ConnectGateway(localPort uint16, gwAddr pkt.UDPAddr) {
	s.oeMux = netsim.NewStreamMux(s.oeNIC)
	s.oePort = localPort
	s.stream = netsim.NewStream(s.oeNIC, localPort, gwAddr)
	s.oeMux.Register(s.stream)
	s.session = orderentry.NewClientSession(func(b []byte) { s.stream.Write(b) })
	s.stream.OnData = func(b []byte) { s.session.Receive(b) }
	s.session.OnFill = func(uint64, market.Qty, market.Price, bool) { s.Fills++ }
	s.session.Logon()
}

// Book returns (creating if needed) the strategy's view of a symbol's book.
func (s *Strategy) Book(id market.SymbolID) *market.Book {
	b, ok := s.books[id]
	if !ok {
		b = market.NewBook(id)
		s.books[id] = b
	}
	return b
}

// noteGap records a sequence gap on the normalized feed and, when PullOnGap
// is configured, pulls all working quotes.
func (s *Strategy) noteGap() {
	s.GapsSeen++
	if s.cfg.PullOnGap {
		s.pullQuotes()
	}
}

// pullQuotes cancels every working order, in submission order. Orders
// already gone (filled, rejected) or with a cancel in flight are skipped.
func (s *Strategy) pullQuotes() {
	if s.session == nil || !s.session.LoggedOn() {
		return
	}
	s.QuotePulls++
	for _, id := range s.liveOrders {
		st, ok := s.session.Order(id)
		if !ok || st.CancelReq {
			continue
		}
		s.session.Cancel(id)
		s.PulledOrders++
	}
	s.liveOrders = s.liveOrders[:0]
}

func (s *Strategy) onFrame(_ *netsim.NIC, f *netsim.Frame) {
	// The frame is fully consumed synchronously (the reassembler decodes
	// into Msg values and apply copies what it keeps), so it terminates here.
	defer f.Release()
	var uf pkt.UDPFrame
	if err := pkt.ParseUDPFrame(f.Data, &uf); err != nil {
		return
	}
	var h feed.UnitHeader
	if _, err := feed.DecodeUnitHeader(uf.Payload, &h); err != nil {
		return
	}
	r, ok := s.reasm[h.Unit]
	if !ok {
		return
	}
	// Steal the trace: the first decision this frame triggers adopts it; if
	// nothing fires, it ends here — the strategy consumed the tick.
	if f.Trace != nil {
		s.rxTrace, f.Trace = f.Trace, nil
	}
	r.Consume(uf.Payload, func(m *feed.Msg) {
		s.MsgsIn++
		s.Probe.Input(s.sched.Now())
		s.apply(m, f.Origin)
	})
	if t := s.rxTrace; t != nil {
		t.Record(s.host.Name, trace.CauseSoftware, s.sched.Now())
		t.Finish(trace.EndConsumed)
		s.rxTrace = nil
	}
}

// apply updates book state and runs the trigger.
func (s *Strategy) apply(m *feed.Msg, origin sim.Time) {
	var book *market.Book
	var preBBO market.BBO
	switch m.Type {
	case feed.MsgAddOrder:
		if id, ok := s.u.Lookup(m.SymbolString()); ok {
			book = s.Book(id)
			preBBO = book.BBO()
			book.Add(market.Order{
				ID:     market.OrderID(m.OrderID),
				Symbol: id,
				Side:   m.Side,
				Price:  market.Price(m.Price),
				Qty:    market.Qty(m.Qty),
			})
			s.byOrder[m.OrderID] = book
		}
	case feed.MsgDeleteOrder:
		if b, ok := s.byOrder[m.OrderID]; ok {
			if b.Cancel(market.OrderID(m.OrderID)) {
				book = b
			}
			delete(s.byOrder, m.OrderID)
		}
	case feed.MsgReduceSize, feed.MsgOrderExecuted:
		if b, ok := s.byOrder[m.OrderID]; ok {
			if o, live := b.Lookup(market.OrderID(m.OrderID)); live {
				rem := o.Qty - market.Qty(m.Qty)
				if rem < 0 {
					rem = 0
				}
				b.Modify(market.OrderID(m.OrderID), o.Price, rem)
				book = b
				if rem == 0 {
					delete(s.byOrder, m.OrderID)
				}
			}
		}
	case feed.MsgModifyOrder:
		if b, ok := s.byOrder[m.OrderID]; ok {
			if _, live := b.Lookup(market.OrderID(m.OrderID)); live {
				b.Modify(market.OrderID(m.OrderID), market.Price(m.Price), market.Qty(m.Qty))
				book = b
				if _, still := b.Lookup(market.OrderID(m.OrderID)); !still {
					// Fully traded on re-entry: drop the index entry.
					delete(s.byOrder, m.OrderID)
				}
			}
		}
	}
	if book == nil || s.session == nil || !s.session.LoggedOn() {
		return
	}
	price, qty, side, fire := s.trigger(m, book, preBBO)
	if !fire {
		return
	}
	s.LastTriggerOrigin = origin
	d := s.getDecision()
	d.book, d.price, d.qty, d.side = book, price, qty, side
	if s.rxTrace != nil {
		d.tr, s.rxTrace = s.rxTrace, nil
	}
	s.sched.AfterArgs(s.cfg.DecisionLatency, sim.PrioDeliver, fireDecisionArgs, s, d)
}

// pendingDecision carries one trigger's order parameters from trigger time
// to fire time (one DecisionLatency later) without allocating a closure.
type pendingDecision struct {
	book  *market.Book
	price market.Price
	qty   market.Qty
	side  market.Side
	tr    *trace.Ctx
}

func (s *Strategy) getDecision() *pendingDecision {
	if n := len(s.decFree); n > 0 {
		d := s.decFree[n-1]
		s.decFree = s.decFree[:n-1]
		return d
	}
	return &pendingDecision{}
}

// fireDecisionArgs adapts fireDecision to the Scheduler's closure-free
// two-argument callback shape.
func fireDecisionArgs(a, b any) { a.(*Strategy).fireDecision(b.(*pendingDecision)) }

// fireDecision sends (or gates) the order decided one DecisionLatency ago.
func (s *Strategy) fireDecision(d *pendingDecision) {
	book, price, qty, side, tr := d.book, d.price, d.qty, d.side, d.tr
	*d = pendingDecision{}
	s.decFree = append(s.decFree, d)
	if s.halted {
		// The order path is untrusted (session down, orders unknown, or the
		// venue shedding): quoting into it would strand more orders.
		s.HaltedOrders++
		tr.Finish(trace.EndConsumed)
		return
	}
	if tr != nil {
		// Receive path + trigger + decision latency: one software span.
		tr.Record(s.host.Name, trace.CauseSoftware, s.sched.Now())
	}

	sym := book.Symbol()
	sendPrice := price
	if s.cfg.Gate != nil {
		p, ok := s.cfg.Gate(sym, side, price)
		if !ok {
			s.Gated++
			tr.Finish(trace.EndConsumed)
			return
		}
		if p != price {
			s.Repriced++
		}
		sendPrice = p
	}
	s.nextOID++
	if tr != nil {
		s.stream.AttachTxTrace(tr)
	}
	s.session.NewOrder(s.nextOID, sym, side, sendPrice, qty)
	if s.cfg.PullOnGap {
		s.liveOrders = append(s.liveOrders, s.nextOID)
	}
	s.OrdersSent++
	s.Probe.Order(s.sched.Now())
}

func (s *Strategy) trigger(m *feed.Msg, book *market.Book, preBBO market.BBO) (market.Price, market.Qty, market.Side, bool) {
	if s.cfg.Trigger != nil {
		return s.cfg.Trigger(m, book)
	}
	// Default join-the-bid: act only when a new bid strictly improves the
	// pre-event best bid. The strict comparison keeps the strategy from
	// chasing the reflection of its own order on the feed.
	if m.Type != feed.MsgAddOrder || m.Side != market.Buy {
		return 0, 0, 0, false
	}
	if preBBO.Bid.Size > 0 && market.Price(m.Price) <= preBBO.Bid.Price {
		return 0, 0, 0, false
	}
	bbo := book.BBO()
	if bbo.Bid.Size > 0 {
		return bbo.Bid.Price, 100, market.Buy, true
	}
	return 0, 0, 0, false
}
