// Package firm implements the trading firm's application tier (§2): market
// data normalizers that convert each exchange's format to an internal
// standard and repartition it, strategies that consume normalized feeds and
// decide orders, and order gateways that translate the internal order flow
// back into each exchange's protocol.
package firm

import (
	"tradenet/internal/feed"
	"tradenet/internal/market"
	"tradenet/internal/mcast"
	"tradenet/internal/netsim"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/trace"
)

// NormalizedPort is the UDP port normalized market data is published on.
const NormalizedPort = 31001

// NormalizerConfig parameterizes a normalizer.
type NormalizerConfig struct {
	// ProcLatency is the software cost of decoding, normalizing, and
	// re-encoding one datagram (the <2 µs per-function budget of §4).
	ProcLatency sim.Duration
	// Filter, if set, drops messages for which it returns false before
	// re-encoding — the in-normalizer filtering placement of §3's
	// "Implications for trading systems".
	Filter func(m *feed.Msg) bool
	// FlushThreshold flushes an output partition once this many messages
	// are packed (1 = message-per-datagram; larger values trade latency for
	// header amortization).
	FlushThreshold int
	// PartitionOwned, if set, restricts which internal partitions this
	// normalizer emits — how a fleet of normalizers divides the feed
	// without duplicating work ("normalizing the market data also avoids
	// having to perform certain common processing steps redundantly", §1).
	// Unowned messages are counted in Skipped.
	PartitionOwned func(part int) bool
}

// Normalizer converts one exchange's raw feed into the internal format and
// repartitions it onto internal multicast groups.
type Normalizer struct {
	cfg    NormalizerConfig
	sched  *sim.Scheduler
	u      *market.Universe
	host   *netsim.Host
	rawNIC *netsim.NIC
	pubNIC *netsim.NIC

	inVariant *feed.Variant
	reasm     map[uint8]*feed.Reassembler
	outMap    *mcast.Map
	packers   []*feed.Packer
	// orderSym tracks order-id → symbol so deletes and executions (which
	// carry no symbol on the wire) can be repartitioned correctly.
	orderSym map[uint64]market.SymbolID

	ipID uint16

	// curTrace is the flight-recorder context stolen from the frame being
	// processed; the first flushed output frame adopts it, carrying the trace
	// across the normalizer hop.
	curTrace *trace.Ctx

	// OnGap, if set, fires for every sequence gap any of the raw-feed
	// reassemblers detects (after the Gaps/MsgLost counters update). The
	// gap-recovery wiring hangs its replay requests here.
	OnGap func(feed.GapInfo)

	// Stats.
	MsgsIn, MsgsOut   uint64
	Filtered          uint64
	Skipped           uint64 // messages for partitions this replica does not own
	GapsSeen, MsgLost uint64
}

// NewNormalizer builds a normalizer on host id hostID. rawMap describes the
// exchange's partitioning (whose groups the raw NIC joins); outMap is the
// internal partitioning it publishes into.
func NewNormalizer(sched *sim.Scheduler, u *market.Universe, name string, hostID uint32,
	inVariant *feed.Variant, rawMap, outMap *mcast.Map, cfg NormalizerConfig) *Normalizer {
	if cfg.FlushThreshold <= 0 {
		cfg.FlushThreshold = 1
	}
	n := &Normalizer{
		cfg:       cfg,
		sched:     sched,
		u:         u,
		inVariant: inVariant,
		reasm:     make(map[uint8]*feed.Reassembler),
		outMap:    outMap,
		orderSym:  make(map[uint64]market.SymbolID),
	}
	n.host = netsim.NewHost(sched, name)
	n.rawNIC = n.host.AddNIC("raw", hostID)
	n.pubNIC = n.host.AddNIC("pub", hostID+1)
	for i, g := range rawMap.Groups() {
		n.rawNIC.Join(g)
		r := feed.NewReassembler(uint8(i))
		r.OnGap = func(gi feed.GapInfo) {
			n.GapsSeen++
			n.MsgLost += uint64(gi.MsgsLost)
			if n.OnGap != nil {
				n.OnGap(gi)
			}
		}
		n.reasm[uint8(i)] = r
	}
	for i := 0; i < outMap.Partitioner().Partitions(); i++ {
		n.packers = append(n.packers, feed.NewPacker(feed.Internal, uint8(i)))
	}
	n.rawNIC.OnFrame = n.onFrame
	return n
}

// RawNIC returns the NIC subscribed to the exchange feed.
func (n *Normalizer) RawNIC() *netsim.NIC { return n.rawNIC }

// PubNIC returns the NIC publishing the normalized feed.
func (n *Normalizer) PubNIC() *netsim.NIC { return n.pubNIC }

// OutMap returns the internal partition map.
func (n *Normalizer) OutMap() *mcast.Map { return n.outMap }

func (n *Normalizer) onFrame(_ *netsim.NIC, f *netsim.Frame) {
	// Charge the software processing cost, then normalize. The frame is
	// retained past this callback, so nothing upstream may release it;
	// process terminates it.
	n.sched.AfterArgs(n.cfg.ProcLatency, sim.PrioDeliver, processFrame, n, f)
}

// processFrame runs a deferred normalization, scheduled closure-free.
func processFrame(a, b any) {
	a.(*Normalizer).process(b.(*netsim.Frame))
}

func (n *Normalizer) process(f *netsim.Frame) {
	defer f.Release()
	// Steal the trace before any early return: whichever output frame
	// flushes first adopts it; a trace with no output (parse failure,
	// everything filtered) is closed as consumed here.
	if f.Trace != nil {
		n.curTrace, f.Trace = f.Trace, nil
	}
	defer n.closeTrace()
	var uf pkt.UDPFrame
	if err := pkt.ParseUDPFrame(f.Data, &uf); err != nil {
		return
	}
	var h feed.UnitHeader
	if _, err := feed.DecodeUnitHeader(uf.Payload, &h); err != nil {
		return
	}
	r, ok := n.reasm[h.Unit]
	if !ok {
		return
	}
	touched := map[int]bool{}
	r.Consume(uf.Payload, func(m *feed.Msg) {
		part := n.normalize(m, f.Origin)
		if part < 0 {
			return
		}
		touched[part] = true
		if n.packers[part].Pending() >= n.cfg.FlushThreshold {
			n.flush(part, f.Origin)
			delete(touched, part)
		}
	})
	// Flush in partition order for reproducibility (map iteration order
	// must not reach the event schedule).
	for part := range n.packers {
		if touched[part] {
			n.flush(part, f.Origin)
		}
	}
}

// normalize runs one message through the filter → partition → packer path,
// returning the partition it was packed into (-1 if filtered, unowned, or
// already flushed away by overflow).
func (n *Normalizer) normalize(m *feed.Msg, origin sim.Time) int {
	n.MsgsIn++
	if n.cfg.Filter != nil && !n.cfg.Filter(m) {
		n.Filtered++
		return -1
	}
	sym := n.resolveSymbol(m)
	part := n.outMap.Partitioner().Partition(sym)
	if n.cfg.PartitionOwned != nil && !n.cfg.PartitionOwned(part) {
		n.Skipped++
		return -1
	}
	p := n.packers[part]
	if !p.Add(m) {
		n.flush(part, origin)
		p.Add(m)
	}
	n.MsgsOut++
	return part
}

// ConsumeRecovered normalizes a message replayed by the gap-recovery
// service. It takes the same filter/partition path as live traffic but
// flushes immediately — recovered data is already late, so batching buys
// nothing. The packer re-sequences it onto the internal feed, so downstream
// consumers see a gap-free stream (late, not lost): the normalizer absorbs
// the exchange-side gap instead of propagating it.
func (n *Normalizer) ConsumeRecovered(m *feed.Msg) {
	now := n.sched.Now()
	if part := n.normalize(m, now); part >= 0 {
		n.flush(part, now)
	}
}

// resolveSymbol maps a message to its instrument, learning order-id
// associations from adds.
func (n *Normalizer) resolveSymbol(m *feed.Msg) market.SymbolID {
	switch m.Type {
	case feed.MsgAddOrder, feed.MsgTrade:
		if id, ok := n.u.Lookup(m.SymbolString()); ok {
			n.orderSym[m.OrderID] = id
			return id
		}
		return 1
	default:
		if id, ok := n.orderSym[m.OrderID]; ok {
			if m.Type == feed.MsgDeleteOrder {
				delete(n.orderSym, m.OrderID)
			}
			return id
		}
		return 1
	}
}

func (n *Normalizer) flush(part int, origin sim.Time) {
	group := n.outMap.GroupByIndex(part)
	dst := pkt.UDPAddr{MAC: pkt.MulticastMAC(group), IP: group, Port: NormalizedPort}
	src := n.pubNIC.Addr(NormalizedPort)
	n.packers[part].Flush(func(dgram []byte) {
		n.ipID++
		// Build straight into a pooled frame. Preserve the original ingress
		// timestamp so end-to-end latency (exchange → strategy) is
		// measurable across the normalizer.
		fr := netsim.NewFrame()
		fr.Data = pkt.AppendUDPFrame(fr.Data, src, dst, n.ipID, dgram)
		fr.Origin = origin
		if t := n.curTrace; t != nil {
			// The whole normalizer residency — host receive path, proc
			// latency, reassembly — is one software span ending now.
			t.Record(n.host.Name, trace.CauseSoftware, n.sched.Now())
			fr.Trace = t
			n.curTrace = nil
		}
		n.pubNIC.Send(fr)
	})
}

// closeTrace finishes a stolen trace no output frame adopted.
func (n *Normalizer) closeTrace() {
	if t := n.curTrace; t != nil {
		t.Record(n.host.Name, trace.CauseSoftware, n.sched.Now())
		t.Finish(trace.EndConsumed)
		n.curTrace = nil
	}
}
