package firm

import (
	"testing"

	"tradenet/internal/exchange"
	"tradenet/internal/feed"
	"tradenet/internal/market"
	"tradenet/internal/mcast"
	"tradenet/internal/netsim"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/units"
)

// middleboxRig: exchange → middlebox → subscriber, over direct links.
type middleboxRig struct {
	sched *sim.Scheduler
	u     *market.Universe
	ex    *exchange.Exchange
	mb    *Middlebox
	rxed  []feed.Msg
}

func buildMiddleboxRig(t *testing.T, keep func(*feed.Msg) bool) *middleboxRig {
	t.Helper()
	r := &middleboxRig{sched: sim.NewScheduler(41), u: testUniverse()}
	rawMap := mcast.NewMap(mcast.NewPartitioner(r.u, mcast.ByAlpha, 0), mcast.NewAllocator(1))
	r.ex = exchange.New(r.sched, r.u, rawMap, exchange.Config{
		ID: 1, Name: "EXCH", Variant: feed.ExchangeB, HostID: 100,
	})
	outGroup := pkt.MulticastGroup(3, 1)
	r.mb = NewMiddlebox(r.sched, "mbox", 200, rawMap.Groups(), outGroup, keep, 500*sim.Nanosecond)
	netsim.Connect(r.ex.MDNIC().Port, r.mb.InNIC().Port, units.Rate10G, 0)

	sub := netsim.NewHost(r.sched, "sub")
	subNIC := sub.AddNIC("md", 300)
	subNIC.Join(outGroup)
	reasm := feed.NewReassembler(0)
	subNIC.OnFrame = func(_ *netsim.NIC, f *netsim.Frame) {
		var uf pkt.UDPFrame
		if err := pkt.ParseUDPFrame(f.Data, &uf); err != nil {
			t.Fatalf("sub parse: %v", err)
		}
		reasm.Consume(uf.Payload, func(m *feed.Msg) { r.rxed = append(r.rxed, *m) })
	}
	netsim.Connect(r.mb.OutNIC().Port, subNIC.Port, units.Rate10G, 0)
	return r
}

func TestMiddleboxFiltersAndRepublishes(t *testing.T) {
	keep := func(m *feed.Msg) bool { return m.Type == feed.MsgAddOrder }
	r := buildMiddleboxRig(t, keep)
	r.sched.At(0, func() { r.ex.PublishBurst(r.sched.Rand(), 300) })
	r.sched.Run()

	if r.mb.Examined != 300 {
		t.Fatalf("examined = %d", r.mb.Examined)
	}
	if r.mb.Passed+r.mb.Discarded != r.mb.Examined {
		t.Fatal("conservation broken")
	}
	if r.mb.Discarded == 0 {
		t.Fatal("nothing discarded: filter never exercised")
	}
	if uint64(len(r.rxed)) != r.mb.Passed {
		t.Fatalf("subscriber got %d, middlebox passed %d", len(r.rxed), r.mb.Passed)
	}
	for _, m := range r.rxed {
		if m.Type != feed.MsgAddOrder {
			t.Fatalf("unfiltered message leaked: %v", m.Type)
		}
	}
	// CPU accounting: every examined message cost 500ns.
	if want := sim.Duration(r.mb.Examined) * 500 * sim.Nanosecond; r.mb.CPUTime != want {
		t.Fatalf("cpu = %v, want %v", r.mb.CPUTime, want)
	}
}

func TestMiddleboxPassAllKeepsEverything(t *testing.T) {
	r := buildMiddleboxRig(t, nil) // nil Keep = pass everything
	r.sched.At(0, func() { r.ex.PublishBurst(r.sched.Rand(), 100) })
	r.sched.Run()
	if r.mb.Discarded != 0 || len(r.rxed) != 100 {
		t.Fatalf("discarded=%d rxed=%d", r.mb.Discarded, len(r.rxed))
	}
}

func TestFilterPlacementArithmetic(t *testing.T) {
	// §3: "if the combined time spent discarding data and the time spent
	// processing data is larger than the arrival rate, then filtering
	// should happen outside the trading system"; middleboxes amortize
	// discard work across consumers.
	fp := FilterPlacement{
		Rate:        1_000_000, // 1M msgs/s raw
		Want:        0.1,
		Consumers:   10,
		DiscardCost: 50 * sim.Nanosecond,
		ProcessCost: 500 * sim.Nanosecond,
	}
	inproc := fp.InProcessCoresUsed()
	mbox := fp.MiddleboxCoresUsed()
	// In-process: 10 × (0.9×50ns + 0.1×500ns) × 1M = 10 × 95ms/s = 0.95.
	if inproc < 0.90 || inproc > 1.0 {
		t.Fatalf("in-process cores = %v", inproc)
	}
	// Middlebox: 1×50ms/s + 10×0.1×500ns×1M = 0.05 + 0.5 = 0.55.
	if mbox < 0.50 || mbox > 0.60 {
		t.Fatalf("middlebox cores = %v", mbox)
	}
	if !fp.MiddleboxWins() {
		t.Fatal("middlebox should win with 10 consumers")
	}
	// With one consumer the middlebox is pure overhead... actually equal:
	// both spend discard once; middlebox still wins nothing.
	fp.Consumers = 1
	if fp.MiddleboxCoresUsed() < fp.InProcessCoresUsed()-1e-12 {
		t.Fatal("single consumer: middlebox cannot beat in-process")
	}
	// With everything wanted, filtering placement is irrelevant; middlebox
	// adds its inspection cost on top.
	fp2 := fp
	fp2.Want = 1.0
	fp2.Consumers = 10
	if fp2.MiddleboxWins() {
		t.Fatal("nothing to discard: middlebox should not win")
	}
}

func TestMiddleboxCPUAccumulatesUnderBurst(t *testing.T) {
	keep := func(*feed.Msg) bool { return true }
	r := buildMiddleboxRig(t, keep)
	r.sched.After(sim.Millisecond, func() { r.ex.PublishBurst(r.sched.Rand(), 200) })
	r.sched.Run()
	// 200 messages × 500ns = 100µs of single-core work.
	if r.mb.CPUTime != 200*500*sim.Nanosecond {
		t.Fatalf("cpu = %v", r.mb.CPUTime)
	}
	if len(r.rxed) != 200 {
		t.Fatalf("rxed = %d", len(r.rxed))
	}
}
