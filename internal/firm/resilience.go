// Firm-side order-entry resilience: the gateway hardens its exchange-facing
// session (liveness, ack-timeout resubmission, reconnect with sequence
// resync) and escalates unrecoverable orders to their owners; strategies
// halt quoting when their order path degrades and re-enter deterministically.
// Everything is opt-in — an unhardened gateway or strategy behaves exactly
// as before.
package firm

import (
	"tradenet/internal/netsim"
	"tradenet/internal/orderentry"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
)

// GatewayResilience parameterizes the gateway's exchange-session hardening.
type GatewayResilience struct {
	// Liveness arms heartbeats and peer-death detection toward the exchange.
	Liveness orderentry.LivenessConfig
	// Retry arms ack-timeout resubmission with capped exponential backoff.
	Retry orderentry.RetryConfig
	// ReconnectDelay is how long after peer-death the gateway waits before
	// dialing back in.
	ReconnectDelay sim.Duration
	// Reconnect provisions a replacement endpoint at the exchange and
	// returns the new address to dial (core wires it to ReacceptSession).
	// Nil disables reconnection: the session stays dead.
	Reconnect func() pkt.UDPAddr
	// StreamMaxRTO / StreamDeadAfter harden the exchange-facing transport
	// (exponential RTO backoff, connection-dead detection).
	StreamMaxRTO    sim.Duration
	StreamDeadAfter int
}

// HardenExchangeSession arms resilience on the exchange-facing session.
// Call after ConnectExchange.
func (g *Gateway) HardenExchangeSession(cfg GatewayResilience) {
	g.res = &cfg
	s := g.exSession
	s.OnPeerDead = g.onExchangeDead
	s.OnOrderUnknown = g.escalateUnknown
	if cfg.Retry.AckTimeout > 0 {
		s.EnableRetry(g.sched, cfg.Retry)
	}
	g.hardenExStream()
	if cfg.Liveness.Interval > 0 {
		s.StartLiveness(g.sched, cfg.Liveness)
	}
}

func (g *Gateway) hardenExStream() {
	g.exStream.MaxRTO = g.res.StreamMaxRTO
	g.exStream.DeadAfter = g.res.StreamDeadAfter
	if g.res.StreamDeadAfter > 0 {
		// A transport death converges on the same peer-death path liveness
		// uses; declarePeerDead is idempotent, whichever fires first wins.
		g.exStream.OnDead = g.exSession.Drop
	}
}

// FaultName identifies the gateway in a fault plan's event log.
func (g *Gateway) FaultName() string { return g.host.Name }

// DropSession models the local side of an order-entry cut (fault
// injection): the transport dies instantly and the session tears down
// without waiting for the liveness deadline.
func (g *Gateway) DropSession() {
	g.exStream.Kill()
	g.exSession.Drop()
}

// onExchangeDead runs at the exact virtual instant the exchange is declared
// unreachable: retire the transport and schedule the redial.
func (g *Gateway) onExchangeDead() {
	g.exStream.Kill()
	if g.res == nil || g.res.Reconnect == nil {
		return
	}
	g.sched.AfterArgs(g.res.ReconnectDelay, sim.PrioControl, gwReconnectArgs, g, nil)
}

// gwReconnectArgs adapts the redial to the scheduler's closure-free
// callback shape.
func gwReconnectArgs(a, _ any) { a.(*Gateway).reconnectExchange() }

// reconnectExchange dials the replacement exchange endpoint and resumes the
// session on it: same local port (the remote port changed, so the mux key
// is fresh), sequence resync via Relogon, orders reconciled off the replay.
func (g *Gateway) reconnectExchange() {
	remote := g.res.Reconnect()
	g.exStream = netsim.NewStream(g.exNIC, g.exPort, remote)
	g.exMux.Register(g.exStream)
	g.exStream.OnData = func(b []byte) { g.exSession.Receive(b) }
	g.hardenExStream()
	g.exSession.Rebind(func(b []byte) { g.exStream.Write(b) })
	g.Reconnects++
	g.exSession.Relogon()
}

// escalateUnknown tells an order's owner that its fate is unknowable: the
// exchange session died and resubmission was exhausted. The id mappings are
// dropped so a late cancel resolves as unknown rather than dangling.
func (g *Gateway) escalateUnknown(exID uint64) {
	ref, ok := g.byExID[exID]
	if !ok {
		return
	}
	delete(g.byExID, exID)
	delete(g.toExID, ref)
	delete(g.exchIDs, exID)
	g.Unknowns++
	ref.sess.Reject(ref.id, orderentry.RejectSessionDown)
}

// ---------------------------------------------------------------------------
// Strategy resilience

// StrategyResilience parameterizes a strategy's order-path hardening. The
// session-level knobs (liveness, retry, reconnect) matter when the strategy
// speaks to the exchange directly (the cloud design); behind a gateway the
// halt/requote behavior is the active part.
type StrategyResilience struct {
	Liveness orderentry.LivenessConfig
	Retry    orderentry.RetryConfig
	// ReconnectDelay / Reconnect mirror the gateway's redial machinery.
	ReconnectDelay sim.Duration
	Reconnect      func() pkt.UDPAddr
	// RequoteDelay is how long the strategy stays out of the market after a
	// session-down signal before quoting again. Zero keeps it halted until
	// the session re-logs-on.
	RequoteDelay    sim.Duration
	StreamMaxRTO    sim.Duration
	StreamDeadAfter int
}

// EnableResilience arms order-path hardening. Call after ConnectGateway.
func (s *Strategy) EnableResilience(cfg StrategyResilience) {
	s.res = &cfg
	sess := s.session
	sess.OnPeerDead = s.onSessionDead
	sess.OnOrderUnknown = func(uint64) {
		s.UnknownOrders++
		s.haltQuoting()
	}
	sess.OnReject = func(_ uint64, r orderentry.RejectReason) {
		// A busy venue or a dead session both mean the same thing to a
		// market maker: trust in the order path is gone, stop quoting.
		if r == orderentry.RejectSessionDown || r == orderentry.RejectBusy {
			s.haltQuoting()
		}
	}
	sess.OnLogon = func() { s.resumeQuoting() }
	if cfg.Retry.AckTimeout > 0 {
		sess.EnableRetry(s.sched, cfg.Retry)
	}
	s.hardenOEStream()
	if cfg.Liveness.Interval > 0 {
		sess.StartLiveness(s.sched, cfg.Liveness)
	}
}

func (s *Strategy) hardenOEStream() {
	s.stream.MaxRTO = s.res.StreamMaxRTO
	s.stream.DeadAfter = s.res.StreamDeadAfter
	if s.res.StreamDeadAfter > 0 {
		s.stream.OnDead = s.session.Drop
	}
}

// FaultName identifies the strategy in a fault plan's event log.
func (s *Strategy) FaultName() string { return s.host.Name }

// DropSession models the local side of an order-entry cut (fault
// injection) for strategies that hold the exchange session themselves.
func (s *Strategy) DropSession() {
	s.stream.Kill()
	s.session.Drop()
}

// Halted reports whether the strategy is currently out of the market.
func (s *Strategy) Halted() bool { return s.halted }

// haltQuoting takes the strategy out of the market; with a RequoteDelay it
// re-enters on a timer, otherwise on the next logon.
func (s *Strategy) haltQuoting() {
	if s.halted {
		return
	}
	s.halted = true
	s.Halts++
	if s.res.RequoteDelay > 0 {
		s.sched.AfterArgs(s.res.RequoteDelay, sim.PrioControl, requoteArgs, s, nil)
	}
}

// requoteArgs adapts the requote timer to the scheduler's closure-free
// callback shape.
func requoteArgs(a, _ any) { a.(*Strategy).resumeQuoting() }

func (s *Strategy) resumeQuoting() {
	if !s.halted {
		return
	}
	s.halted = false
	s.Resumes++
}

// onSessionDead mirrors the gateway's death path: halt, retire the
// transport, schedule the redial.
func (s *Strategy) onSessionDead() {
	s.haltQuoting()
	s.stream.Kill()
	if s.res == nil || s.res.Reconnect == nil {
		return
	}
	s.sched.AfterArgs(s.res.ReconnectDelay, sim.PrioControl, stratReconnectArgs, s, nil)
}

// stratReconnectArgs adapts the redial to the scheduler's closure-free
// callback shape.
func stratReconnectArgs(a, _ any) { a.(*Strategy).reconnectSession() }

func (s *Strategy) reconnectSession() {
	remote := s.res.Reconnect()
	s.stream = netsim.NewStream(s.oeNIC, s.oePort, remote)
	s.oeMux.Register(s.stream)
	s.stream.OnData = func(b []byte) { s.session.Receive(b) }
	s.hardenOEStream()
	s.session.Rebind(func(b []byte) { s.stream.Write(b) })
	s.Reconnects++
	s.session.Relogon()
}
