package firm

import (
	"tradenet/internal/market"
	"tradenet/internal/netsim"
	"tradenet/internal/orderentry"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/trace"
)

// GatewayBasePort is the first TCP port gateways accept internal sessions
// on.
const GatewayBasePort = 18000

// GatewayConfig parameterizes an order gateway.
type GatewayConfig struct {
	// TranslateLatency is the software cost of converting one internal
	// request into the exchange protocol (and one response back).
	TranslateLatency sim.Duration
}

// Gateway terminates internal order-entry sessions from strategies and
// relays their flow onto an exchange session, translating identifiers and
// re-sequencing — §2's "translate from internal order entry formats back to
// the protocols that the exchanges use".
type Gateway struct {
	cfg   GatewayConfig
	sched *sim.Scheduler
	host  *netsim.Host
	inNIC *netsim.NIC
	exNIC *netsim.NIC
	inMux *netsim.StreamMux

	exSession *orderentry.ClientSession
	exStream  *netsim.Stream
	exMux     *netsim.StreamMux
	exPort    uint16

	// res, when set, hardens the exchange-facing session (resilience.go).
	res *GatewayResilience

	// id translation: exchange-facing id ↔ (internal session, internal id).
	nextExID uint64
	byExID   map[uint64]clientRef
	toExID   map[clientRef]uint64
	// exchIDs maps the gateway's exchange-facing order id to the venue's
	// own order id (from the ack), relayed to internal clients.
	exchIDs map[uint64]uint64

	nextPort uint16

	// respFree and relayFree pool the argument structs the translate-latency
	// delay paths carry, so both directions schedule allocation-free via
	// AfterArgs.
	respFree  []*response
	relayFree []*relayReq

	// Stats.
	Relayed   uint64
	Responses uint64
	// Resilience stats (resilience.go).
	Reconnects         uint64 // exchange-session redials completed
	Unknowns           uint64 // orders escalated as unknown to their owner
	SessionDownRejects uint64 // requests failed fast while the session was down
}

type clientRef struct {
	sess *orderentry.ExchangeSession
	id   uint64
}

// respKind selects which session callback a delayed exchange response
// invokes on delivery.
type respKind uint8

const (
	respAck respKind = iota
	respFill
	respReject
	respCancelAck
	respCancelReject
)

// response carries one exchange response across the TranslateLatency delay.
type response struct {
	ref    clientRef
	kind   respKind
	exID   uint64
	qty    market.Qty
	price  market.Price
	reason orderentry.RejectReason
}

// relayReq carries one inbound strategy request across the TranslateLatency
// delay.
type relayReq struct {
	sess *orderentry.ExchangeSession
	m    orderentry.Msg
	tr   *trace.Ctx
}

// NewGateway builds a gateway host. Its exchange side is connected later
// with ConnectExchange; strategies attach via AcceptStrategy.
func NewGateway(sched *sim.Scheduler, name string, hostID uint32, cfg GatewayConfig) *Gateway {
	g := &Gateway{
		cfg:      cfg,
		sched:    sched,
		byExID:   make(map[uint64]clientRef),
		toExID:   make(map[clientRef]uint64),
		exchIDs:  make(map[uint64]uint64),
		nextPort: GatewayBasePort,
	}
	g.host = netsim.NewHost(sched, name)
	g.inNIC = g.host.AddNIC("internal", hostID)
	g.exNIC = g.host.AddNIC("exchange", hostID+1)
	g.inMux = netsim.NewStreamMux(g.inNIC)
	return g
}

// InNIC returns the strategy-facing NIC.
func (g *Gateway) InNIC() *netsim.NIC { return g.inNIC }

// ExNIC returns the exchange-facing NIC.
func (g *Gateway) ExNIC() *netsim.NIC { return g.exNIC }

// ConnectExchange opens the gateway's session to an exchange order port.
func (g *Gateway) ConnectExchange(localPort uint16, exchangeAddr pkt.UDPAddr) {
	g.exMux = netsim.NewStreamMux(g.exNIC)
	g.exPort = localPort
	g.exStream = netsim.NewStream(g.exNIC, localPort, exchangeAddr)
	g.exMux.Register(g.exStream)
	g.exSession = orderentry.NewClientSession(func(b []byte) { g.exStream.Write(b) })
	g.exStream.OnData = func(b []byte) { g.exSession.Receive(b) }

	g.exSession.OnExchangeID = func(exID, exchOrderID uint64) {
		g.exchIDs[exID] = exchOrderID
	}
	g.exSession.OnAck = func(exID uint64) {
		g.respond(exID, respAck, 0, 0, orderentry.RejectNone)
	}
	g.exSession.OnFill = func(exID uint64, qty market.Qty, price market.Price, done bool) {
		g.respond(exID, respFill, qty, price, orderentry.RejectNone)
	}
	g.exSession.OnReject = func(exID uint64, r orderentry.RejectReason) {
		g.respond(exID, respReject, 0, 0, r)
	}
	g.exSession.OnCancelAck = func(exID uint64) {
		g.respond(exID, respCancelAck, 0, 0, orderentry.RejectNone)
	}
	g.exSession.OnCancelReject = func(exID uint64) {
		g.respond(exID, respCancelReject, 0, 0, orderentry.RejectNone)
	}
	g.exSession.Logon()
}

// ExchangeSession returns the exchange-facing session (nil before connect).
func (g *Gateway) ExchangeSession() *orderentry.ClientSession { return g.exSession }

func (g *Gateway) respond(exID uint64, kind respKind, qty market.Qty, price market.Price, reason orderentry.RejectReason) {
	ref, ok := g.byExID[exID]
	if !ok {
		return
	}
	g.Responses++
	var r *response
	if n := len(g.respFree); n > 0 {
		r = g.respFree[n-1]
		g.respFree = g.respFree[:n-1]
	} else {
		r = new(response)
	}
	*r = response{ref: ref, kind: kind, exID: exID, qty: qty, price: price, reason: reason}
	g.sched.AfterArgs(g.cfg.TranslateLatency, sim.PrioDeliver, deliverResponseArgs, g, r)
}

// deliverResponseArgs adapts deliverResponse to the Scheduler's closure-free
// two-argument callback shape.
func deliverResponseArgs(a, b any) { a.(*Gateway).deliverResponse(b.(*response)) }

func (g *Gateway) deliverResponse(r *response) {
	ref := r.ref
	switch r.kind {
	case respAck:
		ref.sess.Ack(ref.id, g.exchIDs[r.exID])
	case respFill:
		ref.sess.Fill(ref.id, r.qty, r.price)
	case respReject:
		ref.sess.Reject(ref.id, r.reason)
	case respCancelAck:
		ref.sess.CancelAck(ref.id)
	case respCancelReject:
		ref.sess.CancelReject(ref.id)
	}
	*r = response{}
	g.respFree = append(g.respFree, r)
}

// AcceptStrategy provisions an internal session endpoint for a strategy at
// clientAddr and returns the TCP port the strategy should dial.
func (g *Gateway) AcceptStrategy(clientAddr pkt.UDPAddr) uint16 {
	port := g.nextPort
	g.nextPort++
	stream := netsim.NewStream(g.inNIC, port, clientAddr)
	sess := orderentry.NewExchangeSession(func(b []byte) { stream.Write(b) })
	stream.OnData = func(b []byte) { sess.Receive(b) }
	g.inMux.Register(stream)

	// Each handler adopts the trace the mux parked on the stream (nil when
	// untraced) so the translate delay is attributed to gateway software.
	sess.OnNew = func(m *orderentry.Msg) {
		r := g.copyReq(sess, m)
		r.tr = stream.TakeRxTrace()
		g.sched.AfterArgs(g.cfg.TranslateLatency, sim.PrioDeliver, relayNewArgs, g, r)
	}
	sess.OnCancel = func(m *orderentry.Msg) {
		r := g.copyReq(sess, m)
		r.tr = stream.TakeRxTrace()
		g.sched.AfterArgs(g.cfg.TranslateLatency, sim.PrioDeliver, relayCancelArgs, g, r)
	}
	sess.OnModify = func(m *orderentry.Msg) {
		r := g.copyReq(sess, m)
		r.tr = stream.TakeRxTrace()
		g.sched.AfterArgs(g.cfg.TranslateLatency, sim.PrioDeliver, relayModifyArgs, g, r)
	}
	return port
}

// copyReq snapshots an inbound request (the session reuses its decode
// buffer) into a pooled relayReq that survives the TranslateLatency delay.
func (g *Gateway) copyReq(sess *orderentry.ExchangeSession, m *orderentry.Msg) *relayReq {
	var r *relayReq
	if n := len(g.relayFree); n > 0 {
		r = g.relayFree[n-1]
		g.relayFree = g.relayFree[:n-1]
	} else {
		r = new(relayReq)
	}
	r.sess, r.m = sess, *m
	return r
}

// relayNewArgs, relayCancelArgs, and relayModifyArgs adapt the relay paths
// to the Scheduler's closure-free two-argument callback shape.
func relayNewArgs(a, b any) {
	g, r := a.(*Gateway), b.(*relayReq)
	if g.res != nil && !g.exSession.LoggedOn() {
		// Exchange session down: fail fast so the owner learns now, instead
		// of the order dying silently in a dead socket.
		r.tr.Finish(trace.EndConsumed)
		r.tr = nil
		g.SessionDownRejects++
		r.sess.Reject(r.m.OrderID, orderentry.RejectSessionDown)
		g.releaseReq(r)
		return
	}
	g.nextExID++
	exID := g.nextExID
	ref := clientRef{sess: r.sess, id: r.m.OrderID}
	g.byExID[exID] = ref
	g.toExID[ref] = exID
	g.Relayed++
	g.attachTrace(r)
	g.exSession.NewOrder(exID, r.m.Symbol, r.m.Side, r.m.Price, r.m.Qty)
	g.releaseReq(r)
}

func relayCancelArgs(a, b any) {
	g, r := a.(*Gateway), b.(*relayReq)
	if g.res != nil && !g.exSession.LoggedOn() {
		r.tr.Finish(trace.EndConsumed)
		r.tr = nil
		g.SessionDownRejects++
		r.sess.CancelReject(r.m.OrderID)
		g.releaseReq(r)
		return
	}
	ref := clientRef{sess: r.sess, id: r.m.OrderID}
	if exID, ok := g.toExID[ref]; ok {
		g.Relayed++
		g.attachTrace(r)
		g.exSession.Cancel(exID)
	} else {
		r.tr.Finish(trace.EndConsumed)
		r.tr = nil
		r.sess.CancelReject(r.m.OrderID)
	}
	g.releaseReq(r)
}

func relayModifyArgs(a, b any) {
	g, r := a.(*Gateway), b.(*relayReq)
	if g.res != nil && !g.exSession.LoggedOn() {
		r.tr.Finish(trace.EndConsumed)
		r.tr = nil
		g.SessionDownRejects++
		r.sess.CancelReject(r.m.OrderID)
		g.releaseReq(r)
		return
	}
	ref := clientRef{sess: r.sess, id: r.m.OrderID}
	if exID, ok := g.toExID[ref]; ok {
		g.Relayed++
		g.attachTrace(r)
		g.exSession.Modify(exID, r.m.Price, r.m.Qty)
	} else {
		r.tr.Finish(trace.EndConsumed)
		r.tr = nil
		r.sess.CancelReject(r.m.OrderID)
	}
	g.releaseReq(r)
}

// attachTrace hands a relayed request's trace to the exchange-facing stream,
// charging the gateway residency (receive path + translate) as software time.
func (g *Gateway) attachTrace(r *relayReq) {
	if t := r.tr; t != nil {
		t.Record(g.host.Name, trace.CauseSoftware, g.sched.Now())
		g.exStream.AttachTxTrace(t)
		r.tr = nil
	}
}

func (g *Gateway) releaseReq(r *relayReq) {
	r.sess, r.m, r.tr = nil, orderentry.Msg{}, nil
	g.relayFree = append(g.relayFree, r)
}
