package firm

import (
	"tradenet/internal/market"
	"tradenet/internal/netsim"
	"tradenet/internal/orderentry"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
)

// GatewayBasePort is the first TCP port gateways accept internal sessions
// on.
const GatewayBasePort = 18000

// GatewayConfig parameterizes an order gateway.
type GatewayConfig struct {
	// TranslateLatency is the software cost of converting one internal
	// request into the exchange protocol (and one response back).
	TranslateLatency sim.Duration
}

// Gateway terminates internal order-entry sessions from strategies and
// relays their flow onto an exchange session, translating identifiers and
// re-sequencing — §2's "translate from internal order entry formats back to
// the protocols that the exchanges use".
type Gateway struct {
	cfg   GatewayConfig
	sched *sim.Scheduler
	host  *netsim.Host
	inNIC *netsim.NIC
	exNIC *netsim.NIC
	inMux *netsim.StreamMux

	exSession *orderentry.ClientSession
	exStream  *netsim.Stream

	// id translation: exchange-facing id ↔ (internal session, internal id).
	nextExID uint64
	byExID   map[uint64]clientRef
	toExID   map[clientRef]uint64
	// exchIDs maps the gateway's exchange-facing order id to the venue's
	// own order id (from the ack), relayed to internal clients.
	exchIDs map[uint64]uint64

	nextPort uint16

	// Stats.
	Relayed   uint64
	Responses uint64
}

type clientRef struct {
	sess *orderentry.ExchangeSession
	id   uint64
}

// NewGateway builds a gateway host. Its exchange side is connected later
// with ConnectExchange; strategies attach via AcceptStrategy.
func NewGateway(sched *sim.Scheduler, name string, hostID uint32, cfg GatewayConfig) *Gateway {
	g := &Gateway{
		cfg:      cfg,
		sched:    sched,
		byExID:   make(map[uint64]clientRef),
		toExID:   make(map[clientRef]uint64),
		exchIDs:  make(map[uint64]uint64),
		nextPort: GatewayBasePort,
	}
	g.host = netsim.NewHost(sched, name)
	g.inNIC = g.host.AddNIC("internal", hostID)
	g.exNIC = g.host.AddNIC("exchange", hostID+1)
	g.inMux = netsim.NewStreamMux(g.inNIC)
	return g
}

// InNIC returns the strategy-facing NIC.
func (g *Gateway) InNIC() *netsim.NIC { return g.inNIC }

// ExNIC returns the exchange-facing NIC.
func (g *Gateway) ExNIC() *netsim.NIC { return g.exNIC }

// ConnectExchange opens the gateway's session to an exchange order port.
func (g *Gateway) ConnectExchange(localPort uint16, exchangeAddr pkt.UDPAddr) {
	mux := netsim.NewStreamMux(g.exNIC)
	g.exStream = netsim.NewStream(g.exNIC, localPort, exchangeAddr)
	mux.Register(g.exStream)
	g.exSession = orderentry.NewClientSession(func(b []byte) { g.exStream.Write(b) })
	g.exStream.OnData = func(b []byte) { g.exSession.Receive(b) }

	g.exSession.OnExchangeID = func(exID, exchOrderID uint64) {
		g.exchIDs[exID] = exchOrderID
	}
	g.exSession.OnAck = func(exID uint64) {
		g.respond(exID, func(ref clientRef) { ref.sess.Ack(ref.id, g.exchIDs[exID]) })
	}
	g.exSession.OnFill = func(exID uint64, qty market.Qty, price market.Price, done bool) {
		g.respond(exID, func(ref clientRef) { ref.sess.Fill(ref.id, qty, price) })
	}
	g.exSession.OnReject = func(exID uint64, r orderentry.RejectReason) {
		g.respond(exID, func(ref clientRef) { ref.sess.Reject(ref.id, r) })
	}
	g.exSession.OnCancelAck = func(exID uint64) {
		g.respond(exID, func(ref clientRef) { ref.sess.CancelAck(ref.id) })
	}
	g.exSession.OnCancelReject = func(exID uint64) {
		g.respond(exID, func(ref clientRef) { ref.sess.CancelReject(ref.id) })
	}
	g.exSession.Logon()
}

// ExchangeSession returns the exchange-facing session (nil before connect).
func (g *Gateway) ExchangeSession() *orderentry.ClientSession { return g.exSession }

func (g *Gateway) respond(exID uint64, fn func(clientRef)) {
	ref, ok := g.byExID[exID]
	if !ok {
		return
	}
	g.Responses++
	g.sched.After(g.cfg.TranslateLatency, func() { fn(ref) })
}

// AcceptStrategy provisions an internal session endpoint for a strategy at
// clientAddr and returns the TCP port the strategy should dial.
func (g *Gateway) AcceptStrategy(clientAddr pkt.UDPAddr) uint16 {
	port := g.nextPort
	g.nextPort++
	stream := netsim.NewStream(g.inNIC, port, clientAddr)
	sess := orderentry.NewExchangeSession(func(b []byte) { stream.Write(b) })
	stream.OnData = func(b []byte) { sess.Receive(b) }
	g.inMux.Register(stream)

	sess.OnNew = func(m *orderentry.Msg) {
		req := *m
		g.sched.After(g.cfg.TranslateLatency, func() {
			g.nextExID++
			exID := g.nextExID
			ref := clientRef{sess: sess, id: req.OrderID}
			g.byExID[exID] = ref
			g.toExID[ref] = exID
			g.Relayed++
			g.exSession.NewOrder(exID, req.Symbol, req.Side, req.Price, req.Qty)
		})
	}
	sess.OnCancel = func(m *orderentry.Msg) {
		req := *m
		g.sched.After(g.cfg.TranslateLatency, func() {
			ref := clientRef{sess: sess, id: req.OrderID}
			if exID, ok := g.toExID[ref]; ok {
				g.Relayed++
				g.exSession.Cancel(exID)
			} else {
				sess.CancelReject(req.OrderID)
			}
		})
	}
	sess.OnModify = func(m *orderentry.Msg) {
		req := *m
		g.sched.After(g.cfg.TranslateLatency, func() {
			ref := clientRef{sess: sess, id: req.OrderID}
			if exID, ok := g.toExID[ref]; ok {
				g.Relayed++
				g.exSession.Modify(exID, req.Price, req.Qty)
			} else {
				sess.CancelReject(req.OrderID)
			}
		})
	}
	return port
}
