package firm

import (
	"testing"

	"tradenet/internal/market"
	"tradenet/internal/sim"
)

func TestSurveillanceNBBOAndState(t *testing.T) {
	s := NewSurveillance()
	s.Update(1, 7, market.BBO{Bid: market.Quote{Price: 1000, Size: 10}, Ask: market.Quote{Price: 1010, Size: 10}})
	s.Update(2, 7, market.BBO{Bid: market.Quote{Price: 1005, Size: 5}, Ask: market.Quote{Price: 1015, Size: 5}})
	bid, ask := s.NBBO(7)
	if bid.Price != 1005 || ask.Price != 1010 {
		t.Fatalf("NBBO = %v/%v", bid, ask)
	}
	if s.State(7) != market.MarketNormal {
		t.Fatalf("state = %v", s.State(7))
	}
	// Exchange 2 locks exchange 1's ask.
	s.Update(2, 7, market.BBO{Bid: market.Quote{Price: 1010, Size: 5}, Ask: market.Quote{Price: 1015, Size: 5}})
	if s.State(7) != market.MarketLocked {
		t.Fatalf("state = %v", s.State(7))
	}
	if s.StateChanges == 0 {
		t.Fatal("state change not counted")
	}
	// Symbols are independent.
	if s.State(8) != market.MarketNormal {
		t.Fatal("untouched symbol should be normal")
	}
	if s.Updates != 3 {
		t.Fatalf("updates = %d", s.Updates)
	}
}

func TestSurveillanceGate(t *testing.T) {
	s := NewSurveillance()
	s.Update(1, 7, market.BBO{Bid: market.Quote{Price: 1000, Size: 10}, Ask: market.Quote{Price: 1010, Size: 10}})

	// Passive compliant bid on exchange 2.
	if g := s.Gate(2, 7, market.Buy, 1005); g != GateOK {
		t.Fatalf("compliant bid gated: %v", g)
	}
	// Bid at exchange 1's ask from exchange 2 would lock.
	if g := s.Gate(2, 7, market.Buy, 1010); g != GateWouldLockOrCross {
		t.Fatalf("locking bid = %v", g)
	}
	// A bid above the away ask is blocked too — classified as a
	// trade-through, since executing it would trade past the better price.
	if g := s.Gate(2, 7, market.Buy, 1011); g == GateOK {
		t.Fatalf("crossing bid = %v", g)
	}
	// Executing a buy at 1012 on exchange 2 with a 1010 ask elsewhere is a
	// trade-through.
	if g := s.Gate(2, 7, market.Buy, 1012); g != GateWouldLockOrCross && g != GateWouldTradeThrough {
		t.Fatalf("trade-through = %v", g)
	}
	// Same-exchange aggression is that exchange's matching problem: fine.
	if g := s.Gate(1, 7, market.Buy, 1010); g != GateOK {
		t.Fatalf("self-exchange cross gated: %v", g)
	}
	if s.BlockedLock == 0 {
		t.Fatal("lock blocks not counted")
	}
	for _, g := range []GateReason{GateOK, GateWouldLockOrCross, GateWouldTradeThrough} {
		if g.String() == "unknown" {
			t.Fatal("gate reason unnamed")
		}
	}
}

func TestSurveillanceReprice(t *testing.T) {
	s := NewSurveillance()
	s.Update(1, 7, market.BBO{Bid: market.Quote{Price: 1000, Size: 10}, Ask: market.Quote{Price: 1010, Size: 10}})
	// Compliant price passes through unchanged.
	if p, ok := s.Reprice(2, 7, market.Buy, 1005); !ok || p != 1005 {
		t.Fatalf("reprice = %v/%v", p, ok)
	}
	// Locking buy slides one tick under the national ask.
	p, ok := s.Reprice(2, 7, market.Buy, 1010)
	if !ok || p != 1009 {
		t.Fatalf("slid buy = %v/%v", p, ok)
	}
	if g := s.Gate(2, 7, market.Buy, p); g != GateOK {
		t.Fatalf("slid price still gated: %v", g)
	}
	// Locking sell slides one tick above the national bid.
	p, ok = s.Reprice(2, 7, market.Sell, 1000)
	if !ok || p != 1001 {
		t.Fatalf("slid sell = %v/%v", p, ok)
	}
	// No quotes: anything is compliant.
	if p, ok := s.Reprice(1, 99, market.Buy, 5); !ok || p != 5 {
		t.Fatal("empty book reprice")
	}
}

// End to end: a strategy whose gate is wired to firm surveillance slides
// would-lock orders to compliant prices before they reach the exchange.
func TestStrategyComplianceGate(t *testing.T) {
	sur := NewSurveillance()
	gate := func(sym market.SymbolID, side market.Side, price market.Price) (market.Price, bool) {
		return sur.Reprice(1, sym, side, price)
	}
	p := buildPlant(t,
		NormalizerConfig{ProcLatency: 0},
		StrategyConfig{DecisionLatency: 0, Gate: gate})

	_, exPort := p.ex.AcceptSession(p.gw.ExNIC().Addr(41000))
	p.gw.ConnectExchange(41000, p.ex.OENIC().Addr(exPort))
	gwPort := p.gw.AcceptStrategy(p.strat.OENIC().Addr(42000))
	p.strat.ConnectGateway(42000, p.gw.InNIC().Addr(gwPort))

	// A phantom exchange 2 displays a very low ask on every symbol: almost
	// any bid the strategy wants to post would lock or cross it.
	for _, in := range p.u.All() {
		sur.Update(2, in.ID, market.BBO{
			Bid: market.Quote{Price: 9000, Size: 10},
			Ask: market.Quote{Price: 10500, Size: 10},
		})
	}
	p.sched.After(sim.Millisecond, func() { p.ex.PublishBurst(p.sched.Rand(), 80) })
	p.sched.Run()

	if p.strat.OrdersSent == 0 {
		t.Fatal("no orders fired")
	}
	if p.strat.Repriced == 0 {
		t.Fatal("gate never repriced despite the phantom low ask")
	}
	// Every order the exchange accepted was compliant: at or below 10499.
	for id := uint64(1); id <= p.strat.OrdersSent; id++ {
		if st, ok := p.strat.Session().Order(id); ok {
			if st.Side == market.Buy && st.Price > 10499 {
				t.Fatalf("non-compliant order slipped through at %v", st.Price)
			}
		}
	}
}
