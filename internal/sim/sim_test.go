package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0ps"},
		{500 * Picosecond, "500ps"},
		{Nanosecond, "1ns"},
		{1500 * Picosecond, "1.5ns"},
		{500 * Nanosecond, "500ns"},
		{Microsecond, "1µs"},
		{2*Microsecond + 500*Nanosecond, "2.5µs"},
		{Millisecond, "1ms"},
		{Second, "1s"},
		{90 * Second, "90s"},
		{-500 * Nanosecond, "-500ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(500 * Nanosecond)
	if !t0.Before(t1) || !t1.After(t0) {
		t.Fatal("ordering broken")
	}
	if d := t1.Sub(t0); d != 500*Nanosecond {
		t.Fatalf("Sub = %v, want 500ns", d)
	}
	if t1.Nanoseconds() != 500 {
		t.Fatalf("Nanoseconds = %v, want 500", t1.Nanoseconds())
	}
	if t1.Microseconds() != 0.5 {
		t.Fatalf("Microseconds = %v, want 0.5", t1.Microseconds())
	}
}

func TestStdConversionRoundTrip(t *testing.T) {
	d := FromStd(3 * time.Microsecond)
	if d != 3*Microsecond {
		t.Fatalf("FromStd = %v", d)
	}
	if d.Std() != 3*time.Microsecond {
		t.Fatalf("Std = %v", d.Std())
	}
}

func TestSchedulerOrdersByTime(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	s.At(30*Time(Nanosecond), func() { order = append(order, 3) })
	s.At(10*Time(Nanosecond), func() { order = append(order, 1) })
	s.At(20*Time(Nanosecond), func() { order = append(order, 2) })
	end := s.Run()
	if end != 30*Time(Nanosecond) {
		t.Fatalf("end = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSchedulerSameInstantPriorityThenSeq(t *testing.T) {
	s := NewScheduler(1)
	var order []string
	at := Time(Microsecond)
	s.AtPrio(at, PrioDrain, func() { order = append(order, "drain") })
	s.AtPrio(at, PrioDeliver, func() { order = append(order, "deliver-a") })
	s.AtPrio(at, PrioControl, func() { order = append(order, "control") })
	s.AtPrio(at, PrioDeliver, func() { order = append(order, "deliver-b") })
	s.Run()
	want := []string{"control", "deliver-a", "deliver-b", "drain"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulerAfterUsesCurrentTime(t *testing.T) {
	s := NewScheduler(1)
	var second Time
	s.After(100*Nanosecond, func() {
		s.After(50*Nanosecond, func() { second = s.Now() })
	})
	s.Run()
	if second != Time(150*Nanosecond) {
		t.Fatalf("nested After fired at %v, want 150ns", second)
	}
}

func TestSchedulerPastSchedulingPanics(t *testing.T) {
	s := NewScheduler(1)
	s.After(100*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(50*Time(Nanosecond), func() {})
	})
	s.Run()
}

func TestEventCancel(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	e := s.After(100*Nanosecond, func() { fired = true })
	e.Cancel()
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	e.Cancel() // double-cancel is a no-op
	s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after cancel+run", s.Pending())
	}
}

func TestCancelFromWithinEarlierEvent(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	var victim *Event
	s.At(10*Time(Nanosecond), func() { victim.Cancel() })
	victim = s.At(20*Time(Nanosecond), func() { fired = true })
	s.Run()
	if fired {
		t.Fatal("event fired despite cancellation by earlier event")
	}
}

func TestRunUntilAdvancesClockToDeadline(t *testing.T) {
	s := NewScheduler(1)
	var fired []Time
	s.At(Time(Second), func() { fired = append(fired, s.Now()) })
	s.At(Time(3*Second), func() { fired = append(fired, s.Now()) })
	end := s.RunUntil(Time(2 * Second))
	if end != Time(2*Second) {
		t.Fatalf("RunUntil returned %v, want 2s", end)
	}
	if len(fired) != 1 {
		t.Fatalf("fired %d events, want 1", len(fired))
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	// Resume and finish.
	s.Run()
	if len(fired) != 2 || fired[1] != Time(3*Second) {
		t.Fatalf("fired = %v", fired)
	}
}

func TestHaltStopsRun(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i)*Time(Nanosecond), func() {
			n++
			if n == 3 {
				s.Halt()
			}
		})
	}
	s.Run()
	if n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	if s.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", s.Pending())
	}
}

func TestEveryFiresPeriodically(t *testing.T) {
	s := NewScheduler(1)
	var at []Time
	cancel := s.Every(0, Second, func() {
		at = append(at, s.Now())
		if len(at) == 4 {
			// cancel from inside the callback
			s.After(Nanosecond, func() {})
		}
	})
	s.At(Time(3*Second)+1, func() { cancel() })
	s.Run()
	if len(at) != 4 {
		t.Fatalf("fired %d times, want 4: %v", len(at), at)
	}
	for i, want := range []Time{0, Time(Second), Time(2 * Second), Time(3 * Second)} {
		if at[i] != want {
			t.Fatalf("tick %d at %v, want %v", i, at[i], want)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		s := NewScheduler(42)
		var trace []int64
		var chain func()
		chain = func() {
			trace = append(trace, int64(s.Now()))
			if len(trace) < 50 {
				jitter := Duration(s.Rand().Intn(1000)) * Nanosecond
				s.After(jitter+1, chain)
			}
		}
		s.At(0, chain)
		s.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any set of (time, prio) pairs, the scheduler fires them in
// nondecreasing (time, prio) order, with seq as the final tiebreak.
func TestSchedulerOrderingProperty(t *testing.T) {
	f := func(times []uint16, prios []int8) bool {
		s := NewScheduler(7)
		type key struct {
			t    Time
			prio int
			seq  int
		}
		var fired []key
		for i, tt := range times {
			prio := 0
			if i < len(prios) {
				prio = int(prios[i])
			}
			at := Time(tt) * Time(Nanosecond)
			i := i
			prio2 := prio
			s.AtPrio(at, prio2, func() {
				fired = append(fired, key{s.Now(), prio2, i})
			})
		}
		s.Run()
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			a, b := fired[i-1], fired[i]
			if a.t > b.t {
				return false
			}
			if a.t == b.t && a.prio > b.prio {
				return false
			}
			if a.t == b.t && a.prio == b.prio && a.seq > b.seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler(1)
	b.ReportAllocs()
	var chain func()
	n := 0
	chain = func() {
		n++
		if n < b.N {
			s.After(Nanosecond, chain)
		}
	}
	s.At(0, chain)
	b.ResetTimer()
	s.Run()
}

func TestAccessorsAndConstructors(t *testing.T) {
	s := NewScheduler(1)
	e := s.AfterPrio(10*Nanosecond, PrioControl, func() {})
	if e.Time() != Time(10*Nanosecond) {
		t.Fatalf("event time = %v", e.Time())
	}
	s.Run()
	if s.Fired() != 1 {
		t.Fatalf("fired = %d", s.Fired())
	}
	if Nanoseconds(5) != 5*Nanosecond || Microseconds(5) != 5*Microsecond {
		t.Fatal("constructors broken")
	}
	if Milliseconds(5) != 5*Millisecond || Seconds(5) != 5*Second {
		t.Fatal("constructors broken")
	}
	d := 1500 * Millisecond
	if d.Seconds() != 1.5 || Time(d).Seconds() != 1.5 {
		t.Fatal("Seconds broken")
	}
	tm := Time(2500 * Nanosecond)
	if tm.Std() != 2500*time.Nanosecond {
		t.Fatalf("Time.Std = %v", tm.Std())
	}
	if d.Nanoseconds() != 1.5e9 || d.Microseconds() != 1.5e6 {
		t.Fatal("unit conversions broken")
	}
}

func TestEveryValidation(t *testing.T) {
	s := NewScheduler(1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero period should panic")
		}
	}()
	s.Every(0, 0, func() {})
}

func TestEveryCancelInsideCallback(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	var cancel func()
	cancel = s.Every(0, Second, func() {
		n++
		if n == 2 {
			cancel()
		}
	})
	s.RunUntil(Time(10 * Second))
	if n != 2 {
		t.Fatalf("fired %d times after self-cancel", n)
	}
}

func TestRunUntilWithEmptyQueue(t *testing.T) {
	s := NewScheduler(1)
	end := s.RunUntil(Time(Second))
	if end != Time(Second) || s.Now() != Time(Second) {
		t.Fatalf("clock = %v", end)
	}
}
