package sim

import "testing"

// The self-profile must account for every fired event by handler kind and
// every placement by wheel destination — it is the evidence behind the
// sched.* registry namespace, so the books have to balance.
func TestSchedulerProfileAccounting(t *testing.T) {
	s := NewScheduler(1)
	var ran int
	s.At(Time(Microsecond), func() { ran++ })
	s.AfterArgs(Duration(2*Microsecond), PrioDeliver,
		func(a, b any) { ran++ }, nil, nil)
	s.AfterArgs3(Duration(3*Microsecond), PrioDeliver,
		func(a, b, c any) { ran++ }, nil, nil, nil)
	// A far-future event exercises an upper wheel level (or overflow).
	s.At(Time(Hour), func() { ran++ })
	s.Run()

	p := s.Profile()
	if ran != 4 {
		t.Fatalf("ran %d handlers, want 4", ran)
	}
	if p.Fired != s.Fired() {
		t.Fatalf("Profile().Fired = %d, Fired() = %d", p.Fired, s.Fired())
	}
	if got := p.FiredClosure + p.FiredArgs2 + p.FiredArgs3; got != p.Fired {
		t.Fatalf("per-kind fired counts sum to %d, total is %d", got, p.Fired)
	}
	if p.FiredClosure != 2 || p.FiredArgs2 != 1 || p.FiredArgs3 != 1 {
		t.Fatalf("fired by kind = closure %d / args2 %d / args3 %d, want 2/1/1",
			p.FiredClosure, p.FiredArgs2, p.FiredArgs3)
	}
	var placed uint64 = p.PlacedSingle + p.PlacedOverflow
	for _, n := range p.PlacedLevel {
		placed += n
	}
	if placed == 0 {
		t.Fatal("no placements recorded")
	}

	// Profile and occupancy reset with the scheduler.
	s.Reset(2)
	if p := s.Profile(); p.Fired != 0 || p.PlacedSingle != 0 || p.Cascades != 0 {
		t.Fatalf("Reset left profile %+v", p)
	}
	for lvl, n := range s.Occupancy() {
		if n != 0 {
			t.Fatalf("Reset left occupancy level %d = %d", lvl, n)
		}
	}
}

// Occupancy reflects pending events and drains back to zero after Run.
func TestSchedulerOccupancy(t *testing.T) {
	s := NewScheduler(1)
	for i := 0; i < 8; i++ {
		i := i
		s.At(Time(Duration(i+1)*Millisecond), func() { _ = i })
	}
	var total int
	for _, n := range s.Occupancy() {
		total += n
	}
	// The single-event fast path keeps one event off the wheel; the rest
	// occupy slots somewhere.
	if total == 0 {
		t.Fatal("8 pending events but zero wheel occupancy")
	}
	s.Run()
	for lvl, n := range s.Occupancy() {
		if n != 0 {
			t.Fatalf("after Run, occupancy level %d = %d, want 0", lvl, n)
		}
	}
}
