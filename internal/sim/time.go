// Package sim provides a deterministic discrete-event simulation kernel with
// picosecond time resolution.
//
// Trading networks operate at timescales where a single commodity-switch hop
// (~500 ns) is two orders of magnitude slower than a Layer-1 switch hop
// (~5 ns), and where some firms want timestamps with sub-100-picosecond
// precision. Virtual time is therefore kept in integer picoseconds: fine
// enough to express every latency the paper discusses exactly, wide enough
// (int64) to cover ~106 days of simulated time.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute simulation timestamp in picoseconds since the start of
// the run. The zero value is the beginning of simulated time.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common durations, expressed in picoseconds.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Never is a sentinel Time later than any reachable simulation instant.
const Never Time = 1<<63 - 1

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Nanoseconds returns t as a float64 count of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a float64 count of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns t as a float64 count of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Std converts t to a time.Duration, saturating on overflow. Useful only for
// display; simulation arithmetic stays in picoseconds.
func (t Time) Std() time.Duration { return Duration(t).Std() }

// String formats t with an automatically chosen unit.
func (t Time) String() string { return Duration(t).String() }

// Nanoseconds returns d as a float64 count of nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Microseconds returns d as a float64 count of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Seconds returns d as a float64 count of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Std converts d to a time.Duration (nanosecond resolution), rounding toward
// zero.
func (d Duration) Std() time.Duration { return time.Duration(d / Nanosecond) }

// String formats d with an automatically chosen unit: ps below 1 ns, then
// ns / µs / ms / s.
func (d Duration) String() string {
	neg := d < 0
	if neg {
		d = -d
	}
	var s string
	switch {
	case d < Nanosecond:
		s = fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		s = trimUnit(float64(d)/float64(Nanosecond), "ns")
	case d < Millisecond:
		s = trimUnit(float64(d)/float64(Microsecond), "µs")
	case d < Second:
		s = trimUnit(float64(d)/float64(Millisecond), "ms")
	default:
		s = trimUnit(float64(d)/float64(Second), "s")
	}
	if neg {
		return "-" + s
	}
	return s
}

func trimUnit(v float64, unit string) string {
	s := fmt.Sprintf("%.3f", v)
	// Trim trailing zeros and a trailing decimal point.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s + unit
}

// FromStd converts a time.Duration to a simulation Duration.
func FromStd(d time.Duration) Duration { return Duration(d) * Nanosecond }

// Nanoseconds constructs a Duration from a count of nanoseconds.
func Nanoseconds(n int64) Duration { return Duration(n) * Nanosecond }

// Microseconds constructs a Duration from a count of microseconds.
func Microseconds(n int64) Duration { return Duration(n) * Microsecond }

// Milliseconds constructs a Duration from a count of milliseconds.
func Milliseconds(n int64) Duration { return Duration(n) * Millisecond }

// Seconds constructs a Duration from a count of seconds.
func Seconds(n int64) Duration { return Duration(n) * Second }
