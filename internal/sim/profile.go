package sim

import "math/bits"

// WheelLevels exports the number of timing-wheel levels for observability
// consumers (the metrics registry reports per-level placement counts and
// occupancy without depending on wheel internals).
const WheelLevels = wheelLevels

// Profile is the scheduler's self-profile: how events were dispatched and
// where they landed in the wheel. The counters are plain increments on paths
// the scheduler already executes, so profiling is always on and costs a few
// adds per event — it never branches on configuration and cannot perturb the
// schedule.
type Profile struct {
	// Fired is the total number of events executed (== Scheduler.Fired).
	Fired uint64
	// FiredClosure / FiredArgs2 / FiredArgs3 split Fired by handler kind:
	// captured closures, two-argument closure-free callbacks, and
	// three-argument closure-free callbacks. A hot simulation should be
	// dominated by the Args kinds; a high closure share on a hot path is
	// what the hotalloc analyzer exists to catch.
	FiredClosure uint64
	FiredArgs2   uint64
	FiredArgs3   uint64

	// PlacedSingle counts schedules that took the lone-pending-event fast
	// path and never touched a wheel slot.
	PlacedSingle uint64
	// PlacedLevel counts wheel insertions by level, including re-insertions
	// when a higher-level slot cascades toward level 0 — so the sum exceeds
	// the number of distinct scheduled events by exactly the cascade
	// re-placement work performed.
	PlacedLevel [WheelLevels]uint64
	// PlacedOverflow counts events parked beyond the wheel horizon.
	PlacedOverflow uint64
	// Cascades counts higher-level slot evacuations during pop.
	Cascades uint64
}

// Profile returns a snapshot of the scheduler's self-profile.
func (s *Scheduler) Profile() Profile {
	p := s.prof
	p.Fired = s.fired
	return p
}

// Occupancy returns the number of occupied slots per wheel level right now —
// a direct popcount over the occupancy bitmaps, independent of the profile
// counters. The lone held-out event (the single fast path) occupies no slot.
func (s *Scheduler) Occupancy() [WheelLevels]int {
	var out [WheelLevels]int
	for lvl := 0; lvl < wheelLevels; lvl++ {
		n := 0
		for w := 0; w < wheelWords; w++ {
			n += bits.OnesCount64(s.occ[lvl][w])
		}
		out[lvl] = n
	}
	return out
}
