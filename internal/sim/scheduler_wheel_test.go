package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// --- Fired / Cancel semantics -----------------------------------------------

func TestCancelAfterFireIsNoOp(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	e := s.After(Nanosecond, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("event did not fire")
	}
	if !e.Fired() {
		t.Fatal("Fired() = false after the callback ran")
	}
	e.Cancel()
	if e.Canceled() {
		t.Fatal("Canceled() = true for an event whose callback ran: Cancel after fire must not rewrite history")
	}
	if e.Fired() != true {
		t.Fatal("Fired() flipped by post-fire Cancel")
	}
}

func TestCanceledAndFiredAreMutuallyExclusive(t *testing.T) {
	s := NewScheduler(1)
	e := s.After(Nanosecond, func() {})
	e.Cancel()
	s.Run()
	if e.Fired() {
		t.Fatal("canceled event reports Fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after pre-fire Cancel")
	}
}

func TestEveryCancelBetweenTicks(t *testing.T) {
	s := NewScheduler(1)
	ticks := 0
	cancel := s.Every(0, Second, func() { ticks++ })
	s.RunUntil(Time(2500 * Millisecond)) // ticks at 0s, 1s, 2s
	if ticks != 3 {
		t.Fatalf("ticks = %d before cancel, want 3", ticks)
	}
	// Cancel between ticks: the 3s tick is pending and must be withdrawn.
	cancel()
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after between-ticks cancel, want 0", s.Pending())
	}
	s.RunUntil(Time(10 * Second))
	if ticks != 3 {
		t.Fatalf("ticks = %d after cancel, want 3", ticks)
	}
	cancel() // double-cancel is a no-op
}

func TestEveryCancelBetweenTicksAfterPoolReuse(t *testing.T) {
	// The pending-tick Event may be recycled for unrelated work once the
	// ticker is done; a late cancel() must not shoot down the new tenant.
	s := NewScheduler(1)
	ticks := 0
	cancel := s.Every(0, Second, func() { ticks++ })
	s.RunUntil(Time(1500 * Millisecond)) // ticks at 0s, 1s; next pending at 2s
	cancel()
	// Recycle heavily: the ticker's event storage is back in the pool and
	// will be handed to these schedules.
	other := 0
	for i := 0; i < 32; i++ {
		s.After(Duration(i+1)*Nanosecond, func() { other++ })
	}
	cancel() // stale: must not cancel any of the new events
	s.Run()
	if other != 32 {
		t.Fatalf("stale ticker cancel killed %d unrelated events", 32-other)
	}
	if ticks != 2 {
		t.Fatalf("ticks = %d, want 2", ticks)
	}
}

func TestStaleHandleCancelIsNoOp(t *testing.T) {
	s := NewScheduler(1)
	e := s.After(Nanosecond, func() {})
	h := e.Handle()
	s.Run() // fires; storage returns to the pool
	fired := false
	e2 := s.After(Nanosecond, func() { fired = true })
	if e2 != e {
		t.Fatalf("expected LIFO pool reuse for this test; got distinct events")
	}
	if h.Pending() {
		t.Fatal("stale handle reports Pending")
	}
	h.Cancel() // seq mismatch: no-op
	s.Run()
	if !fired {
		t.Fatal("stale Handle.Cancel canceled an unrelated recycled event")
	}
}

// --- Reset -------------------------------------------------------------------

func TestSchedulerResetReplaysSeedIdentically(t *testing.T) {
	workload := func(s *Scheduler) []int64 {
		var trace []int64
		var chain func()
		chain = func() {
			trace = append(trace, int64(s.Now()))
			if len(trace) < 200 {
				jitter := Duration(s.Rand().Intn(5000)) * Nanosecond
				s.After(jitter+1, chain)
			}
		}
		s.At(0, chain)
		// Leave some events pending across levels and in overflow so Reset
		// has real work to do.
		s.At(Time(500*Second), func() {})
		s.At(Time(3*Second), func() {})
		s.RunUntil(Time(Second))
		return trace
	}
	s := NewScheduler(42)
	first := workload(s)
	if s.Pending() == 0 {
		t.Fatal("workload should leave pending events for Reset to clear")
	}
	s.Reset(42)
	if s.Pending() != 0 || s.Now() != 0 || s.Fired() != 0 {
		t.Fatalf("Reset left state: pending=%d now=%v fired=%d", s.Pending(), s.Now(), s.Fired())
	}
	second := workload(s)
	if len(first) != len(second) {
		t.Fatalf("replay lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverges at %d: %d vs %d", i, first[i], second[i])
		}
	}
	// And against a virgin scheduler with the same seed.
	third := workload(NewScheduler(42))
	for i := range first {
		if first[i] != third[i] {
			t.Fatalf("reset scheduler diverges from fresh scheduler at %d", i)
		}
	}
}

// --- Far-future overflow -----------------------------------------------------

func TestOverflowFarFutureEvents(t *testing.T) {
	// The wheel horizon is 2^48 ps ≈ 281 s; these cross it.
	s := NewScheduler(1)
	var order []int
	s.At(Time(400*Second), func() { order = append(order, 2) })
	s.At(Time(Second), func() { order = append(order, 1) })
	s.At(Time(1000*Second), func() { order = append(order, 3) })
	victim := s.At(Time(800*Second), func() { order = append(order, 99) })
	victim.Cancel() // overflow removal path
	end := s.Run()
	if end != Time(1000*Second) {
		t.Fatalf("end = %v, want 1000s", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestOverflowSameInstantOrdering(t *testing.T) {
	s := NewScheduler(1)
	at := Time(500 * Second) // past the horizon
	var order []string
	s.AtPrio(at, PrioDrain, func() { order = append(order, "drain") })
	s.AtPrio(at, PrioControl, func() { order = append(order, "control") })
	s.AtPrio(at, PrioDeliver, func() { order = append(order, "a") })
	s.AtPrio(at, PrioDeliver, func() { order = append(order, "b") })
	s.Run()
	want := []string{"control", "a", "b", "drain"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunUntilAcrossHorizon(t *testing.T) {
	s := NewScheduler(1)
	var fired []Time
	s.At(Time(400*Second), func() { fired = append(fired, s.Now()) })
	s.At(Time(1000*Second), func() { fired = append(fired, s.Now()) })
	if end := s.RunUntil(Time(600 * Second)); end != Time(600*Second) {
		t.Fatalf("RunUntil = %v", end)
	}
	if len(fired) != 1 || fired[0] != Time(400*Second) {
		t.Fatalf("fired = %v", fired)
	}
	// Scheduling relative to the jumped clock must still work.
	s.After(Second, func() { fired = append(fired, s.Now()) })
	s.Run()
	if len(fired) != 3 || fired[1] != Time(601*Second) || fired[2] != Time(1000*Second) {
		t.Fatalf("fired = %v", fired)
	}
}

// --- Wheel vs reference heap property ---------------------------------------

// refSched is a minimal container/heap scheduler implementing the exact
// (time, prio, seq) contract — the seed implementation distilled.
type refEvent struct {
	at   Time
	prio int
	seq  uint64
	fn   func()
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

type refSched struct {
	h   refHeap
	now Time
	seq uint64
}

func (r *refSched) at(t Time, prio int, fn func()) {
	heap.Push(&r.h, &refEvent{at: t, prio: prio, seq: r.seq, fn: fn})
	r.seq++
}

func (r *refSched) run() {
	for r.h.Len() > 0 {
		e := heap.Pop(&r.h).(*refEvent)
		r.now = e.at
		e.fn()
	}
}

type firing struct {
	at   Time
	prio int
	idx  int
}

// TestWheelMatchesReferenceHeap checks that the timing wheel and a reference
// binary heap produce identical event orderings for 10k random (time, prio)
// schedules, across 10 seeds. Times are drawn to stress every placement
// class: same-instant collisions, every wheel level, and overflow.
func TestWheelMatchesReferenceHeap(t *testing.T) {
	const n = 10_000
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		type ev struct {
			at   Time
			prio int
		}
		evs := make([]ev, n)
		for i := range evs {
			var at int64
			switch rng.Intn(8) {
			case 0: // level-0 collisions at tiny instants
				at = rng.Int63n(256)
			case 1: // straddle the 2^48 ps horizon
				at = int64(250*Second) + rng.Int63n(int64(100*Second))
			case 2: // deep overflow
				at = rng.Int63n(int64(4000 * Second))
			default: // typical microsecond-scale simulation times
				at = rng.Int63n(int64(5 * Millisecond))
			}
			evs[i] = ev{Time(at), rng.Intn(7) - 3}
		}

		wheelOrder := make([]firing, 0, n)
		s := NewScheduler(seed)
		for i, e := range evs {
			i := i
			s.AtPrio(e.at, e.prio, func() {
				wheelOrder = append(wheelOrder, firing{s.Now(), evs[i].prio, i})
			})
		}
		s.Run()

		heapOrder := make([]firing, 0, n)
		r := &refSched{}
		for i, e := range evs {
			i := i
			r.at(e.at, e.prio, func() {
				heapOrder = append(heapOrder, firing{r.now, evs[i].prio, i})
			})
		}
		r.run()

		if len(wheelOrder) != n || len(heapOrder) != n {
			t.Fatalf("seed %d: fired %d/%d events (want %d)", seed, len(wheelOrder), len(heapOrder), n)
		}
		for i := range wheelOrder {
			if wheelOrder[i] != heapOrder[i] {
				t.Fatalf("seed %d: orderings diverge at firing %d: wheel %+v, heap %+v",
					seed, i, wheelOrder[i], heapOrder[i])
			}
		}
	}
}

// TestWheelMatchesReferenceHeapDynamic repeats the comparison with events
// scheduled from inside callbacks, so placement happens relative to a moving
// reference time — the regime real simulations live in.
func TestWheelMatchesReferenceHeapDynamic(t *testing.T) {
	const n = 5_000
	for seed := int64(0); seed < 10; seed++ {
		// Shared jitter tape so both implementations see identical inputs.
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		jitter := make([]Duration, n)
		prios := make([]int, n)
		for i := range jitter {
			jitter[i] = Duration(rng.Int63n(int64(10 * Microsecond)))
			prios[i] = rng.Intn(5) - 2
		}

		runWheel := func() []firing {
			order := make([]firing, 0, n)
			s := NewScheduler(seed)
			var spawn func()
			spawn = func() {
				i := len(order)
				order = append(order, firing{s.Now(), 0, i})
				if i+1 < n {
					s.AtPrio(s.Now().Add(jitter[i]), prios[i], spawn)
				}
			}
			s.At(0, spawn)
			s.Run()
			return order
		}
		runHeap := func() []firing {
			order := make([]firing, 0, n)
			r := &refSched{}
			var spawn func()
			spawn = func() {
				i := len(order)
				order = append(order, firing{r.now, 0, i})
				if i+1 < n {
					r.at(r.now.Add(jitter[i]), prios[i], spawn)
				}
			}
			r.at(0, 0, spawn)
			r.run()
			return order
		}

		w, h := runWheel(), runHeap()
		for i := range w {
			if w[i] != h[i] {
				t.Fatalf("seed %d: dynamic orderings diverge at %d: wheel %+v, heap %+v", seed, i, w[i], h[i])
			}
		}
	}
}

// --- AtArgs ------------------------------------------------------------------

func TestAtArgsDeliversArguments(t *testing.T) {
	s := NewScheduler(1)
	type payload struct{ v int }
	p1, p2 := &payload{1}, &payload{2}
	var got1, got2 *payload
	s.AtArgs(Time(Nanosecond), PrioDeliver, func(a, b any) {
		got1, got2 = a.(*payload), b.(*payload)
	}, p1, p2)
	s.AfterArgs(2*Nanosecond, PrioDeliver, func(a, b any) {
		if a.(*payload) != p2 {
			t.Error("AfterArgs delivered wrong argument")
		}
	}, p2, nil)
	s.Run()
	if got1 != p1 || got2 != p2 {
		t.Fatal("AtArgs did not deliver its arguments")
	}
}

// --- Zero-allocation assertions ---------------------------------------------

func TestSchedulerSteadyStateZeroAllocs(t *testing.T) {
	s := NewScheduler(1)
	fn := func() {}
	// Warm the pool.
	for i := 0; i < 128; i++ {
		s.After(Duration(i+1)*Nanosecond, fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(2000, func() {
		s.After(Nanosecond, fn)
		s.step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+fire allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestSchedulerCancelZeroAllocs(t *testing.T) {
	s := NewScheduler(1)
	fn := func() {}
	for i := 0; i < 128; i++ {
		s.After(Duration(i+1)*Nanosecond, fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(2000, func() {
		s.After(Microsecond, fn).Cancel()
	})
	if allocs != 0 {
		t.Fatalf("schedule+cancel allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestSchedulerAtArgsZeroAllocs(t *testing.T) {
	s := NewScheduler(1)
	var hits int
	target := &hits
	fn := func(a, b any) { *(a.(*int))++ }
	for i := 0; i < 128; i++ {
		s.AfterArgs(Duration(i+1)*Nanosecond, PrioDeliver, fn, target, nil)
	}
	s.Run()
	allocs := testing.AllocsPerRun(2000, func() {
		s.AfterArgs(Nanosecond, PrioDeliver, fn, target, nil)
		s.step()
	})
	if allocs != 0 {
		t.Fatalf("AtArgs schedule+fire allocates %.1f allocs/op, want 0", allocs)
	}
}

// --- Benchmarks --------------------------------------------------------------

// BenchmarkSchedulerSchedule measures raw schedule throughput across mixed
// wheel levels, draining in batches.
func BenchmarkSchedulerSchedule(b *testing.B) {
	s := NewScheduler(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(Duration(i%1000+1)*Nanosecond, fn)
		if s.Pending() >= 4096 {
			s.Run()
		}
	}
	s.Run()
}

// BenchmarkSchedulerCancel measures the schedule+cancel churn path.
func BenchmarkSchedulerCancel(b *testing.B) {
	s := NewScheduler(1)
	fn := func() {}
	for i := 0; i < 128; i++ {
		s.After(Duration(i+1)*Nanosecond, fn)
	}
	s.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(Microsecond, fn).Cancel()
	}
}
