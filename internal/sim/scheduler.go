package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a unit of pending work: a callback to run at a given instant of
// simulated time.
type Event struct {
	at   Time
	prio int    // secondary ordering key for same-instant events
	seq  uint64 // tertiary key: insertion order, guarantees determinism
	fn   func()

	index     int // heap index; -1 once popped or canceled
	canceled  bool
	scheduler *Scheduler
}

// Time returns the instant the event is scheduled for.
func (e *Event) Time() Time { return e.at }

// Cancel removes the event from the schedule. Canceling an event that has
// already fired or been canceled is a no-op. Cancel is O(log n).
func (e *Event) Cancel() {
	if e == nil || e.canceled || e.index < 0 {
		if e != nil {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	heap.Remove(&e.scheduler.queue, e.index)
	e.index = -1
}

// Canceled reports whether Cancel has been called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Priorities for same-instant event ordering. Lower runs first. These exist
// so that, e.g., a frame arriving at a switch at exactly the same instant as
// the switch's queue drain decision is processed in a deterministic,
// physically sensible order.
const (
	PrioControl = -10 // clock sync, management-plane actions
	PrioDeliver = 0   // default: packet deliveries, app callbacks
	PrioDrain   = 10  // queue drains after same-instant arrivals
	PrioReport  = 100 // metric flushes, end-of-window reporting
)

// eventQueue is a binary min-heap of events ordered by (time, prio, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Scheduler is a deterministic discrete-event executor. It is not safe for
// concurrent use: the entire simulation runs on one goroutine, which is what
// makes runs reproducible.
type Scheduler struct {
	now    Time
	queue  eventQueue
	seq    uint64
	fired  uint64
	rng    *rand.Rand
	halted bool
}

// NewScheduler returns a scheduler at time zero whose random source is
// seeded with seed. All stochastic model components must draw from Rand()
// so that a run is fully determined by its seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at instant t with default priority. Scheduling in
// the past panics: it always indicates a model bug, and silently reordering
// time would invalidate every latency measurement downstream.
func (s *Scheduler) At(t Time, fn func()) *Event {
	return s.AtPrio(t, PrioDeliver, fn)
}

// AtPrio schedules fn at instant t with an explicit same-instant priority.
func (s *Scheduler) AtPrio(t Time, prio int, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v, before now %v", t, s.now))
	}
	e := &Event{at: t, prio: prio, seq: s.seq, fn: fn, scheduler: s}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d Duration, fn func()) *Event {
	return s.At(s.now.Add(d), fn)
}

// AfterPrio schedules fn to run d after the current instant with priority.
func (s *Scheduler) AfterPrio(d Duration, prio int, fn func()) *Event {
	return s.AtPrio(s.now.Add(d), prio, fn)
}

// Every schedules fn at start and then every period thereafter, until the
// returned cancel function is called or the run ends.
func (s *Scheduler) Every(start Time, period Duration, fn func()) (cancel func()) {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	stopped := false
	var tick func()
	var pending *Event
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			pending = s.AtPrio(s.now.Add(period), PrioReport, tick)
		}
	}
	pending = s.AtPrio(start, PrioReport, tick)
	return func() {
		stopped = true
		pending.Cancel()
	}
}

// Halt stops the run: Run and RunUntil return after the current event's
// callback completes.
func (s *Scheduler) Halt() { s.halted = true }

// step executes the earliest pending event. It reports false when the queue
// is empty.
func (s *Scheduler) step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.canceled {
			continue
		}
		if e.at < s.now {
			panic("sim: event queue time went backwards")
		}
		s.now = e.at
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Halt is called. It returns
// the final simulated time.
func (s *Scheduler) Run() Time {
	s.halted = false
	for !s.halted && s.step() {
	}
	return s.now
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// exactly deadline (even if no event lands there) and returns. Events
// scheduled after deadline remain pending.
func (s *Scheduler) RunUntil(deadline Time) Time {
	s.halted = false
	for !s.halted {
		if len(s.queue) == 0 {
			break
		}
		// Peek: queue[0] is the heap minimum.
		if s.queue[0].at > deadline {
			break
		}
		s.step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}
