package sim

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// The scheduler's pending-event structure is a hierarchical timing wheel
// (calendar queue) with a sorted overflow level, not a binary heap. See
// DESIGN.md "Scheduler internals" for the full argument; the short version:
//
//   - The wheel is slotted on ticks of 2^tickBits picoseconds, not raw
//     picoseconds: typical event deltas in these models are hundreds of
//     nanoseconds to tens of microseconds, and a coarser slot granularity
//     lands them one or two levels lower, cutting cascade re-insertions.
//   - wheelLevels wheels of wheelSlots slots each; a slot at level k spans
//     2^(tickBits+8k) picoseconds. An event lands at the level of the
//     highest bit in which its tick differs from the wheel reference time
//     `cur` (so events in the current tick land in the level-0 slot under
//     the cursor).
//   - A level-0 slot spans one tick (~4 ns), so it may hold events at
//     different instants; the slot's intrusive list is kept fully ordered
//     by (time, prio, seq), which together with time-ordered slot scanning
//     reproduces the heap's exact deterministic ordering contract.
//   - Higher-level slots are unordered append-only lists; their events are
//     re-sorted (by re-insertion) when the slot cascades toward level 0.
//   - Events beyond the wheel horizon (2^48 ticks ≈ 13 days of lookahead)
//     go to a sorted overflow slice. Every overflow event is strictly later
//     than every wheel event, so overflow is consulted only when the wheel
//     drains.
//   - Fired and canceled events return to a free list; steady-state
//     scheduling performs zero heap allocations.
const (
	tickBits    = 12 // slot granularity: 2^12 ps ≈ 4 ns
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits // 256
	wheelMask   = wheelSlots - 1
	wheelLevels = 6
	wheelWords  = wheelSlots / 64

	// horizonBits is the number of tick bits the wheel covers; events whose
	// tick differs from the reference in a higher bit overflow.
	horizonBits = wheelBits * wheelLevels // 48
)

// Event levels outside the wheel.
const (
	levelDetached = -1 // free, fired, or canceled: not in any queue
	levelOverflow = -2 // parked in the sorted overflow slice
	levelSingle   = -3 // the lone pending event, held out of the wheel
)

// Event is a unit of pending work: a callback to run at a given instant of
// simulated time.
//
// Event handles are pooled: once an event has fired or been canceled, the
// scheduler may recycle its storage for a later schedule. A retained *Event
// stays valid for Canceled/Fired queries until that reuse happens; callers
// that keep handles across firings (e.g. to cancel a timer that may already
// have run) should hold a Handle, whose Cancel degrades to a no-op when the
// underlying storage has moved on.
type Event struct {
	at  Time
	seq uint64 // tertiary key: insertion order, guarantees determinism
	fn  func()

	// fnArg/arg1/arg2 are the closure-free fast path: hot callers (frame
	// delivery, deferred receive) schedule a package-level func with two
	// pointer args boxed as any, avoiding a closure allocation per event.
	// fnArg3/arg3 extend the same idea to three-argument callbacks
	// (multicast fan-out: egress set, ingress, frame).
	fnArg      func(a, b any)
	fnArg3     func(a, b, c any)
	arg1, arg2 any
	arg3       any

	next, prev *Event
	scheduler  *Scheduler
	prio       int  // secondary ordering key for same-instant events
	level      int8 // wheel level, levelDetached, or levelOverflow
	slot       uint8
	fired      bool
	canceled   bool
}

// Time returns the instant the event is scheduled for.
func (e *Event) Time() Time { return e.at }

// Cancel removes the event from the schedule. Canceling an event that has
// already fired or been canceled is a no-op. Cancel is O(1) for wheel
// events, O(log n + n) for rare far-future overflow events.
func (e *Event) Cancel() {
	if e == nil || e.canceled || e.fired || e.level == levelDetached {
		return
	}
	s := e.scheduler
	e.canceled = true
	switch e.level {
	case levelSingle:
		s.single = nil
	case levelOverflow:
		s.overflowRemove(e)
	default:
		s.unlink(e)
	}
	e.level = levelDetached
	s.pending--
	s.release(e)
}

// Canceled reports whether Cancel stopped the event before it ran. It is
// false for an event that already fired: canceling a fired event is a no-op
// and does not rewrite history.
func (e *Event) Canceled() bool { return e.canceled }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { return e.fired }

// Handle is a reuse-safe reference to a scheduled event. The scheduler pools
// Event storage, so a bare *Event retained past its firing could alias a
// later, unrelated event; a Handle captures the event's unique sequence
// number and its Cancel only acts while the storage still belongs to that
// schedule. The zero Handle is valid and inert.
type Handle struct {
	e   *Event
	seq uint64
}

// Handle returns a reuse-safe handle for the event.
func (e *Event) Handle() Handle {
	if e == nil {
		return Handle{}
	}
	return Handle{e: e, seq: e.seq}
}

// Cancel cancels the referenced event if it is still the same scheduled
// event (not fired, not recycled); otherwise it is a no-op.
func (h Handle) Cancel() {
	if h.e != nil && h.e.seq == h.seq {
		h.e.Cancel()
	}
}

// Pending reports whether the referenced event is still scheduled.
func (h Handle) Pending() bool {
	return h.e != nil && h.e.seq == h.seq && h.e.level != levelDetached
}

// Priorities for same-instant event ordering. Lower runs first. These exist
// so that, e.g., a frame arriving at a switch at exactly the same instant as
// the switch's queue drain decision is processed in a deterministic,
// physically sensible order.
const (
	PrioControl = -10 // clock sync, management-plane actions
	PrioDeliver = 0   // default: packet deliveries, app callbacks
	PrioDrain   = 10  // queue drains after same-instant arrivals
	PrioReport  = 100 // metric flushes, end-of-window reporting
)

// eventList is an intrusive doubly-linked list threaded through Event.
type eventList struct {
	head, tail *Event
}

// Scheduler is a deterministic discrete-event executor. It is not safe for
// concurrent use: the entire simulation runs on one goroutine, which is what
// makes runs reproducible. (Independent schedulers on independent goroutines
// are fine — that is how core.RunParallel replicates experiments.)
type Scheduler struct {
	now Time
	// cur is the wheel reference time: always ≤ the earliest pending event,
	// and equal to now between steps. Slot placement is relative to cur.
	cur     Time
	seq     uint64
	fired   uint64
	pending int
	rng     *rand.Rand
	halted  bool

	// single is the fast path for the lone-pending-event regime (timer
	// chains, drained queues): when the wheel and overflow are empty, the
	// next event is held here and never touches a wheel slot. Invariant:
	// single != nil ⇒ the wheel and overflow are empty.
	single *Event

	// wheel levels are allocated on first use: at ~4 ns slot granularity,
	// level 0 covers ~1 µs and level 1 ~268 µs, which is where nearly every
	// event in these models lands — most schedulers never touch the slot
	// arrays for levels 2+, and plants construct many short-lived
	// schedulers. Accesses are guarded by occ (an empty level is never
	// dereferenced), so only place needs a nil check.
	wheel [wheelLevels]*[wheelSlots]eventList
	occ   [wheelLevels][wheelWords]uint64 // per-slot occupancy bitmaps

	// overflow holds events beyond the wheel horizon, sorted by
	// (at, prio, seq).
	overflow []*Event

	free *Event // recycled Event storage, linked through next

	// prof accumulates the always-on self-profile (see profile.go).
	prof Profile
}

// NewScheduler returns a scheduler at time zero whose random source is
// seeded with seed. All stochastic model components must draw from Rand()
// so that a run is fully determined by its seed.
func NewScheduler(seed int64) *Scheduler {
	s := &Scheduler{rng: rand.New(rand.NewSource(seed))}
	s.wheel[0] = new([wheelSlots]eventList)
	s.wheel[1] = new([wheelSlots]eventList)
	return s
}

// Reset returns the scheduler to its initial state — time zero, empty
// queue, fresh RNG seeded with seed — without discarding pooled event
// storage, so a scheduler reused across replications does not re-allocate.
func (s *Scheduler) Reset(seed int64) {
	for lvl := 0; lvl < wheelLevels; lvl++ {
		for w := 0; w < wheelWords; w++ {
			bm := s.occ[lvl][w]
			for bm != 0 {
				slot := w<<6 + bits.TrailingZeros64(bm)
				bm &= bm - 1
				l := &s.wheel[lvl][slot]
				for e := l.head; e != nil; {
					nx := e.next
					e.level = levelDetached
					e.next, e.prev = nil, nil
					s.release(e)
					e = nx
				}
				l.head, l.tail = nil, nil
			}
			s.occ[lvl][w] = 0
		}
	}
	for _, e := range s.overflow {
		e.level = levelDetached
		s.release(e)
	}
	s.overflow = s.overflow[:0]
	if s.single != nil {
		s.single.level = levelDetached
		s.release(s.single)
		s.single = nil
	}
	s.now, s.cur = 0, 0
	s.seq, s.fired, s.pending = 0, 0, 0
	s.halted = false
	s.prof = Profile{}
	s.rng = rand.New(rand.NewSource(seed))
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled.
func (s *Scheduler) Pending() int { return s.pending }

// alloc takes an Event from the free list, growing it a chunk at a time.
func (s *Scheduler) alloc() *Event {
	e := s.free
	if e == nil {
		chunk := make([]Event, 64)
		for i := range chunk {
			chunk[i].scheduler = s
			chunk[i].level = levelDetached
			if i+1 < len(chunk) {
				chunk[i].next = &chunk[i+1]
			}
		}
		e = &chunk[0]
	}
	s.free = e.next
	e.next = nil
	e.fired, e.canceled = false, false
	return e
}

// release returns an Event to the free list. The fired/canceled flags are
// left intact so a just-retired handle still answers queries truthfully
// until the storage is reused.
func (s *Scheduler) release(e *Event) {
	e.fn, e.fnArg, e.fnArg3 = nil, nil, nil
	e.arg1, e.arg2, e.arg3 = nil, nil, nil
	e.prev = nil
	e.next = s.free
	s.free = e
}

// At schedules fn to run at instant t with default priority. Scheduling in
// the past panics: it always indicates a model bug, and silently reordering
// time would invalidate every latency measurement downstream.
func (s *Scheduler) At(t Time, fn func()) *Event {
	return s.AtPrio(t, PrioDeliver, fn)
}

// AtPrio schedules fn at instant t with an explicit same-instant priority.
func (s *Scheduler) AtPrio(t Time, prio int, fn func()) *Event {
	e := s.schedule(t, prio)
	e.fn = fn
	return e
}

// AtArgs schedules fn(a, b) at instant t. Because fn can be a package-level
// function with its varying state passed through a and b, hot paths use this
// to schedule without allocating a closure per event. Boxing pointer-typed
// arguments into any does not allocate.
func (s *Scheduler) AtArgs(t Time, prio int, fn func(a, b any), a, b any) *Event {
	e := s.schedule(t, prio)
	e.fnArg, e.arg1, e.arg2 = fn, a, b
	return e
}

// AfterArgs schedules fn(a, b) to run d after the current instant.
func (s *Scheduler) AfterArgs(d Duration, prio int, fn func(a, b any), a, b any) *Event {
	return s.AtArgs(s.now.Add(d), prio, fn, a, b)
}

// AtArgs3 is AtArgs for three-argument callbacks.
func (s *Scheduler) AtArgs3(t Time, prio int, fn func(a, b, c any), a, b, c any) *Event {
	e := s.schedule(t, prio)
	e.fnArg3, e.arg1, e.arg2, e.arg3 = fn, a, b, c
	return e
}

// AfterArgs3 schedules fn(a, b, c) to run d after the current instant.
func (s *Scheduler) AfterArgs3(d Duration, prio int, fn func(a, b, c any), a, b, c any) *Event {
	return s.AtArgs3(s.now.Add(d), prio, fn, a, b, c)
}

func (s *Scheduler) schedule(t Time, prio int) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v, before now %v", t, s.now))
	}
	e := s.alloc()
	e.at, e.prio, e.seq = t, prio, s.seq
	s.seq++
	s.pending++
	if s.pending == 1 {
		// Queue was empty: hold the event out of the wheel entirely. Timer
		// chains and drained-plant phases live in this regime, where
		// schedule and pop are a pointer store and load.
		e.level = levelSingle
		s.single = e
		s.prof.PlacedSingle++
		return e
	}
	if w := s.single; w != nil {
		s.single = nil
		s.place(w)
	}
	s.place(e)
	return e
}

// place inserts e into the wheel (or overflow) relative to s.cur.
func (s *Scheduler) place(e *Event) {
	x := uint64(e.at)>>tickBits ^ uint64(s.cur)>>tickBits
	lvl := 0
	if x != 0 {
		lvl = (bits.Len64(x) - 1) / wheelBits
	}
	if lvl >= wheelLevels {
		s.overflowInsert(e)
		return
	}
	s.prof.PlacedLevel[lvl]++
	slot := int(uint64(e.at)>>tickBits>>(lvl*wheelBits)) & wheelMask
	e.level, e.slot = int8(lvl), uint8(slot)
	if s.wheel[lvl] == nil {
		s.wheel[lvl] = new([wheelSlots]eventList)
	}
	l := &s.wheel[lvl][slot]
	s.occ[lvl][slot>>6] |= 1 << (slot & 63)
	if lvl > 0 || l.tail == nil {
		// Higher-level slots are unordered; re-insertion on cascade sorts
		// them. (Appending keeps chronological seq order within a slot, but
		// cascaded-in events may interleave arbitrarily — only level 0 must
		// be ordered.)
		e.prev = l.tail
		if l.tail != nil {
			l.tail.next = e
		} else {
			l.head = e
		}
		l.tail = e
		return
	}
	// A level-0 slot spans one tick and may mix nearby instants: keep the
	// list fully ordered by (time, prio, seq). New schedules carry the
	// highest seq yet and usually the latest time in the slot, so the
	// tail-backward scan is O(1) for them; only cascaded-in older events
	// walk further.
	p := l.tail
	for p != nil && overflowLess(e, p) {
		p = p.prev
	}
	if p == nil {
		e.next = l.head
		l.head.prev = e
		l.head = e
		return
	}
	e.prev, e.next = p, p.next
	if p.next != nil {
		p.next.prev = e
	} else {
		l.tail = e
	}
	p.next = e
}

// unlink removes e from its wheel slot, clearing the occupancy bit when the
// slot empties.
func (s *Scheduler) unlink(e *Event) {
	l := &s.wheel[e.level][e.slot]
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.next, e.prev = nil, nil
	if l.head == nil {
		slot := int(e.slot)
		s.occ[e.level][slot>>6] &^= 1 << (slot & 63)
	}
}

// overflowLess orders overflow events by the scheduler contract.
func overflowLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

// overflowInsert adds e to the sorted overflow slice (binary search +
// memmove; overflow events are rare far-future timers).
func (s *Scheduler) overflowInsert(e *Event) {
	e.level = levelOverflow
	s.prof.PlacedOverflow++
	lo, hi := 0, len(s.overflow)
	for lo < hi {
		mid := (lo + hi) / 2
		if overflowLess(s.overflow[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.overflow = append(s.overflow, nil)
	copy(s.overflow[lo+1:], s.overflow[lo:])
	s.overflow[lo] = e
}

// overflowRemove deletes e from the overflow slice.
func (s *Scheduler) overflowRemove(e *Event) {
	lo, hi := 0, len(s.overflow)
	for lo < hi {
		mid := (lo + hi) / 2
		if overflowLess(s.overflow[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is e's exact index: (at, prio, seq) is unique.
	copy(s.overflow[lo:], s.overflow[lo+1:])
	s.overflow[len(s.overflow)-1] = nil
	s.overflow = s.overflow[:len(s.overflow)-1]
}

// findOcc returns the first occupied slot index ≥ from at the given level.
func (s *Scheduler) findOcc(lvl, from int) (int, bool) {
	if from >= wheelSlots {
		return 0, false
	}
	w := from >> 6
	word := s.occ[lvl][w] &^ (1<<(from&63) - 1)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word), true
		}
		w++
		if w >= wheelWords {
			return 0, false
		}
		word = s.occ[lvl][w]
	}
}

// pop removes and returns the earliest pending event, cascading higher
// wheel levels and the overflow as needed. It returns nil when nothing is
// pending.
func (s *Scheduler) pop() *Event {
	if e := s.single; e != nil {
		s.single = nil
		e.level = levelDetached
		if e.at > s.cur {
			s.cur = e.at
		}
		return e
	}
	for {
		curT := uint64(s.cur) >> tickBits
		if slot, ok := s.findOcc(0, int(curT)&wheelMask); ok {
			e := s.wheel[0][slot].head
			s.unlink(e)
			e.level = levelDetached
			s.cur = e.at
			return e
		}
		cascaded := false
		for lvl := 1; lvl < wheelLevels; lvl++ {
			idx := int(curT>>(lvl*wheelBits)) & wheelMask
			slot, ok := s.findOcc(lvl, idx+1)
			if !ok {
				continue
			}
			// Jump the reference to the slot's base time (≤ its earliest
			// event) and re-place its events; they land at lower levels.
			shift := uint(lvl * wheelBits)
			base := curT&^(1<<(shift+wheelBits)-1) | uint64(slot)<<shift
			s.cur = Time(base << tickBits)
			l := &s.wheel[lvl][slot]
			head := l.head
			l.head, l.tail = nil, nil
			s.occ[lvl][slot>>6] &^= 1 << (slot & 63)
			for e := head; e != nil; {
				nx := e.next
				e.next, e.prev = nil, nil
				s.place(e)
				e = nx
			}
			cascaded = true
			s.prof.Cascades++
			break
		}
		if cascaded {
			continue
		}
		if len(s.overflow) == 0 {
			return nil
		}
		// The wheel is drained: jump to the overflow head's horizon window
		// and move every overflow event in that window onto the wheel.
		head := s.overflow[0]
		base := Time((uint64(head.at) >> tickBits &^ (1<<horizonBits - 1)) << tickBits)
		if base > s.cur {
			s.cur = base
		}
		n := 0
		for n < len(s.overflow) && uint64(s.overflow[n].at)>>tickBits^uint64(s.cur)>>tickBits < 1<<horizonBits {
			n++
		}
		moved := s.overflow[:n]
		rest := s.overflow[n:]
		for _, e := range moved {
			s.place(e)
		}
		copy(s.overflow, rest)
		tail := s.overflow[len(rest):]
		for i := range tail {
			tail[i] = nil
		}
		s.overflow = s.overflow[:len(rest)]
	}
}

// peek returns the earliest pending event without removing it or mutating
// wheel state, or nil.
func (s *Scheduler) peek() *Event {
	if s.single != nil {
		return s.single
	}
	curT := uint64(s.cur) >> tickBits
	if slot, ok := s.findOcc(0, int(curT)&wheelMask); ok {
		return s.wheel[0][slot].head
	}
	for lvl := 1; lvl < wheelLevels; lvl++ {
		idx := int(curT>>(lvl*wheelBits)) & wheelMask
		slot, ok := s.findOcc(lvl, idx+1)
		if !ok {
			continue
		}
		best := s.wheel[lvl][slot].head
		for e := best.next; e != nil; e = e.next {
			if overflowLess(e, best) {
				best = e
			}
		}
		return best
	}
	if len(s.overflow) > 0 {
		return s.overflow[0]
	}
	return nil
}

// advanceTo moves the clock (and wheel reference) forward to t with no event
// at or before t pending. Slots that the new reference lands inside are
// cascaded so the placement invariant survives the jump.
func (s *Scheduler) advanceTo(t Time) {
	s.now = t
	if t <= s.cur {
		return
	}
	s.cur = t
	for lvl := wheelLevels - 1; lvl >= 1; lvl-- {
		slot := int(uint64(t)>>tickBits>>(lvl*wheelBits)) & wheelMask
		if s.occ[lvl][slot>>6]&(1<<(slot&63)) == 0 {
			continue
		}
		l := &s.wheel[lvl][slot]
		head := l.head
		l.head, l.tail = nil, nil
		s.occ[lvl][slot>>6] &^= 1 << (slot & 63)
		for e := head; e != nil; {
			nx := e.next
			e.next, e.prev = nil, nil
			s.place(e)
			e = nx
		}
	}
	for len(s.overflow) > 0 && uint64(s.overflow[0].at)>>tickBits^uint64(s.cur)>>tickBits < 1<<horizonBits {
		e := s.overflow[0]
		copy(s.overflow, s.overflow[1:])
		s.overflow[len(s.overflow)-1] = nil
		s.overflow = s.overflow[:len(s.overflow)-1]
		s.place(e)
	}
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d Duration, fn func()) *Event {
	return s.At(s.now.Add(d), fn)
}

// AfterPrio schedules fn to run d after the current instant with priority.
func (s *Scheduler) AfterPrio(d Duration, prio int, fn func()) *Event {
	return s.AtPrio(s.now.Add(d), prio, fn)
}

// Every schedules fn at start and then every period thereafter, until the
// returned cancel function is called or the run ends.
func (s *Scheduler) Every(start Time, period Duration, fn func()) (cancel func()) {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	stopped := false
	var pending Handle
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			pending = s.AtPrio(s.now.Add(period), PrioReport, tick).Handle()
		}
	}
	pending = s.AtPrio(start, PrioReport, tick).Handle()
	return func() {
		stopped = true
		pending.Cancel()
	}
}

// Halt stops the run: Run and RunUntil return after the current event's
// callback completes.
func (s *Scheduler) Halt() { s.halted = true }

// step executes the earliest pending event. It reports false when the queue
// is empty.
func (s *Scheduler) step() bool {
	e := s.pop()
	if e == nil {
		return false
	}
	if e.at < s.now {
		panic("sim: event queue time went backwards")
	}
	s.now = e.at
	s.fired++
	s.pending--
	e.fired = true
	fn, fnArg, fnArg3 := e.fn, e.fnArg, e.fnArg3
	a, b, c := e.arg1, e.arg2, e.arg3
	switch {
	case fn != nil:
		s.prof.FiredClosure++
		fn()
	case fnArg != nil:
		s.prof.FiredArgs2++
		fnArg(a, b)
	default:
		s.prof.FiredArgs3++
		fnArg3(a, b, c)
	}
	s.release(e)
	return true
}

// Run executes events until the queue is empty or Halt is called. It returns
// the final simulated time.
func (s *Scheduler) Run() Time {
	s.halted = false
	for !s.halted && s.step() {
	}
	return s.now
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// exactly deadline (even if no event lands there) and returns. Events
// scheduled after deadline remain pending.
func (s *Scheduler) RunUntil(deadline Time) Time {
	s.halted = false
	for !s.halted {
		e := s.peek()
		if e == nil || e.at > deadline {
			break
		}
		s.step()
	}
	if s.now < deadline {
		s.advanceTo(deadline)
	}
	return s.now
}
