package units

import (
	"math"
	"testing"
	"testing/quick"

	"tradenet/internal/sim"
)

func TestSerializationDelay10G(t *testing.T) {
	// 1514-byte max frame at 10G: 1514*8/10e9 s = 1211.2 ns.
	d := SerializationDelay(1514, Rate10G)
	if got, want := d.Nanoseconds(), 1211.2; math.Abs(got-want) > 0.001 {
		t.Fatalf("1514B@10G = %vns, want %vns", got, want)
	}
	// 64-byte min frame at 10G = 51.2 ns.
	d = SerializationDelay(64, Rate10G)
	if got, want := d.Nanoseconds(), 51.2; math.Abs(got-want) > 0.001 {
		t.Fatalf("64B@10G = %vns, want %vns", got, want)
	}
	// Header cost claim from §5: Ethernet+IP+TCP ≈ 54 bytes costs ~40 ns at
	// 10G (the paper rounds; 54*8/10 = 43.2 ns).
	d = SerializationDelay(54, Rate10G)
	if got := d.Nanoseconds(); got < 40 || got > 48 {
		t.Fatalf("54B@10G = %vns, want ~43ns", got)
	}
}

func TestSerializationDelayScalesInversely(t *testing.T) {
	d10 := SerializationDelay(1000, Rate10G)
	d40 := SerializationDelay(1000, Rate40G)
	if d10 != 4*d40 {
		t.Fatalf("10G/40G delay ratio: %v vs %v", d10, d40)
	}
}

func TestBytesInInvertsSerialization(t *testing.T) {
	f := func(n uint16) bool {
		bytes := int(n)
		d := SerializationDelay(bytes, Rate10G)
		return BytesIn(d, Rate10G) == int64(bytes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if BytesIn(-sim.Nanosecond, Rate10G) != 0 {
		t.Fatal("negative duration should carry zero bytes")
	}
}

func TestPropagationFiberVsMicrowave(t *testing.T) {
	// Mahwah to Carteret is roughly 40 miles line-of-sight; fiber routes are
	// longer but use the same distance here to isolate the medium effect.
	dist := 40 * Mile
	fiber := FiberDelay(dist)
	mw := MicrowaveDelay(dist)
	if mw >= fiber {
		t.Fatalf("microwave (%v) should beat fiber (%v)", mw, fiber)
	}
	// Fiber ≈ 1.468x slower than vacuum; ratio of delays ≈ 1.4676.
	ratio := float64(fiber) / float64(mw)
	if ratio < 1.4 || ratio > 1.5 {
		t.Fatalf("fiber/microwave ratio = %v, want ~1.47", ratio)
	}
	// Sanity: 40 miles of microwave ≈ 215 µs? No: 64.4 km / 3e8 ≈ 215 µs is
	// wrong by 1000x — it is ~215 µs only for 64,400 km. Expect ~215 µs/1000.
	if us := mw.Microseconds(); us < 200 || us > 230 {
		t.Fatalf("40mi microwave = %vµs, want ~215µs", us)
	}
}

func TestPropagationDelayValidation(t *testing.T) {
	for _, vf := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("velocity factor %v did not panic", vf)
				}
			}()
			PropagationDelay(Kilometer, vf)
		}()
	}
}

func TestSerializationDelayValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bandwidth did not panic")
		}
	}()
	SerializationDelay(100, 0)
}

func TestBandwidthString(t *testing.T) {
	cases := map[Bandwidth]string{
		Rate10G:    "10Gbps",
		100 * Mbps: "100Mbps",
		64 * Kbps:  "64Kbps",
		999:        "999bps",
	}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(b), got, want)
		}
	}
}
