// Package units provides physical-unit helpers shared across the simulator:
// bandwidths, serialization delay, and propagation delay over fiber,
// microwave, and vacuum.
//
// These are the constants the paper's arithmetic leans on: a 1514-byte frame
// at 10 Gb/s serializes in ~1.2 µs, light in fiber covers tens of miles of
// metro distance in hundreds of microseconds, and microwave links beat fiber
// because air's refractive index is ~1.0003 versus fiber's ~1.47.
package units

import (
	"fmt"

	"tradenet/internal/sim"
)

// Bandwidth is a link rate in bits per second.
type Bandwidth int64

// Common link rates.
const (
	Kbps Bandwidth = 1_000
	Mbps Bandwidth = 1_000_000
	Gbps Bandwidth = 1_000_000_000

	// Rate10G is the standard exchange cross-connect rate (§2: "usually via
	// 10 Gbps Ethernet").
	Rate10G  = 10 * Gbps
	Rate25G  = 25 * Gbps
	Rate40G  = 40 * Gbps
	Rate100G = 100 * Gbps
)

// String formats the bandwidth with a binary-free SI unit.
func (b Bandwidth) String() string {
	switch {
	case b >= Gbps && b%Gbps == 0:
		return fmt.Sprintf("%dGbps", b/Gbps)
	case b >= Mbps && b%Mbps == 0:
		return fmt.Sprintf("%dMbps", b/Mbps)
	case b >= Kbps && b%Kbps == 0:
		return fmt.Sprintf("%dKbps", b/Kbps)
	default:
		return fmt.Sprintf("%dbps", int64(b))
	}
}

// SerializationDelay returns the time to clock bytes onto a link of rate b.
// The result is exact in picoseconds: bytes*8 bits at b bits/s is
// bytes*8*1e12/b picoseconds.
func SerializationDelay(bytes int, b Bandwidth) sim.Duration {
	if b <= 0 {
		panic("units: nonpositive bandwidth")
	}
	bits := int64(bytes) * 8
	return sim.Duration(bits * int64(sim.Second) / int64(b))
}

// BytesIn returns how many whole bytes a link of rate b can serialize in d.
func BytesIn(d sim.Duration, b Bandwidth) int64 {
	if d < 0 {
		return 0
	}
	bits := int64(b) * int64(d) / int64(sim.Second)
	return bits / 8
}

// Distance is a path length in meters.
type Distance float64

// Common distances.
const (
	Meter     Distance = 1
	Kilometer          = 1000 * Meter
	Mile               = 1609.344 * Meter
)

// Propagation media. Velocity factors are fractions of c in vacuum.
const (
	cVacuum = 299_792_458.0 // m/s

	// VelocityFiber is the velocity factor of light in standard single-mode
	// fiber (group index ~1.468).
	VelocityFiber = 1 / 1.468

	// VelocityMicrowave is the velocity factor of a line-of-sight microwave
	// link; air's refractive index is ~1.0003, effectively c. This is why
	// trading firms run microwave between colos despite rain fade (§2).
	VelocityMicrowave = 1 / 1.0003

	// VelocityCopper approximates twinax/DAC cable inside a cage.
	VelocityCopper = 0.66
)

// PropagationDelay returns the one-way latency for a signal covering
// distance dist in a medium with the given velocity factor.
func PropagationDelay(dist Distance, velocityFactor float64) sim.Duration {
	if velocityFactor <= 0 || velocityFactor > 1 {
		panic("units: velocity factor must be in (0, 1]")
	}
	seconds := float64(dist) / (cVacuum * velocityFactor)
	return sim.Duration(seconds * float64(sim.Second))
}

// FiberDelay returns one-way propagation latency over fiber of length dist.
func FiberDelay(dist Distance) sim.Duration {
	return PropagationDelay(dist, VelocityFiber)
}

// MicrowaveDelay returns one-way propagation latency over a line-of-sight
// microwave path of length dist.
func MicrowaveDelay(dist Distance) sim.Duration {
	return PropagationDelay(dist, VelocityMicrowave)
}
