package exchange

import (
	"testing"

	"tradenet/internal/feed"
	"tradenet/internal/market"
	"tradenet/internal/mcast"
	"tradenet/internal/netsim"
	"tradenet/internal/orderentry"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/units"
)

// codFixture is the newFixture plant with the exchange's order-entry
// hardening armed before the session is accepted (EnableResilience must
// precede AcceptSession), keeping the session handle the probes need.
type codFixture struct {
	fixture
	sess *orderentry.ExchangeSession
}

func newCODFixture(t *testing.T) *codFixture {
	t.Helper()
	f := &codFixture{fixture: fixture{
		sched: sim.NewScheduler(21), u: testUniverse(), reasm: make(map[uint8]*feed.Reassembler),
	}}
	pmap := mcast.NewMap(mcast.NewPartitioner(f.u, mcast.ByAlpha, 0), mcast.NewAllocator(1))
	f.ex = New(f.sched, f.u, pmap, Config{
		ID: 1, Name: "EXCH-A", Variant: feed.ExchangeA,
		MatchLatency: 2 * sim.Microsecond, HostID: 100,
	})
	f.ex.EnableResilience(Resilience{
		Session: orderentry.ExchangeResilience{
			Liveness:        orderentry.LivenessConfig{Interval: 500 * sim.Microsecond, MissLimit: 3},
			RetainResponses: 256,
			Idempotent:      true,
		},
		StreamMaxRTO:    3200 * sim.Microsecond,
		StreamDeadAfter: 8,
	})

	mdHost := netsim.NewHost(f.sched, "md-rx")
	f.mdRx = mdHost.AddNIC("md", 200)
	netsim.Connect(f.ex.MDNIC().Port, f.mdRx.Port, units.Rate10G, 0)
	for i, g := range pmap.Groups() {
		f.mdRx.Join(g)
		f.reasm[uint8(i)] = feed.NewReassembler(uint8(i))
	}
	f.mdRx.OnFrame = func(_ *netsim.NIC, fr *netsim.Frame) {
		var uf pkt.UDPFrame
		if err := pkt.ParseUDPFrame(fr.Data, &uf); err != nil {
			t.Fatalf("md frame parse: %v", err)
		}
		var h feed.UnitHeader
		if _, err := feed.DecodeUnitHeader(uf.Payload, &h); err != nil {
			t.Fatalf("unit header: %v", err)
		}
		f.reasm[h.Unit].Consume(uf.Payload, func(m *feed.Msg) {
			f.mdMsgs = append(f.mdMsgs, *m)
		})
	}

	oeHost := netsim.NewHost(f.sched, "client")
	oeNIC := oeHost.AddNIC("oe", 300)
	netsim.Connect(oeNIC.Port, f.ex.OENIC().Port, units.Rate10G, 500*sim.Nanosecond)
	f.oeNIC, f.clientMux = oeNIC, netsim.NewStreamMux(oeNIC)
	sess, exPort := f.ex.AcceptSession(oeNIC.Addr(40000))
	f.sess = sess
	cs := netsim.NewStream(oeNIC, 40000, f.ex.OENIC().Addr(exPort))
	f.clientMux.Register(cs)
	f.client = orderentry.NewClientSession(func(b []byte) { cs.Write(b) })
	cs.OnData = func(b []byte) {
		if err := f.client.Receive(b); err != nil {
			t.Fatalf("client receive: %v", err)
		}
	}
	return f
}

func TestExchangeCancelOnDisconnect(t *testing.T) {
	f := newCODFixture(t)
	aapl, _ := f.u.Lookup("AAPL")
	msft, _ := f.u.Lookup("MSFT")
	f.sched.At(0, func() { f.client.Logon() })
	f.sched.After(sim.Millisecond, func() {
		f.client.NewOrder(1, aapl, market.Buy, 1500000, 100)
		f.client.NewOrder(2, msft, market.Buy, 900000, 50)
	})
	// ...and then the client falls silent forever: no heartbeats, no logout.
	// The exchange's liveness deadline must fire and sweep the book.
	f.run()

	if f.ex.SessionsDropped != 1 {
		t.Fatalf("sessions dropped = %d", f.ex.SessionsDropped)
	}
	if f.ex.CancelOnDisconnect != 2 {
		t.Fatalf("cancel-on-disconnect = %d, want 2", f.ex.CancelOnDisconnect)
	}
	if n := f.ex.OpenOrdersOf(f.sess); n != 0 {
		t.Fatalf("open orders after disconnect = %d", n)
	}
	if bbo := f.ex.BBO(aapl); bbo.Bid.Size != 0 {
		t.Fatalf("AAPL bid survived cancel-on-disconnect: %+v", bbo.Bid)
	}
	// Each removal was published on the feed — downstream books must learn
	// the liquidity is gone.
	var deletes int
	for _, m := range f.mdMsgs {
		if m.Type == feed.MsgDeleteOrder {
			deletes++
		}
	}
	if deletes != 2 {
		t.Fatalf("feed deletes = %d, want 2", deletes)
	}
}

func TestExchangeReacceptReplaysCancels(t *testing.T) {
	f := newCODFixture(t)
	aapl, _ := f.u.Lookup("AAPL")
	var cancelAcks int
	f.client.OnCancelAck = func(uint64) { cancelAcks++ }
	f.sched.At(0, func() { f.client.Logon() })
	f.sched.After(sim.Millisecond, func() {
		f.client.NewOrder(1, aapl, market.Buy, 1500000, 100)
	})
	// Well after cancel-on-disconnect has swept the book, the client
	// redials: fresh transport, same session, and a logon naming the next
	// sequence it expects. The retained cancel-ack must replay so the
	// client's working-order view converges with the (now empty) book.
	f.sched.At(sim.Time(6*sim.Millisecond), func() {
		exPort := f.ex.ReacceptSession(f.sess, f.oeNIC.Addr(40001))
		cs2 := netsim.NewStream(f.oeNIC, 40001, f.ex.OENIC().Addr(exPort))
		f.clientMux.Register(cs2)
		f.client.Drop()
		f.client.Rebind(func(b []byte) { cs2.Write(b) })
		cs2.OnData = func(b []byte) {
			if err := f.client.Receive(b); err != nil {
				t.Fatalf("client receive after redial: %v", err)
			}
		}
		f.client.Relogon()
	})
	f.run()

	if !f.client.LoggedOn() {
		t.Fatal("relogon failed")
	}
	if f.sess.ReplayedMsgs == 0 {
		t.Fatal("nothing replayed on resync")
	}
	if cancelAcks != 1 {
		t.Fatalf("replayed cancel acks = %d, want 1", cancelAcks)
	}
	if ids := f.client.OpenIDs(); len(ids) != 0 {
		t.Fatalf("client still believes orders %v are working", ids)
	}
	if got := len(f.ex.WorkingOrders(f.sess)); got != 0 {
		t.Fatalf("exchange working orders = %d, want 0", got)
	}
}
