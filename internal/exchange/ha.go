// Exchange high availability: the venue-side halves of a deterministic
// primary/backup pair. The primary journals every state change — accepted
// operations at engine entry, the byte-exact response transcript of every
// session, every published feed datagram — through a replication.Journal;
// the backup runs dark, applying the journal into a shadow of the primary's
// books, ownership indexes, session transcripts, and feed retain windows.
// Because matching is deterministic, replaying the operation stream through
// the same engine reproduces every exchange order id, execution id, and
// fill byte-for-byte; the adopted transcripts and datagrams are not
// recomputed at all, so a promoted backup resumes order-entry sequences and
// feed numbering exactly where the primary stopped. All of it is opt-in:
// with no journal and no shadow every hot path costs one nil/bool compare.
package exchange

import (
	"fmt"

	"tradenet/internal/fault"
	"tradenet/internal/feed"
	"tradenet/internal/orderentry"
	"tradenet/internal/replication"
	"tradenet/internal/sim"
)

// EnableJournal makes this exchange the primary of a hot-standby pair:
// every subsequent state change streams through the returned journal via
// send (one encoded record per call — callers put it on a dedicated,
// loss-free replication link). Call before wiring sessions, so session
// openings are announced to the standby.
func (e *Exchange) EnableJournal(send func([]byte)) *replication.Journal {
	e.jrn = replication.NewJournal(send)
	return e.jrn
}

// Journal returns the replication journal (nil when not a primary).
func (e *Exchange) Journal() *replication.Journal { return e.jrn }

// StartShadow puts the exchange into dark-standby mode: state advances only
// by journal application (ShadowApply) and nothing is transmitted until
// Promote.
func (e *Exchange) StartShadow() { e.dark = true }

// Dark reports whether the exchange is an unpromoted standby.
func (e *Exchange) Dark() bool { return e.dark }

// Crashed reports whether the process has been killed by a fault.
func (e *Exchange) Crashed() bool { return e.crashed }

// SessionAt returns the i'th accepted session (accept order — the indexing
// a replication pair shares).
func (e *Exchange) SessionAt(i int) *orderentry.ExchangeSession { return e.sessList[i] }

// NumSessions returns how many sessions have been accepted.
func (e *Exchange) NumSessions() int { return len(e.sessList) }

// LastPublishAt returns the virtual time of the most recent feed datagram,
// maintained while journaling — the left edge of a failover's blackout
// window.
func (e *Exchange) LastPublishAt() sim.Time { return e.lastPublishAt }

// FaultName names the exchange process for fault-plan event logs.
func (e *Exchange) FaultName() string { return e.cfg.Name }

// Crash implements fault.Process: the whole venue process dies at this
// instant. Every order-entry and recovery transport it owns is killed (no
// FIN, no reset — silence), session timers stop without firing callbacks,
// and the engine ignores any already-scheduled match events. In-flight
// frames it transmitted earlier still deliver; that is physics, not state.
func (e *Exchange) Crash() {
	if e.crashed {
		return
	}
	e.crashed = true
	for _, sess := range e.sessList {
		sess.Quiesce()
		if link, ok := e.links[sess]; ok && link.stream != nil {
			link.stream.Kill()
		}
	}
	for _, st := range e.recStreams {
		st.Kill()
	}
}

// Restart implements fault.Process: the process comes back cold, with state
// exactly as the crash froze it (rehydration is the owner's policy — the
// HA design promotes the standby instead of restarting a primary).
func (e *Exchange) Restart() { e.crashed = false }

// Compile-time check: an Exchange is a schedulable fault target.
var _ fault.Process = (*Exchange)(nil)

// ShadowApply applies one journal record to a dark standby. Operations run
// through the real engine entry points — acceptance screening already
// happened on the primary — while transcripts and feed datagrams are
// adopted verbatim rather than recomputed.
func (e *Exchange) ShadowApply(r *replication.Record) {
	switch r.Kind {
	case replication.RecSessionOpen:
		if r.Session != len(e.sessList) {
			panic(fmt.Sprintf("%s: shadow session %d opened out of order (have %d)",
				e.cfg.Name, r.Session, len(e.sessList)))
		}
		e.acceptShadow()
	case replication.RecOp:
		sess := e.sessList[r.Session]
		m := orderentry.Msg{OrderID: r.OrderID, Symbol: r.Symbol,
			Side: r.Side, Price: r.Price, Qty: r.Qty}
		switch r.Op {
		case replication.OpNew:
			m.Kind = orderentry.KindNewOrder
			// Mirror the primary's duplicate screen so a post-promotion
			// resubmit of this id is suppressed, not double-matched.
			sess.NoteSeen(r.OrderID)
			e.execNew(sess, &m)
		case replication.OpCancel:
			m.Kind = orderentry.KindCancelOrder
			e.execCancel(sess, &m)
		case replication.OpModify:
			m.Kind = orderentry.KindModifyOrder
			e.execModify(sess, &m)
		}
	case replication.RecSessionTx:
		e.sessList[r.Session].AdoptTx(r.TxSeq, r.Payload)
	case replication.RecFeedRaw:
		e.adoptFeedDgram(int(r.Partition), r.Payload)
	case replication.RecMassCancel:
		e.massCancel(e.sessList[r.Session])
	case replication.RecHeartbeat:
		// Liveness is the cluster layer's concern; nothing to apply.
	}
}

// acceptShadow opens the standby-side twin of a session the primary
// accepted: same index, no transport, muted. Its engine handlers are wired
// now (guarded against the missing stream) so promotion only has to attach
// a transport and unmute.
func (e *Exchange) acceptShadow() *orderentry.ExchangeSession {
	sess := orderentry.NewExchangeSession(func([]byte) {})
	sess.Mute(true)
	if e.res != nil {
		// Retention and idempotency track the primary from the first record;
		// liveness stays dark until promotion (a corpse must not heartbeat,
		// and the standby must not cancel-on-disconnect clients it has never
		// heard from).
		cfg := e.res.Session
		cfg.Liveness = orderentry.LivenessConfig{}
		sess.Harden(e.sched, cfg)
	}
	link := &oeLink{}
	e.links[sess] = link
	e.wireEngine(sess, link)
	e.sessIdx[sess] = len(e.sessList)
	e.sessList = append(e.sessList, sess)
	return sess
}

// adoptFeedDgram installs a primary-published datagram into the standby's
// feed plane: retained for gap recovery, and the partition's packer adopts
// the next sequence so post-promotion publishing continues the numbering
// without a discontinuity — downstream receivers heal the blackout as an
// ordinary gap, or see none at all.
func (e *Exchange) adoptFeedDgram(part int, dgram []byte) {
	var h feed.UnitHeader
	if _, err := feed.DecodeUnitHeader(dgram, &h); err != nil {
		panic(fmt.Sprintf("%s: adopt feed dgram: %v", e.cfg.Name, err))
	}
	e.retain[part].Retain(dgram)
	e.packers[part].SetNextSeq(h.Seq + uint32(h.Count))
	e.Published++
	e.PublishedMsgs += uint64(h.Count)
}

// Promote turns a dark standby into the live venue: publishing resumes and
// every shadow session unmutes and re-arms with grace — a liveness deadline
// wide enough for clients to detect the primary's death and redial before
// cancel-on-disconnect would sweep their orders. Transports attach as
// clients reconnect through ReacceptSession, exactly like any PR 5 session
// re-home.
func (e *Exchange) Promote(grace orderentry.ExchangeResilience) {
	if !e.dark {
		return
	}
	e.dark = false
	for _, sess := range e.sessList {
		sess := sess
		sess.Mute(false)
		sess.Harden(e.sched, grace)
		sess.OnPeerDead = func() { e.cancelOnDisconnect(sess) }
		sess.OnLogout = func() { e.massCancel(sess) }
	}
}
