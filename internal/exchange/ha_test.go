package exchange

import (
	"reflect"
	"testing"

	"tradenet/internal/feed"
	"tradenet/internal/market"
	"tradenet/internal/mcast"
	"tradenet/internal/netsim"
	"tradenet/internal/orderentry"
	"tradenet/internal/pkt"
	"tradenet/internal/replication"
	"tradenet/internal/sim"
	"tradenet/internal/units"
)

// bookDigest flattens every symbol's aggregated depth into one comparable
// value — the "book state equal" half of the failover invariant.
func bookDigest(e *Exchange, u *market.Universe) map[market.SymbolID][2][]market.Level {
	d := make(map[market.SymbolID][2][]market.Level)
	for id := market.SymbolID(1); int(id) <= u.Len(); id++ {
		b := e.Book(id)
		if b.Orders() == 0 {
			continue
		}
		d[id] = [2][]market.Level{b.Levels(market.Buy, 32), b.Levels(market.Sell, 32)}
	}
	return d
}

// TestJournaledShadowMirrorsPrimary drives a full order lifecycle — adds,
// a cross, a modify, a cancel, a logout mass-cancel — through a journaled
// primary, crashes it mid-run, promotes the shadow, and checks the standby
// froze on exactly the primary's state: books, id allocators, execution
// counts, feed numbering, and replay windows. Then the promoted venue keeps
// matching with ids and feed sequences continuing where the primary stopped.
func TestJournaledShadowMirrorsPrimary(t *testing.T) {
	sched := sim.NewScheduler(7)
	u := testUniverse()
	pmap := mcast.NewMap(mcast.NewPartitioner(u, mcast.ByAlpha, 0), mcast.NewAllocator(1))
	primary := New(sched, u, pmap, Config{
		ID: 1, Name: "EX-P", Variant: feed.ExchangeA,
		MatchLatency: 2 * sim.Microsecond, HostID: 100,
	})
	backup := New(sched, u, pmap, Config{
		ID: 1, Name: "EX-B", Variant: feed.ExchangeA,
		MatchLatency: 2 * sim.Microsecond, HostID: 110,
	})
	res := Resilience{Session: orderentry.ExchangeResilience{RetainResponses: 128, Idempotent: true}}
	primary.EnableResilience(res)
	backup.EnableResilience(res)
	backup.StartShadow()
	fol := &replication.Follower{Apply: backup.ShadowApply}
	primary.EnableJournal(func(b []byte) {
		if err := fol.Receive(b); err != nil {
			t.Fatalf("journal apply: %v", err)
		}
	})

	// Market-data receivers keep both MD NICs connected (send on an
	// unconnected port panics); the backup's records post-promotion headers.
	mdHostP := netsim.NewHost(sched, "md-rx-p")
	netsim.Connect(primary.MDNIC().Port, mdHostP.AddNIC("md", 200).Port, units.Rate10G, 0)
	mdHostB := netsim.NewHost(sched, "md-rx-b")
	bRx := mdHostB.AddNIC("md", 201)
	netsim.Connect(backup.MDNIC().Port, bRx.Port, units.Rate10G, 0)
	var backupHdrs []feed.UnitHeader
	bRx.OnFrame = func(_ *netsim.NIC, fr *netsim.Frame) {
		var uf pkt.UDPFrame
		if err := pkt.ParseUDPFrame(fr.Data, &uf); err != nil {
			t.Fatalf("md frame: %v", err)
		}
		var h feed.UnitHeader
		if _, err := feed.DecodeUnitHeader(uf.Payload, &h); err != nil {
			t.Fatalf("unit header: %v", err)
		}
		backupHdrs = append(backupHdrs, h)
	}
	for _, g := range pmap.Groups() {
		bRx.Join(g)
	}

	// One order-entry client against the primary.
	oeHost := netsim.NewHost(sched, "client")
	oeNIC := oeHost.AddNIC("oe", 300)
	netsim.Connect(oeNIC.Port, primary.OENIC().Port, units.Rate10G, 500*sim.Nanosecond)
	clientMux := netsim.NewStreamMux(oeNIC)
	_, exPort := primary.AcceptSession(oeNIC.Addr(40000))
	cs := netsim.NewStream(oeNIC, 40000, primary.OENIC().Addr(exPort))
	clientMux.Register(cs)
	client := orderentry.NewClientSession(func(b []byte) { cs.Write(b) })
	cs.OnData = func(b []byte) {
		if err := client.Receive(b); err != nil {
			t.Fatalf("client receive: %v", err)
		}
	}

	aapl, _ := u.Lookup("AAPL")
	msft, _ := u.Lookup("MSFT")
	spy, _ := u.Lookup("SPY")
	at := func(tenths int64, fn func()) {
		sched.At(sim.Time(tenths)*sim.Time(sim.Millisecond)/10, fn)
	}
	at(0, client.Logon)
	at(10, func() { client.NewOrder(1, aapl, market.Buy, 1_500_000, 100) })
	at(15, func() { client.NewOrder(2, aapl, market.Sell, 1_500_000, 60) }) // crosses: fills both
	at(20, func() { client.NewOrder(3, msft, market.Buy, 2_000_000, 50) })
	at(25, func() { client.Modify(3, 2_100_000, 40) })
	at(30, func() { client.NewOrder(4, spy, market.Sell, 4_000_000, 25) })
	at(35, func() { client.Cancel(4) })

	// Crash mid-life and promote the shadow at the same instant (the
	// cluster's detection delay is a layer above this test).
	crashAt := sim.Time(5 * sim.Millisecond)
	var pDigest map[market.SymbolID][2][]market.Level
	var pNextSeqs []uint32
	sched.AtPrio(crashAt, sim.PrioControl, func() {
		primary.Crash()
		pDigest = bookDigest(primary, u)
		for _, p := range primary.packers {
			pNextSeqs = append(pNextSeqs, p.NextSeq())
		}

		if got := bookDigest(backup, u); !reflect.DeepEqual(got, pDigest) {
			t.Fatalf("shadow books diverged:\n got %v\nwant %v", got, pDigest)
		}
		if backup.nextExchangeOrderID != primary.nextExchangeOrderID ||
			backup.nextExecID != primary.nextExecID {
			t.Fatalf("id allocators diverged: order %d/%d exec %d/%d",
				backup.nextExchangeOrderID, primary.nextExchangeOrderID,
				backup.nextExecID, primary.nextExecID)
		}
		if backup.Executions != primary.Executions || primary.Executions == 0 {
			t.Fatalf("executions: backup %d, primary %d", backup.Executions, primary.Executions)
		}
		if backup.Published != primary.Published || backup.PublishedMsgs != primary.PublishedMsgs {
			t.Fatalf("feed counters: backup %d/%d, primary %d/%d",
				backup.Published, backup.PublishedMsgs, primary.Published, primary.PublishedMsgs)
		}
		for i, p := range backup.packers {
			if p.NextSeq() != pNextSeqs[i] {
				t.Fatalf("partition %d: backup next seq %d, primary %d", i, p.NextSeq(), pNextSeqs[i])
			}
			if backup.retain[i].Retained() != primary.retain[i].Retained() ||
				backup.retain[i].OldestSeq() != primary.retain[i].OldestSeq() {
				t.Fatalf("partition %d: replay windows diverged", i)
			}
		}
		if backup.NumSessions() != primary.NumSessions() {
			t.Fatalf("sessions: backup %d, primary %d", backup.NumSessions(), primary.NumSessions())
		}
		if backup.SessionAt(0).SeqOut() != primary.SessionAt(0).SeqOut() {
			t.Fatalf("session seq: backup %d, primary %d",
				backup.SessionAt(0).SeqOut(), primary.SessionAt(0).SeqOut())
		}

		backup.Promote(orderentry.ExchangeResilience{RetainResponses: 128, Idempotent: true})
	})

	// The promoted venue matches on: a sell crossing MSFT's modified bid.
	// (Driven at the engine entry — transport re-homing is session-layer
	// machinery proven elsewhere.)
	promotedWant := primary.nextExchangeOrderID // filled in at crash time via closure below
	_ = promotedWant
	sched.At(sim.Time(6*sim.Millisecond), func() {
		m := &orderentry.Msg{Kind: orderentry.KindNewOrder, OrderID: 99,
			Symbol: msft, Side: market.Sell, Price: 2_100_000, Qty: 10}
		before := backup.nextExchangeOrderID
		if before != primary.nextExchangeOrderID {
			t.Fatalf("allocators drifted before promotion order")
		}
		backup.execNew(backup.SessionAt(0), m)
		if backup.nextExchangeOrderID != before+1 {
			t.Fatalf("promoted venue order id %d, want %d", backup.nextExchangeOrderID, before+1)
		}
	})
	sched.RunUntil(sim.Time(8 * sim.Millisecond))

	// The crashed primary froze: its counters did not advance.
	if primary.nextExchangeOrderID+1 != backup.nextExchangeOrderID {
		t.Fatalf("primary advanced after crash: %d vs backup %d",
			primary.nextExchangeOrderID, backup.nextExchangeOrderID)
	}
	if backup.Executions != primary.Executions+1 {
		t.Fatalf("promoted execution not counted: %d vs %d", backup.Executions, primary.Executions)
	}
	// The promoted publishes continued every partition's numbering: each
	// received datagram starts exactly at the sequence the primary left off.
	if len(backupHdrs) == 0 {
		t.Fatal("promoted venue published nothing")
	}
	seen := make(map[uint8]uint32)
	for _, h := range backupHdrs {
		want, ok := seen[h.Unit]
		if !ok {
			want = pNextSeqs[h.Unit]
		}
		if h.Seq != want {
			t.Fatalf("unit %d: post-promotion seq %d, want %d (no discontinuity)", h.Unit, h.Seq, want)
		}
		seen[h.Unit] = h.Seq + uint32(h.Count)
	}
}

// TestExchangeHANoJournalIsInert: with no journal and no shadow, the new
// fields stay zero-valued and the crash guard alone changes behavior.
func TestCrashFreezesEngineAndKillsTransports(t *testing.T) {
	f := newFixture(t)
	aapl, _ := f.u.Lookup("AAPL")
	var unknown []uint64
	f.client.OnOrderUnknown = func(id uint64) { unknown = append(unknown, id) }
	f.sched.At(0, func() { f.client.Logon() })
	f.sched.After(sim.Millisecond, func() {
		f.client.NewOrder(1, aapl, market.Buy, 1_500_000, 100)
	})
	f.sched.At(sim.Time(2*sim.Millisecond), func() { f.ex.Crash() })
	// Submitted after the crash: the transport is dead, the engine frozen.
	f.sched.At(sim.Time(2100*sim.Microsecond), func() {
		f.client.NewOrder(2, aapl, market.Sell, 1_500_000, 50)
	})
	// Bounded run: the client's transport retransmits into the dead venue
	// indefinitely (no stream hardening in this fixture), so the event queue
	// never drains on its own.
	f.sched.RunUntil(sim.Time(10 * sim.Millisecond))
	if !f.ex.Crashed() {
		t.Fatal("not crashed")
	}
	if st, ok := f.client.Order(1); !ok || !st.Acked {
		t.Fatalf("pre-crash order lost: %+v ok=%v", st, ok)
	}
	if st, ok := f.client.Order(2); ok && st.Acked {
		t.Fatal("post-crash order acked by a dead exchange")
	}
	if f.ex.Book(aapl).Orders() != 1 {
		t.Fatalf("book mutated after crash: %d orders", f.ex.Book(aapl).Orders())
	}
}
