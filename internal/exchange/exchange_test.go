package exchange

import (
	"math/rand"
	"testing"

	"tradenet/internal/feed"
	"tradenet/internal/market"
	"tradenet/internal/mcast"
	"tradenet/internal/netsim"
	"tradenet/internal/orderentry"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
	"tradenet/internal/units"
)

func testUniverse() *market.Universe {
	u := market.NewUniverse()
	u.Add("AAPL", market.Equity, 0)
	u.Add("MSFT", market.Equity, 0)
	u.Add("SPY", market.ETF, 0)
	u.Add("ZTS", market.Equity, 0)
	return u
}

type fixture struct {
	sched     *sim.Scheduler
	u         *market.Universe
	ex        *Exchange
	client    *orderentry.ClientSession
	oeNIC     *netsim.NIC
	clientMux *netsim.StreamMux
	mdRx      *netsim.NIC
	mdMsgs    []feed.Msg
	reasm     map[uint8]*feed.Reassembler
}

// newFixture wires an exchange, one order-entry client, and one market-data
// receiver joined to every partition group, all over direct 10G links.
func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{sched: sim.NewScheduler(21), u: testUniverse(), reasm: make(map[uint8]*feed.Reassembler)}
	pmap := mcast.NewMap(mcast.NewPartitioner(f.u, mcast.ByAlpha, 0), mcast.NewAllocator(1))
	f.ex = New(f.sched, f.u, pmap, Config{
		ID: 1, Name: "EXCH-A", Variant: feed.ExchangeA,
		MatchLatency: 2 * sim.Microsecond, HostID: 100,
	})

	// Market-data receiver.
	mdHost := netsim.NewHost(f.sched, "md-rx")
	f.mdRx = mdHost.AddNIC("md", 200)
	netsim.Connect(f.ex.MDNIC().Port, f.mdRx.Port, units.Rate10G, 0)
	for i, g := range pmap.Groups() {
		f.mdRx.Join(g)
		f.reasm[uint8(i)] = feed.NewReassembler(uint8(i))
	}
	f.mdRx.OnFrame = func(_ *netsim.NIC, fr *netsim.Frame) {
		var uf pkt.UDPFrame
		if err := pkt.ParseUDPFrame(fr.Data, &uf); err != nil {
			t.Fatalf("md frame parse: %v", err)
		}
		var h feed.UnitHeader
		if _, err := feed.DecodeUnitHeader(uf.Payload, &h); err != nil {
			t.Fatalf("unit header: %v", err)
		}
		f.reasm[h.Unit].Consume(uf.Payload, func(m *feed.Msg) {
			f.mdMsgs = append(f.mdMsgs, *m)
		})
	}

	// Order-entry client.
	oeHost := netsim.NewHost(f.sched, "client")
	oeNIC := oeHost.AddNIC("oe", 300)
	netsim.Connect(oeNIC.Port, f.ex.OENIC().Port, units.Rate10G, 500*sim.Nanosecond)
	clientMux := netsim.NewStreamMux(oeNIC)
	f.oeNIC, f.clientMux = oeNIC, clientMux
	_, exPort := f.ex.AcceptSession(oeNIC.Addr(40000))
	cs := netsim.NewStream(oeNIC, 40000, f.ex.OENIC().Addr(exPort))
	clientMux.Register(cs)
	f.client = orderentry.NewClientSession(func(b []byte) { cs.Write(b) })
	cs.OnData = func(b []byte) {
		if err := f.client.Receive(b); err != nil {
			t.Fatalf("client receive: %v", err)
		}
	}
	return f
}

func (f *fixture) run() { f.sched.Run() }

func TestExchangeLogonAndAck(t *testing.T) {
	f := newFixture(t)
	var acks []uint64
	f.client.OnAck = func(id uint64) { acks = append(acks, id) }
	f.sched.At(0, func() {
		f.client.Logon()
	})
	f.sched.After(sim.Millisecond, func() {
		aapl, _ := f.u.Lookup("AAPL")
		f.client.NewOrder(1, aapl, market.Buy, 1500000, 100)
	})
	f.run()
	if !f.client.LoggedOn() {
		t.Fatal("logon failed")
	}
	if len(acks) != 1 || acks[0] != 1 {
		t.Fatalf("acks = %v", acks)
	}
	// The resting add was published on AAPL's partition (unit 0 = letter A).
	if len(f.mdMsgs) != 1 || f.mdMsgs[0].Type != feed.MsgAddOrder {
		t.Fatalf("md = %+v", f.mdMsgs)
	}
	if f.mdMsgs[0].SymbolString() != "AAPL" || f.mdMsgs[0].Qty != 100 {
		t.Fatalf("add msg = %+v", f.mdMsgs[0])
	}
}

func TestExchangeMatchAndFillBothSides(t *testing.T) {
	f := newFixture(t)
	type fill struct {
		id   uint64
		qty  market.Qty
		done bool
	}
	var fills []fill
	f.client.OnFill = func(id uint64, q market.Qty, _ market.Price, done bool) {
		fills = append(fills, fill{id, q, done})
	}
	aapl, _ := f.u.Lookup("AAPL")
	f.sched.At(0, func() { f.client.Logon() })
	f.sched.After(sim.Millisecond, func() {
		f.client.NewOrder(1, aapl, market.Buy, 1500000, 100)
	})
	f.sched.After(2*sim.Millisecond, func() {
		f.client.NewOrder(2, aapl, market.Sell, 1500000, 60)
	})
	f.run()
	if len(fills) != 2 {
		t.Fatalf("fills = %+v", fills)
	}
	// Resting buy partially filled; incoming sell fully filled.
	for _, fl := range fills {
		if fl.qty != 60 {
			t.Fatalf("fill qty = %d", fl.qty)
		}
		if fl.id == 2 && !fl.done {
			t.Fatal("incoming order should be done")
		}
		if fl.id == 1 && fl.done {
			t.Fatal("resting order should remain open (40 left)")
		}
	}
	st, ok := f.client.Order(1)
	if !ok || st.Qty != 40 || st.Filled != 60 {
		t.Fatalf("order1 = %+v", st)
	}
	// Feed saw: add(100), then executed(60). No add for the fully-matched
	// incoming order.
	var types []feed.MsgType
	for _, m := range f.mdMsgs {
		types = append(types, m.Type)
	}
	if len(types) != 2 || types[0] != feed.MsgAddOrder || types[1] != feed.MsgOrderExecuted {
		t.Fatalf("md types = %v", types)
	}
	// Exchange BBO reflects the remaining 40.
	if bbo := f.ex.BBO(aapl); bbo.Bid.Size != 40 {
		t.Fatalf("BBO = %+v", bbo)
	}
}

func TestExchangeCancelAndRace(t *testing.T) {
	f := newFixture(t)
	var cancelAcks, cancelRejects int
	f.client.OnCancelAck = func(uint64) { cancelAcks++ }
	f.client.OnCancelReject = func(uint64) { cancelRejects++ }
	aapl, _ := f.u.Lookup("AAPL")
	f.sched.At(0, func() { f.client.Logon() })
	f.sched.After(sim.Millisecond, func() {
		f.client.NewOrder(1, aapl, market.Buy, 1500000, 100)
	})
	f.sched.After(2*sim.Millisecond, func() { f.client.Cancel(1) })
	// Cancel of an unknown order races to rejection.
	f.sched.After(3*sim.Millisecond, func() { f.client.Cancel(77) })
	f.run()
	if cancelAcks != 1 || cancelRejects != 1 {
		t.Fatalf("cancelAcks=%d cancelRejects=%d", cancelAcks, cancelRejects)
	}
	// Delete published on the feed.
	last := f.mdMsgs[len(f.mdMsgs)-1]
	if last.Type != feed.MsgDeleteOrder {
		t.Fatalf("last md = %+v", last)
	}
}

func TestExchangeRejectsInvalid(t *testing.T) {
	f := newFixture(t)
	var reasons []orderentry.RejectReason
	f.client.OnReject = func(_ uint64, r orderentry.RejectReason) { reasons = append(reasons, r) }
	f.sched.At(0, func() { f.client.Logon() })
	f.sched.After(sim.Millisecond, func() {
		f.client.NewOrder(1, 999, market.Buy, 100, 10) // unknown symbol
		f.client.NewOrder(2, 1, market.Buy, 0, 10)     // bad price
		f.client.NewOrder(3, 1, market.Buy, 100, 0)    // bad qty
	})
	f.run()
	if len(reasons) != 3 {
		t.Fatalf("rejects = %v", reasons)
	}
	want := []orderentry.RejectReason{
		orderentry.RejectUnknownSymbol, orderentry.RejectBadPrice, orderentry.RejectBadQty,
	}
	for i := range want {
		if reasons[i] != want[i] {
			t.Fatalf("rejects = %v, want %v", reasons, want)
		}
	}
}

func TestExchangeModify(t *testing.T) {
	f := newFixture(t)
	aapl, _ := f.u.Lookup("AAPL")
	var modAcked bool
	f.client.OnAck = func(uint64) { modAcked = true }
	f.sched.At(0, func() { f.client.Logon() })
	f.sched.After(sim.Millisecond, func() {
		f.client.NewOrder(1, aapl, market.Buy, 1500000, 100)
	})
	f.sched.After(2*sim.Millisecond, func() { f.client.Modify(1, 1499000, 80) })
	f.run()
	if !modAcked {
		t.Fatal("modify not acked")
	}
	if bbo := f.ex.BBO(aapl); bbo.Bid.Price != 1499000 || bbo.Bid.Size != 80 {
		t.Fatalf("BBO after modify = %+v", bbo)
	}
	last := f.mdMsgs[len(f.mdMsgs)-1]
	if last.Type != feed.MsgModifyOrder || last.Price != 1499000 {
		t.Fatalf("modify md = %+v", last)
	}
}

func TestExchangeMatchLatencyCharged(t *testing.T) {
	f := newFixture(t)
	var ackAt sim.Time
	f.client.OnAck = func(uint64) { ackAt = f.sched.Now() }
	var sentAt sim.Time
	f.sched.At(0, func() { f.client.Logon() })
	f.sched.After(sim.Millisecond, func() {
		sentAt = f.sched.Now()
		aapl, _ := f.u.Lookup("AAPL")
		f.client.NewOrder(1, aapl, market.Buy, 1500000, 100)
	})
	f.run()
	rtt := ackAt.Sub(sentAt)
	// RTT ≥ 2× (propagation 500ns) + match latency 2µs.
	if rtt < 3*sim.Microsecond {
		t.Fatalf("order RTT = %v, too fast for a 2µs engine", rtt)
	}
	if rtt > 20*sim.Microsecond {
		t.Fatalf("order RTT = %v, too slow", rtt)
	}
}

func TestPublishBurstPacksPartitions(t *testing.T) {
	f := newFixture(t)
	rng := rand.New(rand.NewSource(5))
	f.sched.At(0, func() { f.ex.PublishBurst(rng, 500) })
	f.run()
	if len(f.mdMsgs) != 500 {
		t.Fatalf("received %d md messages, want 500", len(f.mdMsgs))
	}
	// Packing means far fewer datagrams than messages.
	if f.ex.Published >= 500 {
		t.Fatalf("datagrams = %d, packing ineffective", f.ex.Published)
	}
	// No sequence gaps on any unit.
	for unit, r := range f.reasm {
		if _, gaps, lost := r.Stats(); gaps != 0 || lost != 0 {
			t.Fatalf("unit %d: gaps=%d lost=%d", unit, gaps, lost)
		}
	}
}

// TestExchangeGapRecovery drops a market-data frame on the wire and
// verifies the receiver recovers the lost messages over the exchange's
// replay service.
func TestExchangeGapRecovery(t *testing.T) {
	f := newFixture(t)

	// The recovery stream shares the client host's order-entry NIC (the
	// link to the exchange is already up).
	exPort := f.ex.AcceptRecoverySession(f.oeNIC.Addr(46000))
	cs := netsim.NewStream(f.oeNIC, 46000, f.ex.OENIC().Addr(exPort))
	f.clientMux.Register(cs)

	// Unit 0 (letter-A symbols) carries the test traffic. The recovery
	// client's reassembler consumes what the md receiver forwards, with one
	// datagram deliberately dropped.
	client := feed.NewRecoveryClient(0, func(req []byte) { cs.Write(req) })
	var recovered []uint64
	cs.OnData = func(b []byte) {
		if err := client.ReceiveRecovery(b, func(m *feed.Msg) {
			recovered = append(recovered, m.OrderID)
		}); err != nil {
			t.Fatalf("recovery: %v", err)
		}
	}
	var live int
	dropNth := 2 // drop the 2nd unit-0 datagram off the wire
	seen := 0
	f.mdRx.OnFrame = func(_ *netsim.NIC, fr *netsim.Frame) {
		var uf pkt.UDPFrame
		if err := pkt.ParseUDPFrame(fr.Data, &uf); err != nil {
			t.Fatalf("md parse: %v", err)
		}
		var h feed.UnitHeader
		if _, err := feed.DecodeUnitHeader(uf.Payload, &h); err != nil {
			t.Fatalf("unit header: %v", err)
		}
		if h.Unit != 0 {
			return
		}
		seen++
		if seen == dropNth {
			return // the wire ate it
		}
		client.Consume(uf.Payload, func(*feed.Msg) { live++ })
	}

	// Drive enough bursts that unit 0 sees several datagrams.
	for i := 0; i < 6; i++ {
		f.sched.At(sim.Time(i)*sim.Time(sim.Millisecond), func() {
			f.ex.PublishBurst(f.sched.Rand(), 40)
		})
	}
	f.run()

	if seen < 3 {
		t.Fatalf("unit 0 saw only %d datagrams; test needs more traffic", seen)
	}
	if client.Requests == 0 {
		t.Fatal("gap never detected")
	}
	if len(recovered) == 0 {
		t.Fatal("nothing recovered")
	}
	if f.ex.RecoveryServer().Served == 0 || f.ex.RecoveryServer().Refused != 0 {
		t.Fatalf("server served=%d refused=%d",
			f.ex.RecoveryServer().Served, f.ex.RecoveryServer().Refused)
	}
	// Conservation: live + recovered covers every unit-0 message published.
	msgs, gaps, lost := client.R.Stats()
	if gaps == 0 {
		t.Fatal("reassembler should have seen the gap")
	}
	if uint64(live) != msgs {
		t.Fatalf("live=%d reassembler=%d", live, msgs)
	}
	if uint64(len(recovered)) != lost {
		t.Fatalf("recovered %d of %d lost messages", len(recovered), lost)
	}
}
