// Exchange-side order-entry resilience: cancel-on-disconnect, reconnect
// acceptance, and transport hardening. All of it is opt-in through
// EnableResilience; an exchange without it schedules exactly as before.
package exchange

import (
	"fmt"
	"sort"

	"tradenet/internal/feed"
	"tradenet/internal/market"
	"tradenet/internal/netsim"
	"tradenet/internal/orderentry"
	"tradenet/internal/pkt"
	"tradenet/internal/sim"
)

// Resilience bundles the exchange's order-entry hardening knobs, applied to
// every session accepted after EnableResilience.
type Resilience struct {
	// Session configures liveness, response retention, idempotent duplicate
	// suppression, and ingress shedding on each accepted session.
	Session orderentry.ExchangeResilience
	// StreamMaxRTO enables exponential retransmission backoff on OE
	// transport streams (zero keeps the fixed interval).
	StreamMaxRTO sim.Duration
	// StreamDeadAfter caps no-progress retransmission rounds before the
	// transport declares the connection dead (zero: never).
	StreamDeadAfter int
}

// EnableResilience arms order-entry hardening for sessions accepted from
// now on. Call it before wiring sessions.
func (e *Exchange) EnableResilience(cfg Resilience) { e.res = &cfg }

// oeLink tracks the current transport under a session; reconnects swap the
// stream while the session (and the closures holding the link) survive.
type oeLink struct{ stream *netsim.Stream }

// applyResilience hardens a freshly accepted session and its transport.
func (e *Exchange) applyResilience(sess *orderentry.ExchangeSession, stream *netsim.Stream) {
	sess.Harden(e.sched, e.res.Session)
	sess.OnPeerDead = func() { e.cancelOnDisconnect(sess) }
	sess.OnLogout = func() { e.massCancel(sess) }
	e.hardenStream(stream, sess)
}

// hardenStream applies transport-level backoff/dead detection and converges
// a transport death onto the same peer-death path liveness uses.
func (e *Exchange) hardenStream(stream *netsim.Stream, sess *orderentry.ExchangeSession) {
	stream.MaxRTO = e.res.StreamMaxRTO
	stream.DeadAfter = e.res.StreamDeadAfter
	if e.res.StreamDeadAfter > 0 {
		stream.OnDead = sess.Drop
	}
}

// cancelOnDisconnect is the venue-mandated response to a dead order-entry
// peer: kill the transport (stop retransmitting into the void) and remove
// every resting order the session owns.
func (e *Exchange) cancelOnDisconnect(sess *orderentry.ExchangeSession) {
	e.SessionsDropped++
	if link, ok := e.links[sess]; ok {
		link.stream.Kill()
	}
	e.massCancel(sess)
}

// massCancel removes a session's resting orders from the books, publishing
// each removal on the feed and emitting a cancel-ack into the session. On a
// dead session those acks die on the killed stream but stay in the retained
// response window — a reconnecting client replays them and reconciles its
// working-order view without a special mass-cancel message.
func (e *Exchange) massCancel(sess *orderentry.ExchangeSession) {
	if e.jrn != nil {
		e.jrn.MassCancel(e.sessIdx[sess])
	}
	ids := make([]market.OrderID, 0, 8)
	for exID, ref := range e.owners { // keys collected then sorted below
		if ref.sess == sess {
			ids = append(ids, exID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, exID := range ids {
		ref := e.owners[exID]
		if e.Book(ref.sym).Cancel(exID) {
			e.CancelOnDisconnect++
			sess.CancelAck(ref.clientID)
			e.publish(ref.sym, &feed.Msg{
				Type: feed.MsgDeleteOrder, TimeNs: e.timeNs(), OrderID: uint64(exID),
			})
		}
		e.dropOwner(exID)
	}
}

// ReacceptSession provisions a fresh transport for a reconnecting client
// and rebinds its retained session to it. Session state — sequences,
// retained responses, seen order ids — survives; that continuity is what
// makes replay-based resync possible. Returns the new TCP port to dial.
func (e *Exchange) ReacceptSession(sess *orderentry.ExchangeSession, clientAddr pkt.UDPAddr) uint16 {
	port := e.nextOEPort
	e.nextOEPort++
	stream := netsim.NewStream(e.oeNIC, port, clientAddr)
	sess.Rebind(func(b []byte) { stream.Write(b) })
	stream.OnData = func(b []byte) {
		if err := sess.Receive(b); err != nil {
			panic(fmt.Sprintf("%s: order session: %v", e.cfg.Name, err))
		}
	}
	e.mux.Register(stream)
	if link, ok := e.links[sess]; ok {
		link.stream = stream
	} else {
		e.links[sess] = &oeLink{stream: stream}
	}
	if e.res != nil {
		e.hardenStream(stream, sess)
	}
	return port
}

// OpenOrdersOf counts resting orders owned by a session — the invariant
// probe the failover experiments run after cancel-on-disconnect.
func (e *Exchange) OpenOrdersOf(sess *orderentry.ExchangeSession) int {
	n := 0
	for _, ref := range e.owners {
		if ref.sess == sess {
			n++
		}
	}
	return n
}

// WorkingOrders returns the sorted client order ids resting for a session —
// the exchange's half of the "reconnected view matches the book" invariant.
func (e *Exchange) WorkingOrders(sess *orderentry.ExchangeSession) []uint64 {
	var ids []uint64
	for _, ref := range e.owners {
		if ref.sess == sess {
			ids = append(ids, ref.clientID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
