// Package exchange implements the venue side of the trading plant: per-
// symbol matching engines, a sequenced multicast market-data publisher in
// the exchange's own binary format, and order-entry ports speaking the
// BOE-style protocol over the simulated network (§2).
package exchange

import (
	"fmt"
	"math/rand"

	"tradenet/internal/feed"
	"tradenet/internal/market"
	"tradenet/internal/mcast"
	"tradenet/internal/netsim"
	"tradenet/internal/orderentry"
	"tradenet/internal/pkt"
	"tradenet/internal/replication"
	"tradenet/internal/sim"
	"tradenet/internal/trace"
)

// MDPort is the UDP destination port market data is published to.
const MDPort = 30001

// OEBasePort is the first TCP port used for order-entry sessions.
const OEBasePort = 17000

// Config parameterizes an exchange.
type Config struct {
	ID      market.ExchangeID
	Name    string
	Variant *feed.Variant
	// MatchLatency is the engine's order-in to response-out processing
	// time.
	MatchLatency sim.Duration
	// HostID seeds the exchange's NIC addressing.
	HostID uint32
}

// Exchange is one venue.
type Exchange struct {
	cfg   Config
	sched *sim.Scheduler
	u     *market.Universe

	host  *netsim.Host
	mdNIC *netsim.NIC
	oeNIC *netsim.NIC
	mux   *netsim.StreamMux

	books   map[market.SymbolID]*market.Book
	partMap *mcast.Map
	packers []*feed.Packer
	retain  []*feed.RetainBuffer
	recSrv  *feed.RecoveryServer

	nextExchangeOrderID market.OrderID
	nextExecID          uint64
	nextOEPort          uint16
	// order ownership: exchange order id → originating session + client id.
	owners map[market.OrderID]ownerRef
	// byOwner is the reverse index: (session, client id) → live exchange
	// order id, so cancels and modifies resolve in O(1) instead of scanning
	// owners in randomized map order.
	byOwner map[ownerKey]market.OrderID
	// msgFree pools order-message copies so the match-latency delay path
	// schedules allocation-free via AfterArgs3.
	msgFree []*orderentry.Msg

	// res, when set, hardens accepted sessions (resilience.go); links maps
	// each session to its current transport so reconnects can swap streams.
	res *Resilience
	//simlint:allow ptrorder: lookup-only session→link table — never iterated, sorted, or rendered, so the pointer key cannot order any output
	links map[*orderentry.ExchangeSession]*oeLink

	// High-availability state (ha.go). sessList indexes sessions in accept
	// order — the session numbering both sides of a replication pair share;
	// sessIdx is its reverse. jrn, when set, makes this exchange the primary
	// of a hot-standby pair, streaming every state change to the backup.
	// dark marks a standby shadow (state advances by journal application,
	// nothing transmits); crashed freezes the process after a
	// fault.ProcessFail. All hot paths gate on one nil/bool compare.
	sessList   []*orderentry.ExchangeSession
	sessIdx    map[*orderentry.ExchangeSession]int
	jrn        *replication.Journal
	dark       bool
	crashed    bool
	recStreams []*netsim.Stream
	// lastPublishAt stamps the most recent feed datagram's virtual time
	// (maintained only while journaling — the blackout-window measurement).
	lastPublishAt sim.Time

	// Executions counts fills reported by the matching engine; the failover
	// experiments compare promoted-backup and control counts to prove no
	// execution was lost or duplicated.
	Executions uint64

	// CancelOnDisconnect counts orders mass-canceled for dead sessions;
	// SessionsDropped counts peer-death declarations acted on.
	CancelOnDisconnect uint64
	SessionsDropped    uint64

	// Published counts market-data datagrams sent; PublishedMsgs counts the
	// messages inside them (failover completeness checks compare receiver
	// message counts against it).
	Published     uint64
	PublishedMsgs uint64

	// OnOrderAccepted, if set, fires when the matching engine admits a new
	// order (after MatchLatency) — the measurement point for round-trip
	// latency experiments.
	OnOrderAccepted func(m *orderentry.Msg, at sim.Time)

	// tracer, if set, starts a flight-recorder trace on every published
	// market-data datagram (subject to the recorder's sampling stride) and
	// finishes traces arriving on accepted orders. Nil means fully untraced:
	// every hook degenerates to a nil compare.
	tracer *trace.Recorder

	// onPublishDgram, if set, observes every published (and retained)
	// feed datagram — the tap a WAN redundancy sender mirrors the feed
	// from. Nil (the default) costs the publish path one nil compare.
	onPublishDgram func(dgram []byte)

	ipID uint16
}

type ownerRef struct {
	sess     *orderentry.ExchangeSession
	clientID uint64
	sym      market.SymbolID
}

// ownerKey identifies an order from the client's side of the session.
type ownerKey struct {
	sess     *orderentry.ExchangeSession
	clientID uint64
}

// New creates an exchange over universe u, publishing feed partitions per
// pmap. Its host exposes two NICs: market data (multicast out) and order
// entry.
func New(sched *sim.Scheduler, u *market.Universe, pmap *mcast.Map, cfg Config) *Exchange {
	e := &Exchange{
		cfg:        cfg,
		sched:      sched,
		u:          u,
		books:      make(map[market.SymbolID]*market.Book),
		partMap:    pmap,
		owners:     make(map[market.OrderID]ownerRef),
		byOwner:    make(map[ownerKey]market.OrderID),
		links:      make(map[*orderentry.ExchangeSession]*oeLink),
		sessIdx:    make(map[*orderentry.ExchangeSession]int),
		nextOEPort: OEBasePort,
	}
	e.host = netsim.NewHost(sched, cfg.Name)
	e.mdNIC = e.host.AddNIC("md", cfg.HostID)
	e.oeNIC = e.host.AddNIC("oe", cfg.HostID+1)
	e.mux = netsim.NewStreamMux(e.oeNIC)
	for i := 0; i < pmap.Partitioner().Partitions(); i++ {
		e.packers = append(e.packers, feed.NewPacker(cfg.Variant, uint8(i)))
		e.retain = append(e.retain, feed.NewRetainBuffer(uint8(i), RetainDgrams))
	}
	e.recSrv = feed.NewRecoveryServer(e.retain...)
	return e
}

// RetainDgrams is the per-partition replay window served to gap-recovery
// clients.
const RetainDgrams = 4096

// EnableTracing installs a flight recorder: published datagrams start
// traces, accepted orders finish them. Pass nil to disable.
func (e *Exchange) EnableTracing(r *trace.Recorder) { e.tracer = r }

// Tracer returns the installed flight recorder (nil when tracing is off).
func (e *Exchange) Tracer() *trace.Recorder { return e.tracer }

// RecoveryServer exposes the exchange's gap-recovery service; callers wire
// its Receive to an order-entry-style stream (real feeds run it on a
// dedicated TCP endpoint).
func (e *Exchange) RecoveryServer() *feed.RecoveryServer { return e.recSrv }

// NewRecoveryServer returns a fresh gap-recovery server over the same
// retained datagrams. A RecoveryServer carries per-stream request framing
// state, so every independent client stream (a WAN subscriber's side
// channel, say) needs its own server instance rather than sharing recSrv
// and interleaving partial requests.
func (e *Exchange) NewRecoveryServer() *feed.RecoveryServer {
	return feed.NewRecoveryServer(e.retain...)
}

// SetOnPublishDgram installs a tap observing every published feed
// datagram, after retention (so a replay can recover anything the tap's
// downstream loses). The slice is valid only for the duration of the
// call. Pass nil to remove.
func (e *Exchange) SetOnPublishDgram(fn func(dgram []byte)) { e.onPublishDgram = fn }

// AcceptRecoverySession provisions a gap-recovery stream endpoint on the
// order-entry NIC and returns the TCP port clients should dial.
func (e *Exchange) AcceptRecoverySession(clientAddr pkt.UDPAddr) uint16 {
	port := e.nextOEPort
	e.nextOEPort++
	stream := netsim.NewStream(e.oeNIC, port, clientAddr)
	stream.OnData = func(b []byte) {
		e.recSrv.Receive(b, func(resp []byte) { stream.Write(resp) })
	}
	e.mux.Register(stream)
	e.recStreams = append(e.recStreams, stream)
	return port
}

// ID returns the exchange's id.
func (e *Exchange) ID() market.ExchangeID { return e.cfg.ID }

// Name returns the exchange's name.
func (e *Exchange) Name() string { return e.cfg.Name }

// MDNIC returns the market-data NIC (to connect into the fabric).
func (e *Exchange) MDNIC() *netsim.NIC { return e.mdNIC }

// OENIC returns the order-entry NIC.
func (e *Exchange) OENIC() *netsim.NIC { return e.oeNIC }

// PartitionMap returns the feed partition→group mapping.
func (e *Exchange) PartitionMap() *mcast.Map { return e.partMap }

// Book returns (creating if needed) the book for a symbol.
func (e *Exchange) Book(id market.SymbolID) *market.Book {
	b, ok := e.books[id]
	if !ok {
		b = market.NewBook(id)
		e.books[id] = b
	}
	return b
}

// BBO returns the exchange's current best bid/offer for a symbol.
func (e *Exchange) BBO(id market.SymbolID) market.BBO { return e.Book(id).BBO() }

// AcceptSession provisions an exchange-side order-entry session reachable at
// the returned TCP port. The matching engine responds after MatchLatency.
func (e *Exchange) AcceptSession(clientAddr pkt.UDPAddr) (*orderentry.ExchangeSession, uint16) {
	port := e.nextOEPort
	e.nextOEPort++
	stream := netsim.NewStream(e.oeNIC, port, clientAddr)
	sess := orderentry.NewExchangeSession(func(b []byte) { stream.Write(b) })
	stream.OnData = func(b []byte) {
		if err := sess.Receive(b); err != nil {
			panic(fmt.Sprintf("%s: order session: %v", e.cfg.Name, err))
		}
	}
	e.mux.Register(stream)
	// The link indirection lets a reconnect swap the transport under the
	// session while these closures keep working.
	link := &oeLink{stream: stream}
	e.links[sess] = link
	e.wireEngine(sess, link)
	e.indexSession(sess)
	if e.res != nil {
		e.applyResilience(sess, stream)
	}
	return sess, port
}

// wireEngine installs the engine entry points on a session. Each handler
// adopts the trace parked on the stream by the mux (nil when untraced) so
// the match-latency wait is attributed to exchange software; a shadow
// session has no transport until promotion, hence the nil-stream guard.
func (e *Exchange) wireEngine(sess *orderentry.ExchangeSession, link *oeLink) {
	sess.Validate = e.validate
	sess.OnNew = func(m *orderentry.Msg) {
		c := e.copyMsg(m)
		if link.stream != nil {
			if t := link.stream.TakeRxTrace(); t != nil {
				c.Trace = t
			}
		}
		e.sched.AfterArgs3(e.cfg.MatchLatency, sim.PrioDeliver, execNewArgs, e, sess, c)
	}
	sess.OnCancel = func(m *orderentry.Msg) {
		c := e.copyMsg(m)
		if link.stream != nil {
			if t := link.stream.TakeRxTrace(); t != nil {
				c.Trace = t
			}
		}
		e.sched.AfterArgs3(e.cfg.MatchLatency, sim.PrioDeliver, execCancelArgs, e, sess, c)
	}
	sess.OnModify = func(m *orderentry.Msg) {
		c := e.copyMsg(m)
		if link.stream != nil {
			if t := link.stream.TakeRxTrace(); t != nil {
				c.Trace = t
			}
		}
		e.sched.AfterArgs3(e.cfg.MatchLatency, sim.PrioDeliver, execModifyArgs, e, sess, c)
	}
}

// indexSession assigns the session the next slot in accept order and, when
// journaling, announces it so the standby opens the matching shadow slot.
func (e *Exchange) indexSession(sess *orderentry.ExchangeSession) {
	idx := len(e.sessList)
	e.sessIdx[sess] = idx
	e.sessList = append(e.sessList, sess)
	if e.jrn != nil {
		e.jrn.SessionOpen(idx)
		sess.OnTx = func(seq uint32, frame []byte) { e.jrn.SessionTx(idx, seq, frame) }
	}
}

// copyMsg snapshots an inbound order message (the session reuses its decode
// buffer) into a pooled copy that survives the MatchLatency delay.
func (e *Exchange) copyMsg(m *orderentry.Msg) *orderentry.Msg {
	var c *orderentry.Msg
	if n := len(e.msgFree); n > 0 {
		c = e.msgFree[n-1]
		e.msgFree = e.msgFree[:n-1]
	} else {
		c = new(orderentry.Msg)
	}
	*c = *m
	return c
}

// execNewArgs, execCancelArgs, and execModifyArgs adapt the engine entry
// points to the Scheduler's closure-free three-argument callback shape and
// return the message copy to the pool once the engine is done with it.
func execNewArgs(a, b, c any) {
	e, m := a.(*Exchange), c.(*orderentry.Msg)
	e.execNew(b.(*orderentry.ExchangeSession), m)
	e.msgFree = append(e.msgFree, m)
}

func execCancelArgs(a, b, c any) {
	e, m := a.(*Exchange), c.(*orderentry.Msg)
	e.execCancel(b.(*orderentry.ExchangeSession), m)
	e.msgFree = append(e.msgFree, m)
}

func execModifyArgs(a, b, c any) {
	e, m := a.(*Exchange), c.(*orderentry.Msg)
	e.execModify(b.(*orderentry.ExchangeSession), m)
	e.msgFree = append(e.msgFree, m)
}

func (e *Exchange) validate(m *orderentry.Msg) orderentry.RejectReason {
	if m.Symbol == 0 || int(m.Symbol) > e.u.Len() {
		return orderentry.RejectUnknownSymbol
	}
	if m.Qty <= 0 {
		return orderentry.RejectBadQty
	}
	if m.Price <= 0 {
		return orderentry.RejectBadPrice
	}
	return orderentry.RejectNone
}

func (e *Exchange) execNew(sess *orderentry.ExchangeSession, m *orderentry.Msg) {
	if e.crashed {
		e.dropCrashed(m)
		return
	}
	if e.jrn != nil {
		e.jrn.Op(e.sessIdx[sess], replication.OpNew, m.OrderID, m.Symbol, m.Side, m.Price, m.Qty)
	}
	if t := m.Trace; t != nil {
		t.Record(e.cfg.Name, trace.CauseSoftware, e.sched.Now())
		t.Finish(trace.EndAccepted)
		m.Trace = nil
	}
	if e.OnOrderAccepted != nil {
		e.OnOrderAccepted(m, e.sched.Now())
	}
	e.nextExchangeOrderID++
	exID := e.nextExchangeOrderID
	e.owners[exID] = ownerRef{sess: sess, clientID: m.OrderID, sym: m.Symbol}
	e.byOwner[ownerKey{sess: sess, clientID: m.OrderID}] = exID
	sess.Ack(m.OrderID, uint64(exID))

	book := e.Book(m.Symbol)
	fills := book.Add(market.Order{ID: exID, Symbol: m.Symbol, Side: m.Side, Price: m.Price, Qty: m.Qty})
	e.publishAdd(m, exID, fills)
	e.reportFills(m.Symbol, fills)
}

func (e *Exchange) execCancel(sess *orderentry.ExchangeSession, m *orderentry.Msg) {
	if e.crashed {
		e.dropCrashed(m)
		return
	}
	if e.jrn != nil {
		e.jrn.Op(e.sessIdx[sess], replication.OpCancel, m.OrderID, m.Symbol, m.Side, m.Price, m.Qty)
	}
	if t := m.Trace; t != nil {
		t.Record(e.cfg.Name, trace.CauseSoftware, e.sched.Now())
		t.Finish(trace.EndConsumed)
		m.Trace = nil
	}
	// Find the exchange order belonging to this client id and session.
	exID, ok := e.findOrder(sess, m.OrderID)
	if !ok {
		// The §2 race: the order already filled (or never existed).
		sess.CancelReject(m.OrderID)
		return
	}
	sym := e.orderSymbol(exID)
	if !e.Book(sym).Cancel(exID) {
		sess.CancelReject(m.OrderID)
		return
	}
	sess.CancelAck(m.OrderID)
	e.publish(sym, &feed.Msg{
		Type: feed.MsgDeleteOrder, TimeNs: e.timeNs(), OrderID: uint64(exID),
	})
	e.dropOwner(exID)
}

// dropCrashed finishes the trace of an engine event that fired after the
// process died — the in-flight order a failover must not lose silently.
func (e *Exchange) dropCrashed(m *orderentry.Msg) {
	if t := m.Trace; t != nil {
		t.Record(e.cfg.Name, trace.CauseSoftware, e.sched.Now())
		t.Finish(trace.EndCrashed)
		m.Trace = nil
	}
}

// dropOwner removes a dead order from both ownership indexes.
func (e *Exchange) dropOwner(exID market.OrderID) {
	if ref, ok := e.owners[exID]; ok {
		delete(e.byOwner, ownerKey{sess: ref.sess, clientID: ref.clientID})
		delete(e.owners, exID)
	}
}

func (e *Exchange) execModify(sess *orderentry.ExchangeSession, m *orderentry.Msg) {
	if e.crashed {
		e.dropCrashed(m)
		return
	}
	if e.jrn != nil {
		e.jrn.Op(e.sessIdx[sess], replication.OpModify, m.OrderID, m.Symbol, m.Side, m.Price, m.Qty)
	}
	if t := m.Trace; t != nil {
		t.Record(e.cfg.Name, trace.CauseSoftware, e.sched.Now())
		t.Finish(trace.EndConsumed)
		m.Trace = nil
	}
	exID, ok := e.findOrder(sess, m.OrderID)
	if !ok {
		sess.CancelReject(m.OrderID)
		return
	}
	book := e.Book(m.Symbol)
	fills, live := book.Modify(exID, m.Price, m.Qty)
	if !live {
		sess.CancelReject(m.OrderID)
		return
	}
	sess.ModifyAck(m.OrderID)
	e.publish(m.Symbol, &feed.Msg{
		Type: feed.MsgModifyOrder, TimeNs: e.timeNs(), OrderID: uint64(exID),
		Qty: uint32(m.Qty), Price: uint64(m.Price),
	})
	e.reportFills(m.Symbol, fills)
}

// findOrder maps a (session, client id) to a live exchange order id.
func (e *Exchange) findOrder(sess *orderentry.ExchangeSession, clientID uint64) (market.OrderID, bool) {
	exID, ok := e.byOwner[ownerKey{sess: sess, clientID: clientID}]
	return exID, ok
}

// orderSymbol returns the symbol an order was entered on; ownership records
// it at accept time, so no book scan is needed. Symbol 1 is the
// deterministic fallback for orders that already left ownership (the
// publisher only needs a partition).
func (e *Exchange) orderSymbol(exID market.OrderID) market.SymbolID {
	if ref, ok := e.owners[exID]; ok {
		return ref.sym
	}
	return 1
}

func (e *Exchange) reportFills(sym market.SymbolID, fills []market.Fill) {
	for _, fl := range fills {
		e.nextExecID++
		e.Executions++
		// Notify both sides if they are session-backed.
		for _, oid := range []market.OrderID{fl.Resting} {
			if ref, ok := e.owners[oid]; ok {
				ref.sess.Fill(ref.clientID, fl.Qty, fl.Price)
				// Remove fully filled resting orders from ownership.
				if _, live := e.Book(sym).Lookup(oid); !live {
					e.dropOwner(oid)
				}
			}
		}
		if ref, ok := e.owners[marketIncoming(fl)]; ok {
			ref.sess.Fill(ref.clientID, fl.Qty, fl.Price)
			if _, live := e.Book(sym).Lookup(marketIncoming(fl)); !live {
				e.dropOwner(marketIncoming(fl))
			}
		}
		e.publish(sym, &feed.Msg{
			Type: feed.MsgOrderExecuted, TimeNs: e.timeNs(),
			OrderID: uint64(fl.Resting), Qty: uint32(fl.Qty), ExecID: e.nextExecID,
		})
	}
}

func marketIncoming(fl market.Fill) market.OrderID { return fl.Incoming }

func (e *Exchange) publishAdd(m *orderentry.Msg, exID market.OrderID, fills []market.Fill) {
	var rem market.Qty = m.Qty
	for _, fl := range fills {
		rem -= fl.Qty
	}
	if rem <= 0 {
		return // fully matched on arrival: no resting add appears
	}
	msg := feed.Msg{
		Type: feed.MsgAddOrder, TimeNs: e.timeNs(), OrderID: uint64(exID),
		Side: m.Side, Qty: uint32(rem), Price: uint64(m.Price),
	}
	msg.SetSymbol(e.u.Get(m.Symbol).Ticker)
	e.publish(m.Symbol, &msg)
}

func (e *Exchange) timeNs() uint32 {
	return uint32(int64(e.sched.Now()/sim.Time(sim.Nanosecond)) % 1_000_000_000)
}

// publish encodes msg onto the symbol's partition and transmits the
// datagram immediately (one message per datagram at match-time; bursts
// coalesce through PublishBurst).
func (e *Exchange) publish(sym market.SymbolID, msg *feed.Msg) {
	if e.dark {
		// A standby shadow publishes nothing of its own: the primary's
		// datagrams arrive byte-exact through the journal (adoptFeedDgram).
		return
	}
	part := e.partMap.Partitioner().Partition(sym)
	p := e.packers[part]
	if !p.Add(msg) {
		e.flush(part)
		p.Add(msg)
	}
	e.PublishedMsgs++
	e.flush(part)
}

func (e *Exchange) flush(part int) {
	group := e.partMap.GroupByIndex(part)
	dst := pkt.UDPAddr{MAC: pkt.MulticastMAC(group), IP: group, Port: MDPort}
	src := e.mdNIC.Addr(MDPort)
	e.packers[part].Flush(func(dgram []byte) {
		e.retain[part].Retain(dgram)
		if e.jrn != nil {
			e.jrn.FeedRaw(part, dgram)
			e.lastPublishAt = e.sched.Now()
		}
		if e.onPublishDgram != nil {
			e.onPublishDgram(dgram)
		}
		e.ipID++
		// Build straight into a pooled frame (no intermediate scratch copy)
		// so the flight recorder can ride the frame from the instant of
		// publication. Send stamps Origin exactly as SendBytes did.
		fr := netsim.NewFrame()
		fr.Data = pkt.AppendUDPFrame(fr.Data, src, dst, e.ipID, dgram)
		if e.tracer != nil {
			fr.Trace = e.tracer.Start(e.sched.Now())
		}
		e.mdNIC.Send(fr)
		e.Published++
	})
}

// PublishBurst generates n synthetic market-data messages across random
// symbols and publishes them packed per partition — the headless mode
// feed-driven experiments use, bypassing the matching engine.
func (e *Exchange) PublishBurst(rng *rand.Rand, n int) {
	if e.dark || e.crashed {
		return
	}
	types := []feed.MsgType{feed.MsgAddOrder, feed.MsgDeleteOrder, feed.MsgOrderExecuted, feed.MsgModifyOrder}
	touched := make(map[int]bool)
	var msg feed.Msg
	for i := 0; i < n; i++ {
		sym := market.SymbolID(1 + rng.Intn(e.u.Len()))
		msg = feed.Msg{
			Type:    types[rng.Intn(len(types))],
			TimeNs:  e.timeNs(),
			OrderID: rng.Uint64(),
			Qty:     uint32(1 + rng.Intn(300)),
			Price:   uint64(10000 + rng.Intn(100000)),
		}
		if msg.Type == feed.MsgAddOrder {
			msg.Side = market.Side(rng.Intn(2))
			msg.SetSymbol(e.u.Get(sym).Ticker)
		}
		part := e.partMap.Partitioner().Partition(sym)
		if !e.packers[part].Add(&msg) {
			e.flush(part)
			e.packers[part].Add(&msg)
		}
		e.PublishedMsgs++
		touched[part] = true
	}
	// Flush in partition order: map iteration order must not leak into the
	// event schedule, or runs stop being reproducible.
	for part := range e.packers {
		if touched[part] {
			e.flush(part)
		}
	}
}
