package replication

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"tradenet/internal/market"
)

// sampleRecords covers every kind with non-zero fields.
func sampleRecords() []Record {
	return []Record{
		{Kind: RecSessionOpen, Session: 3},
		{Kind: RecOp, Session: 1, Op: OpNew, OrderID: 42, Symbol: 7,
			Side: market.Sell, Price: 10_050, Qty: 300},
		{Kind: RecSessionTx, Session: 1, TxSeq: 9, Payload: []byte{0xde, 0xad, 0xbe, 0xef}},
		{Kind: RecFeedRaw, Partition: 12, Payload: bytes.Repeat([]byte{0xab}, 100)},
		{Kind: RecOp, Session: 2, Op: OpCancel, OrderID: 42},
		{Kind: RecOp, Session: 2, Op: OpModify, OrderID: 42, Symbol: 7,
			Side: market.Buy, Price: 10_051, Qty: 100},
		{Kind: RecMassCancel, Session: 2},
		{Kind: RecHeartbeat},
	}
}

func TestAppendDecodeRoundTrip(t *testing.T) {
	for i, r := range sampleRecords() {
		r.Seq = uint64(i + 1)
		enc := Append(nil, &r)
		var got Record
		rest, err := Decode(enc, &got)
		if err != nil {
			t.Fatalf("record %d (%v): decode: %v", i, r.Kind, err)
		}
		if len(rest) != 0 {
			t.Fatalf("record %d: %d trailing bytes", i, len(rest))
		}
		// Payload aliases enc; compare then clear for the struct equality.
		if !bytes.Equal(got.Payload, r.Payload) {
			t.Fatalf("record %d: payload %x, want %x", i, got.Payload, r.Payload)
		}
		got.Payload, r.Payload = nil, nil
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("record %d: got %+v, want %+v", i, got, r)
		}
	}
}

func TestDecodeRejectsTruncatedAndUnknown(t *testing.T) {
	r := Record{Kind: RecOp, Seq: 1, Op: OpNew, OrderID: 1, Symbol: 1, Price: 1, Qty: 1}
	enc := Append(nil, &r)
	var out Record
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut], &out); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(enc))
		}
	}
	bad := append([]byte(nil), enc...)
	bad[4] = 0xEE // unknown kind
	if _, err := Decode(bad, &out); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown kind: err = %v, want ErrUnknown", err)
	}
}

// TestJournalFollowerStream journals every kind, delivers the bytes in
// pathological segmentation (1-byte trickle), and checks the follower
// applies every record once, in order, contiguously sequenced.
func TestJournalFollowerStream(t *testing.T) {
	var wire []byte
	j := NewJournal(func(b []byte) { wire = append(wire, b...) })

	in := sampleRecords()
	for _, r := range in {
		r := r
		switch r.Kind {
		case RecOp:
			j.Op(r.Session, r.Op, r.OrderID, r.Symbol, r.Side, r.Price, r.Qty)
		case RecSessionTx:
			j.SessionTx(r.Session, r.TxSeq, r.Payload)
		case RecFeedRaw:
			j.FeedRaw(int(r.Partition), r.Payload)
		case RecMassCancel:
			j.MassCancel(r.Session)
		case RecSessionOpen:
			j.SessionOpen(r.Session)
		case RecHeartbeat:
			j.Heartbeat()
		}
	}
	if j.Records != uint64(len(in)) || j.Seq() != uint64(len(in)) {
		t.Fatalf("journal: %d records, seq %d, want %d", j.Records, j.Seq(), len(in))
	}
	if j.Bytes != uint64(len(wire)) {
		t.Fatalf("journal bytes = %d, wire = %d", j.Bytes, len(wire))
	}

	var got []Record
	f := &Follower{Apply: func(r *Record) {
		c := *r
		c.Payload = append([]byte(nil), r.Payload...) // outlive the buffer
		got = append(got, c)
	}}
	for i := 0; i < len(wire); i++ { // worst-case segmentation
		if err := f.Receive(wire[i : i+1]); err != nil {
			t.Fatalf("receive byte %d: %v", i, err)
		}
	}
	if len(got) != len(in) {
		t.Fatalf("applied %d records, want %d", len(got), len(in))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d, want %d", i, r.Seq, i+1)
		}
		want := in[i]
		if r.Kind != want.Kind || r.Session != want.Session || r.Op != want.Op ||
			r.OrderID != want.OrderID || r.TxSeq != want.TxSeq ||
			r.Partition != want.Partition || !bytes.Equal(r.Payload, want.Payload) {
			t.Fatalf("record %d: got %+v, want %+v", i, r, want)
		}
	}
	if f.Applied != uint64(len(in)) || f.LastSeq() != uint64(len(in)) {
		t.Fatalf("follower: applied %d, lastSeq %d", f.Applied, f.LastSeq())
	}
	if f.Bytes != uint64(len(wire)) {
		t.Fatalf("follower bytes = %d, wire = %d", f.Bytes, len(wire))
	}
}

// TestFollowerDetectsSeqGap: a skipped record must fail loudly, not apply.
func TestFollowerDetectsSeqGap(t *testing.T) {
	var recs [][]byte
	j := NewJournal(func(b []byte) { recs = append(recs, append([]byte(nil), b...)) })
	j.Heartbeat()
	j.Heartbeat()
	j.Heartbeat()

	applied := 0
	f := &Follower{Apply: func(*Record) { applied++ }}
	if err := f.Receive(recs[0]); err != nil {
		t.Fatalf("first record: %v", err)
	}
	err := f.Receive(recs[2]) // skip seq 2
	if !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap err = %v, want ErrSeqGap", err)
	}
	if applied != 1 {
		t.Fatalf("applied %d records, want 1 (gap record must not apply)", applied)
	}
}

// TestFollowerCoalescedSegments: many records in one Receive call all
// dispatch, and a record split across the call boundary heals.
func TestFollowerCoalescedSegments(t *testing.T) {
	var wire []byte
	j := NewJournal(func(b []byte) { wire = append(wire, b...) })
	for i := 0; i < 50; i++ {
		j.Op(i, OpNew, uint64(i), market.SymbolID(i+1), market.Buy,
			market.Price(1000+i), market.Qty(10))
	}
	applied := 0
	f := &Follower{Apply: func(r *Record) {
		if r.OrderID != uint64(applied) {
			t.Fatalf("record %d: order id %d", applied, r.OrderID)
		}
		applied++
	}}
	cut := len(wire)/2 + 5 // mid-record
	if err := f.Receive(wire[:cut]); err != nil {
		t.Fatalf("first half: %v", err)
	}
	if err := f.Receive(wire[cut:]); err != nil {
		t.Fatalf("second half: %v", err)
	}
	if applied != 50 {
		t.Fatalf("applied %d, want 50", applied)
	}
}
