// Package replication implements the state-machine journal a hot-standby
// exchange pair runs over a dedicated stream. The primary is the single
// sequencer: every operation its matching engine accepts (new, cancel,
// modify), every response byte its sessions emit, every feed datagram it
// publishes, and every session-table delta is appended to a monotonically
// sequenced journal and written to the replication transport. The standby
// applies records in journal order into shadow state; because the matching
// engine is deterministic, replaying the accepted-operation stream
// reproduces the primary's books, order ids, and fills exactly — the
// replicated-sequencer architecture cloud exchanges use (PAPERS.md,
// arXiv 2402.09527).
//
// The journal is an ordering contract, not a gossip protocol: records are
// strictly contiguous, and a follower that observes a sequence gap fails
// loudly (the transport is a loss-free stream, so a gap can only be a
// bug). What the journal deliberately does not carry is derived state —
// the standby recomputes books from operations and adopts response/feed
// bytes verbatim, so the two machines cannot drift apart silently.
package replication

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tradenet/internal/market"
)

// RecordKind identifies a journal record.
type RecordKind uint8

// Journal record kinds.
const (
	// RecOp is one operation the primary's engine accepted, at the instant
	// it entered the engine — the write-ahead entry shadow matching
	// replays.
	RecOp RecordKind = iota + 1
	// RecSessionTx is one encoded response emitted on an order-entry
	// session (ack, fill, reject, heartbeat, logon-ack — every kind), with
	// its session-stream sequence. The standby adopts the exact bytes into
	// the shadow session's retain ring so a re-homed client's replay is
	// byte-identical to what the primary would have sent.
	RecSessionTx
	// RecFeedRaw is one published market-data datagram, verbatim. The
	// standby adopts it into its retain buffers and advances its packer
	// sequences, so post-promotion publishes continue the feed without a
	// sequence discontinuity and gap-replay serves history the primary
	// published.
	RecFeedRaw
	// RecMassCancel is a deterministic cancel-on-disconnect sweep of one
	// session's resting orders.
	RecMassCancel
	// RecSessionOpen is a session-table delta: the primary accepted the
	// session at this index. Indexes are allocated in accept order on both
	// machines, so the record doubles as an alignment assertion.
	RecSessionOpen
	// RecHeartbeat is a journal-liveness keepalive carrying no state; its
	// silence is how the standby detects primary death.
	RecHeartbeat
)

// String names the kind.
func (k RecordKind) String() string {
	switch k {
	case RecOp:
		return "op"
	case RecSessionTx:
		return "session-tx"
	case RecFeedRaw:
		return "feed-raw"
	case RecMassCancel:
		return "mass-cancel"
	case RecSessionOpen:
		return "session-open"
	case RecHeartbeat:
		return "heartbeat"
	}
	return "unknown"
}

// OpKind identifies the engine operation inside a RecOp.
type OpKind uint8

// Engine operations.
const (
	OpNew OpKind = iota + 1
	OpCancel
	OpModify
)

// String names the operation.
func (o OpKind) String() string {
	switch o {
	case OpNew:
		return "new"
	case OpCancel:
		return "cancel"
	case OpModify:
		return "modify"
	}
	return "unknown"
}

// Record is the decoded form of any journal record.
type Record struct {
	Kind RecordKind
	Seq  uint64 // journal sequence, contiguous from 1

	// Session is the session-table index for RecOp, RecSessionTx,
	// RecMassCancel, and RecSessionOpen.
	Session int

	// RecOp fields: the accepted operation, in the engine's own units.
	Op      OpKind
	OrderID uint64 // client order id
	Symbol  market.SymbolID
	Side    market.Side
	Price   market.Price
	Qty     market.Qty

	// TxSeq is the session-stream sequence of a RecSessionTx payload.
	TxSeq uint32
	// Partition is the feed partition of a RecFeedRaw payload.
	Partition uint16

	// Payload carries RecSessionTx/RecFeedRaw raw bytes. It aliases the
	// follower's reassembly buffer and is valid only during the Apply
	// callback; appliers that keep it must copy.
	Payload []byte
}

// headerLen is the fixed record prefix: length (4), kind (1), seq (8).
const headerLen = 13

// Errors surfaced by the journal codec and follower.
var (
	// ErrShort reports a truncated or malformed record.
	ErrShort = errors.New("replication: truncated record")
	// ErrUnknown reports an unrecognized record kind.
	ErrUnknown = errors.New("replication: unknown record kind")
	// ErrSeqGap reports a journal sequence discontinuity at the follower.
	// The transport is a loss-free stream, so this is always a bug, never
	// weather.
	ErrSeqGap = errors.New("replication: journal sequence gap")
)

// bodyLen returns the fixed body size per kind; payload-bearing kinds add
// their payload length on top.
func bodyLen(k RecordKind) int {
	switch k {
	case RecOp:
		return 4 + 1 + 8 + 4 + 1 + 8 + 8 // session, op, oid, symbol, side, price, qty
	case RecSessionTx:
		return 4 + 4 + 2 // session, txseq, payload len
	case RecFeedRaw:
		return 2 + 2 // partition, payload len
	case RecMassCancel, RecSessionOpen:
		return 4
	case RecHeartbeat:
		return 0
	}
	return -1
}

// Append encodes r (Seq already assigned), appending to b.
func Append(b []byte, r *Record) []byte {
	n := bodyLen(r.Kind)
	if n < 0 {
		panic("replication: cannot encode unknown kind")
	}
	switch r.Kind {
	case RecSessionTx, RecFeedRaw:
		n += len(r.Payload)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(headerLen+n))
	b = append(b, byte(r.Kind))
	b = binary.BigEndian.AppendUint64(b, r.Seq)
	switch r.Kind {
	case RecOp:
		b = binary.BigEndian.AppendUint32(b, uint32(r.Session))
		b = append(b, byte(r.Op))
		b = binary.BigEndian.AppendUint64(b, r.OrderID)
		b = binary.BigEndian.AppendUint32(b, uint32(r.Symbol))
		b = append(b, byte(r.Side))
		b = binary.BigEndian.AppendUint64(b, uint64(r.Price))
		b = binary.BigEndian.AppendUint64(b, uint64(r.Qty))
	case RecSessionTx:
		b = binary.BigEndian.AppendUint32(b, uint32(r.Session))
		b = binary.BigEndian.AppendUint32(b, r.TxSeq)
		b = binary.BigEndian.AppendUint16(b, uint16(len(r.Payload)))
		b = append(b, r.Payload...)
	case RecFeedRaw:
		b = binary.BigEndian.AppendUint16(b, r.Partition)
		b = binary.BigEndian.AppendUint16(b, uint16(len(r.Payload)))
		b = append(b, r.Payload...)
	case RecMassCancel, RecSessionOpen:
		b = binary.BigEndian.AppendUint32(b, uint32(r.Session))
	}
	return b
}

// Decode parses one record from the front of b into r, returning the rest.
// Payload fields alias b.
func Decode(b []byte, r *Record) ([]byte, error) {
	if len(b) < headerLen {
		return nil, ErrShort
	}
	length := int(binary.BigEndian.Uint32(b))
	if length < headerLen || length > len(b) {
		return nil, ErrShort
	}
	k := RecordKind(b[4])
	want := bodyLen(k)
	if want < 0 {
		return nil, ErrUnknown
	}
	*r = Record{Kind: k, Seq: binary.BigEndian.Uint64(b[5:])}
	p := b[headerLen:length]
	if len(p) < want {
		return nil, ErrShort
	}
	switch k {
	case RecOp:
		r.Session = int(binary.BigEndian.Uint32(p))
		r.Op = OpKind(p[4])
		r.OrderID = binary.BigEndian.Uint64(p[5:])
		r.Symbol = market.SymbolID(binary.BigEndian.Uint32(p[13:]))
		r.Side = market.Side(p[17])
		r.Price = market.Price(binary.BigEndian.Uint64(p[18:]))
		r.Qty = market.Qty(binary.BigEndian.Uint64(p[26:]))
	case RecSessionTx:
		r.Session = int(binary.BigEndian.Uint32(p))
		r.TxSeq = binary.BigEndian.Uint32(p[4:])
		n := int(binary.BigEndian.Uint16(p[8:]))
		if len(p) != want+n {
			return nil, ErrShort
		}
		r.Payload = p[10 : 10+n]
	case RecFeedRaw:
		r.Partition = binary.BigEndian.Uint16(p)
		n := int(binary.BigEndian.Uint16(p[2:]))
		if len(p) != want+n {
			return nil, ErrShort
		}
		r.Payload = p[4 : 4+n]
	case RecMassCancel, RecSessionOpen:
		r.Session = int(binary.BigEndian.Uint32(p))
	}
	return b[length:], nil
}

// Journal is the primary-side sender: it assigns contiguous sequence
// numbers, encodes records, and hands the bytes to the transport. One
// record per send call — the stream layer coalesces into segments.
type Journal struct {
	send    func([]byte)
	seq     uint64
	scratch []byte

	// Records and Bytes count everything journaled, by record and by
	// encoded size — the replication-bandwidth observables.
	Records uint64
	Bytes   uint64
}

// NewJournal returns a journal transmitting via send. The slice passed to
// send is reused by the next call.
func NewJournal(send func([]byte)) *Journal {
	return &Journal{send: send}
}

// Seq returns the sequence of the last record written.
func (j *Journal) Seq() uint64 { return j.seq }

// write assigns the next sequence and transmits r.
func (j *Journal) write(r *Record) {
	j.seq++
	r.Seq = j.seq
	j.scratch = Append(j.scratch[:0], r)
	j.Records++
	j.Bytes += uint64(len(j.scratch))
	j.send(j.scratch)
}

// Op journals one accepted engine operation.
func (j *Journal) Op(session int, op OpKind, orderID uint64, sym market.SymbolID,
	side market.Side, price market.Price, qty market.Qty) {
	j.write(&Record{Kind: RecOp, Session: session, Op: op, OrderID: orderID,
		Symbol: sym, Side: side, Price: price, Qty: qty})
}

// SessionTx journals one emitted session response verbatim.
func (j *Journal) SessionTx(session int, txSeq uint32, raw []byte) {
	j.write(&Record{Kind: RecSessionTx, Session: session, TxSeq: txSeq, Payload: raw})
}

// FeedRaw journals one published feed datagram verbatim.
func (j *Journal) FeedRaw(partition int, dgram []byte) {
	j.write(&Record{Kind: RecFeedRaw, Partition: uint16(partition), Payload: dgram})
}

// MassCancel journals a cancel-on-disconnect sweep of one session.
func (j *Journal) MassCancel(session int) {
	j.write(&Record{Kind: RecMassCancel, Session: session})
}

// SessionOpen journals a session-table delta.
func (j *Journal) SessionOpen(session int) {
	j.write(&Record{Kind: RecSessionOpen, Session: session})
}

// Heartbeat journals a liveness keepalive.
func (j *Journal) Heartbeat() {
	j.write(&Record{Kind: RecHeartbeat})
}

// Follower is the standby-side receiver: it reassembles records from
// arbitrary stream segmentation, verifies journal-sequence contiguity, and
// dispatches each record to Apply in order.
type Follower struct {
	// Apply consumes one decoded record. Payload fields alias the
	// reassembly buffer and are valid only for the duration of the call.
	Apply func(*Record)

	buf     []byte
	nextSeq uint64
	rec     Record

	// Applied and Bytes count everything dispatched; LastSeq is the last
	// journal sequence applied — the replay-depth observables.
	Applied uint64
	Bytes   uint64
}

// LastSeq returns the journal sequence of the last record applied.
func (f *Follower) LastSeq() uint64 { return f.nextSeq }

// Receive ingests transport bytes, dispatching every complete record.
func (f *Follower) Receive(data []byte) error {
	f.buf = append(f.buf, data...)
	off := 0
	defer func() {
		// Compact once per call, not per record.
		f.buf = f.buf[:copy(f.buf, f.buf[off:])]
	}()
	for {
		b := f.buf[off:]
		if len(b) < headerLen {
			return nil
		}
		length := int(binary.BigEndian.Uint32(b))
		if length < headerLen {
			return ErrShort
		}
		if len(b) < length {
			return nil
		}
		if _, err := Decode(b[:length], &f.rec); err != nil {
			return err
		}
		if f.rec.Seq != f.nextSeq+1 {
			return fmt.Errorf("%w: got %d, want %d", ErrSeqGap, f.rec.Seq, f.nextSeq+1)
		}
		f.nextSeq = f.rec.Seq
		f.Applied++
		f.Bytes += uint64(length)
		if f.Apply != nil {
			f.Apply(&f.rec)
		}
		off += length
	}
}
