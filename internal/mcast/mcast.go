// Package mcast manages IP multicast group state for feed distribution: the
// allocation of group addresses, the mapping from market-data partitions to
// groups ("exchanges partition this feed across multiple multicast groups",
// §2), and the capacity arithmetic against switch mroute tables that drives
// the paper's §3 multicast-trends argument.
package mcast

import (
	"fmt"
	"math"

	"tradenet/internal/market"
	"tradenet/internal/pkt"
)

// Allocator hands out multicast group addresses from an administrative
// block. Distinct blocks keep feed families (raw exchange feeds, normalized
// internal feeds) in disjoint address ranges.
type Allocator struct {
	block uint8
	next  uint16
}

// NewAllocator returns an allocator over block.
func NewAllocator(block uint8) *Allocator { return &Allocator{block: block} }

// Next allocates the next group address.
func (a *Allocator) Next() pkt.IP4 {
	g := pkt.MulticastGroup(a.block, a.next)
	a.next++
	return g
}

// Allocated returns how many groups have been handed out.
func (a *Allocator) Allocated() int { return int(a.next) }

// Scheme selects how instruments map onto feed partitions. The paper lists
// both styles: "some exchanges partition based on the name of the
// instrument (e.g. alphabetical by stock ticker's first letter), while
// others partition based on the type of instrument".
type Scheme uint8

// Partitioning schemes.
const (
	// ByAlpha partitions by the ticker's first letter (26 partitions).
	ByAlpha Scheme = iota
	// ByClass partitions by instrument class (equity/ETF/option/future).
	ByClass
	// ByHash partitions by a hash of the symbol id into N buckets —
	// the internal scheme normalizers repartition into, scalable to any
	// partition count.
	ByHash
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case ByAlpha:
		return "by-alpha"
	case ByClass:
		return "by-class"
	case ByHash:
		return "by-hash"
	}
	return "unknown"
}

// Partitioner maps instruments to partition indices under a scheme.
type Partitioner struct {
	Scheme Scheme
	// N is the partition count for ByHash; ignored otherwise.
	N int
	u *market.Universe
}

// NewPartitioner builds a partitioner over the universe.
func NewPartitioner(u *market.Universe, scheme Scheme, n int) *Partitioner {
	if scheme == ByHash && n <= 0 {
		panic("mcast: ByHash needs a positive partition count")
	}
	return &Partitioner{Scheme: scheme, N: n, u: u}
}

// Partitions returns the number of partitions the scheme yields.
func (p *Partitioner) Partitions() int {
	switch p.Scheme {
	case ByAlpha:
		return 26
	case ByClass:
		return 4
	default:
		return p.N
	}
}

// Partition returns the partition index for a symbol.
func (p *Partitioner) Partition(id market.SymbolID) int {
	switch p.Scheme {
	case ByAlpha:
		in := p.u.Get(id)
		if len(in.Ticker) == 0 {
			return 0
		}
		c := in.Ticker[0]
		if c >= 'a' {
			c -= 'a' - 'A'
		}
		if c < 'A' || c > 'Z' {
			return 0
		}
		return int(c - 'A')
	case ByClass:
		return int(p.u.Get(id).Class)
	default:
		// Fibonacci hashing spreads sequential ids uniformly.
		return int((uint64(id) * 11400714819323198485) % uint64(p.N))
	}
}

// Map binds partitions to allocated multicast groups.
type Map struct {
	part   *Partitioner
	groups []pkt.IP4
}

// NewMap allocates one group per partition from alloc.
func NewMap(part *Partitioner, alloc *Allocator) *Map {
	m := &Map{part: part}
	for i := 0; i < part.Partitions(); i++ {
		m.groups = append(m.groups, alloc.Next())
	}
	return m
}

// Group returns the multicast group carrying symbol id's partition.
func (m *Map) Group(id market.SymbolID) pkt.IP4 {
	return m.groups[m.part.Partition(id)]
}

// GroupByIndex returns partition i's group.
func (m *Map) GroupByIndex(i int) pkt.IP4 { return m.groups[i] }

// Groups returns all groups in partition order.
func (m *Map) Groups() []pkt.IP4 { return m.groups }

// Partitioner returns the underlying partitioner.
func (m *Map) Partitioner() *Partitioner { return m.part }

// CapacityPlan is the E11 arithmetic: how a partition count fares against a
// switch generation's mroute table.
type CapacityPlan struct {
	Partitions  int
	TableSize   int
	Hardware    int
	Software    int // partitions relegated to the software slow path
	Utilization float64
}

// Plan computes the placement of partitions onto a table of the given size.
func Plan(partitions, tableSize int) CapacityPlan {
	p := CapacityPlan{Partitions: partitions, TableSize: tableSize}
	if partitions <= tableSize {
		p.Hardware = partitions
	} else {
		p.Hardware = tableSize
		p.Software = partitions - tableSize
	}
	if tableSize > 0 {
		p.Utilization = float64(p.Hardware) / float64(tableSize)
	}
	return p
}

// String renders the plan for the experiment harness.
func (p CapacityPlan) String() string {
	return fmt.Sprintf("partitions=%d table=%d hw=%d sw=%d util=%.0f%%",
		p.Partitions, p.TableSize, p.Hardware, p.Software, p.Utilization*100)
}

// PartitionGrowth models the §3 observation that one representative
// strategy's partition count "roughly doubled from around 600 to over 1300
// over the past two years": a geometric interpolation between those
// endpoints.
func PartitionGrowth(startPartitions int, months int, endPartitions int, totalMonths int) int {
	if months <= 0 {
		return startPartitions
	}
	if months >= totalMonths {
		return endPartitions
	}
	ratio := float64(endPartitions) / float64(startPartitions)
	frac := float64(months) / float64(totalMonths)
	return int(float64(startPartitions) * math.Pow(ratio, frac))
}
