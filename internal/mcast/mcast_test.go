package mcast

import (
	"strings"
	"testing"
	"testing/quick"

	"tradenet/internal/market"
)

func universe(t *testing.T) *market.Universe {
	t.Helper()
	u := market.NewUniverse()
	u.Add("AAPL", market.Equity, 0)
	u.Add("amzn", market.Equity, 0) // lowercase exercises case folding
	u.Add("SPY", market.ETF, 0)
	u.Add("ZION", market.Equity, 0)
	u.Add("9988", market.Equity, 0) // non-alpha ticker
	aapl, _ := u.Lookup("AAPL")
	u.Add("AAPL C150", market.Option, aapl)
	return u
}

func TestAllocatorSequentialDistinct(t *testing.T) {
	a := NewAllocator(2)
	g1, g2 := a.Next(), a.Next()
	if g1 == g2 {
		t.Fatal("duplicate groups")
	}
	if !g1.IsMulticast() || g1[1] != 2 {
		t.Fatalf("group = %v", g1)
	}
	if a.Allocated() != 2 {
		t.Fatalf("allocated = %d", a.Allocated())
	}
	// Different blocks never collide.
	b := NewAllocator(3)
	if b.Next() == g1 {
		t.Fatal("cross-block collision")
	}
}

func TestByAlphaPartitioning(t *testing.T) {
	u := universe(t)
	p := NewPartitioner(u, ByAlpha, 0)
	if p.Partitions() != 26 {
		t.Fatalf("partitions = %d", p.Partitions())
	}
	aapl, _ := u.Lookup("AAPL")
	amzn, _ := u.Lookup("amzn")
	zion, _ := u.Lookup("ZION")
	num, _ := u.Lookup("9988")
	if p.Partition(aapl) != 0 || p.Partition(amzn) != 0 {
		t.Fatal("A-tickers should share partition 0 regardless of case")
	}
	if p.Partition(zion) != 25 {
		t.Fatalf("ZION partition = %d", p.Partition(zion))
	}
	if p.Partition(num) != 0 {
		t.Fatal("non-alpha tickers fold to partition 0")
	}
}

func TestByClassPartitioning(t *testing.T) {
	u := universe(t)
	p := NewPartitioner(u, ByClass, 0)
	if p.Partitions() != 4 {
		t.Fatalf("partitions = %d", p.Partitions())
	}
	spy, _ := u.Lookup("SPY")
	opt, _ := u.Lookup("AAPL C150")
	if p.Partition(spy) != int(market.ETF) || p.Partition(opt) != int(market.Option) {
		t.Fatal("class partition wrong")
	}
}

func TestByHashPartitioningUniform(t *testing.T) {
	u := market.NewUniverse()
	for i := 0; i < 26; i++ {
		for j := 0; j < 40; j++ {
			u.Add(string(rune('A'+i))+string(rune('A'+j%26))+string(rune('0'+j/26)), market.Equity, 0)
		}
	}
	p := NewPartitioner(u, ByHash, 64)
	counts := make([]int, 64)
	for _, in := range u.All() {
		part := p.Partition(in.ID)
		if part < 0 || part >= 64 {
			t.Fatalf("partition out of range: %d", part)
		}
		counts[part]++
	}
	// 1040 symbols over 64 partitions ≈ 16 each; assert rough uniformity.
	for i, c := range counts {
		if c < 4 || c > 40 {
			t.Fatalf("partition %d has %d symbols — skewed", i, c)
		}
	}
}

func TestByHashValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ByHash without N should panic")
		}
	}()
	NewPartitioner(market.NewUniverse(), ByHash, 0)
}

func TestSchemeNames(t *testing.T) {
	if ByAlpha.String() == "unknown" || ByClass.String() == "unknown" || ByHash.String() == "unknown" {
		t.Fatal("scheme unnamed")
	}
	if Scheme(99).String() != "unknown" {
		t.Fatal("bogus scheme named")
	}
}

func TestMapStableAndComplete(t *testing.T) {
	u := universe(t)
	p := NewPartitioner(u, ByAlpha, 0)
	m := NewMap(p, NewAllocator(1))
	if len(m.Groups()) != 26 {
		t.Fatalf("groups = %d", len(m.Groups()))
	}
	aapl, _ := u.Lookup("AAPL")
	if m.Group(aapl) != m.GroupByIndex(0) {
		t.Fatal("group lookup inconsistent")
	}
	if m.Group(aapl) != m.Group(aapl) {
		t.Fatal("unstable mapping")
	}
	if m.Partitioner() != p {
		t.Fatal("partitioner accessor")
	}
	// All 26 groups distinct.
	seen := map[[4]byte]bool{}
	for _, g := range m.Groups() {
		if seen[g] {
			t.Fatal("duplicate group in map")
		}
		seen[g] = true
	}
}

func TestPlanArithmetic(t *testing.T) {
	p := Plan(600, 4096)
	if p.Hardware != 600 || p.Software != 0 {
		t.Fatalf("plan = %+v", p)
	}
	// The §3 squeeze: 1300 partitions per strategy, a handful of strategies
	// sharing one ToR, and the table overflows.
	p = Plan(5200, 4096)
	if p.Hardware != 4096 || p.Software != 1104 {
		t.Fatalf("plan = %+v", p)
	}
	if p.Utilization != 1.0 {
		t.Fatalf("utilization = %v", p.Utilization)
	}
	if !strings.Contains(p.String(), "sw=1104") {
		t.Fatalf("String = %q", p.String())
	}
	if z := Plan(10, 0); z.Utilization != 0 {
		t.Fatal("zero table utilization should be 0")
	}
}

// Property: Plan conserves partitions and never exceeds the table.
func TestPlanConservationProperty(t *testing.T) {
	f := func(parts, table uint16) bool {
		p := Plan(int(parts), int(table))
		return p.Hardware+p.Software == int(parts) && p.Hardware <= int(table)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionGrowthEndpoints(t *testing.T) {
	// §3: ~600 → >1300 over two years (24 months).
	if got := PartitionGrowth(600, 0, 1300, 24); got != 600 {
		t.Fatalf("month 0 = %d", got)
	}
	if got := PartitionGrowth(600, 24, 1300, 24); got != 1300 {
		t.Fatalf("month 24 = %d", got)
	}
	mid := PartitionGrowth(600, 12, 1300, 24)
	// Geometric midpoint ≈ sqrt(600*1300) ≈ 883.
	if mid < 850 || mid < 600 || mid > 950 {
		t.Fatalf("month 12 = %d, want ≈883", mid)
	}
	// Monotone.
	prev := 0
	for mo := 0; mo <= 24; mo++ {
		v := PartitionGrowth(600, mo, 1300, 24)
		if v < prev {
			t.Fatalf("growth not monotone at month %d", mo)
		}
		prev = v
	}
}
