package manifest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tradenet/internal/metrics"
	"tradenet/internal/sim"
)

// buildRegistry populates a registry the way experiments do: counters,
// gauges, histograms (including an empty one, which Dump prints specially).
func buildRegistry() *metrics.Registry {
	r := metrics.NewRegistry()
	r.Counter("feed.published").Add(12345)
	r.Gauge("gw.inflight").Set(-3)
	h := r.Histogram("rt.latency")
	for _, v := range []int64{10, 20, 30, 40, 1000} {
		h.Observe(v)
	}
	r.Histogram("rt.empty")
	return r
}

// TestRegistryDumpRoundTrip pins the satellite contract: a registry
// captured structurally, encoded to NDJSON, and decoded back must re-render
// Registry.Dump's text byte-for-byte.
func TestRegistryDumpRoundTrip(t *testing.T) {
	r := buildRegistry()
	rec := CaptureRegistry(r)
	if got, want := rec.DumpString(), r.String(); got != want {
		t.Fatalf("pre-encode DumpString mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	art := &Artifact{
		Meta:     Meta{Experiment: "designs", Design: "design1", Seed: 42},
		Registry: rec,
	}
	back, err := Decode(strings.NewReader(art.EncodeString()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got, want := back.Registry.DumpString(), r.String(); got != want {
		t.Fatalf("post-decode DumpString mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestArtifactEncodeDecodeRoundTrip builds a fully populated artifact —
// registry, sampler series, profile, logs, host stats — and checks that
// decode(encode(a)) re-encodes to identical bytes, and that the decoded
// artifact validates.
func TestArtifactEncodeDecodeRoundTrip(t *testing.T) {
	sched := sim.NewScheduler(1)
	reg := buildRegistry()
	ticks := reg.Counter("plant.ticks")
	smp := metrics.NewSampler(sched, reg, metrics.SamplerConfig{Interval: 10 * sim.Microsecond})
	smp.Arm(0, sim.Time(30*sim.Microsecond))
	sched.At(sim.Time(5*sim.Microsecond), func() { ticks.Add(7) })
	sched.Run()

	art := &Artifact{
		Meta: Meta{
			Schema:     Schema,
			Experiment: "wanredundancy",
			Cell:       "static vs adaptive",
			Seed:       7,
			Events:     sched.Fired(),
			Scenario:   &ScenarioInfo{Normalizers: 4, Strategies: 8, Gateways: 2, Symbols: 64, WANRedundancy: true},
		},
		Registry: CaptureRegistry(reg),
		Series:   CaptureSeries(smp),
		Profile:  CaptureProfile(sched.Profile()),
		Faults:   []LogRecord{{Name: "rain", Log: "t=1ms path=mw1 degrade\nt=2ms path=mw1 restore\n"}},
		Decisions: []LogRecord{
			{Name: "policy", Log: "t=1ms failover fiber\n"},
		},
		Host: &HostStats{WallNs: 1_000_000, AllocBytes: 4096, Mallocs: 32, NumGC: 1, PauseNs: 100},
	}
	if err := art.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}

	first := art.EncodeString()
	back, err := Decode(strings.NewReader(first))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("decoded artifact invalid: %v", err)
	}
	if second := back.EncodeString(); second != first {
		t.Fatalf("re-encode differs:\nfirst:\n%s\nsecond:\n%s", first, second)
	}

	if back.Meta.Events != sched.Fired() || back.Meta.Scenario == nil || !back.Meta.Scenario.WANRedundancy {
		t.Error("meta fields lost in round trip")
	}
	if len(back.Series) != len(art.Series) || back.Profile == nil || back.Host == nil {
		t.Error("blocks lost in round trip")
	}
	if got := back.EventsPerSec(); got != float64(sched.Fired())/0.001 {
		t.Errorf("EventsPerSec = %f", got)
	}
	if got := back.AllocPerEvent(); got != 4096/float64(sched.Fired()) {
		t.Errorf("AllocPerEvent = %f", got)
	}
}

// TestStripHost: stripping the host block must drop exactly the hoststats
// line, and StripHostLines must do the same on raw text.
func TestStripHost(t *testing.T) {
	art := &Artifact{
		Meta: Meta{Experiment: "e", Seed: 1},
		Host: &HostStats{WallNs: 123},
	}
	full := art.EncodeString()
	stripped := art.StripHost().EncodeString()
	if strings.Contains(stripped, "hoststats") {
		t.Fatal("StripHost left a hoststats line")
	}
	if got := StripHostLines(full); got != stripped {
		t.Fatalf("StripHostLines != StripHost encoding:\n%s\nvs\n%s", got, stripped)
	}
	if art.Host == nil {
		t.Fatal("StripHost mutated the original")
	}
}

// TestValidateRejections covers the structural failures -check must catch.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		art  Artifact
		want string
	}{
		{"wrong schema", Artifact{Meta: Meta{Schema: "tradenet.run.v0", Experiment: "e"}}, "schema"},
		{"missing experiment", Artifact{Meta: Meta{Schema: Schema}}, "experiment"},
		{"unsorted registry", Artifact{
			Meta:     Meta{Schema: Schema, Experiment: "e"},
			Registry: &RegistryRecord{Entries: []RegistryEntry{{Name: "b", Kind: "int"}, {Name: "a", Kind: "int"}}},
		}, "unsorted"},
		{"unknown kind", Artifact{
			Meta:     Meta{Schema: Schema, Experiment: "e"},
			Registry: &RegistryRecord{Entries: []RegistryEntry{{Name: "a", Kind: "summary"}}},
		}, "unknown kind"},
		{"bad interval", Artifact{
			Meta:   Meta{Schema: Schema, Experiment: "e"},
			Series: []SeriesRecord{{Name: "s", Kind: "int"}},
		}, "interval"},
		{"non-increasing points", Artifact{
			Meta: Meta{Schema: Schema, Experiment: "e"},
			Series: []SeriesRecord{{Name: "s", Kind: "int", IntervalPs: 1,
				Points: []SeriesPoint{{T: 5}, {T: 5}}}},
		}, "strictly increasing"},
	}
	for _, tc := range cases {
		err := tc.art.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}

	ok := Artifact{Meta: Meta{Schema: Schema, Experiment: "e"}}
	if err := ok.Validate(); err != nil {
		t.Errorf("minimal artifact rejected: %v", err)
	}
}

// TestDecodeErrors: malformed streams must fail with positioned errors;
// unknown additive record types must be skipped, not fatal.
func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeAll(strings.NewReader(`{"record":"registry","entries":[]}`)); err == nil || !strings.Contains(err.Error(), "before any meta") {
		t.Errorf("orphan record err = %v", err)
	}
	if _, err := DecodeAll(strings.NewReader("{not json\n")); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("bad json err = %v", err)
	}
	arts, err := DecodeAll(strings.NewReader(
		`{"record":"meta","schema":"tradenet.run.v1","experiment":"e","seed":1}` + "\n" +
			`{"record":"future-block","x":1}` + "\n"))
	if err != nil || len(arts) != 1 {
		t.Errorf("unknown record type not skipped: %v (%d artifacts)", err, len(arts))
	}
}

// TestFilenameAndWriteDir covers slugging and the directory round trip,
// including the duplicate-name guard.
func TestFilenameAndWriteDir(t *testing.T) {
	a := &Artifact{Meta: Meta{Experiment: "WAN Redundancy", Cell: "static vs adaptive", Seed: 42}}
	if got, want := a.Filename(), "wan-redundancy-static-vs-adaptive-seed42.ndjson"; got != want {
		t.Fatalf("Filename = %q, want %q", got, want)
	}
	b := &Artifact{Meta: Meta{Experiment: "designs", Design: "design3", Seed: 1}}

	dir := filepath.Join(t.TempDir(), "telemetry")
	paths, err := WriteDir(dir, []*Artifact{a, b})
	if err != nil || len(paths) != 2 {
		t.Fatalf("WriteDir: %v (%d paths)", err, len(paths))
	}
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing %s: %v", p, err)
		}
	}
	loaded, err := LoadDir(dir)
	if err != nil || len(loaded) != 2 {
		t.Fatalf("LoadDir: %v (%d artifacts)", err, len(loaded))
	}
	// LoadDir sorts by filename: designs-… before wan-redundancy-….
	if loaded[0].Meta.Experiment != "designs" || loaded[1].Meta.Experiment != "WAN Redundancy" {
		t.Errorf("LoadDir order: %q, %q", loaded[0].Meta.Experiment, loaded[1].Meta.Experiment)
	}

	if _, err := WriteDir(dir, []*Artifact{a, a}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate names not rejected: %v", err)
	}
}
