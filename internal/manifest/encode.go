package manifest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Encode writes the artifact as NDJSON: one JSON object per line, records
// in fixed order (meta, registry, series…, profile, fault…, decisions…,
// hoststats). encoding/json marshals struct fields in declaration order,
// so for a fixed artifact the bytes are deterministic.
func (a *Artifact) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	for _, rec := range a.records() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EncodeString returns the NDJSON bytes as a string.
func (a *Artifact) EncodeString() string {
	var b bytes.Buffer
	if err := a.Encode(&b); err != nil {
		panic(err) // bytes.Buffer never errors; a marshal failure is a schema bug
	}
	return b.String()
}

// recordProbe reads just enough of a line to dispatch on its record type.
type recordProbe struct {
	Record string `json:"record"`
}

// DecodeAll reads a stream of NDJSON lines into artifacts. Every "meta"
// line starts a new artifact; other records attach to the current one. A
// non-meta record before any meta line is an error, as is malformed JSON.
func DecodeAll(r io.Reader) ([]*Artifact, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26) // series lines can be long
	var out []*Artifact
	var cur *Artifact
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe recordProbe
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if probe.Record == "meta" {
			cur = &Artifact{}
			if err := json.Unmarshal(line, &cur.Meta); err != nil {
				return nil, fmt.Errorf("line %d (meta): %w", lineNo, err)
			}
			out = append(out, cur)
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("line %d: %q record before any meta line", lineNo, probe.Record)
		}
		var err error
		switch probe.Record {
		case "registry":
			cur.Registry = &RegistryRecord{}
			err = json.Unmarshal(line, cur.Registry)
		case "series":
			var s SeriesRecord
			if err = json.Unmarshal(line, &s); err == nil {
				cur.Series = append(cur.Series, s)
			}
		case "profile":
			cur.Profile = &ProfileRecord{}
			err = json.Unmarshal(line, cur.Profile)
		case "fault":
			var l LogRecord
			if err = json.Unmarshal(line, &l); err == nil {
				cur.Faults = append(cur.Faults, l)
			}
		case "decisions":
			var l LogRecord
			if err = json.Unmarshal(line, &l); err == nil {
				cur.Decisions = append(cur.Decisions, l)
			}
		case "hoststats":
			cur.Host = &HostStats{}
			err = json.Unmarshal(line, cur.Host)
		default:
			// Forward compatibility: unknown additive record types are
			// skipped, not fatal — the schema string gates real breaks.
		}
		if err != nil {
			return nil, fmt.Errorf("line %d (%s): %w", lineNo, probe.Record, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Decode reads exactly one artifact from r.
func Decode(r io.Reader) (*Artifact, error) {
	arts, err := DecodeAll(r)
	if err != nil {
		return nil, err
	}
	if len(arts) != 1 {
		return nil, fmt.Errorf("expected one artifact, found %d", len(arts))
	}
	return arts[0], nil
}

// Load reads one manifest file.
func Load(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	a, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// LoadDir reads every *.ndjson file under dir (sorted by name, so load
// order is deterministic) and returns the artifacts.
func LoadDir(dir string) ([]*Artifact, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.ndjson"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []*Artifact
	for _, p := range paths {
		a, err := Load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// WriteDir writes each artifact to dir under its canonical Filename,
// creating dir as needed, and returns the written paths in order. Name
// collisions (two artifacts with the same experiment/design/cell/seed)
// are an error rather than a silent overwrite.
func WriteDir(dir string, arts []*Artifact) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var paths []string
	for _, a := range arts {
		name := a.Filename()
		if seen[name] {
			return nil, fmt.Errorf("duplicate manifest name %q", name)
		}
		seen[name] = true
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := a.Encode(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// StripHostLines removes hoststats lines from raw NDJSON text — the
// deterministic remainder CI's byte-identical comparisons use.
func StripHostLines(ndjson string) string {
	lines := strings.Split(ndjson, "\n")
	out := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(l, `{"record":"hoststats"`) {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}
