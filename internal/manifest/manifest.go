// Package manifest defines the run-manifest artifact: every experiment run
// serialized as NDJSON under one stable, versioned schema, so the perf
// observatory (cmd/tradestat), CI gates, and humans all read the same
// bytes the simulation produced.
//
// A manifest is one artifact per (experiment, design/cell, seed): a meta
// line naming the run and its knobs, then optional structured blocks —
// the registry dump, the sampler's time-resolved series, the scheduler
// profile, fault timelines, controller decision logs — and finally one
// wall-clock host-stats line. Every block except host stats is a pure
// function of the seed: a telemetry-armed run of the same seed reproduces
// the manifest byte-for-byte modulo the hoststats line, which is the
// deliberately nondeterministic block (wall time, GC/alloc telemetry) the
// perf trajectory is computed from.
//
// Schema versioning: Schema names the line format. Consumers reject
// unknown majors rather than guessing; additive fields bump nothing
// (decoders ignore unknown keys), field meaning or record-shape changes
// bump the version string.
package manifest

import (
	"fmt"
	"strings"

	"tradenet/internal/metrics"
	"tradenet/internal/sim"
)

// Schema is the manifest line-format version.
const Schema = "tradenet.run.v1"

// Artifact is one run's manifest in memory: what Encode writes and Decode
// reads. Field order here is encode order.
type Artifact struct {
	Meta      Meta
	Registry  *RegistryRecord
	Series    []SeriesRecord
	Profile   *ProfileRecord
	Faults    []LogRecord
	Decisions []LogRecord
	Host      *HostStats
}

// Meta identifies the run: which experiment, which cell of it, which seed,
// under which scenario knobs. Events carries the run's deterministic
// fired-event count so events/sec needs only the host block's wall time.
type Meta struct {
	Record     string        `json:"record"`
	Schema     string        `json:"schema"`
	Experiment string        `json:"experiment"`
	Design     string        `json:"design,omitempty"`
	Cell       string        `json:"cell,omitempty"`
	Seed       int64         `json:"seed"`
	Events     uint64        `json:"events,omitempty"`
	Scenario   *ScenarioInfo `json:"scenario,omitempty"`
}

// ScenarioInfo mirrors the core Scenario knobs without importing core
// (core imports this package). Durations are picoseconds, as everywhere.
type ScenarioInfo struct {
	Normalizers        int   `json:"normalizers"`
	Strategies         int   `json:"strategies"`
	Gateways           int   `json:"gateways"`
	FnLatencyPs        int64 `json:"fn_latency_ps"`
	InternalPartitions int   `json:"internal_partitions"`
	Symbols            int   `json:"symbols"`
	BurstMessages      int   `json:"burst_messages"`
	PullOnGap          bool  `json:"pull_on_gap,omitempty"`
	OEResilience       bool  `json:"oe_resilience,omitempty"`
	WANRedundancy      bool  `json:"wan_redundancy,omitempty"`
	ExchangeHA         bool  `json:"exchange_ha,omitempty"`
}

// RegistryEntry is one registry metric, structured: integers and gauges
// carry Value; histograms carry the same summary Dump prints.
type RegistryEntry struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Value int64   `json:"value"`
	Count int64   `json:"count,omitempty"`
	Min   int64   `json:"min,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	P50   int64   `json:"p50,omitempty"`
	P99   int64   `json:"p99,omitempty"`
	Max   int64   `json:"max,omitempty"`
}

// RegistryRecord is the full registry dump, entries in sorted name order.
type RegistryRecord struct {
	Record  string          `json:"record"`
	Entries []RegistryEntry `json:"entries"`
}

// CaptureRegistry snapshots every metric through the structural walker —
// no text parsing, byte-exactly reconstructible via DumpString.
func CaptureRegistry(r *metrics.Registry) *RegistryRecord {
	rec := &RegistryRecord{}
	r.Each(func(name string, kind metrics.Kind) {
		e := RegistryEntry{Name: name, Kind: kind.String()}
		if kind == metrics.KindHistogram {
			h, _ := r.Hist(name)
			e.Count = h.Count()
			if e.Count > 0 {
				e.Min, e.Mean, e.P50, e.P99, e.Max = h.Min(), h.Mean(), h.Median(), h.P99(), h.Max()
			}
		} else {
			e.Value, _ = r.Int(name)
		}
		rec.Entries = append(rec.Entries, e)
	})
	return rec
}

// DumpString re-renders the captured registry in Registry.Dump's exact
// format — the round-trip contract: for any registry r,
// CaptureRegistry(r).DumpString() == r.String(), before and after an
// encode/decode cycle.
func (r *RegistryRecord) DumpString() string {
	var b strings.Builder
	for _, e := range r.Entries {
		if e.Kind == "histogram" {
			if e.Count == 0 {
				fmt.Fprintf(&b, "%s count=0\n", e.Name)
			} else {
				fmt.Fprintf(&b, "%s count=%d min=%d mean=%.0f p50=%d p99=%d max=%d\n",
					e.Name, e.Count, e.Min, e.Mean, e.P50, e.P99, e.Max)
			}
			continue
		}
		fmt.Fprintf(&b, "%s %d\n", e.Name, e.Value)
	}
	return b.String()
}

// SeriesPoint is one sampled observation: virtual-time tick, value, delta
// since the previous tick, and histogram quantiles where applicable.
type SeriesPoint struct {
	T   int64 `json:"t"` // sim.Time, picoseconds
	V   int64 `json:"v"`
	D   int64 `json:"d"`
	P50 int64 `json:"p50,omitempty"`
	P99 int64 `json:"p99,omitempty"`
	Max int64 `json:"max,omitempty"`
}

// SeriesRecord is one metric's time-resolved series.
type SeriesRecord struct {
	Record     string        `json:"record"`
	Name       string        `json:"name"`
	Kind       string        `json:"kind"`
	IntervalPs int64         `json:"interval_ps"`
	Evicted    uint64        `json:"evicted,omitempty"`
	Points     []SeriesPoint `json:"points"`
}

// CaptureSeries snapshots every sampled series, in the sampler's
// deterministic (sorted-name) order.
func CaptureSeries(s *metrics.Sampler) []SeriesRecord {
	var out []SeriesRecord
	for _, ser := range s.Series() {
		rec := SeriesRecord{
			Name:       ser.Name,
			Kind:       ser.Kind.String(),
			IntervalPs: int64(s.Interval()),
			Evicted:    ser.Evicted(),
		}
		ser.Each(func(p metrics.SamplePoint) {
			rec.Points = append(rec.Points, SeriesPoint{
				T: int64(p.T), V: p.Value, D: p.Delta, P50: p.P50, P99: p.P99, Max: p.Max,
			})
		})
		out = append(out, rec)
	}
	return out
}

// ProfileRecord is the scheduler's self-profile at end of run.
type ProfileRecord struct {
	Record         string   `json:"record"`
	Fired          uint64   `json:"fired"`
	FiredClosure   uint64   `json:"fired_closure"`
	FiredArgs2     uint64   `json:"fired_args2"`
	FiredArgs3     uint64   `json:"fired_args3"`
	PlacedSingle   uint64   `json:"placed_single"`
	PlacedLevel    []uint64 `json:"placed_level"`
	PlacedOverflow uint64   `json:"placed_overflow"`
	Cascades       uint64   `json:"cascades"`
}

// CaptureProfile snapshots a scheduler profile.
func CaptureProfile(p sim.Profile) *ProfileRecord {
	rec := &ProfileRecord{
		Fired:          p.Fired,
		FiredClosure:   p.FiredClosure,
		FiredArgs2:     p.FiredArgs2,
		FiredArgs3:     p.FiredArgs3,
		PlacedSingle:   p.PlacedSingle,
		PlacedOverflow: p.PlacedOverflow,
		Cascades:       p.Cascades,
	}
	rec.PlacedLevel = append(rec.PlacedLevel, p.PlacedLevel[:]...)
	return rec
}

// LogRecord carries a named deterministic text log: a fault timeline
// ("fault") or a controller decision log ("decisions").
type LogRecord struct {
	Record string `json:"record"`
	Name   string `json:"name"`
	Log    string `json:"log"`
}

// Filename returns the artifact's canonical file name:
// <experiment>[-<design>][-<cell>]-seed<seed>.ndjson, slugged.
func (a *Artifact) Filename() string {
	parts := []string{slug(a.Meta.Experiment)}
	if a.Meta.Design != "" {
		parts = append(parts, slug(a.Meta.Design))
	}
	if a.Meta.Cell != "" {
		parts = append(parts, slug(a.Meta.Cell))
	}
	return fmt.Sprintf("%s-seed%d.ndjson", strings.Join(parts, "-"), a.Meta.Seed)
}

// slug lowercases and squeezes a free-form label into [a-z0-9-].
func slug(s string) string {
	var b strings.Builder
	dash := true // suppress leading dash
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		default:
			if !dash {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}

// EventsPerSec computes the headline rate from the deterministic event
// count and the wall-clock host block (0 if either is missing).
func (a *Artifact) EventsPerSec() float64 {
	if a.Host == nil || a.Host.WallNs <= 0 || a.Meta.Events == 0 {
		return 0
	}
	return float64(a.Meta.Events) / (float64(a.Host.WallNs) / 1e9)
}

// AllocPerEvent computes GC pressure as allocated bytes per fired event
// (0 if unknown) — the manifest-side complement of the bench gate.
func (a *Artifact) AllocPerEvent() float64 {
	if a.Host == nil || a.Meta.Events == 0 {
		return 0
	}
	return float64(a.Host.AllocBytes) / float64(a.Meta.Events)
}

// Validate checks structural invariants a well-formed artifact must hold;
// cmd/tradestat -check runs this over CI artifacts.
func (a *Artifact) Validate() error {
	if a.Meta.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", a.Meta.Schema, Schema)
	}
	if a.Meta.Experiment == "" {
		return fmt.Errorf("meta missing experiment")
	}
	if a.Registry != nil {
		prev := ""
		for _, e := range a.Registry.Entries {
			if e.Name <= prev {
				return fmt.Errorf("registry entries unsorted at %q", e.Name)
			}
			if e.Kind != "int" && e.Kind != "gauge" && e.Kind != "histogram" {
				return fmt.Errorf("registry entry %q has unknown kind %q", e.Name, e.Kind)
			}
			prev = e.Name
		}
	}
	for _, s := range a.Series {
		if s.IntervalPs <= 0 {
			return fmt.Errorf("series %q has non-positive interval", s.Name)
		}
		var prevT int64 = -1
		for _, p := range s.Points {
			if p.T <= prevT {
				return fmt.Errorf("series %q points not strictly increasing at t=%d", s.Name, p.T)
			}
			prevT = p.T
		}
	}
	if a.Host != nil && a.Host.WallNs < 0 {
		return fmt.Errorf("hoststats wall_ns negative")
	}
	return nil
}

// StripHost returns a copy of the artifact without the wall-clock block —
// the deterministic remainder two runs of one seed must agree on
// byte-for-byte.
func (a *Artifact) StripHost() *Artifact {
	cp := *a
	cp.Host = nil
	return &cp
}

// records enumerates the artifact's lines in encode order.
func (a *Artifact) records() []any {
	var out []any
	meta := a.Meta
	meta.Record, meta.Schema = "meta", Schema
	out = append(out, &meta)
	if a.Registry != nil {
		reg := *a.Registry
		reg.Record = "registry"
		out = append(out, &reg)
	}
	for i := range a.Series {
		s := a.Series[i]
		s.Record = "series"
		out = append(out, &s)
	}
	if a.Profile != nil {
		p := *a.Profile
		p.Record = "profile"
		out = append(out, &p)
	}
	for i := range a.Faults {
		l := a.Faults[i]
		l.Record = "fault"
		out = append(out, &l)
	}
	for i := range a.Decisions {
		l := a.Decisions[i]
		l.Record = "decisions"
		out = append(out, &l)
	}
	if a.Host != nil {
		h := *a.Host
		h.Record = "hoststats"
		out = append(out, &h)
	}
	return out
}
