package manifest

import (
	"runtime"
	"time"
)

// HostStats is the manifest's one deliberately nondeterministic block:
// wall-clock duration and Go runtime GC/alloc telemetry for the run. It
// is sampled outside the deterministic kernel (the simulation never reads
// it back) and consumers treat it accordingly — byte-identity checks strip
// it, while the perf observatory reads exactly this block to compute
// events/sec and GC pressure across revisions.
type HostStats struct {
	Record string `json:"record"`
	// WallNs is the host wall-clock time the run took.
	WallNs int64 `json:"wall_ns"`
	// AllocBytes / Mallocs are the deltas in cumulative heap allocation
	// over the run (runtime.MemStats TotalAlloc / Mallocs).
	AllocBytes uint64 `json:"alloc_bytes"`
	Mallocs    uint64 `json:"mallocs"`
	// NumGC / PauseNs are the GC cycles and total stop-the-world pause
	// accumulated during the run.
	NumGC   uint32 `json:"num_gc"`
	PauseNs uint64 `json:"pause_ns"`
	// HeapAllocBytes is the live heap at capture time.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
}

// HostCollector brackets a run with wall-clock and MemStats snapshots.
type HostCollector struct {
	start time.Time
	ms    runtime.MemStats
}

// BeginHostStats snapshots the clock and the runtime's cumulative counters
// before a run.
//
//simlint:allow wallclock: the host-stats block is wall-clock telemetry by design — it is captured outside the deterministic kernel, never feeds back into simulated time, and every consumer (tests, CI byte-identity checks) strips or isolates it
func BeginHostStats() *HostCollector {
	c := &HostCollector{start: time.Now()}
	runtime.ReadMemStats(&c.ms)
	return c
}

// End captures the post-run deltas.
//
//simlint:allow wallclock: closes the wall-clock bracket opened by BeginHostStats; same nondeterministic-by-contract block
func (c *HostCollector) End() *HostStats {
	wall := time.Since(c.start)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &HostStats{
		WallNs:         wall.Nanoseconds(),
		AllocBytes:     ms.TotalAlloc - c.ms.TotalAlloc,
		Mallocs:        ms.Mallocs - c.ms.Mallocs,
		NumGC:          ms.NumGC - c.ms.NumGC,
		PauseNs:        ms.PauseTotalNs - c.ms.PauseTotalNs,
		HeapAllocBytes: ms.HeapAlloc,
	}
}
