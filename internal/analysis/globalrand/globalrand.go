// Package globalrand forbids the package-level math/rand functions. The
// global source is shared process-wide: with core.RunParallel running
// replications on concurrent goroutines, draws from it interleave
// nondeterministically, so any model that touches it stops being a pure
// function of its seed. All randomness must flow through a seeded
// *rand.Rand threaded from the scheduler (Scheduler.Rand()) or the
// replication harness.
package globalrand

import (
	"go/ast"

	"tradenet/internal/analysis"
)

// allowed are the math/rand package-level functions that construct seeded
// sources rather than draw from the global one.
var allowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc:  "forbid package-level math/rand draws; thread a seeded *rand.Rand from the sim or replication harness",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || allowed[fn.Name()] {
				return true
			}
			if analysis.IsPkgFunc(fn, "math/rand") || analysis.IsPkgFunc(fn, "math/rand/v2") {
				pass.Reportf(call.Pos(),
					"rand.%s draws from the process-global source; use a seeded *rand.Rand (Scheduler.Rand() or the replication harness)", fn.Name())
			}
			return true
		})
	}
	return nil
}
