package globalrand_test

import (
	"path/filepath"
	"testing"

	"tradenet/internal/analysis/analysistest"
	"tradenet/internal/analysis/globalrand"
)

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "globalrand"),
		"tradenet/internal/fixture", []string{"math/rand", "math/rand/v2"}, globalrand.Analyzer)
}
