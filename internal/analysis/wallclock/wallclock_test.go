package wallclock_test

import (
	"path/filepath"
	"testing"

	"tradenet/internal/analysis/analysistest"
	"tradenet/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "wallclock"),
		"tradenet/internal/fixture", []string{"time"}, wallclock.Analyzer)
}

// TestExemptOutsideInternal checks the path gate: the same kind of code
// under a cmd/ import path produces no findings (the fixture has no want
// comments, so any finding fails the test).
func TestExemptOutsideInternal(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "wallclock_exempt"),
		"tradenet/cmd/fixture", []string{"time"}, wallclock.Analyzer)
}
