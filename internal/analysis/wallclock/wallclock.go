// Package wallclock forbids reading the host's wall clock on simulation
// paths. Every instant in a run must come from the Scheduler's virtual
// clock (sim.Time): a single time.Now() on a sim path silently couples
// results to host speed and destroys the fixed-seed byte-identical
// guarantee the paper's per-hop latency comparisons rest on.
package wallclock

import (
	"go/ast"
	"strings"

	"tradenet/internal/analysis"
)

// banned are the time-package functions that read or wait on the wall
// clock. Pure type/arithmetic uses of package time (time.Duration,
// d.Nanoseconds) stay legal: sim.Duration converts through them for
// display.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/Since/Sleep and friends in internal/ simulation code; use the Scheduler's virtual clock",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Only simulation code is bound: cmd/ and examples/ are harnesses that
	// may legitimately time or pace against the real world.
	if !strings.HasPrefix(pass.Pkg.Path(), analysis.ModulePath+"/internal/") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if analysis.IsPkgFunc(fn, "time") && banned[fn.Name()] {
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock on a simulation path; use the Scheduler's virtual clock (sim.Time)", fn.Name())
			}
			return true
		})
	}
	return nil
}
