// Package unitmix keeps raw numbers out of unit-typed positions. Simulation
// time is integer picoseconds; a bare literal like At(1000) reads as "1 µs"
// to someone thinking in nanoseconds but is actually 1 ns, and t+500 is a
// scale bug waiting to happen. The rule: a value passed or added where
// sim.Time, sim.Duration, units.Bandwidth, or units.Distance is expected
// must name a unit constant (5*sim.Nanosecond, 10*units.Gbps,
// 35*units.Mile) or be zero. Explicit conversions like sim.Duration(x)
// remain legal — a conversion is a visible, deliberate act.
package unitmix

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"tradenet/internal/analysis"
)

// unitTypes are the named types whose scale a bare literal can silently
// violate.
var unitTypes = map[[2]string]bool{
	{analysis.SimPath, "Time"}:        true,
	{analysis.SimPath, "Duration"}:    true,
	{analysis.UnitsPath, "Bandwidth"}: true,
	{analysis.UnitsPath, "Distance"}:  true,
}

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "unitmix",
	Doc:  "flag bare numeric literals passed or added where sim.Time/sim.Duration/units.Bandwidth/units.Distance are expected; scale by a unit constant",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.BinaryExpr:
				checkBinary(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCall flags bare nonzero literals in unit-typed argument positions.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if analysis.IsConversion(pass.TypesInfo, call) {
		return
	}
	t := pass.TypesInfo.TypeOf(call.Fun)
	if t == nil {
		return
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			pt = sig.Params().At(np - 1).Type()
			if s, ok := pt.(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if isUnitType(pt) && isBareNonzeroLiteral(pass, arg) {
			_, name := analysis.NamedType(pt)
			pass.Reportf(arg.Pos(),
				"bare numeric literal where %s is expected; scale by a unit constant (e.g. 5*sim.Nanosecond, 10*units.Gbps)", name)
		}
	}
}

// checkBinary flags t+1000 / t-1000 where t is unit-typed. Multiplication
// is exempt (3*sim.Nanosecond is the idiom), as is any fully constant
// expression (unit constants are themselves defined that way).
func checkBinary(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.ADD && b.Op != token.SUB {
		return
	}
	if tv, ok := pass.TypesInfo.Types[b]; ok && tv.Value != nil {
		return // constant expression: a unit definition, not runtime mixing
	}
	check := func(typed, lit ast.Expr) {
		t := pass.TypesInfo.TypeOf(typed)
		if t != nil && isUnitType(t) && isBareNonzeroLiteral(pass, lit) {
			_, name := analysis.NamedType(t)
			pass.Reportf(lit.Pos(),
				"bare numeric literal %s a %s; scale by a unit constant (e.g. 5*sim.Nanosecond)", addedOrSubtracted(b.Op), name)
		}
	}
	check(b.X, b.Y)
	check(b.Y, b.X)
}

func addedOrSubtracted(op token.Token) string {
	if op == token.ADD {
		return "added to"
	}
	return "subtracted from"
}

// isUnitType reports whether t (after unwrapping one pointer) is one of the
// guarded named types.
func isUnitType(t types.Type) bool {
	pkg, name := analysis.NamedType(t)
	return unitTypes[[2]string{pkg, name}]
}

// isBareNonzeroLiteral reports whether e is a numeric literal (possibly
// parenthesized or sign-prefixed) with no named constant anywhere in it,
// and a value other than zero.
func isBareNonzeroLiteral(pass *analysis.Pass, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return isBareNonzeroLiteral(pass, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ADD || x.Op == token.SUB {
			return isBareNonzeroLiteral(pass, x.X)
		}
		return false
	case *ast.BasicLit:
		if x.Kind != token.INT && x.Kind != token.FLOAT {
			return false
		}
		tv, ok := pass.TypesInfo.Types[x]
		if ok && tv.Value != nil {
			return constant.Sign(tv.Value) != 0
		}
		return x.Value != "0"
	}
	return false
}
