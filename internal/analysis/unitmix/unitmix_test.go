package unitmix_test

import (
	"path/filepath"
	"testing"

	"tradenet/internal/analysis/analysistest"
	"tradenet/internal/analysis/unitmix"
)

func TestUnitmix(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "unitmix"),
		"tradenet/internal/fixture",
		[]string{"tradenet/internal/sim", "tradenet/internal/units"}, unitmix.Analyzer)
}
