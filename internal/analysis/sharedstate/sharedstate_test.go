package sharedstate_test

import (
	"path/filepath"
	"testing"

	"tradenet/internal/analysis/analysistest"
	"tradenet/internal/analysis/sharedstate"
)

func TestSharedstate(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "sharedstate"),
		"tradenet/internal/fixture", []string{"sync"}, sharedstate.Analyzer)
}
