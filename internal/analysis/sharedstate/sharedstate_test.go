package sharedstate_test

import (
	"path/filepath"
	"testing"

	"tradenet/internal/analysis/analysistest"
	"tradenet/internal/analysis/sharedstate"
)

func TestSharedstate(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "sharedstate"),
		"tradenet/internal/fixture", []string{"sync"}, sharedstate.Analyzer)
}

// TestSharedstateReplication proves internal/replication honors the
// no-shared-mutable-state contract: package-level journal sequence
// counters and promotion registries fire under its import path.
func TestSharedstateReplication(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "sharedstate_replication"),
		"tradenet/internal/replication", nil, sharedstate.Analyzer)
}
