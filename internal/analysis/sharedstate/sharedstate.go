// Package sharedstate forbids mutating package-level state from code a
// simulation run can reach. RunParallel's contract — and the per-region
// sharded kernel's, once regions run on their own goroutines — is that
// every run (or region) is an island: two workers touching the same
// package-level variable is a data race at worst and a
// schedule-order-dependence at best, either of which destroys the
// byte-identical-output guarantee. The check is interprocedural: a write
// buried three calls below RunFailover is as much a violation as one in
// the entry point itself.
//
// Three shapes count as mutation of a package-level var declared in this
// module:
//
//   - a direct write: assignment, compound assignment, or ++/-- whose
//     left-hand side is the var or an element/field of it,
//   - taking its address (the escape that enables aliased writes),
//   - calling a pointer-receiver method on it (the implicit &v — this is
//     how a shared sync.Pool or registry actually gets mutated).
//
// Reads stay legal: immutable package-level configuration (error values,
// variant tables) is fine. Deliberately shared, concurrency-safe state —
// the netsim frame pool is the canonical case — carries a justified
// //simlint:allow sharedstate directive instead.
package sharedstate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tradenet/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "sharedstate",
	Doc:  "forbid writes, address-taking, and pointer-receiver calls on package-level vars in run-reachable code",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !pass.ReachableDecl(fd) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v := pkgLevelVar(info, lhs); v != nil {
					pass.Reportf(lhs.Pos(),
						"write to package-level var %s.%s from run-reachable %s; runs must not share mutable state — move it into per-run state",
						v.Pkg().Name(), v.Name(), fd.Name.Name)
				}
			}
		case *ast.IncDecStmt:
			if v := pkgLevelVar(info, n.X); v != nil {
				pass.Reportf(n.Pos(),
					"write to package-level var %s.%s from run-reachable %s; runs must not share mutable state — move it into per-run state",
					v.Pkg().Name(), v.Name(), fd.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return true
			}
			if v := pkgLevelVar(info, n.X); v != nil {
				pass.Reportf(n.Pos(),
					"address of package-level var %s.%s taken in run-reachable %s; the alias enables shared writes across runs",
					v.Pkg().Name(), v.Name(), fd.Name.Name)
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || !pointerReceiver(fn) {
				return true
			}
			// The implicit &v: a pointer-receiver method on an addressable
			// package-level var mutates shared state. A var that already
			// holds a pointer is a read (the pointee is out of this
			// analyzer's aliasing scope).
			v := pkgLevelVar(info, sel.X)
			if v == nil {
				return true
			}
			if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
				return true
			}
			pass.Reportf(n.Pos(),
				"pointer-receiver call %s.%s on package-level var %s.%s in run-reachable %s; shared mutable state across runs",
				v.Name(), fn.Name(), v.Pkg().Name(), v.Name(), fd.Name.Name)
		}
		return true
	})
}

// pkgLevelVar resolves expr to the package-level module variable at its
// base, unwrapping selectors, indexing, dereferences, and parens — so
// `v.Field[i] = x` counts as a write to v. It returns nil for locals,
// fields of locals, blank, and vars of non-module packages.
func pkgLevelVar(info *types.Info, expr ast.Expr) *types.Var {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			// pkg.Var: the selector resolves to the var itself.
			if id, ok := e.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return asPkgVar(info.Uses[e.Sel])
				}
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			// *p = x writes through a pointer: the var p itself is read.
			return nil
		case *ast.Ident:
			if e.Name == "_" {
				return nil
			}
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			return asPkgVar(obj)
		default:
			return nil
		}
	}
}

// asPkgVar filters obj down to a package-level var declared in this
// module.
func asPkgVar(obj types.Object) *types.Var {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if !strings.HasPrefix(v.Pkg().Path(), analysis.ModulePath) {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

// pointerReceiver reports whether fn is a method with a pointer receiver.
func pointerReceiver(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().(*types.Pointer)
	return ok
}
