// Package ptrorder flags constructs that let allocator addresses leak
// into observable order. Pointer values differ between runs (and between
// workers of the sharded kernel): a map keyed by pointers iterates — and
// fmt renders — in address order, a %p verb prints the address itself,
// and a sort whose comparator converts pointers to integers orders by
// allocation history. Any of these reaching rendered output destroys
// byte-identical replay. Key maps by a stable identifier (index, name,
// sequence number); sort by a stable field; print IDs, not addresses. A
// pointer-keyed map that is provably lookup-only may carry a justified
// //simlint:allow ptrorder directive instead.
package ptrorder

import (
	"go/ast"
	"go/types"
	"strings"

	"tradenet/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "ptrorder",
	Doc:  "forbid pointer-keyed maps, %p formatting, and pointer-comparison sorts; allocator addresses must not order output",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Simulation and reporting code is bound; the analysis framework
	// itself is not (its pointer-keyed AST maps never reach simulation
	// output).
	path := pass.Pkg.Path()
	if !strings.HasPrefix(path, analysis.ModulePath+"/internal/") ||
		strings.HasPrefix(path, analysis.ModulePath+"/internal/analysis") {
		return nil
	}
	// One finding per distinct pointer-keyed map type per package: the
	// declaration is the fix site, and repeating the report at every
	// make() and literal of the same type is noise.
	seenMapType := map[string]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.MapType:
				kt := pass.TypesInfo.TypeOf(n.Key)
				if kt == nil || !pointerLike(kt) {
					return true
				}
				s := types.TypeString(kt, nil) // key dedup on the key type
				if seenMapType[s] {
					return true
				}
				seenMapType[s] = true
				pass.Reportf(n.Pos(),
					"pointer-keyed map (key %s): iteration and fmt rendering follow allocator addresses; key by a stable ID, or justify a lookup-only map with //simlint:allow ptrorder", s)
			case *ast.CallExpr:
				if fn := analysis.CalleeFunc(pass.TypesInfo, n); analysis.IsPkgFunc(fn, "fmt") {
					for _, arg := range n.Args {
						if lit, ok := ast.Unparen(arg).(*ast.BasicLit); ok && strings.Contains(lit.Value, "%p") {
							pass.Reportf(lit.Pos(),
								"%%p formats an allocator address; addresses differ across runs and workers — print a stable ID instead")
						}
					}
				}
			case *ast.BinaryExpr:
				if !n.Op.IsOperator() || !isComparison(n) {
					return true
				}
				if uintptrOfPointer(pass.TypesInfo, n.X) || uintptrOfPointer(pass.TypesInfo, n.Y) {
					pass.Reportf(n.Pos(),
						"comparison of pointers converted to uintptr orders by allocation history; sort by a stable field instead")
				}
			}
			return true
		})
	}
	return nil
}

// pointerLike reports whether t orders by address when used as a map key:
// pointers and unsafe.Pointer. Channels share the property but the
// goroutine analyzer already bans them here.
func pointerLike(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isComparison reports whether the binary expression is an ordering
// comparison.
func isComparison(n *ast.BinaryExpr) bool {
	switch n.Op.String() {
	case "<", ">", "<=", ">=":
		return true
	}
	return false
}

// uintptrOfPointer reports whether expr is a uintptr(...) conversion whose
// operand is (possibly via unsafe.Pointer) a pointer.
func uintptrOfPointer(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 || !analysis.IsConversion(info, call) {
		return false
	}
	to := info.TypeOf(call.Fun)
	if to == nil {
		return false
	}
	b, ok := to.Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Uintptr {
		return false
	}
	arg := ast.Unparen(call.Args[0])
	at := info.TypeOf(arg)
	if at != nil && pointerLike(at) {
		return true
	}
	// One more unwrap for the uintptr(unsafe.Pointer(p)) idiom.
	if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 {
		if it := info.TypeOf(inner.Args[0]); it != nil && pointerLike(it) {
			return true
		}
	}
	return false
}
