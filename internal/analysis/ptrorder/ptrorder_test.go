package ptrorder_test

import (
	"path/filepath"
	"testing"

	"tradenet/internal/analysis/analysistest"
	"tradenet/internal/analysis/ptrorder"
)

func TestPtrorder(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "ptrorder"),
		"tradenet/internal/fixture", []string{"fmt", "sort"}, ptrorder.Analyzer)
}
