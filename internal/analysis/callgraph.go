package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Interprocedural layer: a call graph over every package of one Load, and
// the reachable-from-Run* taint the parallel-safety analyzers (sharedstate,
// floatorder) share. The graph is built once per Load — RunAnalyzers hands
// every Pass the same *Program — so the four analyzers pay for resolution
// a single time per `go list -export` load.
//
// Identity across type-checker universes is the one real subtlety. Load
// type-checks each target package from source, but a target's *imports*
// come from gc export data, so the same function is represented by two
// distinct *types.Func objects: the source one (in its own package's
// check) and the export one (seen by its importers). Object identity
// therefore cannot key the graph; a stable textual FuncID can, and
// interface satisfaction is likewise matched on method name plus a
// fully-qualified signature string rather than types.Implements.

// FuncID names a function or method unambiguously across universes:
// "pkg/path.Name" for package-level functions, "pkg/path.(Recv).Name" for
// methods. Pointer receivers are canonicalized away so value- and
// pointer-receiver call sites resolve to the same node.
type FuncID string

// IDOf returns fn's FuncID. Generic instantiations are keyed by their
// origin so call sites and declarations agree.
func IDOf(fn *types.Func) FuncID {
	fn = fn.Origin()
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return FuncID(path + "." + fn.Name())
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	name := "?"
	switch t := rt.(type) {
	case *types.Named:
		name = t.Obj().Name()
	case *types.Interface:
		name = "interface"
	}
	return FuncID(path + ".(" + name + ")." + fn.Name())
}

// CGNode is one function declared in a loaded source package.
type CGNode struct {
	ID      FuncID
	Decl    *ast.FuncDecl
	Pkg     *Package
	Callees []FuncID // sorted, deduplicated
}

// CallGraph maps every function declared in the loaded packages to its
// outgoing edges. Edges may name functions with no node (standard library,
// export-data-only callees); they simply have no outgoing edges of their
// own.
type CallGraph struct {
	Nodes map[FuncID]*CGNode
}

// concreteMethod is one entry of the interface-resolution index.
type concreteMethod struct {
	id  FuncID
	sig string // fully-qualified parameter/result signature
}

// sigString renders a function type with package-path qualification so
// signatures compare equal across type-checker universes.
func sigString(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	// Drop the receiver: interface methods carry the interface as receiver,
	// concrete methods their own type, and the comparison must not see
	// either.
	bare := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return types.TypeString(bare, func(p *types.Package) string { return p.Path() })
}

// BuildCallGraph constructs the graph for pkgs: static dispatch through
// identifiers and selectors, interface dispatch resolved against the method
// sets of every named type declared in pkgs, and reference edges — a
// function mentioned as a value (callback, method value, stored handler)
// gets an edge from the function that mentions it, which is how
// event-driven code actually transfers control here (schedule a handler
// now, the wheel invokes it later).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	cg := &CallGraph{Nodes: map[FuncID]*CGNode{}}

	// Index the method sets of all source-declared named types for
	// interface resolution.
	methodIndex := map[string][]concreteMethod{}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			// The pointer method set includes both value- and
			// pointer-receiver methods.
			ms := types.NewMethodSet(types.NewPointer(named))
			for i := 0; i < ms.Len(); i++ {
				m, ok := ms.At(i).Obj().(*types.Func)
				if !ok {
					continue
				}
				methodIndex[m.Name()] = append(methodIndex[m.Name()], concreteMethod{
					id:  IDOf(m),
					sig: sigString(m),
				})
			}
		}
	}

	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CGNode{ID: IDOf(obj), Decl: fd, Pkg: pkg}
				node.Callees = collectEdges(pkg, fd, methodIndex)
				cg.Nodes[node.ID] = node
			}
		}
	}
	return cg
}

// collectEdges walks one declaration body (function literals included —
// their calls are attributed to the enclosing declaration) and returns its
// outgoing edges.
func collectEdges(pkg *Package, fd *ast.FuncDecl, methodIndex map[string][]concreteMethod) []FuncID {
	info := pkg.TypesInfo
	seen := map[FuncID]bool{}

	// First pass: remember which identifiers are the operator of a direct
	// call, so the reference walk below doesn't double-count them.
	calleeIdents := map[*ast.Ident]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			calleeIdents[fun] = true
		case *ast.SelectorExpr:
			calleeIdents[fun.Sel] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if IsConversion(info, n) {
				return true
			}
			if fn := CalleeFunc(info, n); fn != nil {
				// Static dispatch — but a call through an interface-typed
				// receiver resolves to the interface method; fan it out to
				// every declared type whose method set satisfies it.
				if recvIsInterface(fn) {
					for _, impl := range implementersOf(fn, methodIndex) {
						seen[impl] = true
					}
				} else {
					seen[IDOf(fn)] = true
				}
			}
		case *ast.Ident:
			if calleeIdents[n] {
				return true
			}
			if fn, ok := info.Uses[n].(*types.Func); ok {
				// A function referenced as a value: passed, stored, or
				// returned. Whoever holds the value may call it, so the
				// referencer gets the edge.
				if recvIsInterface(fn) {
					for _, impl := range implementersOf(fn, methodIndex) {
						seen[impl] = true
					}
				} else {
					seen[IDOf(fn)] = true
				}
			}
		}
		return true
	})

	out := make([]FuncID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// recvIsInterface reports whether fn is declared on an interface (an
// abstract method, resolved by implementersOf rather than directly).
func recvIsInterface(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// implementersOf returns the concrete methods matching an interface
// method: same name, identical fully-qualified signature.
func implementersOf(fn *types.Func, methodIndex map[string][]concreteMethod) []FuncID {
	want := sigString(fn)
	var out []FuncID
	for _, c := range methodIndex[fn.Name()] {
		if c.sig == want {
			out = append(out, c.id)
		}
	}
	return out
}

// Program is the whole-load view shared by every Pass of one RunAnalyzers
// call: the loaded packages, their call graph, and the Run*-reachability
// taint, each built once on first use.
type Program struct {
	Pkgs []*Package

	cg    *CallGraph
	reach map[FuncID]bool
}

// CallGraph returns the load's call graph, building it on first call.
func (p *Program) CallGraph() *CallGraph {
	if p.cg == nil {
		p.cg = BuildCallGraph(p.Pkgs)
	}
	return p.cg
}

// runReach computes the set of functions reachable from the run entry
// points: every exported function or method in a module package whose name
// begins with "Run" (RunParallel, RunFailover, Scheduler.RunUntil, ...).
// Anything one of those can reach — including through callbacks and
// interface dispatch — executes inside a simulation run and is bound by
// the parallel-safety contract.
func (p *Program) runReach() map[FuncID]bool {
	if p.reach != nil {
		return p.reach
	}
	cg := p.CallGraph()
	p.reach = map[FuncID]bool{}
	var queue []FuncID
	var roots []FuncID
	for id, n := range cg.Nodes {
		name := n.Decl.Name.Name
		if strings.HasPrefix(name, "Run") && ast.IsExported(name) &&
			strings.HasPrefix(n.Pkg.ImportPath, ModulePath) {
			roots = append(roots, id)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, id := range roots {
		p.reach[id] = true
		queue = append(queue, id)
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		n, ok := cg.Nodes[id]
		if !ok {
			continue
		}
		for _, callee := range n.Callees {
			if !p.reach[callee] {
				p.reach[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	return p.reach
}

// RunReachable reports whether id executes inside some Run* entry point.
func (p *Program) RunReachable(id FuncID) bool { return p.runReach()[id] }

// ReachableDecl reports whether the function declared by fd (in the
// package pass analyzes) is reachable from a Run* entry point.
func (pass *Pass) ReachableDecl(fd *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	return pass.Prog.RunReachable(IDOf(obj))
}
