// Package fixture exercises the globalrand analyzer: no draws from the
// process-global math/rand sources, v1 or v2.
package fixture

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// Bad draws from the shared global sources.
func Bad() (int, uint64) {
	n := rand.Intn(10)                 // want `rand\.Intn draws from the process-global source`
	v := randv2.Uint64()               // want `rand\.Uint64 draws from the process-global source`
	rand.Shuffle(n, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global source`
	return n, v
}

// Good threads a seeded source; the constructors are allowed.
func Good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}
