// Package fixture exercises the ptrorder analyzer: pointer-keyed map
// declarations, %p format verbs, and pointer-comparison sorts fire;
// value-keyed maps, stable-ID prints, and value sorts stay silent. The
// second pointer-keyed map with the same key type is deduplicated to one
// finding per key type per package.
package fixture

import (
	"fmt"
	"sort"
	"unsafe"
)

// Node is the pointee used throughout.
type Node struct {
	ID   int
	next *Node
}

// Index is keyed by pointers: iteration and rendering follow allocator
// addresses.
type Index struct {
	seen map[*Node]bool // want `pointer-keyed map \(key \*tradenet/internal/fixture.Node\)`
	rank map[*Node]int  // same key type: deduplicated, no second finding
}

// ByID is the sanctioned shape: keyed by the stable ID.
type ByID struct {
	seen map[int]*Node
}

// Describe leaks the address into rendered output.
func Describe(n *Node) string {
	return fmt.Sprintf("node %p", n) // want `%p formats an allocator address`
}

// DescribeStable prints the stable ID: not flagged.
func DescribeStable(n *Node) string {
	return fmt.Sprintf("node %d", n.ID)
}

// SortByAddress orders nodes by allocation history.
func SortByAddress(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool {
		return uintptr(unsafe.Pointer(ns[i])) < uintptr(unsafe.Pointer(ns[j])) // want `comparison of pointers converted to uintptr`
	})
}

// SortByID orders nodes by the stable field: not flagged.
func SortByID(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
}
