// Package fixture exercises the call-graph builder: static dispatch,
// interface method-set resolution, method values passed as callbacks,
// mutual recursion, and the reachable-from-Run* taint. The companion test
// (callgraph_test.go) asserts reachability of the functions below, so this
// fixture carries no // want comments.
package fixture

// Handler is dispatched through an interface: the builder must resolve
// Handle to every declared type whose method set satisfies it.
type Handler interface {
	Handle(n int) int
}

// Doubler implements Handler with a value receiver.
type Doubler struct{ calls int }

// Handle doubles.
func (d Doubler) Handle(n int) int { return 2 * n }

// Accum implements Handler with a pointer receiver.
type Accum struct{ total int }

// Handle accumulates.
func (a *Accum) Handle(n int) int { a.total += n; return a.total }

// Decoy has a Handle with a different signature: it must NOT be resolved
// as an implementation of Handler.
type Decoy struct{}

// Handle on Decoy takes a string, so Decoy does not satisfy Handler.
func (Decoy) Handle(s string) string { return s }

// dispatch calls through the interface.
func dispatch(h Handler, n int) int { return h.Handle(n) }

// ping and pong are mutually recursive: both must be reachable when
// either is.
func ping(n int) int {
	if n <= 0 {
		return 0
	}
	return pong(n - 1)
}

func pong(n int) int {
	if n <= 0 {
		return 1
	}
	return ping(n - 1)
}

// leaf is called statically from the run root.
func leaf() int { return 7 }

// viaValue is only ever referenced as a function value (a callback); the
// reference edge must make it reachable.
func viaValue() int { return 8 }

// invoke runs a callback.
func invoke(f func() int) int { return f() }

// orphan is declared but never referenced anywhere: it must stay
// unreachable.
func orphan() int { return 9 }

// orphanCallee is only called by orphan, so it is unreachable too.
func orphanCallee() int { return orphan() }

// Counter carries a method used only as a method value.
type Counter struct{ n int }

// Bump is passed as a bound method value from the run root.
func (c *Counter) Bump() int { c.n++; return c.n }

// RunFixture is the run entry point the taint starts from.
func RunFixture() int {
	var c Counter
	total := leaf()
	total += invoke(viaValue)
	total += invoke(c.Bump)
	total += ping(3)
	var h Handler = &Accum{}
	total += dispatch(h, 2)
	total += dispatch(Doubler{}, 3)
	return total
}
