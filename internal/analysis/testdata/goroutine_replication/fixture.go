// Package replication exercises the goroutine analyzer under the
// internal/replication import path: the journal/follower machinery runs
// inside simulation events, so shipping records on a background goroutine,
// handing them over channels, or selecting on a promotion signal would make
// apply order scheduler-dependent and break the primary/backup lockstep the
// failover invariants rest on. The sequential shapes the real package uses
// — callback taps and replay loops — stay silent.
package replication

// record is a journal record in flight.
type record struct {
	seq  uint64
	data []byte
}

// shipAsync streams journal records off the event goroutine.
func shipAsync(recs []record, send func(record)) {
	go func() { // want `go statement in a simulation package`
		for _, r := range recs {
			send(r)
		}
	}()
}

// handoff moves records between journal and follower over a channel.
func handoff(ch chan record, r record) record {
	ch <- r             // want `channel send in a simulation package`
	applied := <-ch     // want `channel receive in a simulation package`
	for a := range ch { // want `range over a channel in a simulation package`
		applied.seq = a.seq
	}
	return applied
}

// awaitPromotion races the journal stream against the watchdog.
func awaitPromotion(journal chan record, promote chan struct{}) bool {
	select { // want `multi-case select in a simulation package`
	case <-journal: // want `channel receive in a simulation package`
		return false
	case <-promote: // want `channel receive in a simulation package`
		return true
	}
}

// replay is the sanctioned shape: a synchronous loop applying the journal
// tail in sequence order on the one event goroutine.
func replay(recs []record, apply func(record)) uint64 {
	var last uint64
	for _, r := range recs {
		apply(r)
		last = r.seq
	}
	return last
}
