// Package fixture exercises the unitmix analyzer: bare numeric literals
// must not land in unit-typed positions.
package fixture

import (
	"tradenet/internal/sim"
	"tradenet/internal/units"
)

// hold is a Duration-typed parameter sink.
func hold(d sim.Duration) sim.Duration { return d }

// link is a Bandwidth-typed parameter sink.
func link(bw units.Bandwidth) units.Bandwidth { return bw }

// Bad passes and adds raw numbers where unit types are expected.
func Bad(t sim.Time) sim.Time {
	hold(1000)           // want `bare numeric literal where Duration is expected`
	link(40_000_000_000) // want `bare numeric literal where Bandwidth is expected`
	return t + 500       // want `bare numeric literal added to a Time`
}

// Good scales by unit constants, converts explicitly, or passes zero.
func Good(t sim.Time, raw int64) sim.Time {
	hold(5 * sim.Nanosecond)
	link(10 * units.Gbps)
	hold(sim.Duration(raw))
	hold(0)
	return t.Add(5 * sim.Nanosecond)
}
