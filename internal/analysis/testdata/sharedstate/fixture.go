// Package fixture exercises the sharedstate analyzer: package-level writes
// from run-reachable code fire (directly, through callees, through
// element/field access, and through pointer-receiver method calls);
// locals, reads, and unreachable writers stay silent.
package fixture

import "sync"

// counter is package-level mutable state.
var counter int

// table is package-level mutable state reached through indexing.
var table = map[string]int{}

// config is read-only at run time: reads of it must not fire.
var config = 42

// pool is mutated through its pointer-receiver methods.
var pool sync.Pool

// ptrVar already holds a pointer: method calls through it are reads of the
// var (pointee aliasing is out of scope).
var ptrVar = &sync.Pool{}

// RunScenario is the taint root.
func RunScenario(n int) int {
	counter++        // want `write to package-level var fixture.counter`
	counter = n      // want `write to package-level var fixture.counter`
	table["k"] = n   // want `write to package-level var fixture.table`
	p := &counter    // want `address of package-level var fixture.counter`
	_ = pool.Get()   // want `pointer-receiver call pool.Get on package-level var fixture.pool`
	_ = ptrVar.Get() // pointer-typed var: a read, not flagged
	helper(n)
	local(n)
	return config + *p // read of config: not flagged
}

// helper is reachable from RunScenario, so its write fires too.
func helper(n int) {
	counter += n // want `write to package-level var fixture.counter`
}

// local mutates only locals and parameters: silent.
func local(n int) int {
	m := map[string]int{}
	m["k"] = n
	n++
	x := n
	x += 2
	return x
}

// unreachable writes package state but no Run* can reach it: silent.
func unreachable() {
	counter = 99
	pool.Put(nil)
}
