// Package fixture is type-checked under a hot import path
// (tradenet/internal/netsim), so hotalloc treats it as per-frame code.
package fixture

import "tradenet/internal/sim"

type node struct {
	sched *sim.Scheduler
	fires int
}

// Bad allocates a closure per scheduled event.
func (n *node) Bad(t sim.Time) {
	n.sched.At(t, func() { n.fires++ })                   // want `closure literal passed to Scheduler\.At`
	n.sched.After(5*sim.Nanosecond, func() { n.fires++ }) // want `closure literal passed to Scheduler\.After`
}

// Good schedules closure-free through the AtArgs variants.
func (n *node) Good(t sim.Time) {
	n.sched.AtArgs(t, sim.PrioDeliver, fireArgs, n, nil)
}

func fireArgs(a, _ any) { a.(*node).fires++ }
