// Package fixture exercises the //simlint:allow directive machinery: a
// justified function-scope allow (fully silent), an unjustified line-scope
// allow (suppresses its finding but is itself reported), and a stale allow
// (reported because it suppresses nothing). The companion test asserts the
// exact surviving findings, so this fixture carries no // want comments.
package fixture

import "time"

// SelfTime is the sanctioned shape: the justified directive in the doc
// comment covers the whole function.
//
//simlint:allow wallclock: measures real host loop cost for a budget comparison
func SelfTime(n int) time.Duration {
	start := time.Now()
	for i := 0; i < n; i++ {
		_ = i
	}
	return time.Since(start)
}

// Unjustified suppresses its finding but earns a report for the missing
// reason.
func Unjustified() time.Time {
	//simlint:allow wallclock
	return time.Now()
}

// Stale allows a check that never fires here.
func Stale() int {
	//simlint:allow wallclock: nothing below reads the clock
	return 1
}
