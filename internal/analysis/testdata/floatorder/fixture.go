// Package fixture exercises the floatorder analyzer: float folds driven by
// map iteration fire, float folds inside RunParallel-merging functions
// fire, and integer folds, slice-order float folds outside merge paths,
// and unreachable code stay silent.
package fixture

import "tradenet/internal/core"

// RunMapMean folds float values in map-iteration order: the classic
// nondeterministic mean.
func RunMapMean(m map[string]float64) float64 {
	var sum float64
	n := 0
	for _, v := range m {
		sum += v // want `float accumulation in RunMapMean driven by map iteration`
		n++      // integer fold: order-independent, not flagged
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RunNestedMap fires even when the accumulation sits in a loop nested
// inside the map range.
func RunNestedMap(m map[string][]float64) float64 {
	var sum float64
	for _, vs := range m {
		for _, v := range vs {
			sum *= v // want `float accumulation in RunNestedMap driven by map iteration`
		}
	}
	return sum
}

// RunMerge fans out via RunParallel and folds the float results: a
// cross-worker merge path.
func RunMerge(seeds []int64) float64 {
	rs := core.RunParallel(seeds, func(seed int64) float64 {
		return float64(seed) * 0.5
	})
	var sum float64
	for _, r := range rs {
		sum += r // want `float accumulation in cross-worker merge RunMerge`
	}
	return sum
}

// RunSliceSum folds floats in slice order with no fan-out: order is fixed,
// not flagged.
func RunSliceSum(vs []float64) float64 {
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum
}

// RunIntMap folds integers over a map: associative, not flagged.
func RunIntMap(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// unreachable accumulates floats over a map but no Run* reaches it.
func unreachable(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
