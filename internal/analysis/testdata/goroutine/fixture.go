// Package fixture exercises the goroutine analyzer inside a scoped
// simulation package path: go statements, channel sends/receives, channel
// ranges, and selects all fire; plain loops, function values, and sync-free
// sequential code stay silent.
package fixture

// spawn starts ad-hoc concurrency.
func spawn(work func()) {
	go work() // want `go statement in a simulation package`
}

// handoff moves data across goroutines.
func handoff(ch chan int, n int) int {
	ch <- n             // want `channel send in a simulation package`
	v := <-ch           // want `channel receive in a simulation package`
	for x := range ch { // want `range over a channel in a simulation package`
		v += x
	}
	return v
}

// choose picks whichever case is ready first.
func choose(a, b chan int) int {
	select { // want `multi-case select in a simulation package`
	case v := <-a: // want `channel receive in a simulation package`
		return v
	case v := <-b: // want `channel receive in a simulation package`
		return v
	}
}

// single is a one-case select: still readiness-dependent.
func single(a chan int) int {
	select { // want `select in a simulation package`
	case v := <-a: // want `channel receive in a simulation package`
		return v
	default:
		return 0
	}
}

// sequential is the sanctioned shape: callbacks and loops, no concurrency.
func sequential(fs []func() int) int {
	total := 0
	for _, f := range fs {
		total += f()
	}
	return total
}
