// Package fixture proves the goroutine analyzer is path-scoped: the same
// constructs that fire inside simulation packages are legal in harness
// packages (this fixture is loaded under an out-of-scope import path), so
// nothing here carries a want comment.
package fixture

// Fan runs work concurrently — fine outside the simulation packages.
func Fan(work []func(), done chan int) {
	for _, w := range work {
		w := w
		go func() {
			w()
			done <- 1
		}()
	}
	for range work {
		<-done
	}
}
