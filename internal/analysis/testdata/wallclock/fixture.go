// Package fixture exercises the wallclock analyzer: code type-checked under
// an internal/ import path must not read or wait on the host clock.
package fixture

import "time"

// Epoch anchors display formatting; constructing times is legal.
var Epoch = time.Unix(0, 0)

// Bad reads and waits on the wall clock.
func Bad() time.Time {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	start := time.Now()          // want `time\.Now reads the wall clock`
	_ = time.Since(start)        // want `time\.Since reads the wall clock`
	return start
}

// Good stays within the type and arithmetic parts of package time, which
// sim.Duration converts through for display.
func Good(d time.Duration) float64 {
	return d.Seconds() + Epoch.Sub(Epoch).Seconds()
}
