// Package replication exercises the sharedstate analyzer under the
// internal/replication import path: a journal sequence counter or promotion
// registry held in a package-level var would be shared by every run
// RunParallel dispatches, corrupting the replicated state machines'
// lockstep. All replication state must live on per-run structs; the
// fixture's flagged shapes are exactly the ones the real package must never
// grow.
package replication

// journalSeq would be a process-wide sequence allocator: two parallel runs
// interleaving increments destroys per-run determinism.
var journalSeq uint64

// promoted would be a process-wide promotion registry.
var promoted = map[string]bool{}

// epoch is read-only configuration: reads of it must not fire.
var epoch = uint64(1)

// RunFailover is the taint root, as core.RunExchangeFailover is for the
// real package.
func RunFailover(venue string) uint64 {
	journalSeq++           // want `write to package-level var replication.journalSeq`
	promoted[venue] = true // want `write to package-level var replication.promoted`
	p := &journalSeq       // want `address of package-level var replication.journalSeq`
	appendRecord(3)
	return epoch + *p // read of epoch: not flagged
}

// appendRecord is reachable from RunFailover, so its write fires too.
func appendRecord(n uint64) {
	journalSeq += n // want `write to package-level var replication.journalSeq`
}

// perRun is the sanctioned shape: sequence state on a per-run struct.
type perRun struct{ seq uint64 }

func (s *perRun) next() uint64 {
	s.seq++
	return s.seq
}
