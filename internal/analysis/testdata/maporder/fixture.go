// Package fixture exercises the maporder analyzer: ranging over a map in a
// function whose effects reach the event schedule.
package fixture

import (
	"sort"

	"tradenet/internal/sim"
)

func tick() {}

// Fanout schedules one event per member: map order leaks into the schedule.
func Fanout(s *sim.Scheduler, members map[int]sim.Time) {
	for _, t := range members { // want `range over a map in Fanout`
		s.At(t, tick)
	}
}

// FanoutSorted iterates collected, sorted keys — the sanctioned idiom; the
// collect-keys loop is exempt.
func FanoutSorted(s *sim.Scheduler, members map[int]sim.Time) {
	var ids []int
	for id := range members {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s.At(members[id], tick)
	}
}

// Tally never reaches the schedule, so map order stays internal to the run.
func Tally(counts map[int]int) int {
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}

// deliver is the scheduling helper Notify reaches through one level of
// same-package transitivity.
func deliver(s *sim.Scheduler, t sim.Time) { s.At(t, tick) }

// Notify only calls a helper, but the helper schedules.
func Notify(s *sim.Scheduler, subs map[int]sim.Time) {
	for _, t := range subs { // want `range over a map in Notify`
		deliver(s, t)
	}
}

// Callbacks invokes func-typed values: in this codebase a callback is how
// frames and messages propagate, so the dynamic call is a sink.
func Callbacks(handlers map[int]func()) {
	for _, h := range handlers { // want `range over a map in Callbacks`
		h()
	}
}
