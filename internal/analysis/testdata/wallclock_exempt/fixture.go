// Package fixture proves wallclock binds only internal/ packages: this file
// is type-checked under a cmd/ import path, where harnesses may pace
// against the real world, so nothing here is flagged.
package fixture

import "time"

// Pace really sleeps and really reads the clock; outside internal/ that is
// legal.
func Pace() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
