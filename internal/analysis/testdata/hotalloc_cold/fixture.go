// Package fixture is type-checked under a cold import path
// (tradenet/internal/core): experiment harnesses schedule a bounded number
// of times per run, so closure literals are legal there and nothing here is
// flagged.
package fixture

import "tradenet/internal/sim"

// Setup schedules with a closure; core is not a hot package.
func Setup(s *sim.Scheduler, t sim.Time) *bool {
	done := new(bool)
	s.At(t, func() { *done = true })
	return done
}
