package maporder_test

import (
	"path/filepath"
	"testing"

	"tradenet/internal/analysis/analysistest"
	"tradenet/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "maporder"),
		"tradenet/internal/fixture", []string{"sort", "tradenet/internal/sim"}, maporder.Analyzer)
}
